// Progressive & incremental search: the two follow-up directions the
// paper's discussion proposes for δ-ε methods, demonstrated on a DSTree.
//
//   - progressive: stream intermediate best-so-far answers with increasing
//     accuracy until the exact result;
//   - incremental: pull neighbours one by one, paying only for what is
//     consumed.
package main

import (
	"fmt"
	"log"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/dstree"
	"hydra/internal/storage"
)

func main() {
	data := dataset.Generate(dataset.Config{
		Kind: dataset.KindWalk, Count: 20000, Length: 256, Seed: 21,
	})
	store := storage.NewSeriesStore(data, 0)
	tree, err := dstree.Build(store, dstree.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	query := dataset.Queries(data, dataset.KindWalk, 1, 22).At(0)

	fmt.Println("progressive 5-NN (each line is an improved answer):")
	_, err = tree.SearchProgressive(
		core.Query{Series: query, K: 5, Mode: core.ModeExact},
		func(u core.ProgressiveUpdate) bool {
			tag := "intermediate"
			if u.Final {
				tag = "FINAL (exact)"
			}
			fmt.Printf("  after %3d leaves: k-th dist %.4f  [%s]\n",
				u.LeavesVisited, u.Neighbors[len(u.Neighbors)-1].Dist, tag)
			return true // keep refining
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nincremental iteration (neighbours pulled on demand):")
	inc, err := tree.Incremental(query, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		nb, ok := inc.Next()
		if !ok {
			break
		}
		calcs, leaves := inc.Stats()
		fmt.Printf("  #%d: id=%d dist=%.4f (cumulative: %d dist calcs, %d leaves)\n",
			i+1, nb.ID, nb.Dist, calcs, leaves)
	}
}
