// Vector workload: image-descriptor-like clustered vectors (the paper's
// Sift/Deep analogue). Pits the graph method (HNSW) against the
// quantization method (IMI) and the data series tree (DSTree), reproducing
// the paper's headline in-memory finding: HNSW wins on query throughput at
// a given accuracy, but cannot reach MAP = 1, while the data series index
// can — and wins once index-building time is accounted for.
package main

import (
	"fmt"
	"log"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/eval"
	"hydra/internal/storage"
)

func main() {
	const (
		n       = 10000
		length  = 128
		queries = 15
		k       = 10
	)
	w := eval.NewWorkload(dataset.KindClustered, n, length, queries, k, 11)
	fmt.Printf("vector analogue: %d clustered vectors of dim %d, %d queries, k=%d\n\n",
		n, length, queries, k)

	cfg := eval.DefaultSuite()
	table := &eval.Table{
		Title:   "ng-approximate search on clustered vectors (in-memory)",
		Columns: []string{"Method", "Config", "MAP", "Qrs/min", "Build(s)", "Idx+10Kq(min)"},
	}
	for _, spec := range []struct {
		name   string
		probes []int
	}{
		{"HNSW", []int{16, 64, 256}},
		{"IMI", []int{4, 16, 64}},
		{"DSTree", []int{1, 4, 16}},
	} {
		b, err := eval.BuildMethod(spec.name, w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, nprobe := range spec.probes {
			out, err := eval.Run(b.Method, w, core.Query{Mode: core.ModeNG, NProbe: nprobe}, storage.CostModel{})
			if err != nil {
				log.Fatal(err)
			}
			perQuery := out.ModelSeconds / queries
			table.AddRow(spec.name, fmt.Sprintf("nprobe=%d", nprobe),
				eval.F(out.Metrics.MAP),
				eval.F(eval.QueriesPerMinute(out.ModelSeconds, queries)),
				eval.F(b.BuildSeconds),
				eval.F((b.BuildSeconds+10000*perQuery)/60))
		}
		// DSTree can also answer exactly — the capability HNSW/IMI lack.
		if spec.name == "DSTree" {
			out, err := eval.Run(b.Method, w, core.Query{Mode: core.ModeExact}, storage.CostModel{})
			if err != nil {
				log.Fatal(err)
			}
			table.AddRow(spec.name, "exact", eval.F(out.Metrics.MAP),
				eval.F(eval.QueriesPerMinute(out.ModelSeconds, queries)),
				eval.F(b.BuildSeconds), "-")
		}
	}
	fmt.Print(table.String())
}
