// Seismic workload: pattern matching over bursty earthquake-like series
// (the paper's Seismic100GB analogue). Compares the three disk-capable
// data series methods on ng-approximate queries, reporting the measures
// the paper uses for on-disk evaluation: accuracy, % of data accessed and
// random I/O.
package main

import (
	"fmt"
	"log"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/eval"
	"hydra/internal/storage"
)

func main() {
	const (
		n       = 8000
		length  = 256
		queries = 10
		k       = 10
	)
	w := eval.NewWorkload(dataset.KindSeismic, n, length, queries, k, 7)
	fmt.Printf("seismic-analogue: %d series of length %d, %d queries, k=%d\n\n",
		n, length, queries, k)

	cfg := eval.DefaultSuite()
	model := storage.DefaultCostModel()
	table := &eval.Table{
		Title:   "ng-approximate pattern matching on the seismic analogue",
		Columns: []string{"Method", "nprobe", "MAP", "%data", "RandIO/query", "Qrs/min(model)"},
	}
	for _, name := range []string{"DSTree", "iSAX2+", "VA+file"} {
		b, err := eval.BuildMethod(name, w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, nprobe := range []int{1, 4, 16, 64} {
			out, err := eval.Run(b.Method, w, core.Query{Mode: core.ModeNG, NProbe: nprobe}, model)
			if err != nil {
				log.Fatal(err)
			}
			pct := 100 * float64(out.IO.BytesRead) / float64(b.Store.TotalBytes()) / float64(queries)
			table.AddRow(name, fmt.Sprint(nprobe), eval.F(out.Metrics.MAP), eval.F(pct),
				eval.I(out.IO.RandomSeeks/int64(queries)),
				eval.F(eval.QueriesPerMinute(out.ModelSeconds, queries)))
		}
	}
	fmt.Print(table.String())
}
