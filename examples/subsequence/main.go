// Subsequence matching via whole-matching conversion: the paper (Section
// 2) notes that an SM query over long series "can be converted to WM" by
// materialising sliding windows. This example indexes the windows of long
// seismic-like recordings with a DSTree and locates where a query pattern
// occurs, reporting the recording and offset through window provenance.
package main

import (
	"fmt"
	"log"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/dstree"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func main() {
	// Long recordings (the SM collection).
	long := dataset.Generate(dataset.Config{
		Kind: dataset.KindSeismic, Count: 50, Length: 2048, Seed: 31,
	})

	// Convert to a WM dataset of z-normalised sliding windows.
	const window, stride = 128, 16
	windows, refs, err := dataset.SlidingWindows(long, window, stride, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %d recordings of length %d into %d windows of length %d\n",
		long.Size(), long.Length(), windows.Size(), window)

	store := storage.NewSeriesStore(windows, 0)
	tree, err := dstree.Build(store, dstree.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The query: a pattern cut from recording 17 at offset 512 (plus noise
	// would be the realistic case; exact cut keeps the demo verifiable).
	pattern := series.Series(long.At(17)[512 : 512+window]).ZNormalized()

	res, err := tree.Search(core.Query{Series: pattern, K: 5, Mode: core.ModeExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop matches (recording, offset, distance):")
	for _, nb := range res.Neighbors {
		ref := refs[nb.ID]
		fmt.Printf("  recording %2d @ offset %4d  dist %.4f\n", ref.Source, ref.Offset, nb.Dist)
	}
	best := refs[res.Neighbors[0].ID]
	fmt.Printf("\nquery was cut from recording 17 @ 512 -> located at recording %d @ %d\n",
		best.Source, best.Offset)
}
