// Taxonomy: classify query configurations into the paper's guarantee
// classes (Figure 1) and print the method capability matrix (Table 1).
package main

import (
	"fmt"
	"os"

	"hydra/internal/core"
	"hydra/internal/eval"
)

func main() {
	fmt.Println("Query configurations and their guarantee class (paper Fig. 1):")
	configs := []struct {
		desc  string
		delta float64
		eps   float64
	}{
		{"delta=0.9, eps=1  (probabilistic)", 0.9, 1},
		{"delta=1,   eps=1  (deterministic bound)", 1, 1},
		{"delta=1,   eps=0  (exact)", 1, 0},
		{"delta=0.5, eps=0  (probabilistic exact)", 0.5, 0},
	}
	for _, c := range configs {
		fmt.Printf("  %-42s -> %s\n", c.desc, core.Classify(c.delta, c.eps))
	}

	fmt.Println("\nQuery-mode classification:")
	qs := []core.Query{
		{Mode: core.ModeNG, NProbe: 4, K: 1},
		{Mode: core.ModeEpsilon, Epsilon: 2, K: 1},
		{Mode: core.ModeDeltaEpsilon, Epsilon: 2, Delta: 0.99, K: 1},
		{Mode: core.ModeExact, K: 1},
	}
	for _, q := range qs {
		fmt.Printf("  mode=%-14s eps=%-4g delta=%-4g -> %s\n",
			q.Mode, q.Epsilon, q.Delta, core.ClassifyQuery(q))
	}

	fmt.Println()
	eval.Table1().Fprint(os.Stdout)

	fmt.Println("\nRecommendations (paper Fig. 9 decision matrix):")
	scenarios := []struct {
		desc string
		s    eval.Scenario
	}{
		{"in-memory, query-only, accuracy flexible", eval.Scenario{InMemory: true}},
		{"in-memory, MAP must reach 1", eval.Scenario{InMemory: true, HighAccuracy: true}},
		{"on-disk with guarantees", eval.Scenario{NeedGuarantees: true}},
		{"no index yet, 100-query workload", eval.Scenario{CountIndexing: true}},
		{"no index yet, 10K-query workload", eval.Scenario{CountIndexing: true, LargeWorkload: true}},
	}
	for _, sc := range scenarios {
		method, why := eval.Recommend(sc.s)
		fmt.Printf("  %-42s -> %-7s (%s)\n", sc.desc, method, why)
	}
}
