// Quickstart: build a DSTree over random-walk data, then answer the same
// query exactly, ng-approximately, and with a δ-ε guarantee, showing the
// accuracy/cost trade-off the benchmark studies.
package main

import (
	"fmt"
	"log"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/dstree"
	"hydra/internal/storage"
)

func main() {
	// 1. Generate a dataset of 10,000 random-walk series of length 256 (the
	//    paper's Rand generator) and a query from the same process.
	data := dataset.Generate(dataset.Config{
		Kind: dataset.KindWalk, Count: 10000, Length: 256, Seed: 1,
	})
	queries := dataset.Queries(data, dataset.KindWalk, 1, 2)
	query := queries.At(0)

	// 2. Wrap the data in a paged store (gives us I/O accounting) and build
	//    the DSTree, the paper's overall best performer.
	store := storage.NewSeriesStore(data, 0)
	tree, err := dstree.Build(store, dstree.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// A distance histogram enables δ-ε-approximate queries.
	tree.SetHistogram(core.BuildHistogram(data, 10000, 3))

	// 3. Exact 10-NN (Algorithm 1).
	exact, err := tree.Search(core.Query{Series: query, K: 10, Mode: core.ModeExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact:    1-NN dist %.4f | leaves visited %d | bytes read %d\n",
		exact.Neighbors[0].Dist, exact.LeavesVisited, exact.IO.BytesRead)

	// 4. ng-approximate: visit a single leaf (the classic "approximate
	//    search" of the data series literature).
	ng, err := tree.Search(core.Query{Series: query, K: 10, Mode: core.ModeNG, NProbe: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ng(1):    1-NN dist %.4f | leaves visited %d | bytes read %d\n",
		ng.Neighbors[0].Dist, ng.LeavesVisited, ng.IO.BytesRead)

	// 5. δ-ε-approximate: distances within (1+1)× of exact with prob. 0.99
	//    (Algorithm 2). Typically almost exact at a fraction of the work.
	de, err := tree.Search(core.Query{
		Series: query, K: 10, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("d-e(1,.99): 1-NN dist %.4f | leaves visited %d | bytes read %d\n",
		de.Neighbors[0].Dist, de.LeavesVisited, de.IO.BytesRead)

	// The ε-approximate answer can never be worse than (1+ε)× the exact.
	bound := (1 + 1.0) * exact.Neighbors[0].Dist
	fmt.Printf("guarantee: %.4f <= %.4f ? %v\n", de.Neighbors[0].Dist, bound, de.Neighbors[0].Dist <= bound)
}
