// Package hydra_test holds the benchmark harness: one testing.B benchmark
// per table/figure of the paper's evaluation (regenerating the same rows/
// series), plus ablation benches for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure bench prints its tables once (on the first iteration) and
// reports headline numbers as custom metrics so `-bench` output is
// meaningful on its own.
package hydra_test

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/dstree"
	"hydra/internal/eval"
	"hydra/internal/imi"
	"hydra/internal/isax"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
	"hydra/internal/vafile"
)

// benchSuite keeps `go test -bench=.` tractable on a laptop; raise via
// HYDRA_BENCH_N / HYDRA_BENCH_LEN env vars for larger runs.
func benchSuite() eval.SuiteConfig {
	cfg := eval.SuiteConfig{N: 1500, Length: 64, Queries: 8, K: 5, Seed: 42, HistogramPairs: 1500}
	if v, err := strconv.Atoi(os.Getenv("HYDRA_BENCH_N")); err == nil && v > 0 {
		cfg.N = v
	}
	if v, err := strconv.Atoi(os.Getenv("HYDRA_BENCH_LEN")); err == nil && v > 0 {
		cfg.Length = v
	}
	return cfg
}

// benchOut prints tables only on the first bench iteration.
func benchOut(b *testing.B, i int) io.Writer {
	if i == 0 && testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

func printTables(w io.Writer, tables []*eval.Table) {
	for _, t := range tables {
		t.Fprint(w)
		fmt.Fprintln(w)
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.Table1()
		t.Fprint(benchOut(b, i))
		if len(t.Rows) != 10 {
			b.Fatalf("capability matrix has %d rows", len(t.Rows))
		}
	}
}

func BenchmarkFig2Indexing(b *testing.B) {
	cfg := benchSuite()
	sizes := []int{cfg.N / 2, cfg.N, cfg.N * 2}
	methods := []string{"DSTree", "iSAX2+", "VA+file", "HNSW", "IMI", "SRS", "QALSH", "FLANN"}
	for i := 0; i < b.N; i++ {
		tables, err := eval.Fig2(cfg, sizes, methods)
		if err != nil {
			b.Fatal(err)
		}
		printTables(benchOut(b, i), tables)
	}
}

func BenchmarkFig3InMemory(b *testing.B) {
	cfg := benchSuite()
	for i := 0; i < b.N; i++ {
		tables, err := eval.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTables(benchOut(b, i), tables)
	}
}

func BenchmarkFig4OnDisk(b *testing.B) {
	cfg := benchSuite()
	for i := 0; i < b.N; i++ {
		tables, err := eval.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTables(benchOut(b, i), tables)
	}
}

func BenchmarkFig5Measures(b *testing.B) {
	cfg := benchSuite()
	for i := 0; i < b.N; i++ {
		t, err := eval.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t.Fprint(benchOut(b, i))
	}
}

func BenchmarkFig6BestMethods(b *testing.B) {
	cfg := benchSuite()
	for i := 0; i < b.N; i++ {
		tables, err := eval.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTables(benchOut(b, i), tables)
	}
}

func BenchmarkFig7EffectOfK(b *testing.B) {
	cfg := benchSuite()
	for i := 0; i < b.N; i++ {
		t, err := eval.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t.Fprint(benchOut(b, i))
	}
}

func BenchmarkFig8Epsilon(b *testing.B) {
	cfg := benchSuite()
	for i := 0; i < b.N; i++ {
		tables, err := eval.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTables(benchOut(b, i), tables)
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationDSTreeSplit compares the full DSTree split policy
// (vertical + horizontal, QoS-driven) against a horizontal-only variant
// (MaxSegments = InitialSegments), reporting leaves visited per exact query.
func BenchmarkAblationDSTreeSplit(b *testing.B) {
	cfg := benchSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	run := func(b *testing.B, dcfg dstree.Config) {
		st := storage.NewSeriesStore(w.Data, 0)
		tree, err := dstree.Build(st, dcfg)
		if err != nil {
			b.Fatal(err)
		}
		var leaves int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			leaves = 0
			for qi := 0; qi < w.Queries.Size(); qi++ {
				res, err := tree.Search(core.Query{Series: w.Queries.At(qi), K: cfg.K, Mode: core.ModeExact})
				if err != nil {
					b.Fatal(err)
				}
				leaves += res.LeavesVisited
			}
		}
		b.ReportMetric(float64(leaves)/float64(w.Queries.Size()), "leaves/query")
	}
	b.Run("full-policy", func(b *testing.B) {
		run(b, dstree.Config{LeafCapacity: 32, InitialSegments: 4, MaxSegments: 16})
	})
	b.Run("horizontal-only", func(b *testing.B) {
		run(b, dstree.Config{LeafCapacity: 32, InitialSegments: 4, MaxSegments: 4})
	})
}

// BenchmarkAblationISAXLeaf sweeps the iSAX2+ leaf capacity, reporting
// random I/O per exact query — the mechanism behind Fig. 6's bottom row
// (iSAX2+'s many small leaves cost random I/O).
func BenchmarkAblationISAXLeaf(b *testing.B) {
	cfg := benchSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	for _, leaf := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("leaf=%d", leaf), func(b *testing.B) {
			st := storage.NewSeriesStore(w.Data, 0)
			icfg := isax.DefaultConfig()
			icfg.LeafCapacity = leaf
			icfg.Segments = 8
			tree, err := isax.Build(st, icfg)
			if err != nil {
				b.Fatal(err)
			}
			var seeks int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seeks = 0
				for qi := 0; qi < w.Queries.Size(); qi++ {
					res, err := tree.Search(core.Query{Series: w.Queries.At(qi), K: cfg.K, Mode: core.ModeExact})
					if err != nil {
						b.Fatal(err)
					}
					seeks += res.IO.RandomSeeks
				}
			}
			b.ReportMetric(float64(seeks)/float64(w.Queries.Size()), "randIO/query")
		})
	}
}

// BenchmarkAblationVABits sweeps the VA+file bit budget, reporting raw
// series visited per exact query (more bits = tighter bounds = less raw
// data touched).
func BenchmarkAblationVABits(b *testing.B) {
	cfg := benchSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	for _, bits := range []int{16, 48, 96} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			st := storage.NewSeriesStore(w.Data, 0)
			f, err := vafile.Build(st, vafile.Config{Coeffs: 16, TotalBits: bits, TrainSamples: 2048})
			if err != nil {
				b.Fatal(err)
			}
			var visits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				visits = 0
				for qi := 0; qi < w.Queries.Size(); qi++ {
					res, err := f.Search(core.Query{Series: w.Queries.At(qi), K: cfg.K, Mode: core.ModeExact})
					if err != nil {
						b.Fatal(err)
					}
					visits += res.LeavesVisited
				}
			}
			b.ReportMetric(float64(visits)/float64(w.Queries.Size()), "rawVisits/query")
		})
	}
}

// BenchmarkAblationHistogram sweeps the r_δ histogram sample size,
// reporting the δ-ε query MAP (the paper's observation: the histogram
// approximation of r_δ limits how useful δ is).
func BenchmarkAblationHistogram(b *testing.B) {
	cfg := benchSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	for _, pairs := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("pairs=%d", pairs), func(b *testing.B) {
			st := storage.NewSeriesStore(w.Data, 0)
			tree, err := dstree.Build(st, dstree.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			tree.SetHistogram(core.BuildHistogram(w.Data, pairs, cfg.Seed))
			var mapSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := eval.Run(tree, w, core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: 0, Delta: 0.95}, storage.CostModel{})
				if err != nil {
					b.Fatal(err)
				}
				mapSum = out.Metrics.MAP
			}
			b.ReportMetric(mapSum, "MAP")
		})
	}
}

// BenchmarkAblationIMITrain sweeps the IMI training size, reporting recall,
// reproducing the paper's training-size discussion.
func BenchmarkAblationIMITrain(b *testing.B) {
	cfg := benchSuite()
	w := eval.NewWorkload(dataset.KindClustered, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	for _, train := range []int{50, 500, 0} {
		name := fmt.Sprintf("train=%d", train)
		if train == 0 {
			name = "train=all"
		}
		b.Run(name, func(b *testing.B) {
			icfg := imi.DefaultConfig()
			icfg.TrainSamples = train
			idx, err := imi.Build(w.Data, icfg)
			if err != nil {
				b.Fatal(err)
			}
			var recall float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := eval.Run(idx, w, core.Query{Mode: core.ModeNG, NProbe: 32}, storage.CostModel{})
				if err != nil {
					b.Fatal(err)
				}
				recall = out.Metrics.AvgRecall
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// BenchmarkAblationEarlyAbandon compares the early-abandoning distance
// kernel against the plain one inside a serial scan.
func BenchmarkAblationEarlyAbandon(b *testing.B) {
	cfg := benchSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length*2, cfg.Queries, 1, cfg.Seed)
	q := w.Queries.At(0)
	b.Run("early-abandon", func(b *testing.B) {
		st := storage.NewSeriesStore(w.Data, 0)
		s := scan.New(st)
		for i := 0; i < b.N; i++ {
			if _, err := s.Search(core.Query{Series: q, K: 1, Mode: core.ModeExact}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-distance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := math.Inf(1)
			for j := 0; j < w.Data.Size(); j++ {
				if d := series.SquaredDist(q, w.Data.At(j)); d < best {
					best = d
				}
			}
			_ = best
		}
	})
}
