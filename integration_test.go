// Cross-method integration tests: every method is driven through the same
// workload and the invariants that must hold across implementations are
// asserted — exact methods agree bit-for-bit with the scan oracle, graded
// approximate configurations produce graded accuracy, and the harness's
// accounting stays consistent.
package hydra_test

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/eval"
	"hydra/internal/storage"
)

func integrationSuite() eval.SuiteConfig {
	return eval.SuiteConfig{N: 1200, Length: 64, Queries: 6, K: 8, Seed: 77, HistogramPairs: 1200}
}

func TestIntegrationExactMethodsAgree(t *testing.T) {
	cfg := integrationSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	for _, name := range []string{"DSTree", "iSAX2+", "VA+file", "MTree", "SerialScan"} {
		b, err := eval.BuildMethod(name, w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for qi := 0; qi < w.Queries.Size(); qi++ {
			res, err := b.Method.Search(core.Query{Series: w.Queries.At(qi), K: cfg.K, Mode: core.ModeExact})
			if err != nil {
				t.Fatalf("%s query %d: %v", name, qi, err)
			}
			if len(res.Neighbors) != cfg.K {
				t.Fatalf("%s query %d: %d results", name, qi, len(res.Neighbors))
			}
			for i, nb := range res.Neighbors {
				if math.Abs(nb.Dist-w.Truth[qi][i].Dist) > 1e-6 {
					t.Fatalf("%s query %d rank %d: %v, oracle %v", name, qi, i, nb.Dist, w.Truth[qi][i].Dist)
				}
			}
		}
	}
}

func TestIntegrationEpsilonBoundAllMethods(t *testing.T) {
	cfg := integrationSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+1)
	eps := 2.0
	for _, name := range []string{"DSTree", "iSAX2+", "VA+file", "MTree"} {
		b, err := eval.BuildMethod(name, w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for qi := 0; qi < w.Queries.Size(); qi++ {
			res, err := b.Method.Search(core.Query{Series: w.Queries.At(qi), K: cfg.K, Mode: core.ModeEpsilon, Epsilon: eps})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			bound := (1 + eps) * w.Truth[qi][cfg.K-1].Dist
			for _, nb := range res.Neighbors {
				if nb.Dist > bound+1e-6 {
					t.Fatalf("%s query %d: %v exceeds (1+eps) bound %v", name, qi, nb.Dist, bound)
				}
			}
		}
	}
}

func TestIntegrationNGAccuracyGradesWithBudget(t *testing.T) {
	cfg := integrationSuite()
	w := eval.NewWorkload(dataset.KindClustered, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+2)
	for _, name := range []string{"DSTree", "iSAX2+", "HNSW", "FLANN", "HD-index", "SRS", "QALSH"} {
		b, err := eval.BuildMethod(name, w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lo, err := eval.Run(b.Method, w, core.Query{Mode: core.ModeNG, NProbe: 2}, storage.CostModel{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hi, err := eval.Run(b.Method, w, core.Query{Mode: core.ModeNG, NProbe: 600}, storage.CostModel{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hi.Metrics.AvgRecall+0.05 < lo.Metrics.AvgRecall {
			t.Errorf("%s: recall fell with budget: %.3f -> %.3f", name, lo.Metrics.AvgRecall, hi.Metrics.AvgRecall)
		}
	}
}

func TestIntegrationDeltaEpsilonMethods(t *testing.T) {
	cfg := integrationSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+3)
	for _, name := range []string{"DSTree", "iSAX2+", "VA+file", "MTree", "SRS", "QALSH"} {
		b, err := eval.BuildMethod(name, w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := eval.Run(b.Method, w, core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9}, storage.CostModel{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Metrics.AvgRecall <= 0 {
			t.Errorf("%s: zero recall under delta-epsilon", name)
		}
	}
}

func TestIntegrationRecallOrderingMatchesPaper(t *testing.T) {
	// The broad in-memory finding: at generous ng budgets, the graph method
	// and the data series trees reach (near-)perfect accuracy while IMI is
	// capped by compressed ranking.
	cfg := integrationSuite()
	w := eval.NewWorkload(dataset.KindClustered, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+4)
	recallAt := func(name string, nprobe int) float64 {
		b, err := eval.BuildMethod(name, w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := eval.Run(b.Method, w, core.Query{Mode: core.ModeNG, NProbe: nprobe}, storage.CostModel{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return out.Metrics.AvgRecall
	}
	hnsw := recallAt("HNSW", 256)
	dstree := recallAt("DSTree", 40)
	imi := recallAt("IMI", 256)
	if hnsw < 0.9 {
		t.Errorf("HNSW recall %v at large ef", hnsw)
	}
	if dstree < 0.9 {
		t.Errorf("DSTree recall %v at large nprobe", dstree)
	}
	if imi >= hnsw {
		t.Errorf("IMI (%v) should trail HNSW (%v): compressed ranking caps it", imi, hnsw)
	}
}

func TestIntegrationIOAccountingConsistent(t *testing.T) {
	cfg := integrationSuite()
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+5)
	for _, name := range eval.DiskMethodNames {
		b, err := eval.BuildMethod(name, w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := eval.Run(b.Method, w, core.Query{Mode: core.ModeNG, NProbe: 4}, storage.DefaultCostModel())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "IMI" {
			if out.IO.BytesRead != 0 {
				t.Errorf("IMI read %d raw bytes — it must only use summaries", out.IO.BytesRead)
			}
			continue
		}
		if out.IO.BytesRead <= 0 {
			t.Errorf("%s: disk method charged no raw reads", name)
		}
		if out.IO.RandomSeeks < 0 || out.IO.SequentialPages < 0 {
			t.Errorf("%s: negative counters %+v", name, out.IO)
		}
	}
}
