GO ?= go

.PHONY: all build vet test race bench-smoke bench-json bench-gate persist-smoke serve-smoke shard-smoke cache-smoke loadgen-smoke obs-smoke fmt

all: fmt vet build test race bench-smoke persist-smoke serve-smoke shard-smoke cache-smoke loadgen-smoke obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Pins the Method.Search concurrency contract, the parallel executor, the
# index catalog, the sharded scatter-gather method and the HTTP server
# under concurrent independent requests.
race:
	$(GO) test -race ./internal/kernel/... ./internal/eval/... ./internal/core/... ./internal/catalog/... ./internal/shard/... ./internal/server/... ./internal/vafile/... ./internal/loadgen/... ./internal/obs/...

# End-to-end build-once/query-many check: build + save an index through
# hydra-query -index-dir, then reload it in a second run (must be a cache
# hit) and verify the answers are identical.
persist-smoke:
	@dir=$$(mktemp -d) || exit 1; \
	trap 'rm -rf "$$dir"' EXIT; \
	set -e; \
	$(GO) run ./cmd/hydra-gen -kind walk -n 600 -length 64 -seed 3 -out $$dir/data.bin >/dev/null; \
	$(GO) run ./cmd/hydra-gen -kind walk -n 4 -seed 5 -queries-for $$dir/data.bin -out $$dir/queries.bin >/dev/null; \
	$(GO) run ./cmd/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method DSTree -mode exact -k 5 -workers 1 -index-dir $$dir/idx > $$dir/cold.txt; \
	grep -q "catalog miss: DSTree" $$dir/cold.txt || { echo "persist-smoke: cold run did not report a miss"; cat $$dir/cold.txt; exit 1; }; \
	$(GO) run ./cmd/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method DSTree -mode exact -k 5 -workers 1 -index-dir $$dir/idx > $$dir/warm.txt; \
	grep -q "catalog hit: DSTree" $$dir/warm.txt || { echo "persist-smoke: warm run did not hit the catalog"; cat $$dir/warm.txt; exit 1; }; \
	grep -E "^(query|workload:)" $$dir/cold.txt > $$dir/cold-q.txt; \
	grep -E "^(query|workload:)" $$dir/warm.txt > $$dir/warm-q.txt; \
	diff $$dir/cold-q.txt $$dir/warm-q.txt || { echo "persist-smoke: loaded index answered differently"; exit 1; }; \
	echo "persist-smoke OK"

# End-to-end serving check: boot hydra-serve against a fresh -index-dir
# (builds + saves every persistable index), hit /healthz, /v1/methods and
# /v1/query (serial and workers=4), verify the text answers are
# byte-identical to hydra-query over the same catalog, then boot a second
# time and require every persistable method to load warm from the catalog
# and answer identically.
SERVE_SMOKE_ADDR ?= 127.0.0.1:18317
serve-smoke:
	@dir=$$(mktemp -d) || exit 1; \
	trap '{ [ -z "$$pid" ] || kill $$pid 2>/dev/null || true; } ; rm -rf "$$dir"' EXIT; \
	set -e; \
	$(GO) build -o $$dir/hydra-gen ./cmd/hydra-gen; \
	$(GO) build -o $$dir/hydra-query ./cmd/hydra-query; \
	$(GO) build -o $$dir/hydra-serve ./cmd/hydra-serve; \
	$$dir/hydra-gen -kind walk -n 600 -length 64 -seed 3 -out $$dir/data.bin >/dev/null; \
	$$dir/hydra-gen -kind walk -n 4 -seed 5 -queries-for $$dir/data.bin -out $$dir/queries.bin >/dev/null; \
	$$dir/hydra-serve -data $$dir/data.bin -index-dir $$dir/idx -workload-dir $$dir -addr $(SERVE_SMOKE_ADDR) > $$dir/boot1.log 2>&1 & pid=$$!; \
	ok=""; for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do \
	  curl -sf http://$(SERVE_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 1; done; \
	[ -n "$$ok" ] || { echo "serve-smoke: server did not become healthy"; cat $$dir/boot1.log; exit 1; }; \
	curl -sf http://$(SERVE_SMOKE_ADDR)/healthz | grep -q '"status": "ok"' || { echo "serve-smoke: /healthz not ok"; exit 1; }; \
	curl -sf http://$(SERVE_SMOKE_ADDR)/v1/methods > $$dir/methods.json; \
	grep -q '"DSTree"' $$dir/methods.json || { echo "serve-smoke: /v1/methods missing DSTree"; cat $$dir/methods.json; exit 1; }; \
	printf '{"method":"DSTree","mode":"exact","k":5,"workload_file":"%s","format":"text"}' $$dir/queries.bin > $$dir/req.json; \
	printf '{"method":"DSTree","mode":"exact","k":5,"workers":4,"workload_file":"%s","format":"text"}' $$dir/queries.bin > $$dir/req4.json; \
	curl -sf -X POST --data @$$dir/req.json http://$(SERVE_SMOKE_ADDR)/v1/query > $$dir/serve1-serial.txt; \
	curl -sf -X POST --data @$$dir/req4.json http://$(SERVE_SMOKE_ADDR)/v1/query > $$dir/serve1-parallel.txt; \
	kill $$pid; wait $$pid 2>/dev/null || true; pid=""; \
	grep -q "catalog miss: DSTree" $$dir/boot1.log || { echo "serve-smoke: first boot did not build+save"; cat $$dir/boot1.log; exit 1; }; \
	grep -q "drained cleanly" $$dir/boot1.log || { echo "serve-smoke: first boot did not drain cleanly"; cat $$dir/boot1.log; exit 1; }; \
	$$dir/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method DSTree -mode exact -k 5 -workers 1 -index-dir $$dir/idx > $$dir/cli.txt; \
	grep -q "catalog hit: DSTree" $$dir/cli.txt || { echo "serve-smoke: hydra-query missed the server-written catalog entry"; cat $$dir/cli.txt; exit 1; }; \
	grep "^query" $$dir/cli.txt > $$dir/cli-q.txt; \
	diff $$dir/cli-q.txt $$dir/serve1-serial.txt || { echo "serve-smoke: server (serial) and hydra-query answers differ"; exit 1; }; \
	diff $$dir/cli-q.txt $$dir/serve1-parallel.txt || { echo "serve-smoke: server (workers=4) and hydra-query answers differ"; exit 1; }; \
	$$dir/hydra-serve -data $$dir/data.bin -index-dir $$dir/idx -workload-dir $$dir -addr $(SERVE_SMOKE_ADDR) > $$dir/boot2.log 2>&1 & pid=$$!; \
	ok=""; for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do \
	  curl -sf http://$(SERVE_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 1; done; \
	[ -n "$$ok" ] || { echo "serve-smoke: second boot did not become healthy"; cat $$dir/boot2.log; exit 1; }; \
	curl -sf -X POST --data @$$dir/req.json http://$(SERVE_SMOKE_ADDR)/v1/query > $$dir/serve2-serial.txt; \
	kill $$pid; wait $$pid 2>/dev/null || true; pid=""; \
	hits=$$(grep -c "warm start: catalog hit" $$dir/boot2.log) || true; \
	misses=$$(grep -c "warm start: catalog miss" $$dir/boot2.log) || true; \
	[ "$$misses" = "0" ] || { echo "serve-smoke: second boot rebuilt $$misses persistable methods"; cat $$dir/boot2.log; exit 1; }; \
	[ "$$hits" -ge 6 ] || { echo "serve-smoke: second boot loaded only $$hits methods from the catalog"; cat $$dir/boot2.log; exit 1; }; \
	diff $$dir/serve1-serial.txt $$dir/serve2-serial.txt || { echo "serve-smoke: warm-boot answers differ from cold-boot answers"; exit 1; }; \
	echo "serve-smoke OK ($$hits warm loads on second boot)"

# End-to-end sharding check: sharded hydra-query answers must be byte-
# identical to unsharded answers, a second sharded run must load every
# shard snapshot from the catalog, and a second boot of hydra-serve
# -shards 4 must come up with zero shard rebuilds and identical answers.
SHARD_SMOKE_ADDR ?= 127.0.0.1:18319
shard-smoke:
	@dir=$$(mktemp -d) || exit 1; \
	trap '{ [ -z "$$pid" ] || kill $$pid 2>/dev/null || true; } ; rm -rf "$$dir"' EXIT; \
	set -e; \
	$(GO) build -o $$dir/hydra-gen ./cmd/hydra-gen; \
	$(GO) build -o $$dir/hydra-query ./cmd/hydra-query; \
	$(GO) build -o $$dir/hydra-serve ./cmd/hydra-serve; \
	$$dir/hydra-gen -kind walk -n 600 -length 64 -seed 3 -out $$dir/data.bin >/dev/null; \
	$$dir/hydra-gen -kind walk -n 4 -seed 5 -queries-for $$dir/data.bin -out $$dir/queries.bin >/dev/null; \
	$$dir/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method iSAX2+ -mode exact -k 5 -workers 1 > $$dir/flat-isax.txt; \
	$$dir/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method DSTree -mode exact -k 5 -workers 1 > $$dir/flat-dstree.txt; \
	grep "^query" $$dir/flat-isax.txt > $$dir/flat-isax-q.txt; \
	grep "^query" $$dir/flat-dstree.txt > $$dir/flat-dstree-q.txt; \
	$$dir/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method iSAX2+ -mode exact -k 5 -workers 1 -shards 3 -index-dir $$dir/idx > $$dir/cold.txt; \
	[ "$$(grep -c 'catalog miss: iSAX2+ shard' $$dir/cold.txt)" = "3" ] || { echo "shard-smoke: cold run did not build+save 3 shards"; cat $$dir/cold.txt; exit 1; }; \
	$$dir/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method iSAX2+ -mode exact -k 5 -workers 1 -shards 3 -index-dir $$dir/idx > $$dir/warm.txt; \
	[ "$$(grep -c 'catalog hit: iSAX2+ shard' $$dir/warm.txt)" = "3" ] || { echo "shard-smoke: warm run did not load 3 shards"; cat $$dir/warm.txt; exit 1; }; \
	grep -q "catalog miss" $$dir/warm.txt && { echo "shard-smoke: warm run rebuilt a shard"; cat $$dir/warm.txt; exit 1; }; \
	grep "^query" $$dir/cold.txt > $$dir/cold-q.txt; \
	grep "^query" $$dir/warm.txt > $$dir/warm-q.txt; \
	diff $$dir/flat-isax-q.txt $$dir/cold-q.txt || { echo "shard-smoke: sharded answers differ from unsharded"; exit 1; }; \
	diff $$dir/flat-isax-q.txt $$dir/warm-q.txt || { echo "shard-smoke: warm sharded answers differ from unsharded"; exit 1; }; \
	grep -E "^(query|workload:)" $$dir/cold.txt > $$dir/cold-full.txt; \
	grep -E "^(query|workload:)" $$dir/warm.txt > $$dir/warm-full.txt; \
	diff $$dir/cold-full.txt $$dir/warm-full.txt || { echo "shard-smoke: warm sharded run drifted from cold (answers or IO accounting)"; exit 1; }; \
	$$dir/hydra-serve -data $$dir/data.bin -index-dir $$dir/idx -workload-dir $$dir -shards 4 -addr $(SHARD_SMOKE_ADDR) > $$dir/boot1.log 2>&1 & pid=$$!; \
	ok=""; for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do \
	  curl -sf http://$(SHARD_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 1; done; \
	[ -n "$$ok" ] || { echo "shard-smoke: sharded server did not become healthy"; cat $$dir/boot1.log; exit 1; }; \
	printf '{"method":"DSTree","mode":"exact","k":5,"workload_file":"%s","format":"text"}' $$dir/queries.bin > $$dir/req.json; \
	curl -sf -X POST --data @$$dir/req.json http://$(SHARD_SMOKE_ADDR)/v1/query > $$dir/serve1.txt; \
	kill $$pid; wait $$pid 2>/dev/null || true; pid=""; \
	grep -q "catalog miss: DSTree shard" $$dir/boot1.log || { echo "shard-smoke: first boot did not build shard snapshots"; cat $$dir/boot1.log; exit 1; }; \
	$$dir/hydra-serve -data $$dir/data.bin -index-dir $$dir/idx -workload-dir $$dir -shards 4 -addr $(SHARD_SMOKE_ADDR) > $$dir/boot2.log 2>&1 & pid=$$!; \
	ok=""; for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do \
	  curl -sf http://$(SHARD_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 1; done; \
	[ -n "$$ok" ] || { echo "shard-smoke: second sharded boot did not become healthy"; cat $$dir/boot2.log; exit 1; }; \
	curl -sf -X POST --data @$$dir/req.json http://$(SHARD_SMOKE_ADDR)/v1/query > $$dir/serve2.txt; \
	kill $$pid; wait $$pid 2>/dev/null || true; pid=""; \
	grep -q "catalog miss" $$dir/boot2.log && { echo "shard-smoke: second boot rebuilt shard indexes"; cat $$dir/boot2.log; exit 1; }; \
	hits=$$(grep -c "catalog hit" $$dir/boot2.log) || true; \
	[ "$$hits" -ge 28 ] || { echo "shard-smoke: second boot loaded only $$hits shard snapshots"; cat $$dir/boot2.log; exit 1; }; \
	diff $$dir/flat-dstree-q.txt $$dir/serve1.txt || { echo "shard-smoke: sharded server answers differ from unsharded hydra-query"; exit 1; }; \
	diff $$dir/serve1.txt $$dir/serve2.txt || { echo "shard-smoke: warm-boot answers differ from cold-boot answers"; exit 1; }; \
	echo "shard-smoke OK ($$hits warm shard loads on second boot)"

# End-to-end cache + router check: boot hydra-serve with the result cache
# and auto-routing on, fire the same query twice (the second must replay
# byte-identically with "cached":true), then ask "method":"auto" in text
# format and require the answer to be byte-identical to naming the routed
# method directly.
CACHE_SMOKE_ADDR ?= 127.0.0.1:18321
cache-smoke:
	@dir=$$(mktemp -d) || exit 1; \
	trap '{ [ -z "$$pid" ] || kill $$pid 2>/dev/null || true; } ; rm -rf "$$dir"' EXIT; \
	set -e; \
	$(GO) build -o $$dir/hydra-gen ./cmd/hydra-gen; \
	$(GO) build -o $$dir/hydra-serve ./cmd/hydra-serve; \
	$$dir/hydra-gen -kind walk -n 600 -length 64 -seed 3 -out $$dir/data.bin >/dev/null; \
	$$dir/hydra-gen -kind walk -n 4 -seed 5 -queries-for $$dir/data.bin -out $$dir/queries.bin >/dev/null; \
	$$dir/hydra-serve -data $$dir/data.bin -workload-dir $$dir -cache-max-bytes 1048576 -max-inflight 4 -addr $(CACHE_SMOKE_ADDR) > $$dir/boot.log 2>&1 & pid=$$!; \
	ok=""; for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do \
	  curl -sf http://$(CACHE_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 1; done; \
	[ -n "$$ok" ] || { echo "cache-smoke: server did not become healthy"; cat $$dir/boot.log; exit 1; }; \
	grep -q "result cache enabled" $$dir/boot.log || { echo "cache-smoke: boot log missing cache banner"; cat $$dir/boot.log; exit 1; }; \
	printf '{"method":"DSTree","mode":"exact","k":5,"workload_file":"%s"}' $$dir/queries.bin > $$dir/req.json; \
	curl -sf -X POST --data @$$dir/req.json http://$(CACHE_SMOKE_ADDR)/v1/query > $$dir/miss.json; \
	grep -q '"cached": false' $$dir/miss.json || { echo "cache-smoke: first response not marked uncached"; cat $$dir/miss.json; exit 1; }; \
	curl -sf -D $$dir/hit-headers.txt -X POST --data @$$dir/req.json http://$(CACHE_SMOKE_ADDR)/v1/query > $$dir/hit.json; \
	grep -q '"cached": true' $$dir/hit.json || { echo "cache-smoke: second response not served from cache"; cat $$dir/hit.json; exit 1; }; \
	grep -qi '^X-Hydra-Cached: true' $$dir/hit-headers.txt || { echo "cache-smoke: hit missing X-Hydra-Cached header"; cat $$dir/hit-headers.txt; exit 1; }; \
	sed 's/"cached": false/"cached": true/' $$dir/miss.json | diff - $$dir/hit.json || { echo "cache-smoke: hit is not a byte-identical replay of the miss"; exit 1; }; \
	printf '{"method":"auto","mode":"exact","k":5,"workload_file":"%s","format":"text"}' $$dir/queries.bin > $$dir/req-auto.json; \
	curl -sf -D $$dir/auto-headers.txt -X POST --data @$$dir/req-auto.json http://$(CACHE_SMOKE_ADDR)/v1/query > $$dir/auto.txt; \
	routed=$$(grep -i '^X-Hydra-Routed-Method:' $$dir/auto-headers.txt | tr -d '\r' | awk '{print $$2}'); \
	[ -n "$$routed" ] || { echo "cache-smoke: auto response missing X-Hydra-Routed-Method"; cat $$dir/auto-headers.txt; exit 1; }; \
	printf '{"method":"%s","mode":"exact","k":5,"workload_file":"%s","format":"text"}' $$routed $$dir/queries.bin > $$dir/req-fixed.json; \
	curl -sf -X POST --data @$$dir/req-fixed.json http://$(CACHE_SMOKE_ADDR)/v1/query > $$dir/fixed.txt; \
	diff $$dir/auto.txt $$dir/fixed.txt || { echo "cache-smoke: auto answers differ from fixed $$routed answers"; exit 1; }; \
	curl -sf http://$(CACHE_SMOKE_ADDR)/metrics | grep -q '^hydra_cache_hits_total [1-9]' || { echo "cache-smoke: /metrics shows no cache hits"; exit 1; }; \
	kill $$pid; wait $$pid 2>/dev/null || true; pid=""; \
	echo "cache-smoke OK (auto routed to $$routed)"

# End-to-end load-test check: verify the replay schedule is byte-identical
# per seed, boot hydra-serve with the cache + admission gate + auto router
# on, replay a mixed open-loop profile with SLO enforcement, gate the fresh
# BENCH_loadgen.json against the loadgen/ floors in bench_thresholds.json,
# then SIGTERM the server mid-replay and require the drain to surface as
# "draining" refusals — never as unexplained errors.
LOADGEN_SMOKE_ADDR ?= 127.0.0.1:18323
loadgen-smoke:
	@dir=$$(mktemp -d) || exit 1; \
	trap '{ [ -z "$$pid" ] || kill $$pid 2>/dev/null || true; } ; rm -rf "$$dir"' EXIT; \
	set -e; \
	$(GO) build -o $$dir/hydra-gen ./cmd/hydra-gen; \
	$(GO) build -o $$dir/hydra-serve ./cmd/hydra-serve; \
	$(GO) build -o $$dir/hydra-loadgen ./cmd/hydra-loadgen; \
	$(GO) build -o $$dir/hydra-benchgate ./cmd/hydra-benchgate; \
	$$dir/hydra-gen -kind walk -n 600 -length 64 -seed 3 -out $$dir/data.bin >/dev/null; \
	$$dir/hydra-loadgen -seed 7 -requests 200 -rate 100 -dump-schedule > $$dir/sched1.txt; \
	$$dir/hydra-loadgen -seed 7 -requests 200 -rate 100 -dump-schedule > $$dir/sched2.txt; \
	diff $$dir/sched1.txt $$dir/sched2.txt || { echo "loadgen-smoke: same seed produced different schedules"; exit 1; }; \
	$$dir/hydra-loadgen -seed 8 -requests 200 -rate 100 -dump-schedule | diff -q - $$dir/sched1.txt >/dev/null 2>&1 && { echo "loadgen-smoke: different seeds produced identical schedules"; exit 1; }; \
	$$dir/hydra-serve -data $$dir/data.bin -cache-max-bytes 1048576 -max-inflight 4 -drain-grace 5s -addr $(LOADGEN_SMOKE_ADDR) > $$dir/boot.log 2>&1 & pid=$$!; \
	ok=""; for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do \
	  curl -sf http://$(LOADGEN_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 1; done; \
	[ -n "$$ok" ] || { echo "loadgen-smoke: server did not become healthy"; cat $$dir/boot.log; exit 1; }; \
	$$dir/hydra-loadgen -target http://$(LOADGEN_SMOKE_ADDR) -loop open -rate 150 -requests 450 -seed 7 \
	  -out $$dir/BENCH_loadgen.json -enforce > $$dir/replay.txt || { echo "loadgen-smoke: replay missed its SLOs"; cat $$dir/replay.txt; exit 1; }; \
	grep -q "^total: " $$dir/replay.txt || { echo "loadgen-smoke: replay summary missing totals"; cat $$dir/replay.txt; exit 1; }; \
	grep -q "all SLOs held" $$dir/replay.txt || { echo "loadgen-smoke: SLO verdict missing"; cat $$dir/replay.txt; exit 1; }; \
	grep -E "^total: .*errors=0$$" $$dir/replay.txt >/dev/null || { echo "loadgen-smoke: replay produced unexplained errors"; cat $$dir/replay.txt; exit 1; }; \
	$$dir/hydra-benchgate -thresholds bench_thresholds.json -prefix loadgen/ $$dir/BENCH_loadgen.json \
	  || { echo "loadgen-smoke: bench gate rejected the replay"; cat $$dir/replay.txt; exit 1; }; \
	$$dir/hydra-loadgen -target http://$(LOADGEN_SMOKE_ADDR) -loop open -rate 150 -requests 600 -seed 9 \
	  > $$dir/drain.txt 2>&1 & lgpid=$$!; \
	sleep 1; kill -TERM $$pid; \
	wait $$lgpid || true; \
	wait $$pid 2>/dev/null || true; pid=""; \
	grep -q "drained cleanly" $$dir/boot.log || { echo "loadgen-smoke: server did not drain cleanly"; cat $$dir/boot.log; exit 1; }; \
	grep -E "^total: .*draining=[1-9]" $$dir/drain.txt >/dev/null || { echo "loadgen-smoke: drain surfaced no shutting_down refusals"; cat $$dir/drain.txt; exit 1; }; \
	grep -E "^total: .*errors=0$$" $$dir/drain.txt >/dev/null || { echo "loadgen-smoke: drain produced unexplained errors"; cat $$dir/drain.txt; exit 1; }; \
	echo "loadgen-smoke OK"

# End-to-end observability check: boot hydra-serve with JSON logs, an
# aggressive slow-query threshold and the pprof side listener, fire a
# traced query and assert (via hydra-tracecheck) that the trace's stage
# durations sum to within 5% of its total, confirm the trace ID from the
# response header is retrievable at /debug/requests, confirm the stage
# histograms and build-info gauge are scrapable, pull a pprof profile
# from the side listener, and require the slow-query warning and drain
# line to appear as structured JSON log records.
OBS_SMOKE_ADDR ?= 127.0.0.1:18325
OBS_SMOKE_PPROF ?= 127.0.0.1:18326
obs-smoke:
	@dir=$$(mktemp -d) || exit 1; \
	trap '{ [ -z "$$pid" ] || kill $$pid 2>/dev/null || true; } ; rm -rf "$$dir"' EXIT; \
	set -e; \
	$(GO) build -o $$dir/hydra-gen ./cmd/hydra-gen; \
	$(GO) build -o $$dir/hydra-serve ./cmd/hydra-serve; \
	$(GO) build -o $$dir/hydra-tracecheck ./cmd/hydra-tracecheck; \
	$$dir/hydra-gen -kind walk -n 600 -length 64 -seed 3 -out $$dir/data.bin >/dev/null; \
	$$dir/hydra-gen -kind walk -n 4 -seed 5 -queries-for $$dir/data.bin -out $$dir/queries.bin >/dev/null; \
	$$dir/hydra-serve -data $$dir/data.bin -workload-dir $$dir -log-format json -slow-query 1us \
	  -pprof-addr $(OBS_SMOKE_PPROF) -addr $(OBS_SMOKE_ADDR) > $$dir/boot.log 2>&1 & pid=$$!; \
	ok=""; for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30; do \
	  curl -sf http://$(OBS_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 1; done; \
	[ -n "$$ok" ] || { echo "obs-smoke: server did not become healthy"; cat $$dir/boot.log; exit 1; }; \
	grep -q '"msg":"serving on' $$dir/boot.log || { echo "obs-smoke: boot log is not structured JSON"; cat $$dir/boot.log; exit 1; }; \
	printf '{"method":"DSTree","mode":"exact","k":5,"workload_file":"%s","trace":true}' $$dir/queries.bin > $$dir/req.json; \
	curl -sf -D $$dir/headers.txt -X POST --data @$$dir/req.json http://$(OBS_SMOKE_ADDR)/v1/query > $$dir/resp.json; \
	id=$$(grep -i '^X-Hydra-Trace-Id:' $$dir/headers.txt | tr -d '\r' | awk '{print $$2}'); \
	[ -n "$$id" ] || { echo "obs-smoke: response missing X-Hydra-Trace-Id"; cat $$dir/headers.txt; exit 1; }; \
	$$dir/hydra-tracecheck -slack-ms 0.1 < $$dir/resp.json || { echo "obs-smoke: trace stages do not account for the latency"; cat $$dir/resp.json; exit 1; }; \
	curl -sf -X POST --data @$$dir/req.json http://$(OBS_SMOKE_ADDR)/v1/query > $$dir/resp2.json; \
	grep -q '"cached": true' $$dir/resp2.json || { echo "obs-smoke: repeat query not served from cache"; cat $$dir/resp2.json; exit 1; }; \
	$$dir/hydra-tracecheck -slack-ms 0.1 < $$dir/resp2.json || { echo "obs-smoke: cached replay's trace does not account for its latency"; cat $$dir/resp2.json; exit 1; }; \
	curl -sf http://$(OBS_SMOKE_ADDR)/debug/requests > $$dir/requests.json; \
	grep -q "\"$$id\"" $$dir/requests.json || { echo "obs-smoke: /debug/requests does not retain trace $$id"; cat $$dir/requests.json; exit 1; }; \
	curl -sf http://$(OBS_SMOKE_ADDR)/metrics > $$dir/metrics.txt; \
	grep -q '^hydra_stage_seconds_count{stage="query"} ' $$dir/metrics.txt || { echo "obs-smoke: /metrics missing the stage histogram"; exit 1; }; \
	grep -q '^hydra_build_info{' $$dir/metrics.txt || { echo "obs-smoke: /metrics missing hydra_build_info"; exit 1; }; \
	grep -q '^hydra_process_uptime_seconds ' $$dir/metrics.txt || { echo "obs-smoke: /metrics missing process uptime"; exit 1; }; \
	curl -sf "http://$(OBS_SMOKE_PPROF)/debug/pprof/goroutine?debug=1" | grep -q "^goroutine profile:" \
	  || { echo "obs-smoke: pprof listener not serving profiles"; exit 1; }; \
	curl -sf -o $$dir/heap.pb.gz "http://$(OBS_SMOKE_PPROF)/debug/pprof/heap"; \
	[ -s $$dir/heap.pb.gz ] || { echo "obs-smoke: heap profile came back empty"; exit 1; }; \
	grep -q '"msg":"slow query"' $$dir/boot.log || { echo "obs-smoke: no slow-query record despite -slow-query 1us"; cat $$dir/boot.log; exit 1; }; \
	kill -TERM $$pid; wait $$pid 2>/dev/null || true; pid=""; \
	grep -q '"msg":"drained cleanly"' $$dir/boot.log || { echo "obs-smoke: drain line missing from JSON log"; cat $$dir/boot.log; exit 1; }; \
	echo "obs-smoke OK (trace $$id decomposed and retained)"

# Compiles and runs every benchmark exactly once so they cannot bit-rot.
bench-smoke:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...

# Real (non-smoke) benchmark run: prints the benchstat-able kernel
# micro-benchmarks, measures both kernels through testing.Benchmark and
# writes BENCH_kernels.json at the repo root (name, ns/op, dims, block
# width, speedup vs scalar), the lower-bound phase-1/node-bound shapes
# (legacy loops vs gap-table/packed-region kernels, plus scalar-vs-
# blocked on each form) into BENCH_lowerbounds.json, then measures the
# serve path (cached vs uncached, auto vs fixed method) into
# BENCH_servecache.json. Takes a minute or two.
bench-json:
	$(GO) test -run=XXX -bench=. -benchtime=100x ./internal/kernel/
	HYDRA_BENCH_JSON=$(CURDIR)/BENCH_kernels.json $(GO) test -run=TestWriteBenchJSON -v -count=1 ./internal/eval/
	HYDRA_BENCH_LOWERBOUNDS_JSON=$(CURDIR)/BENCH_lowerbounds.json $(GO) test -run=TestWriteLowerBoundBenchJSON -v -count=1 ./internal/eval/
	HYDRA_BENCH_SERVECACHE_JSON=$(CURDIR)/BENCH_servecache.json $(GO) test -run=TestWriteServeCacheBenchJSON -v -count=1 -timeout=20m ./internal/server/
	HYDRA_BENCH_LOADGEN_JSON=$(CURDIR)/BENCH_loadgen.json $(GO) test -run=TestWriteLoadgenBenchJSON -v -count=1 -timeout=10m ./internal/loadgen/

# CI perf-regression gate: every speedup in the fresh BENCH_*.json files
# must clear its committed floor in bench_thresholds.json. Run after
# bench-json.
bench-gate:
	$(GO) run ./cmd/hydra-benchgate -thresholds bench_thresholds.json BENCH_kernels.json BENCH_lowerbounds.json BENCH_servecache.json BENCH_loadgen.json

# Fails when any file needs gofmt (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
