GO ?= go

.PHONY: all build vet test race bench-smoke fmt

all: fmt vet build test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Pins the Method.Search concurrency contract and the parallel executor.
race:
	$(GO) test -race ./internal/eval/... ./internal/core/...

# Compiles and runs every benchmark exactly once so they cannot bit-rot.
bench-smoke:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...

# Fails when any file needs gofmt (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
