GO ?= go

.PHONY: all build vet test race bench-smoke persist-smoke fmt

all: fmt vet build test race bench-smoke persist-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Pins the Method.Search concurrency contract, the parallel executor and
# the index catalog.
race:
	$(GO) test -race ./internal/eval/... ./internal/core/... ./internal/catalog/...

# End-to-end build-once/query-many check: build + save an index through
# hydra-query -index-dir, then reload it in a second run (must be a cache
# hit) and verify the answers are identical.
persist-smoke:
	@dir=$$(mktemp -d) || exit 1; \
	trap 'rm -rf "$$dir"' EXIT; \
	set -e; \
	$(GO) run ./cmd/hydra-gen -kind walk -n 600 -length 64 -seed 3 -out $$dir/data.bin >/dev/null; \
	$(GO) run ./cmd/hydra-gen -kind walk -n 4 -seed 5 -queries-for $$dir/data.bin -out $$dir/queries.bin >/dev/null; \
	$(GO) run ./cmd/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method DSTree -mode exact -k 5 -workers 1 -index-dir $$dir/idx > $$dir/cold.txt; \
	grep -q "catalog miss: DSTree" $$dir/cold.txt || { echo "persist-smoke: cold run did not report a miss"; cat $$dir/cold.txt; exit 1; }; \
	$(GO) run ./cmd/hydra-query -data $$dir/data.bin -queries $$dir/queries.bin -method DSTree -mode exact -k 5 -workers 1 -index-dir $$dir/idx > $$dir/warm.txt; \
	grep -q "catalog hit: DSTree" $$dir/warm.txt || { echo "persist-smoke: warm run did not hit the catalog"; cat $$dir/warm.txt; exit 1; }; \
	grep -E "^(query|workload:)" $$dir/cold.txt > $$dir/cold-q.txt; \
	grep -E "^(query|workload:)" $$dir/warm.txt > $$dir/warm-q.txt; \
	diff $$dir/cold-q.txt $$dir/warm-q.txt || { echo "persist-smoke: loaded index answered differently"; exit 1; }; \
	echo "persist-smoke OK"

# Compiles and runs every benchmark exactly once so they cannot bit-rot.
bench-smoke:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...

# Fails when any file needs gofmt (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
