// Command hydra-tracecheck validates a traced /v1/query response from
// stdin: the JSON body must carry a "trace" block whose top-level stage
// durations sum to within -max-frac of the trace's total — i.e. the
// server decomposed the request's latency without losing a meaningful
// untraced gap. The obs-smoke Makefile target pipes live responses
// through it, turning the tracing acceptance criterion into a CI check.
//
// Usage:
//
//	curl -s -X POST localhost:8080/v1/query -d '{"method":"DSTree","k":5,"trace":true,"query":[...]}' \
//	    | hydra-tracecheck
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hydra/internal/obs"
)

func main() {
	maxFrac := flag.Float64("max-frac", 0.05, "largest tolerated untraced fraction of the trace total")
	slackMS := flag.Float64("slack-ms", 0, "absolute untraced-gap grace in milliseconds, added to the relative bound (for sub-millisecond requests where scheduler jitter alone exceeds the fraction)")
	flag.Parse()
	if err := run(os.Stdin, *maxFrac, *slackMS); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-tracecheck: %v\n", err)
		os.Exit(1)
	}
}

func run(r *os.File, maxFrac, slackMS float64) error {
	var resp struct {
		Trace *obs.TraceJSON `json:"trace"`
	}
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		return fmt.Errorf("decoding response body: %w", err)
	}
	tj := resp.Trace
	if tj == nil {
		return fmt.Errorf("response has no \"trace\" block (request it with \"trace\": true; tracing must not be disabled)")
	}
	if tj.ID == "" {
		return fmt.Errorf("trace has an empty id")
	}
	if tj.TotalMS <= 0 {
		return fmt.Errorf("trace total %.4fms is not positive", tj.TotalMS)
	}
	if len(tj.Spans) == 0 {
		return fmt.Errorf("trace %s has no spans", tj.ID)
	}
	sum := tj.StageSumMS()
	if sum > tj.TotalMS {
		return fmt.Errorf("trace %s: stages sum to %.4fms, above the total %.4fms", tj.ID, sum, tj.TotalMS)
	}
	if gap := tj.TotalMS - sum; gap > maxFrac*tj.TotalMS+slackMS {
		return fmt.Errorf("trace %s: untraced gap %.4fms is %.1f%% of total %.4fms (max %.1f%% + %.3fms slack)",
			tj.ID, gap, 100*gap/tj.TotalMS, tj.TotalMS, 100*maxFrac, slackMS)
	}
	fmt.Printf("trace %s ok: total %.3fms, stages cover %.1f%% across %d spans\n",
		tj.ID, tj.TotalMS, 100*sum/tj.TotalMS, len(tj.Spans))
	return nil
}
