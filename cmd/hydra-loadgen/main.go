// Command hydra-loadgen is the workload replay harness: a deterministic
// (seeded) traffic generator that drives a live hydra-serve over HTTP with
// a mixed request profile — pinned-exact, pinned-approximate and
// router-auto classes drawing zipf-skewed queries from a shared pool so
// the result cache is exercised honestly — and reports per-class
// p50/p95/p99/p999, throughput, shed/error counts and an SLO error budget.
//
// Two replay modes:
//
//   - open loop (-loop open, default): requests fire at a fixed arrival
//     rate (-rate) regardless of completions, and latency is measured from
//     each request's *scheduled* arrival, not its send — the
//     coordinated-omission-safe way to observe tail latency.
//   - closed loop (-loop closed): -clients concurrent clients each issue
//     the next request as the previous completes, measuring service time.
//
// Usage:
//
//	hydra-loadgen -target http://127.0.0.1:8080 -rate 200 -requests 1000 \
//	    -seed 1 -out BENCH_loadgen.json -enforce
//	hydra-loadgen -seed 1 -requests 1000 -rate 200 -dump-schedule   # no server needed
//
// The same seed always produces the byte-identical request schedule
// (verify with -dump-schedule); -out writes BENCH_loadgen.json rows whose
// SLO floors hydra-benchgate enforces from bench_thresholds.json, and
// -enforce makes hydra-loadgen itself exit 1 when a class misses its p99
// SLO or overspends its error budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"hydra/internal/dataset"
	"hydra/internal/loadgen"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "hydra-serve base URL")
		loop     = flag.String("loop", loadgen.LoopOpen, "replay mode: open (fixed arrival rate, coordinated-omission-safe) or closed (N concurrent clients)")
		rate     = flag.Float64("rate", 100, "open-loop offered arrival rate, requests/second")
		requests = flag.Int("requests", 500, "total requests to replay")
		clients  = flag.Int("clients", 8, "closed-loop concurrency (open loop: transport concurrency bound)")
		seed     = flag.Int64("seed", 1, "schedule + query-pool seed; the same seed replays the byte-identical schedule")
		pool     = flag.Int("pool", 0, "distinct queries in the zipf-reused pool (0 = profile default)")
		zipf     = flag.Float64("zipf", 0, "zipf skew of query reuse, > 1 (0 = profile default)")
		length   = flag.Int("length", 0, "query series length (0 = ask the server via GET /v1/datasets)")
		profile  = flag.String("profile", "", "JSON profile file overriding the default request-class mix")
		out      = flag.String("out", "", "write BENCH_loadgen.json rows to this path")
		dump     = flag.Bool("dump-schedule", false, "print the request schedule and exit without contacting the server")
		enforce  = flag.Bool("enforce", false, "exit 1 when any class misses its p99 SLO or overspends its error budget")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		sloP99   = flag.Float64("slo-p99", 0, "override every class's p99 SLO, seconds (0 keeps the profile's)")
		budget   = flag.Float64("error-budget", -1, "override every class's error budget fraction (negative keeps the profile's)")
		slowest  = flag.Int("slowest", 3, "report the server trace IDs of the N slowest successful requests per class (0 disables)")
	)
	flag.Parse()
	if err := run(options{
		target: *target, loop: *loop, rate: *rate, requests: *requests, clients: *clients,
		seed: *seed, pool: *pool, zipf: *zipf, length: *length, profilePath: *profile,
		out: *out, dump: *dump, enforce: *enforce, timeout: *timeout, sloP99: *sloP99, budget: *budget,
		slowest: *slowest,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-loadgen: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	target, loop, profilePath, out  string
	rate, zipf, sloP99, budget      float64
	requests, clients, pool, length int
	slowest                         int
	seed                            int64
	timeout                         time.Duration
	dump, enforce                   bool
}

func run(opts options) error {
	p := loadgen.DefaultProfile()
	if opts.profilePath != "" {
		var err error
		if p, err = loadgen.LoadProfile(opts.profilePath); err != nil {
			return err
		}
	}
	if opts.pool > 0 {
		p.QueryPool = opts.pool
	}
	if opts.zipf > 0 {
		p.ZipfS = opts.zipf
	}
	for i := range p.Classes {
		if opts.sloP99 > 0 {
			p.Classes[i].SLO.P99Seconds = opts.sloP99
		}
		if opts.budget >= 0 {
			p.Classes[i].SLO.ErrorBudget = opts.budget
		}
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if opts.requests <= 0 {
		return fmt.Errorf("-requests must be positive, got %d", opts.requests)
	}
	schedRate := opts.rate
	if opts.loop != loadgen.LoopOpen {
		schedRate = 0
	} else if schedRate <= 0 {
		return fmt.Errorf("open loop needs a positive -rate, got %g", schedRate)
	}
	reqs := p.Schedule(opts.seed, opts.requests, schedRate)

	if opts.dump {
		return loadgen.WriteSchedule(os.Stdout, p, reqs)
	}

	length := opts.length
	if length <= 0 {
		var err error
		if length, err = fetchSeriesLength(opts.target, opts.timeout); err != nil {
			return fmt.Errorf("resolving query length from %s (set -length to skip): %w", opts.target, err)
		}
	}
	// The pool is derived from the seed, so a fixed (seed, length) pair
	// replays identical query vectors too, not just an identical schedule.
	queries := dataset.Generate(dataset.Config{
		Kind: dataset.KindWalk, Count: p.QueryPool, Length: length, Seed: opts.seed + 1,
	})

	// Options.SlowTraces treats 0 as "default"; the flag treats 0 as
	// "off", so off travels as -1.
	slowTraces := opts.slowest
	if slowTraces <= 0 {
		slowTraces = -1
	}
	rep, err := loadgen.Run(p, reqs, queries, loadgen.Options{
		BaseURL:    opts.target,
		Loop:       opts.loop,
		Rate:       opts.rate,
		Clients:    opts.clients,
		Timeout:    opts.timeout,
		SlowTraces: slowTraces,
	})
	if err != nil {
		return err
	}
	rep.WriteSummary(os.Stdout)

	if opts.out != "" {
		if err := loadgen.WriteBenchJSON(opts.out, rep.BenchRows()); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", opts.out)
	}
	if violations := rep.SLOViolations(); len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("SLO violation: %s\n", v)
		}
		if opts.enforce {
			return fmt.Errorf("%d SLO violation(s)", len(violations))
		}
	} else {
		fmt.Println("all SLOs held")
	}
	return nil
}

// fetchSeriesLength asks the server how long its series are, so generated
// query vectors match the dataset without the caller repeating -length.
func fetchSeriesLength(target string, timeout time.Duration) (int, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(target + "/v1/datasets")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/datasets: status %d", resp.StatusCode)
	}
	var shape struct {
		Datasets []struct {
			Length int `json:"length"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shape); err != nil {
		return 0, err
	}
	if len(shape.Datasets) == 0 || shape.Datasets[0].Length <= 0 {
		return 0, fmt.Errorf("GET /v1/datasets reported no usable series length")
	}
	return shape.Datasets[0].Length, nil
}
