package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// benchRow is the union of the BENCH_*.json row shapes: kernel benchmarks
// carry Kernel and SpeedupVsScalar, serve benchmarks carry Baseline and
// Speedup, and loadgen SLO rows carry either SLOSeconds/ObservedSeconds
// (latency floors) or BudgetAllowed/BudgetSpent (error budgets). Unknown
// fields are ignored so the gate survives new columns.
type benchRow struct {
	Name            string  `json:"name"`
	Kernel          string  `json:"kernel"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
	Baseline        string  `json:"baseline"`
	Speedup         float64 `json:"speedup"`
	SLOSeconds      float64 `json:"slo_seconds"`
	ObservedSeconds float64 `json:"observed_seconds"`
	BudgetAllowed   float64 `json:"budget_allowed"`
	BudgetSpent     float64 `json:"budget_spent"`
}

// comparison returns the row's gated headroom, or ok=false for baseline
// rows that measure nothing relative (scalar kernel rows, serve rows with
// no baseline, reporting-only loadgen rows). For speedup rows the headroom
// is the speedup itself. For SLO latency rows it is slo/observed, so 1.0
// means the observed tail sits exactly on the objective. For error-budget
// rows it is the unspent budget fraction — 1.0 means no budget spent, so a
// threshold of 1.0 demands zero unexplained errors.
func (r benchRow) comparison() (speedup float64, ok bool) {
	if r.Kernel != "" {
		if r.Kernel == "scalar" {
			return 0, false
		}
		return r.SpeedupVsScalar, true
	}
	if r.SLOSeconds > 0 && r.ObservedSeconds > 0 {
		return r.SLOSeconds / r.ObservedSeconds, true
	}
	if r.BudgetAllowed > 0 {
		headroom := (r.BudgetAllowed - r.BudgetSpent) / r.BudgetAllowed
		if headroom < 0 {
			headroom = 0
		}
		return headroom, true
	}
	if r.Baseline == "" {
		return 0, false
	}
	return r.Speedup, true
}

// run checks every threshold against every comparison row from the given
// bench files, writing one verdict line per (threshold, row) pair, and
// returns an error describing all failures if any bar is missed. A
// non-empty prefix restricts the gate to thresholds whose names carry it —
// how a smoke stage gates only its own BENCH file (e.g. -prefix loadgen/)
// without needing every other benchmark rerun first.
func run(w io.Writer, thresholdsPath, prefix string, benchFiles []string) error {
	buf, err := os.ReadFile(thresholdsPath)
	if err != nil {
		return err
	}
	var thresholds map[string]float64
	if err := json.Unmarshal(buf, &thresholds); err != nil {
		return fmt.Errorf("%s: %w", thresholdsPath, err)
	}
	if prefix != "" {
		for name := range thresholds {
			if !strings.HasPrefix(name, prefix) {
				delete(thresholds, name)
			}
		}
		if len(thresholds) == 0 {
			return fmt.Errorf("%s: no thresholds match prefix %q", thresholdsPath, prefix)
		}
	}
	if len(thresholds) == 0 {
		return fmt.Errorf("%s: no thresholds defined", thresholdsPath)
	}

	type measured struct {
		file    string
		row     benchRow
		speedup float64
	}
	byName := map[string][]measured{}
	for _, file := range benchFiles {
		buf, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		var rows []benchRow
		if err := json.Unmarshal(buf, &rows); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		for _, r := range rows {
			if speedup, ok := r.comparison(); ok {
				byName[r.Name] = append(byName[r.Name], measured{file, r, speedup})
			}
		}
	}

	names := make([]string, 0, len(thresholds))
	for name := range thresholds {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		min := thresholds[name]
		rows := byName[name]
		if len(rows) == 0 {
			failures = append(failures, fmt.Sprintf("%s: threshold %.2fx matches no comparison row in %s", name, min, strings.Join(benchFiles, ", ")))
			continue
		}
		for _, m := range rows {
			verdict := "ok"
			if m.speedup < min {
				verdict = "FAIL"
				failures = append(failures, fmt.Sprintf("%s (%s): speedup %.2fx below threshold %.2fx", name, m.file, m.speedup, min))
			}
			detail := ""
			if m.row.Kernel != "" {
				detail = fmt.Sprintf(" kernel=%s", m.row.Kernel)
			}
			fmt.Fprintf(w, "%-4s %s%s: %.2fx (threshold %.2fx)\n", verdict, name, detail, m.speedup, min)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) below threshold:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "bench gate passed: %d threshold(s) held\n", len(names))
	return nil
}
