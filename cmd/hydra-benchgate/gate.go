package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// benchRow is the union of the BENCH_*.json row shapes: kernel benchmarks
// carry Kernel and SpeedupVsScalar, serve benchmarks carry Baseline and
// Speedup. Unknown fields are ignored so the gate survives new columns.
type benchRow struct {
	Name            string  `json:"name"`
	Kernel          string  `json:"kernel"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
	Baseline        string  `json:"baseline"`
	Speedup         float64 `json:"speedup"`
}

// comparison returns the row's gated speedup, or ok=false for baseline
// rows that measure nothing relative (scalar kernel rows, serve rows with
// no baseline).
func (r benchRow) comparison() (speedup float64, ok bool) {
	if r.Kernel != "" {
		if r.Kernel == "scalar" {
			return 0, false
		}
		return r.SpeedupVsScalar, true
	}
	if r.Baseline == "" {
		return 0, false
	}
	return r.Speedup, true
}

// run checks every threshold against every comparison row from the given
// bench files, writing one verdict line per (threshold, row) pair, and
// returns an error describing all failures if any bar is missed.
func run(w io.Writer, thresholdsPath string, benchFiles []string) error {
	buf, err := os.ReadFile(thresholdsPath)
	if err != nil {
		return err
	}
	var thresholds map[string]float64
	if err := json.Unmarshal(buf, &thresholds); err != nil {
		return fmt.Errorf("%s: %w", thresholdsPath, err)
	}
	if len(thresholds) == 0 {
		return fmt.Errorf("%s: no thresholds defined", thresholdsPath)
	}

	type measured struct {
		file    string
		row     benchRow
		speedup float64
	}
	byName := map[string][]measured{}
	for _, file := range benchFiles {
		buf, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		var rows []benchRow
		if err := json.Unmarshal(buf, &rows); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		for _, r := range rows {
			if speedup, ok := r.comparison(); ok {
				byName[r.Name] = append(byName[r.Name], measured{file, r, speedup})
			}
		}
	}

	names := make([]string, 0, len(thresholds))
	for name := range thresholds {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		min := thresholds[name]
		rows := byName[name]
		if len(rows) == 0 {
			failures = append(failures, fmt.Sprintf("%s: threshold %.2fx matches no comparison row in %s", name, min, strings.Join(benchFiles, ", ")))
			continue
		}
		for _, m := range rows {
			verdict := "ok"
			if m.speedup < min {
				verdict = "FAIL"
				failures = append(failures, fmt.Sprintf("%s (%s): speedup %.2fx below threshold %.2fx", name, m.file, m.speedup, min))
			}
			detail := ""
			if m.row.Kernel != "" {
				detail = fmt.Sprintf(" kernel=%s", m.row.Kernel)
			}
			fmt.Fprintf(w, "%-4s %s%s: %.2fx (threshold %.2fx)\n", verdict, name, detail, m.speedup, min)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) below threshold:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "bench gate passed: %d threshold(s) held\n", len(names))
	return nil
}
