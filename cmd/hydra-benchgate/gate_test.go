package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const kernelRows = `[
  {"name": "SquaredDists/cands=1024", "kernel": "scalar", "ns_per_op": 100, "speedup_vs_scalar": 1},
  {"name": "SquaredDists/cands=1024", "kernel": "blocked", "ns_per_op": 40, "speedup_vs_scalar": 2.5},
  {"name": "SquaredDists/cands=1024", "kernel": "blocked", "ns_per_op": 55, "speedup_vs_scalar": 1.8},
  {"name": "method/DSTree/exact", "kernel": "scalar", "ns_per_op": 900, "speedup_vs_scalar": 1},
  {"name": "method/DSTree/exact", "kernel": "blocked", "ns_per_op": 500, "speedup_vs_scalar": 1.8}
]`

const serveRows = `[
  {"name": "serve/DSTree-exact/uncached", "ns_per_op": 3000000, "speedup": 1},
  {"name": "serve/DSTree-exact/cache-hit", "ns_per_op": 400000, "baseline": "serve/DSTree-exact/uncached", "speedup": 7.5}
]`

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json", `{"SquaredDists/cands=1024": 1.2, "method/DSTree/exact": 1.2, "serve/DSTree-exact/cache-hit": 5.0}`)
	k := write(t, dir, "k.json", kernelRows)
	s := write(t, dir, "s.json", serveRows)
	var out strings.Builder
	if err := run(&out, th, []string{k, s}); err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bench gate passed: 3 threshold(s) held") {
		t.Fatalf("missing pass summary:\n%s", out.String())
	}
	// Scalar baselines (speedup 1.0 by construction) must not be gated.
	if strings.Contains(out.String(), "kernel=scalar") {
		t.Fatalf("scalar baseline rows were gated:\n%s", out.String())
	}
}

func TestGateFailsBelowThreshold(t *testing.T) {
	dir := t.TempDir()
	// 1.8 < 2.0: the second blocked measurement of the same name misses.
	th := write(t, dir, "thresholds.json", `{"SquaredDists/cands=1024": 2.0}`)
	k := write(t, dir, "k.json", kernelRows)
	var out strings.Builder
	err := run(&out, th, []string{k})
	if err == nil {
		t.Fatalf("gate passed despite 1.8x < 2.0x:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "below threshold") {
		t.Fatalf("error = %v", err)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("no FAIL verdict line:\n%s", out.String())
	}
}

func TestGateFailsOnUnmatchedThreshold(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json", `{"method/Renamed/exact": 1.2}`)
	k := write(t, dir, "k.json", kernelRows)
	var out strings.Builder
	err := run(&out, th, []string{k})
	if err == nil || !strings.Contains(err.Error(), "matches no comparison row") {
		t.Fatalf("renamed benchmark not caught: %v", err)
	}
}

func TestGateRejectsEmptyThresholds(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json", `{}`)
	k := write(t, dir, "k.json", kernelRows)
	if err := run(&strings.Builder{}, th, []string{k}); err == nil {
		t.Fatal("empty thresholds accepted")
	}
}
