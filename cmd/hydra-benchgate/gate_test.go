package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const kernelRows = `[
  {"name": "SquaredDists/cands=1024", "kernel": "scalar", "ns_per_op": 100, "speedup_vs_scalar": 1},
  {"name": "SquaredDists/cands=1024", "kernel": "blocked", "ns_per_op": 40, "speedup_vs_scalar": 2.5},
  {"name": "SquaredDists/cands=1024", "kernel": "blocked", "ns_per_op": 55, "speedup_vs_scalar": 1.8},
  {"name": "method/DSTree/exact", "kernel": "scalar", "ns_per_op": 900, "speedup_vs_scalar": 1},
  {"name": "method/DSTree/exact", "kernel": "blocked", "ns_per_op": 500, "speedup_vs_scalar": 1.8}
]`

const serveRows = `[
  {"name": "serve/DSTree-exact/uncached", "ns_per_op": 3000000, "speedup": 1},
  {"name": "serve/DSTree-exact/cache-hit", "ns_per_op": 400000, "baseline": "serve/DSTree-exact/uncached", "speedup": 7.5}
]`

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json", `{"SquaredDists/cands=1024": 1.2, "method/DSTree/exact": 1.2, "serve/DSTree-exact/cache-hit": 5.0}`)
	k := write(t, dir, "k.json", kernelRows)
	s := write(t, dir, "s.json", serveRows)
	var out strings.Builder
	if err := run(&out, th, "", []string{k, s}); err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bench gate passed: 3 threshold(s) held") {
		t.Fatalf("missing pass summary:\n%s", out.String())
	}
	// Scalar baselines (speedup 1.0 by construction) must not be gated.
	if strings.Contains(out.String(), "kernel=scalar") {
		t.Fatalf("scalar baseline rows were gated:\n%s", out.String())
	}
}

func TestGateFailsBelowThreshold(t *testing.T) {
	dir := t.TempDir()
	// 1.8 < 2.0: the second blocked measurement of the same name misses.
	th := write(t, dir, "thresholds.json", `{"SquaredDists/cands=1024": 2.0}`)
	k := write(t, dir, "k.json", kernelRows)
	var out strings.Builder
	err := run(&out, th, "", []string{k})
	if err == nil {
		t.Fatalf("gate passed despite 1.8x < 2.0x:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "below threshold") {
		t.Fatalf("error = %v", err)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("no FAIL verdict line:\n%s", out.String())
	}
}

func TestGateFailsOnUnmatchedThreshold(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json", `{"method/Renamed/exact": 1.2}`)
	k := write(t, dir, "k.json", kernelRows)
	var out strings.Builder
	err := run(&out, th, "", []string{k})
	if err == nil || !strings.Contains(err.Error(), "matches no comparison row") {
		t.Fatalf("renamed benchmark not caught: %v", err)
	}
}

func TestGateRejectsEmptyThresholds(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json", `{}`)
	k := write(t, dir, "k.json", kernelRows)
	if err := run(&strings.Builder{}, th, "", []string{k}); err == nil {
		t.Fatal("empty thresholds accepted")
	}
}

const loadgenRows = `[
  {"name": "loadgen/exact-pinned/p99", "class": "exact-pinned", "loop": "open",
   "requests": 200, "ok": 198, "shed": 2, "p99_seconds": 0.05,
   "slo_seconds": 0.75, "observed_seconds": 0.05},
  {"name": "loadgen/exact-pinned/error-budget", "class": "exact-pinned",
   "requests": 200, "budget_allowed": 0.005, "budget_spent": 0},
  {"name": "loadgen/overall/throughput", "loop": "open", "requests": 200,
   "throughput_rps": 195, "baseline": "offered-rate", "speedup": 0.975}
]`

// TestGateSLORows pins the loadgen row semantics: latency rows gate on
// slo/observed headroom, budget rows on the unspent budget fraction, and a
// threshold of 1.0 on a budget row demands zero unexplained errors.
func TestGateSLORows(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json",
		`{"loadgen/exact-pinned/p99": 1.0, "loadgen/exact-pinned/error-budget": 1.0, "loadgen/overall/throughput": 0.5}`)
	lg := write(t, dir, "lg.json", loadgenRows)
	var out strings.Builder
	if err := run(&out, th, "", []string{lg}); err != nil {
		t.Fatalf("gate failed on healthy loadgen rows: %v\n%s", err, out.String())
	}
	// 0.75s SLO over 0.05s observed = 15x headroom.
	if !strings.Contains(out.String(), "loadgen/exact-pinned/p99: 15.00x") {
		t.Fatalf("latency headroom not slo/observed:\n%s", out.String())
	}
}

func TestGateSLOViolationFails(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json", `{"loadgen/slow/p99": 1.0}`)
	lg := write(t, dir, "lg.json",
		`[{"name": "loadgen/slow/p99", "slo_seconds": 0.1, "observed_seconds": 0.4}]`)
	var out strings.Builder
	err := run(&out, th, "", []string{lg})
	if err == nil || !strings.Contains(err.Error(), "below threshold") {
		t.Fatalf("p99 4x over SLO passed the gate: %v\n%s", err, out.String())
	}
}

func TestGateErrorBudgetOverspendFails(t *testing.T) {
	dir := t.TempDir()
	th := write(t, dir, "thresholds.json", `{"loadgen/flaky/error-budget": 1.0}`)
	// Any spend under a 1.0 threshold fails; overspend clamps to 0 headroom.
	for _, spent := range []string{"0.001", "0.02"} {
		lg := write(t, dir, "lg.json",
			`[{"name": "loadgen/flaky/error-budget", "budget_allowed": 0.005, "budget_spent": `+spent+`}]`)
		var out strings.Builder
		if err := run(&out, th, "", []string{lg}); err == nil {
			t.Fatalf("budget spend %s passed a 1.0 threshold:\n%s", spent, out.String())
		}
	}
}

func TestGatePrefixFilter(t *testing.T) {
	dir := t.TempDir()
	// Thresholds for kernels AND loadgen, but only the loadgen BENCH file:
	// without -prefix the kernel thresholds match no row and fail; with
	// -prefix loadgen/ the gate scopes to the smoke's own rows.
	th := write(t, dir, "thresholds.json",
		`{"SquaredDists/cands=1024": 1.2, "loadgen/exact-pinned/p99": 1.0, "loadgen/exact-pinned/error-budget": 1.0}`)
	lg := write(t, dir, "lg.json", loadgenRows)
	if err := run(&strings.Builder{}, th, "", []string{lg}); err == nil {
		t.Fatalf("unmatched kernel threshold passed without prefix")
	}
	var out strings.Builder
	if err := run(&out, th, "loadgen/", []string{lg}); err != nil {
		t.Fatalf("prefix-scoped gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bench gate passed: 2 threshold(s) held") {
		t.Fatalf("prefix did not scope to 2 thresholds:\n%s", out.String())
	}
	if err := run(&strings.Builder{}, th, "nosuch/", []string{lg}); err == nil {
		t.Fatalf("prefix matching nothing passed")
	}
}
