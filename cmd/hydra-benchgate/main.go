// Command hydra-benchgate is the CI performance-regression gate: it reads
// one or more BENCH_*.json files produced by `make bench-json` and fails
// (exit 1) when any measured speedup falls below its committed threshold
// in bench_thresholds.json.
//
// Usage:
//
//	hydra-benchgate -thresholds bench_thresholds.json BENCH_kernels.json BENCH_servecache.json
//
// The thresholds file maps benchmark names to minimum speedups, e.g.
//
//	{"SquaredDists/cands=1024": 1.2, "serve/DSTree-exact/cache-hit": 5.0}
//
// A threshold applies to every comparison row with that name (a kernel
// benchmark is measured at several dims under the same name; all must
// clear the bar). Baseline rows — kernel "scalar", or servecache rows
// without a baseline — are skipped: their speedup is 1.0 by construction.
// A threshold that matches no row fails the gate too, so a renamed or
// dropped benchmark cannot silently stop being enforced.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	thresholds := flag.String("thresholds", "bench_thresholds.json", "JSON file mapping benchmark names to minimum speedups")
	prefix := flag.String("prefix", "", "gate only thresholds whose names start with this prefix (e.g. loadgen/)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "hydra-benchgate: at least one BENCH_*.json file is required")
		os.Exit(2)
	}
	if err := run(os.Stdout, *thresholds, *prefix, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-benchgate: %v\n", err)
		os.Exit(1)
	}
}
