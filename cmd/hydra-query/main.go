// Command hydra-query builds (or reopens) an index over a dataset file and
// answers a workload of k-NN queries, printing per-query answers and
// summary statistics.
//
// Usage:
//
//	hydra-query -data data.bin -queries queries.bin -method DSTree \
//	            -mode delta-epsilon -epsilon 1 -delta 0.99 -k 10
//
// With -index-dir, built indexes are persisted to an on-disk catalog keyed
// by (dataset fingerprint, method, build config): the first run builds and
// saves, later runs load instead of rebuilding and report the cache hit
// and load-vs-build seconds — the paper's build-once / query-many
// workflow.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hydra/internal/core"
	"hydra/internal/eval"
	"hydra/internal/kernel"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// options carries every flag so run stays testable.
type options struct {
	dataPath  string
	queryPath string
	method    string
	mode      string
	epsilon   float64
	delta     float64
	nprobe    int
	k         int
	truth     bool
	workers   int
	indexDir  string
	shards    int
	kernel    string
}

func main() {
	var o options
	flag.StringVar(&o.dataPath, "data", "", "dataset file (required)")
	flag.StringVar(&o.queryPath, "queries", "", "query workload file (required)")
	flag.StringVar(&o.method, "method", "DSTree", "method name (see hydra-bench)")
	flag.StringVar(&o.mode, "mode", "exact", "exact|ng|epsilon|delta-epsilon")
	flag.Float64Var(&o.epsilon, "epsilon", 0, "epsilon bound")
	flag.Float64Var(&o.delta, "delta", 1, "delta probability")
	flag.IntVar(&o.nprobe, "nprobe", 8, "probe budget for ng mode")
	flag.IntVar(&o.k, "k", 10, "neighbours per query")
	flag.BoolVar(&o.truth, "truth", true, "compute exact ground truth and report accuracy")
	flag.IntVar(&o.workers, "workers", 0, "concurrent query workers for the workload run (0 = all cores)")
	flag.StringVar(&o.indexDir, "index-dir", "", "persistent index catalog directory: save built indexes and reuse them on later runs")
	flag.IntVar(&o.shards, "shards", 1, "split the dataset into N contiguous shards with one index each; queries scatter-gather across them (exact answers are identical to unsharded)")
	flag.StringVar(&o.kernel, "kernel", "", "distance kernel: scalar|blocked (default blocked); answers are bit-identical, only speed differs")
	flag.Parse()
	if o.dataPath == "" || o.queryPath == "" {
		fmt.Fprintln(os.Stderr, "hydra-query: -data and -queries are required")
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-query: %v\n", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	k, err := kernel.Parse(o.kernel)
	if err != nil {
		return err
	}
	kernel.Use(k)
	data, err := series.LoadFile(o.dataPath)
	if err != nil {
		return err
	}
	queries, err := series.LoadFile(o.queryPath)
	if err != nil {
		return err
	}
	if queries.Length() != data.Length() {
		return fmt.Errorf("query length %d != data length %d", queries.Length(), data.Length())
	}
	var qmode core.Mode
	switch strings.ToLower(o.mode) {
	case "exact":
		qmode = core.ModeExact
	case "ng":
		qmode = core.ModeNG
	case "epsilon":
		qmode = core.ModeEpsilon
	case "delta-epsilon":
		qmode = core.ModeDeltaEpsilon
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}

	w := eval.Workload{Data: data, Queries: queries, K: o.k}
	if o.truth {
		w.Truth = scan.GroundTruth(data, queries, o.k)
	}
	cfg := eval.DefaultSuite()
	cfg.IndexDir = o.indexDir
	cfg.Shards = o.shards
	if o.indexDir != "" {
		cfg.BuildLog = out
	}
	built, err := eval.BuildMethod(o.method, w, cfg)
	if err != nil {
		return err
	}
	if built.Shards > 1 {
		if o.indexDir != "" {
			fmt.Fprintf(out, "sharded %d ways (%d/%d shard indexes from catalog)\n",
				built.Shards, built.ShardHits, built.Shards)
		} else {
			fmt.Fprintf(out, "sharded %d ways\n", built.Shards)
		}
	}
	if built.FromCache {
		fmt.Fprintf(out, "loaded %s over %d series from catalog (%.3fs, footprint %d bytes)\n",
			built.Method.Name(), data.Size(), built.LoadSeconds, built.Footprint)
	} else {
		fmt.Fprintf(out, "built %s over %d series (%.2fs, footprint %d bytes)\n",
			built.Method.Name(), data.Size(), built.BuildSeconds, built.Footprint)
	}

	template := core.Query{Mode: qmode, Epsilon: o.epsilon, Delta: o.delta, NProbe: o.nprobe}
	for qi := 0; qi < queries.Size(); qi++ {
		q := template
		q.Series = queries.At(qi)
		q.K = o.k
		res, err := built.Method.Search(q)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, eval.AnswerLine(qi, res.Neighbors))
	}
	if o.truth {
		res, err := eval.ParallelRun(built.Method, w, template, storage.DefaultCostModel(), eval.RunOptions{Workers: o.workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "workload: MAP=%.4f AvgRecall=%.4f MRE=%.4f randIO=%d bytes=%d\n",
			res.Metrics.MAP, res.Metrics.AvgRecall, res.Metrics.MRE, res.IO.RandomSeeks, res.IO.BytesRead)
	}
	return nil
}
