// Command hydra-query builds an index over a dataset file and answers a
// workload of k-NN queries, printing per-query answers and summary
// statistics.
//
// Usage:
//
//	hydra-query -data data.bin -queries queries.bin -method dstree \
//	            -mode delta-epsilon -epsilon 1 -delta 0.99 -k 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hydra/internal/core"
	"hydra/internal/eval"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file (required)")
		queryPath = flag.String("queries", "", "query workload file (required)")
		method    = flag.String("method", "DSTree", "method name (see hydra-bench)")
		mode      = flag.String("mode", "exact", "exact|ng|epsilon|delta-epsilon")
		epsilon   = flag.Float64("epsilon", 0, "epsilon bound")
		delta     = flag.Float64("delta", 1, "delta probability")
		nprobe    = flag.Int("nprobe", 8, "probe budget for ng mode")
		k         = flag.Int("k", 10, "neighbours per query")
		truth     = flag.Bool("truth", true, "compute exact ground truth and report accuracy")
		workers   = flag.Int("workers", 0, "concurrent query workers for the workload run (0 = all cores)")
	)
	flag.Parse()
	if *dataPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "hydra-query: -data and -queries are required")
		os.Exit(2)
	}
	if err := run(*dataPath, *queryPath, *method, *mode, *epsilon, *delta, *nprobe, *k, *truth, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-query: %v\n", err)
		os.Exit(1)
	}
}

func run(dataPath, queryPath, method, modeName string, epsilon, delta float64, nprobe, k int, wantTruth bool, workers int) error {
	data, err := series.LoadFile(dataPath)
	if err != nil {
		return err
	}
	queries, err := series.LoadFile(queryPath)
	if err != nil {
		return err
	}
	if queries.Length() != data.Length() {
		return fmt.Errorf("query length %d != data length %d", queries.Length(), data.Length())
	}
	var qmode core.Mode
	switch strings.ToLower(modeName) {
	case "exact":
		qmode = core.ModeExact
	case "ng":
		qmode = core.ModeNG
	case "epsilon":
		qmode = core.ModeEpsilon
	case "delta-epsilon":
		qmode = core.ModeDeltaEpsilon
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	w := eval.Workload{Data: data, Queries: queries, K: k}
	if wantTruth {
		w.Truth = scan.GroundTruth(data, queries, k)
	}
	cfg := eval.DefaultSuite()
	built, err := eval.BuildMethod(method, w, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("built %s over %d series (%.2fs, footprint %d bytes)\n",
		built.Method.Name(), data.Size(), built.BuildSeconds, built.Footprint)

	template := core.Query{Mode: qmode, Epsilon: epsilon, Delta: delta, NProbe: nprobe}
	for qi := 0; qi < queries.Size(); qi++ {
		q := template
		q.Series = queries.At(qi)
		q.K = k
		res, err := built.Method.Search(q)
		if err != nil {
			return err
		}
		fmt.Printf("query %3d:", qi)
		for _, nb := range res.Neighbors {
			fmt.Printf(" (%d, %.4f)", nb.ID, nb.Dist)
		}
		fmt.Println()
	}
	if wantTruth {
		out, err := eval.ParallelRun(built.Method, w, template, storage.DefaultCostModel(), eval.RunOptions{Workers: workers})
		if err != nil {
			return err
		}
		fmt.Printf("workload: MAP=%.4f AvgRecall=%.4f MRE=%.4f randIO=%d bytes=%d\n",
			out.Metrics.MAP, out.Metrics.AvgRecall, out.Metrics.MRE, out.IO.RandomSeeks, out.IO.BytesRead)
	}
	return nil
}
