package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"hydra/internal/dataset"
)

// TestIndexDirBuildOnceQueryMany is the end-to-end acceptance test for the
// persistent catalog: the first -index-dir run builds and saves, the
// second loads (a logged cache hit, no Build call) and returns identical
// search results.
func TestIndexDirBuildOnceQueryMany(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.bin")
	queryPath := filepath.Join(dir, "queries.bin")
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 600, Length: 48, Seed: 11})
	if err := data.SaveFile(dataPath); err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 4, 12)
	if err := queries.SaveFile(queryPath); err != nil {
		t.Fatal(err)
	}

	o := options{
		dataPath:  dataPath,
		queryPath: queryPath,
		method:    "DSTree",
		mode:      "exact",
		delta:     1,
		nprobe:    8,
		k:         5,
		truth:     true,
		workers:   1,
		indexDir:  filepath.Join(dir, "idx"),
	}

	var cold bytes.Buffer
	if err := run(o, &cold); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if !strings.Contains(cold.String(), "catalog miss: DSTree") {
		t.Fatalf("cold run did not log a miss:\n%s", cold.String())
	}
	if !strings.Contains(cold.String(), "built DSTree") {
		t.Fatalf("cold run did not report building:\n%s", cold.String())
	}

	var warm bytes.Buffer
	if err := run(o, &warm); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !strings.Contains(warm.String(), "catalog hit: DSTree") {
		t.Fatalf("warm run did not log a cache hit:\n%s", warm.String())
	}
	if !strings.Contains(warm.String(), "loaded DSTree") {
		t.Fatalf("warm run did not report loading:\n%s", warm.String())
	}
	if strings.Contains(warm.String(), "catalog miss") {
		t.Fatalf("warm run rebuilt:\n%s", warm.String())
	}

	// Search results must be identical between the built and loaded index.
	queryLines := func(out string) []string {
		var lines []string
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "query") || strings.HasPrefix(l, "workload:") {
				lines = append(lines, l)
			}
		}
		return lines
	}
	a, b := queryLines(cold.String()), queryLines(warm.String())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("query line mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("line %d differs:\ncold: %s\nwarm: %s", i, a[i], b[i])
		}
	}
}

// TestRunWithoutIndexDir keeps the classic rebuild path intact.
func TestRunWithoutIndexDir(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.bin")
	queryPath := filepath.Join(dir, "queries.bin")
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 300, Length: 32, Seed: 21})
	if err := data.SaveFile(dataPath); err != nil {
		t.Fatal(err)
	}
	if err := dataset.Queries(data, dataset.KindWalk, 2, 22).SaveFile(queryPath); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	o := options{dataPath: dataPath, queryPath: queryPath, method: "iSAX2+", mode: "ng", nprobe: 4, delta: 1, k: 3, truth: false, workers: 1}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "catalog") {
		t.Errorf("catalog engaged without -index-dir:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "built iSAX2+") {
		t.Errorf("no build line:\n%s", out.String())
	}
}
