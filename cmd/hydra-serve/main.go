// Command hydra-serve is the long-running HTTP query service: it loads a
// dataset once, hydrates indexes through the persistent catalog (building
// and saving on the first boot against an -index-dir, loading warm on
// every later boot) and then answers many independent query requests from
// one process — the paper's build-once / query-many workflow as a server.
//
// Usage:
//
//	hydra-serve -data data.bin -index-dir ./idx -workload-dir . -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/methods
//	curl -s -X POST localhost:8080/v1/query \
//	     -d '{"method":"DSTree","k":10,"query":[...128 floats...]}'
//
// Endpoints, request fields and the error shape are documented in
// docs/API.md; warm-start operations in docs/OPERATIONS.md; tracing, the
// slow-query log and the pprof listener in docs/OBSERVABILITY.md.
// SIGINT/SIGTERM begin a graceful drain: in-flight requests finish, new
// ones get the documented 503 "shutting_down" error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hydra/internal/catalog"
	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/obs"
	"hydra/internal/series"
	"hydra/internal/server"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "dataset file (required)")
		addr       = flag.String("addr", ":8080", "listen address")
		indexDir   = flag.String("index-dir", "", "persistent index catalog directory (enables warm starts)")
		workload   = flag.String("workload-dir", "", "directory query requests may reference workload files from; empty disables \"workload_file\"")
		shards     = flag.Int("shards", 1, "split the dataset into N contiguous shards with one index per (shard, method); queries scatter-gather across them and warm boots load every shard snapshot")
		maxBytes   = flag.Int64("catalog-max-bytes", 0, "after the warm start, prune the -index-dir catalog least-recently-used-first until its entries fit this budget (0 disables)")
		preload    = flag.String("preload", "persistable", "methods to hydrate at boot: \"persistable\", \"all\", \"none\", or a comma-separated list")
		cacheMax   = flag.Int64("cache-max-bytes", 64<<20, "byte budget of the in-memory query-result cache (LRU-evicted; repeated identical requests replay with \"cached\":true); 0 disables")
		inflight   = flag.Int("max-inflight", 0, "admission control: at most N /v1/query requests execute concurrently, up to 2N more queue, the rest are shed with 429 \"overloaded\"; also clamps per-request workers to cores/N (0 disables)")
		auto       = flag.Bool("auto", true, "enable the adaptive method router behind \"method\":\"auto\" (Fig. 9 seed matrix refined by live per-method latency)")
		workers    = flag.Int("workers", 0, "default per-request query fan-out (0 = serial, negative = all cores)")
		warmupPar  = flag.Int("warmup-workers", -1, "boot hydration fan-out (negative = all cores)")
		reqTimeout = flag.Duration("request-timeout", 60*time.Second, "per-request handler timeout (0 disables)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
		drainGrace = flag.Duration("drain-grace", 0, "keep listening this long after SIGTERM so late requests observe 503 \"shutting_down\" instead of connection refused (0 closes listeners immediately)")
		kern       = flag.String("kernel", "", "distance kernel: scalar|blocked (default blocked); answers are bit-identical, only speed differs")
		logFormat  = flag.String("log-format", "text", "log output format: text|json (one object per line)")
		slowQuery  = flag.Duration("slow-query", 0, "log any /v1/query request slower than this threshold, with its trace ID (0 disables)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (e.g. 127.0.0.1:6060); empty disables")
		traceRing  = flag.Int("trace-ring", 256, "request traces retained for GET /debug/requests; 0 disables tracing entirely")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "hydra-serve: -data is required")
		os.Exit(2)
	}
	k, err := kernel.Parse(*kern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-serve: %v\n", err)
		os.Exit(2)
	}
	kernel.Use(k)
	logger, err := obs.NewLogger(os.Stdout, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-serve: %v\n", err)
		os.Exit(2)
	}
	ring := *traceRing
	if ring <= 0 {
		ring = -1 // Config.TraceRing: 0 means default, negative disables
	}
	opts := options{
		dataPath: *dataPath, addr: *addr, indexDir: *indexDir, workloadDir: *workload,
		preload: *preload, workers: *workers, warmupPar: *warmupPar, shards: *shards,
		catalogMaxBytes: *maxBytes, cacheMax: *cacheMax, inflight: *inflight, auto: *auto,
		reqTimeout: *reqTimeout, drainWait: *drainWait, drainGrace: *drainGrace,
		logger: logger, slowQuery: *slowQuery, pprofAddr: *pprofAddr, traceRing: ring,
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-serve: %v\n", err)
		os.Exit(1)
	}
}

// options carries the parsed flag set into run.
type options struct {
	dataPath, addr, indexDir, workloadDir, preload string
	workers, warmupPar, shards, inflight           int
	catalogMaxBytes, cacheMax                      int64
	auto                                           bool
	reqTimeout, drainWait, drainGrace              time.Duration
	logger                                         *slog.Logger
	slowQuery                                      time.Duration
	pprofAddr                                      string
	traceRing                                      int
}

func run(opts options) error {
	dataPath, addr, indexDir := opts.dataPath, opts.addr, opts.indexDir
	reqTimeout, drainWait := opts.reqTimeout, opts.drainWait
	logger := opts.logger
	start := time.Now()
	data, err := series.LoadFile(dataPath)
	if err != nil {
		return err
	}
	logger.Info(fmt.Sprintf("loaded %s: %d series of length %d", dataPath, data.Size(), data.Length()),
		"seconds", time.Since(start).Seconds(), "kernel", kernel.Active().String())

	names, err := parsePreload(opts.preload)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Data:           data,
		DatasetPath:    dataPath,
		IndexDir:       indexDir,
		WorkloadDir:    opts.workloadDir,
		Shards:         opts.shards,
		Preload:        names,
		DefaultWorkers: opts.workers,
		WarmupWorkers:  opts.warmupPar,
		CacheMaxBytes:  opts.cacheMax,
		MaxInflight:    opts.inflight,
		DisableAuto:    !opts.auto,
		Logger:         logger,
		SlowQuery:      opts.slowQuery,
		TraceRing:      opts.traceRing,
	})
	if err != nil {
		return err
	}
	if opts.cacheMax > 0 {
		logger.Info("result cache enabled", "byte_budget", opts.cacheMax)
	}
	if opts.inflight > 0 {
		logger.Info("admission control enabled", "max_inflight", opts.inflight, "max_queued", 2*opts.inflight)
	}
	if opts.slowQuery > 0 {
		logger.Info("slow-query log enabled", "threshold", opts.slowQuery.String())
	}
	if catalogMaxBytes := opts.catalogMaxBytes; catalogMaxBytes > 0 && indexDir != "" {
		// Prune after the warm start so the freshly touched (or written)
		// serving set is the youngest and survives the LRU eviction. Like
		// a failed catalog save, a failed prune must not take down a
		// server that just hydrated successfully: the cache being over
		// budget is an operational nuisance, not a serving failure.
		if rep, err := catalog.Prune(indexDir, catalogMaxBytes); err != nil {
			logger.Warn("catalog prune failed (serving continues)", "error", err.Error())
		} else {
			logger.Info("catalog pruned", "removed", rep.Removed, "freed_bytes", rep.FreedBytes,
				"kept", rep.Kept, "kept_bytes", rep.KeptBytes, "budget_bytes", catalogMaxBytes)
		}
	}

	if opts.pprofAddr != "" {
		// pprof gets its own mux on its own listener: profiling endpoints
		// never share the query port, so they can stay unexposed (bind to
		// localhost) while the service itself is reachable.
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: opts.pprofAddr, Handler: pprofMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener failed", "addr", opts.pprofAddr, "error", err.Error())
			}
		}()
		defer pprofSrv.Close()
		logger.Info("pprof listening on "+opts.pprofAddr, "addr", opts.pprofAddr)
	}

	handler := srv.Handler()
	if reqTimeout > 0 {
		// The timeout body mirrors the service's documented error shape.
		// TimeoutHandler writes its body against the outer writer's header
		// map, so the JSON content type is pre-set here; every inner
		// handler overwrites it with its own on the success path.
		inner := http.TimeoutHandler(handler, reqTimeout,
			`{"error":{"code":"request_timeout","message":"request exceeded the server's -request-timeout","status":503}}`)
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			inner.ServeHTTP(w, r)
		})
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving on "+addr, "boot_seconds", time.Since(start).Seconds())

	select {
	case sig := <-stop:
		logger.Info(fmt.Sprintf("received %s: draining", sig), "deadline", drainWait.String())
		srv.BeginShutdown()
		if opts.drainGrace > 0 {
			// http.Server.Shutdown closes the listeners immediately, so
			// without this window a client racing the drain sees connection
			// refused — an unexplained error — instead of the documented 503
			// "shutting_down" refusal the drain latch now serves.
			time.Sleep(opts.drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		logger.Info("drained cleanly")
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// parsePreload maps the -preload flag onto a method-name list: nil means
// "every persistable method" (server.Config's default), an empty non-nil
// slice means none.
func parsePreload(s string) ([]string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "persistable":
		return nil, nil
	case "all":
		return core.MethodNames(), nil
	case "none":
		return []string{}, nil
	}
	var names []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if _, ok := core.LookupMethod(name); !ok {
			return nil, fmt.Errorf("-preload: unknown method %q (known: %s)", name, strings.Join(core.MethodNames(), ", "))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-preload: empty method list")
	}
	return names, nil
}
