// Command hydra-serve is the long-running HTTP query service: it loads a
// dataset once, hydrates indexes through the persistent catalog (building
// and saving on the first boot against an -index-dir, loading warm on
// every later boot) and then answers many independent query requests from
// one process — the paper's build-once / query-many workflow as a server.
//
// Usage:
//
//	hydra-serve -data data.bin -index-dir ./idx -workload-dir . -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/methods
//	curl -s -X POST localhost:8080/v1/query \
//	     -d '{"method":"DSTree","k":10,"query":[...128 floats...]}'
//
// Endpoints, request fields and the error shape are documented in
// docs/API.md; warm-start operations in docs/OPERATIONS.md. SIGINT/SIGTERM
// begin a graceful drain: in-flight requests finish, new ones get the
// documented 503 "shutting_down" error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hydra/internal/catalog"
	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/series"
	"hydra/internal/server"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "dataset file (required)")
		addr       = flag.String("addr", ":8080", "listen address")
		indexDir   = flag.String("index-dir", "", "persistent index catalog directory (enables warm starts)")
		workload   = flag.String("workload-dir", "", "directory query requests may reference workload files from; empty disables \"workload_file\"")
		shards     = flag.Int("shards", 1, "split the dataset into N contiguous shards with one index per (shard, method); queries scatter-gather across them and warm boots load every shard snapshot")
		maxBytes   = flag.Int64("catalog-max-bytes", 0, "after the warm start, prune the -index-dir catalog least-recently-used-first until its entries fit this budget (0 disables)")
		preload    = flag.String("preload", "persistable", "methods to hydrate at boot: \"persistable\", \"all\", \"none\", or a comma-separated list")
		cacheMax   = flag.Int64("cache-max-bytes", 64<<20, "byte budget of the in-memory query-result cache (LRU-evicted; repeated identical requests replay with \"cached\":true); 0 disables")
		inflight   = flag.Int("max-inflight", 0, "admission control: at most N /v1/query requests execute concurrently, up to 2N more queue, the rest are shed with 429 \"overloaded\"; also clamps per-request workers to cores/N (0 disables)")
		auto       = flag.Bool("auto", true, "enable the adaptive method router behind \"method\":\"auto\" (Fig. 9 seed matrix refined by live per-method latency)")
		workers    = flag.Int("workers", 0, "default per-request query fan-out (0 = serial, negative = all cores)")
		warmupPar  = flag.Int("warmup-workers", -1, "boot hydration fan-out (negative = all cores)")
		reqTimeout = flag.Duration("request-timeout", 60*time.Second, "per-request handler timeout (0 disables)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
		drainGrace = flag.Duration("drain-grace", 0, "keep listening this long after SIGTERM so late requests observe 503 \"shutting_down\" instead of connection refused (0 closes listeners immediately)")
		kern       = flag.String("kernel", "", "distance kernel: scalar|blocked (default blocked); answers are bit-identical, only speed differs")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "hydra-serve: -data is required")
		os.Exit(2)
	}
	k, err := kernel.Parse(*kern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-serve: %v\n", err)
		os.Exit(2)
	}
	kernel.Use(k)
	opts := options{
		dataPath: *dataPath, addr: *addr, indexDir: *indexDir, workloadDir: *workload,
		preload: *preload, workers: *workers, warmupPar: *warmupPar, shards: *shards,
		catalogMaxBytes: *maxBytes, cacheMax: *cacheMax, inflight: *inflight, auto: *auto,
		reqTimeout: *reqTimeout, drainWait: *drainWait, drainGrace: *drainGrace,
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-serve: %v\n", err)
		os.Exit(1)
	}
}

// options carries the parsed flag set into run.
type options struct {
	dataPath, addr, indexDir, workloadDir, preload string
	workers, warmupPar, shards, inflight           int
	catalogMaxBytes, cacheMax                      int64
	auto                                           bool
	reqTimeout, drainWait, drainGrace              time.Duration
}

func run(opts options) error {
	dataPath, addr, indexDir := opts.dataPath, opts.addr, opts.indexDir
	reqTimeout, drainWait := opts.reqTimeout, opts.drainWait
	start := time.Now()
	data, err := series.LoadFile(dataPath)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d series of length %d (%.3fs), %s distance kernel\n",
		dataPath, data.Size(), data.Length(), time.Since(start).Seconds(), kernel.Active())

	names, err := parsePreload(opts.preload)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Data:           data,
		DatasetPath:    dataPath,
		IndexDir:       indexDir,
		WorkloadDir:    opts.workloadDir,
		Shards:         opts.shards,
		Preload:        names,
		DefaultWorkers: opts.workers,
		WarmupWorkers:  opts.warmupPar,
		CacheMaxBytes:  opts.cacheMax,
		MaxInflight:    opts.inflight,
		DisableAuto:    !opts.auto,
		Log:            os.Stdout,
	})
	if err != nil {
		return err
	}
	if opts.cacheMax > 0 {
		fmt.Printf("result cache enabled: %d byte budget\n", opts.cacheMax)
	}
	if opts.inflight > 0 {
		fmt.Printf("admission control enabled: %d in-flight, %d queued, then 429\n", opts.inflight, 2*opts.inflight)
	}
	if catalogMaxBytes := opts.catalogMaxBytes; catalogMaxBytes > 0 && indexDir != "" {
		// Prune after the warm start so the freshly touched (or written)
		// serving set is the youngest and survives the LRU eviction. Like
		// a failed catalog save, a failed prune must not take down a
		// server that just hydrated successfully: the cache being over
		// budget is an operational nuisance, not a serving failure.
		if rep, err := catalog.Prune(indexDir, catalogMaxBytes); err != nil {
			fmt.Printf("catalog prune failed (serving continues): %v\n", err)
		} else {
			fmt.Printf("catalog pruned: removed %d entries (%d bytes), kept %d (%d bytes) within %d\n",
				rep.Removed, rep.FreedBytes, rep.Kept, rep.KeptBytes, catalogMaxBytes)
		}
	}

	handler := srv.Handler()
	if reqTimeout > 0 {
		// The timeout body mirrors the service's documented error shape.
		// TimeoutHandler writes its body against the outer writer's header
		// map, so the JSON content type is pre-set here; every inner
		// handler overwrites it with its own on the success path.
		inner := http.TimeoutHandler(handler, reqTimeout,
			`{"error":{"code":"request_timeout","message":"request exceeded the server's -request-timeout","status":503}}`)
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			inner.ServeHTTP(w, r)
		})
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving on %s (boot %.3fs)\n", addr, time.Since(start).Seconds())

	select {
	case sig := <-stop:
		fmt.Printf("received %s: draining (deadline %s)\n", sig, drainWait)
		srv.BeginShutdown()
		if opts.drainGrace > 0 {
			// http.Server.Shutdown closes the listeners immediately, so
			// without this window a client racing the drain sees connection
			// refused — an unexplained error — instead of the documented 503
			// "shutting_down" refusal the drain latch now serves.
			time.Sleep(opts.drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		fmt.Println("drained cleanly")
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// parsePreload maps the -preload flag onto a method-name list: nil means
// "every persistable method" (server.Config's default), an empty non-nil
// slice means none.
func parsePreload(s string) ([]string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "persistable":
		return nil, nil
	case "all":
		return core.MethodNames(), nil
	case "none":
		return []string{}, nil
	}
	var names []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if _, ok := core.LookupMethod(name); !ok {
			return nil, fmt.Errorf("-preload: unknown method %q (known: %s)", name, strings.Join(core.MethodNames(), ", "))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-preload: empty method list")
	}
	return names, nil
}
