// Command hydra-gen generates synthetic datasets and query workloads in the
// hydra binary format.
//
// Usage:
//
//	hydra-gen -kind walk -n 100000 -length 256 -out data.bin
//	hydra-gen -kind walk -n 100 -length 256 -queries-for data.bin -out queries.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hydra/internal/dataset"
	"hydra/internal/series"
)

func main() {
	var (
		kindName   = flag.String("kind", "walk", "generator: walk|clustered|seismic|smooth")
		n          = flag.Int("n", 10000, "number of series")
		length     = flag.Int("length", 256, "series length")
		seed       = flag.Int64("seed", 1, "random seed")
		clusters   = flag.Int("clusters", 64, "cluster count (clustered kind)")
		znorm      = flag.Bool("znorm", false, "z-normalise every series")
		out        = flag.String("out", "", "output file (required)")
		queriesFor = flag.String("queries-for", "", "generate a query workload for this dataset file instead of a dataset")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "hydra-gen: -out is required")
		os.Exit(2)
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydra-gen: %v\n", err)
		os.Exit(2)
	}

	var ds *series.Dataset
	if *queriesFor != "" {
		base, err := series.LoadFile(*queriesFor)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydra-gen: %v\n", err)
			os.Exit(1)
		}
		ds = dataset.Queries(base, kind, *n, *seed)
	} else {
		ds = dataset.Generate(dataset.Config{
			Kind: kind, Count: *n, Length: *length, Seed: *seed,
			Clusters: *clusters, ZNorm: *znorm,
		})
	}
	if err := ds.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d series of length %d to %s\n", ds.Size(), ds.Length(), *out)
}

func parseKind(s string) (dataset.Kind, error) {
	switch strings.ToLower(s) {
	case "walk":
		return dataset.KindWalk, nil
	case "clustered":
		return dataset.KindClustered, nil
	case "seismic":
		return dataset.KindSeismic, nil
	case "smooth":
		return dataset.KindSmooth, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", s)
	}
}
