// Command hydra-bench regenerates the paper's experiments.
//
// Usage:
//
//	hydra-bench -experiment fig3 [-n 4000] [-length 128] [-queries 20] [-k 10] [-workers 1]
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, all.
// Raising -n / -length / -queries approaches the paper's original scale;
// the defaults finish in minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hydra/internal/eval"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: table1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|all")
		n          = flag.Int("n", 4000, "series per dataset")
		length     = flag.Int("length", 128, "series length")
		queries    = flag.Int("queries", 20, "queries per workload")
		k          = flag.Int("k", 10, "neighbours per query")
		seed       = flag.Int64("seed", 42, "master seed")
		workers    = flag.Int("workers", 1, "concurrent query workers per workload (0 = all cores); >1 speeds up wall clock but skews the paper's timing columns, accuracy is unaffected")
		buildWork  = flag.Int("build-workers", 1, "concurrent index builds per workload (0 = all cores); >1 speeds up wall clock but skews the paper's build-time columns, the indexes are unaffected")
		indexDir   = flag.String("index-dir", "", "persistent index catalog directory: save built indexes and reuse them on later runs (reported build times become load times on cache hits)")
		shards     = flag.Int("shards", 1, "split every dataset into N contiguous shards with one index each; queries scatter-gather across them (accuracy columns are unchanged, I/O columns reflect the partitioned layout)")
		kern       = flag.String("kernel", "", "distance kernel: scalar|blocked (default blocked); answers are bit-identical, only speed differs")
	)
	flag.Parse()

	cfg := eval.DefaultSuite()
	cfg.N = *n
	cfg.Length = *length
	cfg.Queries = *queries
	cfg.K = *k
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *workers == 0 {
		cfg.Workers = -1 // SuiteConfig reserves 0 for "serial" (its zero value)
	}
	cfg.BuildWorkers = *buildWork
	if *buildWork == 0 {
		cfg.BuildWorkers = -1 // same convention as Workers
	}
	cfg.Shards = *shards
	cfg.Kernel = *kern
	cfg.IndexDir = *indexDir
	if *indexDir != "" {
		cfg.BuildLog = os.Stderr
	}

	if err := run(strings.ToLower(*experiment), cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hydra-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(experiment string, cfg eval.SuiteConfig) error {
	printAll := func(tables []*eval.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		return nil
	}
	printOne := func(t *eval.Table, err error) error {
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		fmt.Println()
		return nil
	}
	sizes := []int{cfg.N / 4, cfg.N / 2, cfg.N, cfg.N * 2}
	// Fig2 indexes every registered method except the index-free scan.
	fig2Methods := make([]string, 0, len(eval.MethodNames))
	for _, name := range eval.MethodNames {
		if name != "SerialScan" {
			fig2Methods = append(fig2Methods, name)
		}
	}

	switch experiment {
	case "table1":
		return printOne(eval.Table1(), nil)
	case "fig2":
		t, err := eval.Fig2(cfg, sizes, fig2Methods)
		return printAll(t, err)
	case "fig3":
		t, err := eval.Fig3(cfg)
		return printAll(t, err)
	case "fig4":
		t, err := eval.Fig4(cfg)
		return printAll(t, err)
	case "fig5":
		t, err := eval.Fig5(cfg)
		return printOne(t, err)
	case "fig6":
		t, err := eval.Fig6(cfg)
		return printAll(t, err)
	case "fig7":
		t, err := eval.Fig7(cfg)
		return printOne(t, err)
	case "fig8":
		t, err := eval.Fig8(cfg)
		return printAll(t, err)
	case "all":
		if err := printOne(eval.Table1(), nil); err != nil {
			return err
		}
		if t, err := eval.Fig2(cfg, sizes, fig2Methods); err != nil {
			return err
		} else if err := printAll(t, nil); err != nil {
			return err
		}
		for name, f := range map[string]func(eval.SuiteConfig) ([]*eval.Table, error){
			"fig3": eval.Fig3, "fig4": eval.Fig4, "fig6": eval.Fig6, "fig8": eval.Fig8,
		} {
			tables, err := f(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if err := printAll(tables, nil); err != nil {
				return err
			}
		}
		if err := printOne(eval.Fig5(cfg)); err != nil {
			return err
		}
		return printOne(eval.Fig7(cfg))
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}
