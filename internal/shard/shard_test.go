package shard

import (
	"fmt"
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	_ "hydra/internal/methods" // register every MethodSpec for LookupMethod
	"hydra/internal/storage"
)

const testFP = "0123456789abcdef0123456789abcdef"

func TestNewPlanPartitions(t *testing.T) {
	cases := []struct {
		size, shards int
		want         []Range
	}{
		{10, 1, []Range{{0, 10}}},
		{10, 2, []Range{{0, 5}, {5, 10}}},
		{10, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
		{10, 4, []Range{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
		{3, 8, []Range{{0, 1}, {1, 2}, {2, 3}}}, // clamped to size
	}
	for _, c := range cases {
		p, err := NewPlan(testFP, c.size, c.shards)
		if err != nil {
			t.Fatalf("NewPlan(%d, %d): %v", c.size, c.shards, err)
		}
		if p.Count() != len(c.want) {
			t.Fatalf("NewPlan(%d, %d): %d shards, want %d", c.size, c.shards, p.Count(), len(c.want))
		}
		for i, want := range c.want {
			if p.Range(i) != want {
				t.Errorf("NewPlan(%d, %d) shard %d: %+v, want %+v", c.size, c.shards, i, p.Range(i), want)
			}
		}
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan("", 10, 2); err == nil {
		t.Error("empty fingerprint accepted")
	}
	if _, err := NewPlan(testFP, 0, 2); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewPlan(testFP, 10, 0); err == nil {
		t.Error("zero shard count accepted")
	}
	if _, err := NewPlan(testFP, 10, -3); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestShardIDsStable pins that shard IDs depend only on (fingerprint,
// shard count, index): the catalog keys and metrics labels built on them
// must not drift between runs.
func TestShardIDsStable(t *testing.T) {
	a, _ := NewPlan(testFP, 100, 4)
	b, _ := NewPlan(testFP, 100, 4)
	for i := 0; i < 4; i++ {
		if a.ID(i) != b.ID(i) {
			t.Errorf("shard %d ID unstable: %q vs %q", i, a.ID(i), b.ID(i))
		}
		if !strings.HasPrefix(a.ID(i), testFP[:12]) {
			t.Errorf("shard %d ID %q does not embed the fingerprint prefix", i, a.ID(i))
		}
	}
	other, _ := NewPlan(testFP, 100, 5)
	if a.ID(0) == other.ID(0) {
		t.Error("different shard counts produced the same shard ID")
	}
	if a.Label(2) != "2/4" {
		t.Errorf("Label(2) = %q, want 2/4", a.Label(2))
	}
}

func TestStoreAggregates(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 90, Length: 16, Seed: 1})
	plan, err := NewPlan(testFP, data.Size(), 3)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*storage.SeriesStore, 3)
	for i := range stores {
		r := plan.Range(i)
		stores[i] = storage.NewSeriesStore(data.Slice(r.Lo, r.Hi), 0)
	}
	st, err := NewStore(plan, stores)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBytes() != data.Bytes() {
		t.Errorf("TotalBytes %d, want %d", st.TotalBytes(), data.Bytes())
	}
	stores[0].Read(0)
	stores[2].Read(5)
	agg := st.Stats()
	if agg.RandomSeeks != 2 {
		t.Errorf("aggregated seeks %d, want 2", agg.RandomSeeks)
	}
	if _, err := NewStore(plan, stores[:2]); err == nil {
		t.Error("store count mismatch accepted")
	}
}

// fakePart is a per-shard stub returning canned neighbours so the merge
// logic can be pinned without building a real index.
type fakePart struct {
	neighbors []core.Neighbor
	calls     int64
}

func (f *fakePart) Name() string     { return "Fake" }
func (f *fakePart) Footprint() int64 { return 10 }
func (f *fakePart) Search(q core.Query) (core.Result, error) {
	n := f.neighbors
	if len(n) > q.K {
		n = n[:q.K]
	}
	return core.Result{Neighbors: n, DistCalcs: 7, LeavesVisited: 2, IO: storage.Stats{RandomSeeks: 1}}, nil
}

func TestMethodMergesShardAnswers(t *testing.T) {
	plan, err := NewPlan(testFP, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Local IDs are shard-relative; the merge must translate them by the
	// shard's Lo offset and keep the k globally closest.
	parts := []core.Method{
		&fakePart{neighbors: []core.Neighbor{{ID: 0, Dist: 0.5}, {ID: 3, Dist: 2.0}}},
		&fakePart{neighbors: []core.Neighbor{{ID: 1, Dist: 0.25}, {ID: 2, Dist: 3.0}}},
		&fakePart{neighbors: []core.Neighbor{{ID: 4, Dist: 1.0}, {ID: 5, Dist: 4.0}}},
	}
	m, err := NewMethod("Fake", plan, parts, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shard identities must be set before the first query: hydra-serve
	// exports one Prometheus series per ShardStat, and duplicate shard
	// labels would invalidate the whole /metrics scrape.
	for i, st := range m.ShardStats() {
		if st.Shard != i {
			t.Errorf("pre-query stat %d has shard %d", i, st.Shard)
		}
	}
	res, err := m.Search(core.Query{Series: make([]float32, 8), K: 3, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Neighbor{
		{ID: 11, Dist: 0.25}, // shard 1 local 1 -> global 10+1
		{ID: 0, Dist: 0.5},   // shard 0 local 0
		{ID: 24, Dist: 1.0},  // shard 2 local 4 -> global 20+4
	}
	if len(res.Neighbors) != len(want) {
		t.Fatalf("%d neighbours, want %d (%+v)", len(res.Neighbors), len(want), res.Neighbors)
	}
	for i := range want {
		if res.Neighbors[i] != want[i] {
			t.Errorf("rank %d: %+v, want %+v", i, res.Neighbors[i], want[i])
		}
	}
	if res.DistCalcs != 21 || res.LeavesVisited != 6 || res.IO.RandomSeeks != 3 {
		t.Errorf("summed counters wrong: %+v", res)
	}
	if m.Footprint() != 30 {
		t.Errorf("footprint %d, want 30", m.Footprint())
	}
	stats := m.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("%d shard stats, want 3", len(stats))
	}
	for i, st := range stats {
		if st.Queries != 1 || st.DistCalcs != 7 || st.IO.RandomSeeks != 1 {
			t.Errorf("shard %d stats %+v", i, st)
		}
	}
}

func TestMethodClampsKToShardSize(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 9, Length: 8, Seed: 2})
	ctx := &core.BuildContext{Data: data, LeafCapacity: 16}
	plan, err := PlanFor(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := core.LookupMethod("SerialScan")
	if !ok {
		t.Fatal("SerialScan not registered")
	}
	m, _, err := Build(spec, ctx, plan, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// k=5 exceeds every shard's 3 series: each shard answers with all it
	// has and the merge still returns the global top-5.
	res, err := m.Search(core.Query{Series: data.At(0), K: 5, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 5 {
		t.Fatalf("%d neighbours, want 5", len(res.Neighbors))
	}
	if res.Neighbors[0].ID != 0 || res.Neighbors[0].Dist != 0 {
		t.Errorf("self-match missing: %+v", res.Neighbors[0])
	}
}

func TestBuildValidatesPlan(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 20, Length: 8, Seed: 3})
	ctx := &core.BuildContext{Data: data, LeafCapacity: 16}
	foreign, err := NewPlan(testFP, 99, 3) // covers a different dataset size
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := core.LookupMethod("SerialScan")
	if _, _, err := Build(spec, ctx, foreign, BuildOptions{}); err == nil {
		t.Error("plan/context size mismatch accepted")
	}
}

// TestSubContextsShared pins that shard sub-contexts are memoized on the
// parent: a second Build over the same parent reuses them (and therefore
// their memoized fingerprints and histograms).
func TestSubContextsShared(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 40, Length: 8, Seed: 4})
	ctx := &core.BuildContext{Data: data, LeafCapacity: 16, HistogramPairs: 50, HistogramSeed: 9}
	a := ctx.Sub(0, 20)
	b := ctx.Sub(0, 20)
	if a != b {
		t.Error("Sub did not memoize the shard context")
	}
	if whole := ctx.Sub(0, data.Size()); whole != ctx {
		t.Error("whole-range Sub must return the parent context itself")
	}
	if a.Data.Size() != 20 || a.LeafCapacity != 16 || a.HistogramPairs != 50 || a.HistogramSeed != 9 {
		t.Errorf("sub-context did not inherit parameters: %+v", a)
	}
}

func ExamplePlan() {
	p, _ := NewPlan("3f9a1c2b4d5e00000000", 10, 3)
	for i := 0; i < p.Count(); i++ {
		fmt.Printf("%s -> [%d,%d)\n", p.Label(i), p.Range(i).Lo, p.Range(i).Hi)
	}
	// Output:
	// 0/3 -> [0,4)
	// 1/3 -> [4,7)
	// 2/3 -> [7,10)
}
