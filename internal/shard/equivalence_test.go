package shard_test

import (
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/eval"
	"hydra/internal/storage"
)

// equivalenceMethods are the store-backed methods the sharded-vs-unsharded
// contract is pinned on: the scan baseline, a filter file and a tree index.
var equivalenceMethods = []string{"SerialScan", "VA+file", "iSAX2+"}

func equivalenceWorkload() (eval.Workload, eval.SuiteConfig) {
	cfg := eval.DefaultSuite()
	cfg.N, cfg.Length, cfg.Queries, cfg.K = 900, 32, 6, 5
	cfg.HistogramPairs = 200
	w := eval.NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+77)
	return w, cfg
}

// answerLines renders every query's neighbours in the CLI's canonical
// byte format, the same representation the smoke tests diff.
func answerLines(out eval.RunOutcome) string {
	var sb strings.Builder
	for qi, res := range out.Results {
		sb.WriteString(eval.AnswerLine(qi, res.Neighbors))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func runExact(t *testing.T, m core.Method, w eval.Workload) eval.RunOutcome {
	t.Helper()
	out, err := eval.Run(m, w, core.Query{Mode: core.ModeExact}, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardedVersusUnshardedEquivalence pins the scatter-gather contract
// for SerialScan, VA+file and iSAX2+ at shards = 1, 3 and 4:
//
//   - exact answers are byte-identical to the unsharded method's (same
//     neighbours, same full-precision distances, same order), and so are
//     the accuracy metrics computed from them;
//   - at shards=1 the whole accounting — Results, Metrics, IO, DistCalcs —
//     is byte-identical, because the 1-shard plan reuses the parent build
//     context and therefore builds the identical index over the identical
//     store geometry;
//   - at shards>1 the summed IO counters reflect the partitioned layout
//     (each shard is its own store, so e.g. a full scan pays one seek per
//     shard instead of one in total) and pruning thresholds are shard-
//     local, so IO/DistCalcs are compared for bitwise determinism across
//     independent sharded builds rather than against the unsharded run.
func TestShardedVersusUnshardedEquivalence(t *testing.T) {
	w, cfg := equivalenceWorkload()
	for _, name := range equivalenceMethods {
		t.Run(name, func(t *testing.T) {
			flat, err := eval.BuildMethod(name, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			flatOut := runExact(t, flat.Method, w)
			flatAnswers := answerLines(flatOut)
			for _, shards := range []int{1, 3, 4} {
				scfg := cfg
				scfg.Shards = shards
				a, err := eval.BuildMethod(name, w, scfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				aOut := runExact(t, a.Method, w)
				if got := answerLines(aOut); got != flatAnswers {
					t.Errorf("shards=%d: answers differ from unsharded:\n%s\nvs\n%s", shards, got, flatAnswers)
				}
				if aOut.Metrics != flatOut.Metrics {
					t.Errorf("shards=%d: metrics %+v, want %+v", shards, aOut.Metrics, flatOut.Metrics)
				}
				if shards == 1 {
					if aOut.IO != flatOut.IO || aOut.DistCalcs != flatOut.DistCalcs {
						t.Errorf("shards=1: accounting differs: IO %+v/%d vs %+v/%d",
							aOut.IO, aOut.DistCalcs, flatOut.IO, flatOut.DistCalcs)
					}
					continue
				}
				// An independent second sharded build must reproduce the
				// exact same Results, Metrics, IO and DistCalcs.
				b, err := eval.BuildMethod(name, w, scfg)
				if err != nil {
					t.Fatalf("shards=%d rebuild: %v", shards, err)
				}
				bOut := runExact(t, b.Method, w)
				if answerLines(bOut) != flatAnswers {
					t.Errorf("shards=%d rebuild: answers drifted", shards)
				}
				if aOut.IO != bOut.IO || aOut.DistCalcs != bOut.DistCalcs || aOut.Metrics != bOut.Metrics {
					t.Errorf("shards=%d: sharded accounting is not deterministic: %+v/%d vs %+v/%d",
						shards, aOut.IO, aOut.DistCalcs, bOut.IO, bOut.DistCalcs)
				}
			}
		})
	}
}

// TestShardedWarmReloadEquivalence pins the per-shard catalog round trip:
// a sharded build that saved every shard snapshot, reopened from the
// catalog (all shards hit, zero rebuilds), answers with byte-identical
// Results, Metrics, IO and DistCalcs.
func TestShardedWarmReloadEquivalence(t *testing.T) {
	w, cfg := equivalenceWorkload()
	cfg.Shards = 3
	cfg.IndexDir = t.TempDir()
	for _, name := range []string{"VA+file", "iSAX2+"} {
		t.Run(name, func(t *testing.T) {
			var coldLog, warmLog strings.Builder
			ccfg := cfg
			ccfg.BuildLog = &coldLog
			cold, err := eval.BuildMethod(name, w, ccfg)
			if err != nil {
				t.Fatal(err)
			}
			if cold.FromCache || cold.ShardHits != 0 {
				t.Fatalf("cold build reported cache use: %+v", cold)
			}
			if got := strings.Count(coldLog.String(), "catalog miss: "+name+" shard"); got != 3 {
				t.Errorf("cold build logged %d per-shard misses, want 3:\n%s", got, coldLog.String())
			}
			wcfg := cfg
			wcfg.BuildLog = &warmLog
			warm, err := eval.BuildMethod(name, w, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.FromCache || warm.ShardHits != 3 || warm.Shards != 3 {
				t.Fatalf("warm build did not load every shard from the catalog: %+v\n%s", warm, warmLog.String())
			}
			if strings.Contains(warmLog.String(), "catalog miss") {
				t.Errorf("warm build rebuilt a shard:\n%s", warmLog.String())
			}
			a := runExact(t, cold.Method, w)
			b := runExact(t, warm.Method, w)
			if answerLines(a) != answerLines(b) {
				t.Error("cold and warm sharded answers differ")
			}
			if a.IO != b.IO || a.DistCalcs != b.DistCalcs || a.Metrics != b.Metrics {
				t.Errorf("cold/warm accounting differs: %+v/%d vs %+v/%d", a.IO, a.DistCalcs, b.IO, b.DistCalcs)
			}
		})
	}
}

// TestShardedConcurrentQueries is the race-mode check: many goroutines
// querying one sharded method (whose Search itself fans across shards)
// must produce exactly the serial outcome — Results in workload order,
// IO/DistCalcs exact sums — with no data race under -race.
func TestShardedConcurrentQueries(t *testing.T) {
	w, cfg := equivalenceWorkload()
	cfg.Shards = 4
	for _, name := range []string{"SerialScan", "iSAX2+"} {
		t.Run(name, func(t *testing.T) {
			b, err := eval.BuildMethod(name, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := eval.ParallelRun(b.Method, w, core.Query{Mode: core.ModeExact}, storage.DefaultCostModel(), eval.RunOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := eval.ParallelRun(b.Method, w, core.Query{Mode: core.ModeExact}, storage.DefaultCostModel(), eval.RunOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if answerLines(serial) != answerLines(parallel) {
				t.Error("concurrent sharded answers differ from serial")
			}
			if serial.IO != parallel.IO || serial.DistCalcs != parallel.DistCalcs {
				t.Errorf("concurrent sharded accounting differs: %+v/%d vs %+v/%d",
					serial.IO, serial.DistCalcs, parallel.IO, parallel.DistCalcs)
			}
		})
	}
}
