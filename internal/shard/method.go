package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/storage"
)

// Method implements core.Method by scatter-gather over per-shard indexes:
// each query fans out to every shard's index, per-shard top-k candidates
// are translated back to global series IDs and merged into one k-NN set,
// and the per-shard work counters (IO, DistCalcs, leaves, pops) are summed.
//
// For exact queries the merged answer is byte-identical to the unsharded
// method's: every shard returns its true local top-k, the union contains
// the global top-k, and each surviving distance is the same full-precision
// sum the unsharded method computes. The one caveat is exact distance
// ties straddling the k-th position (e.g. duplicate series): KNNSet keeps
// the first-offered of tied candidates, and the merge's shard-order
// offering can pick a different tied ID than the unsharded traversal
// did — both answers remain correct k-NN sets at identical distances.
// Approximate modes apply their budgets (NProbe, examined-candidate caps)
// per shard, so a sharded ng-approximate query probes up to shards×NProbe
// leaves in total.
//
// Search honours the core.Method concurrency contract: per-query state is
// local to the call, shards are queried on their own race-safe indexes, and
// the only shared mutable state — the cumulative per-shard usage counters
// behind ShardStats — is mutex-guarded.
type Method struct {
	name    string
	plan    *Plan
	parts   []core.Method
	store   *Store
	workers int

	mu  sync.Mutex
	cum []ShardStat
}

// ShardStat is one shard's cumulative query-time usage, for per-shard
// observability (hydra-serve exports these on /metrics).
type ShardStat struct {
	Shard     int
	Queries   int64
	DistCalcs int64
	IO        storage.Stats
	// Seconds is wall-clock time spent inside this shard's Search calls.
	// Shards answer concurrently, so the per-shard sums can exceed the
	// query wall time; their spread is what exposes a straggler shard.
	Seconds float64
}

// NewMethod assembles a scatter-gather method from per-shard indexes.
// name is the display name (the underlying method's, e.g. "DSTree": the
// sharding is transparent to callers). searchWorkers bounds the per-query
// shard fan-out; 0 selects min(shards, GOMAXPROCS), 1 queries shards
// serially. store may be nil for purely in-memory methods.
func NewMethod(name string, plan *Plan, parts []core.Method, store *Store, searchWorkers int) (*Method, error) {
	if plan == nil {
		return nil, fmt.Errorf("shard: method needs a plan")
	}
	if len(parts) != plan.Count() {
		return nil, fmt.Errorf("shard: %d shard indexes for a %d-shard plan", len(parts), plan.Count())
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("shard: shard %s has no index", plan.Label(i))
		}
	}
	if searchWorkers <= 0 {
		searchWorkers = runtime.GOMAXPROCS(0)
	}
	if searchWorkers > len(parts) {
		searchWorkers = len(parts)
	}
	cum := make([]ShardStat, len(parts))
	for i := range cum {
		cum[i].Shard = i
	}
	return &Method{
		name:    name,
		plan:    plan,
		parts:   parts,
		store:   store,
		workers: searchWorkers,
		cum:     cum,
	}, nil
}

// Name implements core.Method.
func (m *Method) Name() string { return m.name }

// Plan returns the partitioning the method was assembled under.
func (m *Method) Plan() *Plan { return m.plan }

// Store returns the aggregated per-shard store wrapper (nil when every
// shard index is purely in-memory).
func (m *Method) Store() *Store { return m.store }

// TotalBytes returns the raw data volume behind all shard stores.
func (m *Method) TotalBytes() int64 {
	if m.store == nil {
		return 0
	}
	return m.store.TotalBytes()
}

// Footprint implements core.Method: the sum of the shard indexes'.
func (m *Method) Footprint() int64 {
	var total int64
	for _, p := range m.parts {
		total += p.Footprint()
	}
	return total
}

// ShardStats returns a copy of the cumulative per-shard usage counters.
func (m *Method) ShardStats() []ShardStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ShardStat, len(m.cum))
	copy(out, m.cum)
	return out
}

// Search implements core.Method: scatter the query across every shard
// index (up to the configured shard fan-out concurrently), then gather.
// The merge is deterministic — candidates are offered in shard order into
// one core.KNNSet regardless of which shard answered first — so the result
// does not depend on scheduling, and counters are exact sums.
func (m *Method) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("shard: %w", err)
	}
	n := len(m.parts)
	results := make([]core.Result, n)
	errs := make([]error, n)
	elapsed := make([]time.Duration, n)
	run := func(i int) {
		sq := q
		// A shard smaller than k answers with everything it holds; the
		// merge still sees every candidate that could make the global top-k.
		if size := m.plan.Range(i).Len(); sq.K > size {
			sq.K = size
		}
		// sq keeps q.Obs, so refinement time observed inside the shard's
		// engine sums across shards; the shard wall time itself is measured
		// here, where the scatter boundary is.
		began := time.Now()
		r, err := m.parts[i].Search(sq)
		elapsed[i] = time.Since(began)
		if q.Obs != nil {
			q.Obs.ObserveShard(i, elapsed[i])
		}
		if err != nil {
			errs[i] = fmt.Errorf("shard %s: %w", m.plan.Label(i), err)
			return
		}
		results[i] = r
	}
	core.FanOut(n, m.workers, run)
	if err := errors.Join(errs...); err != nil {
		return core.Result{}, err
	}

	kset := core.NewKNNSet(q.K)
	out := core.Result{}
	for i, r := range results {
		lo := m.plan.Range(i).Lo
		for _, nb := range r.Neighbors {
			kset.Offer(nb.ID+lo, nb.Dist)
		}
		out.DistCalcs += r.DistCalcs
		out.LeavesVisited += r.LeavesVisited
		out.NodesPopped += r.NodesPopped
		out.IO = out.IO.Add(r.IO)
	}
	out.Neighbors = kset.Sorted()

	m.mu.Lock()
	for i, r := range results {
		m.cum[i].Queries++
		m.cum[i].DistCalcs += r.DistCalcs
		m.cum[i].IO = m.cum[i].IO.Add(r.IO)
		m.cum[i].Seconds += elapsed[i].Seconds()
	}
	m.mu.Unlock()
	return out, nil
}
