// Package shard implements horizontal partitioning of one dataset into N
// contiguous shards with independent per-shard indexes: the process-internal
// analogue of a multi-node sharded deployment, and the scaling step for
// datasets that outgrow a single storage.SeriesStore and its accountant.
//
// The pieces compose bottom-up:
//
//   - A Plan deterministically splits a dataset of `size` series into N
//     contiguous ranges, so the same data sharded the same way always
//     yields the same slices — which is what lets per-shard index
//     snapshots (keyed in the catalog by each slice's own content
//     fingerprint) be found again on a warm boot. Shard IDs derive from
//     the dataset fingerprint and the shard count and give logs, metrics
//     and build reports an equally stable identity.
//   - A Store wraps the per-shard storage.SeriesStores (each with its own
//     accountant) and exposes aggregated Stats and TotalBytes.
//   - A Method implements core.Method by scattering each query across the
//     per-shard indexes and gathering the per-shard top-k candidates into
//     one global k-NN answer. Exact answers are byte-identical to the
//     unsharded method's; IO and DistCalcs are summed across shards.
//   - Build constructs the per-shard indexes from any registered
//     core.MethodSpec recipe, routing each shard through the persistent
//     index catalog when one is supplied (per-(shard, method) entries).
//
// Sharded accounting is honest about partitioning: each shard is its own
// store (its own "file"), so a query that scans every shard pays one seek
// per shard where the unsharded scan paid one in total. Answers and
// accuracy metrics are equivalent; the I/O counters reflect the sharded
// layout and are bitwise deterministic for a given plan.
package shard

import (
	"fmt"

	"hydra/internal/core"
)

// Range is one shard's contiguous slice [Lo, Hi) of the dataset's series.
type Range struct {
	Lo, Hi int
}

// Len returns the number of series in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Plan is a deterministic partition of a dataset into contiguous shards.
// Two plans over byte-identical data with the same shard count are
// identical — same ranges, same shard IDs — so every layer keyed off a
// plan (catalog entries, metrics labels, log lines) is stable across runs.
type Plan struct {
	fingerprint string
	size        int
	ranges      []Range
}

// NewPlan partitions `size` series into `shards` contiguous ranges of
// near-equal length (the first size%shards ranges hold one extra series).
// fingerprint is the dataset's content address (series.Dataset.Fingerprint)
// and seeds the shard IDs. A shard count exceeding size is clamped to size
// so every shard holds at least one series.
func NewPlan(fingerprint string, size, shards int) (*Plan, error) {
	if fingerprint == "" {
		return nil, fmt.Errorf("shard: plan needs a dataset fingerprint")
	}
	if size <= 0 {
		return nil, fmt.Errorf("shard: cannot plan over %d series", size)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", shards)
	}
	if shards > size {
		shards = size
	}
	base, rem := size/shards, size%shards
	ranges := make([]Range, shards)
	lo := 0
	for i := range ranges {
		n := base
		if i < rem {
			n++
		}
		ranges[i] = Range{Lo: lo, Hi: lo + n}
		lo += n
	}
	return &Plan{fingerprint: fingerprint, size: size, ranges: ranges}, nil
}

// PlanFor builds the plan for a build context's dataset, reusing the
// context's memoized fingerprint so multi-method builds hash the data once.
func PlanFor(ctx *core.BuildContext, shards int) (*Plan, error) {
	return NewPlan(ctx.DataFingerprint(), ctx.Data.Size(), shards)
}

// Count returns the number of shards.
func (p *Plan) Count() int { return len(p.ranges) }

// Size returns the total number of series the plan partitions.
func (p *Plan) Size() int { return p.size }

// Fingerprint returns the dataset fingerprint the plan was derived from.
func (p *Plan) Fingerprint() string { return p.fingerprint }

// Range returns shard i's series range.
func (p *Plan) Range(i int) Range { return p.ranges[i] }

// ID returns shard i's stable identifier, derived from the dataset
// fingerprint and the shard count (e.g. "3f9a1c2b4d5e-4.2"): the same data
// sharded the same way always produces the same IDs.
func (p *Plan) ID(i int) string {
	return fmt.Sprintf("%.12s-%d.%d", p.fingerprint, len(p.ranges), i)
}

// Label returns shard i's human-readable position, e.g. "2/4". Log lines
// and metrics labels use it alongside the method name.
func (p *Plan) Label(i int) string {
	return fmt.Sprintf("%d/%d", i, len(p.ranges))
}
