package shard

import (
	"fmt"

	"hydra/internal/storage"
)

// Store wraps one storage.SeriesStore per shard. Each per-shard store keeps
// its own accountant (and hands out its own per-query views), so shards
// account their raw-data I/O independently and in parallel; Stats sums the
// base accountants for an aggregated view. Entries may be nil for purely
// in-memory methods that build no store.
type Store struct {
	plan   *Plan
	stores []*storage.SeriesStore
}

// NewStore assembles the per-shard stores under a plan. len(stores) must
// equal the plan's shard count; individual entries may be nil.
func NewStore(plan *Plan, stores []*storage.SeriesStore) (*Store, error) {
	if plan == nil {
		return nil, fmt.Errorf("shard: store needs a plan")
	}
	if len(stores) != plan.Count() {
		return nil, fmt.Errorf("shard: %d stores for a %d-shard plan", len(stores), plan.Count())
	}
	return &Store{plan: plan, stores: stores}, nil
}

// Plan returns the partitioning the store was assembled under.
func (s *Store) Plan() *Plan { return s.plan }

// Count returns the number of shards.
func (s *Store) Count() int { return len(s.stores) }

// Shard returns shard i's store (nil for in-memory methods).
func (s *Store) Shard(i int) *storage.SeriesStore { return s.stores[i] }

// TotalBytes returns the raw data volume across all shard stores.
func (s *Store) TotalBytes() int64 {
	var total int64
	for _, st := range s.stores {
		if st != nil {
			total += st.TotalBytes()
		}
	}
	return total
}

// Stats returns the element-wise sum of every shard store's base
// accountant. Methods charge per-query I/O to private store views, so this
// aggregates only accesses charged directly to the base stores.
func (s *Store) Stats() storage.Stats {
	var total storage.Stats
	for _, st := range s.stores {
		if st != nil {
			total = total.Add(st.Accountant().Snapshot())
		}
	}
	return total
}
