package shard

import (
	"errors"
	"fmt"
	"time"

	"hydra/internal/catalog"
	"hydra/internal/core"
	"hydra/internal/storage"
)

// BuildOptions configures a sharded build.
type BuildOptions struct {
	// Catalog, when non-nil, routes every shard through the persistent
	// index catalog: a valid per-shard entry is loaded, anything else is
	// built and (for persistable specs) saved. Entries are keyed by each
	// shard slice's own content fingerprint, so they are naturally
	// per-(shard, method) and stable across runs of the same plan.
	Catalog *catalog.Catalog
	// Workers bounds how many shards build concurrently; <=1 builds
	// serially.
	Workers int
	// SearchWorkers is the per-query shard fan-out of the assembled
	// Method; 0 selects min(shards, GOMAXPROCS).
	SearchWorkers int
}

// ShardBuild reports how one shard's index was obtained.
type ShardBuild struct {
	// Shard is the shard's index in the plan; ID its stable identifier.
	Shard int
	ID    string
	// Hit is true when the shard's index was loaded from the catalog.
	Hit bool
	// Seconds is the shard's hydration time (load on a hit, build
	// otherwise).
	Seconds float64
	// Path is the shard's catalog entry ("" when nothing was persisted).
	Path string
	// LoadErr records why a present entry was rejected before the shard
	// was rebuilt; SaveErr records a failed persist of a fresh build (the
	// built index is still served).
	LoadErr error
	SaveErr error
}

// Build constructs one index per shard of the plan from spec's registered
// recipe and assembles them into a scatter-gather Method. Each shard gets
// the parent context's Sub-context over its range (inheriting leaf budget,
// page size and histogram parameters), so shard builds are exactly the
// recipe the unsharded build runs, over less data. Shards build
// concurrently under opts.Workers; per-shard failures are joined into one
// error. The returned ShardBuild slice is in shard order.
func Build(spec core.MethodSpec, parent *core.BuildContext, plan *Plan, opts BuildOptions) (*Method, []ShardBuild, error) {
	if plan.Size() != parent.Data.Size() {
		return nil, nil, fmt.Errorf("shard: plan covers %d series, context holds %d", plan.Size(), parent.Data.Size())
	}
	n := plan.Count()
	parts := make([]core.Method, n)
	stores := make([]*storage.SeriesStore, n)
	infos := make([]ShardBuild, n)
	errs := make([]error, n)
	buildOne := func(i int) {
		r := plan.Range(i)
		ctx := parent.Sub(r.Lo, r.Hi)
		info := ShardBuild{Shard: i, ID: plan.ID(i)}
		if opts.Catalog != nil {
			res, err := opts.Catalog.OpenOrBuild(spec, ctx)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", plan.Label(i), err)
				return
			}
			parts[i], stores[i] = res.Method, res.Store
			info.Hit = res.Hit
			info.Seconds = res.HydrateSeconds()
			info.Path = res.Path
			info.LoadErr = res.LoadErr
			info.SaveErr = res.SaveErr
		} else {
			start := time.Now()
			br, err := spec.Build(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", plan.Label(i), err)
				return
			}
			parts[i], stores[i] = br.Method, br.Store
			info.Seconds = time.Since(start).Seconds()
		}
		infos[i] = info
	}

	core.FanOut(n, opts.Workers, buildOne)
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}

	var store *Store
	anyStore := false
	for _, st := range stores {
		if st != nil {
			anyStore = true
			break
		}
	}
	if anyStore {
		var err error
		if store, err = NewStore(plan, stores); err != nil {
			return nil, nil, err
		}
	}
	m, err := NewMethod(spec.Name, plan, parts, store, opts.SearchWorkers)
	if err != nil {
		return nil, nil, err
	}
	return m, infos, nil
}
