package flann

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
)

func buildTestIndex(t *testing.T, n, length int, cfg Config, kind dataset.Kind, seed int64) (*Index, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: kind, Count: n, Length: length, Seed: seed})
	idx, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, kind, 5, seed+100)
	return idx, data, queries
}

func avgRecall(t *testing.T, idx *Index, queries *series.Dataset, gt [][]core.Neighbor, nprobe int) float64 {
	t.Helper()
	var total float64
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := idx.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: nprobe})
		if err != nil {
			t.Fatal(err)
		}
		trueIDs := map[int]struct{}{}
		for _, nb := range gt[qi] {
			trueIDs[nb.ID] = struct{}{}
		}
		for _, nb := range res.Neighbors {
			if _, ok := trueIDs[nb.ID]; ok {
				total++
			}
		}
	}
	return total / float64(10*queries.Size())
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 16, Seed: 1})
	for i, cfg := range []Config{
		{Trees: 0, Branching: 4, LeafSize: 8},
		{Trees: 2, Branching: 1, LeafSize: 8},
		{Trees: 2, Branching: 4, LeafSize: 0},
	} {
		if _, err := Build(data, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestKDTreesRecall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoKDTrees
	idx, data, queries := buildTestIndex(t, 2000, 32, cfg, dataset.KindClustered, 1)
	gt := scan.GroundTruth(data, queries, 10)
	if r := avgRecall(t, idx, queries, gt, 500); r < 0.7 {
		t.Errorf("KD forest recall %v at checks=500", r)
	}
}

func TestKMeansTreeRecall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoKMeans
	idx, data, queries := buildTestIndex(t, 2000, 32, cfg, dataset.KindClustered, 3)
	gt := scan.GroundTruth(data, queries, 10)
	if r := avgRecall(t, idx, queries, gt, 500); r < 0.7 {
		t.Errorf("k-means tree recall %v at checks=500", r)
	}
}

func TestAutoTunePicksSomething(t *testing.T) {
	idx, data, queries := buildTestIndex(t, 1000, 32, DefaultConfig(), dataset.KindWalk, 5)
	if idx.Chosen() != AlgoKDTrees && idx.Chosen() != AlgoKMeans {
		t.Fatalf("auto-tune resolved to %v", idx.Chosen())
	}
	gt := scan.GroundTruth(data, queries, 10)
	if r := avgRecall(t, idx, queries, gt, 400); r < 0.5 {
		t.Errorf("auto-tuned recall %v", r)
	}
}

func TestRecallImprovesWithChecks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoKDTrees
	idx, data, queries := buildTestIndex(t, 3000, 32, cfg, dataset.KindWalk, 7)
	gt := scan.GroundTruth(data, queries, 10)
	lo := avgRecall(t, idx, queries, gt, 40)
	hi := avgRecall(t, idx, queries, gt, 2000)
	if hi < lo {
		t.Errorf("recall fell with more checks: %v -> %v", lo, hi)
	}
	if hi < 0.8 {
		t.Errorf("recall at checks=2000 is %v", hi)
	}
}

func TestChecksBoundWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoKDTrees
	idx, _, queries := buildTestIndex(t, 5000, 32, cfg, dataset.KindWalk, 9)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeNG, NProbe: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Distance computations should be in the same ballpark as checks, far
	// below a full scan.
	if res.DistCalcs > 2500 {
		t.Errorf("checks=100 computed %d distances", res.DistCalcs)
	}
}

func TestRejectsNonNGModes(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 200, 16, DefaultConfig(), dataset.KindWalk, 11)
	for _, mode := range []core.Mode{core.ModeExact, core.ModeEpsilon, core.ModeDeltaEpsilon} {
		if _, err := idx.Search(core.Query{Series: queries.At(0), K: 1, Mode: mode, Epsilon: 1, Delta: 0.5}); err == nil {
			t.Errorf("mode %v should be rejected", mode)
		}
	}
}

func TestIdenticalPointsDoNotLoop(t *testing.T) {
	data := series.NewDataset(8)
	one := make(series.Series, 8)
	for i := 0; i < 100; i++ {
		data.Append(one)
	}
	idx, err := Build(data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Search(core.Query{Series: one, K: 3, Mode: core.ModeNG, NProbe: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 3 {
		t.Errorf("%d results on degenerate data", len(res.Neighbors))
	}
}

func TestNameFootprint(t *testing.T) {
	idx, data, _ := buildTestIndex(t, 200, 16, DefaultConfig(), dataset.KindWalk, 13)
	if idx.Name() != "FLANN" || idx.Size() != 200 {
		t.Error("metadata wrong")
	}
	if idx.Footprint() <= data.Bytes() {
		t.Error("footprint should include structures above raw data")
	}
}

func TestSearchValidation(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 100, 16, DefaultConfig(), dataset.KindWalk, 15)
	if _, err := idx.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeNG, NProbe: 5}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := idx.Search(core.Query{Series: make(series.Series, 5), K: 1, Mode: core.ModeNG, NProbe: 5}); err == nil {
		t.Error("wrong length accepted")
	}
}
