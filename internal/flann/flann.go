// Package flann implements a FLANN-style ensemble (Muja & Lowe, VISAPP
// 2009) for ng-approximate nearest neighbour search: a forest of
// randomized KD-trees and a hierarchical k-means tree, plus an auto-tuning
// step that picks the better structure for a desired accuracy on a sample
// workload — the defining feature of FLANN ("selects and auto-tunes the
// most appropriate algorithm").
//
// Like the original, this is an in-memory method: raw vectors stay
// resident and the storage accountant is untouched.
package flann

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/quant"
	"hydra/internal/series"
)

// Algorithm selects the index structure.
type Algorithm int

const (
	// AlgoAuto lets Build pick between KD-trees and k-means on a sample.
	AlgoAuto Algorithm = iota
	// AlgoKDTrees forces the randomized KD-tree forest.
	AlgoKDTrees
	// AlgoKMeans forces the hierarchical k-means tree.
	AlgoKMeans
)

// Config controls construction.
type Config struct {
	Algorithm Algorithm
	// Trees is the number of randomized KD-trees in the forest.
	Trees int
	// Branching is the k-means tree fan-out.
	Branching int
	// LeafSize bounds points per leaf in both structures.
	LeafSize int
	// TargetRecall drives auto-tuning (sampled 1-NN recall).
	TargetRecall float64
	// Seed drives all randomised choices.
	Seed int64
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{Algorithm: AlgoAuto, Trees: 4, Branching: 8, LeafSize: 32, TargetRecall: 0.9, Seed: 1}
}

func (c Config) validate() error {
	if c.Trees < 1 {
		return fmt.Errorf("flann: trees %d < 1", c.Trees)
	}
	if c.Branching < 2 {
		return fmt.Errorf("flann: branching %d < 2", c.Branching)
	}
	if c.LeafSize < 1 {
		return fmt.Errorf("flann: leaf size %d < 1", c.LeafSize)
	}
	return nil
}

// kdNode is a node of a randomized KD-tree.
type kdNode struct {
	dim         int
	threshold   float64
	ids         []int // leaf
	left, right *kdNode
}

// kmNode is a node of the hierarchical k-means tree.
type kmNode struct {
	center   []float64
	ids      []int // leaf
	children []*kmNode
}

// Index is a FLANN-style ensemble index.
type Index struct {
	data   *series.Dataset
	cfg    Config
	chosen Algorithm // resolved algorithm after auto-tune
	kd     []*kdNode
	km     *kmNode
}

// Build constructs the index.
func Build(data *series.Dataset, cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	idx := &Index{data: data, cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	all := make([]int, data.Size())
	for i := range all {
		all[i] = i
	}
	buildKD := func() {
		idx.kd = make([]*kdNode, cfg.Trees)
		for t := range idx.kd {
			ids := append([]int(nil), all...)
			idx.kd[t] = idx.buildKDTree(ids, rng)
		}
	}
	buildKM := func() {
		idx.km = idx.buildKMTree(append([]int(nil), all...), rng)
	}
	switch cfg.Algorithm {
	case AlgoKDTrees:
		buildKD()
		idx.chosen = AlgoKDTrees
	case AlgoKMeans:
		buildKM()
		idx.chosen = AlgoKMeans
	default:
		buildKD()
		buildKM()
		idx.chosen = idx.autoTune(rng)
	}
	return idx, nil
}

// buildKDTree builds one randomized KD-tree: the split dimension is chosen
// uniformly among the 5 highest-variance dimensions of the node's points.
func (idx *Index) buildKDTree(ids []int, rng *rand.Rand) *kdNode {
	if len(ids) <= idx.cfg.LeafSize {
		return &kdNode{ids: ids}
	}
	dim := idx.randomHighVarianceDim(ids, rng)
	vals := make([]float64, len(ids))
	for i, id := range ids {
		vals[i] = float64(idx.data.At(id)[dim])
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	threshold := sorted[len(sorted)/2]
	var left, right []int
	for i, id := range ids {
		if vals[i] < threshold {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &kdNode{ids: ids} // degenerate dimension: stop splitting
	}
	return &kdNode{
		dim:       dim,
		threshold: threshold,
		left:      idx.buildKDTree(left, rng),
		right:     idx.buildKDTree(right, rng),
	}
}

func (idx *Index) randomHighVarianceDim(ids []int, rng *rand.Rand) int {
	length := idx.data.Length()
	type dv struct {
		dim int
		v   float64
	}
	vars := make([]dv, length)
	sample := ids
	if len(sample) > 100 {
		sample = sample[:100]
	}
	for d := 0; d < length; d++ {
		var sum, sumSq float64
		for _, id := range sample {
			v := float64(idx.data.At(id)[d])
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(len(sample))
		vars[d] = dv{dim: d, v: sumSq/float64(len(sample)) - mean*mean}
	}
	sort.Slice(vars, func(a, b int) bool { return vars[a].v > vars[b].v })
	top := 5
	if top > length {
		top = length
	}
	return vars[rng.Intn(top)].dim
}

// buildKMTree builds the hierarchical k-means tree.
func (idx *Index) buildKMTree(ids []int, rng *rand.Rand) *kmNode {
	node := &kmNode{center: idx.centroidOf(ids)}
	if len(ids) <= idx.cfg.LeafSize || len(ids) <= idx.cfg.Branching {
		node.ids = ids
		return node
	}
	vecs := make([][]float64, len(ids))
	for i, id := range ids {
		s := idx.data.At(id)
		v := make([]float64, len(s))
		for j, x := range s {
			v[j] = float64(x)
		}
		vecs[i] = v
	}
	_, assign := quant.KMeans(vecs, idx.cfg.Branching, 8, rng.Int63())
	groups := make(map[int][]int)
	for i, c := range assign {
		groups[c] = append(groups[c], ids[i])
	}
	if len(groups) < 2 {
		node.ids = ids
		return node
	}
	keys := make([]int, 0, len(groups))
	for c := range groups {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	for _, c := range keys {
		node.children = append(node.children, idx.buildKMTree(groups[c], rng))
	}
	return node
}

func (idx *Index) centroidOf(ids []int) []float64 {
	c := make([]float64, idx.data.Length())
	for _, id := range ids {
		s := idx.data.At(id)
		for j, x := range s {
			c[j] += float64(x)
		}
	}
	for j := range c {
		c[j] /= float64(len(ids))
	}
	return c
}

// autoTune measures sampled 1-NN recall vs examined points for both
// structures at a modest budget and keeps the one that reaches the target
// recall, preferring the faster (fewer distance computations) on a tie —
// a lightweight rendition of FLANN's parameter search.
func (idx *Index) autoTune(rng *rand.Rand) Algorithm {
	n := idx.data.Size()
	samples := 20
	if samples > n {
		samples = n
	}
	budget := n / 10
	if budget < idx.cfg.LeafSize {
		budget = idx.cfg.LeafSize
	}
	score := func(algo Algorithm) (recall float64, work int64) {
		hits := 0
		var calcs int64
		for s := 0; s < samples; s++ {
			qid := rng.Intn(n)
			q := idx.data.At(qid)
			var got []core.Neighbor
			if algo == AlgoKDTrees {
				got = idx.searchKD(q, 2, budget, &calcs)
			} else {
				got = idx.searchKM(q, 2, budget, &calcs)
			}
			// True 1-NN excluding the query point itself.
			best, bestD := -1, math.Inf(1)
			for i := 0; i < n; i++ {
				if i == qid {
					continue
				}
				if d := kernel.SquaredDist(q, idx.data.At(i)); d < bestD {
					best, bestD = i, d
				}
			}
			for _, nb := range got {
				if nb.ID == best {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(samples), calcs
	}
	kdRecall, kdWork := score(AlgoKDTrees)
	kmRecall, kmWork := score(AlgoKMeans)
	kdOK := kdRecall >= idx.cfg.TargetRecall
	kmOK := kmRecall >= idx.cfg.TargetRecall
	switch {
	case kdOK && kmOK:
		if kdWork <= kmWork {
			return AlgoKDTrees
		}
		return AlgoKMeans
	case kdOK:
		return AlgoKDTrees
	case kmOK:
		return AlgoKMeans
	default:
		if kdRecall >= kmRecall {
			return AlgoKDTrees
		}
		return AlgoKMeans
	}
}

// Chosen reports the algorithm resolved at build time.
func (idx *Index) Chosen() Algorithm { return idx.chosen }

// Name implements core.Method.
func (idx *Index) Name() string { return "FLANN" }

// Size returns the number of indexed series.
func (idx *Index) Size() int { return idx.data.Size() }

// Footprint implements core.Method: both structures plus resident data.
func (idx *Index) Footprint() int64 {
	var total int64
	var walkKD func(n *kdNode)
	walkKD = func(n *kdNode) {
		total += 48 + int64(len(n.ids))*8
		if n.left != nil {
			walkKD(n.left)
			walkKD(n.right)
		}
	}
	for _, t := range idx.kd {
		walkKD(t)
	}
	var walkKM func(n *kmNode)
	walkKM = func(n *kmNode) {
		total += int64(len(n.center))*8 + int64(len(n.ids))*8 + 48
		for _, c := range n.children {
			walkKM(c)
		}
	}
	if idx.km != nil {
		walkKM(idx.km)
	}
	return total + idx.data.Bytes()
}

// branchItem is a deferred branch ordered by its distance bound.
type branchItem struct {
	kd *kdNode
	km *kmNode
	d  float64
}

// branchQueue implements container/heap's heap.Interface: a min-heap on
// distance over the branches still worth probing.
type branchQueue []branchItem

func (q branchQueue) Len() int            { return len(q) }
func (q branchQueue) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q branchQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *branchQueue) Push(x interface{}) { *q = append(*q, x.(branchItem)) }
func (q *branchQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// searchKD performs the FLANN multi-tree priority search with a bound on
// examined points ("checks"). calcs is the caller's distance-computation
// tally: per-call state, so concurrent searches never share a counter.
func (idx *Index) searchKD(q series.Series, k, checks int, calcs *int64) []core.Neighbor {
	kset := core.NewKNNSet(k)
	pq := &branchQueue{}
	heap.Init(pq)
	examined := 0
	var descend func(n *kdNode, bound float64)
	descend = func(n *kdNode, bound float64) {
		for n.left != nil {
			diff := float64(q[n.dim]) - n.threshold
			var near, far *kdNode
			if diff < 0 {
				near, far = n.left, n.right
			} else {
				near, far = n.right, n.left
			}
			heap.Push(pq, branchItem{kd: far, d: bound + diff*diff})
			n = near
		}
		for _, id := range n.ids {
			if examined >= checks && kset.Full() {
				return
			}
			*calcs++
			examined++
			kset.Offer(id, kernel.Dist(q, idx.data.At(id)))
		}
	}
	for _, t := range idx.kd {
		descend(t, 0)
	}
	for pq.Len() > 0 && (examined < checks || !kset.Full()) {
		it := heap.Pop(pq).(branchItem)
		w := kset.Worst()
		if it.d >= w*w {
			continue
		}
		descend(it.kd, it.d)
	}
	return kset.Sorted()
}

// searchKM performs the hierarchical k-means priority search.
func (idx *Index) searchKM(q series.Series, k, checks int, calcs *int64) []core.Neighbor {
	kset := core.NewKNNSet(k)
	pq := &branchQueue{}
	heap.Init(pq)
	examined := 0
	centerDist := func(n *kmNode) float64 {
		var acc float64
		for i, x := range q {
			d := float64(x) - n.center[i]
			acc += d * d
		}
		return acc
	}
	var descend func(n *kmNode)
	descend = func(n *kmNode) {
		for len(n.children) > 0 {
			best, bestD := 0, math.Inf(1)
			for i, c := range n.children {
				d := centerDist(c)
				*calcs++
				if d < bestD {
					best, bestD = i, d
				}
			}
			for i, c := range n.children {
				if i != best {
					heap.Push(pq, branchItem{km: c, d: centerDist(c)})
				}
			}
			n = n.children[best]
		}
		for _, id := range n.ids {
			if examined >= checks && kset.Full() {
				return
			}
			*calcs++
			examined++
			kset.Offer(id, kernel.Dist(q, idx.data.At(id)))
		}
	}
	descend(idx.km)
	for pq.Len() > 0 && (examined < checks || !kset.Full()) {
		it := heap.Pop(pq).(branchItem)
		descend(it.km)
	}
	return kset.Sorted()
}

// Search implements core.Method. FLANN supports ng-approximate queries;
// NProbe is the "checks" budget (points examined).
func (idx *Index) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("flann: %w", err)
	}
	if q.Mode != core.ModeNG {
		return core.Result{}, fmt.Errorf("flann: %s search not supported (ng-approximate only)", q.Mode)
	}
	if len(q.Series) != idx.data.Length() {
		return core.Result{}, fmt.Errorf("flann: query length %d != dataset length %d", len(q.Series), idx.data.Length())
	}
	checks := q.NProbe
	if checks < q.K {
		checks = q.K
	}
	var calcs int64
	var nbrs []core.Neighbor
	if idx.chosen == AlgoKMeans {
		nbrs = idx.searchKM(q.Series, q.K, checks, &calcs)
	} else {
		nbrs = idx.searchKD(q.Series, q.K, checks, &calcs)
	}
	return core.Result{Neighbors: nbrs, DistCalcs: calcs, LeavesVisited: checks}, nil
}
