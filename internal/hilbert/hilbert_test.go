package hilbert

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestKeyCoordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []int{1, 2, 3, 8} {
		for _, bits := range []int{1, 4, 8, 16} {
			c := NewCurve(dims, bits)
			for trial := 0; trial < 50; trial++ {
				coords := make([]uint32, dims)
				for i := range coords {
					coords[i] = uint32(rng.Intn(1 << bits))
				}
				key := c.Key(coords)
				got := c.Coords(key)
				for i := range coords {
					if got[i] != coords[i] {
						t.Fatalf("dims=%d bits=%d trial %d: round trip %v -> %v", dims, bits, trial, coords, got)
					}
				}
			}
		}
	}
}

func TestKeyLength(t *testing.T) {
	c := NewCurve(3, 8) // 24 bits -> 3 bytes
	key := c.Key([]uint32{1, 2, 3})
	if len(key) != 3 {
		t.Errorf("key length = %d, want 3", len(key))
	}
	c2 := NewCurve(5, 5) // 25 bits -> 4 bytes
	if got := len(c2.Key([]uint32{0, 1, 2, 3, 4})); got != 4 {
		t.Errorf("key length = %d, want 4", got)
	}
}

func TestKeysAreUnique(t *testing.T) {
	// In 2D order-4 (16x16 grid) every cell must get a distinct key.
	c := NewCurve(2, 4)
	seen := map[string][]uint32{}
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			k := string(c.Key([]uint32{x, y}))
			if prev, ok := seen[k]; ok {
				t.Fatalf("key collision between %v and (%d,%d)", prev, x, y)
			}
			seen[k] = []uint32{x, y}
		}
	}
	if len(seen) != 256 {
		t.Fatalf("expected 256 keys, got %d", len(seen))
	}
}

func TestCurveIsContinuous(t *testing.T) {
	// Walking the 2D order-4 curve in key order must move exactly one grid
	// step at a time — the defining Hilbert property.
	c := NewCurve(2, 4)
	type cell struct {
		key []byte
		x   uint32
		y   uint32
	}
	cells := make([]cell, 0, 256)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			cells = append(cells, cell{c.Key([]uint32{x, y}), x, y})
		}
	}
	sort.Slice(cells, func(i, j int) bool { return bytes.Compare(cells[i].key, cells[j].key) < 0 })
	for i := 1; i < len(cells); i++ {
		dx := int(cells[i].x) - int(cells[i-1].x)
		dy := int(cells[i].y) - int(cells[i-1].y)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jumps from (%d,%d) to (%d,%d) at position %d",
				cells[i-1].x, cells[i-1].y, cells[i].x, cells[i].y, i)
		}
	}
}

func TestLocalityPreservation(t *testing.T) {
	// Points nearby on the curve should be nearby in space on average:
	// compare mean spatial distance of key-adjacent pairs vs random pairs.
	rng := rand.New(rand.NewSource(3))
	c := NewCurve(4, 8)
	n := 300
	type item struct {
		key    []byte
		coords []uint32
	}
	items := make([]item, n)
	for i := range items {
		coords := make([]uint32, 4)
		for j := range coords {
			coords[j] = uint32(rng.Intn(256))
		}
		items[i] = item{c.Key(coords), coords}
	}
	sort.Slice(items, func(i, j int) bool { return bytes.Compare(items[i].key, items[j].key) < 0 })
	dist := func(a, b []uint32) float64 {
		var acc float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			acc += d * d
		}
		return math.Sqrt(acc)
	}
	var adjacent, random float64
	for i := 1; i < n; i++ {
		adjacent += dist(items[i-1].coords, items[i].coords)
		random += dist(items[rng.Intn(n)].coords, items[rng.Intn(n)].coords)
	}
	if adjacent >= random {
		t.Errorf("Hilbert adjacency not preserving locality: adjacent=%v random=%v", adjacent, random)
	}
}

func TestQuantize(t *testing.T) {
	if Quantize(-5, 0, 10, 8) != 0 {
		t.Error("below-range should clip to 0")
	}
	if Quantize(15, 0, 10, 8) != 255 {
		t.Error("above-range should clip to max")
	}
	if Quantize(5, 0, 10, 8) != 128 {
		t.Errorf("midpoint = %d, want 128", Quantize(5, 0, 10, 8))
	}
	if Quantize(3, 3, 3, 4) != 0 {
		t.Error("degenerate range should map to 0")
	}
	// Monotone in v.
	prev := uint32(0)
	for v := 0.0; v <= 10; v += 0.1 {
		q := Quantize(v, 0, 10, 6)
		if q < prev {
			t.Fatalf("Quantize not monotone at %v", v)
		}
		prev = q
	}
}

func TestCompare(t *testing.T) {
	if Compare([]byte{1}, []byte{2}) >= 0 {
		t.Error("Compare broken")
	}
}

func TestNewCurveInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCurve(0, 8)
}

func TestKeyWrongDimsPanics(t *testing.T) {
	c := NewCurve(2, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Key([]uint32{1})
}
