// Package hilbert implements d-dimensional Hilbert space-filling curve
// keys, the partition-ordering substrate of HD-index: points close on the
// Hilbert curve are close in space (the converse does not hold, which is
// why HD-index refines candidates with distance inequalities).
//
// The implementation follows the classic Butz/Lawder bit-interleaving
// transformation between d-dimensional coordinates quantised to b bits and
// the Hilbert index of d·b bits, packed into a big-endian byte slice.
package hilbert

import (
	"bytes"
	"fmt"
)

// Curve maps d-dimensional points with b bits per coordinate onto a Hilbert
// curve of order b.
type Curve struct {
	dims int
	bits int
}

// NewCurve creates a Hilbert curve for the given dimensionality and
// per-coordinate precision. dims*bits may exceed 64: keys are returned as
// byte slices.
func NewCurve(dims, bits int) *Curve {
	if dims <= 0 || bits <= 0 || bits > 32 {
		panic(fmt.Sprintf("hilbert: invalid curve dims=%d bits=%d", dims, bits))
	}
	return &Curve{dims: dims, bits: bits}
}

// Dims returns the dimensionality.
func (c *Curve) Dims() int { return c.dims }

// Bits returns the per-coordinate precision.
func (c *Curve) Bits() int { return c.bits }

// Key converts quantised coordinates (each in [0, 2^bits)) to the Hilbert
// index as a big-endian byte slice of ceil(dims*bits/8) bytes. Keys compare
// correctly with bytes.Compare.
func (c *Curve) Key(coords []uint32) []byte {
	if len(coords) != c.dims {
		panic(fmt.Sprintf("hilbert: %d coords for %d dims", len(coords), c.dims))
	}
	x := make([]uint32, c.dims)
	copy(x, coords)
	hilbertTranspose(x, c.bits)
	return packTranspose(x, c.dims, c.bits)
}

// Coords inverts Key: it reconstructs the quantised coordinates from a key
// produced by the same curve.
func (c *Curve) Coords(key []byte) []uint32 {
	x := unpackTranspose(key, c.dims, c.bits)
	hilbertUntranspose(x, c.bits)
	return x
}

// hilbertTranspose converts coordinates in place into the "transposed"
// Hilbert index form (Skilling's algorithm, AIP Conf. Proc. 707, 381).
func hilbertTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << (bits - 1)
	// Inverse undo excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// hilbertUntranspose is the inverse of hilbertTranspose.
func hilbertUntranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				tt := (x[0] ^ x[i]) & p
				x[0] ^= tt
				x[i] ^= tt
			}
		}
	}
}

// packTranspose interleaves the transposed form into a big-endian bit
// string: bit (bits-1-b) of x[i] becomes bit position b*dims + i from the
// most significant end.
func packTranspose(x []uint32, dims, bits int) []byte {
	total := dims * bits
	out := make([]byte, (total+7)/8)
	pos := 0
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < dims; i++ {
			if x[i]&(1<<uint(b)) != 0 {
				out[pos/8] |= 1 << uint(7-pos%8)
			}
			pos++
		}
	}
	return out
}

// unpackTranspose is the inverse of packTranspose.
func unpackTranspose(key []byte, dims, bits int) []uint32 {
	x := make([]uint32, dims)
	pos := 0
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < dims; i++ {
			if key[pos/8]&(1<<uint(7-pos%8)) != 0 {
				x[i] |= 1 << uint(b)
			}
			pos++
		}
	}
	return x
}

// Compare orders two keys (thin wrapper over bytes.Compare for callers that
// do not want to import bytes).
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// Quantize maps a float value from [lo, hi] onto [0, 2^bits) uniformly,
// clipping out-of-range values: the coordinate preprocessing HD-index
// applies before computing keys.
func Quantize(v, lo, hi float64, bits int) uint32 {
	if hi <= lo {
		return 0
	}
	max := (uint32(1) << bits) - 1
	f := (v - lo) / (hi - lo)
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return max
	}
	return uint32(f * float64(max+1))
}
