package hdindex

import "hydra/internal/core"

func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:         "HD-index",
		Rank:         110,
		NG:           true,
		DiskResident: true,
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			idx, err := Build(st, DefaultConfig())
			if err != nil {
				return core.BuildResult{}, err
			}
			return core.BuildResult{Method: idx, Store: st}, nil
		},
	})
}
