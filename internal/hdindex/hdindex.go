// Package hdindex implements an HD-index-style method (Arora et al., PVLDB
// 2018) for ng-approximate search: the dimensions are partitioned into
// disjoint lower-dimensional groups; within each group, series are ordered
// by the Hilbert key of their quantised sub-vector (the RDB-tree of the
// original becomes a sorted key table — the same logarithmic lookup,
// simpler machinery). A query probes each partition around its own key,
// gathers candidates, cheaply screens them with per-partition sub-vector
// distances (the role the original's triangle/Ptolemaic inequalities play),
// and refines survivors against the raw data.
package hdindex

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"hydra/internal/core"
	"hydra/internal/hilbert"
	"hydra/internal/kernel"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// Config controls partitioning and probing.
type Config struct {
	// Partitions is the number of disjoint dimension groups.
	Partitions int
	// Bits is the per-dimension Hilbert quantisation precision.
	Bits int
	// RefineFactor multiplies NProbe to set how many screened candidates
	// are refined against raw data.
	RefineFactor int
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{Partitions: 4, Bits: 8, RefineFactor: 4}
}

func (c Config) validate(length int) error {
	if c.Partitions < 1 || c.Partitions > length {
		return fmt.Errorf("hdindex: partitions %d out of [1,%d]", c.Partitions, length)
	}
	if c.Bits < 1 || c.Bits > 16 {
		return fmt.Errorf("hdindex: bits %d out of [1,16]", c.Bits)
	}
	if c.RefineFactor < 1 {
		return fmt.Errorf("hdindex: refine factor %d < 1", c.RefineFactor)
	}
	return nil
}

// partition is one dimension group with its sorted Hilbert key table.
type partition struct {
	lo, hi int // dimension range [lo,hi)
	curve  *hilbert.Curve
	minV   float64 // quantisation range over the data
	maxV   float64
	keys   [][]byte // sorted
	ids    []int    // aligned with keys
}

// Index is an HD-index over a series store.
type Index struct {
	store *storage.SeriesStore
	cfg   Config
	parts []partition
}

// Build constructs the index.
func Build(store *storage.SeriesStore, cfg Config) (*Index, error) {
	if err := cfg.validate(store.Length()); err != nil {
		return nil, err
	}
	idx := &Index{store: store, cfg: cfg}
	length := store.Length()
	n := store.Size()
	for p := 0; p < cfg.Partitions; p++ {
		lo := p * length / cfg.Partitions
		hi := (p + 1) * length / cfg.Partitions
		part := partition{lo: lo, hi: hi, curve: hilbert.NewCurve(hi-lo, cfg.Bits)}
		part.minV, part.maxV = math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			s := store.Peek(i)
			for d := lo; d < hi; d++ {
				v := float64(s[d])
				if v < part.minV {
					part.minV = v
				}
				if v > part.maxV {
					part.maxV = v
				}
			}
		}
		type kv struct {
			key []byte
			id  int
		}
		pairs := make([]kv, n)
		coords := make([]uint32, hi-lo)
		for i := 0; i < n; i++ {
			s := store.Peek(i)
			for d := lo; d < hi; d++ {
				coords[d-lo] = hilbert.Quantize(float64(s[d]), part.minV, part.maxV, cfg.Bits)
			}
			pairs[i] = kv{key: part.curve.Key(coords), id: i}
		}
		sort.Slice(pairs, func(a, b int) bool { return bytes.Compare(pairs[a].key, pairs[b].key) < 0 })
		part.keys = make([][]byte, n)
		part.ids = make([]int, n)
		for i, pr := range pairs {
			part.keys[i] = pr.key
			part.ids[i] = pr.id
		}
		idx.parts = append(idx.parts, part)
	}
	return idx, nil
}

// Name implements core.Method.
func (idx *Index) Name() string { return "HD-index" }

// Size returns the number of indexed series.
func (idx *Index) Size() int { return idx.store.Size() }

// Footprint implements core.Method: key tables per partition.
func (idx *Index) Footprint() int64 {
	var total int64
	for _, p := range idx.parts {
		for _, k := range p.keys {
			total += int64(len(k))
		}
		total += int64(len(p.ids)) * 8
	}
	return total
}

// subDist computes the squared distance between the query's sub-vector and
// series id restricted to partition p, using uncharged access (sub-vector
// screens model the memory-resident reference distances of the original).
func (idx *Index) subDist(q series.Series, p *partition, id int) float64 {
	s := idx.store.Peek(id)
	var acc float64
	for d := p.lo; d < p.hi; d++ {
		diff := float64(q[d]) - float64(s[d])
		acc += diff * diff
	}
	return acc
}

// Search implements core.Method. HD-index supports ng-approximate queries;
// NProbe is the probe window per partition (candidates gathered around the
// query key on each side).
func (idx *Index) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("hdindex: %w", err)
	}
	if q.Mode != core.ModeNG {
		return core.Result{}, fmt.Errorf("hdindex: %s search not supported (ng-approximate only)", q.Mode)
	}
	if len(q.Series) != idx.store.Length() {
		return core.Result{}, fmt.Errorf("hdindex: query length %d != dataset length %d", len(q.Series), idx.store.Length())
	}
	st := idx.store.View()
	res := core.Result{}

	// Gather candidates from a window around the query key per partition.
	type scored struct {
		id    int
		bound float64 // sum of screened sub-distances (full squared distance)
	}
	seen := make(map[int]float64)
	for pi := range idx.parts {
		p := &idx.parts[pi]
		coords := make([]uint32, p.hi-p.lo)
		for d := p.lo; d < p.hi; d++ {
			coords[d-p.lo] = hilbert.Quantize(float64(q.Series[d]), p.minV, p.maxV, idx.cfg.Bits)
		}
		qkey := p.curve.Key(coords)
		pos := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], qkey) >= 0 })
		lo := pos - q.NProbe
		if lo < 0 {
			lo = 0
		}
		hi := pos + q.NProbe
		if hi > len(p.ids) {
			hi = len(p.ids)
		}
		for i := lo; i < hi; i++ {
			seen[p.ids[i]] = 0
		}
		res.LeavesVisited++ // one probed partition
	}

	// Screen: exact full squared distance assembled from per-partition
	// sub-distances on the memory-resident summaries.
	cands := make([]scored, 0, len(seen))
	for id := range seen {
		var bound float64
		for pi := range idx.parts {
			bound += idx.subDist(q.Series, &idx.parts[pi], id)
		}
		cands = append(cands, scored{id: id, bound: bound})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].bound != cands[b].bound {
			return cands[a].bound < cands[b].bound
		}
		return cands[a].id < cands[b].id // ties: deterministic despite map iteration order
	})

	// Refine the best candidates against raw (charged) data.
	refine := q.K * idx.cfg.RefineFactor
	if refine > len(cands) {
		refine = len(cands)
	}
	kset := core.NewKNNSet(q.K)
	for _, c := range cands[:refine] {
		raw := st.Read(c.id)
		lim := kset.Worst()
		d2 := kernel.SquaredDistEarlyAbandon(q.Series, raw, lim*lim)
		res.DistCalcs++
		kset.Offer(c.id, kernel.Distance(d2))
	}
	res.Neighbors = kset.Sorted()
	res.IO = st.Accountant().Snapshot()
	return res, nil
}
