package hdindex

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func buildTestIndex(t *testing.T, n, length int, cfg Config, kind dataset.Kind, seed int64) (*Index, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: kind, Count: n, Length: length, Seed: seed})
	store := storage.NewSeriesStore(data, 0)
	idx, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, kind, 5, seed+100)
	return idx, data, queries
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 16, Seed: 1})
	store := storage.NewSeriesStore(data, 0)
	for i, cfg := range []Config{
		{Partitions: 0, Bits: 8, RefineFactor: 2},
		{Partitions: 20, Bits: 8, RefineFactor: 2},
		{Partitions: 2, Bits: 0, RefineFactor: 2},
		{Partitions: 2, Bits: 32, RefineFactor: 2},
		{Partitions: 2, Bits: 8, RefineFactor: 0},
	} {
		if _, err := Build(store, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestPartitionsCoverAllDimensions(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 100, 33, Config{Partitions: 4, Bits: 6, RefineFactor: 2}, dataset.KindWalk, 1)
	covered := 0
	prev := 0
	for _, p := range idx.parts {
		if p.lo != prev {
			t.Fatalf("partition gap at %d", p.lo)
		}
		covered += p.hi - p.lo
		prev = p.hi
	}
	if covered != 33 {
		t.Errorf("partitions cover %d of 33 dims", covered)
	}
}

func TestKeyTablesSorted(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 300, 32, DefaultConfig(), dataset.KindClustered, 3)
	for pi, p := range idx.parts {
		for i := 1; i < len(p.keys); i++ {
			if string(p.keys[i-1]) > string(p.keys[i]) {
				t.Fatalf("partition %d keys unsorted at %d", pi, i)
			}
		}
	}
}

func TestFindsReasonableNeighbors(t *testing.T) {
	idx, data, queries := buildTestIndex(t, 2000, 32, DefaultConfig(), dataset.KindClustered, 5)
	gt := scan.GroundTruth(data, queries, 10)
	var recallSum float64
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := idx.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: 200})
		if err != nil {
			t.Fatal(err)
		}
		trueIDs := map[int]struct{}{}
		for _, nb := range gt[qi] {
			trueIDs[nb.ID] = struct{}{}
		}
		for _, nb := range res.Neighbors {
			if _, ok := trueIDs[nb.ID]; ok {
				recallSum++
			}
		}
	}
	if avg := recallSum / float64(10*queries.Size()); avg < 0.4 {
		t.Errorf("HD-index recall %v at wide probe", avg)
	}
}

func TestRecallImprovesWithProbe(t *testing.T) {
	idx, data, queries := buildTestIndex(t, 2000, 32, DefaultConfig(), dataset.KindWalk, 7)
	gt := scan.GroundTruth(data, queries, 10)
	at := func(nprobe int) float64 {
		var total float64
		for qi := 0; qi < queries.Size(); qi++ {
			res, err := idx.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: nprobe})
			if err != nil {
				t.Fatal(err)
			}
			trueIDs := map[int]struct{}{}
			for _, nb := range gt[qi] {
				trueIDs[nb.ID] = struct{}{}
			}
			for _, nb := range res.Neighbors {
				if _, ok := trueIDs[nb.ID]; ok {
					total++
				}
			}
		}
		return total / float64(10*queries.Size())
	}
	lo, hi := at(5), at(500)
	if hi < lo {
		t.Errorf("recall fell with probe: %v -> %v", lo, hi)
	}
}

func TestChargesOnlyRefinedReads(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 3000, 32, DefaultConfig(), dataset.KindWalk, 9)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeNG, NProbe: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistCalcs > int64(5*idx.cfg.RefineFactor) {
		t.Errorf("refined %d raw candidates, cap %d", res.DistCalcs, 5*idx.cfg.RefineFactor)
	}
	if res.IO.BytesRead >= idx.store.TotalBytes()/2 {
		t.Errorf("read half the dataset: %d bytes", res.IO.BytesRead)
	}
}

func TestRejectsNonNGModes(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 200, 16, DefaultConfig(), dataset.KindWalk, 11)
	for _, mode := range []core.Mode{core.ModeExact, core.ModeEpsilon, core.ModeDeltaEpsilon} {
		if _, err := idx.Search(core.Query{Series: queries.At(0), K: 1, Mode: mode, Epsilon: 1, Delta: 0.5}); err == nil {
			t.Errorf("mode %v should be rejected", mode)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 100, 16, DefaultConfig(), dataset.KindWalk, 13)
	if _, err := idx.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeNG, NProbe: 5}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := idx.Search(core.Query{Series: make(series.Series, 5), K: 1, Mode: core.ModeNG, NProbe: 5}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestNameFootprint(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 100, 16, DefaultConfig(), dataset.KindWalk, 15)
	if idx.Name() != "HD-index" || idx.Size() != 100 {
		t.Error("metadata wrong")
	}
	if idx.Footprint() <= 0 {
		t.Error("footprint should be positive")
	}
}
