package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// Log formats accepted by NewLogger (the -log-format flag values).
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds the structured logger the serving binaries share: a
// log/slog logger writing either human-readable text (the default) or
// one-JSON-object-per-line to w. Messages keep their grep-stable phrases
// ("warm start: catalog hit: DSTree", "drained cleanly", ...) while
// machine-read facts — durations, counts, trace IDs — travel as attrs.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	if w == nil {
		return slog.New(slog.DiscardHandler), nil
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", LogText:
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s|%s)", format, LogText, LogJSON)
	}
}

// Discard is a logger that drops everything — the nil-configuration
// default, so callers never need a nil check before logging.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
