package obs

import (
	"sort"
	"sync"
)

// maxFamilies bounds the slowest-per-family table so a client inventing
// family names (e.g. probing unknown methods) cannot grow it without bound.
const maxFamilies = 64

// Ring is the bounded trace retention behind GET /debug/requests: a
// circular buffer of the most recent traces plus, per family, the slowest
// trace seen since boot (x/net/trace's "recent + longest" idiom). A nil
// *Ring is valid and retains nothing.
//
// Add holds the ring mutex only for a few pointer writes and Snapshot only
// long enough to copy pointers; trace export (JSON assembly) happens
// outside the lock. An in-flight Add therefore can never stall a
// /debug/requests read for longer than those pointer writes — the
// never-blocks guarantee the stalled-hydration regression test pins at the
// server layer.
type Ring struct {
	mu      sync.Mutex
	recent  []*Trace // circular; recent[next] is the oldest once full
	next    int
	added   uint64
	slowest map[string]*Trace
}

// NewRing returns a ring retaining the last capacity traces, or nil
// (retention disabled) when capacity is not positive.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return nil
	}
	return &Ring{
		recent:  make([]*Trace, 0, capacity),
		slowest: make(map[string]*Trace, 16),
	}
}

// Add retains a finished trace. Nil rings and nil traces no-op.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	total, family := t.Total(), t.Family()
	r.mu.Lock()
	r.added++
	if len(r.recent) < cap(r.recent) {
		r.recent = append(r.recent, t)
	} else {
		r.recent[r.next] = t
		r.next = (r.next + 1) % cap(r.recent)
	}
	if cur, ok := r.slowest[family]; ok {
		if total > cur.Total() {
			r.slowest[family] = t
		}
	} else if len(r.slowest) < maxFamilies {
		r.slowest[family] = t
	}
	r.mu.Unlock()
}

// Snapshot is the exported ring state: every retained trace in wire form.
type Snapshot struct {
	// Added counts every trace ever offered to the ring, retained or since
	// overwritten.
	Added uint64 `json:"added"`
	// Recent holds the newest traces, newest first.
	Recent []TraceJSON `json:"recent"`
	// Slowest holds each family's slowest trace since boot, slowest first.
	Slowest []TraceJSON `json:"slowest"`
}

// Snapshot exports the ring for /debug/requests. The lock is held only to
// copy trace pointers; the per-trace JSON assembly runs unlocked.
func (r *Ring) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	added := r.added
	recent := make([]*Trace, 0, len(r.recent))
	// Newest first: walk backwards from the slot before next.
	n := len(r.recent)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + 2*n) % n
		recent = append(recent, r.recent[idx])
	}
	slow := make([]*Trace, 0, len(r.slowest))
	for _, t := range r.slowest {
		slow = append(slow, t)
	}
	r.mu.Unlock()

	snap := Snapshot{Added: added, Recent: make([]TraceJSON, 0, len(recent)), Slowest: make([]TraceJSON, 0, len(slow))}
	for _, t := range recent {
		snap.Recent = append(snap.Recent, t.Export())
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].Total() > slow[j].Total() })
	for _, t := range slow {
		snap.Slowest = append(snap.Slowest, t.Export())
	}
	return snap
}
