// Package obs is hydra's zero-dependency observability layer: request-
// scoped traces (an ordered span tree per request, in the x/net/trace
// idiom), a bounded ring buffer of recent and slowest-per-family traces
// behind GET /debug/requests, and the structured-logging constructor the
// serving binaries share.
//
// The design constraint is that the *untraced* hot path pays nothing: every
// method on a nil *Trace and on the zero Span is a no-op that performs zero
// allocations (pinned by TestNilTraceAllocs), so code threads trace handles
// unconditionally and a server with tracing disabled runs the same
// instruction stream minus one pointer test. When tracing is on, a trace
// costs one ID, one spans slice and a handful of monotonic clock reads —
// cheap enough to leave on for every request, which is what makes
// /debug/requests useful for the request you did NOT know you would need
// to debug (the whole point of the slowest-per-family retention).
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// bootID is a per-process random tag mixed into every trace ID so IDs from
// different server incarnations don't collide in logs aggregated across
// restarts. Falling back to the clock keeps IDs unique-per-process even if
// the random source is unavailable.
var bootID = func() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint32(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint32(b[:])
}()

var idCounter atomic.Uint64

const hexDigits = "0123456789abcdef"

// newID returns a 16-hex-char trace ID: 8 chars of per-process randomness
// and 8 of a monotonic counter. It is not cryptographic — it only needs to
// be grep-ably unique across the traces an operator will ever hold at once.
func newID() string {
	n := uint32(idCounter.Add(1))
	var b [16]byte
	v := uint64(bootID)<<32 | uint64(n)
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// span is one timed region. Spans form a tree through parent indexes into
// the trace's flat slice; top-level spans have parent -1.
type span struct {
	name   string
	parent int
	start  time.Duration // offset from the trace start
	dur    time.Duration
	done   bool
}

// Attr is one key=value annotation on a trace.
type Attr struct {
	Key, Value string
}

// Trace is one request's span tree. A nil *Trace is valid everywhere and
// records nothing; that nil path is the "tracing disabled" fast path and is
// guaranteed allocation-free. All methods are safe for concurrent use —
// span starts/ends from worker goroutines interleave under one short-held
// mutex — though the usual pattern is one goroutine driving top-level
// stages and fan-out workers adding completed children.
type Trace struct {
	id     string
	family string
	start  time.Time

	mu    sync.Mutex
	spans []span
	attrs []Attr
	total time.Duration
	done  bool
}

// New starts a trace under the given family (the grouping key the ring's
// slowest-per-family retention uses; hydra-serve uses the requested method
// name). The trace clock starts now.
func New(family string) *Trace {
	return &Trace{
		id:     newID(),
		family: family,
		start:  time.Now(),
		spans:  make([]span, 0, 8),
	}
}

// ID returns the trace ID ("" for nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Family returns the trace's family ("" for nil).
func (t *Trace) Family() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.family
}

// SetFamily renames the trace's family (a request routed by "auto" refines
// its family to the resolved method).
func (t *Trace) SetFamily(family string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.family = family
	t.mu.Unlock()
}

// Annotate attaches a key=value fact to the trace (method, cache outcome,
// error code, ...). Later duplicates of a key are kept in order, so an
// annotation history reads top to bottom.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, Attr{Key: key, Value: value})
	t.mu.Unlock()
}

// Span is a handle on one span of a trace. The zero Span is valid and
// inert, which is what the nil-trace paths hand back.
type Span struct {
	t   *Trace
	idx int
}

// Start opens a new top-level span.
func (t *Trace) Start(name string) Span {
	return t.add(name, -1)
}

// add appends a span under parent (-1 = top level).
func (t *Trace) add(name string, parent int) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, span{name: name, parent: parent, start: time.Since(t.start)})
	t.mu.Unlock()
	return Span{t: t, idx: idx}
}

// End closes the span. Ending a span twice keeps the first duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	if !sp.done {
		sp.done = true
		sp.dur = time.Since(s.t.start) - sp.start
	}
	s.t.mu.Unlock()
}

// Child opens a span nested under s.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.add(name, s.idx)
}

// AddChild records an already-completed child span of duration d under s.
// It is how externally measured time (per-shard search time, kernel-facing
// refinement) is attributed into the tree: the child's start offset is
// s's own start, marking it as a duration attribution rather than a
// wall-clock interval.
func (s Span) AddChild(name string, d time.Duration) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, span{
		name:   name,
		parent: s.idx,
		start:  s.t.spans[s.idx].start,
		dur:    d,
		done:   true,
	})
	s.t.mu.Unlock()
}

// Finish closes the trace: open spans are ended and the total is fixed.
// Further span/annotation calls are still safe but traces are conventionally
// immutable after Finish (the ring snapshots them concurrently).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.total = time.Since(t.start)
	for i := range t.spans {
		if !t.spans[i].done {
			t.spans[i].done = true
			t.spans[i].dur = t.total - t.spans[i].start
		}
	}
}

// Total returns the finished trace's end-to-end duration (0 before Finish
// and for nil).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// TraceJSON is the wire form of a trace, shared by the opt-in "trace"
// block of POST /v1/query responses and GET /debug/requests.
type TraceJSON struct {
	ID      string            `json:"id"`
	Family  string            `json:"family"`
	Start   time.Time         `json:"start"`
	TotalMS float64           `json:"total_ms"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Spans   []SpanJSON        `json:"spans"`
}

// SpanJSON is one exported span. StartMS is the offset from the trace
// start; duration-attributed children (AddChild) share their parent's
// offset.
type SpanJSON struct {
	Name       string     `json:"name"`
	StartMS    float64    `json:"start_ms"`
	DurationMS float64    `json:"duration_ms"`
	Children   []SpanJSON `json:"children,omitempty"`
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Export snapshots the trace as its wire form. Safe to call concurrently
// with span recording (the snapshot is taken under the trace mutex); the
// ring calls it outside its own lock so a slow JSON render can never block
// trace ingestion.
func (t *Trace) Export() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	spans := append([]span(nil), t.spans...)
	attrs := append([]Attr(nil), t.attrs...)
	out := TraceJSON{
		ID:      t.id,
		Family:  t.family,
		Start:   t.start,
		TotalMS: ms(t.total),
	}
	t.mu.Unlock()

	if len(attrs) > 0 {
		out.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	// Assemble the tree bottom-up: children attach in recording order, so
	// the exported order is the order the request actually executed.
	nodes := make([]SpanJSON, len(spans))
	for i, sp := range spans {
		nodes[i] = SpanJSON{Name: sp.name, StartMS: ms(sp.start), DurationMS: ms(sp.dur)}
	}
	for i := len(spans) - 1; i >= 0; i-- {
		p := spans[i].parent
		if p < 0 {
			continue
		}
		nodes[p].Children = append([]SpanJSON{nodes[i]}, nodes[p].Children...)
	}
	for i, sp := range spans {
		if sp.parent < 0 {
			out.Spans = append(out.Spans, nodes[i])
		}
	}
	return out
}

// StageSumMS sums the exported top-level span durations — the quantity the
// acceptance test holds within 5% of TotalMS, and what hydra-tracecheck
// re-verifies end-to-end in the obs-smoke.
func (tj TraceJSON) StageSumMS() float64 {
	var sum float64
	for _, sp := range tj.Spans {
		sum += sp.DurationMS
	}
	return sum
}
