package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// finished returns a finished trace under family with at least one span.
func finished(family string) *Trace {
	tr := New(family)
	sp := tr.Start("query")
	sp.End()
	tr.Finish()
	return tr
}

func TestNilRingNoOps(t *testing.T) {
	var r *Ring
	r.Add(finished("f")) // must not panic
	snap := r.Snapshot()
	if snap.Added != 0 || len(snap.Recent) != 0 || len(snap.Slowest) != 0 {
		t.Fatalf("nil ring retained something: %+v", snap)
	}
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Fatal("non-positive capacity should disable the ring")
	}
}

func TestRingRecentNewestFirst(t *testing.T) {
	r := NewRing(3)
	ids := make([]string, 5)
	for i := range ids {
		tr := finished("f")
		tr.Annotate("seq", fmt.Sprint(i))
		ids[i] = tr.ID()
		r.Add(tr)
	}
	snap := r.Snapshot()
	if snap.Added != 5 {
		t.Fatalf("added = %d, want 5", snap.Added)
	}
	if len(snap.Recent) != 3 {
		t.Fatalf("recent holds %d traces, want 3 (capacity)", len(snap.Recent))
	}
	// Capacity 3 after 5 adds: traces 4, 3, 2 newest first.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if snap.Recent[i].ID != want {
			t.Fatalf("recent[%d] = %s, want %s (snapshot %+v)", i, snap.Recent[i].ID, want, snap.Recent)
		}
	}
}

func TestRingSlowestPerFamily(t *testing.T) {
	r := NewRing(2) // tiny recent window: slowest retention must outlive it

	slow := New("DSTree")
	sp := slow.Start("query")
	time.Sleep(3 * time.Millisecond)
	sp.End()
	slow.Finish()
	r.Add(slow)

	for i := 0; i < 5; i++ {
		r.Add(finished("DSTree"))
		r.Add(finished("VAfile"))
	}

	snap := r.Snapshot()
	if len(snap.Slowest) != 2 {
		t.Fatalf("slowest holds %d families, want 2: %+v", len(snap.Slowest), snap.Slowest)
	}
	// Sorted slowest first, and the slow DSTree trace survived being
	// overwritten in the recent window.
	if snap.Slowest[0].ID != slow.ID() || snap.Slowest[0].Family != "DSTree" {
		t.Fatalf("slowest[0] = %+v, want the slow DSTree trace %s", snap.Slowest[0], slow.ID())
	}
	if snap.Slowest[1].Family != "VAfile" {
		t.Fatalf("slowest[1] family = %s, want VAfile", snap.Slowest[1].Family)
	}
	for _, rec := range snap.Recent {
		if rec.ID == slow.ID() {
			t.Fatal("slow trace should have been overwritten in the recent window")
		}
	}
}

func TestRingFamilyCap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 2*maxFamilies; i++ {
		r.Add(finished(fmt.Sprintf("fam-%d", i)))
	}
	if got := len(r.Snapshot().Slowest); got != maxFamilies {
		t.Fatalf("slowest table grew to %d families, want cap %d", got, maxFamilies)
	}
}

// TestRingHammer is the satellite race test: concurrent writers (request
// completions) and snapshot readers (/debug/requests) against one ring.
// Run under -race it pins that ring ingestion and export never race, and
// that snapshots taken mid-write are internally consistent.
func TestRingHammer(t *testing.T) {
	r := NewRing(32)
	const writers, readers, perWriter = 8, 4, 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := New(fmt.Sprintf("fam-%d", w%3))
				sp := tr.Start("query")
				sp.AddChild("shard.0", time.Microsecond)
				sp.End()
				tr.Annotate("writer", fmt.Sprint(w))
				tr.Finish()
				r.Add(tr)
			}
		}(w)
	}
	stop := make(chan struct{})
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if len(snap.Recent) > 32 {
					t.Errorf("snapshot recent grew past capacity: %d", len(snap.Recent))
					return
				}
				for _, tr := range snap.Recent {
					if tr.ID == "" {
						t.Error("snapshot contains a trace without an ID")
						return
					}
				}
			}
		}()
	}
	// Let readers overlap the writers, then wind down.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	snap := r.Snapshot()
	if snap.Added != writers*perWriter {
		t.Fatalf("added = %d, want %d", snap.Added, writers*perWriter)
	}
	if len(snap.Recent) != 32 {
		t.Fatalf("recent holds %d, want full capacity 32", len(snap.Recent))
	}
}
