package obs

import (
	"strings"
	"testing"
	"time"
)

// TestNilTraceAllocs pins the tentpole's zero-overhead guarantee: every
// operation on a nil *Trace and the zero Span — the exact calls the serve
// path makes per request when tracing is disabled — performs zero
// allocations. A regression here taxes every untraced query.
func TestNilTraceAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("gate.wait")
		sp.End()
		child := sp.Child("refine")
		child.End()
		sp.AddChild("shard.0", time.Millisecond)
		tr.Annotate("method", "DSTree")
		tr.SetFamily("DSTree")
		tr.Finish()
		_ = tr.ID()
		_ = tr.Total()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace operations allocated %.1f times per run, want 0", allocs)
	}
}

// TestTraceIDsUnique checks IDs are non-empty, fixed-width hex and unique.
func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := New("f").ID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("trace ID %q is not lowercase hex", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

// TestSpanTreeExport builds a small tree and checks the exported structure:
// nesting, ordering, annotation merging and the stage sum.
func TestSpanTreeExport(t *testing.T) {
	tr := New("DSTree")
	tr.Annotate("mode", "exact")
	tr.Annotate("cached", "false")

	gate := tr.Start("gate.wait")
	gate.End()
	query := tr.Start("query")
	ref := query.Child("refine")
	ref.End()
	query.AddChild("shard.0", 2*time.Millisecond)
	query.AddChild("shard.1", 3*time.Millisecond)
	query.End()
	tr.Finish()

	ex := tr.Export()
	if ex.ID != tr.ID() || ex.Family != "DSTree" {
		t.Fatalf("export identity mismatch: %+v", ex)
	}
	if ex.TotalMS <= 0 {
		t.Fatalf("finished trace exported TotalMS %v", ex.TotalMS)
	}
	if ex.Attrs["mode"] != "exact" || ex.Attrs["cached"] != "false" {
		t.Fatalf("attrs not exported: %v", ex.Attrs)
	}
	if len(ex.Spans) != 2 || ex.Spans[0].Name != "gate.wait" || ex.Spans[1].Name != "query" {
		t.Fatalf("top-level spans wrong: %+v", ex.Spans)
	}
	kids := ex.Spans[1].Children
	if len(kids) != 3 || kids[0].Name != "refine" || kids[1].Name != "shard.0" || kids[2].Name != "shard.1" {
		t.Fatalf("query children wrong: %+v", kids)
	}
	if kids[1].DurationMS != 2 || kids[2].DurationMS != 3 {
		t.Fatalf("duration-attributed children wrong: %+v", kids)
	}
	if sum := ex.StageSumMS(); sum <= 0 || sum > ex.TotalMS {
		t.Fatalf("stage sum %v outside (0, total %v]", sum, ex.TotalMS)
	}
}

// TestContiguousStagesSumToTotal pins the decomposition property the serve
// path relies on: stages that tile the trace (each starting where the
// previous ended) sum to within 5% of the trace total.
func TestContiguousStagesSumToTotal(t *testing.T) {
	tr := New("f")
	for _, stage := range []string{"parse", "gate.wait", "gather", "cache.lookup", "query"} {
		sp := tr.Start(stage)
		time.Sleep(2 * time.Millisecond)
		sp.End()
	}
	tr.Finish()
	ex := tr.Export()
	sum := ex.StageSumMS()
	if diff := ex.TotalMS - sum; diff < 0 || diff > 0.05*ex.TotalMS {
		t.Fatalf("stage sum %.3fms vs total %.3fms: gap over 5%%", sum, ex.TotalMS)
	}
}

// TestFinishClosesOpenSpans checks an unclosed span is ended at Finish and
// that double End keeps the first duration.
func TestFinishClosesOpenSpans(t *testing.T) {
	tr := New("f")
	open := tr.Start("query")
	closed := tr.Start("gate.wait")
	closed.End()
	d := tr.Export().Spans[1].DurationMS
	time.Sleep(time.Millisecond)
	closed.End() // second End must not restate the duration
	tr.Finish()
	tr.Finish() // idempotent

	ex := tr.Export()
	if got := ex.Spans[1].DurationMS; got != d {
		t.Fatalf("double End changed duration: %v -> %v", d, got)
	}
	if ex.Spans[0].DurationMS <= 0 {
		t.Fatalf("open span not closed by Finish: %+v", ex.Spans[0])
	}
	_ = open
	if ex.TotalMS < ex.Spans[0].DurationMS {
		t.Fatalf("span outlived trace: span %v total %v", ex.Spans[0].DurationMS, ex.TotalMS)
	}
}
