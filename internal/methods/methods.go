// Package methods links every index package's MethodSpec registration into
// a binary. Importing it (blank) is the single switch that makes the full
// method roster available through the core registry; eval imports it, so
// every CLI and test built on eval sees all methods. A new index package
// self-registers in its own init() and is added to the import list here —
// nothing else in the harness changes.
package methods

import (
	_ "hydra/internal/dstree"
	_ "hydra/internal/flann"
	_ "hydra/internal/hdindex"
	_ "hydra/internal/hnsw"
	_ "hydra/internal/imi"
	_ "hydra/internal/isax"
	_ "hydra/internal/mtree"
	_ "hydra/internal/qalsh"
	_ "hydra/internal/scan"
	_ "hydra/internal/srs"
	_ "hydra/internal/vafile"
)
