package isax

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/storage"
)

// adsConfig builds with big leaves and refines to small ones at query time.
func adsConfig() Config {
	return Config{LeafCapacity: 256, Segments: 8, MaxBits: 8, AdaptiveLeafCapacity: 32}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 32, Seed: 1})
	store := storage.NewSeriesStore(data, 0)
	bad := []Config{
		{LeafCapacity: 64, Segments: 8, MaxBits: 8, AdaptiveLeafCapacity: -1},
		{LeafCapacity: 64, Segments: 8, MaxBits: 8, AdaptiveLeafCapacity: 64},
		{LeafCapacity: 64, Segments: 8, MaxBits: 8, AdaptiveLeafCapacity: 100},
	}
	for i, cfg := range bad {
		if _, err := Build(store, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestAdaptiveName(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 100, Length: 32, Seed: 1, ZNorm: true})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, adsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Name() != "ADS+" {
		t.Errorf("adaptive index name = %s", tree.Name())
	}
}

func TestAdaptiveBuildIsSmaller(t *testing.T) {
	// ADS+'s point: building with big leaves creates far fewer nodes than
	// eager building with small leaves.
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 3000, Length: 64, Seed: 3, ZNorm: true})
	eager, err := Build(storage.NewSeriesStore(data, 0), Config{LeafCapacity: 32, Segments: 8, MaxBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Build(storage.NewSeriesStore(data, 0), adsConfig())
	if err != nil {
		t.Fatal(err)
	}
	en, _ := eager.Stats()
	ln, _ := lazy.Stats()
	if ln >= en {
		t.Errorf("adaptive build has %d nodes, eager has %d — no build saving", ln, en)
	}
}

func TestAdaptiveQueriesRefineTree(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 3000, Length: 64, Seed: 5, ZNorm: true})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, adsConfig())
	if err != nil {
		t.Fatal(err)
	}
	before, _ := tree.Stats()
	queries := dataset.Queries(data, dataset.KindWalk, 5, 99)
	queries.ZNormalizeAll()
	for qi := 0; qi < queries.Size(); qi++ {
		if _, err := tree.Search(core.Query{Series: queries.At(qi), K: 5, Mode: core.ModeExact}); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := tree.Stats()
	if after <= before {
		t.Errorf("queries did not refine the tree: %d -> %d nodes", before, after)
	}
	// Re-running the same workload splits little or nothing further
	// (adaptation amortises).
	for qi := 0; qi < queries.Size(); qi++ {
		if _, err := tree.Search(core.Query{Series: queries.At(qi), K: 5, Mode: core.ModeExact}); err != nil {
			t.Fatal(err)
		}
	}
	again, _ := tree.Stats()
	if again-after > after-before {
		t.Errorf("second pass split more (%d) than first (%d)", again-after, after-before)
	}
}

func TestAdaptiveExactMatchesBruteForce(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 1500, Length: 64, Seed: 7, ZNorm: true})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, adsConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 5, 101)
	queries.ZNormalizeAll()
	gt := scan.GroundTruth(data, queries, 10)
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := tree.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		for i := range gt[qi] {
			if math.Abs(res.Neighbors[i].Dist-gt[qi][i].Dist) > 1e-6 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, res.Neighbors[i].Dist, gt[qi][i].Dist)
			}
		}
	}
}

func TestAdaptiveApproximateModes(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 1000, Length: 64, Seed: 9, ZNorm: true})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, adsConfig())
	if err != nil {
		t.Fatal(err)
	}
	tree.SetHistogram(core.BuildHistogram(data, 1000, 11))
	q := dataset.Queries(data, dataset.KindWalk, 1, 103)
	q.ZNormalizeAll()
	for _, query := range []core.Query{
		{Series: q.At(0), K: 5, Mode: core.ModeNG, NProbe: 2},
		{Series: q.At(0), K: 5, Mode: core.ModeEpsilon, Epsilon: 1},
		{Series: q.At(0), K: 5, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9},
	} {
		res, err := tree.Search(query)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Neighbors) != 5 {
			t.Errorf("mode %v: %d results", query.Mode, len(res.Neighbors))
		}
	}
}
