package isax

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func buildTestTree(t *testing.T, n, length int, cfg Config, seed int64) (*Tree, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: seed, ZNorm: true})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 5, seed+100)
	queries.ZNormalizeAll()
	return tree, data, queries
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 32, Seed: 1})
	store := storage.NewSeriesStore(data, 0)
	bad := []Config{
		{LeafCapacity: 1, Segments: 8, MaxBits: 8},
		{LeafCapacity: 16, Segments: 0, MaxBits: 8},
		{LeafCapacity: 16, Segments: 40, MaxBits: 8},
		{LeafCapacity: 16, Segments: 8, MaxBits: 0},
		{LeafCapacity: 16, Segments: 8, MaxBits: 99},
	}
	for i, cfg := range bad {
		if _, err := Build(store, cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestTreeGrows(t *testing.T) {
	tree, _, _ := buildTestTree(t, 2000, 64, Config{LeafCapacity: 32, Segments: 8, MaxBits: 8}, 1)
	nodes, leaves := tree.Stats()
	if tree.Size() != 2000 {
		t.Errorf("Size = %d", tree.Size())
	}
	if leaves < 2000/32 {
		t.Errorf("only %d leaves", leaves)
	}
	if nodes < leaves {
		t.Errorf("nodes %d < leaves %d", nodes, leaves)
	}
	if len(tree.roots) < 2 {
		t.Errorf("root fan-out %d — z-normalised walks should spread over many 1-bit words", len(tree.roots))
	}
	if tree.Footprint() <= 0 {
		t.Error("footprint should be positive")
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	tree, data, queries := buildTestTree(t, 800, 64, Config{LeafCapacity: 64, Segments: 8, MaxBits: 8}, 5)
	gt := scan.GroundTruth(data, queries, 10)
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := tree.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		for i := range gt[qi] {
			if math.Abs(res.Neighbors[i].Dist-gt[qi][i].Dist) > 1e-6 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, res.Neighbors[i].Dist, gt[qi][i].Dist)
			}
		}
	}
}

func TestExactSearchPrunes(t *testing.T) {
	tree, _, queries := buildTestTree(t, 4000, 64, Config{LeafCapacity: 64, Segments: 8, MaxBits: 8}, 7)
	res, err := tree.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO.BytesRead >= tree.store.TotalBytes() {
		t.Errorf("exact search read everything (%d bytes)", res.IO.BytesRead)
	}
}

func TestNGApproximate(t *testing.T) {
	tree, _, queries := buildTestTree(t, 2000, 64, Config{LeafCapacity: 32, Segments: 8, MaxBits: 8}, 9)
	res, err := tree.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeNG, NProbe: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesVisited > 2 {
		t.Errorf("visited %d leaves", res.LeavesVisited)
	}
	if len(res.Neighbors) != 5 {
		t.Errorf("%d results", len(res.Neighbors))
	}
}

func TestEpsilonGuaranteeHolds(t *testing.T) {
	tree, data, queries := buildTestTree(t, 1000, 64, Config{LeafCapacity: 64, Segments: 8, MaxBits: 8}, 11)
	k := 5
	gt := scan.GroundTruth(data, queries, k)
	eps := 1.0
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := tree.Search(core.Query{Series: queries.At(qi), K: k, Mode: core.ModeEpsilon, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		bound := (1 + eps) * gt[qi][k-1].Dist
		for _, nb := range res.Neighbors {
			if nb.Dist > bound+1e-6 {
				t.Fatalf("query %d: dist %v > bound %v", qi, nb.Dist, bound)
			}
		}
	}
}

func TestDeltaEpsilonModes(t *testing.T) {
	tree, data, queries := buildTestTree(t, 800, 64, Config{LeafCapacity: 64, Segments: 8, MaxBits: 8}, 13)
	tree.SetHistogram(core.BuildHistogram(data, 1000, 3))
	res, err := tree.Search(core.Query{Series: queries.At(1), K: 3, Mode: core.ModeDeltaEpsilon, Epsilon: 0.5, Delta: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 3 {
		t.Fatalf("%d results", len(res.Neighbors))
	}
	gt := scan.GroundTruth(data, queries, 3)
	rd, _ := tree.Search(core.Query{Series: queries.At(1), K: 3, Mode: core.ModeDeltaEpsilon, Epsilon: 0, Delta: 1})
	for i := range gt[1] {
		if math.Abs(rd.Neighbors[i].Dist-gt[1][i].Dist) > 1e-6 {
			t.Fatalf("exact-equivalent mode rank %d differs", i)
		}
	}
}

func TestMoreSegmentsTightenLeafCount(t *testing.T) {
	// More segments discriminate better, so the tree should need no more
	// leaves (typically fewer overflow cascades) and search should stay
	// exact.
	tree4, data, queries := buildTestTree(t, 1000, 64, Config{LeafCapacity: 32, Segments: 4, MaxBits: 8}, 15)
	tree16, _, _ := buildTestTree(t, 1000, 64, Config{LeafCapacity: 32, Segments: 16, MaxBits: 8}, 15)
	gt := scan.GroundTruth(data, queries, 1)
	for _, tree := range []*Tree{tree4, tree16} {
		res, err := tree.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Neighbors[0].Dist-gt[0][0].Dist) > 1e-6 {
			t.Fatalf("segments=%d: exact search wrong", tree.cfg.Segments)
		}
	}
}

func TestIdenticalSeriesDoNotLoop(t *testing.T) {
	data := series.NewDataset(16)
	one := make(series.Series, 16)
	for j := range one {
		one[j] = float32(math.Sin(float64(j)))
	}
	for i := 0; i < 50; i++ {
		data.Append(one)
	}
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, Config{LeafCapacity: 8, Segments: 4, MaxBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tree.Search(core.Query{Series: one, K: 3, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Neighbors[0].Dist != 0 {
		t.Error("identical data should have distance 0")
	}
}

func TestSearchValidation(t *testing.T) {
	tree, _, queries := buildTestTree(t, 100, 32, Config{LeafCapacity: 16, Segments: 4, MaxBits: 8}, 17)
	if _, err := tree.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeExact}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := tree.Search(core.Query{Series: make(series.Series, 5), K: 1, Mode: core.ModeExact}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestName(t *testing.T) {
	tree, _, _ := buildTestTree(t, 50, 16, Config{LeafCapacity: 16, Segments: 4, MaxBits: 8}, 19)
	if tree.Name() != "iSAX2+" {
		t.Error("name wrong")
	}
}
