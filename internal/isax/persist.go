package isax

import (
	"encoding/gob"
	"fmt"
	"io"

	"hydra/internal/storage"
	"hydra/internal/summaries/sax"
)

// Persistence mirrors dstree: the prefix tree (iSAX words, split segments,
// leaf id lists and member words) round-trips through encoding/gob; raw
// data stays in the series store.

type nodeSnap struct {
	Symbols      []uint16
	Bits         []uint8
	IDs          []int
	WordSymbols  [][]uint16 // member words, split into parallel slices
	WordBits     [][]uint8
	Unsplittable bool
	SplitSeg     int
	Left, Right  *nodeSnap
}

type treeSnap struct {
	Version int
	Cfg     Config
	Size    int
	Nodes   int
	Leaves  int
	Roots   map[uint64]*nodeSnap
}

const persistVersion = 1

func snapshotNode(n *node) *nodeSnap {
	s := &nodeSnap{
		Symbols:      n.word.Symbols,
		Bits:         n.word.Bits,
		IDs:          n.ids,
		Unsplittable: n.unsplittable,
		SplitSeg:     n.splitSeg,
	}
	for _, w := range n.words {
		s.WordSymbols = append(s.WordSymbols, w.Symbols)
		s.WordBits = append(s.WordBits, w.Bits)
	}
	if !n.isLeaf() {
		s.Left = snapshotNode(n.left)
		s.Right = snapshotNode(n.right)
	}
	return s
}

func restoreNode(s *nodeSnap) *node {
	n := newNode(sax.Word{Symbols: s.Symbols, Bits: s.Bits})
	n.ids = s.IDs
	n.unsplittable = s.Unsplittable
	n.splitSeg = s.SplitSeg
	for i := range s.WordSymbols {
		n.words = append(n.words, sax.Word{Symbols: s.WordSymbols[i], Bits: s.WordBits[i]})
	}
	if s.Left != nil {
		n.left = restoreNode(s.Left)
		n.right = restoreNode(s.Right)
	}
	return n
}

// Save serialises the index structure to w.
func (t *Tree) Save(w io.Writer) error {
	snap := treeSnap{
		Version: persistVersion,
		Cfg:     t.cfg,
		Size:    t.size,
		Nodes:   t.nodeCount,
		Leaves:  t.leafCount,
		Roots:   make(map[uint64]*nodeSnap, len(t.roots)),
	}
	for k, n := range t.roots {
		snap.Roots[k] = snapshotNode(n)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("isax: encoding: %w", err)
	}
	return nil
}

// Load reads an index saved with Save and attaches it to the store holding
// the same dataset the index was built over.
func Load(store *storage.SeriesStore, r io.Reader) (*Tree, error) {
	var snap treeSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("isax: decoding: %w", err)
	}
	if snap.Version != persistVersion {
		return nil, fmt.Errorf("isax: unsupported snapshot version %d", snap.Version)
	}
	if snap.Size != store.Size() {
		return nil, fmt.Errorf("isax: snapshot indexed %d series, store holds %d", snap.Size, store.Size())
	}
	t := &Tree{
		store:     store,
		cfg:       snap.Cfg,
		size:      snap.Size,
		nodeCount: snap.Nodes,
		leafCount: snap.Leaves,
		roots:     make(map[uint64]*node, len(snap.Roots)),
	}
	t.widths = sax.SegmentWidths(store.Length(), snap.Cfg.Segments)
	for k, n := range snap.Roots {
		t.roots[k] = restoreNode(n)
	}
	return t, nil
}
