package isax

import (
	"fmt"
	"io"

	"hydra/internal/core"
)

// saveTree / loadTree are the shared persistence hooks: iSAX2+ and ADS+
// differ only in configuration, which the snapshot carries.
func saveTree(m core.Method, w io.Writer) error {
	t, ok := m.(*Tree)
	if !ok {
		return fmt.Errorf("isax: cannot save %T", m)
	}
	return t.Save(w)
}

func loadTree(ctx *core.BuildContext, r io.Reader) (core.BuildResult, error) {
	st := ctx.NewStore()
	t, err := Load(st, r)
	if err != nil {
		return core.BuildResult{}, err
	}
	t.SetHistogram(ctx.Histogram())
	return core.BuildResult{Method: t, Store: st}, nil
}

// The package registers two specs: the plain iSAX2+ index and its ADS+
// adaptive variant (coarse leaves at build time, refined lazily by
// queries). Both round-trip through the snapshot format in persist.go; an
// ADS+ snapshot taken after queries captures the refinement done so far.
func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:          "iSAX2+",
		Rank:          20,
		Exact:         true,
		NG:            true,
		Epsilon:       true,
		DeltaEpsilon:  true,
		DiskResident:  true,
		FormatVersion: persistVersion,
		ConfigString:  fmt.Sprintf("%+v", DefaultConfig()),
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			cfg := DefaultConfig()
			cfg.LeafCapacity = ctx.LeafCapacity
			if cfg.Segments > ctx.Data.Length() {
				cfg.Segments = ctx.Data.Length()
			}
			t, err := Build(st, cfg)
			if err != nil {
				return core.BuildResult{}, err
			}
			t.SetHistogram(ctx.Histogram())
			return core.BuildResult{Method: t, Store: st}, nil
		},
		Save: saveTree,
		Load: loadTree,
	})
	core.RegisterMethod(core.MethodSpec{
		Name:          "ADS+",
		Rank:          30,
		Exact:         true,
		NG:            true,
		Epsilon:       true,
		DeltaEpsilon:  true,
		FormatVersion: persistVersion,
		// The adaptive 8x coarse-leaf multiplier is part of the build
		// recipe, so it joins the config string.
		ConfigString: fmt.Sprintf("adaptive8x;%+v", DefaultConfig()),
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			cfg := DefaultConfig()
			cfg.LeafCapacity = ctx.LeafCapacity * 8
			cfg.AdaptiveLeafCapacity = ctx.LeafCapacity
			if cfg.Segments > ctx.Data.Length() {
				cfg.Segments = ctx.Data.Length()
			}
			t, err := Build(st, cfg)
			if err != nil {
				return core.BuildResult{}, err
			}
			t.SetHistogram(ctx.Histogram())
			return core.BuildResult{Method: t, Store: st}, nil
		},
		Save: saveTree,
		Load: loadTree,
	})
}
