package isax

import (
	"bytes"
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tree, data, queries := buildTestTree(t, 800, 64, Config{LeafCapacity: 32, Segments: 8, MaxBits: 8}, 71)
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(storage.NewSeriesStore(data, 0), &buf)
	if err != nil {
		t.Fatal(err)
	}
	n1, l1 := tree.Stats()
	n2, l2 := loaded.Stats()
	if n1 != n2 || l1 != l2 {
		t.Fatalf("structure differs: (%d,%d) vs (%d,%d)", n1, l1, n2, l2)
	}
	if len(loaded.roots) != len(tree.roots) {
		t.Fatalf("root fan-out differs: %d vs %d", len(loaded.roots), len(tree.roots))
	}
	for qi := 0; qi < queries.Size(); qi++ {
		q := core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeExact}
		a, err := tree.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Neighbors {
			if math.Abs(a.Neighbors[i].Dist-b.Neighbors[i].Dist) > 1e-9 {
				t.Fatalf("query %d rank %d differs after reload", qi, i)
			}
		}
	}
}

func TestLoadRejectsWrongStore(t *testing.T) {
	tree, _, _ := buildTestTree(t, 100, 32, Config{LeafCapacity: 16, Segments: 4, MaxBits: 8}, 73)
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 55, Length: 32, Seed: 2})
	if _, err := Load(storage.NewSeriesStore(other, 0), &buf); err == nil {
		t.Error("mismatched store accepted")
	}
}
