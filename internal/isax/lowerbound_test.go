package isax

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/kernel"
	"hydra/internal/storage"
	"hydra/internal/summaries/paa"
	"hydra/internal/summaries/sax"
)

// collectNodes flattens the tree in DFS order.
func collectNodes(t *Tree) []*node {
	var out []*node
	var walk func(n *node)
	walk = func(n *node) {
		out = append(out, n)
		if !n.isLeaf() {
			walk(n.left)
			walk(n.right)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return out
}

// TestKernelMinDistMatchesMinDistPAA pins the cursor's precomputed-region
// kernel path against the reference sax.MinDistPAA, bit-for-bit, for every
// node under both kernels — including adversarial NaN/Inf/constant queries.
func TestKernelMinDistMatchesMinDistPAA(t *testing.T) {
	tree, _, queries := buildTestTree(t, 400, 64, DefaultConfig(), 51)
	nodes := collectNodes(tree)
	if len(nodes) < 3 {
		t.Fatalf("tree too small: %d nodes", len(nodes))
	}
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	adversarial := make([]float32, 64)
	adversarial[0] = nan
	adversarial[1] = inf
	adversarial[2] = -inf
	qs := [][]float32{queries.At(0), queries.At(1), queries.At(2), adversarial, make([]float32, 64)}

	defer kernel.Use(kernel.Default)
	for _, k := range kernel.Kernels() {
		kernel.Use(k)
		for qi, q := range qs {
			cur := tree.newCursor(q)
			for ni, n := range nodes {
				got := cur.MinDist(n)
				want := sax.MinDistPAA(cur.qp, n.word, len(q))
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("kernel %v query %d node %d: kernel MinDist %v, MinDistPAA %v", k, qi, ni, got, want)
				}
			}
			// Batched MinDists must agree with the per-node path.
			refs := make([]core.NodeRef, len(nodes))
			for i, n := range nodes {
				refs[i] = n
			}
			out := make([]float64, len(refs))
			cur.MinDists(refs, out)
			for i, n := range nodes {
				want := cur.MinDist(n)
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("kernel %v query %d node %d: batch %v, single %v", k, qi, i, out[i], want)
				}
			}
		}
	}
}

// TestMinDistNeverExceedsLeafMembers is the property test: a leaf's lower
// bound never exceeds the exact distance to any of its members.
func TestMinDistNeverExceedsLeafMembers(t *testing.T) {
	tree, data, queries := buildTestTree(t, 400, 64, DefaultConfig(), 53)
	defer kernel.Use(kernel.Default)
	for _, k := range kernel.Kernels() {
		kernel.Use(k)
		for qi := 0; qi < queries.Size(); qi++ {
			q := queries.At(qi)
			cur := tree.newCursor(q)
			for _, n := range collectNodes(tree) {
				if !n.isLeaf() {
					continue
				}
				lb := cur.MinDist(n)
				for _, id := range n.ids {
					exact := kernel.Dist(q, data.At(id))
					if lb > exact+1e-6 {
						t.Fatalf("kernel %v query %d: leaf bound %v > exact %v (id %d)", k, qi, lb, exact, id)
					}
				}
			}
		}
	}
}

func BenchmarkNodeBound(b *testing.B) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 2048, Length: 64, Seed: 55, ZNorm: true})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 1, 56)
	queries.ZNormalizeAll()
	nodes := collectNodes(tree)
	q := queries.At(0)
	qp := paa.Transform(q, tree.cfg.Segments)

	// Legacy shape: per-node MinDistPAA (breakpoint walks per query per node).
	b.Run("legacy-mindist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, n := range nodes {
				_ = sax.MinDistPAA(qp, n.word, len(q))
			}
		}
	})
	refs := make([]core.NodeRef, len(nodes))
	for i, n := range nodes {
		refs[i] = n
	}
	for _, k := range kernel.Kernels() {
		b.Run("region-kernel/"+k.String(), func(b *testing.B) {
			defer kernel.Use(kernel.Default)
			kernel.Use(k)
			cur := tree.newCursor(q)
			out := make([]float64, len(refs))
			for i := 0; i < b.N; i++ {
				cur.MinDists(refs, out)
			}
		})
	}
}
