// Package isax implements the iSAX2+ index (Camerra et al., "Beyond one
// billion time series"): a prefix tree over multi-cardinality iSAX words,
// extended with ng-, ε- and δ-ε-approximate k-NN search via the generic
// engine in internal/core.
//
// The root fans out into up to 2^l children, one per combination of 1-bit
// symbols (created on demand). An overflowing leaf splits by promoting one
// segment to the next cardinality, partitioning its members by the newly
// exposed bit. The split segment is chosen by the iSAX 2.0 policy: the
// segment whose promotion divides the members most evenly, which keeps the
// tree balanced and the leaves well filled. (iSAX2+'s further contribution
// is disk-efficient bulk loading; with the benchmark's paged-store
// substrate, building is already a single pass, so that machinery reduces
// to the split policy implemented here.)
package isax

import (
	"fmt"
	"math"
	"sync"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/series"
	"hydra/internal/storage"
	"hydra/internal/summaries/paa"
	"hydra/internal/summaries/sax"
)

// Config controls index shape.
type Config struct {
	// LeafCapacity is the max series per leaf before splitting.
	LeafCapacity int
	// Segments is the iSAX word length (paper setup: 16).
	Segments int
	// MaxBits caps per-segment cardinality at 2^MaxBits (paper: 8 -> 256).
	MaxBits int
	// AdaptiveLeafCapacity, when > 0, enables ADS+-style adaptive mode:
	// the index is built with LeafCapacity-sized leaves (set it large for
	// a fast build) and leaves are split down to AdaptiveLeafCapacity
	// lazily, the first time a query visits them.
	AdaptiveLeafCapacity int
}

// DefaultConfig returns laptop-scale defaults matching the paper's shape.
func DefaultConfig() Config {
	return Config{LeafCapacity: 128, Segments: 16, MaxBits: 8}
}

func (c Config) validate(length int) error {
	if c.LeafCapacity < 2 {
		return fmt.Errorf("isax: leaf capacity %d < 2", c.LeafCapacity)
	}
	if c.Segments < 1 || c.Segments > length {
		return fmt.Errorf("isax: segments %d out of [1,%d]", c.Segments, length)
	}
	if c.Segments > 64 {
		return fmt.Errorf("isax: segments %d > 64 (root key packing)", c.Segments)
	}
	if c.MaxBits < 1 || c.MaxBits > sax.MaxBits {
		return fmt.Errorf("isax: max bits %d out of [1,%d]", c.MaxBits, sax.MaxBits)
	}
	if c.AdaptiveLeafCapacity < 0 || (c.AdaptiveLeafCapacity > 0 && c.AdaptiveLeafCapacity >= c.LeafCapacity) {
		return fmt.Errorf("isax: adaptive leaf capacity %d must be in (0, LeafCapacity=%d)", c.AdaptiveLeafCapacity, c.LeafCapacity)
	}
	return nil
}

type node struct {
	word sax.Word
	// regions is word.Regions(): the packed [lo,hi] breakpoint regions the
	// MINDIST kernel consumes, precomputed once when the node is created
	// (build, split promotion, or snapshot restore) instead of per query
	// per node.
	regions []float64
	// Leaf state: ids plus each member's full-resolution word.
	ids          []int
	words        []sax.Word
	unsplittable bool
	// Internal state.
	splitSeg    int
	left, right *node // next bit of splitSeg: 0 -> left, 1 -> right
}

// newNode creates a node for word w with its kernel regions precomputed.
func newNode(w sax.Word) *node {
	return &node{word: w, regions: w.Regions()}
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is an iSAX2+ index over a series store.
type Tree struct {
	store *storage.SeriesStore
	cfg   Config
	roots map[uint64]*node
	size  int
	hist  *core.DistanceHistogram

	// widths is the PAA segment-width weight vector of the MINDIST kernel,
	// fixed by (series length, Segments) at build/load time.
	widths []float64

	nodeCount int
	leafCount int

	// adaptMu serialises query-time tree refinement in adaptive (ADS+)
	// mode: queries split the leaves they visit, so adaptive searches
	// cannot overlap. Non-adaptive searches never take it.
	adaptMu sync.Mutex
}

// Build constructs an iSAX2+ index over every series in the store.
func Build(store *storage.SeriesStore, cfg Config) (*Tree, error) {
	if err := cfg.validate(store.Length()); err != nil {
		return nil, err
	}
	t := &Tree{store: store, cfg: cfg, roots: make(map[uint64]*node)}
	t.widths = sax.SegmentWidths(store.Length(), cfg.Segments)
	for i := 0; i < store.Size(); i++ {
		t.insert(i)
	}
	return t, nil
}

// SetHistogram installs the histogram for δ-ε-approximate search.
func (t *Tree) SetHistogram(h *core.DistanceHistogram) { t.hist = h }

// Name implements core.Method.
func (t *Tree) Name() string {
	if t.cfg.AdaptiveLeafCapacity > 0 {
		return "ADS+"
	}
	return "iSAX2+"
}

// Size returns the number of indexed series.
func (t *Tree) Size() int { return t.size }

// Stats exposes structural counters.
func (t *Tree) Stats() (nodes, leaves int) { return t.nodeCount, t.leafCount }

// Footprint implements core.Method.
func (t *Tree) Footprint() int64 {
	var total int64
	var walk func(n *node)
	walk = func(n *node) {
		total += int64(len(n.word.Symbols))*3 + int64(len(n.regions))*8 + 48
		if n.isLeaf() {
			total += int64(len(n.ids)) * 8
			total += int64(len(n.words)) * int64(t.cfg.Segments) * 3
			return
		}
		walk(n.left)
		walk(n.right)
	}
	for _, r := range t.roots {
		walk(r)
	}
	return total
}

// rootKey packs the 1-bit-per-segment prefix of a full-resolution word.
func (t *Tree) rootKey(w sax.Word) uint64 {
	var key uint64
	for i := range w.Symbols {
		key = key<<1 | uint64(w.Promote(i, 1))
	}
	return key
}

// rootWord builds the 1-bit word of a root child from its key.
func (t *Tree) rootWord(key uint64) sax.Word {
	l := t.cfg.Segments
	w := sax.Word{Symbols: make([]uint16, l), Bits: make([]uint8, l)}
	for i := l - 1; i >= 0; i-- {
		w.Symbols[i] = uint16(key & 1)
		w.Bits[i] = 1
		key >>= 1
	}
	return w
}

func (t *Tree) insert(id int) {
	s := t.store.Peek(id)
	w := sax.FromSeries(s, t.cfg.Segments, t.cfg.MaxBits)
	key := t.rootKey(w)
	n, ok := t.roots[key]
	if !ok {
		n = newNode(t.rootWord(key))
		t.roots[key] = n
		t.nodeCount++
		t.leafCount++
	}
	for !n.isLeaf() {
		if bitOf(w, n.splitSeg, n.left.word.Bits[n.splitSeg]) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	n.ids = append(n.ids, id)
	n.words = append(n.words, w)
	if len(n.ids) > t.cfg.LeafCapacity && !n.unsplittable {
		t.split(n)
	}
	t.size++
}

// bitOf returns the bit a full-resolution word contributes at the child
// cardinality childBits of segment seg (the lowest bit of the promoted
// symbol).
func bitOf(w sax.Word, seg int, childBits uint8) uint16 {
	return w.Promote(seg, childBits) & 1
}

// split promotes one segment of the leaf to the next cardinality. The
// segment is chosen to divide members most evenly; leaves whose members
// cannot be separated at any cardinality are marked unsplittable.
func (t *Tree) split(n *node) {
	bestSeg, bestBalance := -1, math.Inf(1)
	for seg := 0; seg < t.cfg.Segments; seg++ {
		cur := n.word.Bits[seg]
		if int(cur) >= t.cfg.MaxBits {
			continue
		}
		childBits := cur + 1
		var zeros int
		for _, w := range n.words {
			if bitOf(w, seg, childBits) == 0 {
				zeros++
			}
		}
		ones := len(n.words) - zeros
		if zeros == 0 || ones == 0 {
			continue
		}
		balance := math.Abs(float64(zeros) - float64(ones))
		if balance < bestBalance {
			bestSeg, bestBalance = seg, balance
		}
	}
	if bestSeg < 0 {
		n.unsplittable = true
		return
	}
	childBits := n.word.Bits[bestSeg] + 1
	mkChild := func(bit uint16) *node {
		w := n.word.Clone()
		w.Bits[bestSeg] = childBits
		w.Symbols[bestSeg] = n.word.Symbols[bestSeg]<<1 | bit
		return newNode(w)
	}
	left, right := mkChild(0), mkChild(1)
	for i, w := range n.words {
		if bitOf(w, bestSeg, childBits) == 0 {
			left.ids = append(left.ids, n.ids[i])
			left.words = append(left.words, w)
		} else {
			right.ids = append(right.ids, n.ids[i])
			right.words = append(right.words, w)
		}
	}
	n.splitSeg = bestSeg
	n.left, n.right = left, right
	n.ids, n.words = nil, nil
	t.nodeCount += 2
	t.leafCount++
}

// cursor adapts a query to the generic engine. Per-query state (the query
// PAA and the I/O-accounting store view) lives here, making Tree.Search
// safe for concurrent use; in adaptive (ADS+) mode Search additionally
// serialises on Tree.adaptMu because queries refine the shared tree.
type cursor struct {
	t       *Tree
	store   *storage.SeriesStore // per-query accounting view
	q       series.Series
	qp      []float64 // query PAA
	scratch core.LeafScratch
	regs    [][]float64 // reused region-row gather buffer for MinDists
}

// newCursor opens a per-query cursor over a private store view.
func (t *Tree) newCursor(q series.Series) *cursor {
	return &cursor{t: t, store: t.store.View(), q: q, qp: paa.Transform(q, t.cfg.Segments)}
}

// lockAdaptive takes the refinement mutex in adaptive mode; the returned
// function releases it (a no-op otherwise).
func (t *Tree) lockAdaptive() func() {
	if t.cfg.AdaptiveLeafCapacity > 0 {
		t.adaptMu.Lock()
		return t.adaptMu.Unlock
	}
	return func() {}
}

// Roots implements core.TreeCursor.
func (c *cursor) Roots() []core.NodeRef {
	out := make([]core.NodeRef, 0, len(c.t.roots))
	for _, r := range c.t.roots {
		out = append(out, r)
	}
	return out
}

// MinDist implements core.TreeCursor: the clamp-accumulate MINDIST kernel
// over the node's precomputed regions — bit-identical to
// sax.MinDistPAA(c.qp, n.word, len(c.q)), which tests pin.
func (c *cursor) MinDist(ref core.NodeRef) float64 {
	n := ref.(*node)
	return math.Sqrt(kernel.RegionLowerBound2(c.qp, c.t.widths, n.regions))
}

// MinDists implements core.BatchTreeCursor: all nodes of one expansion are
// bounded in a single kernel call over their precomputed region rows.
func (c *cursor) MinDists(refs []core.NodeRef, out []float64) {
	if cap(c.regs) < len(refs) {
		c.regs = make([][]float64, len(refs))
	}
	regs := c.regs[:len(refs)]
	for i, ref := range refs {
		regs[i] = ref.(*node).regions
	}
	kernel.RegionLowerBounds2(c.qp, c.t.widths, regs, out)
	for i := range regs {
		out[i] = math.Sqrt(out[i])
		regs[i] = nil
	}
}

// IsLeaf implements core.TreeCursor.
// In adaptive (ADS+) mode, an oversized leaf is split the moment a query
// visits it, so the engine sees it as an internal node and pushes the two
// (tighter-bounded) children instead — correctness is unaffected because
// bounds only tighten when a node splits.
func (c *cursor) IsLeaf(ref core.NodeRef) bool {
	n := ref.(*node)
	if cap := c.t.cfg.AdaptiveLeafCapacity; cap > 0 {
		c.t.splitTo(n, cap)
	}
	return n.isLeaf()
}

// Children implements core.TreeCursor.
func (c *cursor) Children(ref core.NodeRef) []core.NodeRef {
	n := ref.(*node)
	return []core.NodeRef{n.left, n.right}
}

// ScanLeaf implements core.TreeCursor: the gathered leaf cluster is
// refined in one batched kernel call (see core.LeafScratch.Refine).
func (c *cursor) ScanLeaf(ref core.NodeRef, limit func() float64, visit func(id int, dist float64)) {
	n := ref.(*node)
	raw := c.store.ReadLeafCluster(n.ids)
	c.scratch.Refine(c.q, n.ids, raw, limit, visit)
}

// Search implements core.Method.
func (t *Tree) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("isax: %w", err)
	}
	if len(q.Series) != t.store.Length() {
		return core.Result{}, fmt.Errorf("isax: query length %d != dataset length %d", len(q.Series), t.store.Length())
	}
	defer t.lockAdaptive()()
	cur := t.newCursor(q.Series)
	res := core.SearchTree(cur, q, t.hist, t.size)
	res.IO = cur.store.Accountant().Snapshot()
	return res, nil
}

// SearchRange answers an r-range query (paper Definition 2), exactly when
// q.Epsilon is 0.
func (t *Tree) SearchRange(q core.RangeQuery) (core.RangeResult, error) {
	if err := q.Validate(); err != nil {
		return core.RangeResult{}, fmt.Errorf("isax: %w", err)
	}
	if len(q.Series) != t.store.Length() {
		return core.RangeResult{}, fmt.Errorf("isax: query length %d != dataset length %d", len(q.Series), t.store.Length())
	}
	defer t.lockAdaptive()()
	cur := t.newCursor(series.Series(q.Series))
	res := core.SearchTreeRange(cur, q)
	res.IO = cur.store.Accountant().Snapshot()
	return res, nil
}

// Incremental starts an incremental neighbour iteration (exact order when
// eps is 0); see core.Incremental. Unlike Search, the returned iterator is
// not covered by the concurrency contract in adaptive (ADS+) mode: it pulls
// from the tree lazily and must not overlap with other queries there.
func (t *Tree) Incremental(q series.Series, eps float64) (*core.Incremental, error) {
	if len(q) != t.store.Length() {
		return nil, fmt.Errorf("isax: query length %d != dataset length %d", len(q), t.store.Length())
	}
	return core.NewIncremental(t.newCursor(q), eps), nil
}

// SearchProgressive runs an exact search that streams improving answers
// through onUpdate; see core.SearchTreeProgressive.
func (t *Tree) SearchProgressive(q core.Query, onUpdate func(core.ProgressiveUpdate) bool) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("isax: %w", err)
	}
	if len(q.Series) != t.store.Length() {
		return core.Result{}, fmt.Errorf("isax: query length %d != dataset length %d", len(q.Series), t.store.Length())
	}
	defer t.lockAdaptive()()
	cur := t.newCursor(q.Series)
	res := core.SearchTreeProgressive(cur, q, onUpdate)
	res.IO = cur.store.Accountant().Snapshot()
	return res, nil
}

// Adaptive mode (ADS+-style). The ADS+ index [Zoumpatianos, Idreos,
// Palpanas, VLDBJ 2016] builds on iSAX2+ but shifts work from indexing to
// querying: the tree is built quickly with large leaves, and a leaf is
// split down to the target size only when a query actually visits it. The
// paper excludes ADS+ from its benchmark because its SIMS scan strategy
// is "not immediately amenable to approximate search with guarantees" and
// flags extending it as future work; this implementation realises that
// extension for the tree-descent (non-SIMS) strategy: adaptive splitting
// composes with the generic engine, so ng, ε and δ-ε queries work
// unchanged and the exactness proofs carry over (bounds only tighten when
// a node splits).
//
// Enable by setting Config.AdaptiveLeafCapacity > 0 and a large
// Config.LeafCapacity; the index then reports itself as "ADS+".

// splitTo recursively splits leaf n until it holds at most cap members or
// becomes unsplittable. Called lazily from query paths.
func (t *Tree) splitTo(n *node, cap int) {
	if n.isLeaf() && len(n.ids) > cap && !n.unsplittable {
		t.split(n)
	}
}
