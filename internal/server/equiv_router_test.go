package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hydra/internal/kernel"
)

// equivResponse is the slice of queryResponse the equivalence test compares:
// the answers themselves plus the modelled work counters. A cache hit or an
// "auto"-routed call must match a direct uncached fixed-method call on every
// one of these fields.
type equivResponse struct {
	Method  string `json:"method"`
	Cached  bool   `json:"cached"`
	Answers []struct {
		Query     int `json:"query"`
		Neighbors []struct {
			ID   int     `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	} `json:"answers"`
	IO struct {
		RandomSeeks     int64 `json:"random_seeks"`
		SequentialPages int64 `json:"sequential_pages"`
		BytesRead       int64 `json:"bytes_read"`
	} `json:"io"`
	DistCalcs int64 `json:"dist_calcs"`
}

func decodeEquiv(t *testing.T, rec *httptest.ResponseRecorder) equivResponse {
	t.Helper()
	var resp equivResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v\n%s", err, rec.Body.String())
	}
	return resp
}

func sameAnswers(a, b equivResponse) bool {
	if len(a.Answers) != len(b.Answers) {
		return false
	}
	for i := range a.Answers {
		if a.Answers[i].Query != b.Answers[i].Query ||
			len(a.Answers[i].Neighbors) != len(b.Answers[i].Neighbors) {
			return false
		}
		for j := range a.Answers[i].Neighbors {
			if a.Answers[i].Neighbors[j] != b.Answers[i].Neighbors[j] {
				return false
			}
		}
	}
	return true
}

// TestCacheAndAutoEquivalentToDirectCalls is the acceptance gate for the
// serve-path cache and router: for a mixed workload, under both distance
// kernels and both shard layouts, the cache-hit replay and the
// "method":"auto" answer are identical — answers, modelled IO, DistCalcs —
// to a direct uncached fixed-method call against a separate server.
// ADS+ is deliberately absent: its query-time index refinement makes its
// counters depend on query order, so it has no stable fixed-method baseline.
func TestCacheAndAutoEquivalentToDirectCalls(t *testing.T) {
	defer kernel.Use(kernel.Default)
	data, qs := testWorkload(t, 300, 32, 3)
	vecs := [][]float32{queryVec(qs, 0), queryVec(qs, 1), queryVec(qs, 2)}

	requests := []map[string]any{
		{"method": "DSTree", "mode": "exact", "k": 5, "queries": vecs},
		{"method": "iSAX2+", "mode": "ng", "nprobe": 4, "k": 3, "queries": vecs},
		{"method": "VA+file", "mode": "exact", "k": 3, "query": vecs[0]},
		{"method": "DSTree", "mode": "delta-epsilon", "epsilon": 1.0, "delta": 0.99, "k": 5, "query": vecs[1]},
		{"method": "auto", "mode": "exact", "k": 5, "queries": vecs},
		{"method": "auto", "mode": "ng", "nprobe": 4, "k": 3, "query": vecs[2]},
	}

	for _, kern := range kernel.Kernels() {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", kern, shards), func(t *testing.T) {
				kernel.Use(kern)
				direct := newTestServer(t, Config{Data: data, Shards: shards}) // no cache
				routed := newTestServer(t, Config{Data: data, Shards: shards, CacheMaxBytes: 1 << 20})
				dh, rh := direct.Handler(), routed.Handler()

				for i, req := range requests {
					missRec := postQuery(t, rh, req)
					if missRec.Code != http.StatusOK {
						t.Fatalf("req %d miss: %d %s", i, missRec.Code, missRec.Body.String())
					}
					miss := decodeEquiv(t, missRec)
					if miss.Cached {
						t.Fatalf("req %d: first call reported cached", i)
					}

					hitRec := postQuery(t, rh, req)
					if hitRec.Code != http.StatusOK {
						t.Fatalf("req %d hit: %d %s", i, hitRec.Code, hitRec.Body.String())
					}
					hit := decodeEquiv(t, hitRec)
					if !hit.Cached {
						t.Fatalf("req %d: second call not served from cache", i)
					}
					wantHit := strings.Replace(missRec.Body.String(), `"cached": false`, `"cached": true`, 1)
					if hitRec.Body.String() != wantHit {
						t.Fatalf("req %d: hit not a byte replay of miss\nmiss:\n%s\nhit:\n%s",
							i, missRec.Body.String(), hitRec.Body.String())
					}

					// The direct baseline names the resolved method, so for
					// "auto" it re-asks the same question as a fixed call.
					base := make(map[string]any, len(req))
					for k, v := range req {
						base[k] = v
					}
					base["method"] = miss.Method
					baseRec := postQuery(t, dh, base)
					if baseRec.Code != http.StatusOK {
						t.Fatalf("req %d baseline: %d %s", i, baseRec.Code, baseRec.Body.String())
					}
					want := decodeEquiv(t, baseRec)
					for name, got := range map[string]equivResponse{"miss": miss, "hit": hit} {
						if !sameAnswers(got, want) {
							t.Fatalf("req %d (%s, %s): answers diverge from direct %s call\nwant: %s\ngot:  %s",
								i, req["method"], name, miss.Method, baseRec.Body.String(),
								map[string]string{"miss": missRec.Body.String(), "hit": hitRec.Body.String()}[name])
						}
						if got.IO != want.IO || got.DistCalcs != want.DistCalcs {
							t.Fatalf("req %d (%s, %s): counters diverge: io %+v vs %+v, dist %d vs %d",
								i, req["method"], name, got.IO, want.IO, got.DistCalcs, want.DistCalcs)
						}
					}
				}
			})
		}
	}
}
