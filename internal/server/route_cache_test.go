package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCacheHitIsByteIdenticalAndFlagged(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 2)
	s := newTestServer(t, Config{Data: data, CacheMaxBytes: 1 << 20})
	h := s.Handler()
	body := map[string]any{"method": "DSTree", "k": 5, "queries": [][]float32{queryVec(qs, 0), queryVec(qs, 1)}}

	miss := postQuery(t, h, body)
	if miss.Code != http.StatusOK {
		t.Fatalf("miss: %d %s", miss.Code, miss.Body.String())
	}
	if !strings.Contains(miss.Body.String(), `"cached": false`) {
		t.Fatalf("first response should carry \"cached\": false:\n%s", miss.Body.String())
	}
	if miss.Header().Get("X-Hydra-Cached") != "" {
		t.Fatal("miss must not set the X-Hydra-Cached header")
	}

	hit := postQuery(t, h, body)
	if hit.Code != http.StatusOK {
		t.Fatalf("hit: %d %s", hit.Code, hit.Body.String())
	}
	if hit.Header().Get("X-Hydra-Cached") != "true" {
		t.Fatal("hit should set X-Hydra-Cached: true")
	}
	// The replay is byte-identical to the response that populated it —
	// answers, counters, even wall_seconds — except the cached flag.
	want := strings.Replace(miss.Body.String(), `"cached": false`, `"cached": true`, 1)
	if hit.Body.String() != want {
		t.Fatalf("cache hit is not a byte-identical replay:\nmiss:\n%s\nhit:\n%s", miss.Body.String(), hit.Body.String())
	}

	// Text renderings of miss and hit agree byte for byte too.
	textBody := map[string]any{"method": "DSTree", "k": 5, "query": queryVec(qs, 0), "format": "text"}
	textMiss := postQuery(t, h, textBody)
	textHit := postQuery(t, h, textBody)
	if textHit.Header().Get("X-Hydra-Cached") != "true" {
		t.Fatal("text hit should set X-Hydra-Cached: true")
	}
	if textMiss.Body.String() != textHit.Body.String() {
		t.Fatalf("text replay differs:\n%s\nvs\n%s", textMiss.Body.String(), textHit.Body.String())
	}
	if !strings.HasPrefix(textMiss.Body.String(), "query   0:") {
		t.Fatalf("text body lost the CLI answer-line format: %q", textMiss.Body.String())
	}

	st := s.cache.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
}

func TestCacheKeySeparatesRequestShapes(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 2)
	s := newTestServer(t, Config{Data: data, CacheMaxBytes: 1 << 20})
	h := s.Handler()
	vec := queryVec(qs, 0)

	// Same vector, different method / mode / k / query: all misses.
	bodies := []map[string]any{
		{"method": "SerialScan", "k": 5, "query": vec},
		{"method": "DSTree", "k": 5, "query": vec},
		{"method": "DSTree", "k": 3, "query": vec},
		{"method": "DSTree", "mode": "ng", "nprobe": 4, "k": 5, "query": vec},
		{"method": "DSTree", "mode": "ng", "nprobe": 8, "k": 5, "query": vec},
		{"method": "DSTree", "k": 5, "query": queryVec(qs, 1)},
	}
	for i, b := range bodies {
		if rec := postQuery(t, h, b); rec.Code != http.StatusOK {
			t.Fatalf("body %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	st := s.cache.Stats()
	if st.Hits != 0 || st.Misses != int64(len(bodies)) {
		t.Fatalf("distinct request shapes collided: hits=%d misses=%d, want 0/%d", st.Hits, st.Misses, len(bodies))
	}
	// Workers are excluded from the key: a different fan-out replays the
	// same answer.
	rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 5, "query": vec, "workers": 4})
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"cached": true`) {
		t.Fatalf("workers should not fragment the cache: %d %s", rec.Code, rec.Body.String())
	}
}

func TestAutoRoutesSeedThenObserved(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()
	vec := queryVec(qs, 0)

	// Cold router: the Fig. 9 matrix seeds exact traffic onto DSTree.
	rec := postQuery(t, h, map[string]any{"method": "auto", "k": 5, "query": vec})
	if rec.Code != http.StatusOK {
		t.Fatalf("auto exact: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Hydra-Routed-Method"); got != "DSTree" {
		t.Fatalf("routed method = %q, want DSTree", got)
	}
	if got := rec.Header().Get("X-Hydra-Routed-Source"); got != "seed" {
		t.Fatalf("routed source = %q, want seed", got)
	}
	if !strings.Contains(rec.Body.String(), `"method": "DSTree"`) {
		t.Fatalf("response should name the resolved method:\n%s", rec.Body.String())
	}

	// ng traffic seeds onto HNSW (in-memory, query-only, no MAP-1 need).
	rec = postQuery(t, h, map[string]any{"method": "auto", "mode": "ng", "nprobe": 4, "k": 5, "query": vec})
	if rec.Code != http.StatusOK {
		t.Fatalf("auto ng: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Hydra-Routed-Method"); got != "HNSW" {
		t.Fatalf("ng routed method = %q, want HNSW", got)
	}

	// Once live samples say SerialScan answers exact queries faster than
	// the (sampled) seed, the router must follow the data.
	for i := 0; i < 3; i++ {
		s.route.Observe("SerialScan", 0.0001)
		s.route.Observe("DSTree", 0.1)
	}
	rec = postQuery(t, h, map[string]any{"method": "auto", "k": 3, "query": vec})
	if rec.Code != http.StatusOK {
		t.Fatalf("auto observed: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Hydra-Routed-Method"); got != "SerialScan" {
		t.Fatalf("observed routed method = %q, want SerialScan", got)
	}
	if got := rec.Header().Get("X-Hydra-Routed-Source"); got != "observed" {
		t.Fatalf("observed routed source = %q", got)
	}
}

func TestAutoDisabledIsRefused(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data, DisableAuto: true})
	rec := postQuery(t, s.Handler(), map[string]any{"method": "auto", "k": 3, "query": queryVec(qs, 0)})
	if code := decodeError(t, rec, http.StatusBadRequest); code != "auto_disabled" {
		t.Fatalf("code = %q", code)
	}
}

func TestAdmissionGateShedsWith429(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data, MaxInflight: 1})
	h := s.Handler()
	body := map[string]any{"method": "SerialScan", "k": 3, "query": queryVec(qs, 0)}

	// Occupy the single execution slot, then fill the queue (2*inflight)
	// with two parked requests.
	if !s.gate.Acquire() {
		t.Fatal("slot acquire failed on an idle gate")
	}
	results := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() { results <- postQuery(t, h, body) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.Stats().Queued != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", s.gate.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Slot busy, queue full: the next request is shed immediately.
	rec := postQuery(t, h, body)
	if code := decodeError(t, rec, http.StatusTooManyRequests); code != "overloaded" {
		t.Fatalf("code = %q", code)
	}

	// Releasing the slot drains the queue; both parked requests answer.
	s.gate.Release()
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.Code != http.StatusOK {
				t.Fatalf("queued request %d: %d %s", i, r.Code, r.Body.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("queued request never completed")
		}
	}

	// The shed shows up on /metrics.
	req := httptest.NewRequest("GET", "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	if !strings.Contains(mrec.Body.String(), "hydra_requests_shed_total 1") {
		t.Fatalf("metrics missing the shed:\n%s", mrec.Body.String())
	}
}
