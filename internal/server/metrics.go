package server

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hydra/internal/router"
	"hydra/internal/storage"
)

// latencyBounds are the upper bounds (seconds) of the request-latency
// histogram buckets; a final +Inf bucket is implicit. The sub-millisecond
// bounds exist so a server-side p99 is resolvable at the tails the loadgen
// harness observes: cache hits and small approximate queries complete in
// well under 1ms, and with a 1ms first bucket every such request would
// land in one bin, making any quantile below it pure guesswork.
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// methodMetrics accumulates one method's serving counters.
type methodMetrics struct {
	requests  int64 // /v1/query requests answered
	queries   int64 // individual queries inside those requests
	errors    int64 // requests that failed after method resolution
	latCounts []int64
	latSum    float64
	io        storage.Stats
	distCalcs int64
}

// stageMetrics is one request stage's latency histogram (same bounds as the
// per-method request histogram, so stage and total quantiles line up).
type stageMetrics struct {
	counts []int64
	sum    float64
	n      int64
}

// shardHydration counts per-(method, shard) catalog outcomes.
type shardHydration struct {
	hits, misses int64
}

// ShardUsage is one (method, shard) row of cumulative query-time usage,
// gathered from the hydrated scatter-gather methods at render time.
type ShardUsage struct {
	Method    string
	Shard     int
	Queries   int64
	DistCalcs int64
	IO        storage.Stats
	// Seconds is cumulative wall-clock time inside the shard's searches.
	Seconds float64
}

// buildInfo carries the static identity labels of hydra_build_info.
type buildInfo struct {
	GoVersion   string
	Kernel      string
	Shards      int
	Dataset     string
	Fingerprint string
}

// metrics is the server-wide counter registry behind GET /metrics. All
// access goes through the mutex; render holds it only long enough to copy.
type metrics struct {
	mu            sync.Mutex
	perMethod     map[string]*methodMetrics
	perShard      map[string]map[int]*shardHydration
	perStage      map[string]*stageMetrics
	routed        map[string]int64 // "method":"auto" decisions per resolved method
	catalogHits   int64
	catalogMisses int64
}

func newMetrics() *metrics {
	return &metrics{
		perMethod: map[string]*methodMetrics{},
		perShard:  map[string]map[int]*shardHydration{},
		perStage:  map[string]*stageMetrics{},
		routed:    map[string]int64{},
	}
}

func (m *metrics) forMethod(name string) *methodMetrics {
	mm := m.perMethod[name]
	if mm == nil {
		mm = &methodMetrics{latCounts: make([]int64, len(latencyBounds)+1)}
		m.perMethod[name] = mm
	}
	return mm
}

// recordRequest accumulates one answered /v1/query request.
func (m *metrics) recordRequest(method string, queries int, seconds float64, io storage.Stats, distCalcs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mm := m.forMethod(method)
	mm.requests++
	mm.queries += int64(queries)
	mm.latSum += seconds
	b := len(latencyBounds)
	for i, ub := range latencyBounds {
		if seconds <= ub {
			b = i
			break
		}
	}
	mm.latCounts[b]++
	mm.io = mm.io.Add(io)
	mm.distCalcs += distCalcs
}

// recordStage accumulates one request stage observation into the
// hydra_stage_seconds histogram family.
func (m *metrics) recordStage(stage string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sm := m.perStage[stage]
	if sm == nil {
		sm = &stageMetrics{counts: make([]int64, len(latencyBounds)+1)}
		m.perStage[stage] = sm
	}
	sm.n++
	sm.sum += seconds
	b := len(latencyBounds)
	for i, ub := range latencyBounds {
		if seconds <= ub {
			b = i
			break
		}
	}
	sm.counts[b]++
}

// recordError counts one failed request attributed to a method.
func (m *metrics) recordError(method string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.forMethod(method).errors++
}

// recordRouted counts one "method":"auto" decision resolved to a method.
func (m *metrics) recordRouted(method string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routed[method]++
}

// recordCatalog counts one catalog-routed hydration outcome.
func (m *metrics) recordCatalog(hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.catalogHits++
	} else {
		m.catalogMisses++
	}
}

// recordShardCatalog counts one per-shard catalog hydration outcome.
func (m *metrics) recordShardCatalog(method string, shard int, hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byShard := m.perShard[method]
	if byShard == nil {
		byShard = map[int]*shardHydration{}
		m.perShard[method] = byShard
	}
	sh := byShard[shard]
	if sh == nil {
		sh = &shardHydration{}
		byShard[shard] = sh
	}
	if hit {
		sh.hits++
	} else {
		sh.misses++
	}
}

// render writes the Prometheus text exposition of every counter.
// shardUsage carries the per-shard query counters gathered from the
// hydrated scatter-gather methods (nil/empty when serving unsharded, in
// which case no per-shard family is emitted); cache and gate carry the
// serve-path layer's counters, snapshotted by the handler at scrape time
// (zero-valued when the feature is disabled, so the families stay stable
// for scrapers either way).
func (m *metrics) render(w io.Writer, uptimeSeconds float64, shardUsage []ShardUsage, cache router.CacheStats, gate router.GateStats, info buildInfo, goroutines int) {
	m.mu.Lock()
	names := make([]string, 0, len(m.perMethod))
	for name := range m.perMethod {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct {
		name string
		mm   methodMetrics
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		src := m.perMethod[name]
		cp := *src
		cp.latCounts = append([]int64(nil), src.latCounts...)
		rows = append(rows, row{name, cp})
	}
	type shardHydRow struct {
		method       string
		shard        int
		hits, misses int64
	}
	var hydRows []shardHydRow
	for method, byShard := range m.perShard {
		for shard, sh := range byShard {
			hydRows = append(hydRows, shardHydRow{method, shard, sh.hits, sh.misses})
		}
	}
	sort.Slice(hydRows, func(i, j int) bool {
		if hydRows[i].method != hydRows[j].method {
			return hydRows[i].method < hydRows[j].method
		}
		return hydRows[i].shard < hydRows[j].shard
	})
	type routedRow struct {
		method string
		n      int64
	}
	routedRows := make([]routedRow, 0, len(m.routed))
	for method, n := range m.routed {
		routedRows = append(routedRows, routedRow{method, n})
	}
	sort.Slice(routedRows, func(i, j int) bool { return routedRows[i].method < routedRows[j].method })
	hits, misses := m.catalogHits, m.catalogMisses
	stageNames := make([]string, 0, len(m.perStage))
	for stage := range m.perStage {
		stageNames = append(stageNames, stage)
	}
	sort.Strings(stageNames)
	type stageRow struct {
		stage string
		sm    stageMetrics
	}
	stageRows := make([]stageRow, 0, len(stageNames))
	for _, stage := range stageNames {
		src := m.perStage[stage]
		cp := *src
		cp.counts = append([]int64(nil), src.counts...)
		stageRows = append(stageRows, stageRow{stage, cp})
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP hydra_build_info Build and serving identity; value is always 1.\n")
	fmt.Fprintf(w, "# TYPE hydra_build_info gauge\n")
	fmt.Fprintf(w, "hydra_build_info{go_version=%q,kernel=%q,shards=\"%d\",dataset=%q,fingerprint=%q} 1\n",
		info.GoVersion, info.Kernel, info.Shards, info.Dataset, info.Fingerprint)
	fmt.Fprintf(w, "# HELP hydra_uptime_seconds Seconds since the server booted.\n")
	fmt.Fprintf(w, "# TYPE hydra_uptime_seconds gauge\n")
	fmt.Fprintf(w, "hydra_uptime_seconds %g\n", uptimeSeconds)
	fmt.Fprintf(w, "# HELP hydra_process_uptime_seconds Seconds since the server booted (alias of hydra_uptime_seconds under the conventional name).\n")
	fmt.Fprintf(w, "# TYPE hydra_process_uptime_seconds gauge\n")
	fmt.Fprintf(w, "hydra_process_uptime_seconds %g\n", uptimeSeconds)
	fmt.Fprintf(w, "# HELP hydra_goroutines Goroutines currently live in the serving process.\n")
	fmt.Fprintf(w, "# TYPE hydra_goroutines gauge\n")
	fmt.Fprintf(w, "hydra_goroutines %d\n", goroutines)
	fmt.Fprintf(w, "# HELP hydra_catalog_hits_total Index hydrations served warm from the catalog.\n")
	fmt.Fprintf(w, "# TYPE hydra_catalog_hits_total counter\n")
	fmt.Fprintf(w, "hydra_catalog_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP hydra_catalog_misses_total Index hydrations that had to build (and save).\n")
	fmt.Fprintf(w, "# TYPE hydra_catalog_misses_total counter\n")
	fmt.Fprintf(w, "hydra_catalog_misses_total %d\n", misses)

	fmt.Fprintf(w, "# HELP hydra_cache_hits_total Query requests answered by replaying the result cache.\n")
	fmt.Fprintf(w, "# TYPE hydra_cache_hits_total counter\n")
	fmt.Fprintf(w, "hydra_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "# HELP hydra_cache_misses_total Query requests that missed the result cache and ran an index search.\n")
	fmt.Fprintf(w, "# TYPE hydra_cache_misses_total counter\n")
	fmt.Fprintf(w, "hydra_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "# HELP hydra_cache_evictions_total Result-cache entries evicted to stay under -cache-max-bytes.\n")
	fmt.Fprintf(w, "# TYPE hydra_cache_evictions_total counter\n")
	fmt.Fprintf(w, "hydra_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(w, "# HELP hydra_cache_bytes Estimated bytes currently held by the result cache.\n")
	fmt.Fprintf(w, "# TYPE hydra_cache_bytes gauge\n")
	fmt.Fprintf(w, "hydra_cache_bytes %d\n", cache.UsedBytes)
	fmt.Fprintf(w, "# HELP hydra_cache_entries Responses currently held by the result cache.\n")
	fmt.Fprintf(w, "# TYPE hydra_cache_entries gauge\n")
	fmt.Fprintf(w, "hydra_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(w, "# HELP hydra_requests_shed_total Query requests shed with 429 overloaded at the admission gate.\n")
	fmt.Fprintf(w, "# TYPE hydra_requests_shed_total counter\n")
	fmt.Fprintf(w, "hydra_requests_shed_total %d\n", gate.Shed)
	fmt.Fprintf(w, "# HELP hydra_gate_wait_seconds_total Cumulative time admitted requests spent queued for a gate slot.\n")
	fmt.Fprintf(w, "# TYPE hydra_gate_wait_seconds_total counter\n")
	fmt.Fprintf(w, "hydra_gate_wait_seconds_total %g\n", gate.WaitSeconds)
	fmt.Fprintf(w, "# HELP hydra_router_decisions_total \"method\":\"auto\" requests routed to each method.\n")
	fmt.Fprintf(w, "# TYPE hydra_router_decisions_total counter\n")
	for _, r := range routedRows {
		fmt.Fprintf(w, "hydra_router_decisions_total{method=%q} %d\n", r.method, r.n)
	}

	fmt.Fprintf(w, "# HELP hydra_query_requests_total Answered /v1/query requests per method.\n")
	fmt.Fprintf(w, "# TYPE hydra_query_requests_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hydra_query_requests_total{method=%q} %d\n", r.name, r.mm.requests)
	}
	fmt.Fprintf(w, "# HELP hydra_queries_total Individual queries answered per method.\n")
	fmt.Fprintf(w, "# TYPE hydra_queries_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hydra_queries_total{method=%q} %d\n", r.name, r.mm.queries)
	}
	fmt.Fprintf(w, "# HELP hydra_query_errors_total Failed /v1/query requests per method.\n")
	fmt.Fprintf(w, "# TYPE hydra_query_errors_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hydra_query_errors_total{method=%q} %d\n", r.name, r.mm.errors)
	}
	fmt.Fprintf(w, "# HELP hydra_query_latency_seconds Request latency per method.\n")
	fmt.Fprintf(w, "# TYPE hydra_query_latency_seconds histogram\n")
	for _, r := range rows {
		var cum int64
		for i, ub := range latencyBounds {
			cum += r.mm.latCounts[i]
			fmt.Fprintf(w, "hydra_query_latency_seconds_bucket{method=%q,le=%q} %d\n", r.name, fmt.Sprintf("%g", ub), cum)
		}
		cum += r.mm.latCounts[len(latencyBounds)]
		fmt.Fprintf(w, "hydra_query_latency_seconds_bucket{method=%q,le=\"+Inf\"} %d\n", r.name, cum)
		fmt.Fprintf(w, "hydra_query_latency_seconds_sum{method=%q} %g\n", r.name, r.mm.latSum)
		fmt.Fprintf(w, "hydra_query_latency_seconds_count{method=%q} %d\n", r.name, r.mm.requests)
	}
	fmt.Fprintf(w, "# HELP hydra_stage_seconds Per-stage request latency decomposition from request traces.\n")
	fmt.Fprintf(w, "# TYPE hydra_stage_seconds histogram\n")
	for _, r := range stageRows {
		var cum int64
		for i, ub := range latencyBounds {
			cum += r.sm.counts[i]
			fmt.Fprintf(w, "hydra_stage_seconds_bucket{stage=%q,le=%q} %d\n", r.stage, fmt.Sprintf("%g", ub), cum)
		}
		cum += r.sm.counts[len(latencyBounds)]
		fmt.Fprintf(w, "hydra_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", r.stage, cum)
		fmt.Fprintf(w, "hydra_stage_seconds_sum{stage=%q} %g\n", r.stage, r.sm.sum)
		fmt.Fprintf(w, "hydra_stage_seconds_count{stage=%q} %d\n", r.stage, r.sm.n)
	}
	fmt.Fprintf(w, "# HELP hydra_io_random_seeks_total Modelled random seeks charged per method.\n")
	fmt.Fprintf(w, "# TYPE hydra_io_random_seeks_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hydra_io_random_seeks_total{method=%q} %d\n", r.name, r.mm.io.RandomSeeks)
	}
	fmt.Fprintf(w, "# HELP hydra_io_sequential_pages_total Modelled sequential page reads per method.\n")
	fmt.Fprintf(w, "# TYPE hydra_io_sequential_pages_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hydra_io_sequential_pages_total{method=%q} %d\n", r.name, r.mm.io.SequentialPages)
	}
	fmt.Fprintf(w, "# HELP hydra_io_bytes_read_total Modelled raw-data bytes read per method.\n")
	fmt.Fprintf(w, "# TYPE hydra_io_bytes_read_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hydra_io_bytes_read_total{method=%q} %d\n", r.name, r.mm.io.BytesRead)
	}
	fmt.Fprintf(w, "# HELP hydra_dist_calcs_total True distance computations per method.\n")
	fmt.Fprintf(w, "# TYPE hydra_dist_calcs_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hydra_dist_calcs_total{method=%q} %d\n", r.name, r.mm.distCalcs)
	}

	if len(hydRows) > 0 {
		fmt.Fprintf(w, "# HELP hydra_shard_catalog_hits_total Shard index hydrations served warm from the catalog.\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_catalog_hits_total counter\n")
		for _, r := range hydRows {
			fmt.Fprintf(w, "hydra_shard_catalog_hits_total{method=%q,shard=\"%d\"} %d\n", r.method, r.shard, r.hits)
		}
		fmt.Fprintf(w, "# HELP hydra_shard_catalog_misses_total Shard index hydrations that had to build (and save).\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_catalog_misses_total counter\n")
		for _, r := range hydRows {
			fmt.Fprintf(w, "hydra_shard_catalog_misses_total{method=%q,shard=\"%d\"} %d\n", r.method, r.shard, r.misses)
		}
	}
	if len(shardUsage) > 0 {
		fmt.Fprintf(w, "# HELP hydra_shard_queries_total Queries scattered to each shard index per method.\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_queries_total counter\n")
		for _, r := range shardUsage {
			fmt.Fprintf(w, "hydra_shard_queries_total{method=%q,shard=\"%d\"} %d\n", r.Method, r.Shard, r.Queries)
		}
		fmt.Fprintf(w, "# HELP hydra_shard_dist_calcs_total True distance computations per shard per method.\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_dist_calcs_total counter\n")
		for _, r := range shardUsage {
			fmt.Fprintf(w, "hydra_shard_dist_calcs_total{method=%q,shard=\"%d\"} %d\n", r.Method, r.Shard, r.DistCalcs)
		}
		fmt.Fprintf(w, "# HELP hydra_shard_io_random_seeks_total Modelled random seeks charged per shard per method.\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_io_random_seeks_total counter\n")
		for _, r := range shardUsage {
			fmt.Fprintf(w, "hydra_shard_io_random_seeks_total{method=%q,shard=\"%d\"} %d\n", r.Method, r.Shard, r.IO.RandomSeeks)
		}
		fmt.Fprintf(w, "# HELP hydra_shard_io_sequential_pages_total Modelled sequential page reads per shard per method.\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_io_sequential_pages_total counter\n")
		for _, r := range shardUsage {
			fmt.Fprintf(w, "hydra_shard_io_sequential_pages_total{method=%q,shard=\"%d\"} %d\n", r.Method, r.Shard, r.IO.SequentialPages)
		}
		fmt.Fprintf(w, "# HELP hydra_shard_io_bytes_read_total Modelled raw-data bytes read per shard per method.\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_io_bytes_read_total counter\n")
		for _, r := range shardUsage {
			fmt.Fprintf(w, "hydra_shard_io_bytes_read_total{method=%q,shard=\"%d\"} %d\n", r.Method, r.Shard, r.IO.BytesRead)
		}
		fmt.Fprintf(w, "# HELP hydra_shard_seconds_total Wall-clock seconds spent inside each shard's searches per method; the spread across shards exposes stragglers.\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_seconds_total counter\n")
		for _, r := range shardUsage {
			fmt.Fprintf(w, "hydra_shard_seconds_total{method=%q,shard=\"%d\"} %g\n", r.Method, r.Shard, r.Seconds)
		}
	}
}
