package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestConcurrentIndependentRequests drives the server the way production
// traffic would: N client goroutines firing independent requests across
// several methods at once, mixing serial and parallel fan-out, while other
// goroutines poll the introspection endpoints. Run under -race (the
// Makefile's race target includes this package) it pins the PR 1
// Method.Search concurrency contract at the process boundary — genuinely
// concurrent, independent requests over shared warm indexes — rather than
// only inside one ParallelRun call.
func TestConcurrentIndependentRequests(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 6)
	methods := []string{"DSTree", "VA+file", "iSAX2+", "HNSW"}
	s := newTestServer(t, Config{Data: data, Preload: methods})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clientsPerMethod = 4
	const requestsPerClient = 3
	var wg sync.WaitGroup
	errCh := make(chan error, len(methods)*clientsPerMethod+2)

	// A reference answer per (method, query) to check cross-request
	// interference: every concurrent request must return it unchanged.
	reference := map[string]string{}
	for _, m := range methods {
		for qi := 0; qi < qs.Size(); qi++ {
			body := postText(t, ts.URL, m, queryVec(qs, qi))
			reference[fmt.Sprintf("%s/%d", m, qi)] = body
		}
	}

	for _, m := range methods {
		for c := 0; c < clientsPerMethod; c++ {
			wg.Add(1)
			go func(m string, c int) {
				defer wg.Done()
				for rqi := 0; rqi < requestsPerClient; rqi++ {
					qi := (c + rqi) % qs.Size()
					workers := 1 + (c+rqi)%3 // mix serial and parallel requests
					blob, _ := json.Marshal(map[string]any{
						"method": m, "mode": "ng", "nprobe": 8, "k": 5,
						"query": queryVec(qs, qi), "workers": workers, "format": "text",
					})
					resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(blob))
					if err != nil {
						errCh <- err
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("%s: status %d body %s", m, resp.StatusCode, body)
						return
					}
					if want := reference[fmt.Sprintf("%s/%d", m, qi)]; string(body) != want {
						errCh <- fmt.Errorf("%s query %d: concurrent answer diverged:\n got %swant %s", m, qi, body, want)
						return
					}
				}
			}(m, c)
		}
	}
	// Introspection traffic concurrent with queries; /debug/requests makes
	// the trace ring's writers race its snapshot readers under -race.
	for _, path := range []string{"/v1/methods", "/metrics", "/healthz", "/debug/requests"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// postText fires one serial text-format query and returns the body.
func postText(t *testing.T, base, method string, vec []float32) string {
	t.Helper()
	blob, _ := json.Marshal(map[string]any{
		"method": method, "mode": "ng", "nprobe": 8, "k": 5,
		"query": vec, "workers": 1, "format": "text",
	})
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("%s: %v", method, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d body %s", method, resp.StatusCode, body)
	}
	return string(body)
}
