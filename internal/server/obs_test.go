package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/kernel"
	"hydra/internal/obs"
)

// tracedResponse is the subset of a /v1/query JSON body the trace tests
// decode.
type tracedResponse struct {
	Cached      bool           `json:"cached"`
	WallSeconds float64        `json:"wall_seconds"`
	Trace       *obs.TraceJSON `json:"trace"`
}

// TestTraceStageSumWithinFivePercentOfTotal is the tentpole acceptance
// check: a traced response must decompose its latency into spans whose
// top-level durations sum to within 5% of the trace's measured total —
// i.e. the serve path has no untraced segment big enough to hide in. The
// workload is sized so the query span is milliseconds, not microseconds,
// keeping the inter-span bookkeeping gaps far below the tolerance.
func TestTraceStageSumWithinFivePercentOfTotal(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 20000, Length: 128, Seed: 11})
	qs := dataset.Queries(data, dataset.KindWalk, 4, 13)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()

	vectors := make([][]float32, qs.Size())
	for i := range vectors {
		vectors[i] = queryVec(qs, i)
	}
	began := time.Now()
	rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 5, "queries": vectors, "trace": true})
	wallMS := time.Since(began).Seconds() * 1e3
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	var resp tracedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Trace == nil {
		t.Fatalf("\"trace\": true returned no trace block: %s", rec.Body.String())
	}
	tj := resp.Trace
	if tj.ID == "" || rec.Header().Get("X-Hydra-Trace-Id") != tj.ID {
		t.Fatalf("trace id %q does not match X-Hydra-Trace-Id %q", tj.ID, rec.Header().Get("X-Hydra-Trace-Id"))
	}
	if tj.TotalMS <= 0 {
		t.Fatalf("trace total %.4fms not positive", tj.TotalMS)
	}
	// The trace is finished before the response body is encoded, so its
	// total must sit inside the externally measured request wall time.
	if tj.TotalMS > wallMS {
		t.Fatalf("trace total %.4fms exceeds measured request wall %.4fms", tj.TotalMS, wallMS)
	}

	names := map[string]float64{}
	for _, sp := range tj.Spans {
		names[sp.Name] += sp.DurationMS
	}
	for _, want := range []string{"parse", "gate.wait", "gather", "cache.lookup", "hydrate", "query", "respond"} {
		if _, ok := names[want]; !ok {
			t.Errorf("trace is missing the %q stage: %+v", want, tj.Spans)
		}
	}
	if names["query"] <= 0 {
		t.Errorf("query stage duration %.4fms not positive", names["query"])
	}

	sum := tj.StageSumMS()
	if sum > tj.TotalMS {
		t.Fatalf("top-level stages sum to %.4fms, above the trace total %.4fms", sum, tj.TotalMS)
	}
	if gap := tj.TotalMS - sum; gap > 0.05*tj.TotalMS {
		t.Fatalf("untraced gap %.4fms is %.1f%% of total %.4fms (want <= 5%%); stages: %+v",
			gap, 100*gap/tj.TotalMS, tj.TotalMS, tj.Spans)
	}
}

// TestTraceOptInAndDisabled pins the two trace surfaces' gating: the
// response block appears only when the request asks for it (the header is
// always present while tracing is on), a cached replay carries its own
// trace, and a server with tracing disabled sends neither surface and
// 404s /debug/requests.
func TestTraceOptInAndDisabled(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data, CacheMaxBytes: 1 << 20})
	h := s.Handler()
	body := map[string]any{"method": "SerialScan", "k": 3, "query": queryVec(qs, 0)}

	rec := postQuery(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Hydra-Trace-Id") == "" {
		t.Fatalf("untraced request is missing the X-Hydra-Trace-Id header")
	}
	var resp tracedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatalf("trace block present without \"trace\": true")
	}

	// The replay of the same request must be served from the cache and still
	// carry a fresh trace of its own (the cached copy stays trace-free).
	traced := map[string]any{"method": "SerialScan", "k": 3, "query": queryVec(qs, 0), "trace": true}
	rec = postQuery(t, h, traced)
	if rec.Code != http.StatusOK {
		t.Fatalf("replay: %d %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatalf("identical replay was not served from the result cache")
	}
	if resp.Trace == nil || resp.Trace.ID != rec.Header().Get("X-Hydra-Trace-Id") {
		t.Fatalf("cached replay lacks its own trace block: %s", rec.Body.String())
	}
	if resp.Trace.Attrs["cached"] != "true" {
		t.Fatalf("cached replay's trace not annotated cached=true: %+v", resp.Trace.Attrs)
	}

	off := newTestServer(t, Config{Data: data, TraceRing: -1})
	hOff := off.Handler()
	rec = postQuery(t, hOff, traced)
	if rec.Code != http.StatusOK {
		t.Fatalf("untraced server query: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Hydra-Trace-Id"); got != "" {
		t.Fatalf("tracing disabled but X-Hydra-Trace-Id = %q", got)
	}
	resp = tracedResponse{} // Unmarshal leaves absent fields untouched
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatalf("tracing disabled but the response carries a trace block")
	}
	recD := httptest.NewRecorder()
	hOff.ServeHTTP(recD, httptest.NewRequest("GET", "/debug/requests", nil))
	if code := decodeError(t, recD, http.StatusNotFound); code != "tracing_disabled" {
		t.Fatalf("code = %q", code)
	}
}

// TestDebugRequestsServesRing drives a few traced queries and checks the
// ring endpoint reports them: the add counter, newest-first recents and a
// slowest entry per family.
func TestDebugRequestsServesRing(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 2)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		body := map[string]any{"method": "SerialScan", "k": 3, "query": queryVec(qs, i%qs.Size())}
		if rec := postQuery(t, h, body); rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests: %d %s", rec.Code, rec.Body.String())
	}
	var snap struct {
		Added   int64            `json:"added"`
		Recent  []*obs.TraceJSON `json:"recent"`
		Slowest []*obs.TraceJSON `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding snapshot: %v (body %s)", err, rec.Body.String())
	}
	if snap.Added != 3 || len(snap.Recent) != 3 {
		t.Fatalf("added=%d recent=%d, want 3 and 3", snap.Added, len(snap.Recent))
	}
	for i, tr := range snap.Recent {
		if tr.Family != "SerialScan" || tr.ID == "" || tr.TotalMS <= 0 {
			t.Errorf("recent[%d] malformed: %+v", i, tr)
		}
	}
	if len(snap.Slowest) != 1 || snap.Slowest[0].Family != "SerialScan" {
		t.Fatalf("slowest = %+v, want one SerialScan entry", snap.Slowest)
	}
}

// TestStageAndBuildInfoMetrics pins the observability /metrics families: the
// hydra_stage_seconds histogram fed from request traces, the
// hydra_build_info identity gauge and the process gauges — and re-runs the
// exposition-format validator over the enlarged body.
func TestStageAndBuildInfoMetrics(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()
	if rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "query": queryVec(qs, 0)}); rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}

	body := scrapeMetrics(t, h)
	// One uncached request: every serve-path stage observed exactly once.
	for _, stage := range []string{"parse", "gate.wait", "gather", "cache.lookup", "hydrate", "query", "respond"} {
		requireMetric(t, body, fmt.Sprintf("hydra_stage_seconds_count{stage=%q} 1", stage))
		if !strings.Contains(body, fmt.Sprintf("hydra_stage_seconds_bucket{stage=%q,le=\"+Inf\"} 1", stage)) {
			t.Errorf("stage %q missing its +Inf bucket", stage)
		}
	}
	requireMetric(t, body, fmt.Sprintf(
		"hydra_build_info{go_version=%q,kernel=%q,shards=\"1\",dataset=%q,fingerprint=%q} 1",
		runtime.Version(), kernel.Active().String(), s.datasetName, s.fingerprint))
	requireMetric(t, body, "hydra_gate_wait_seconds_total 0")
	for _, prefix := range []string{"hydra_process_uptime_seconds ", "hydra_goroutines "} {
		if !strings.Contains(body, "\n"+prefix) {
			t.Errorf("metrics missing %q gauge", strings.TrimSpace(prefix))
		}
	}
	validatePromText(t, body)
}

// stallGate and stallStarted are the coordination points of the StallTest
// method below: the stalled-hydration regression test installs channels,
// every other test leaves them nil and the method builds instantly.
var (
	stallGate    atomic.Value // chan struct{}: Build blocks until it closes
	stallStarted atomic.Value // chan struct{} (cap 1): Build signals entry
)

// StallTest is a test-only registered method whose Build can be made to
// block, simulating a method whose lazy hydration takes arbitrarily long
// (a big disk-resident index on first touch). It delegates to SerialScan
// once released so the blocked request still answers correctly.
func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:  "StallTest",
		Rank:  999,
		Exact: true,
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			if ch, _ := stallStarted.Load().(chan struct{}); ch != nil {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
			if ch, _ := stallGate.Load().(chan struct{}); ch != nil {
				<-ch
			}
			spec, _ := core.LookupMethod("SerialScan")
			return spec.Build(ctx)
		},
	})
}

// TestHealthAndDebugNeverBlockBehindStalledHydration is the regression test
// for the handle's two-mutex split: while a lazy hydration holds hydrateMu
// indefinitely, /healthz, /debug/requests and /v1/methods must keep
// answering, because they only ever take the short state mutex (and the
// ring snapshot's pointer-copy lock).
func TestHealthAndDebugNeverBlockBehindStalledHydration(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	stallStarted.Store(started)
	stallGate.Store(release)
	t.Cleanup(func() {
		stallStarted.Store((chan struct{})(nil))
		stallGate.Store((chan struct{})(nil))
	})

	queryDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		queryDone <- postQuery(t, h, map[string]any{"method": "StallTest", "k": 3, "query": queryVec(qs, 0)})
	}()
	select {
	case <-started: // Build is in flight, holding the handle's hydrateMu
	case <-time.After(10 * time.Second):
		t.Fatalf("StallTest build never started")
	}

	for _, path := range []string{"/healthz", "/debug/requests", "/v1/methods"} {
		done := make(chan int, 1)
		go func() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			done <- rec.Code
		}()
		select {
		case code := <-done:
			if code != http.StatusOK {
				t.Errorf("%s during stalled hydration: status %d", path, code)
			}
		case <-time.After(5 * time.Second):
			t.Errorf("%s blocked behind a stalled hydration", path)
		}
	}

	close(release)
	select {
	case rec := <-queryDone:
		if rec.Code != http.StatusOK {
			t.Fatalf("released StallTest query failed: %d %s", rec.Code, rec.Body.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("released StallTest query never completed")
	}
}
