package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/eval"
	"hydra/internal/kernel"
	"hydra/internal/obs"
	"hydra/internal/router"
	"hydra/internal/series"
	"hydra/internal/shard"
	"hydra/internal/storage"
)

// apiError is the one error shape every endpoint returns (docs/API.md):
//
//	{"error":{"code":"unknown_method","message":"...","status":404}}
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...), Status: status},
	})
}

// Handler returns the service's HTTP handler. Routing is method-checked by
// hand so that 404s and 405s share the documented error shape.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.guard("GET", false, s.handleHealthz))
	mux.HandleFunc("/metrics", s.guard("GET", false, s.handleMetrics))
	mux.HandleFunc("/debug/requests", s.guard("GET", false, s.handleDebugRequests))
	mux.HandleFunc("/v1/methods", s.guard("GET", true, s.handleMethods))
	mux.HandleFunc("/v1/datasets", s.guard("GET", true, s.handleDatasets))
	mux.HandleFunc("/v1/query", s.guard("POST", true, s.handleQuery))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint %s", r.URL.Path)
	})
	return mux
}

// guard enforces the HTTP method and, for drainable endpoints, the
// shutdown latch: once BeginShutdown has run, query and introspection
// requests are refused while /healthz and /metrics keep answering so the
// drain can be observed.
func (s *Server) guard(method string, drains bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "%s needs %s, got %s", r.URL.Path, method, r.Method)
			return
		}
		if drains && s.down.Load() {
			writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining; retry against another replica")
			return
		}
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.down.Load() {
		status = "shutting_down"
	}
	ready := 0
	for _, h := range s.handles {
		if hy, hReady := h.state(); hReady && hy.err == nil {
			ready++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"dataset": map[string]any{
			"name":        s.datasetName,
			"series":      s.data.Size(),
			"length":      s.data.Length(),
			"fingerprint": s.fingerprint,
		},
		"shards":        s.shardTotal(),
		"kernel":        kernel.Active().String(),
		"methods_ready": ready,
		"warmup":        s.WarmupReport(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	info := buildInfo{
		GoVersion:   runtime.Version(),
		Kernel:      kernel.Active().String(),
		Shards:      s.shardTotal(),
		Dataset:     s.datasetName,
		Fingerprint: s.fingerprint,
	}
	s.metrics.render(w, time.Since(s.start).Seconds(), s.shardUsage(), s.cache.Stats(), s.gate.Stats(), info, runtime.NumGoroutine())
}

// handleDebugRequests serves the trace ring (x/net/trace idiom): the most
// recent requests plus the slowest request seen per family since boot, as
// JSON. Like /healthz it must stay responsive no matter what the serve path
// is doing: the ring snapshot copies pointers under a mutex held for
// nanoseconds and never touches the hydration locks, which the
// stalled-hydration regression test pins.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	if s.ring == nil {
		writeError(w, http.StatusNotFound, "tracing_disabled", "request tracing is disabled (start hydra-serve with -trace-ring > 0)")
		return
	}
	writeJSON(w, http.StatusOK, s.ring.Snapshot())
}

// shardUsage gathers cumulative per-shard query counters from every
// hydrated scatter-gather method, for the per-shard /metrics families.
// Unsharded servers have none.
func (s *Server) shardUsage() []ShardUsage {
	if s.plan == nil {
		return nil
	}
	var rows []ShardUsage
	for _, spec := range core.RegisteredMethods() {
		h := s.handles[spec.Name]
		if h == nil {
			continue
		}
		hy, ready := h.state()
		if !ready || hy.err != nil {
			continue
		}
		sm, ok := hy.method.(*shard.Method)
		if !ok {
			continue
		}
		for _, st := range sm.ShardStats() {
			rows = append(rows, ShardUsage{
				Method:    spec.Name,
				Shard:     st.Shard,
				Queries:   st.Queries,
				DistCalcs: st.DistCalcs,
				IO:        st.IO,
				Seconds:   st.Seconds,
			})
		}
	}
	return rows
}

// methodInfo is one row of GET /v1/methods, derived from the registry.
// Loaded stays as the all-shards-ready summary; the shard counters expose
// the per-shard load state behind it (1-shard totals when unsharded).
type methodInfo struct {
	Name          string   `json:"name"`
	Rank          int      `json:"rank"`
	Capabilities  []string `json:"capabilities"`
	Persistable   bool     `json:"persistable"`
	FormatVersion int      `json:"format_version,omitempty"`
	Loaded        bool     `json:"loaded"`
	FromCatalog   bool     `json:"from_catalog"`
	// ShardsLoaded counts shard indexes ready to serve, of ShardsTotal;
	// ShardsFromCatalog counts the subset hydrated warm from the catalog.
	ShardsLoaded      int `json:"shards_loaded"`
	ShardsFromCatalog int `json:"shards_from_catalog"`
	ShardsTotal       int `json:"shards_total"`
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	specs := core.RegisteredMethods()
	out := make([]methodInfo, 0, len(specs))
	for _, spec := range specs {
		var hy hydration
		var ready bool
		// A handle can be missing only for a method registered after this
		// server booted (the map is snapshotted in New): report it, unloaded.
		if h := s.handles[spec.Name]; h != nil {
			hy, ready = h.state()
		}
		shardsTotal := hy.shardsTotal
		if shardsTotal == 0 { // not hydrated yet: report the serving plan
			shardsTotal = s.shardTotal()
		}
		out = append(out, methodInfo{
			Name:              spec.Name,
			Rank:              spec.Rank,
			Capabilities:      spec.Capabilities(),
			Persistable:       spec.Persistable(),
			FormatVersion:     spec.FormatVersion,
			Loaded:            ready && hy.err == nil,
			FromCatalog:       hy.fromCache,
			ShardsLoaded:      hy.shardsLoaded,
			ShardsFromCatalog: hy.shardsHit,
			ShardsTotal:       shardsTotal,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"methods": out})
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	indexDir := ""
	if s.cat != nil {
		indexDir = s.cat.Dir()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"datasets": []map[string]any{{
			"name":        s.datasetName,
			"path":        s.datasetPath,
			"series":      s.data.Size(),
			"length":      s.data.Length(),
			"bytes":       s.data.Bytes(),
			"fingerprint": s.fingerprint,
			"index_dir":   indexDir,
			"kernel":      kernel.Active().String(),
			"cost_model":  costModelJSON(s.model),
		}},
	})
}

func costModelJSON(m storage.CostModel) map[string]any {
	return map[string]any{
		"seek_seconds":        m.SeekSeconds,
		"bytes_per_second":    m.BytesPerSecond,
		"page_bytes":          m.PageBytes,
		"cpu_seconds_per_cmp": m.CPUSecondsPerCmp,
	}
}

// queryRequest is the POST /v1/query body. Exactly one of Query, Queries
// or WorkloadFile supplies the query series.
type queryRequest struct {
	Method  string   `json:"method"`
	Mode    string   `json:"mode"`    // exact|ng|epsilon|delta-epsilon; default exact
	K       int      `json:"k"`       // default 10
	Epsilon float64  `json:"epsilon"` // ε bound (epsilon / delta-epsilon modes)
	Delta   *float64 `json:"delta"`   // δ probability; default 1
	NProbe  int      `json:"nprobe"`  // ng-mode probe budget; default 8
	// Query is a single query series; Queries a batch; WorkloadFile a
	// server-side workload file in the hydra binary format.
	Query        []float32   `json:"query"`
	Queries      [][]float32 `json:"queries"`
	WorkloadFile string      `json:"workload_file"`
	// Workers is the fan-out eval.ParallelRun applies to this request's
	// queries: 0 uses the server default, negative all cores.
	Workers int `json:"workers"`
	// Format selects the response body: "json" (default) or "text" (the
	// CLI's per-query answer lines, byte-identical to hydra-query).
	Format string `json:"format"`
	// Trace opts into the response's "trace" block: the request's full span
	// tree. The X-Hydra-Trace-Id header is sent regardless (when tracing is
	// enabled), so the block is only needed to see the decomposition inline.
	Trace bool `json:"trace"`
}

// neighborJSON is one answer of one query.
type neighborJSON struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// answerJSON is one query's result row.
type answerJSON struct {
	Query     int            `json:"query"`
	Neighbors []neighborJSON `json:"neighbors"`
}

// queryResponse is the POST /v1/query JSON body: answers plus the
// request's exact cost accounting (raw-data I/O counters, distance
// computations) and the storage cost model's pricing of it. It is also the
// value the result cache stores: a hit replays the stored response with
// only Cached flipped to true, so a hit body is byte-identical to the miss
// that populated it everywhere else (including wall_seconds, which
// reports the original computation, not the replay).
type queryResponse struct {
	Method      string `json:"method"`
	Mode        string `json:"mode"`
	K           int    `json:"k"`
	Workers     int    `json:"workers"`
	FromCatalog bool   `json:"from_catalog"`
	// Cached is true when this response was replayed from the result cache
	// without touching any index (zero modelled I/O or distance
	// computations re-spent; the counters below report the original run).
	Cached       bool         `json:"cached"`
	Answers      []answerJSON `json:"answers"`
	WallSeconds  float64      `json:"wall_seconds"`
	ModelSeconds float64      `json:"model_seconds"`
	IO           struct {
		RandomSeeks     int64 `json:"random_seeks"`
		SequentialPages int64 `json:"sequential_pages"`
		BytesRead       int64 `json:"bytes_read"`
	} `json:"io"`
	DistCalcs int64          `json:"dist_calcs"`
	CostModel map[string]any `json:"cost_model"`
	// Trace is the request's span tree, present only when the request set
	// "trace": true. It is attached to the outgoing response after the
	// cache stores its copy, so cached replays stay byte-identical to the
	// miss that populated them and each replay reports its own trace.
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// responseBytes estimates a response's cache footprint: the struct and its
// JSON rendering are both dominated by the neighbour rows, priced here at
// their in-memory cost plus encoding overhead.
func responseBytes(resp *queryResponse) int64 {
	n := int64(512) // fixed fields, cost model map, struct overhead
	for _, a := range resp.Answers {
		n += 48 + int64(len(a.Neighbors))*40
	}
	return n
}

// cacheKey is the full identity of a query request's answer: dataset
// content, requested method (the literal "auto" for routed requests — a
// routed answer may legally differ from any one fixed method's in
// approximate modes, so the two must not share entries), mode and its
// parameters, and a content hash of the query vectors themselves. Workers
// and format are deliberately excluded: neither changes answers or
// counters (the Method.Search concurrency contract), and both renderings
// come from the same stored response.
func (s *Server) cacheKey(methodField string, mode core.Mode, k int, epsilon, delta float64, nprobe int, queries *series.Dataset) string {
	return fmt.Sprintf("%s|%s|%s|k=%d|eps=%g|delta=%g|nprobe=%d|q=%s",
		s.fingerprint, methodField, mode, k, epsilon, delta, nprobe, queries.Fingerprint())
}

// maxRequestBytes bounds a /v1/query body. 64 MiB fits a ~65k-query batch
// of length-128 series in JSON; anything bigger belongs in a workload file.
const maxRequestBytes = 64 << 20

// traceObserver aggregates core.SearchObserver callbacks for one request:
// per-shard wall time and kernel-refinement time, each summed across the
// request's queries. It is attached to the request's query template, so the
// per-query copies eval.ParallelRun fans out all feed one collector, from
// however many worker goroutines the run uses.
type traceObserver struct {
	mu     sync.Mutex
	shards map[int]time.Duration
	refine time.Duration
}

func (o *traceObserver) ObserveShard(shard int, d time.Duration) {
	o.mu.Lock()
	if o.shards == nil {
		o.shards = map[int]time.Duration{}
	}
	o.shards[shard] += d
	o.mu.Unlock()
}

func (o *traceObserver) ObserveRefine(d time.Duration) {
	o.mu.Lock()
	o.refine += d
	o.mu.Unlock()
}

// attach records the collected attributions as children of the query span.
// Shards answer concurrently and refinement happens inside them, so child
// durations are work time that may sum past the parent's wall time; the
// per-shard spread is the straggler signal.
func (o *traceObserver) attach(sp obs.Span) {
	o.mu.Lock()
	defer o.mu.Unlock()
	shards := make([]int, 0, len(o.shards))
	for i := range o.shards {
		shards = append(shards, i)
	}
	sort.Ints(shards)
	for _, i := range shards {
		sp.AddChild(fmt.Sprintf("shard.%d", i), o.shards[i])
	}
	if o.refine > 0 {
		sp.AddChild("refine", o.refine)
	}
}

// finishTrace closes out a request trace: ends it, feeds the stage
// histograms, retains it in the ring and applies the slow-query log.
// errCode annotates failed requests ("" for success). Nil-safe; every
// handleQuery exit path calls it exactly once.
func (s *Server) finishTrace(tr *obs.Trace, errCode string) {
	if tr == nil {
		return
	}
	if errCode != "" {
		tr.Annotate("error", errCode)
	}
	tr.Finish()
	for _, sp := range tr.Export().Spans {
		s.metrics.recordStage(sp.Name, sp.DurationMS/1e3)
	}
	s.ring.Add(tr)
	if s.slowQuery > 0 && tr.Total() >= s.slowQuery {
		s.logger.Warn("slow query", "trace_id", tr.ID(), "family", tr.Family(),
			"seconds", tr.Total().Seconds(), "threshold_seconds", s.slowQuery.Seconds())
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Tracing is on whenever the ring is (the default): the request you end
	// up debugging is rarely one you thought to trace in advance. The
	// response "trace" block stays opt-in; the header always carries the ID.
	var tr *obs.Trace
	if s.ring != nil {
		tr = obs.New("query")
		w.Header().Set("X-Hydra-Trace-Id", tr.ID())
	}
	fail := func(status int, code, format string, args ...any) {
		s.finishTrace(tr, code)
		writeError(w, status, code, format, args...)
	}

	parse := tr.Start("parse")
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(http.StatusRequestEntityTooLarge, "request_too_large",
				"request body exceeds %d bytes; use workload_file for large batches", tooBig.Limit)
			return
		}
		fail(http.StatusBadRequest, "invalid_json", "decoding request body: %v", err)
		return
	}
	if req.Method == "" {
		fail(http.StatusBadRequest, "bad_request", "\"method\" is required (see GET /v1/methods)")
		return
	}
	auto := strings.EqualFold(req.Method, "auto")
	var spec core.MethodSpec
	if auto {
		if s.route == nil {
			fail(http.StatusBadRequest, "auto_disabled", "\"method\":\"auto\" is disabled (start hydra-serve with -auto)")
			return
		}
		tr.SetFamily("auto")
	} else {
		var ok bool
		spec, ok = core.LookupMethod(req.Method)
		if !ok {
			fail(http.StatusNotFound, "unknown_method", "unknown method %q (see GET /v1/methods)", req.Method)
			return
		}
		tr.SetFamily(spec.Name)
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		fail(http.StatusBadRequest, "bad_mode", "%v", err)
		return
	}
	if req.K == 0 {
		// Default to the CLI's k=10, clamped so an omitted k is always
		// valid on tiny datasets.
		req.K = 10
		if req.K > s.data.Size() {
			req.K = s.data.Size()
		}
	}
	if req.K < 0 {
		fail(http.StatusBadRequest, "bad_k", "k must be positive, got %d", req.K)
		return
	}
	if req.K > s.data.Size() {
		fail(http.StatusBadRequest, "bad_k", "k=%d exceeds dataset size %d", req.K, s.data.Size())
		return
	}
	tr.Annotate("mode", mode.String())
	parse.End()
	// Admission control sits on the serve boundary, before any query
	// materialisation (a workload_file load is real work) — a shed request
	// must cost almost nothing.
	gateWait := tr.Start("gate.wait")
	admitted := s.gate.Acquire()
	gateWait.End()
	if !admitted {
		fail(http.StatusTooManyRequests, "overloaded",
			"server is at -max-inflight capacity with a full queue; retry with backoff or against another replica")
		return
	}
	defer s.gate.Release()

	gather := tr.Start("gather")
	queries, qerr := s.gatherQueries(req)
	if qerr != nil {
		gather.End()
		fail(qerr.Status, qerr.Code, "%s", qerr.Message)
		return
	}

	delta := 1.0
	if req.Delta != nil {
		delta = *req.Delta
	}
	nprobe := req.NProbe
	if nprobe == 0 {
		nprobe = 8
	}
	template := core.Query{Mode: mode, Epsilon: req.Epsilon, Delta: delta, NProbe: nprobe}
	probe := template
	probe.Series = queries.At(0)
	probe.K = req.K
	if err := probe.Validate(); err != nil {
		gather.End()
		fail(http.StatusBadRequest, "bad_query", "%v", err)
		return
	}
	gather.End()
	tr.Annotate("queries", fmt.Sprint(queries.Size()))

	methodField := spec.Name
	if auto {
		methodField = "auto"
	}
	// The key computation fingerprints the query vectors, which is real
	// work that belongs inside the lookup stage.
	lookup := tr.Start("cache.lookup")
	key := s.cacheKey(methodField, mode, req.K, req.Epsilon, delta, nprobe, queries)
	v, cacheHit := s.cache.Get(key)
	lookup.End()
	if cacheHit {
		// Replay the stored response: the answer identical to the original
		// run, with zero index work, I/O or distance computations re-spent.
		// The copy/annotation work is its own "respond" stage so the replay
		// trace tiles the request like the fresh path's does.
		respond := tr.Start("respond")
		hit := *v.(*queryResponse)
		hit.Cached = true
		w.Header().Set("X-Hydra-Cached", "true")
		tr.Annotate("cached", "true")
		respond.End()
		s.finishTrace(tr, "")
		if req.Trace && tr != nil {
			tj := tr.Export()
			hit.Trace = &tj
		}
		s.writeQueryResponse(w, r, req, &hit)
		return
	}

	if auto {
		decide := tr.Start("route.decide")
		dec, err := s.route.Pick(router.Request{Mode: mode, K: req.K, Epsilon: req.Epsilon, Delta: delta})
		decide.End()
		if err != nil {
			fail(http.StatusBadRequest, "unroutable", "%v", err)
			return
		}
		spec, _ = core.LookupMethod(dec.Method)
		s.metrics.recordRouted(dec.Method)
		w.Header().Set("X-Hydra-Routed-Method", dec.Method)
		w.Header().Set("X-Hydra-Routed-Source", dec.Source)
		tr.SetFamily(spec.Name)
		tr.Annotate("routed_source", dec.Source)
	}
	tr.Annotate("method", spec.Name)

	hydrate := tr.Start("hydrate")
	m, fromCache, err := s.methodFor(spec.Name)
	hydrate.End()
	if err != nil {
		s.metrics.recordError(spec.Name)
		fail(http.StatusInternalServerError, "method_unavailable", "hydrating %s: %v", spec.Name, err)
		return
	}

	workers := req.Workers
	if workers == 0 {
		workers = s.defWorkers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = s.gate.ClampWorkers(workers)
	var ob *traceObserver
	if tr != nil {
		ob = &traceObserver{}
		template.Obs = ob
	}
	workload := eval.Workload{Data: s.data, Queries: queries, K: req.K}
	querySpan := tr.Start("query")
	start := time.Now()
	outcome, err := eval.ParallelRun(m, workload, template, s.model, eval.RunOptions{Workers: workers})
	elapsed := time.Since(start).Seconds()
	if ob != nil {
		ob.attach(querySpan)
	}
	querySpan.End()
	if err != nil {
		s.metrics.recordError(spec.Name)
		fail(http.StatusInternalServerError, "query_failed", "%v", err)
		return
	}
	// Everything after the search — metrics, response assembly, the cache
	// insert — is its own stage so the trace accounts for the full request,
	// not just the index work.
	respond := tr.Start("respond")
	s.metrics.recordRequest(spec.Name, queries.Size(), elapsed, outcome.IO, outcome.DistCalcs)
	if s.route != nil && queries.Size() > 0 {
		// Per-query latency (not per-request) so batch size does not skew
		// the router's cross-method comparison. Cache hits never reach
		// here, so replays cannot poison the p50.
		s.route.Observe(spec.Name, elapsed/float64(queries.Size()))
	}

	resp := &queryResponse{
		Method:       spec.Name,
		Mode:         mode.String(),
		K:            req.K,
		Workers:      workers,
		FromCatalog:  fromCache,
		WallSeconds:  outcome.WallSeconds,
		ModelSeconds: outcome.ModelSeconds,
		DistCalcs:    outcome.DistCalcs,
		CostModel:    costModelJSON(s.model),
	}
	resp.IO.RandomSeeks = outcome.IO.RandomSeeks
	resp.IO.SequentialPages = outcome.IO.SequentialPages
	resp.IO.BytesRead = outcome.IO.BytesRead
	resp.Answers = make([]answerJSON, len(outcome.Results))
	for qi, res := range outcome.Results {
		nbs := make([]neighborJSON, len(res.Neighbors))
		for i, nb := range res.Neighbors {
			nbs[i] = neighborJSON{ID: nb.ID, Dist: nb.Dist}
		}
		resp.Answers[qi] = answerJSON{Query: qi, Neighbors: nbs}
	}
	// The cache stores the trace-free response; the trace block (if asked
	// for) goes only on this request's outgoing copy.
	s.cache.Put(key, resp, responseBytes(resp))
	out := *resp
	respond.End()
	s.finishTrace(tr, "")
	if req.Trace && tr != nil {
		tj := tr.Export()
		out.Trace = &tj
	}
	s.writeQueryResponse(w, r, req, &out)
}

// writeQueryResponse renders a query response in the requested format.
// Both the fresh path and the cache-replay path come through here, and the
// text rendering reads the same stored answers the JSON rendering does —
// which is what makes a cache hit byte-identical to the miss that
// populated it in either format.
func (s *Server) writeQueryResponse(w http.ResponseWriter, r *http.Request, req queryRequest, resp *queryResponse) {
	format := req.Format
	if f := r.URL.Query().Get("format"); f != "" {
		format = f
	}
	if strings.EqualFold(format, "text") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, a := range resp.Answers {
			nbs := make([]core.Neighbor, len(a.Neighbors))
			for i, nb := range a.Neighbors {
				nbs[i] = core.Neighbor{ID: nb.ID, Dist: nb.Dist}
			}
			fmt.Fprintln(w, eval.AnswerLine(a.Query, nbs))
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// gatherQueries materialises the request's query series as a dataset,
// validating that exactly one source was given and that every series
// matches the dataset's length.
func (s *Server) gatherQueries(req queryRequest) (*series.Dataset, *apiError) {
	sources := 0
	if len(req.Query) > 0 {
		sources++
	}
	if len(req.Queries) > 0 {
		sources++
	}
	if req.WorkloadFile != "" {
		sources++
	}
	if sources != 1 {
		return nil, &apiError{
			Code:    "bad_request",
			Message: "exactly one of \"query\", \"queries\" or \"workload_file\" must be set",
			Status:  http.StatusBadRequest,
		}
	}
	length := s.data.Length()
	if req.WorkloadFile != "" {
		path, perr := s.resolveWorkloadFile(req.WorkloadFile)
		if perr != nil {
			return nil, perr
		}
		ds, err := series.LoadFile(path)
		if err != nil {
			return nil, &apiError{Code: "bad_workload_file", Message: err.Error(), Status: http.StatusBadRequest}
		}
		if ds.Size() == 0 {
			return nil, &apiError{Code: "bad_workload_file", Message: "workload file holds no series", Status: http.StatusBadRequest}
		}
		if ds.Length() != length {
			return nil, &apiError{
				Code:    "bad_vector_length",
				Message: fmt.Sprintf("workload series length %d != dataset length %d", ds.Length(), length),
				Status:  http.StatusBadRequest,
			}
		}
		return ds, nil
	}
	vectors := req.Queries
	if len(req.Query) > 0 {
		vectors = [][]float32{req.Query}
	}
	ds := series.NewDataset(length)
	for i, v := range vectors {
		if len(v) != length {
			return nil, &apiError{
				Code:    "bad_vector_length",
				Message: fmt.Sprintf("query %d has length %d, dataset series have length %d", i, len(v), length),
				Status:  http.StatusBadRequest,
			}
		}
		ds.Append(series.Series(v))
	}
	return ds, nil
}

// resolveWorkloadFile maps a client-supplied workload path onto a real
// file strictly inside the configured workload directory. Without a
// configured directory the field is refused outright: remote clients must
// never be able to make the server open arbitrary filesystem paths.
func (s *Server) resolveWorkloadFile(name string) (string, *apiError) {
	if s.workloadDir == "" {
		return "", &apiError{
			Code:    "bad_workload_file",
			Message: "workload_file is disabled (start hydra-serve with -workload-dir)",
			Status:  http.StatusBadRequest,
		}
	}
	escapes := func() *apiError {
		return &apiError{
			Code:    "bad_workload_file",
			Message: fmt.Sprintf("workload_file %q escapes the configured workload directory", name),
			Status:  http.StatusBadRequest,
		}
	}
	contained := func(path string) bool {
		rel, err := filepath.Rel(s.workloadDir, path)
		return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
	}
	path := name
	if !filepath.IsAbs(path) {
		path = filepath.Join(s.workloadDir, path)
	}
	path = filepath.Clean(path)
	if !contained(path) {
		return "", escapes()
	}
	// The lexical check alone would follow a symlink planted inside the
	// directory; resolve and re-check the real location.
	resolved, err := filepath.EvalSymlinks(path)
	if err != nil {
		return "", &apiError{Code: "bad_workload_file", Message: err.Error(), Status: http.StatusBadRequest}
	}
	if !contained(resolved) {
		return "", escapes()
	}
	return resolved, nil
}

// parseMode maps the wire mode names onto core.Mode (default exact).
func parseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "", "exact":
		return core.ModeExact, nil
	case "ng":
		return core.ModeNG, nil
	case "epsilon":
		return core.ModeEpsilon, nil
	case "delta-epsilon":
		return core.ModeDeltaEpsilon, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want exact|ng|epsilon|delta-epsilon)", s)
	}
}
