package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/series"
)

// testWorkload generates a small deterministic dataset plus queries.
func testWorkload(t *testing.T, n, length, queries int) (*series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: 11})
	qs := dataset.Queries(data, dataset.KindWalk, queries, 13)
	return data, qs
}

// newTestServer boots a Server with a fast preload set unless cfg says
// otherwise.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Data == nil {
		cfg.Data, _ = testWorkload(t, 240, 32, 0)
	}
	if cfg.Preload == nil {
		cfg.Preload = []string{} // keep boots cheap; tests hydrate lazily
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// postQuery POSTs a /v1/query body and returns the recorder.
func postQuery(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decodeError asserts the documented error shape and returns its code.
func decodeError(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int) string {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", rec.Code, wantStatus, rec.Body.String())
	}
	var shape struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Status  int    `json:"status"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &shape); err != nil {
		t.Fatalf("error body is not the documented shape: %v (body %s)", err, rec.Body.String())
	}
	if shape.Error.Code == "" || shape.Error.Message == "" || shape.Error.Status != wantStatus {
		t.Fatalf("incomplete error shape: %+v", shape.Error)
	}
	return shape.Error.Code
}

func queryVec(qs *series.Dataset, i int) []float32 {
	return []float32(qs.At(i))
}

func TestQueryAnswersMatchDirectSearch(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 4)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()

	spec, _ := core.LookupMethod("DSTree")
	built, err := spec.Build(s.buildCtx)
	if err != nil {
		t.Fatalf("direct build: %v", err)
	}
	for qi := 0; qi < qs.Size(); qi++ {
		rec := postQuery(t, h, map[string]any{"method": "DSTree", "k": 5, "query": queryVec(qs, qi)})
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d body %s", qi, rec.Code, rec.Body.String())
		}
		var resp struct {
			Answers []struct {
				Neighbors []struct {
					ID   int     `json:"id"`
					Dist float64 `json:"dist"`
				} `json:"neighbors"`
			} `json:"answers"`
			ModelSeconds float64        `json:"model_seconds"`
			CostModel    map[string]any `json:"cost_model"`
			DistCalcs    int64          `json:"dist_calcs"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("query %d: decoding response: %v", qi, err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("query %d: %d answers, want 1", qi, len(resp.Answers))
		}
		want, err := built.Method.Search(core.Query{Series: qs.At(qi), K: 5, Mode: core.ModeExact})
		if err != nil {
			t.Fatalf("direct search: %v", err)
		}
		got := resp.Answers[0].Neighbors
		if len(got) != len(want.Neighbors) {
			t.Fatalf("query %d: %d neighbours, want %d", qi, len(got), len(want.Neighbors))
		}
		for i, nb := range want.Neighbors {
			if got[i].ID != nb.ID {
				t.Fatalf("query %d neighbour %d: id %d, want %d", qi, i, got[i].ID, nb.ID)
			}
		}
		if resp.DistCalcs != want.DistCalcs {
			t.Errorf("query %d: dist_calcs %d, want %d", qi, resp.DistCalcs, want.DistCalcs)
		}
		if resp.CostModel["seek_seconds"] == nil {
			t.Errorf("query %d: response is missing the cost model", qi)
		}
	}
}

func TestSerialAndParallelRequestsAgreeByteForByte(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 8)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()
	vectors := make([][]float32, qs.Size())
	for i := range vectors {
		vectors[i] = queryVec(qs, i)
	}
	var bodies []string
	for _, workers := range []int{1, 4} {
		rec := postQuery(t, h, map[string]any{
			"method": "VA+file", "k": 5, "queries": vectors,
			"workers": workers, "format": "text",
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d body %s", workers, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
			t.Fatalf("workers=%d: content type %q", workers, got)
		}
		bodies = append(bodies, rec.Body.String())
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("serial and workers=4 text answers differ:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
	if !strings.HasPrefix(bodies[0], "query   0:") {
		t.Fatalf("text body does not use the CLI answer-line format: %q", bodies[0])
	}
	if got := strings.Count(bodies[0], "\n"); got != qs.Size() {
		t.Fatalf("text body has %d lines, want %d", got, qs.Size())
	}
}

func TestWarmStartTwoBoots(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 2)
	dir := t.TempDir()
	persistable := core.PersistableMethodNames()
	if len(persistable) < 4 {
		t.Fatalf("expected several persistable methods, got %v", persistable)
	}

	var answers []string
	for boot, wantSource := range []string{"built", "catalog"} {
		var log bytes.Buffer
		s, err := New(Config{Data: data, IndexDir: dir, Log: &log, WarmupWorkers: 2})
		if err != nil {
			t.Fatalf("boot %d: %v", boot, err)
		}
		report := s.WarmupReport()
		if len(report) != len(persistable) {
			t.Fatalf("boot %d: warmed %d methods, want %d (%+v)", boot, len(report), len(persistable), report)
		}
		for _, st := range report {
			if st.Source != wantSource {
				t.Errorf("boot %d: %s hydrated from %q, want %q (err %q)", boot, st.Method, st.Source, wantSource, st.Error)
			}
		}
		wantLine := "catalog miss"
		if boot == 1 {
			wantLine = "catalog hit"
		}
		if !strings.Contains(log.String(), wantLine) {
			t.Errorf("boot %d: log missing %q:\n%s", boot, wantLine, log.String())
		}
		h := s.Handler()
		for _, m := range persistable {
			rec := postQuery(t, h, map[string]any{
				"method": m, "mode": "ng", "nprobe": 8, "k": 5, "query": queryVec(qs, 0), "format": "text",
			})
			if rec.Code != http.StatusOK {
				t.Fatalf("boot %d %s: status %d body %s", boot, m, rec.Code, rec.Body.String())
			}
			answers = append(answers, fmt.Sprintf("%s: %s", m, rec.Body.String()))
		}
	}
	// ADS+ refines its index as it answers queries, so a snapshot loaded on
	// boot 2 (taken at build time on boot 1) is in the same pre-query state
	// the fresh boot-1 index was in: answers must agree method by method.
	half := len(answers) / 2
	for i := 0; i < half; i++ {
		if answers[i] != answers[half+i] {
			t.Errorf("cold and warm boots answered differently:\n  boot1 %s  boot2 %s", answers[i], answers[half+i])
		}
	}
}

func TestErrorPaths(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()
	vec := queryVec(qs, 0)

	t.Run("unknown method", func(t *testing.T) {
		rec := postQuery(t, h, map[string]any{"method": "NoSuchIndex", "k": 3, "query": vec})
		if code := decodeError(t, rec, http.StatusNotFound); code != "unknown_method" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("malformed vector length", func(t *testing.T) {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "query": vec[:7]})
		if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_vector_length" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("batch with one short vector", func(t *testing.T) {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "queries": [][]float32{vec, vec[:3]}})
		if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_vector_length" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("k beyond dataset", func(t *testing.T) {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": data.Size() + 1, "query": vec})
		if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_k" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("no query source", func(t *testing.T) {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3})
		if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_request" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("two query sources", func(t *testing.T) {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "query": vec, "workload_file": "x.bin"})
		if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_request" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("bad mode", func(t *testing.T) {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "mode": "telepathic", "k": 3, "query": vec})
		if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_mode" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("invalid json", func(t *testing.T) {
		req := httptest.NewRequest("POST", "/v1/query", strings.NewReader("{notjson"))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if code := decodeError(t, rec, http.StatusBadRequest); code != "invalid_json" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("workload file disabled by default", func(t *testing.T) {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "workload_file": "/nonexistent.bin"})
		if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_workload_file" {
			t.Fatalf("code = %q", code)
		}
		if !strings.Contains(rec.Body.String(), "disabled") {
			t.Fatalf("disabled workload_file should say so: %s", rec.Body.String())
		}
	})
	t.Run("wrong http method", func(t *testing.T) {
		req := httptest.NewRequest("GET", "/v1/query", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if code := decodeError(t, rec, http.StatusMethodNotAllowed); code != "method_not_allowed" {
			t.Fatalf("code = %q", code)
		}
	})
	t.Run("unknown path", func(t *testing.T) {
		req := httptest.NewRequest("GET", "/v2/query", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if code := decodeError(t, rec, http.StatusNotFound); code != "not_found" {
			t.Fatalf("code = %q", code)
		}
	})
}

func TestWorkloadFileResolution(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 3)
	dir := t.TempDir()
	if err := qs.SaveFile(filepath.Join(dir, "queries.bin")); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Data: data, WorkloadDir: dir})
	h := s.Handler()

	// Relative and (in-directory) absolute references both work and agree.
	var bodies []string
	for _, ref := range []string{"queries.bin", filepath.Join(dir, "queries.bin")} {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "workload_file": ref, "format": "text"})
		if rec.Code != http.StatusOK {
			t.Fatalf("workload_file %q: status %d body %s", ref, rec.Code, rec.Body.String())
		}
		bodies = append(bodies, rec.Body.String())
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("relative and absolute workload refs answered differently")
	}
	if got := strings.Count(bodies[0], "\n"); got != qs.Size() {
		t.Fatalf("workload answered %d queries, want %d", got, qs.Size())
	}

	// Escapes are refused, relative or absolute.
	for _, ref := range []string{"../queries.bin", "/etc/passwd", filepath.Join(dir, "..", "x.bin")} {
		rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "workload_file": ref})
		if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_workload_file" {
			t.Fatalf("escape %q: code = %q", ref, code)
		}
		if !strings.Contains(rec.Body.String(), "escapes") {
			t.Fatalf("escape %q should be named as such: %s", ref, rec.Body.String())
		}
	}

	// A symlink planted inside the directory must not smuggle an outside
	// file past the containment check.
	outside := filepath.Join(t.TempDir(), "outside.bin")
	if err := qs.SaveFile(outside); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(outside, filepath.Join(dir, "link.bin")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "workload_file": "link.bin"})
	if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_workload_file" {
		t.Fatalf("symlink escape: code = %q", code)
	}
	if !strings.Contains(rec.Body.String(), "escapes") {
		t.Fatalf("symlink escape should be named as such: %s", rec.Body.String())
	}

	// A missing file inside the directory is a plain bad_workload_file.
	rec = postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "workload_file": "absent.bin"})
	if code := decodeError(t, rec, http.StatusBadRequest); code != "bad_workload_file" {
		t.Fatalf("missing file: code = %q", code)
	}
}

func TestDefaultKClampsToTinyDataset(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 6, Length: 16, Seed: 3})
	qs := dataset.Queries(data, dataset.KindWalk, 1, 4)
	s := newTestServer(t, Config{Data: data})
	rec := postQuery(t, s.Handler(), map[string]any{"method": "SerialScan", "query": queryVec(qs, 0)})
	if rec.Code != http.StatusOK {
		t.Fatalf("omitted k on a 6-series dataset: %d %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		K int `json:"k"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K != 6 {
		t.Fatalf("default k = %d, want clamp to dataset size 6", resp.K)
	}
}

func TestRequestsAfterShutdownBeginsAreRefused(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()
	vec := queryVec(qs, 0)

	rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "query": vec})
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-shutdown query failed: %d %s", rec.Code, rec.Body.String())
	}
	s.BeginShutdown()
	rec = postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "query": vec})
	if code := decodeError(t, rec, http.StatusServiceUnavailable); code != "shutting_down" {
		t.Fatalf("code = %q", code)
	}
	for _, path := range []string{"/v1/methods", "/v1/datasets"} {
		req := httptest.NewRequest("GET", path, nil)
		r2 := httptest.NewRecorder()
		h.ServeHTTP(r2, req)
		if code := decodeError(t, r2, http.StatusServiceUnavailable); code != "shutting_down" {
			t.Fatalf("%s code = %q", path, code)
		}
	}
	// Health and metrics stay observable during the drain.
	req := httptest.NewRequest("GET", "/healthz", nil)
	r3 := httptest.NewRecorder()
	h.ServeHTTP(r3, req)
	if r3.Code != http.StatusOK || !strings.Contains(r3.Body.String(), "shutting_down") {
		t.Fatalf("healthz during drain: %d %s", r3.Code, r3.Body.String())
	}
}

func TestMethodsDatasetsHealthzMetrics(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data, DatasetPath: "/tmp/walk.bin", Preload: []string{"SerialScan"}})
	h := s.Handler()

	var methods struct {
		Methods []methodInfo `json:"methods"`
	}
	req := httptest.NewRequest("GET", "/v1/methods", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &methods); err != nil {
		t.Fatalf("methods decode: %v", err)
	}
	if len(methods.Methods) != len(core.RegisteredMethods()) {
		t.Fatalf("methods lists %d entries, want %d", len(methods.Methods), len(core.RegisteredMethods()))
	}
	byName := map[string]methodInfo{}
	for _, m := range methods.Methods {
		byName[m.Name] = m
	}
	if !byName["SerialScan"].Loaded {
		t.Errorf("preloaded SerialScan not reported loaded")
	}
	if byName["DSTree"].Loaded {
		t.Errorf("DSTree reported loaded before first use")
	}
	if !byName["DSTree"].Persistable {
		t.Errorf("DSTree not reported persistable")
	}
	caps := strings.Join(byName["DSTree"].Capabilities, ",")
	if !strings.Contains(caps, "delta-epsilon") || !strings.Contains(caps, "disk-resident") {
		t.Errorf("DSTree capabilities incomplete: %v", byName["DSTree"].Capabilities)
	}
	if hnsw := byName["HNSW"]; len(hnsw.Capabilities) != 1 || hnsw.Capabilities[0] != "ng" {
		t.Errorf("HNSW capabilities = %v, want [ng]", hnsw.Capabilities)
	}

	req = httptest.NewRequest("GET", "/v1/datasets", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{"walk.bin", "fingerprint", "seek_seconds", "\"series\": 240"} {
		if !strings.Contains(body, want) {
			t.Errorf("datasets body missing %q:\n%s", want, body)
		}
	}

	postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "query": queryVec(qs, 0)})

	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	for _, want := range []string{"\"status\": \"ok\"", "methods_ready", "uptime_seconds"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("healthz missing %q:\n%s", want, rec.Body.String())
		}
	}

	req = httptest.NewRequest("GET", "/metrics", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	metricsBody := rec.Body.String()
	for _, want := range []string{
		`hydra_query_requests_total{method="SerialScan"} 1`,
		`hydra_queries_total{method="SerialScan"} 1`,
		`hydra_query_latency_seconds_count{method="SerialScan"} 1`,
		"hydra_catalog_misses_total",
		`hydra_dist_calcs_total{method="SerialScan"}`,
		`hydra_io_bytes_read_total{method="SerialScan"}`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
}
