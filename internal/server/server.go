// Package server implements the hydra-serve HTTP query service: the
// long-running front-end that turns the benchmark's build-once /
// query-many workflow into an actual serving process. A Server loads one
// dataset at startup, hydrates its preload methods through the persistent
// index catalog (building and saving on the first boot, loading warm on
// every later boot), and then answers independent JSON query requests
// concurrently — each request fans its queries through eval.ParallelRun,
// relying on the core.Method concurrency contract (Search safe for
// concurrent use) that the rest of the repo pins under the race detector.
//
// Endpoints (documented in docs/API.md): POST /v1/query, GET /v1/methods,
// GET /v1/datasets, GET /healthz, GET /metrics and GET /debug/requests.
// Every error response shares one JSON shape; /metrics is Prometheus text
// exposition; /debug/requests serves the request-trace ring (see
// docs/OBSERVABILITY.md).
package server

import (
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/catalog"
	"hydra/internal/core"
	"hydra/internal/eval"
	"hydra/internal/obs"
	"hydra/internal/router"
	"hydra/internal/series"
	"hydra/internal/shard"
	"hydra/internal/storage"
)

// Config configures a Server. Data is required; everything else has a
// serving-appropriate default.
type Config struct {
	// Data is the dataset the service answers queries over.
	Data *series.Dataset
	// DatasetPath is the file the dataset was loaded from, used for
	// reporting only ("inline" when empty).
	DatasetPath string
	// IndexDir, when non-empty, is the persistent index catalog directory:
	// persistable preload methods are loaded from it when a valid entry
	// exists and saved into it after a fresh build, giving later boots a
	// warm start. Empty disables persistence (every boot builds in memory).
	IndexDir string
	// WorkloadDir, when non-empty, is the one directory query requests may
	// reference server-side workload files from ("workload_file"); paths
	// are resolved against it and must not escape it. Empty disables the
	// workload_file query source entirely — clients must not be able to
	// make the server open arbitrary paths.
	WorkloadDir string
	// Shards splits the dataset into N contiguous shards: every method is
	// served as one index per shard with queries scatter-gathered across
	// them, and catalog entries (and warm boots) become per-shard. 0 and 1
	// serve unsharded.
	Shards int
	// Preload names the methods hydrated at startup. nil selects every
	// persistable method (the warm-startable set); an explicit empty,
	// non-nil slice preloads nothing. Methods outside the preload set are
	// hydrated lazily on their first query.
	Preload []string
	// DefaultWorkers is the per-request query fan-out applied when a
	// request does not set "workers". 0 serves serially; negative uses all
	// cores.
	DefaultWorkers int
	// Model prices raw-data I/O and distance computations in query
	// responses; nil selects storage.DefaultCostModel().
	Model *storage.CostModel
	// HistogramPairs and Seed override the r_δ histogram parameters; zero
	// keeps eval.DefaultSuite()'s values, which is what makes the server's
	// catalog keys (and answers) line up with hydra-query's defaults.
	HistogramPairs int
	Seed           int64
	// WarmupWorkers is the startup hydration fan-out; 0 or 1 hydrates
	// serially, negative uses all cores.
	WarmupWorkers int
	// CacheMaxBytes bounds the in-memory query-result cache; entries are
	// LRU-evicted to stay under it. 0 disables result caching.
	CacheMaxBytes int64
	// MaxInflight caps concurrently executing /v1/query requests; up to
	// 2*MaxInflight more wait in a queue, and everything beyond that is
	// shed with the documented 429 "overloaded" error. It also clamps each
	// request's worker fan-out to GOMAXPROCS/MaxInflight (min 1). 0
	// disables admission control.
	MaxInflight int
	// DisableAuto turns off the adaptive method router; "method":"auto"
	// requests are then refused with the documented 400 error.
	DisableAuto bool
	// Log receives boot and hydration log lines; nil discards them. When
	// Logger is unset, a text-format slog logger is derived from it.
	Log io.Writer
	// Logger, when set, receives all structured log output and takes
	// precedence over Log. cmd/hydra-serve builds it from -log-format.
	Logger *slog.Logger
	// SlowQuery, when positive, logs any /v1/query request whose traced
	// end-to-end latency meets the threshold, with its trace ID.
	SlowQuery time.Duration
	// TraceRing sizes the request-trace ring behind GET /debug/requests.
	// 0 selects the default (256); negative disables tracing entirely,
	// which also removes the per-request trace block and header.
	TraceRing int
}

// defaultTraceRing is the retained-trace count when Config.TraceRing is 0.
const defaultTraceRing = 256

// WarmupStatus reports one method's boot-time hydration, surfaced by
// GET /healthz and the boot log. Shard counters replace the old single
// loaded boolean: a sharded method is ready only once every shard index is
// hydrated, and ShardsFromCatalog says how many of them came in warm.
// Unsharded methods report 1-shard totals.
type WarmupStatus struct {
	Method string `json:"method"`
	// Source is "catalog" when every shard loaded warm, "built" when every
	// shard was built fresh (saved to the catalog when possible), "mixed"
	// when a sharded hydration combined both, or "error".
	Source  string  `json:"source"`
	Seconds float64 `json:"seconds"`
	// ShardsLoaded counts shard indexes ready to serve, of ShardsTotal;
	// ShardsFromCatalog counts the subset that hydrated from the catalog.
	ShardsLoaded      int    `json:"shards_loaded"`
	ShardsFromCatalog int    `json:"shards_from_catalog"`
	ShardsTotal       int    `json:"shards_total"`
	Error             string `json:"error,omitempty"`
}

// hydration is one method's published hydration outcome.
type hydration struct {
	method    core.Method
	fromCache bool // every shard served from the catalog
	// seconds sums per-shard hydration times (load on hits, build
	// otherwise); for unsharded methods it is the single hydration time.
	seconds      float64
	shardsLoaded int // shard indexes ready to serve
	shardsHit    int // shard indexes loaded from the catalog
	shardsTotal  int
	err          error
}

// handle is the per-method hydration slot. hydrateMu serialises the (slow)
// hydration itself; mu guards the result fields and is only ever held for
// field access, never across a build or load — introspection endpoints
// (/healthz, /v1/methods) therefore stay responsive while a lazy build is
// in flight.
type handle struct {
	hydrateMu sync.Mutex
	mu        sync.Mutex
	ready     bool
	hy        hydration
}

// publish installs a hydration outcome (under mu).
func (h *handle) publish(hy hydration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ready {
		return
	}
	h.ready = true
	h.hy = hy
}

// state snapshots the handle (under mu).
func (h *handle) state() (hydration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hy, h.ready
}

// Server is the hydra-serve service state: one dataset, a lazily hydrated
// method table, request metrics, and a shutdown latch. Its HTTP handlers
// (Handler) are safe for concurrent use.
type Server struct {
	data        *series.Dataset
	datasetName string
	datasetPath string
	fingerprint string
	buildCtx    *core.BuildContext
	cat         *catalog.Catalog // nil without IndexDir
	plan        *shard.Plan      // nil when serving unsharded
	workloadDir string           // absolute; empty = workload_file disabled
	model       storage.CostModel
	defWorkers  int
	warmWorkers int
	logger      *slog.Logger
	slowQuery   time.Duration
	ring        *obs.Ring // nil when tracing is disabled

	handles map[string]*handle // one slot per registered method

	// The serve-path performance layer: all three are nil-safe, so a
	// server with caching/routing/admission disabled runs the same handler
	// code path (see internal/router).
	cache *router.Cache
	gate  *router.Gate
	route *router.Router // nil when Config.DisableAuto

	metrics *metrics
	start   time.Time
	down    atomic.Bool
	warmup  []WarmupStatus
}

// New builds a Server over cfg.Data and performs the warm start: every
// preload method is hydrated through the index catalog (when IndexDir is
// set) or built in memory, with per-method failures logged and reported by
// /healthz rather than aborting the boot.
func New(cfg Config) (*Server, error) {
	if cfg.Data == nil || cfg.Data.Size() == 0 {
		return nil, fmt.Errorf("server: config needs a non-empty dataset")
	}
	suite := eval.DefaultSuite()
	if cfg.HistogramPairs > 0 {
		suite.HistogramPairs = cfg.HistogramPairs
	}
	if cfg.Seed != 0 {
		suite.Seed = cfg.Seed
	}
	name := "inline"
	if cfg.DatasetPath != "" {
		name = filepath.Base(cfg.DatasetPath)
	}
	ringSize := cfg.TraceRing
	if ringSize == 0 {
		ringSize = defaultTraceRing
	}
	s := &Server{
		data:        cfg.Data,
		datasetName: name,
		datasetPath: cfg.DatasetPath,
		buildCtx:    eval.NewBuildContext(eval.Workload{Data: cfg.Data}, suite),
		model:       storage.DefaultCostModel(),
		defWorkers:  cfg.DefaultWorkers,
		logger:      cfg.Logger,
		slowQuery:   cfg.SlowQuery,
		ring:        obs.NewRing(ringSize), // nil when ringSize < 0
		handles:     map[string]*handle{},
		cache:       router.NewCache(cfg.CacheMaxBytes),
		gate:        router.NewGate(cfg.MaxInflight, 0, 0),
		metrics:     newMetrics(),
		start:       time.Now(),
	}
	if s.logger == nil {
		if cfg.Log != nil {
			s.logger, _ = obs.NewLogger(cfg.Log, obs.LogText, slog.LevelInfo)
		} else {
			s.logger = obs.Discard()
		}
	}
	if !cfg.DisableAuto {
		// Seed the router's Fig. 9 scenario from the dataset's actual
		// footprint against this machine's RAM, so oversized datasets
		// route to disk-capable methods from the first request.
		s.route = router.New(router.Config{
			Scenario: router.DataScenario(cfg.Data.Bytes(), router.AvailableRAM()),
		})
	}
	if cfg.Model != nil {
		s.model = *cfg.Model
	}
	if cfg.WorkloadDir != "" {
		abs, err := filepath.Abs(cfg.WorkloadDir)
		if err != nil {
			return nil, fmt.Errorf("server: resolving workload dir: %w", err)
		}
		// Resolve symlinks up front so the per-request containment check
		// compares real paths on both sides (e.g. /tmp → /private/tmp).
		if resolved, err := filepath.EvalSymlinks(abs); err == nil {
			abs = resolved
		}
		s.workloadDir = abs
	}
	s.fingerprint = s.buildCtx.DataFingerprint()
	if cfg.Shards > 1 {
		plan, err := shard.PlanFor(s.buildCtx, cfg.Shards)
		if err != nil {
			return nil, err
		}
		s.plan = plan
	}
	if cfg.IndexDir != "" {
		cat, err := catalog.Open(cfg.IndexDir)
		if err != nil {
			return nil, err
		}
		s.cat = cat
	}
	for _, spec := range core.RegisteredMethods() {
		s.handles[spec.Name] = &handle{}
	}
	preload := cfg.Preload
	if preload == nil {
		preload = core.PersistableMethodNames()
	}
	s.warmStart(preload, cfg.WarmupWorkers)
	return s, nil
}

// Logger exposes the server's structured logger so the serving binary can
// share it for its own boot/drain lines.
func (s *Server) Logger() *slog.Logger { return s.logger }

// shardTotal returns the serving shard count (1 when unsharded).
func (s *Server) shardTotal() int {
	if s.plan == nil {
		return 1
	}
	return s.plan.Count()
}

// warmStart hydrates the preload set and records per-method status.
// Unsharded serving fans methods across workers through catalog.Warmup
// (which tolerates a nil catalog by building everything in memory);
// sharded serving hydrates methods in turn, fanning each method's shard
// builds across workers instead. The resolved fan-out is kept for lazy
// hydrations so a first request for a cold sharded method builds its
// shards with the same parallelism a warm start would.
func (s *Server) warmStart(names []string, workers int) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}
	s.warmWorkers = workers
	if len(names) == 0 {
		return
	}
	start := time.Now()
	if s.plan == nil {
		for _, e := range catalog.Warmup(s.cat, names, s.buildCtx, workers) {
			s.warmup = append(s.warmup, s.adoptWarmup(e))
		}
	} else {
		for _, name := range names {
			s.warmup = append(s.warmup, s.hydrateSharded(name, workers, "warm start"))
		}
	}
	ready := 0
	for _, st := range s.warmup {
		switch st.Source {
		case "error":
			s.logger.Error("warm start: "+st.Method+" failed", "method", st.Method, "error", st.Error)
		case "catalog":
			ready++
			if s.plan == nil {
				s.logger.Info("warm start: catalog hit: "+st.Method, "method", st.Method, "load_seconds", st.Seconds)
			}
		default:
			ready++
			if s.plan == nil {
				s.logger.Info("warm start: catalog miss: "+st.Method, "method", st.Method, "build_seconds", st.Seconds)
			}
		}
		if s.plan != nil && st.Source != "error" {
			s.logger.Info("warm start: "+st.Method+" ready",
				"method", st.Method, "shards_loaded", st.ShardsLoaded, "shards_total", st.ShardsTotal,
				"shards_from_catalog", st.ShardsFromCatalog, "seconds", st.Seconds)
		}
	}
	s.logger.Info(fmt.Sprintf("warm start: %d/%d methods ready", ready, len(names)),
		"ready", ready, "requested", len(names), "seconds", time.Since(start).Seconds())
}

// adoptWarmup installs one catalog Warmup outcome (the unsharded path)
// into the method's handle and converts it to a WarmupStatus.
func (s *Server) adoptWarmup(e catalog.WarmupEntry) WarmupStatus {
	h := s.handles[e.Name]
	if h == nil { // unknown method name in the preload list
		return WarmupStatus{Method: e.Name, Source: "error", Error: e.Err.Error(), ShardsTotal: 1}
	}
	if e.Err != nil {
		h.publish(hydration{err: e.Err, shardsTotal: 1})
		return s.statusFor(e.Name)
	}
	hits := 0
	if e.Result.Hit {
		hits = 1
	}
	h.publish(hydration{
		method:       e.Result.Method,
		fromCache:    e.Result.Hit,
		seconds:      e.Result.HydrateSeconds(),
		shardsLoaded: 1,
		shardsHit:    hits,
		shardsTotal:  1,
	})
	if e.Result.SaveErr != nil {
		s.logger.Warn("catalog save failed (index served from memory): "+e.Name,
			"method", e.Name, "error", e.Result.SaveErr.Error())
	}
	// Only catalog-routed hydrations count: a non-persistable method's
	// in-memory build is a pass-through, not a catalog miss. The sharded
	// path applies the same gate, so the two modes' hydra_catalog_*
	// counters stay comparable.
	if spec, ok := core.LookupMethod(e.Name); ok && s.cat != nil && spec.Persistable() {
		s.metrics.recordCatalog(e.Result.Hit)
	}
	return s.statusFor(e.Name)
}

// hydrateSharded builds (or warm-loads) every shard index of one method
// through shard.Build, fanning the shard hydrations across workers, and
// publishes the assembled scatter-gather method. Per-shard catalog
// hit/miss is logged under logPrefix ("warm start" at boot, "hydrate" for
// lazy query-time hydration, so boot-log greps never see lazy builds as
// warm-start rebuilds) and counted in the per-shard metrics.
func (s *Server) hydrateSharded(name string, workers int, logPrefix string) WarmupStatus {
	h := s.handles[name]
	spec, ok := core.LookupMethod(name)
	if h == nil || !ok {
		err := fmt.Errorf("server: unknown method %q", name)
		if h != nil {
			h.publish(hydration{err: err, shardsTotal: s.shardTotal()})
			return s.statusFor(name)
		}
		return WarmupStatus{Method: name, Source: "error", Error: err.Error(), ShardsTotal: s.shardTotal()}
	}
	m, builds, err := shard.Build(spec, s.buildCtx, s.plan, shard.BuildOptions{Catalog: s.cat, Workers: workers})
	if err != nil {
		h.publish(hydration{err: err, shardsTotal: s.shardTotal()})
		return s.statusFor(name)
	}
	hits := 0
	var seconds float64
	for _, sb := range builds {
		seconds += sb.Seconds
		label := s.plan.Label(sb.Shard)
		if sb.Hit {
			hits++
			s.logger.Info(logPrefix+": catalog hit: "+name+" shard "+label,
				"method", name, "shard", label, "load_seconds", sb.Seconds)
		} else {
			s.logger.Info(logPrefix+": catalog miss: "+name+" shard "+label,
				"method", name, "shard", label, "build_seconds", sb.Seconds)
		}
		if sb.SaveErr != nil {
			s.logger.Warn("catalog save failed (index served from memory): "+name+" shard "+label,
				"method", name, "shard", label, "error", sb.SaveErr.Error())
		}
		if s.cat != nil && spec.Persistable() {
			s.metrics.recordCatalog(sb.Hit)
			s.metrics.recordShardCatalog(name, sb.Shard, sb.Hit)
		}
	}
	h.publish(hydration{
		method:       m,
		fromCache:    s.cat != nil && hits == len(builds),
		seconds:      seconds,
		shardsLoaded: len(builds),
		shardsHit:    hits,
		shardsTotal:  len(builds),
	})
	return s.statusFor(name)
}

// statusFor summarises a hydrated handle.
func (s *Server) statusFor(name string) WarmupStatus {
	hy, _ := s.handles[name].state()
	st := WarmupStatus{
		Method:            name,
		Seconds:           hy.seconds,
		ShardsLoaded:      hy.shardsLoaded,
		ShardsFromCatalog: hy.shardsHit,
		ShardsTotal:       hy.shardsTotal,
	}
	switch {
	case hy.err != nil:
		st.Source = "error"
		st.Error = hy.err.Error()
	case hy.shardsHit == hy.shardsTotal && hy.fromCache:
		st.Source = "catalog"
	case hy.shardsHit > 0:
		st.Source = "mixed"
	default:
		st.Source = "built"
	}
	return st
}

// ensure hydrates the named method if needed and returns its permanent
// hydration error, if any. Safe for concurrent use; concurrent callers of
// one cold method block on a single hydration (on hydrateMu, never on the
// state mutex the introspection endpoints read through). Lazy hydration is
// the same path the boot warm start uses (catalog.Warmup unsharded,
// shard.Build sharded), so the two cannot drift in accounting.
func (s *Server) ensure(name string) error {
	h := s.handles[name]
	if h == nil {
		return fmt.Errorf("server: unknown method %q", name)
	}
	if hy, ready := h.state(); ready {
		return hy.err
	}
	h.hydrateMu.Lock()
	defer h.hydrateMu.Unlock()
	if hy, ready := h.state(); ready { // hydrated while we waited
		return hy.err
	}
	if s.plan != nil {
		s.hydrateSharded(name, s.warmWorkers, "hydrate")
	} else {
		s.adoptWarmup(catalog.Warmup(s.cat, []string{name}, s.buildCtx, 1)[0])
	}
	hy, _ := h.state()
	return hy.err
}

// methodFor returns the hydrated method, hydrating on first use.
func (s *Server) methodFor(name string) (core.Method, bool, error) {
	if err := s.ensure(name); err != nil {
		return nil, false, err
	}
	hy, _ := s.handles[name].state()
	return hy.method, hy.fromCache, nil
}

// WarmupReport returns the boot-time hydration statuses in preload order.
func (s *Server) WarmupReport() []WarmupStatus {
	out := make([]WarmupStatus, len(s.warmup))
	copy(out, s.warmup)
	return out
}

// BeginShutdown flips the server into draining mode: every subsequent
// query/introspection request is refused with the documented 503
// "shutting_down" error while /healthz and /metrics keep answering so
// orchestrators can watch the drain. The HTTP listener itself is closed by
// the caller (cmd/hydra-serve pairs this with http.Server.Shutdown).
func (s *Server) BeginShutdown() { s.down.Store(true) }

// ShuttingDown reports whether BeginShutdown has been called.
func (s *Server) ShuttingDown() bool { return s.down.Load() }
