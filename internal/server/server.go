// Package server implements the hydra-serve HTTP query service: the
// long-running front-end that turns the benchmark's build-once /
// query-many workflow into an actual serving process. A Server loads one
// dataset at startup, hydrates its preload methods through the persistent
// index catalog (building and saving on the first boot, loading warm on
// every later boot), and then answers independent JSON query requests
// concurrently — each request fans its queries through eval.ParallelRun,
// relying on the core.Method concurrency contract (Search safe for
// concurrent use) that the rest of the repo pins under the race detector.
//
// Endpoints (documented in docs/API.md): POST /v1/query, GET /v1/methods,
// GET /v1/datasets, GET /healthz and GET /metrics. Every error response
// shares one JSON shape; /metrics is Prometheus text exposition.
package server

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/catalog"
	"hydra/internal/core"
	"hydra/internal/eval"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// Config configures a Server. Data is required; everything else has a
// serving-appropriate default.
type Config struct {
	// Data is the dataset the service answers queries over.
	Data *series.Dataset
	// DatasetPath is the file the dataset was loaded from, used for
	// reporting only ("inline" when empty).
	DatasetPath string
	// IndexDir, when non-empty, is the persistent index catalog directory:
	// persistable preload methods are loaded from it when a valid entry
	// exists and saved into it after a fresh build, giving later boots a
	// warm start. Empty disables persistence (every boot builds in memory).
	IndexDir string
	// WorkloadDir, when non-empty, is the one directory query requests may
	// reference server-side workload files from ("workload_file"); paths
	// are resolved against it and must not escape it. Empty disables the
	// workload_file query source entirely — clients must not be able to
	// make the server open arbitrary paths.
	WorkloadDir string
	// Preload names the methods hydrated at startup. nil selects every
	// persistable method (the warm-startable set); an explicit empty,
	// non-nil slice preloads nothing. Methods outside the preload set are
	// hydrated lazily on their first query.
	Preload []string
	// DefaultWorkers is the per-request query fan-out applied when a
	// request does not set "workers". 0 serves serially; negative uses all
	// cores.
	DefaultWorkers int
	// Model prices raw-data I/O and distance computations in query
	// responses; nil selects storage.DefaultCostModel().
	Model *storage.CostModel
	// HistogramPairs and Seed override the r_δ histogram parameters; zero
	// keeps eval.DefaultSuite()'s values, which is what makes the server's
	// catalog keys (and answers) line up with hydra-query's defaults.
	HistogramPairs int
	Seed           int64
	// WarmupWorkers is the startup hydration fan-out; 0 or 1 hydrates
	// serially, negative uses all cores.
	WarmupWorkers int
	// Log receives boot and hydration log lines; nil discards them.
	Log io.Writer
}

// WarmupStatus reports one method's boot-time hydration, surfaced by
// GET /healthz and the boot log.
type WarmupStatus struct {
	Method string `json:"method"`
	// Source is "catalog" for a warm load, "built" for a fresh build
	// (saved to the catalog when possible), or "error".
	Source  string  `json:"source"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

// handle is the per-method hydration slot. hydrateMu serialises the (slow)
// hydration itself; mu guards the result fields and is only ever held for
// field access, never across a build or load — introspection endpoints
// (/healthz, /v1/methods) therefore stay responsive while a lazy build is
// in flight.
type handle struct {
	hydrateMu sync.Mutex
	mu        sync.Mutex
	ready     bool
	method    core.Method
	fromCache bool
	// hydrateSeconds is the load time for a catalog hit, the build time
	// otherwise.
	hydrateSeconds float64
	err            error
}

// publish installs a hydration outcome (under mu).
func (h *handle) publish(m core.Method, fromCache bool, seconds float64, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ready {
		return
	}
	h.ready = true
	h.method = m
	h.fromCache = fromCache
	h.hydrateSeconds = seconds
	h.err = err
}

// state snapshots the handle (under mu).
func (h *handle) state() (ready bool, m core.Method, fromCache bool, seconds float64, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.method, h.fromCache, h.hydrateSeconds, h.err
}

// Server is the hydra-serve service state: one dataset, a lazily hydrated
// method table, request metrics, and a shutdown latch. Its HTTP handlers
// (Handler) are safe for concurrent use.
type Server struct {
	data        *series.Dataset
	datasetName string
	datasetPath string
	fingerprint string
	buildCtx    *core.BuildContext
	cat         *catalog.Catalog // nil without IndexDir
	workloadDir string           // absolute; empty = workload_file disabled
	model       storage.CostModel
	defWorkers  int
	log         io.Writer
	logMu       sync.Mutex

	handles map[string]*handle // one slot per registered method

	metrics *metrics
	start   time.Time
	down    atomic.Bool
	warmup  []WarmupStatus
}

// New builds a Server over cfg.Data and performs the warm start: every
// preload method is hydrated through the index catalog (when IndexDir is
// set) or built in memory, with per-method failures logged and reported by
// /healthz rather than aborting the boot.
func New(cfg Config) (*Server, error) {
	if cfg.Data == nil || cfg.Data.Size() == 0 {
		return nil, fmt.Errorf("server: config needs a non-empty dataset")
	}
	suite := eval.DefaultSuite()
	if cfg.HistogramPairs > 0 {
		suite.HistogramPairs = cfg.HistogramPairs
	}
	if cfg.Seed != 0 {
		suite.Seed = cfg.Seed
	}
	name := "inline"
	if cfg.DatasetPath != "" {
		name = filepath.Base(cfg.DatasetPath)
	}
	s := &Server{
		data:        cfg.Data,
		datasetName: name,
		datasetPath: cfg.DatasetPath,
		buildCtx:    eval.NewBuildContext(eval.Workload{Data: cfg.Data}, suite),
		model:       storage.DefaultCostModel(),
		defWorkers:  cfg.DefaultWorkers,
		log:         cfg.Log,
		handles:     map[string]*handle{},
		metrics:     newMetrics(),
		start:       time.Now(),
	}
	if cfg.Model != nil {
		s.model = *cfg.Model
	}
	if s.log == nil {
		s.log = io.Discard
	}
	if cfg.WorkloadDir != "" {
		abs, err := filepath.Abs(cfg.WorkloadDir)
		if err != nil {
			return nil, fmt.Errorf("server: resolving workload dir: %w", err)
		}
		// Resolve symlinks up front so the per-request containment check
		// compares real paths on both sides (e.g. /tmp → /private/tmp).
		if resolved, err := filepath.EvalSymlinks(abs); err == nil {
			abs = resolved
		}
		s.workloadDir = abs
	}
	s.fingerprint = s.buildCtx.DataFingerprint()
	if cfg.IndexDir != "" {
		cat, err := catalog.Open(cfg.IndexDir)
		if err != nil {
			return nil, err
		}
		s.cat = cat
	}
	for _, spec := range core.RegisteredMethods() {
		s.handles[spec.Name] = &handle{}
	}
	preload := cfg.Preload
	if preload == nil {
		preload = core.PersistableMethodNames()
	}
	s.warmStart(preload, cfg.WarmupWorkers)
	return s, nil
}

// logf serialises log lines across warmup workers and request handlers.
func (s *Server) logf(format string, args ...any) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.log, format, args...)
}

// warmStart hydrates the preload set through catalog.Warmup (which
// tolerates a nil catalog by building everything in memory) and records
// per-method status.
func (s *Server) warmStart(names []string, workers int) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}
	if len(names) == 0 {
		return
	}
	start := time.Now()
	for _, e := range catalog.Warmup(s.cat, names, s.buildCtx, workers) {
		s.warmup = append(s.warmup, s.adoptWarmup(e))
	}
	ready := 0
	for _, st := range s.warmup {
		switch st.Source {
		case "error":
			s.logf("warm start: %s failed: %s\n", st.Method, st.Error)
		case "catalog":
			ready++
			s.logf("warm start: catalog hit: %s (load %.3fs)\n", st.Method, st.Seconds)
		default:
			ready++
			s.logf("warm start: catalog miss: %s (build %.3fs)\n", st.Method, st.Seconds)
		}
	}
	s.logf("warm start: %d/%d methods ready in %.3fs\n", ready, len(names), time.Since(start).Seconds())
}

// adoptWarmup installs one catalog Warmup outcome into the method's handle
// and converts it to a WarmupStatus.
func (s *Server) adoptWarmup(e catalog.WarmupEntry) WarmupStatus {
	h := s.handles[e.Name]
	if h == nil { // unknown method name in the preload list
		return WarmupStatus{Method: e.Name, Source: "error", Error: e.Err.Error()}
	}
	if e.Err != nil {
		h.publish(nil, false, 0, e.Err)
		return WarmupStatus{Method: e.Name, Source: "error", Error: e.Err.Error()}
	}
	h.publish(e.Result.Method, e.Result.Hit, e.Result.HydrateSeconds(), nil)
	if e.Result.SaveErr != nil {
		s.logf("catalog save failed (index served from memory): %s: %v\n", e.Name, e.Result.SaveErr)
	}
	if s.cat != nil {
		s.metrics.recordCatalog(e.Result.Hit)
	}
	return s.statusFor(e.Name)
}

// statusFor summarises a hydrated handle.
func (s *Server) statusFor(name string) WarmupStatus {
	_, _, fromCache, seconds, err := s.handles[name].state()
	if err != nil {
		return WarmupStatus{Method: name, Source: "error", Error: err.Error()}
	}
	if fromCache {
		return WarmupStatus{Method: name, Source: "catalog", Seconds: seconds}
	}
	return WarmupStatus{Method: name, Source: "built", Seconds: seconds}
}

// ensure hydrates the named method if needed and returns its permanent
// hydration error, if any. Safe for concurrent use; concurrent callers of
// one cold method block on a single hydration (on hydrateMu, never on the
// state mutex the introspection endpoints read through). Lazy hydration is
// the same catalog.Warmup + adoptWarmup path the boot warm start uses, so
// the two cannot drift in accounting.
func (s *Server) ensure(name string) error {
	h := s.handles[name]
	if h == nil {
		return fmt.Errorf("server: unknown method %q", name)
	}
	if ready, _, _, _, err := h.state(); ready {
		return err
	}
	h.hydrateMu.Lock()
	defer h.hydrateMu.Unlock()
	if ready, _, _, _, err := h.state(); ready { // hydrated while we waited
		return err
	}
	s.adoptWarmup(catalog.Warmup(s.cat, []string{name}, s.buildCtx, 1)[0])
	_, _, _, _, err := h.state()
	return err
}

// methodFor returns the hydrated method, hydrating on first use.
func (s *Server) methodFor(name string) (core.Method, bool, error) {
	if err := s.ensure(name); err != nil {
		return nil, false, err
	}
	_, m, fromCache, _, _ := s.handles[name].state()
	return m, fromCache, nil
}

// WarmupReport returns the boot-time hydration statuses in preload order.
func (s *Server) WarmupReport() []WarmupStatus {
	out := make([]WarmupStatus, len(s.warmup))
	copy(out, s.warmup)
	return out
}

// BeginShutdown flips the server into draining mode: every subsequent
// query/introspection request is refused with the documented 503
// "shutting_down" error while /healthz and /metrics keep answering so
// orchestrators can watch the drain. The HTTP listener itself is closed by
// the caller (cmd/hydra-serve pairs this with http.Server.Shutdown).
func (s *Server) BeginShutdown() { s.down.Store(true) }

// ShuttingDown reports whether BeginShutdown has been called.
func (s *Server) ShuttingDown() bool { return s.down.Load() }
