package server

import (
	"encoding/json"
	"net/http"
	"os"
	"testing"
)

// serveBenchEntry is one row of BENCH_servecache.json: a serve-path request
// shape measured end to end through the HTTP handler, with each variant row
// carrying its speedup over the named baseline row.
type serveBenchEntry struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	Baseline string  `json:"baseline,omitempty"`
	// Speedup is the baseline row's ns/op divided by this row's; 1.0 on
	// baseline rows by construction.
	Speedup float64 `json:"speedup"`
}

// TestWriteServeCacheBenchJSON measures the serve path with and without the
// result cache, and "method":"auto" against the fixed method it resolves
// to, writing BENCH_servecache.json to the path in
// HYDRA_BENCH_SERVECACHE_JSON. Skipped when the variable is unset so
// `go test ./...` stays fast; `make bench-json` runs it for real.
func TestWriteServeCacheBenchJSON(t *testing.T) {
	path := os.Getenv("HYDRA_BENCH_SERVECACHE_JSON")
	if path == "" {
		t.Skip("HYDRA_BENCH_SERVECACHE_JSON not set; run via `make bench-json`")
	}

	// The dataset is sized so the uncached index search dominates request
	// decode/encode: the cache-hit speedup is meant to measure avoided
	// search work, not JSON plumbing.
	data, qs := testWorkload(t, 24000, 128, 8)
	vecs := make([][]float32, 8)
	for i := range vecs {
		vecs[i] = queryVec(qs, i)
	}
	body := map[string]any{"method": "DSTree", "k": 10, "queries": vecs}
	autoBody := map[string]any{"method": "auto", "k": 10, "queries": vecs}

	uncachedSrv := newTestServer(t, Config{Data: data})
	cachedSrv := newTestServer(t, Config{Data: data, CacheMaxBytes: 64 << 20})
	uncached, cached := uncachedSrv.Handler(), cachedSrv.Handler()

	post := func(h http.Handler, b map[string]any) {
		if rec := postQuery(t, h, b); rec.Code != http.StatusOK {
			t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
		}
	}
	measure := func(h http.Handler, b map[string]any) float64 {
		post(h, b) // hydrate the index (and prime the cache when enabled)
		r := testing.Benchmark(func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				post(h, b)
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}

	var entries []serveBenchEntry
	record := func(name string, ns float64, baseline string, baseNs float64) {
		e := serveBenchEntry{Name: name, NsPerOp: ns, Baseline: baseline, Speedup: 1}
		if baseline != "" && ns > 0 {
			e.Speedup = baseNs / ns
		}
		entries = append(entries, e)
		t.Logf("%s: %.0f ns/op (%.2fx)", name, ns, e.Speedup)
	}

	coldNs := measure(uncached, body)
	record("serve/DSTree-exact/uncached", coldNs, "", 0)
	hitNs := measure(cached, body)
	record("serve/DSTree-exact/cache-hit", hitNs, "serve/DSTree-exact/uncached", coldNs)

	// Auto routing overhead: same request through the router (which
	// resolves to DSTree on this exact workload) vs naming the method.
	fixedNs := measure(uncached, body)
	record("serve/fixed-exact", fixedNs, "", 0)
	autoNs := measure(uncached, autoBody)
	record("serve/auto-exact", autoNs, "serve/fixed-exact", fixedNs)

	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d entries to %s", len(entries), path)
}
