package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"hydra/internal/core"
)

// TestShardedWarmStartTwoBoots pins the sharded build-once/query-many
// contract end to end: the first boot of a 4-shard server builds and saves
// one snapshot per (shard, persistable method); the second boot loads
// every shard snapshot from the catalog with zero rebuilds, reports full
// per-shard load state on /healthz and /v1/methods, and answers
// identically to the first boot.
func TestShardedWarmStartTwoBoots(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 2)
	dir := t.TempDir()
	persistable := core.PersistableMethodNames()
	if len(persistable) < 5 {
		t.Fatalf("expected several persistable methods, got %v", persistable)
	}

	var answers []string
	for boot, wantSource := range []string{"built", "catalog"} {
		var log bytes.Buffer
		s, err := New(Config{Data: data, IndexDir: dir, Shards: 4, Log: &log, WarmupWorkers: 2})
		if err != nil {
			t.Fatalf("boot %d: %v", boot, err)
		}
		for _, st := range s.WarmupReport() {
			if st.Source != wantSource {
				t.Errorf("boot %d: %s hydrated from %q, want %q (err %q)", boot, st.Method, st.Source, wantSource, st.Error)
			}
			if st.ShardsLoaded != 4 || st.ShardsTotal != 4 {
				t.Errorf("boot %d: %s loaded %d/%d shards, want 4/4", boot, st.Method, st.ShardsLoaded, st.ShardsTotal)
			}
			wantHits := 0
			if boot == 1 {
				wantHits = 4
			}
			if st.ShardsFromCatalog != wantHits {
				t.Errorf("boot %d: %s hydrated %d shards from catalog, want %d", boot, st.Method, st.ShardsFromCatalog, wantHits)
			}
		}
		if boot == 1 && strings.Contains(log.String(), "catalog miss") {
			t.Errorf("boot 1 rebuilt shard indexes:\n%s", log.String())
		}
		h := s.Handler()
		for _, m := range persistable {
			rec := postQuery(t, h, map[string]any{
				"method": m, "mode": "ng", "nprobe": 8, "k": 5, "query": queryVec(qs, 0), "format": "text",
			})
			if rec.Code != 200 {
				t.Fatalf("boot %d %s: status %d body %s", boot, m, rec.Code, rec.Body.String())
			}
			answers = append(answers, m+": "+rec.Body.String())
		}
	}
	half := len(answers) / 2
	for i := 0; i < half; i++ {
		if answers[i] != answers[half+i] {
			t.Errorf("cold and warm sharded boots answered differently:\n  boot1 %s  boot2 %s", answers[i], answers[half+i])
		}
	}
}

// TestShardedIntrospection pins the per-shard load state surfaced by
// /healthz and /v1/methods, including lazy hydration: before the first
// query a non-preloaded method reports 0/N shards, afterwards N/N.
func TestShardedIntrospection(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data, Shards: 3})
	h := s.Handler()

	get := func(path string) map[string]any {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: %d %s", path, rec.Code, rec.Body.String())
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}
	methodRow := func(name string) map[string]any {
		for _, raw := range get("/v1/methods")["methods"].([]any) {
			row := raw.(map[string]any)
			if row["name"] == name {
				return row
			}
		}
		t.Fatalf("method %s missing from /v1/methods", name)
		return nil
	}

	if got := get("/healthz")["shards"].(float64); got != 3 {
		t.Errorf("/healthz shards = %v, want 3", got)
	}
	before := methodRow("DSTree")
	if before["loaded"].(bool) || before["shards_loaded"].(float64) != 0 || before["shards_total"].(float64) != 3 {
		t.Errorf("cold method row: %+v", before)
	}
	rec := postQuery(t, h, map[string]any{"method": "DSTree", "k": 3, "query": queryVec(qs, 0)})
	if rec.Code != 200 {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	after := methodRow("DSTree")
	if !after["loaded"].(bool) || after["shards_loaded"].(float64) != 3 || after["shards_total"].(float64) != 3 {
		t.Errorf("hydrated method row: %+v", after)
	}

	// The per-shard usage families appear on /metrics once a sharded
	// method has answered queries.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`hydra_shard_queries_total{method="DSTree",shard="0"} 1`,
		`hydra_shard_queries_total{method="DSTree",shard="2"} 1`,
		`hydra_shard_io_bytes_read_total{method="DSTree",shard="1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}
