package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrapeMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}

// requireMetric asserts an exact `name value` or `name{labels} value` line.
func requireMetric(t *testing.T, body, line string) {
	t.Helper()
	for _, l := range strings.Split(body, "\n") {
		if l == line {
			return
		}
	}
	t.Fatalf("metrics missing line %q in:\n%s", line, body)
}

// TestMetricsScrapeFormat drives cache misses/hits, router decisions and a
// metrics scrape through the handler, then checks both the serve-path
// counter values and that the whole body is well-formed Prometheus text
// exposition: every sample line's family has a # HELP and # TYPE line
// before it, and every line parses as comment or `name{labels} value`.
func TestMetricsScrapeFormat(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 2)
	s := newTestServer(t, Config{Data: data, CacheMaxBytes: 1 << 20})
	h := s.Handler()

	// Two misses, one hit, and two auto decisions (exact → DSTree twice).
	body1 := map[string]any{"method": "SerialScan", "k": 3, "query": queryVec(qs, 0)}
	body2 := map[string]any{"method": "auto", "k": 3, "query": queryVec(qs, 1)}
	for _, b := range []map[string]any{body1, body1, body2, body2} {
		if rec := postQuery(t, h, b); rec.Code != http.StatusOK {
			t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
		}
	}

	body := scrapeMetrics(t, h)
	// body2 repeats route through the cache ("auto" is part of the key), so
	// the second one is a hit and only the first is a router decision...
	requireMetric(t, body, "hydra_cache_hits_total 2")
	requireMetric(t, body, "hydra_cache_misses_total 2")
	requireMetric(t, body, "hydra_cache_evictions_total 0")
	requireMetric(t, body, "hydra_cache_entries 2")
	requireMetric(t, body, "hydra_requests_shed_total 0")
	requireMetric(t, body, `hydra_router_decisions_total{method="DSTree"} 1`)
	// ...and the cached auto replay must not re-count requests or queries.
	requireMetric(t, body, `hydra_query_requests_total{method="DSTree"} 1`)
	requireMetric(t, body, `hydra_query_requests_total{method="SerialScan"} 1`)

	validatePromText(t, body)
}

// validatePromText is a structural check of the Prometheus text format:
// lines are either comments or samples, each sample's metric name resolves
// to a family that was announced with # HELP and # TYPE beforehand, and
// the value field is present.
func validatePromText(t *testing.T, body string) {
	t.Helper()
	announced := map[string]bool{} // family name -> saw HELP and TYPE
	helped := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line inside exposition", i+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			helped[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			name := fields[2]
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", i+1, fields[3])
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE for %s before its HELP", i+1, name)
			}
			announced[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment form: %q", i+1, line)
		}
		name := line
		if cut := strings.IndexAny(name, "{ "); cut >= 0 {
			name = name[:cut]
		}
		// Histogram samples hang off the family name.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && announced[base] {
				family = base
			}
		}
		if !announced[family] {
			t.Fatalf("line %d: sample %q has no preceding # HELP/# TYPE", i+1, line)
		}
		rest := line[len(name):]
		if open := strings.Index(rest, "{"); open >= 0 {
			close := strings.LastIndex(rest, "}")
			if close < open {
				t.Fatalf("line %d: unbalanced label braces: %q", i+1, line)
			}
			rest = rest[close+1:]
		}
		var value float64
		if _, err := fmt.Sscanf(strings.TrimSpace(rest), "%g", &value); err != nil {
			t.Fatalf("line %d: sample %q has no numeric value: %v", i+1, line, err)
		}
	}
	for _, family := range []string{
		"hydra_cache_hits_total", "hydra_cache_misses_total",
		"hydra_cache_evictions_total", "hydra_cache_bytes",
		"hydra_cache_entries", "hydra_requests_shed_total",
		"hydra_router_decisions_total",
	} {
		if !announced[family] {
			t.Fatalf("family %s missing from exposition", family)
		}
	}
}

// TestLatencyHistogramBuckets pins the exact `le` boundary sequence of
// hydra_query_latency_seconds. The sub-millisecond buckets are load-bearing:
// cache hits and small approximate queries finish in well under 1ms, and
// without them a server-side p99 at the tail the loadgen harness observes
// would be unresolvable (everything below 1ms collapses into one bin).
// Changing these boundaries silently breaks dashboards and recorded rules,
// so the full sequence is asserted, not just a sample.
func TestLatencyHistogramBuckets(t *testing.T) {
	data, qs := testWorkload(t, 240, 32, 1)
	s := newTestServer(t, Config{Data: data})
	h := s.Handler()
	if rec := postQuery(t, h, map[string]any{"method": "SerialScan", "k": 3, "query": queryVec(qs, 0)}); rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}

	body := scrapeMetrics(t, h)
	want := []string{
		"0.0001", "0.00025", "0.0005",
		"0.001", "0.0025", "0.005", "0.01", "0.025", "0.05",
		"0.1", "0.25", "0.5", "1", "2.5", "5", "10", "+Inf",
	}
	var got []string
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `hydra_query_latency_seconds_bucket{method="SerialScan",le=`) {
			continue
		}
		start := strings.Index(line, `le="`) + len(`le="`)
		end := strings.Index(line[start:], `"`)
		got = append(got, line[start:start+end])
	}
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d boundary %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}

	// The cumulative counts must be monotone and end at the request count.
	var prev, last int64 = -1, 0
	for _, le := range want {
		line := fmt.Sprintf(`hydra_query_latency_seconds_bucket{method="SerialScan",le=%q} `, le)
		for _, l := range strings.Split(body, "\n") {
			if strings.HasPrefix(l, line) {
				var v int64
				if _, err := fmt.Sscanf(l[len(line):], "%d", &v); err != nil {
					t.Fatalf("bucket le=%s: %v", le, err)
				}
				if v < prev {
					t.Fatalf("bucket le=%s count %d below previous %d", le, v, prev)
				}
				prev, last = v, v
			}
		}
	}
	if last != 1 {
		t.Fatalf("+Inf bucket %d, want 1", last)
	}
}
