// Package hnsw implements the Hierarchical Navigable Small World graph
// (Malkov & Yashunin) for ng-approximate nearest neighbour search, plus a
// single-layer variant with a fixed medoid entry point that stands in for
// NSG (both NSG and HNSW's neighbour-selection use the same relative-
// neighbourhood pruning rule; the hierarchy is what distinguishes HNSW).
//
// HNSW is an in-memory method: it keeps all raw vectors resident and does
// not touch the storage accountant, matching the paper's setup where
// "HNSW, QALSH and FLANN store all raw data in-memory".
package hnsw

import (
	"fmt"
	"math"
	"math/rand"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/series"
)

// Config controls graph construction.
type Config struct {
	// M is the number of bi-directional links created per node per layer
	// (paper tuning: 4 for Rand25GB, 16 for Deep/Sift25GB).
	M int
	// EFConstruction is the candidate-pool size during insertion
	// (paper tuning: 500).
	EFConstruction int
	// EFSearch is the default candidate-pool size during search when the
	// query does not override it via NProbe.
	EFSearch int
	// Flat builds a single-layer graph with a medoid entry point (the
	// NSG-style variant).
	Flat bool
	// Seed drives the level generator.
	Seed int64
}

// DefaultConfig mirrors the paper's mid-size tuning.
func DefaultConfig() Config {
	return Config{M: 16, EFConstruction: 128, EFSearch: 64, Seed: 1}
}

func (c Config) validate() error {
	if c.M < 2 {
		return fmt.Errorf("hnsw: M %d < 2", c.M)
	}
	if c.EFConstruction < c.M {
		return fmt.Errorf("hnsw: efConstruction %d < M %d", c.EFConstruction, c.M)
	}
	if c.EFSearch < 1 {
		return fmt.Errorf("hnsw: efSearch %d < 1", c.EFSearch)
	}
	return nil
}

// Graph is an HNSW index.
type Graph struct {
	data  *series.Dataset
	cfg   Config
	mL    float64
	rng   *rand.Rand
	entry int
	top   int       // highest layer in use
	links [][][]int // links[level][node] = neighbour ids (nil above node's level)
	level []int     // level of each node
}

// Build constructs the graph over the dataset.
func Build(data *series.Dataset, cfg Config) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Graph{
		data:  data,
		cfg:   cfg,
		mL:    1 / math.Log(float64(cfg.M)),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		entry: -1,
		top:   -1,
	}
	g.level = make([]int, data.Size())
	for i := 0; i < data.Size(); i++ {
		g.insert(i)
	}
	return g, nil
}

// Name implements core.Method.
func (g *Graph) Name() string {
	if g.cfg.Flat {
		return "NSG"
	}
	return "HNSW"
}

// Size returns the number of indexed series.
func (g *Graph) Size() int { return g.data.Size() }

// Footprint implements core.Method: adjacency lists plus the resident raw
// data (HNSW keeps the vectors in memory).
func (g *Graph) Footprint() int64 {
	var total int64
	for _, layer := range g.links {
		for _, nbrs := range layer {
			total += int64(len(nbrs)) * 8
		}
	}
	return total + g.data.Bytes()
}

func (g *Graph) dist(a, b int) float64 {
	return kernel.SquaredDist(g.data.At(a), g.data.At(b))
}

// distTo computes the query-to-node distance, tallying it into the caller's
// counter. Counters are per-call state (never fields on the shared graph)
// so concurrent searches do not race.
func (g *Graph) distTo(q series.Series, id int, calcs *int64) float64 {
	*calcs++
	return kernel.SquaredDist(q, g.data.At(id))
}

func (g *Graph) randomLevel() int {
	if g.cfg.Flat {
		return 0
	}
	return int(-math.Log(g.rng.Float64()) * g.mL)
}

// ensureLayers grows the layer slices to cover level l.
func (g *Graph) ensureLayers(l int) {
	for len(g.links) <= l {
		g.links = append(g.links, make([][]int, g.data.Size()))
	}
}

// maxDegree returns the degree cap at a layer.
func (g *Graph) maxDegree(layer int) int {
	if layer == 0 {
		return 2 * g.cfg.M
	}
	return g.cfg.M
}

type heapItem struct {
	id int
	d  float64
}

// minHeap / maxHeap over heapItem.
type itemHeap struct {
	items []heapItem
	max   bool
}

func (h *itemHeap) less(i, j int) bool {
	if h.max {
		return h.items[i].d > h.items[j].d
	}
	return h.items[i].d < h.items[j].d
}

func (h *itemHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.less(p, i) || !h.less(i, p) {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *itemHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.items) && h.less(l, best) {
			best = l
		}
		if r < len(h.items) && h.less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
	return top
}

func (h *itemHeap) peek() heapItem { return h.items[0] }
func (h *itemHeap) len() int       { return len(h.items) }

// searchLayer runs the beam search at one layer from the given entry
// points, returning up to ef closest candidates (squared distances).
func (g *Graph) searchLayer(q series.Series, entries []heapItem, ef, layer int, calcs *int64) []heapItem {
	visited := make(map[int]struct{}, ef*4)
	candidates := &itemHeap{} // min-heap by distance
	best := &itemHeap{max: true}
	for _, e := range entries {
		if _, ok := visited[e.id]; ok {
			continue
		}
		visited[e.id] = struct{}{}
		candidates.push(e)
		best.push(e)
	}
	for best.len() > ef {
		best.pop()
	}
	for candidates.len() > 0 {
		c := candidates.pop()
		if best.len() >= ef && c.d > best.peek().d {
			break
		}
		for _, nb := range g.links[layer][c.id] {
			if _, ok := visited[nb]; ok {
				continue
			}
			visited[nb] = struct{}{}
			d := g.distTo(q, nb, calcs)
			if best.len() < ef || d < best.peek().d {
				candidates.push(heapItem{id: nb, d: d})
				best.push(heapItem{id: nb, d: d})
				if best.len() > ef {
					best.pop()
				}
			}
		}
	}
	out := make([]heapItem, best.len())
	for i := best.len() - 1; i >= 0; i-- {
		out[i] = best.pop()
	}
	return out // sorted ascending by distance
}

// selectNeighbors applies the HNSW heuristic (relative neighbourhood
// pruning): a candidate is kept only if it is closer to the base point than
// to every already-selected neighbour, which spreads edges directionally —
// the same rule NSG uses for MRNG edge selection.
func (g *Graph) selectNeighbors(base int, cands []heapItem, m int) []int {
	selected := make([]int, 0, m)
	for _, c := range cands {
		if len(selected) == m {
			break
		}
		keep := true
		for _, s := range selected {
			if g.dist(c.id, s) < c.d {
				keep = false
				break
			}
		}
		if keep {
			selected = append(selected, c.id)
		}
	}
	// Fill remaining slots with the nearest skipped candidates (keepPruned).
	if len(selected) < m {
		have := make(map[int]struct{}, len(selected))
		for _, s := range selected {
			have[s] = struct{}{}
		}
		for _, c := range cands {
			if len(selected) == m {
				break
			}
			if _, ok := have[c.id]; !ok {
				selected = append(selected, c.id)
			}
		}
	}
	return selected
}

func (g *Graph) insert(id int) {
	l := g.randomLevel()
	g.level[id] = l
	g.ensureLayers(l)
	if g.entry < 0 {
		g.entry = id
		g.top = l
		return
	}
	q := g.data.At(id)
	var buildCalcs int64 // build-time tally, discarded
	ep := []heapItem{{id: g.entry, d: g.distTo(q, g.entry, &buildCalcs)}}
	// Greedy descent through layers above l.
	for layer := g.top; layer > l; layer-- {
		ep = g.searchLayer(q, ep, 1, layer, &buildCalcs)
	}
	// Insert into layers min(l, top)..0.
	start := l
	if start > g.top {
		start = g.top
	}
	for layer := start; layer >= 0; layer-- {
		cands := g.searchLayer(q, ep, g.cfg.EFConstruction, layer, &buildCalcs)
		m := g.cfg.M
		nbrs := g.selectNeighbors(id, cands, m)
		g.links[layer][id] = nbrs
		for _, nb := range nbrs {
			g.links[layer][nb] = append(g.links[layer][nb], id)
			if cap := g.maxDegree(layer); len(g.links[layer][nb]) > cap {
				// Re-select the neighbour's links.
				items := make([]heapItem, 0, len(g.links[layer][nb]))
				for _, x := range g.links[layer][nb] {
					items = append(items, heapItem{id: x, d: g.dist(nb, x)})
				}
				sortItems(items)
				g.links[layer][nb] = g.selectNeighbors(nb, items, cap)
			}
		}
		ep = cands
	}
	if l > g.top {
		g.top = l
		g.entry = id
	}
}

func sortItems(items []heapItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].d < items[j-1].d; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

// Search implements core.Method. HNSW supports ng-approximate search only;
// the candidate-pool size efs is max(NProbe, EFSearch config, k).
func (g *Graph) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("hnsw: %w", err)
	}
	if q.Mode != core.ModeNG {
		return core.Result{}, fmt.Errorf("hnsw: %s search not supported (ng-approximate only)", q.Mode)
	}
	if len(q.Series) != g.data.Length() {
		return core.Result{}, fmt.Errorf("hnsw: query length %d != dataset length %d", len(q.Series), g.data.Length())
	}
	if g.entry < 0 {
		return core.Result{}, fmt.Errorf("hnsw: empty graph")
	}
	ef := g.cfg.EFSearch
	if q.NProbe > ef {
		ef = q.NProbe
	}
	if q.K > ef {
		ef = q.K
	}
	var calcs int64
	ep := []heapItem{{id: g.entry, d: g.distTo(q.Series, g.entry, &calcs)}}
	for layer := g.top; layer > 0; layer-- {
		ep = g.searchLayer(q.Series, ep, 1, layer, &calcs)
	}
	found := g.searchLayer(q.Series, ep, ef, 0, &calcs)
	res := core.Result{DistCalcs: calcs, LeavesVisited: len(found)}
	k := q.K
	if k > len(found) {
		k = len(found)
	}
	for _, it := range found[:k] {
		res.Neighbors = append(res.Neighbors, core.Neighbor{ID: it.id, Dist: math.Sqrt(it.d)})
	}
	return res, nil
}
