package hnsw

import (
	"fmt"
	"io"

	"hydra/internal/core"
)

func saveGraph(m core.Method, w io.Writer) error {
	g, ok := m.(*Graph)
	if !ok {
		return fmt.Errorf("hnsw: cannot save %T", m)
	}
	return g.Save(w)
}

func loadGraph(ctx *core.BuildContext, r io.Reader) (core.BuildResult, error) {
	g, err := Load(ctx.Data, r)
	if err != nil {
		return core.BuildResult{}, err
	}
	return core.BuildResult{Method: g}, nil
}

// The package registers two specs: hierarchical HNSW and the single-layer
// medoid-entry variant standing in for NSG. Both are in-memory,
// ng-approximate only, and share the snapshot format in persist.go.
func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:          "HNSW",
		Rank:          50,
		NG:            true,
		FormatVersion: persistVersion,
		ConfigString:  fmt.Sprintf("%+v", DefaultConfig()),
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			g, err := Build(ctx.Data, DefaultConfig())
			if err != nil {
				return core.BuildResult{}, err
			}
			return core.BuildResult{Method: g}, nil
		},
		Save: saveGraph,
		Load: loadGraph,
	})
	core.RegisterMethod(core.MethodSpec{
		Name:          "NSG",
		Rank:          60,
		NG:            true,
		FormatVersion: persistVersion,
		ConfigString:  fmt.Sprintf("flat;%+v", DefaultConfig()),
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			cfg := DefaultConfig()
			cfg.Flat = true
			g, err := Build(ctx.Data, cfg)
			if err != nil {
				return core.BuildResult{}, err
			}
			return core.BuildResult{Method: g}, nil
		},
		Save: saveGraph,
		Load: loadGraph,
	})
}
