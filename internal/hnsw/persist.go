package hnsw

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"hydra/internal/series"
)

// Persistence: the graph structure (per-layer adjacency lists, node levels
// and the entry point) round-trips through encoding/gob. The raw vectors
// are NOT duplicated into the snapshot — Load reattaches the structure to
// the dataset it was built over, mirroring the tree indexes' convention.
// The snapshot covers both the hierarchical graph and the flat (NSG-style)
// variant; Config records which one it is.

type graphSnap struct {
	Version int
	Cfg     Config
	Size    int
	Entry   int
	Top     int
	Level   []int
	Links   [][][]int
}

const persistVersion = 1

// Save serialises the graph structure to w.
func (g *Graph) Save(w io.Writer) error {
	snap := graphSnap{
		Version: persistVersion,
		Cfg:     g.cfg,
		Size:    g.data.Size(),
		Entry:   g.entry,
		Top:     g.top,
		Level:   g.level,
		Links:   g.links,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("hnsw: encoding: %w", err)
	}
	return nil
}

// Load reads a graph saved with Save and attaches it to the dataset the
// graph was built over.
func Load(data *series.Dataset, r io.Reader) (*Graph, error) {
	var snap graphSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("hnsw: decoding: %w", err)
	}
	if snap.Version != persistVersion {
		return nil, fmt.Errorf("hnsw: unsupported snapshot version %d", snap.Version)
	}
	if snap.Size != data.Size() {
		return nil, fmt.Errorf("hnsw: snapshot indexed %d series, dataset holds %d", snap.Size, data.Size())
	}
	if err := snap.Cfg.validate(); err != nil {
		return nil, fmt.Errorf("hnsw: snapshot config: %w", err)
	}
	g := &Graph{
		data:  data,
		cfg:   snap.Cfg,
		mL:    1 / math.Log(float64(snap.Cfg.M)),
		rng:   rand.New(rand.NewSource(snap.Cfg.Seed)),
		entry: snap.Entry,
		top:   snap.Top,
		level: snap.Level,
		links: snap.Links,
	}
	return g, nil
}
