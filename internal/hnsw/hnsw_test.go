package hnsw

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
)

func buildTestGraph(t *testing.T, n, length int, cfg Config, kind dataset.Kind, seed int64) (*Graph, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: kind, Count: n, Length: length, Seed: seed})
	g, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, kind, 5, seed+100)
	return g, data, queries
}

func recall(res core.Result, truth []core.Neighbor) float64 {
	trueIDs := map[int]struct{}{}
	for _, nb := range truth {
		trueIDs[nb.ID] = struct{}{}
	}
	hits := 0
	for _, nb := range res.Neighbors {
		if _, ok := trueIDs[nb.ID]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 16, Seed: 1})
	for i, cfg := range []Config{
		{M: 1, EFConstruction: 10, EFSearch: 10},
		{M: 4, EFConstruction: 2, EFSearch: 10},
		{M: 4, EFConstruction: 10, EFSearch: 0},
	} {
		if _, err := Build(data, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestHighRecallOnClusteredData(t *testing.T) {
	g, data, queries := buildTestGraph(t, 2000, 32, DefaultConfig(), dataset.KindClustered, 3)
	gt := scan.GroundTruth(data, queries, 10)
	var total float64
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := g.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: 128})
		if err != nil {
			t.Fatal(err)
		}
		total += recall(res, gt[qi])
	}
	if avg := total / float64(queries.Size()); avg < 0.9 {
		t.Errorf("HNSW recall %v < 0.9 on clustered data", avg)
	}
}

func TestRecallImprovesWithEF(t *testing.T) {
	g, data, queries := buildTestGraph(t, 3000, 32, Config{M: 8, EFConstruction: 64, EFSearch: 8, Seed: 1}, dataset.KindWalk, 5)
	gt := scan.GroundTruth(data, queries, 10)
	at := func(ef int) float64 {
		var total float64
		for qi := 0; qi < queries.Size(); qi++ {
			res, err := g.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: ef})
			if err != nil {
				t.Fatal(err)
			}
			total += recall(res, gt[qi])
		}
		return total / float64(queries.Size())
	}
	lo, hi := at(10), at(256)
	if hi < lo {
		t.Errorf("recall fell with larger ef: %v -> %v", lo, hi)
	}
	if hi < 0.8 {
		t.Errorf("recall at ef=256 is %v", hi)
	}
}

func TestSearchTouchesFractionOfData(t *testing.T) {
	g, _, queries := buildTestGraph(t, 5000, 32, DefaultConfig(), dataset.KindWalk, 7)
	res, err := g.Search(core.Query{Series: queries.At(0), K: 10, Mode: core.ModeNG, NProbe: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistCalcs >= 5000 {
		t.Errorf("graph search computed %d distances — degenerated to a scan", res.DistCalcs)
	}
}

func TestRejectsNonNGModes(t *testing.T) {
	g, _, queries := buildTestGraph(t, 200, 16, DefaultConfig(), dataset.KindWalk, 9)
	for _, mode := range []core.Mode{core.ModeExact, core.ModeEpsilon, core.ModeDeltaEpsilon} {
		if _, err := g.Search(core.Query{Series: queries.At(0), K: 1, Mode: mode, Epsilon: 1, Delta: 0.5}); err == nil {
			t.Errorf("mode %v should be rejected", mode)
		}
	}
}

func TestFlatVariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flat = true
	g, data, queries := buildTestGraph(t, 1500, 32, cfg, dataset.KindClustered, 11)
	if g.Name() != "NSG" {
		t.Errorf("flat graph name = %s", g.Name())
	}
	if g.top != 0 {
		t.Errorf("flat graph has %d layers", g.top+1)
	}
	gt := scan.GroundTruth(data, queries, 10)
	res, err := g.Search(core.Query{Series: queries.At(0), K: 10, Mode: core.ModeNG, NProbe: 128})
	if err != nil {
		t.Fatal(err)
	}
	if recall(res, gt[0]) < 0.7 {
		t.Errorf("flat graph recall %v", recall(res, gt[0]))
	}
}

func TestHierarchyExists(t *testing.T) {
	g, _, _ := buildTestGraph(t, 3000, 16, Config{M: 8, EFConstruction: 32, EFSearch: 16, Seed: 2}, dataset.KindWalk, 13)
	if g.top < 1 {
		t.Errorf("3000-node HNSW should have multiple layers, top=%d", g.top)
	}
}

func TestDegreesBounded(t *testing.T) {
	g, _, _ := buildTestGraph(t, 1000, 16, Config{M: 6, EFConstruction: 32, EFSearch: 16, Seed: 3}, dataset.KindWalk, 15)
	for layer := range g.links {
		cap := g.maxDegree(layer)
		for id, nbrs := range g.links[layer] {
			if len(nbrs) > cap {
				t.Fatalf("layer %d node %d degree %d > cap %d", layer, id, len(nbrs), cap)
			}
		}
	}
}

func TestGraphConnectedAtLayer0(t *testing.T) {
	g, _, _ := buildTestGraph(t, 800, 16, DefaultConfig(), dataset.KindWalk, 17)
	// BFS from entry at layer 0 should reach nearly everything.
	seen := map[int]struct{}{g.entry: {}}
	frontier := []int{g.entry}
	for len(frontier) > 0 {
		var next []int
		for _, id := range frontier {
			for _, nb := range g.links[0][id] {
				if _, ok := seen[nb]; !ok {
					seen[nb] = struct{}{}
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	if len(seen) < 790 {
		t.Errorf("layer-0 reachable set %d of 800", len(seen))
	}
}

func TestFootprintIncludesRawData(t *testing.T) {
	g, data, _ := buildTestGraph(t, 300, 32, DefaultConfig(), dataset.KindWalk, 19)
	if g.Footprint() <= data.Bytes() {
		t.Errorf("footprint %d should exceed raw size %d", g.Footprint(), data.Bytes())
	}
}

func TestSearchValidation(t *testing.T) {
	g, _, queries := buildTestGraph(t, 100, 16, DefaultConfig(), dataset.KindWalk, 21)
	if _, err := g.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeNG, NProbe: 1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.Search(core.Query{Series: make(series.Series, 5), K: 1, Mode: core.ModeNG, NProbe: 1}); err == nil {
		t.Error("wrong length accepted")
	}
}
