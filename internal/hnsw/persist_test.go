package hnsw

import (
	"bytes"
	"math/rand"
	"testing"

	"hydra/internal/core"
	"hydra/internal/series"
)

func persistDataset(n, length int, seed int64) *series.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := series.NewDataset(length)
	for i := 0; i < n; i++ {
		s := make(series.Series, length)
		for j := range s {
			s[j] = float32(rng.NormFloat64())
		}
		d.Append(s)
	}
	return d
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, flat := range []bool{false, true} {
		d := persistDataset(300, 16, 9)
		cfg := DefaultConfig()
		cfg.Flat = flat
		g, err := Build(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := Load(d, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.Name() != g.Name() {
			t.Errorf("name %q after reload, want %q", g2.Name(), g.Name())
		}
		if g2.Footprint() != g.Footprint() {
			t.Errorf("footprint %d after reload, want %d", g2.Footprint(), g.Footprint())
		}
		// Identical graph structure must answer identically.
		for qi := 0; qi < 5; qi++ {
			q := core.Query{Series: d.At(qi * 7), K: 5, Mode: core.ModeNG, NProbe: 32}
			r1, err := g.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := g2.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(r1.Neighbors) != len(r2.Neighbors) {
				t.Fatalf("flat=%v query %d: %d vs %d neighbours", flat, qi, len(r1.Neighbors), len(r2.Neighbors))
			}
			for i := range r1.Neighbors {
				if r1.Neighbors[i] != r2.Neighbors[i] {
					t.Fatalf("flat=%v query %d rank %d: %+v vs %+v", flat, qi, i, r1.Neighbors[i], r2.Neighbors[i])
				}
			}
			if r1.DistCalcs != r2.DistCalcs {
				t.Errorf("flat=%v query %d: dist calcs %d vs %d", flat, qi, r1.DistCalcs, r2.DistCalcs)
			}
		}
	}
}

func TestLoadRejectsWrongDataset(t *testing.T) {
	d := persistDataset(100, 8, 1)
	g, err := Build(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := persistDataset(150, 8, 2)
	if _, err := Load(other, &buf); err == nil {
		t.Error("load accepted a dataset of the wrong size")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(persistDataset(10, 4, 3), bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("load accepted garbage")
	}
}
