package mtree

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func buildTestTree(t *testing.T, n, length int, cfg Config, seed int64) (*Tree, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: seed})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 5, seed+100)
	return tree, data, queries
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 16, Seed: 1})
	store := storage.NewSeriesStore(data, 0)
	for i, cfg := range []Config{
		{LeafCapacity: 1, Fanout: 4},
		{LeafCapacity: 16, Fanout: 1},
	} {
		if _, err := Build(store, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestTreeShape(t *testing.T) {
	tree, _, _ := buildTestTree(t, 1000, 32, DefaultConfig(), 1)
	nodes, leaves := tree.Stats()
	if leaves < 1000/64 {
		t.Errorf("only %d leaves", leaves)
	}
	if nodes <= leaves {
		t.Errorf("nodes %d <= leaves %d", nodes, leaves)
	}
	if tree.Footprint() <= 0 {
		t.Error("footprint should be positive")
	}
}

func TestCoveringRadiusInvariant(t *testing.T) {
	// Every member of a subtree lies within the routing object's covering
	// radius — the correctness foundation of the ball bound.
	tree, data, _ := buildTestTree(t, 800, 32, DefaultConfig(), 3)
	var walk func(n *node) []int
	walk = func(n *node) []int {
		if n.isLeaf() {
			return n.ids
		}
		var all []int
		for _, c := range n.children {
			all = append(all, walk(c)...)
		}
		if n.routing >= 0 {
			for _, id := range all {
				d := series.Dist(data.At(n.routing), data.At(id))
				if d > n.radius+1e-6 {
					t.Fatalf("member %d at %v outside covering radius %v", id, d, n.radius)
				}
			}
		}
		return all
	}
	got := walk(tree.root)
	if len(got) != 800 {
		t.Fatalf("tree holds %d of 800 members", len(got))
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	tree, data, queries := buildTestTree(t, 700, 32, DefaultConfig(), 5)
	gt := scan.GroundTruth(data, queries, 10)
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := tree.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		for i := range gt[qi] {
			if math.Abs(res.Neighbors[i].Dist-gt[qi][i].Dist) > 1e-6 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, res.Neighbors[i].Dist, gt[qi][i].Dist)
			}
		}
	}
}

func TestEpsilonGuaranteeHolds(t *testing.T) {
	tree, data, queries := buildTestTree(t, 700, 32, DefaultConfig(), 7)
	k := 5
	gt := scan.GroundTruth(data, queries, k)
	eps := 1.0
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := tree.Search(core.Query{Series: queries.At(qi), K: k, Mode: core.ModeEpsilon, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		bound := (1 + eps) * gt[qi][k-1].Dist
		for _, nb := range res.Neighbors {
			if nb.Dist > bound+1e-6 {
				t.Fatalf("query %d: %v > %v", qi, nb.Dist, bound)
			}
		}
	}
}

func TestDeltaEpsilonPACNN(t *testing.T) {
	// The M-tree is where PAC-NN originated: δ-ε search must run and δ=1
	// ε=0 must equal exact.
	tree, data, queries := buildTestTree(t, 600, 32, DefaultConfig(), 9)
	tree.SetHistogram(core.BuildHistogram(data, 2000, 11))
	res, err := tree.Search(core.Query{Series: queries.At(0), K: 3, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 3 {
		t.Fatalf("%d results", len(res.Neighbors))
	}
	gt := scan.GroundTruth(data, queries, 3)
	exact, _ := tree.Search(core.Query{Series: queries.At(0), K: 3, Mode: core.ModeDeltaEpsilon, Epsilon: 0, Delta: 1})
	for i := range gt[0] {
		if math.Abs(exact.Neighbors[i].Dist-gt[0][i].Dist) > 1e-6 {
			t.Fatalf("delta=1 eps=0 rank %d differs", i)
		}
	}
}

func TestRangeSearch(t *testing.T) {
	tree, data, queries := buildTestTree(t, 500, 32, DefaultConfig(), 13)
	q := queries.At(0)
	gt := scan.GroundTruth(data, queries, 15)
	r := gt[0][8].Dist
	res, err := tree.SearchRange(core.RangeQuery{Series: q, Radius: r})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < data.Size(); i++ {
		if series.Dist(q, data.At(i)) <= r {
			want++
		}
	}
	if len(res.Neighbors) != want {
		t.Errorf("range returned %d, want %d", len(res.Neighbors), want)
	}
}

func TestSearchPrunes(t *testing.T) {
	tree, _, queries := buildTestTree(t, 4000, 32, DefaultConfig(), 15)
	res, err := tree.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO.BytesRead >= tree.store.TotalBytes() {
		t.Errorf("no pruning: read %d bytes", res.IO.BytesRead)
	}
}

func TestIdenticalSeriesTerminates(t *testing.T) {
	data := series.NewDataset(8)
	one := make(series.Series, 8)
	for i := 0; i < 200; i++ {
		data.Append(one)
	}
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, Config{LeafCapacity: 16, Fanout: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tree.Search(core.Query{Series: one, K: 3, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 3 || res.Neighbors[0].Dist != 0 {
		t.Errorf("degenerate search wrong: %+v", res.Neighbors)
	}
}

func TestSearchValidation(t *testing.T) {
	tree, _, queries := buildTestTree(t, 100, 16, DefaultConfig(), 17)
	if _, err := tree.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeExact}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := tree.Search(core.Query{Series: make(series.Series, 5), K: 1, Mode: core.ModeExact}); err == nil {
		t.Error("wrong length accepted")
	}
	if tree.Name() != "MTree" {
		t.Error("name wrong")
	}
}
