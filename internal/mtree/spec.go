package mtree

import "hydra/internal/core"

func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:         "MTree",
		Rank:         120,
		Exact:        true,
		NG:           true,
		Epsilon:      true,
		DeltaEpsilon: true,
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			m, err := Build(st, DefaultConfig())
			if err != nil {
				return core.BuildResult{}, err
			}
			m.SetHistogram(ctx.Histogram())
			return core.BuildResult{Method: m, Store: st}, nil
		},
	})
}
