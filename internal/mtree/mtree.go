// Package mtree implements an M-tree (Ciaccia, Patella & Zezula, VLDB
// 1997): a metric access method whose nodes are balls — a routing object
// plus a covering radius. It is the method for which the PAC-NN
// (δ-ε-approximate) search of the paper's Algorithm 2 was originally
// proposed [Ciaccia & Patella, ICDE 2000], so it slots directly into the
// benchmark's generic engine: the node lower bound is
// max(0, d(q, routing) − radius).
//
// Construction uses recursive bulk loading: sample k routing objects with
// distance-weighted seeding, assign members to the nearest, recurse. This
// produces the balanced ball hierarchy the search needs without the
// insert/split machinery of the dynamic original.
package mtree

import (
	"fmt"
	"math"
	"math/rand"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// Config controls the tree shape.
type Config struct {
	// LeafCapacity bounds series per leaf.
	LeafCapacity int
	// Fanout is the number of routing objects per internal node.
	Fanout int
	// Seed drives routing-object sampling.
	Seed int64
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{LeafCapacity: 64, Fanout: 8, Seed: 1}
}

func (c Config) validate() error {
	if c.LeafCapacity < 2 {
		return fmt.Errorf("mtree: leaf capacity %d < 2", c.LeafCapacity)
	}
	if c.Fanout < 2 {
		return fmt.Errorf("mtree: fanout %d < 2", c.Fanout)
	}
	return nil
}

type node struct {
	routing  int     // id of the routing object; -1 for the root
	radius   float64 // covering radius over the subtree
	children []*node
	ids      []int // leaf members
}

func (n *node) isLeaf() bool { return len(n.children) == 0 }

// Tree is an M-tree over a series store.
type Tree struct {
	store *storage.SeriesStore
	cfg   Config
	root  *node
	hist  *core.DistanceHistogram

	nodeCount int
	leafCount int
}

// Build bulk-loads an M-tree over every series in the store.
func Build(store *storage.SeriesStore, cfg Config) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tree{store: store, cfg: cfg}
	ids := make([]int, store.Size())
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t.root = t.bulkLoad(ids, -1, rng)
	return t, nil
}

func (t *Tree) dist(a, b int) float64 {
	return kernel.Dist(t.store.Peek(a), t.store.Peek(b))
}

// bulkLoad builds the subtree for ids with the given routing object
// (-1 at the root).
func (t *Tree) bulkLoad(ids []int, routing int, rng *rand.Rand) *node {
	n := &node{routing: routing}
	t.nodeCount++
	if len(ids) <= t.cfg.LeafCapacity {
		n.ids = ids
		t.leafCount++
		n.radius = t.coverRadius(routing, ids)
		return n
	}
	// Distance-weighted sampling of fanout routing objects (k-means++ on
	// the metric, no coordinate averaging — M-trees work in generic metric
	// spaces).
	pivots := make([]int, 0, t.cfg.Fanout)
	pivots = append(pivots, ids[rng.Intn(len(ids))])
	minD := make([]float64, len(ids))
	for i, id := range ids {
		minD[i] = t.dist(id, pivots[0])
	}
	for len(pivots) < t.cfg.Fanout {
		var total float64
		for _, d := range minD {
			total += d * d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(len(ids))
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = len(ids) - 1
			for i, d := range minD {
				acc += d * d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		p := ids[pick]
		pivots = append(pivots, p)
		for i, id := range ids {
			if d := t.dist(id, p); d < minD[i] {
				minD[i] = d
			}
		}
	}
	// Assign members to the nearest pivot.
	groups := make([][]int, len(pivots))
	for _, id := range ids {
		best, bestD := 0, math.Inf(1)
		for pi, p := range pivots {
			if d := t.dist(id, p); d < bestD {
				best, bestD = pi, d
			}
		}
		groups[best] = append(groups[best], id)
	}
	for pi, g := range groups {
		if len(g) == 0 {
			continue
		}
		// Degenerate split (all points identical): make a leaf to terminate.
		if len(g) == len(ids) {
			n.ids = g
			t.leafCount++
			n.radius = t.coverRadius(routing, g)
			return n
		}
		n.children = append(n.children, t.bulkLoad(g, pivots[pi], rng))
	}
	n.radius = t.coverRadiusChildren(routing, n.children)
	return n
}

func (t *Tree) coverRadius(routing int, ids []int) float64 {
	if routing < 0 {
		return math.Inf(1)
	}
	var r float64
	for _, id := range ids {
		if d := t.dist(routing, id); d > r {
			r = d
		}
	}
	return r
}

func (t *Tree) coverRadiusChildren(routing int, children []*node) float64 {
	if routing < 0 {
		return math.Inf(1)
	}
	var r float64
	for _, c := range children {
		d := t.dist(routing, c.routing) + c.radius
		if d > r {
			r = d
		}
	}
	return r
}

// SetHistogram installs the histogram for δ-ε-approximate search.
func (t *Tree) SetHistogram(h *core.DistanceHistogram) { t.hist = h }

// Name implements core.Method.
func (t *Tree) Name() string { return "MTree" }

// Size returns the number of indexed series.
func (t *Tree) Size() int { return t.store.Size() }

// Stats exposes structural counters.
func (t *Tree) Stats() (nodes, leaves int) { return t.nodeCount, t.leafCount }

// Footprint implements core.Method.
func (t *Tree) Footprint() int64 {
	var total int64
	var walk func(n *node)
	walk = func(n *node) {
		total += 40 + int64(len(n.ids))*8
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return total
}

// cursor adapts a query to the generic engine. The per-query store view
// keeps I/O accounting independent across concurrent searches.
type cursor struct {
	t       *Tree
	store   *storage.SeriesStore
	q       series.Series
	scratch core.LeafScratch
}

// newCursor opens a per-query cursor over a private store view.
func (t *Tree) newCursor(q series.Series) *cursor {
	return &cursor{t: t, store: t.store.View(), q: q}
}

// Roots implements core.TreeCursor.
func (c *cursor) Roots() []core.NodeRef { return []core.NodeRef{c.t.root} }

// MinDist implements core.TreeCursor: the ball bound
// max(0, d(q, routing) − radius).
func (c *cursor) MinDist(ref core.NodeRef) float64 {
	n := ref.(*node)
	if n.routing < 0 {
		return 0
	}
	d := kernel.Dist(c.q, c.t.store.Peek(n.routing)) - n.radius
	if d < 0 {
		return 0
	}
	return d
}

// IsLeaf implements core.TreeCursor.
func (c *cursor) IsLeaf(ref core.NodeRef) bool { return ref.(*node).isLeaf() }

// Children implements core.TreeCursor.
func (c *cursor) Children(ref core.NodeRef) []core.NodeRef {
	n := ref.(*node)
	out := make([]core.NodeRef, len(n.children))
	for i, ch := range n.children {
		out[i] = ch
	}
	return out
}

// ScanLeaf implements core.TreeCursor: the gathered leaf cluster is
// refined in one batched kernel call (see core.LeafScratch.Refine).
func (c *cursor) ScanLeaf(ref core.NodeRef, limit func() float64, visit func(id int, dist float64)) {
	n := ref.(*node)
	raw := c.store.ReadLeafCluster(n.ids)
	c.scratch.Refine(c.q, n.ids, raw, limit, visit)
}

// Search implements core.Method: all four modes via the generic engine.
func (t *Tree) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("mtree: %w", err)
	}
	if len(q.Series) != t.store.Length() {
		return core.Result{}, fmt.Errorf("mtree: query length %d != dataset length %d", len(q.Series), t.store.Length())
	}
	cur := t.newCursor(q.Series)
	res := core.SearchTree(cur, q, t.hist, t.Size())
	res.IO = cur.store.Accountant().Snapshot()
	return res, nil
}

// SearchRange answers an r-range query exactly (ε=0) or with the (1+ε)
// relaxation.
func (t *Tree) SearchRange(q core.RangeQuery) (core.RangeResult, error) {
	if err := q.Validate(); err != nil {
		return core.RangeResult{}, fmt.Errorf("mtree: %w", err)
	}
	if len(q.Series) != t.store.Length() {
		return core.RangeResult{}, fmt.Errorf("mtree: query length %d != dataset length %d", len(q.Series), t.store.Length())
	}
	cur := t.newCursor(series.Series(q.Series))
	res := core.SearchTreeRange(cur, q)
	res.IO = cur.store.Accountant().Snapshot()
	return res, nil
}
