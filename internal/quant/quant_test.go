package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainScalarBasic(t *testing.T) {
	// Two well-separated clusters of values: a 2-cell quantizer should put
	// its boundary between them.
	samples := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	s := TrainScalar(samples, 2, 20)
	if s.Cells() != 2 {
		t.Fatalf("Cells = %d", s.Cells())
	}
	if s.Boundaries[0] < 1 || s.Boundaries[0] > 9 {
		t.Errorf("boundary %v not between clusters", s.Boundaries[0])
	}
	if s.Encode(0.15) != 0 || s.Encode(10.05) != 1 {
		t.Error("encoding puts values in wrong cells")
	}
}

func TestScalarEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	s := TrainScalar(samples, 16, 25)
	// Decode of encode is within the encoded cell.
	for _, v := range samples[:100] {
		c := s.Encode(v)
		lo, hi := s.CellBounds(c)
		d := s.Decode(c)
		if d < lo || d > hi {
			t.Fatalf("decoded value %v outside cell [%v,%v]", d, lo, hi)
		}
	}
}

func TestScalarQuantizationErrorDecreasesWithCells(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	mse := func(cells int) float64 {
		s := TrainScalar(samples, cells, 30)
		var acc float64
		for _, v := range samples {
			d := v - s.Decode(s.Encode(v))
			acc += d * d
		}
		return acc / float64(len(samples))
	}
	if !(mse(2) > mse(8) && mse(8) > mse(64)) {
		t.Errorf("MSE not decreasing: %v %v %v", mse(2), mse(8), mse(64))
	}
}

func TestScalarGaps(t *testing.T) {
	samples := []float64{-1, 0, 1, 2}
	s := TrainScalar(samples, 4, 10)
	for _, v := range []float64{-2, -0.5, 0.3, 5} {
		c := s.Encode(v)
		if g := s.LowerGap(v, c); g != 0 {
			t.Errorf("LowerGap of own cell should be 0, got %v for v=%v", g, v)
		}
	}
	// Gap to a far cell must lower-bound the true distance to any value in
	// that cell (check against the cell's center which is inside it).
	for _, v := range []float64{-3, 0.2, 4} {
		for c := 0; c < s.Cells(); c++ {
			lg := s.LowerGap(v, c)
			trueD := math.Abs(v - s.Decode(c))
			if lg > trueD+1e-12 {
				t.Errorf("LowerGap(%v, cell %d) = %v exceeds distance to center %v", v, c, lg, trueD)
			}
			ug := s.UpperGap(v, c)
			if ug+1e-12 < trueD {
				t.Errorf("UpperGap(%v, cell %d) = %v below distance to center %v", v, c, ug, trueD)
			}
		}
	}
}

func TestNearestCenter1D(t *testing.T) {
	centers := []float64{0, 10, 20}
	cases := []struct {
		v    float64
		want int
	}{{-5, 0}, {4, 0}, {6, 1}, {14, 1}, {16, 2}, {100, 2}}
	for _, c := range cases {
		if got := nearestCenter1D(centers, c.v); got != c.want {
			t.Errorf("nearestCenter1D(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func randVectors(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Two clusters around (0,...) and (100,...).
	vecs := make([][]float64, 0, 100)
	for i := 0; i < 50; i++ {
		a := make([]float64, 4)
		b := make([]float64, 4)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = 100 + rng.NormFloat64()
		}
		vecs = append(vecs, a, b)
	}
	cents, assign := KMeans(vecs, 2, 25, 1)
	if len(cents) != 2 {
		t.Fatalf("centroid count %d", len(cents))
	}
	// All members of the same true cluster get the same assignment.
	for i := 2; i < len(vecs); i += 2 {
		if assign[i] != assign[0] {
			t.Fatalf("cluster A split: assign[%d]=%d vs %d", i, assign[i], assign[0])
		}
		if assign[i+1] != assign[1] {
			t.Fatalf("cluster B split")
		}
	}
	if assign[0] == assign[1] {
		t.Fatal("two clusters merged")
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs := randVectors(rng, 3, 2)
	cents, assign := KMeans(vecs, 10, 5, 1)
	if len(cents) != 3 {
		t.Errorf("k should clamp to n, got %d centroids", len(cents))
	}
	if len(assign) != 3 {
		t.Errorf("assignment length %d", len(assign))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := randVectors(rng, 60, 8)
	c1, a1 := KMeans(vecs, 4, 10, 42)
	c2, a2 := KMeans(vecs, 4, 10, 42)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed gives different assignments")
		}
	}
	for i := range c1 {
		for j := range c1[i] {
			if c1[i][j] != c2[i][j] {
				t.Fatal("same seed gives different centroids")
			}
		}
	}
}

func TestProductQuantizerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vecs := randVectors(rng, 300, 16)
	p := TrainProduct(vecs, 4, 16, 15, 1)
	if p.Dim() != 16 {
		t.Fatalf("Dim = %d", p.Dim())
	}
	codes := p.Encode(vecs[0])
	if len(codes) != 4 {
		t.Fatalf("code length %d", len(codes))
	}
	dec := p.Decode(codes)
	if len(dec) != 16 {
		t.Fatalf("decode length %d", len(dec))
	}
	// Reconstruction error should be far below the vector norm.
	var errSq, normSq float64
	for i, v := range vecs[0] {
		d := v - dec[i]
		errSq += d * d
		normSq += v * v
	}
	if errSq > normSq {
		t.Errorf("PQ reconstruction error %v exceeds norm %v", errSq, normSq)
	}
}

func TestADCMatchesDecodedDistance(t *testing.T) {
	// ADC(q, codes) must equal the exact squared distance between q and the
	// decoded (reconstructed) vector.
	rng := rand.New(rand.NewSource(9))
	vecs := randVectors(rng, 200, 12)
	p := TrainProduct(vecs, 3, 8, 10, 5)
	q := vecs[17]
	table := p.DistanceTable(q)
	for _, v := range vecs[:50] {
		codes := p.Encode(v)
		adc := ADC(table, codes)
		dec := p.Decode(codes)
		var want float64
		for i := range q {
			d := q[i] - dec[i]
			want += d * d
		}
		if math.Abs(adc-want) > 1e-9*(1+want) {
			t.Fatalf("ADC %v != decoded distance %v", adc, want)
		}
	}
}

func TestProductQuantizerUnevenDims(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	vecs := randVectors(rng, 100, 10) // 10 dims into 3 sub-vectors: 3,3,4
	p := TrainProduct(vecs, 3, 4, 8, 2)
	if p.Dim() != 10 {
		t.Fatalf("Dim = %d, want 10", p.Dim())
	}
	codes := p.Encode(vecs[5])
	dec := p.Decode(codes)
	if len(dec) != 10 {
		t.Fatalf("decode length %d", len(dec))
	}
}

func TestRotationOrthonormal(t *testing.T) {
	r := NewRandomRotation(16, 3)
	// Rows orthonormal: R Rᵀ = I.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			var dot float64
			for k := 0; k < 16; k++ {
				dot += r.mat[i][k] * r.mat[j][k]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("R Rᵀ[%d][%d] = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestRotationPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	r := NewRandomRotation(24, 8)
	for trial := 0; trial < 30; trial++ {
		a := make([]float64, 24)
		b := make([]float64, 24)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		da := sqDist(a, b)
		db := sqDist(r.Apply(a), r.Apply(b))
		if math.Abs(da-db) > 1e-9*(1+da) {
			t.Fatalf("rotation changed distance: %v vs %v", da, db)
		}
	}
}

func TestRotationMismatchPanics(t *testing.T) {
	r := NewRandomRotation(4, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Apply([]float64{1, 2})
}

func TestRotationBalancesEnergy(t *testing.T) {
	// A vector concentrated in one coordinate spreads across coordinates
	// after rotation — the OPQ motivation.
	r := NewRandomRotation(32, 6)
	v := make([]float64, 32)
	v[0] = 10
	out := r.Apply(v)
	var maxAbs float64
	for _, x := range out {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 9 {
		t.Errorf("rotation did not spread energy: max coord %v", maxAbs)
	}
}
