// Package quant provides the quantization substrates used by VA+file and
// IMI: per-dimension scalar quantizers with non-uniform (k-means-trained)
// boundaries, Lloyd k-means, product quantizers, and an OPQ-style random
// orthonormal rotation.
//
// Terminology follows the paper's Section 3.1: a scalar quantizer operates
// on individual dimensions independently; a vector quantizer treats the
// vector as a whole; a product quantizer splits the vector into m
// sub-vectors, each handled by a small vector quantizer, so the implicit
// codebook is the cartesian product of the sub-codebooks.
package quant

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Scalar is a non-uniform scalar quantizer for one dimension: sorted cell
// boundaries plus per-cell reconstruction values. VA+file trains one per
// retained DFT coefficient, allocating cells where the data mass is.
type Scalar struct {
	// Boundaries has length cells-1 and is strictly increasing; value v
	// falls in cell i where i = #boundaries <= v.
	Boundaries []float64
	// Centers has length cells: the reconstruction value of each cell.
	Centers []float64
}

// TrainScalar builds a scalar quantizer with the given number of cells from
// sample values, using 1-D k-means (Lloyd) initialised at quantiles.
// Requires cells >= 1 and at least one sample.
func TrainScalar(samples []float64, cells int, iters int) *Scalar {
	if cells < 1 || len(samples) == 0 {
		panic(fmt.Sprintf("quant: invalid scalar training (cells=%d samples=%d)", cells, len(samples)))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	centers := make([]float64, cells)
	for i := 0; i < cells; i++ {
		// Quantile initialisation.
		q := (float64(i) + 0.5) / float64(cells)
		centers[i] = sorted[int(q*float64(len(sorted)-1))]
	}
	for it := 0; it < iters; it++ {
		sums := make([]float64, cells)
		counts := make([]int, cells)
		for _, v := range sorted {
			c := nearestCenter1D(centers, v)
			sums[c] += v
			counts[c]++
		}
		changed := false
		for i := range centers {
			if counts[i] == 0 {
				continue
			}
			nc := sums[i] / float64(counts[i])
			if nc != centers[i] {
				centers[i] = nc
				changed = true
			}
		}
		sort.Float64s(centers)
		if !changed {
			break
		}
	}
	bounds := make([]float64, cells-1)
	for i := 0; i < cells-1; i++ {
		bounds[i] = (centers[i] + centers[i+1]) / 2
	}
	return &Scalar{Boundaries: bounds, Centers: centers}
}

func nearestCenter1D(centers []float64, v float64) int {
	// Centers are sorted; binary search then compare neighbours.
	i := sort.SearchFloat64s(centers, v)
	if i == 0 {
		return 0
	}
	if i == len(centers) {
		return len(centers) - 1
	}
	if v-centers[i-1] <= centers[i]-v {
		return i - 1
	}
	return i
}

// Cells returns the number of quantization cells.
func (s *Scalar) Cells() int { return len(s.Centers) }

// Encode returns the cell index of v.
func (s *Scalar) Encode(v float64) int {
	return sort.SearchFloat64s(s.Boundaries, v)
}

// Decode returns the reconstruction value of cell c.
func (s *Scalar) Decode(c int) float64 { return s.Centers[c] }

// CellBounds returns the [lo, hi] value range of cell c; extreme cells
// extend to ±Inf.
func (s *Scalar) CellBounds(c int) (lo, hi float64) {
	if c == 0 {
		lo = math.Inf(-1)
	} else {
		lo = s.Boundaries[c-1]
	}
	if c == len(s.Centers)-1 {
		hi = math.Inf(1)
	} else {
		hi = s.Boundaries[c]
	}
	return lo, hi
}

// LowerGap returns the minimum possible |v - x| over x in cell c (0 when v
// lies inside the cell): the per-dimension term of the VA-file lower bound.
func (s *Scalar) LowerGap(v float64, c int) float64 {
	lo, hi := s.CellBounds(c)
	if v < lo {
		return lo - v
	}
	if v > hi {
		return v - hi
	}
	return 0
}

// LowerGaps2 fills out[:Cells()] with the squared lower gap from v to
// every cell: out[c] = LowerGap(v, c)². Filling this row once per query
// turns the per-candidate VA-file bound into pure table gathers (see
// kernel.GapTable); each entry is computed exactly as LowerGap does, so
// gathered bounds accumulate bit-identically to per-candidate LowerGap
// calls.
func (s *Scalar) LowerGaps2(v float64, out []float64) {
	if len(out) < len(s.Centers) {
		panic(fmt.Sprintf("quant: gap row holds %d cells, quantizer has %d", len(out), len(s.Centers)))
	}
	for c := range s.Centers {
		g := s.LowerGap(v, c)
		out[c] = g * g
	}
}

// UpperGap returns the maximum possible |v - x| over x in cell c. For the
// unbounded extreme cells the cell is clipped at its center (the standard
// VA+ practical convention), keeping the bound finite.
func (s *Scalar) UpperGap(v float64, c int) float64 {
	lo, hi := s.CellBounds(c)
	if math.IsInf(lo, -1) {
		lo = s.Centers[c]
	}
	if math.IsInf(hi, 1) {
		hi = s.Centers[c]
	}
	return math.Max(math.Abs(v-lo), math.Abs(v-hi))
}

// KMeans runs Lloyd's algorithm on vectors with k centroids, returning the
// centroids and per-vector assignments. Deterministic under seed via
// k-means++-style seeding. Empty clusters are re-seeded from the farthest
// points.
func KMeans(vectors [][]float64, k, iters int, seed int64) (centroids [][]float64, assign []int) {
	n := len(vectors)
	if n == 0 || k <= 0 {
		panic(fmt.Sprintf("quant: invalid kmeans input (n=%d k=%d)", n, k))
	}
	if k > n {
		k = n
	}
	dim := len(vectors[0])
	rng := rand.New(rand.NewSource(seed))
	centroids = kmeansppInit(vectors, k, rng)
	assign = make([]int, n)
	dists := make([]float64, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				d := sqDist(v, cent)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			dists[i] = bestD
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed at the point farthest from its centroid.
				far, farD := 0, -1.0
				for i := range vectors {
					if dists[i] > farD {
						far, farD = i, dists[i]
					}
				}
				copy(centroids[c], vectors[far])
				dists[far] = 0
				changed = true
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	// Final assignment against the final centroids.
	for i, v := range vectors {
		best, bestD := 0, math.Inf(1)
		for c, cent := range centroids {
			d := sqDist(v, cent)
			if d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return centroids, assign
}

func kmeansppInit(vectors [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(vectors)
	dim := len(vectors[0])
	centroids := make([][]float64, 0, k)
	first := make([]float64, dim)
	copy(first, vectors[rng.Intn(n)])
	centroids = append(centroids, first)
	d2 := make([]float64, n)
	for i, v := range vectors {
		d2[i] = sqDist(v, first)
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					idx = i
					break
				}
			}
		}
		c := make([]float64, dim)
		copy(c, vectors[idx])
		centroids = append(centroids, c)
		for i, v := range vectors {
			if d := sqDist(v, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}

// Product is a product quantizer: the vector is split into M contiguous
// sub-vectors, each encoded with its own Ks-centroid codebook.
type Product struct {
	M         int
	Ks        int
	subDims   []int         // width of each sub-vector
	offsets   []int         // start index of each sub-vector
	codebooks [][][]float64 // [m][code][subdim]
}

// TrainProduct trains a product quantizer on the sample vectors.
func TrainProduct(samples [][]float64, m, ks, iters int, seed int64) *Product {
	if len(samples) == 0 || m <= 0 || ks <= 0 {
		panic("quant: invalid product quantizer training input")
	}
	dim := len(samples[0])
	if m > dim {
		m = dim
	}
	p := &Product{M: m, Ks: ks}
	p.subDims = make([]int, m)
	p.offsets = make([]int, m)
	for i := 0; i < m; i++ {
		p.offsets[i] = i * dim / m
		p.subDims[i] = (i+1)*dim/m - p.offsets[i]
	}
	p.codebooks = make([][][]float64, m)
	for i := 0; i < m; i++ {
		sub := make([][]float64, len(samples))
		for j, v := range samples {
			sub[j] = v[p.offsets[i] : p.offsets[i]+p.subDims[i]]
		}
		cents, _ := KMeans(sub, ks, iters, seed+int64(i)*7919)
		p.codebooks[i] = cents
	}
	return p
}

// Dim returns the input dimensionality.
func (p *Product) Dim() int {
	last := p.M - 1
	return p.offsets[last] + p.subDims[last]
}

// Encode quantises v into M codes.
func (p *Product) Encode(v []float64) []uint16 {
	codes := make([]uint16, p.M)
	for i := 0; i < p.M; i++ {
		sub := v[p.offsets[i] : p.offsets[i]+p.subDims[i]]
		best, bestD := 0, math.Inf(1)
		for c, cent := range p.codebooks[i] {
			d := sqDist(sub, cent)
			if d < bestD {
				best, bestD = c, d
			}
		}
		codes[i] = uint16(best)
	}
	return codes
}

// Decode reconstructs the vector represented by codes.
func (p *Product) Decode(codes []uint16) []float64 {
	out := make([]float64, p.Dim())
	for i := 0; i < p.M; i++ {
		cent := p.codebooks[i][codes[i]]
		copy(out[p.offsets[i]:], cent)
	}
	return out
}

// DistanceTable precomputes, for a query, the squared distance from each
// query sub-vector to every centroid of each sub-codebook. Asymmetric
// distance computation (ADC) then reduces to M table lookups per encoded
// vector.
func (p *Product) DistanceTable(q []float64) [][]float64 {
	table := make([][]float64, p.M)
	for i := 0; i < p.M; i++ {
		sub := q[p.offsets[i] : p.offsets[i]+p.subDims[i]]
		row := make([]float64, len(p.codebooks[i]))
		for c, cent := range p.codebooks[i] {
			row[c] = sqDist(sub, cent)
		}
		table[i] = row
	}
	return table
}

// ADC returns the asymmetric squared distance from the query (via its
// distance table) to an encoded vector.
func ADC(table [][]float64, codes []uint16) float64 {
	var acc float64
	for i, c := range codes {
		acc += table[i][c]
	}
	return acc
}

// Rotation is an orthonormal matrix used as an OPQ-style preprocessing
// step: rotating the data before product quantization decorrelates the
// sub-spaces and balances their variance.
type Rotation struct {
	mat [][]float64 // n×n orthonormal
}

// NewRandomRotation builds a random orthonormal rotation of dimension n via
// Gram–Schmidt on a Gaussian matrix. OPQ proper optimises the rotation
// against the data; a random rotation captures most of the benefit on
// series data (balancing energy across sub-spaces) and is the standard
// cheap approximation.
func NewRandomRotation(n int, seed int64) *Rotation {
	rng := rand.New(rand.NewSource(seed))
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, n)
		for j := range mat[i] {
			mat[i][j] = rng.NormFloat64()
		}
	}
	// Gram–Schmidt orthonormalisation.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += mat[i][k] * mat[j][k]
			}
			for k := 0; k < n; k++ {
				mat[i][k] -= dot * mat[j][k]
			}
		}
		var norm float64
		for k := 0; k < n; k++ {
			norm += mat[i][k] * mat[i][k]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate row (essentially impossible): replace with basis vector.
			for k := 0; k < n; k++ {
				mat[i][k] = 0
			}
			mat[i][i] = 1
			continue
		}
		for k := 0; k < n; k++ {
			mat[i][k] /= norm
		}
	}
	return &Rotation{mat: mat}
}

// Apply rotates v (length must equal the rotation dimension).
func (r *Rotation) Apply(v []float64) []float64 {
	n := len(r.mat)
	if len(v) != n {
		panic(fmt.Sprintf("quant: rotation dim %d != vector %d", n, len(v)))
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		row := r.mat[i]
		for j := 0; j < n; j++ {
			acc += row[j] * v[j]
		}
		out[i] = acc
	}
	return out
}
