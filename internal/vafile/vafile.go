// Package vafile implements the VA+file (Ferhatosmanoglu et al., CIKM
// 2000), with the benchmark paper's modification of approximating the KLT
// decorrelation step with the DFT, and its extensions to ng-, ε- and
// δ-ε-approximate search.
//
// Building: every series is reduced to l DFT coefficients; each coefficient
// dimension gets a non-uniform scalar quantizer whose cell count is set by
// a variance-driven bit allocation (dimensions carrying more energy get
// more bits — the "+" of VA+file over the original VA-file's uniform
// grid). The quantised approximations form the vector-approximation file.
//
// Searching is skip-sequential: scan the (small, memory-resident)
// approximation file computing a lower bound per series, then visit raw
// series in increasing lower-bound order, pruning with the best-so-far
// k-th distance — relaxed by 1/(1+ε) for ε-approximate queries, with the
// r_δ early stop for δ-ε queries, or capped at NProbe raw visits for
// ng-approximate queries.
package vafile

import (
	"fmt"
	"math"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/quant"
	"hydra/internal/storage"
	"hydra/internal/summaries/dft"
)

// Config controls the approximation file.
type Config struct {
	// Coeffs is the number of retained DFT coefficients (paper: 16).
	Coeffs int
	// TotalBits is the bit budget spread across coefficient dimensions.
	TotalBits int
	// TrainSamples caps how many series train the quantizers (0 = all).
	TrainSamples int
}

// DefaultConfig matches the paper's 16-dimension setup with a moderate
// bit budget.
func DefaultConfig() Config {
	return Config{Coeffs: 16, TotalBits: 96, TrainSamples: 4096}
}

func (c Config) validate(length int) error {
	if c.Coeffs < 1 || c.Coeffs > length {
		return fmt.Errorf("vafile: coeffs %d out of [1,%d]", c.Coeffs, length)
	}
	if c.TotalBits < c.Coeffs {
		return fmt.Errorf("vafile: bit budget %d below one bit per dimension (%d)", c.TotalBits, c.Coeffs)
	}
	return nil
}

// File is a VA+file over a series store.
type File struct {
	store *storage.SeriesStore
	cfg   Config
	hist  *core.DistanceHistogram

	quantizers []*quant.Scalar
	bits       []int
	codes      []uint16    // packed approximations, row-major with stride Coeffs
	coeffs     [][]float64 // retained for tests/ablation (footprint-counted)

	gapOff  []int // per-dimension row offsets into a query gap table
	gapLen  int   // total gap-table cells across all dimensions
	scratch sync.Pool
}

// Build constructs the VA+file.
func Build(store *storage.SeriesStore, cfg Config) (*File, error) {
	if err := cfg.validate(store.Length()); err != nil {
		return nil, err
	}
	f := &File{store: store, cfg: cfg}
	n := store.Size()
	l := cfg.Coeffs

	// Pass 1: DFT of every series.
	f.coeffs = make([][]float64, n)
	for i := 0; i < n; i++ {
		f.coeffs[i] = dft.Coefficients(store.Peek(i), l)
	}

	// Variance per dimension over a training sample.
	train := n
	if cfg.TrainSamples > 0 && cfg.TrainSamples < n {
		train = cfg.TrainSamples
	}
	variance := make([]float64, l)
	for d := 0; d < l; d++ {
		var sum, sumSq float64
		for i := 0; i < train; i++ {
			v := f.coeffs[i][d]
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(train)
		variance[d] = sumSq/float64(train) - mean*mean
		if variance[d] < 1e-12 {
			variance[d] = 1e-12
		}
	}

	// Greedy bit allocation: each extra bit quarters a dimension's expected
	// quantization error, so always feed the dimension with the highest
	// remaining error proxy variance/4^bits.
	f.bits = make([]int, l)
	remaining := cfg.TotalBits
	for d := 0; d < l; d++ {
		f.bits[d] = 1
		remaining--
	}
	for ; remaining > 0; remaining-- {
		best, bestErr := 0, -1.0
		for d := 0; d < l; d++ {
			if f.bits[d] >= 16 {
				continue
			}
			e := variance[d] / math.Pow(4, float64(f.bits[d]))
			if e > bestErr {
				best, bestErr = d, e
			}
		}
		f.bits[best]++
	}

	// Train per-dimension quantizers and encode everything.
	f.quantizers = make([]*quant.Scalar, l)
	sample := make([]float64, train)
	for d := 0; d < l; d++ {
		for i := 0; i < train; i++ {
			sample[i] = f.coeffs[i][d]
		}
		f.quantizers[d] = quant.TrainScalar(sample, 1<<uint(f.bits[d]), 20)
	}
	f.codes = make([]uint16, n*l)
	for i := 0; i < n; i++ {
		code := f.codes[i*l : (i+1)*l]
		for d := 0; d < l; d++ {
			code[d] = uint16(f.quantizers[d].Encode(f.coeffs[i][d]))
		}
	}
	f.finish()
	return f, nil
}

// vaScratch is the per-query working set: the gap table, the squared
// lower bounds, the candidate heap and the refinement gather buffers.
// Pooled per File so steady-state queries allocate nothing O(N).
type vaScratch struct {
	gaps2 []float64
	lb2   []float64
	idx   []int32
	ids   []int
	views [][]float32
	d2s   [refineBatch]float64
}

// finish derives the query-time layout (gap-table row offsets) and wires
// the per-File scratch pool; called at the end of Build and Load.
func (f *File) finish() {
	l := f.cfg.Coeffs
	f.gapOff = make([]int, l)
	total := 0
	for d, q := range f.quantizers {
		f.gapOff[d] = total
		total += q.Cells()
	}
	f.gapLen = total
	n := f.Size()
	f.scratch.New = func() interface{} {
		return &vaScratch{
			gaps2: make([]float64, total),
			lb2:   make([]float64, n),
			idx:   make([]int32, n),
			ids:   make([]int, 0, refineBatch),
			views: make([][]float32, 0, refineBatch),
		}
	}
}

// SetHistogram installs the histogram for δ-ε-approximate search.
func (f *File) SetHistogram(h *core.DistanceHistogram) { f.hist = h }

// Name implements core.Method.
func (f *File) Name() string { return "VA+file" }

// Size returns the number of indexed series.
func (f *File) Size() int { return len(f.codes) / f.cfg.Coeffs }

// Bits returns the per-dimension bit allocation (tests, reports).
func (f *File) Bits() []int { return append([]int(nil), f.bits...) }

// Footprint implements core.Method: codes plus quantizer tables plus the
// retained coefficient cache.
func (f *File) Footprint() int64 {
	total := int64(len(f.codes)) * 2
	for _, q := range f.quantizers {
		total += int64(len(q.Centers))*8 + int64(len(q.Boundaries))*8
	}
	for _, c := range f.coeffs {
		total += int64(len(c)) * 8
	}
	return total
}

// lowerBound returns the VA lower bound between the query coefficients and
// the approximation of series i. Retained as the reference implementation:
// Search computes the same accumulation (squared) through the gap-table
// kernel, and tests/benchmarks pin the two against each other.
func (f *File) lowerBound(qc []float64, i int) float64 {
	var acc float64
	l := f.cfg.Coeffs
	code := f.codes[i*l : (i+1)*l]
	for d := range qc {
		g := f.quantizers[d].LowerGap(qc[d], int(code[d]))
		acc += g * g
	}
	return math.Sqrt(acc)
}

// gapTable fills the per-query VA pruning table into buf: for every
// dimension, the squared lower gap from the query coefficient to each
// quantizer cell.
func (f *File) gapTable(qc []float64, buf []float64) kernel.GapTable {
	for d, q := range f.quantizers {
		q.LowerGaps2(qc[d], buf[f.gapOff[d]:])
	}
	return kernel.GapTable{Gaps2: buf, Off: f.gapOff, Dims: f.cfg.Coeffs}
}

// Search implements core.Method. It is safe for concurrent use: the
// approximation file is read-only at query time and raw-data I/O is
// accounted on a per-query store view.
func (f *File) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("vafile: %w", err)
	}
	if len(q.Series) != f.store.Length() {
		return core.Result{}, fmt.Errorf("vafile: query length %d != dataset length %d", len(q.Series), f.store.Length())
	}
	st := f.store.View()
	qc := dft.Coefficients(q.Series, f.cfg.Coeffs)

	// Phase 1: squared lower bounds for every series — one per-(dimension,
	// cell) squared-gap table per query, then a blocked table-gather over
	// the packed code array. The candidate min-heap keyed by (lb², id)
	// replaces the full sort of all N candidates: heapify is O(N) and each
	// visited candidate costs O(log N), so a query that prunes after m
	// visits pays O(N + m·log N) instead of O(N·log N). Bounds stay squared
	// end-to-end; the prune threshold is squared once per batch instead of
	// taking N per-series square roots.
	n := f.Size()
	sc := f.scratch.Get().(*vaScratch)
	tab := f.gapTable(qc, sc.gaps2)
	kernel.VALowerBounds2(tab, f.codes, sc.lb2)
	heapIdx := sc.idx[:n]
	for i := range heapIdx {
		heapIdx[i] = int32(i)
	}
	kernel.SelectLowerBounds2(sc.lb2, heapIdx)

	epsFactor := 1.0
	if q.Mode == core.ModeEpsilon || q.Mode == core.ModeDeltaEpsilon {
		epsFactor = 1 + q.Epsilon
	}
	rDelta := 0.0
	if q.Mode == core.ModeDeltaEpsilon && q.Delta < 1 && f.hist != nil {
		rDelta = f.hist.RDelta(q.Delta, n)
	}
	stopDist := (1 + q.Epsilon) * rDelta

	kset := core.NewKNNSet(q.K)
	res := core.Result{}
	// Phase 2: visit raw series in increasing (lb², id) order — heap pops,
	// so ties visit in deterministic ascending-id order under every kernel
	// — refined in small gathered batches through the active kernel. The
	// prune condition compares squared bounds against the squared
	// threshold (worst/epsFactor)², frozen at batch-gather time; because
	// candidates arrive in increasing lower-bound order, any over-gathered
	// candidate has lb above the final worst, so its exact distance is
	// rejected by the result set and the answers match the per-candidate
	// loop this replaces. The NProbe cap bounds the gather exactly; the
	// δ-ε stop is re-checked after each offer.
	ids := sc.ids[:0]
	views := sc.views[:0]
	pruned := false
	for len(heapIdx) > 0 && !pruned {
		ids = ids[:0]
		views = views[:0]
		t := kset.Worst() / epsFactor
		t2 := t * t
		batchCap := refineBatch
		if q.Mode == core.ModeNG {
			if left := q.NProbe - res.LeavesVisited; left < batchCap {
				batchCap = left
			}
			if batchCap <= 0 {
				break
			}
		}
		for len(heapIdx) > 0 && len(ids) < batchCap {
			top := heapIdx[0]
			if sc.lb2[top] > t2 {
				pruned = true
				break
			}
			_, heapIdx = kernel.PopLowerBound2(sc.lb2, heapIdx)
			id := int(top)
			ids = append(ids, id)
			views = append(views, st.Read(id))
			res.LeavesVisited++ // for VA+file, a "leaf" is one raw series visit
		}
		if len(ids) == 0 {
			break
		}
		lim := kset.Worst()
		var began time.Time
		if q.Obs != nil {
			began = time.Now()
		}
		kernel.SquaredDistsGather(q.Series, views, lim*lim, sc.d2s[:len(ids)])
		if q.Obs != nil {
			q.Obs.ObserveRefine(time.Since(began))
		}
		res.DistCalcs += int64(len(ids))
		stopped := false
		for j, d2 := range sc.d2s[:len(ids)] {
			kset.Offer(ids[j], kernel.Distance(d2))
			if q.Mode == core.ModeDeltaEpsilon && kset.Full() && kset.Worst() <= stopDist {
				stopped = true
				break
			}
		}
		if stopped {
			break
		}
	}
	res.Neighbors = kset.Sorted()
	res.IO = st.Accountant().Snapshot()
	// Return the scratch with raw-series views released; everything else is
	// safe to reuse as-is.
	for j := range views {
		views[j] = nil
	}
	sc.ids = ids[:0]
	sc.views = views[:0]
	f.scratch.Put(sc)
	return res, nil
}

// refineBatch is the phase-2 gather width: candidates are refined through
// the kernel in batches of this size.
const refineBatch = 16
