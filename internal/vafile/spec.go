package vafile

import (
	"fmt"
	"io"

	"hydra/internal/core"
)

func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:          "VA+file",
		Rank:          40,
		Exact:         true,
		NG:            true,
		Epsilon:       true,
		DeltaEpsilon:  true,
		DiskResident:  true,
		FormatVersion: persistVersion,
		ConfigString:  fmt.Sprintf("%+v", DefaultConfig()),
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			cfg := DefaultConfig()
			if cfg.Coeffs > ctx.Data.Length() {
				cfg.Coeffs = ctx.Data.Length()
			}
			f, err := Build(st, cfg)
			if err != nil {
				return core.BuildResult{}, err
			}
			f.SetHistogram(ctx.Histogram())
			return core.BuildResult{Method: f, Store: st}, nil
		},
		Save: func(m core.Method, w io.Writer) error {
			f, ok := m.(*File)
			if !ok {
				return fmt.Errorf("vafile: cannot save %T", m)
			}
			return f.Save(w)
		},
		Load: func(ctx *core.BuildContext, r io.Reader) (core.BuildResult, error) {
			st := ctx.NewStore()
			f, err := Load(st, r)
			if err != nil {
				return core.BuildResult{}, err
			}
			f.SetHistogram(ctx.Histogram())
			return core.BuildResult{Method: f, Store: st}, nil
		},
	})
}
