package vafile

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
	"hydra/internal/summaries/dft"
)

func buildTestFile(t *testing.T, n, length int, cfg Config, seed int64) (*File, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: seed})
	store := storage.NewSeriesStore(data, 0)
	f, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 5, seed+100)
	return f, data, queries
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 32, Seed: 1})
	store := storage.NewSeriesStore(data, 0)
	for i, cfg := range []Config{
		{Coeffs: 0, TotalBits: 10},
		{Coeffs: 40, TotalBits: 100},
		{Coeffs: 8, TotalBits: 4},
	} {
		if _, err := Build(store, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestBitAllocationSumsToBudget(t *testing.T) {
	f, _, _ := buildTestFile(t, 300, 64, Config{Coeffs: 8, TotalBits: 48}, 1)
	total := 0
	for _, b := range f.Bits() {
		total += b
		if b < 1 {
			t.Errorf("dimension with %d bits", b)
		}
	}
	if total != 48 {
		t.Errorf("allocated %d bits, budget 48", total)
	}
}

func TestBitAllocationFollowsVariance(t *testing.T) {
	// Random-walk DFT energy concentrates in low frequencies, so the first
	// dimensions should receive at least as many bits as the last.
	f, _, _ := buildTestFile(t, 500, 64, Config{Coeffs: 8, TotalBits: 48}, 2)
	bits := f.Bits()
	if bits[0] < bits[len(bits)-1] {
		t.Errorf("bit allocation ignores variance: %v", bits)
	}
}

func TestLowerBoundProperty(t *testing.T) {
	// The VA lower bound must never exceed the true distance.
	f, data, queries := buildTestFile(t, 400, 64, DefaultConfig(), 3)
	for qi := 0; qi < queries.Size(); qi++ {
		qc := dft.Coefficients(queries.At(qi), f.cfg.Coeffs)
		for i := 0; i < data.Size(); i++ {
			lb := f.lowerBound(qc, i)
			d := series.Dist(queries.At(qi), data.At(i))
			if lb > d+1e-6 {
				t.Fatalf("query %d series %d: lb %v > dist %v", qi, i, lb, d)
			}
		}
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	f, data, queries := buildTestFile(t, 600, 64, DefaultConfig(), 5)
	gt := scan.GroundTruth(data, queries, 10)
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := f.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		for i := range gt[qi] {
			if math.Abs(res.Neighbors[i].Dist-gt[qi][i].Dist) > 1e-6 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, res.Neighbors[i].Dist, gt[qi][i].Dist)
			}
		}
	}
}

func TestExactSearchPrunesRawReads(t *testing.T) {
	f, _, queries := buildTestFile(t, 2000, 64, DefaultConfig(), 7)
	res, err := f.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesVisited >= 2000 {
		t.Errorf("visited all %d raw series — no pruning", res.LeavesVisited)
	}
	if res.IO.BytesRead >= f.store.TotalBytes() {
		t.Errorf("read whole dataset")
	}
}

func TestNGApproximateCapsRawVisits(t *testing.T) {
	f, _, queries := buildTestFile(t, 1000, 64, DefaultConfig(), 9)
	res, err := f.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeNG, NProbe: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesVisited > 20 {
		t.Errorf("visited %d raw series, cap 20", res.LeavesVisited)
	}
	if len(res.Neighbors) != 5 {
		t.Errorf("%d results", len(res.Neighbors))
	}
}

func TestEpsilonGuaranteeHolds(t *testing.T) {
	f, data, queries := buildTestFile(t, 800, 64, DefaultConfig(), 11)
	k := 5
	gt := scan.GroundTruth(data, queries, k)
	eps := 1.0
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := f.Search(core.Query{Series: queries.At(qi), K: k, Mode: core.ModeEpsilon, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		bound := (1 + eps) * gt[qi][k-1].Dist
		for _, nb := range res.Neighbors {
			if nb.Dist > bound+1e-6 {
				t.Fatalf("query %d: %v > %v", qi, nb.Dist, bound)
			}
		}
	}
}

func TestDeltaEpsilonEarlyStop(t *testing.T) {
	f, data, queries := buildTestFile(t, 1000, 64, DefaultConfig(), 13)
	f.SetHistogram(core.BuildHistogram(data, 2000, 7))
	res, err := f.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeDeltaEpsilon, Epsilon: 0, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 1 {
		t.Fatal("no result")
	}
	// δ=1, ε=0 equals exact.
	gt := scan.GroundTruth(data, queries, 1)
	rd, _ := f.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeDeltaEpsilon, Epsilon: 0, Delta: 1})
	if math.Abs(rd.Neighbors[0].Dist-gt[0][0].Dist) > 1e-6 {
		t.Errorf("delta=1 eps=0: %v vs %v", rd.Neighbors[0].Dist, gt[0][0].Dist)
	}
}

func TestMoreBitsTightenBounds(t *testing.T) {
	// More bits => tighter lower bounds => fewer raw visits for exact search.
	coarse, _, queries := buildTestFile(t, 1500, 64, Config{Coeffs: 8, TotalBits: 16}, 15)
	fine, _, _ := buildTestFile(t, 1500, 64, Config{Coeffs: 8, TotalBits: 80}, 15)
	var coarseVisits, fineVisits int
	for qi := 0; qi < queries.Size(); qi++ {
		rc, _ := coarse.Search(core.Query{Series: queries.At(qi), K: 1, Mode: core.ModeExact})
		rf, _ := fine.Search(core.Query{Series: queries.At(qi), K: 1, Mode: core.ModeExact})
		coarseVisits += rc.LeavesVisited
		fineVisits += rf.LeavesVisited
	}
	if fineVisits > coarseVisits {
		t.Errorf("more bits visited more raw series: %d vs %d", fineVisits, coarseVisits)
	}
}

func TestSearchValidation(t *testing.T) {
	f, _, queries := buildTestFile(t, 100, 32, Config{Coeffs: 8, TotalBits: 32}, 17)
	if _, err := f.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeExact}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := f.Search(core.Query{Series: make(series.Series, 5), K: 1, Mode: core.ModeExact}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestNameAndFootprint(t *testing.T) {
	f, _, _ := buildTestFile(t, 100, 32, Config{Coeffs: 8, TotalBits: 32}, 19)
	if f.Name() != "VA+file" {
		t.Error("name wrong")
	}
	if f.Footprint() <= 0 {
		t.Error("footprint should be positive")
	}
	if f.Size() != 100 {
		t.Errorf("Size = %d", f.Size())
	}
}
