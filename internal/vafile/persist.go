package vafile

import (
	"encoding/gob"
	"fmt"
	"io"

	"hydra/internal/quant"
	"hydra/internal/storage"
)

// Persistence: the approximation file (per-dimension quantizers, bit
// allocation and codes) round-trips through encoding/gob. The retained
// coefficient cache is re-derivable but cheap to store and keeps Load O(1)
// in CPU, so it is included.

type fileSnap struct {
	Version    int
	Cfg        Config
	Bits       []int
	Boundaries [][]float64
	Centers    [][]float64
	Codes      []uint16 // packed row-major, stride Cfg.Coeffs (version 2+)
	Coeffs     [][]float64
}

// persistVersion 2 packs the codes into one row-major array (the query-time
// layout of the gather kernel); version-1 snapshots stored one slice per
// series and are rebuilt.
const persistVersion = 2

// Save serialises the approximation file to w.
func (f *File) Save(w io.Writer) error {
	snap := fileSnap{
		Version: persistVersion,
		Cfg:     f.cfg,
		Bits:    f.bits,
		Codes:   f.codes,
		Coeffs:  f.coeffs,
	}
	for _, q := range f.quantizers {
		snap.Boundaries = append(snap.Boundaries, q.Boundaries)
		snap.Centers = append(snap.Centers, q.Centers)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vafile: encoding: %w", err)
	}
	return nil
}

// Load reads an approximation file saved with Save and attaches it to the
// store holding the same dataset it was built over.
func Load(store *storage.SeriesStore, r io.Reader) (*File, error) {
	var snap fileSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vafile: decoding: %w", err)
	}
	if snap.Version != persistVersion {
		return nil, fmt.Errorf("vafile: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.Codes) != store.Size()*snap.Cfg.Coeffs {
		return nil, fmt.Errorf("vafile: snapshot holds %d code words, store holds %d series of %d dims",
			len(snap.Codes), store.Size(), snap.Cfg.Coeffs)
	}
	f := &File{
		store:  store,
		cfg:    snap.Cfg,
		bits:   snap.Bits,
		codes:  snap.Codes,
		coeffs: snap.Coeffs,
	}
	for i := range snap.Boundaries {
		f.quantizers = append(f.quantizers, &quant.Scalar{
			Boundaries: snap.Boundaries[i],
			Centers:    snap.Centers[i],
		})
	}
	f.finish()
	return f, nil
}
