package vafile

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/kernel"
	"hydra/internal/storage"
	"hydra/internal/summaries/dft"
)

// adversarialQueries returns query series exercising the lower-bound edge
// cases: NaN, ±Inf and constant values.
func adversarialQueries(length int) [][]float32 {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	mk := func(fill float32) []float32 {
		s := make([]float32, length)
		for i := range s {
			s[i] = fill
		}
		return s
	}
	withNaN := mk(1)
	withNaN[0] = nan
	withNaN[length/2] = nan
	withInf := mk(-1)
	withInf[1] = inf
	withInf[length-1] = -inf
	return [][]float32{mk(0), mk(3.5), withNaN, withInf}
}

// TestGapTablePathMatchesReference pins the tentpole contract at the
// method layer: for every series, the gathered squared bound equals the
// reference per-dimension lowerBound loop bit-for-bit, under both kernels.
func TestGapTablePathMatchesReference(t *testing.T) {
	f, data, queries := buildTestFile(t, 400, 64, DefaultConfig(), 31)
	_ = data
	qs := make([][]float32, 0, queries.Size()+4)
	for qi := 0; qi < queries.Size(); qi++ {
		qs = append(qs, queries.At(qi))
	}
	qs = append(qs, adversarialQueries(64)...)

	defer kernel.Use(kernel.Default)
	for _, k := range kernel.Kernels() {
		kernel.Use(k)
		for qi, q := range qs {
			qc := dft.Coefficients(q, f.cfg.Coeffs)
			buf := make([]float64, f.gapLen)
			tab := f.gapTable(qc, buf)
			lb2 := make([]float64, f.Size())
			kernel.VALowerBounds2(tab, f.codes, lb2)
			for i := 0; i < f.Size(); i++ {
				want := f.lowerBound(qc, i)
				got := math.Sqrt(lb2[i])
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("kernel %v query %d series %d: gather bound %v, reference %v", k, qi, i, got, want)
				}
			}
		}
	}
}

// TestLowerBoundNeverExceedsExact is the property test: under both
// kernels, every gathered lower bound is <= the exact distance, for random
// and adversarial queries (NaN bounds are excluded: NaN exact distances
// admit no ordering).
func TestLowerBoundNeverExceedsExact(t *testing.T) {
	f, data, queries := buildTestFile(t, 300, 64, DefaultConfig(), 33)
	qs := make([][]float32, 0, queries.Size()+4)
	for qi := 0; qi < queries.Size(); qi++ {
		qs = append(qs, queries.At(qi))
	}
	qs = append(qs, adversarialQueries(64)...)
	defer kernel.Use(kernel.Default)
	for _, k := range kernel.Kernels() {
		kernel.Use(k)
		for qi, q := range qs {
			qc := dft.Coefficients(q, f.cfg.Coeffs)
			buf := make([]float64, f.gapLen)
			tab := f.gapTable(qc, buf)
			lb2 := make([]float64, f.Size())
			kernel.VALowerBounds2(tab, f.codes, lb2)
			for i := 0; i < f.Size(); i++ {
				exact := kernel.Dist(q, data.At(i))
				lb := math.Sqrt(lb2[i])
				if math.IsNaN(lb) || math.IsNaN(exact) {
					continue
				}
				if lb > exact+1e-6 {
					t.Fatalf("kernel %v query %d series %d: lower bound %v > exact %v", k, qi, i, lb, exact)
				}
			}
		}
	}
}

// TestConcurrentSearchesShareScratchPool exercises the per-File scratch
// pool under concurrency (meaningful under -race): parallel searches must
// not interfere and must agree with a serial run.
func TestConcurrentSearchesShareScratchPool(t *testing.T) {
	f, _, queries := buildTestFile(t, 500, 64, DefaultConfig(), 35)
	want := make([][]core.Neighbor, queries.Size())
	for i := range want {
		res, err := f.Search(core.Query{Series: queries.At(i), K: 5, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Neighbors
	}
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*queries.Size())
	for r := 0; r < rounds; r++ {
		for i := 0; i < queries.Size(); i++ {
			wg.Add(1)
			go func(i int, q []float32) {
				defer wg.Done()
				res, err := f.Search(core.Query{Series: q, K: 5, Mode: core.ModeExact})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Neighbors) != len(want[i]) {
					errs <- fmt.Errorf("query %d: got %d neighbors, want %d", i, len(res.Neighbors), len(want[i]))
					return
				}
				for j, nb := range res.Neighbors {
					if nb != want[i][j] {
						errs <- fmt.Errorf("query %d neighbor %d: got %+v, want %+v", i, j, nb, want[i][j])
						return
					}
				}
			}(i, queries.At(i))
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSearchAllocatesNoCandidateSlice guards the satellite: steady-state
// searches reuse pooled scratch instead of allocating O(N) per query.
func TestSearchAllocatesNoCandidateSlice(t *testing.T) {
	f, _, queries := buildTestFile(t, 2000, 64, DefaultConfig(), 37)
	q := core.Query{Series: queries.At(0), K: 5, Mode: core.ModeExact}
	// Warm the pool.
	if _, err := f.Search(q); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := f.Search(q); err != nil {
			t.Fatal(err)
		}
	})
	// The remaining allocations are O(k + coeffs): DFT coefficients, the
	// k-NN set, the result slice, store view — nothing proportional to N
	// (which would add thousands per run at this size).
	if allocs > 60 {
		t.Errorf("Search allocates %v objects per query; scratch pool not effective", allocs)
	}
}

func BenchmarkPhase1(b *testing.B) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 4096, Length: 64, Seed: 40})
	store := storage.NewSeriesStore(data, 0)
	f, err := Build(store, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 1, 41)
	qc := dft.Coefficients(queries.At(0), f.cfg.Coeffs)
	n := f.Size()

	// Legacy shape: per-candidate LowerGap calls + sqrt per series.
	b.Run("legacy-scan", func(b *testing.B) {
		lbs := make([]float64, n)
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				lbs[j] = f.lowerBound(qc, j)
			}
		}
	})
	for _, k := range kernel.Kernels() {
		b.Run("gap-table/"+k.String(), func(b *testing.B) {
			buf := make([]float64, f.gapLen)
			lb2 := make([]float64, n)
			for i := 0; i < b.N; i++ {
				tab := f.gapTable(qc, buf)
				k.VALowerBounds2(tab, f.codes, lb2)
			}
		})
	}
}
