package vafile

import (
	"bytes"
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f, data, queries := buildTestFile(t, 500, 64, DefaultConfig(), 81)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(storage.NewSeriesStore(data, 0), &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range f.Bits() {
		if loaded.Bits()[i] != b {
			t.Fatalf("bit allocation differs at %d", i)
		}
	}
	for qi := 0; qi < queries.Size(); qi++ {
		q := core.Query{Series: queries.At(qi), K: 5, Mode: core.ModeExact}
		a, err := f.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Neighbors {
			if math.Abs(a.Neighbors[i].Dist-b.Neighbors[i].Dist) > 1e-9 {
				t.Fatalf("query %d rank %d differs after reload", qi, i)
			}
		}
	}
}

func TestLoadRejectsWrongStore(t *testing.T) {
	f, _, _ := buildTestFile(t, 100, 32, Config{Coeffs: 8, TotalBits: 32}, 83)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 60, Length: 32, Seed: 3})
	if _, err := Load(storage.NewSeriesStore(other, 0), &buf); err == nil {
		t.Error("mismatched store accepted")
	}
}
