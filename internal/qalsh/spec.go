package qalsh

import "hydra/internal/core"

func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:         "QALSH",
		Rank:         90,
		NG:           true,
		DeltaEpsilon: true,
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			idx, err := Build(st, DefaultConfig())
			if err != nil {
				return core.BuildResult{}, err
			}
			return core.BuildResult{Method: idx, Store: st}, nil
		},
	})
}
