// Package qalsh implements QALSH (Huang et al., PVLDB 2015): query-aware
// locality-sensitive hashing for δ-ε-approximate (c-ANN) search.
//
// Classic LSH shifts its projections randomly *before* queries arrive;
// QALSH instead anchors each hash bucket on the query itself: every series
// is projected onto L random lines and stored sorted per line, and at query
// time a bucket of half-width w·R/2 is centred on the query's own
// projection. A series colliding with the query on at least `CollisionThreshold`
// lines becomes a candidate and its true distance is computed. If the
// current radius R yields no satisfactory answer, R is multiplied by the
// approximation ratio c and the windows widen (virtual rehashing) — no
// index rebuild needed for a different accuracy, except that the theory
// fixes c at build time (the paper's complaint that QALSH "needs to build a
// different index for each desired query accuracy" refers to c).
package qalsh

import (
	"fmt"
	"sort"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/storage"
	"hydra/internal/summaries/proj"
)

// Config controls the hash family.
type Config struct {
	// Lines is the number of projection lines L.
	Lines int
	// CollisionThreshold is how many lines must collide before a series
	// becomes a candidate (QALSH's l, 1 <= l <= Lines).
	CollisionThreshold int
	// W is the bucket width at radius 1.
	W float64
	// C is the approximation ratio baked into the index (c = 1+ε).
	C float64
	// BetaFraction caps candidates per query as a fraction of n.
	BetaFraction float64
	// Seed drives the projection lines.
	Seed int64
}

// DefaultConfig returns laptop-scale defaults close to the original's
// recommendations (w ≈ 2.7 for c=2).
func DefaultConfig() Config {
	return Config{Lines: 32, CollisionThreshold: 8, W: 2.7, C: 2, BetaFraction: 0.1, Seed: 1}
}

func (c Config) validate() error {
	if c.Lines < 1 {
		return fmt.Errorf("qalsh: lines %d < 1", c.Lines)
	}
	if c.CollisionThreshold < 1 || c.CollisionThreshold > c.Lines {
		return fmt.Errorf("qalsh: collision threshold %d out of [1,%d]", c.CollisionThreshold, c.Lines)
	}
	if c.W <= 0 {
		return fmt.Errorf("qalsh: bucket width %v <= 0", c.W)
	}
	if c.C <= 1 {
		return fmt.Errorf("qalsh: approximation ratio %v <= 1", c.C)
	}
	if c.BetaFraction <= 0 || c.BetaFraction > 1 {
		return fmt.Errorf("qalsh: beta fraction %v out of (0,1]", c.BetaFraction)
	}
	return nil
}

// lineIndex is one projection line with its sorted (value, id) table.
type lineIndex struct {
	line   *proj.Line
	values []float64 // sorted projections
	ids    []int     // ids aligned with values
}

// Index is a QALSH index over a series store.
type Index struct {
	store *storage.SeriesStore
	cfg   Config
	lines []lineIndex
}

// Build constructs the index.
func Build(store *storage.SeriesStore, cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	idx := &Index{store: store, cfg: cfg}
	n := store.Size()
	idx.lines = make([]lineIndex, cfg.Lines)
	for li := range idx.lines {
		l := proj.NewLine(store.Length(), cfg.Seed+int64(li)*104729)
		type pv struct {
			v  float64
			id int
		}
		pairs := make([]pv, n)
		for i := 0; i < n; i++ {
			pairs[i] = pv{v: l.Value(store.Peek(i)), id: i}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		values := make([]float64, n)
		ids := make([]int, n)
		for i, p := range pairs {
			values[i] = p.v
			ids[i] = p.id
		}
		idx.lines[li] = lineIndex{line: l, values: values, ids: ids}
	}
	return idx, nil
}

// Name implements core.Method.
func (idx *Index) Name() string { return "QALSH" }

// Size returns the number of indexed series.
func (idx *Index) Size() int { return idx.store.Size() }

// Footprint implements core.Method: L sorted tables of (float64, int).
func (idx *Index) Footprint() int64 {
	var total int64
	for _, l := range idx.lines {
		total += int64(len(l.values))*16 + int64(idx.store.Length())*8
	}
	return total
}

// Search implements core.Method. QALSH answers δ-ε-approximate queries
// (Table 1); ModeNG is also accepted with NProbe as the candidate budget
// so the harness can sweep a speed/accuracy curve.
func (idx *Index) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("qalsh: %w", err)
	}
	if q.Mode == core.ModeExact || q.Mode == core.ModeEpsilon {
		return core.Result{}, fmt.Errorf("qalsh: %s search not supported (delta-epsilon or ng only)", q.Mode)
	}
	if len(q.Series) != idx.store.Length() {
		return core.Result{}, fmt.Errorf("qalsh: query length %d != dataset length %d", len(q.Series), idx.store.Length())
	}
	st := idx.store.View()
	n := st.Size()

	budget := int(idx.cfg.BetaFraction * float64(n))
	if q.Mode == core.ModeNG {
		budget = q.NProbe
	}
	if budget < q.K {
		budget = q.K
	}
	if budget > n {
		budget = n
	}

	// Query projections and per-line expansion cursors (two pointers
	// starting at the query's position in each sorted table).
	type cursorState struct {
		qv     float64
		lo, hi int // next unvisited positions on each side
	}
	cursors := make([]cursorState, len(idx.lines))
	for li := range idx.lines {
		qv := idx.lines[li].line.Value(q.Series)
		pos := sort.SearchFloat64s(idx.lines[li].values, qv)
		cursors[li] = cursorState{qv: qv, lo: pos - 1, hi: pos}
	}

	collisions := make(map[int]int, budget*4)
	examined := make(map[int]struct{}, budget)
	kset := core.NewKNNSet(q.K)
	res := core.Result{}

	examine := func(id int) {
		if _, ok := examined[id]; ok {
			return
		}
		examined[id] = struct{}{}
		raw := st.Read(id)
		res.LeavesVisited++
		lim := kset.Worst()
		d2 := kernel.SquaredDistEarlyAbandon(q.Series, raw, lim*lim)
		res.DistCalcs++
		kset.Offer(id, kernel.Distance(d2))
	}

	// Virtual rehashing: R = 1, c, c², ... widening the per-line windows.
	radius := 1.0
	const maxRounds = 64
	for round := 0; round < maxRounds && len(examined) < budget; round++ {
		half := idx.cfg.W * radius / 2
		for li := range idx.lines {
			l := &idx.lines[li]
			c := &cursors[li]
			for c.hi < n && l.values[c.hi] <= c.qv+half {
				id := l.ids[c.hi]
				collisions[id]++
				if collisions[id] == idx.cfg.CollisionThreshold {
					examine(id)
					if len(examined) >= budget {
						break
					}
				}
				c.hi++
			}
			if len(examined) >= budget {
				break
			}
			for c.lo >= 0 && l.values[c.lo] >= c.qv-half {
				id := l.ids[c.lo]
				collisions[id]++
				if collisions[id] == idx.cfg.CollisionThreshold {
					examine(id)
					if len(examined) >= budget {
						break
					}
				}
				c.lo--
			}
			if len(examined) >= budget {
				break
			}
		}
		// Termination: a c-approximate answer found within this radius.
		if kset.Full() && kset.Worst() <= idx.cfg.C*radius {
			break
		}
		radius *= idx.cfg.C
	}

	// Guarantee k answers even on pathological data: fall back to the
	// closest remaining projected candidates of the first line.
	if !kset.Full() {
		first := idx.lines[0]
		order := make([]int, 0, n)
		c := cursors[0]
		lo, hi := c.lo, c.hi
		for lo >= 0 || hi < n {
			if hi >= n || (lo >= 0 && c.qv-first.values[lo] <= first.values[hi]-c.qv) {
				order = append(order, first.ids[lo])
				lo--
			} else {
				order = append(order, first.ids[hi])
				hi++
			}
		}
		for _, id := range order {
			if kset.Full() {
				break
			}
			examine(id)
		}
	}

	res.Neighbors = kset.Sorted()
	res.IO = st.Accountant().Snapshot()
	return res, nil
}
