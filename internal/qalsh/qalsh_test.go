package qalsh

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func buildTestIndex(t *testing.T, n, length int, cfg Config, seed int64) (*Index, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: seed})
	store := storage.NewSeriesStore(data, 0)
	idx, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 5, seed+100)
	return idx, data, queries
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 16, Seed: 1})
	store := storage.NewSeriesStore(data, 0)
	for i, cfg := range []Config{
		{Lines: 0, CollisionThreshold: 1, W: 2, C: 2, BetaFraction: 0.1},
		{Lines: 8, CollisionThreshold: 0, W: 2, C: 2, BetaFraction: 0.1},
		{Lines: 8, CollisionThreshold: 9, W: 2, C: 2, BetaFraction: 0.1},
		{Lines: 8, CollisionThreshold: 4, W: 0, C: 2, BetaFraction: 0.1},
		{Lines: 8, CollisionThreshold: 4, W: 2, C: 1, BetaFraction: 0.1},
		{Lines: 8, CollisionThreshold: 4, W: 2, C: 2, BetaFraction: 0},
	} {
		if _, err := Build(store, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestLinesAreSorted(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 300, 32, DefaultConfig(), 1)
	for li, l := range idx.lines {
		for i := 1; i < len(l.values); i++ {
			if l.values[i] < l.values[i-1] {
				t.Fatalf("line %d not sorted at %d", li, i)
			}
		}
		if len(l.ids) != 300 {
			t.Fatalf("line %d has %d ids", li, len(l.ids))
		}
	}
}

func TestReturnsKResults(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 500, 64, DefaultConfig(), 3)
	for _, k := range []int{1, 10, 50} {
		res, err := idx.Search(core.Query{Series: queries.At(0), K: k, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Neighbors) != k {
			t.Errorf("k=%d: %d results", k, len(res.Neighbors))
		}
	}
}

func TestFindsGoodNeighbors(t *testing.T) {
	idx, data, queries := buildTestIndex(t, 2000, 64, DefaultConfig(), 5)
	gt := scan.GroundTruth(data, queries, 10)
	var recallSum float64
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := idx.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		trueIDs := map[int]struct{}{}
		for _, nb := range gt[qi] {
			trueIDs[nb.ID] = struct{}{}
		}
		for _, nb := range res.Neighbors {
			if _, ok := trueIDs[nb.ID]; ok {
				recallSum++
			}
		}
	}
	if avg := recallSum / float64(10*queries.Size()); avg < 0.4 {
		t.Errorf("QALSH recall %v — collision counting is not finding neighbours", avg)
	}
}

func TestExaminesFractionOfData(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 3000, 64, DefaultConfig(), 7)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesVisited > 3000/2 {
		t.Errorf("examined %d of 3000 — not sub-linear", res.LeavesVisited)
	}
}

func TestNGBudgetRespected(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 1000, 64, DefaultConfig(), 9)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 3, Mode: core.ModeNG, NProbe: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesVisited > 30+3 {
		t.Errorf("examined %d with budget 30", res.LeavesVisited)
	}
}

func TestRejectsExactModes(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 100, 32, DefaultConfig(), 11)
	for _, mode := range []core.Mode{core.ModeExact, core.ModeEpsilon} {
		if _, err := idx.Search(core.Query{Series: queries.At(0), K: 1, Mode: mode, Epsilon: 1}); err == nil {
			t.Errorf("mode %v should be rejected", mode)
		}
	}
}

func TestCollisionThresholdFiltersNoise(t *testing.T) {
	// With threshold = Lines (all lines must collide), far fewer candidates
	// qualify than with threshold 1.
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 800, Length: 64, Seed: 13})
	store1 := storage.NewSeriesStore(data, 0)
	store2 := storage.NewSeriesStore(data, 0)
	loose, err := Build(store1, Config{Lines: 16, CollisionThreshold: 1, W: 2.7, C: 2, BetaFraction: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Build(store2, Config{Lines: 16, CollisionThreshold: 16, W: 2.7, C: 2, BetaFraction: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.Queries(data, dataset.KindWalk, 1, 99).At(0)
	rl, err := loose.Search(core.Query{Series: q, K: 1, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := strict.Search(core.Query{Series: q, K: 1, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if rs.LeavesVisited > rl.LeavesVisited {
		t.Errorf("strict threshold examined more (%d) than loose (%d)", rs.LeavesVisited, rl.LeavesVisited)
	}
}

func TestSearchValidation(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 100, 32, DefaultConfig(), 15)
	if _, err := idx.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeNG, NProbe: 5}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := idx.Search(core.Query{Series: make(series.Series, 5), K: 1, Mode: core.ModeNG, NProbe: 5}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestNameFootprint(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 100, 32, DefaultConfig(), 17)
	if idx.Name() != "QALSH" || idx.Size() != 100 {
		t.Error("metadata wrong")
	}
	if idx.Footprint() <= 0 {
		t.Error("footprint should be positive")
	}
}
