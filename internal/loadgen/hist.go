// Package loadgen is the workload replay harness behind cmd/hydra-loadgen:
// a deterministic (seeded) traffic generator that drives a live hydra-serve
// over HTTP in open-loop (fixed arrival rate, coordinated-omission-safe) or
// closed-loop (N concurrent clients) mode with a mixed request profile, and
// reports per-class tail latency, throughput and an SLO error budget as
// machine-readable BENCH_loadgen.json rows for hydra-benchgate.
package loadgen

import "math"

// The latency histogram is log-bucketed: bucket boundaries grow
// geometrically by 2^(1/bucketsPerOctave) from histMinSeconds, so the
// worst-case relative quantile error is bounded by the bucket width
// (~4.4% per bucket, ~2.2% for the geometric-mean estimate) at any scale
// from a microsecond to minutes. Buckets are a fixed array, which is what
// makes histograms mergeable by plain element-wise addition — per-worker
// histograms merge associatively into per-class totals.
const (
	histMinSeconds   = 1e-6
	bucketsPerOctave = 16
	histOctaves      = 30 // 1µs * 2^30 ≈ 1074s of range
	histBucketCount  = histOctaves * bucketsPerOctave
)

// Histogram is a mergeable log-bucketed latency histogram. The zero value
// is ready to use. Count, Sum, Min and Max are exact; quantiles are
// bucket-resolved with a ~2.2% worst-case relative error (clamped into
// [Min, Max], so single-sample and extreme quantiles are exact).
type Histogram struct {
	counts   [histBucketCount]int64
	count    int64
	sum      float64
	min, max float64
}

// bucketIndex maps a latency in seconds onto its bucket.
func bucketIndex(seconds float64) int {
	if seconds <= histMinSeconds {
		return 0
	}
	i := int(math.Log2(seconds/histMinSeconds) * bucketsPerOctave)
	if i < 0 {
		i = 0
	}
	if i >= histBucketCount {
		i = histBucketCount - 1
	}
	return i
}

// bucketEstimate is the representative value reported for a bucket: the
// geometric mean of its bounds, which halves the worst-case relative error
// versus reporting either edge.
func bucketEstimate(i int) float64 {
	lo := histMinSeconds * math.Pow(2, float64(i)/bucketsPerOctave)
	return lo * math.Pow(2, 0.5/bucketsPerOctave)
}

// Record adds one latency sample (negative samples count as zero).
func (h *Histogram) Record(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	h.counts[bucketIndex(seconds)]++
	if h.count == 0 || seconds < h.min {
		h.min = seconds
	}
	if h.count == 0 || seconds > h.max {
		h.max = seconds
	}
	h.count++
	h.sum += seconds
}

// Merge folds o into h. Merging is associative and commutative on the
// bucket counts, count, min and max (sums differ only by float addition
// order), so per-worker histograms can be combined in any tree shape.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all recorded samples in seconds.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest recorded sample (exact), or 0 when empty.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest recorded sample (exact), or 0 when empty.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) under the same rank
// convention as a sorted-sample oracle: the value at 1-based rank
// ceil(q·count). Empty histograms return 0; q=0 returns Min and q=1
// returns Max exactly.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return math.Min(math.Max(bucketEstimate(i), h.min), h.max)
		}
	}
	return h.max
}
