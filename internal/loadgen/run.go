package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/series"
)

// Loop modes.
const (
	// LoopOpen fires requests at their scheduled arrival times regardless
	// of completions, measuring latency from the scheduled arrival — the
	// coordinated-omission-safe way to observe tail latency under a fixed
	// offered rate.
	LoopOpen = "open"
	// LoopClosed runs N concurrent clients that each issue the next request
	// as soon as the previous one completes, measuring service latency from
	// the actual send.
	LoopClosed = "closed"
)

// Options configures a replay run.
type Options struct {
	// BaseURL is the hydra-serve base URL (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Loop is LoopOpen or LoopClosed.
	Loop string
	// Rate is the open-loop offered arrival rate in requests/second; it
	// must match the rate the schedule was generated with.
	Rate float64
	// Clients is the closed-loop concurrency (default 8). In open loop it
	// bounds in-flight requests only as a transport-level safety valve
	// (default 512) — scheduled arrivals never wait for it to measure.
	Clients int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one sized for
	// the run's concurrency.
	Client *http.Client
	// SlowTraces keeps the N slowest successful requests per class together
	// with their X-Hydra-Trace-Id, so a tail-latency report points straight
	// at the server-side traces behind it (GET /debug/requests). 0 defaults
	// to 3; negative disables.
	SlowTraces int
}

// SlowRequest is one retained slow request: its measured latency and the
// server-assigned trace ID from the X-Hydra-Trace-Id response header.
type SlowRequest struct {
	Seconds float64
	TraceID string
}

// ClassStats accumulates one request class's replay outcome. OK counts
// every 2xx answer and includes Cached (the subset replayed from the
// server's result cache); Shed (429 overloaded) and Draining (503
// shutting_down) are explained refusals counted apart from Errors, which
// is everything unexplained — transport failures and any other status.
// Only OK responses contribute latency samples.
type ClassStats struct {
	Class      Class
	Hist       Histogram
	Requests   int64
	OK         int64
	Cached     int64
	Shed       int64
	Draining   int64
	Errors     int64
	FirstError string
	// Slowest holds the class's slowest successful requests, descending,
	// capped at Options.SlowTraces.
	Slowest []SlowRequest
}

// noteSlow offers one successful request to the slowest-N list.
func (st *ClassStats) noteSlow(seconds float64, traceID string, keep int) {
	if keep <= 0 || traceID == "" {
		return
	}
	i := sort.Search(len(st.Slowest), func(i int) bool { return st.Slowest[i].Seconds < seconds })
	if i >= keep {
		return
	}
	st.Slowest = append(st.Slowest, SlowRequest{})
	copy(st.Slowest[i+1:], st.Slowest[i:])
	st.Slowest[i] = SlowRequest{Seconds: seconds, TraceID: traceID}
	if len(st.Slowest) > keep {
		st.Slowest = st.Slowest[:keep]
	}
}

// Report is one replay's full outcome, per class plus run-level facts.
type Report struct {
	Loop        string
	OfferedRate float64 // open-loop offered arrivals/second (0 closed-loop)
	WallSeconds float64 // first scheduled arrival to last completion
	Classes     []ClassStats
}

// Totals sums the per-class counters.
func (r *Report) Totals() (requests, ok, cached, shed, draining, errors int64) {
	for i := range r.Classes {
		c := &r.Classes[i]
		requests += c.Requests
		ok += c.OK
		cached += c.Cached
		shed += c.Shed
		draining += c.Draining
		errors += c.Errors
	}
	return
}

// outcome classifies one response.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeCached
	outcomeShed
	outcomeDraining
	outcomeError
)

// runner is the per-replay state shared by the client goroutines.
type runner struct {
	profile Profile
	queries *series.Dataset
	opts    Options
	client  *http.Client
	mu      sync.Mutex
	classes []ClassStats
}

// wireRequest is the POST /v1/query body a class request renders to.
type wireRequest struct {
	Method string    `json:"method"`
	Mode   string    `json:"mode,omitempty"`
	K      int       `json:"k"`
	NProbe int       `json:"nprobe,omitempty"`
	Query  []float32 `json:"query"`
}

// Run replays a schedule against a live server and reports per-class
// latency and outcome counts. queries is the request query pool; every
// Request.QueryID indexes into it.
func Run(p Profile, reqs []Request, queries *series.Dataset, opts Options) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: options need a base URL")
	}
	if queries == nil || queries.Size() < p.QueryPool {
		return nil, fmt.Errorf("loadgen: query pool needs %d series, got %d", p.QueryPool, queriesSize(queries))
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Clients <= 0 {
		if opts.Loop == LoopOpen {
			opts.Clients = 512
		} else {
			opts.Clients = 8
		}
	}
	if opts.SlowTraces == 0 {
		opts.SlowTraces = 3
	}
	r := &runner{
		profile: p,
		queries: queries,
		opts:    opts,
		client:  opts.Client,
		classes: make([]ClassStats, len(p.Classes)),
	}
	for i := range r.classes {
		r.classes[i].Class = p.Classes[i]
	}
	if r.client == nil {
		r.client = &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        opts.Clients,
				MaxIdleConnsPerHost: opts.Clients,
			},
		}
	}

	start := time.Now()
	switch opts.Loop {
	case LoopOpen:
		r.runOpen(reqs, start)
	case LoopClosed:
		r.runClosed(reqs)
	default:
		return nil, fmt.Errorf("loadgen: unknown loop mode %q (want %s|%s)", opts.Loop, LoopOpen, LoopClosed)
	}

	rep := &Report{
		Loop:        opts.Loop,
		WallSeconds: time.Since(start).Seconds(),
		Classes:     r.classes,
	}
	if opts.Loop == LoopOpen {
		rep.OfferedRate = opts.Rate
	}
	return rep, nil
}

func queriesSize(d *series.Dataset) int {
	if d == nil {
		return 0
	}
	return d.Size()
}

// runOpen dispatches each request at its scheduled arrival and measures
// latency from that arrival, never from the (possibly late) send: if the
// dispatcher or the server falls behind, the delay is charged to the
// request instead of being silently omitted. The semaphore bounds only
// transport-level concurrency; a request that waited for a slot still
// measures from its scheduled arrival.
func (r *runner) runOpen(reqs []Request, start time.Time) {
	sem := make(chan struct{}, r.opts.Clients)
	var wg sync.WaitGroup
	for i := range reqs {
		rq := reqs[i]
		scheduled := start.Add(rq.At)
		if wait := time.Until(scheduled); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r.do(rq, scheduled)
		}()
	}
	wg.Wait()
}

// runClosed runs Clients workers pulling requests off the schedule in
// order; latency is measured from each actual send.
func (r *runner) runClosed(reqs []Request) {
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for c := 0; c < r.opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(len(reqs)) {
					return
				}
				r.do(reqs[i], time.Now())
			}
		}()
	}
	wg.Wait()
}

// do issues one request and records its outcome; measureFrom is the
// latency origin (scheduled arrival open-loop, send time closed-loop).
func (r *runner) do(rq Request, measureFrom time.Time) {
	c := r.profile.Classes[rq.Class]
	body, err := json.Marshal(wireRequest{
		Method: c.Method,
		Mode:   c.Mode,
		K:      c.K,
		NProbe: c.NProbe,
		Query:  []float32(r.queries.At(rq.QueryID)),
	})
	var out outcome
	var detail, traceID string
	if err != nil {
		out, detail = outcomeError, err.Error()
	} else {
		out, detail, traceID = r.post(body)
	}
	elapsed := time.Since(measureFrom).Seconds()

	r.mu.Lock()
	defer r.mu.Unlock()
	st := &r.classes[rq.Class]
	st.Requests++
	switch out {
	case outcomeOK, outcomeCached:
		st.OK++
		if out == outcomeCached {
			st.Cached++
		}
		st.Hist.Record(elapsed)
		st.noteSlow(elapsed, traceID, r.opts.SlowTraces)
	case outcomeShed:
		st.Shed++
	case outcomeDraining:
		st.Draining++
	default:
		st.Errors++
		if st.FirstError == "" {
			st.FirstError = detail
		}
	}
}

// post sends one query body and classifies the response; the third return
// is the server's X-Hydra-Trace-Id (empty when tracing is disabled).
func (r *runner) post(body []byte) (outcome, string, string) {
	resp, err := r.client.Post(r.opts.BaseURL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcomeError, err.Error(), ""
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get("X-Hydra-Trace-Id")
	// Drain (bounded) so the connection is reusable; error bodies are
	// small JSON, answers can be larger but still worth reading fully for
	// keep-alive.
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if resp.StatusCode == http.StatusOK {
		if resp.Header.Get("X-Hydra-Cached") == "true" {
			return outcomeCached, "", traceID
		}
		return outcomeOK, "", traceID
	}
	var shape struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	_ = json.Unmarshal(blob, &shape)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests && shape.Error.Code == "overloaded":
		return outcomeShed, "", traceID
	case resp.StatusCode == http.StatusServiceUnavailable && shape.Error.Code == "shutting_down":
		return outcomeDraining, "", traceID
	}
	return outcomeError, fmt.Sprintf("status %d code %q: %s", resp.StatusCode, shape.Error.Code, shape.Error.Message), traceID
}
