package loadgen

import (
	"sync"
	"testing"
	"time"

	"hydra/internal/server"
)

// TestDrainUnderLiveLoad replays an open-loop schedule against a live
// server and flips it into draining mode mid-replay (the same latch
// SIGTERM trips in cmd/hydra-serve). In-flight requests must complete,
// requests arriving after the latch must get the documented 503
// "shutting_down", and the error budget must classify those as draining —
// an orderly drain is not an outage, so it must not spend budget or
// violate the SLO.
func TestDrainUnderLiveLoad(t *testing.T) {
	srv, ts := newLiveServer(t, server.Config{CacheMaxBytes: 1 << 20})

	p := DefaultProfile()
	p.QueryPool = 8
	pool := testPool(p.QueryPool, 32)

	// Pre-hydrate every class's method so the drain phase measures
	// serving, not first-touch index builds.
	warm, err := Run(p, p.Schedule(2, 24, 0), pool, Options{
		BaseURL: ts.URL, Loop: LoopClosed, Clients: 4, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("warm replay: %v", err)
	}
	if _, ok, _, _, _, errs := warm.Totals(); ok == 0 || errs > 0 {
		t.Fatalf("warm replay unhealthy: ok=%d errors=%d", ok, errs)
	}

	// 2 seconds of traffic at 200/s; the latch trips at ~0.8s, so a
	// healthy head and a draining tail are both guaranteed.
	reqs := p.Schedule(3, 400, 200)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(800 * time.Millisecond)
		srv.BeginShutdown()
	}()
	rep, err := Run(p, reqs, pool, Options{
		BaseURL: ts.URL, Loop: LoopOpen, Rate: 200, Timeout: 30 * time.Second,
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("drain replay: %v", err)
	}

	requests, ok, _, shed, draining, errors := rep.Totals()
	if requests != int64(len(reqs)) {
		t.Fatalf("requests accounted %d, scheduled %d", requests, len(reqs))
	}
	if ok+shed+draining+errors != requests {
		t.Fatalf("outcomes do not sum: ok=%d shed=%d draining=%d errors=%d of %d", ok, shed, draining, errors, requests)
	}
	// In-flight requests from before the latch completed.
	if ok == 0 {
		t.Fatalf("no requests completed before the drain latch")
	}
	// Requests after the latch were refused with shutting_down, and the
	// classifier filed them as draining, not as errors.
	if draining == 0 {
		t.Fatalf("no draining responses despite the latch tripping mid-replay")
	}
	if errors != 0 {
		for i := range rep.Classes {
			if st := &rep.Classes[i]; st.Errors > 0 {
				t.Errorf("class %s: %d errors (first: %s)", st.Class.Name, st.Errors, st.FirstError)
			}
		}
		t.Fatalf("drain produced %d unexplained errors", errors)
	}
	// The error budget stays untouched: draining responses are explained.
	if v := rep.SLOViolations(); len(v) != 0 {
		t.Fatalf("orderly drain violated SLOs: %v", v)
	}
	for _, row := range rep.BenchRows() {
		if row.BudgetAllowed > 0 && row.BudgetSpent != 0 {
			t.Fatalf("row %s spent error budget %.4f during an orderly drain", row.Name, row.BudgetSpent)
		}
	}
}
