package loadgen

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hydra/internal/dataset"
	"hydra/internal/series"
	"hydra/internal/server"
)

// testPool generates the deterministic client-side query pool used by the
// replay tests: walk queries matching the server dataset's length.
func testPool(n, length int) *series.Dataset {
	return dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: 1001})
}

// newLiveServer boots an in-process hydra-serve handler on a real
// listener. Preload is empty so tests exercise lazy hydration under load.
func newLiveServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Data == nil {
		cfg.Data = dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 400, Length: 32, Seed: 11})
	}
	if cfg.Preload == nil {
		cfg.Preload = []string{}
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestClosedLoopCountsShedAsShed fires the closed-loop client pool at a
// server running the full serve-path layer — result cache, admission gate
// at -max-inflight 1, and auto routing — and requires shed requests to be
// counted as shed, never as errors, while the zipf reuse still lands
// cache hits. Runs under -race via the Makefile race target.
func TestClosedLoopCountsShedAsShed(t *testing.T) {
	// The dataset must be big enough that lazy index builds and cache-miss
	// scans hold the single execution slot for real time; on a toy dataset
	// handler time is microseconds and the gate's queue never fills.
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 20000, Length: 128, Seed: 11})
	_, ts := newLiveServer(t, server.Config{
		Data:          data,
		CacheMaxBytes: 1 << 20,
		MaxInflight:   1, // 1 executing + 2 queued: 16 clients must shed
	})

	p := DefaultProfile()
	p.QueryPool = 8
	reqs := p.Schedule(5, 300, 0)
	rep, err := Run(p, reqs, testPool(p.QueryPool, 128), Options{
		BaseURL: ts.URL,
		Loop:    LoopClosed,
		Clients: 16,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	requests, ok, cached, shed, draining, errors := rep.Totals()
	if requests != int64(len(reqs)) {
		t.Fatalf("requests accounted %d, scheduled %d", requests, len(reqs))
	}
	if got := ok + shed + draining + errors; got != requests {
		t.Fatalf("outcome classes sum to %d, want %d (ok=%d shed=%d draining=%d errors=%d)",
			got, requests, ok, shed, draining, errors)
	}
	for i := range rep.Classes {
		st := &rep.Classes[i]
		if st.Errors > 0 {
			t.Errorf("class %s: %d unexplained errors (first: %s)", st.Class.Name, st.Errors, st.FirstError)
		}
		if st.Hist.Count() != st.OK {
			t.Errorf("class %s: %d latency samples for %d ok responses", st.Class.Name, st.Hist.Count(), st.OK)
		}
	}
	if shed == 0 {
		t.Fatalf("16 clients against max-inflight 1 shed nothing; gate not exercised")
	}
	if ok == 0 {
		t.Fatalf("no successful requests at all")
	}
	if cached == 0 {
		t.Fatalf("zipf reuse over %d queries produced no cache hits", p.QueryPool)
	}
	// Tracing is on by default server-side, so every class with successes
	// must have retained its slowest requests with server trace IDs.
	for i := range rep.Classes {
		st := &rep.Classes[i]
		if st.OK == 0 {
			continue
		}
		if len(st.Slowest) == 0 {
			t.Errorf("class %s: %d ok requests but no slowest traces retained", st.Class.Name, st.OK)
		}
		for j, s := range st.Slowest {
			if s.TraceID == "" || s.Seconds <= 0 {
				t.Errorf("class %s: slowest[%d] = %+v lacks a trace ID or latency", st.Class.Name, j, s)
			}
			if j > 0 && s.Seconds > st.Slowest[j-1].Seconds {
				t.Errorf("class %s: slowest not descending at %d: %v", st.Class.Name, j, st.Slowest)
			}
		}
	}
}

// TestNoteSlowKeepsDescendingTopN pins the slowest-N retention: inserts in
// arbitrary order keep only the N largest, descending, and an empty trace
// ID (tracing disabled server-side) is never retained.
func TestNoteSlowKeepsDescendingTopN(t *testing.T) {
	var st ClassStats
	for _, s := range []float64{0.3, 0.1, 0.9, 0.2, 0.5, 0.4} {
		st.noteSlow(s, "id", 3)
	}
	want := []float64{0.9, 0.5, 0.4}
	if len(st.Slowest) != len(want) {
		t.Fatalf("kept %d, want %d: %v", len(st.Slowest), len(want), st.Slowest)
	}
	for i, s := range st.Slowest {
		if s.Seconds != want[i] {
			t.Fatalf("slowest = %v, want seconds %v", st.Slowest, want)
		}
	}
	st = ClassStats{}
	st.noteSlow(1.0, "", 3)
	st.noteSlow(1.0, "id", -1)
	if len(st.Slowest) != 0 {
		t.Fatalf("retained %v without a trace ID or with retention disabled", st.Slowest)
	}
}

// TestOpenLoopMeasuresFromScheduledArrival pins the coordinated-omission
// guard: a server that stalls must be charged the full delay from each
// request's scheduled arrival, even for requests the generator could only
// send after the stall cleared. A stub server with a fixed 20ms service
// time and one transport slot makes the expected queueing deterministic.
func TestOpenLoopMeasuresFromScheduledArrival(t *testing.T) {
	const service = 20 * time.Millisecond
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		time.Sleep(service)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"answers":[]}`)) //nolint:errcheck
	}))
	defer ts.Close()

	p := Profile{
		Classes:   []Class{{Name: "stub", Weight: 1, Method: "SerialScan", Mode: "exact", K: 3}},
		QueryPool: 4,
		ZipfS:     1.5,
	}
	// 30 requests offered at 400/s (2.5ms spacing) against a 20ms server
	// squeezed through 1 transport slot: the tail request is sent ~17.5ms/
	// request late, so its measured latency must be far above the service
	// time. A send-time measurement would report ~20ms for every request.
	reqs := p.Schedule(9, 30, 400)
	rep, err := Run(p, reqs, testPool(p.QueryPool, 32), Options{
		BaseURL: ts.URL,
		Loop:    LoopOpen,
		Rate:    400,
		Clients: 1,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := &rep.Classes[0]
	if st.OK != int64(len(reqs)) {
		t.Fatalf("ok=%d of %d (errors=%d, first: %s)", st.OK, len(reqs), st.Errors, st.FirstError)
	}
	// Last arrival scheduled at ~72.5ms; its completion is ~30×20ms=600ms
	// in, so the coordinated-omission-safe tail is several times the
	// service time.
	if st.Hist.Max() < 3*service.Seconds() {
		t.Fatalf("tail latency %.4fs does not include queueing from scheduled arrivals (service %.3fs)",
			st.Hist.Max(), service.Seconds())
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	p := DefaultProfile()
	reqs := p.Schedule(1, 4, 0)
	pool := testPool(p.QueryPool, 32)
	if _, err := Run(p, reqs, pool, Options{Loop: LoopClosed}); err == nil {
		t.Fatalf("missing base URL accepted")
	}
	if _, err := Run(p, reqs, nil, Options{BaseURL: "http://x", Loop: LoopClosed}); err == nil {
		t.Fatalf("nil query pool accepted")
	}
	if _, err := Run(p, reqs, testPool(2, 32), Options{BaseURL: "http://x", Loop: LoopClosed}); err == nil {
		t.Fatalf("undersized query pool accepted")
	}
	if _, err := Run(p, reqs, pool, Options{BaseURL: "http://x", Loop: "sawtooth"}); err == nil {
		t.Fatalf("unknown loop mode accepted")
	}
}
