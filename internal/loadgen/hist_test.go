package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// oracleQuantile is the exact sorted-sample reference under the same rank
// convention Histogram.Quantile documents: the value at 1-based rank
// ceil(q·n), with q=0 → min and q=1 → max.
func oracleQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

var quantiles = []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}

// lognormalSamples spreads samples across several orders of magnitude
// around 10ms, the shape real latency distributions take.
func lognormalSamples(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.01 * math.Exp(rng.NormFloat64())
	}
	return out
}

func recordAll(h *Histogram, samples []float64) {
	for _, v := range samples {
		h.Record(v)
	}
}

func TestQuantileErrorBoundVsOracle(t *testing.T) {
	for _, n := range []int{10, 100, 2000, 20000} {
		samples := lognormalSamples(int64(n), n)
		var h Histogram
		recordAll(&h, samples)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		if h.Count() != int64(n) {
			t.Fatalf("n=%d: count %d", n, h.Count())
		}
		for _, q := range quantiles {
			got, want := h.Quantile(q), oracleQuantile(sorted, q)
			rel := math.Abs(got-want) / want
			// One bucket spans a 2^(1/16) ratio; the geometric-mean estimate
			// is at most half a bucket from the true value (~2.2%).
			if rel > 0.03 {
				t.Errorf("n=%d q=%g: got %.6g want %.6g (rel err %.4f)", n, q, got, want, rel)
			}
		}
		if h.Min() != sorted[0] || h.Max() != sorted[n-1] {
			t.Fatalf("n=%d: min/max not exact: %g/%g vs %g/%g", n, h.Min(), h.Max(), sorted[0], sorted[n-1])
		}
	}
}

func TestMergeAssociativity(t *testing.T) {
	a, b, c := lognormalSamples(1, 700), lognormalSamples(2, 1300), lognormalSamples(3, 400)
	var all []float64
	all = append(all, a...)
	all = append(all, b...)
	all = append(all, c...)

	build := func(samples []float64) *Histogram {
		var h Histogram
		recordAll(&h, samples)
		return &h
	}
	// (a ⊕ b) ⊕ c
	left := build(a)
	left.Merge(build(b))
	left.Merge(build(c))
	// a ⊕ (b ⊕ c)
	bc := build(b)
	bc.Merge(build(c))
	right := build(a)
	right.Merge(bc)
	// one histogram over the concatenation
	flat := build(all)

	for name, h := range map[string]*Histogram{"right-assoc": right, "flat": flat} {
		if left.counts != h.counts {
			t.Fatalf("%s: bucket counts differ from left-assoc merge", name)
		}
		if left.Count() != h.Count() || left.Min() != h.Min() || left.Max() != h.Max() {
			t.Fatalf("%s: count/min/max differ: %d/%g/%g vs %d/%g/%g",
				name, left.Count(), left.Min(), left.Max(), h.Count(), h.Min(), h.Max())
		}
		for _, q := range quantiles {
			if left.Quantile(q) != h.Quantile(q) {
				t.Fatalf("%s: q=%g differs: %g vs %g", name, q, left.Quantile(q), h.Quantile(q))
			}
		}
		// Float sums depend on addition order; they must still agree to
		// rounding.
		if rel := math.Abs(left.Sum()-h.Sum()) / left.Sum(); rel > 1e-9 {
			t.Fatalf("%s: sums diverged: %g vs %g", name, left.Sum(), h.Sum())
		}
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	var h Histogram
	h.Record(0.5)
	h.Merge(nil)
	h.Merge(&Histogram{})
	if h.Count() != 1 || h.Quantile(0.5) != 0.5 {
		t.Fatalf("merge with empty/nil disturbed the histogram: count=%d q50=%g", h.Count(), h.Quantile(0.5))
	}
	var empty Histogram
	empty.Merge(&h)
	if empty.Count() != 1 || empty.Min() != 0.5 || empty.Max() != 0.5 {
		t.Fatalf("merge into empty lost state: count=%d min=%g max=%g", empty.Count(), empty.Min(), empty.Max())
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram has non-zero aggregates")
	}
	for _, q := range quantiles {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty q=%g = %g, want 0", q, got)
		}
	}
}

func TestSingleSampleExact(t *testing.T) {
	// Every quantile of a single sample is that sample exactly — the
	// min/max clamp removes all bucket error. Includes a sub-resolution
	// sample (below the smallest bucket bound).
	for _, v := range []float64{2e-7, 0.00137, 4.2} {
		var h Histogram
		h.Record(v)
		for _, q := range quantiles {
			if got := h.Quantile(q); got != v {
				t.Fatalf("single sample %g: q=%g = %g, want exact", v, q, got)
			}
		}
	}
}

func TestRecordClampsNegative(t *testing.T) {
	var h Histogram
	h.Record(-1)
	if h.Count() != 1 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative sample not clamped to zero: min=%g q50=%g", h.Min(), h.Quantile(0.5))
	}
}
