package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// BenchRow is one row of BENCH_loadgen.json. hydra-benchgate gates two row
// shapes natively: latency rows carry SLOSeconds/ObservedSeconds (headroom
// = slo/observed, so ≥ 1.0 means the SLO held), and error-budget rows
// carry BudgetAllowed/BudgetSpent (headroom = remaining budget fraction,
// 1.0 means untouched). Rows without gate fields are reporting-only.
type BenchRow struct {
	Name            string  `json:"name"`
	Class           string  `json:"class,omitempty"`
	Loop            string  `json:"loop,omitempty"`
	Method          string  `json:"method,omitempty"`
	Mode            string  `json:"mode,omitempty"`
	Requests        int64   `json:"requests,omitempty"`
	OK              int64   `json:"ok,omitempty"`
	Cached          int64   `json:"cached,omitempty"`
	Shed            int64   `json:"shed,omitempty"`
	Draining        int64   `json:"draining,omitempty"`
	Errors          int64   `json:"errors,omitempty"`
	P50Seconds      float64 `json:"p50_seconds,omitempty"`
	P95Seconds      float64 `json:"p95_seconds,omitempty"`
	P99Seconds      float64 `json:"p99_seconds,omitempty"`
	P999Seconds     float64 `json:"p999_seconds,omitempty"`
	MeanSeconds     float64 `json:"mean_seconds,omitempty"`
	ThroughputRPS   float64 `json:"throughput_rps,omitempty"`
	SLOSeconds      float64 `json:"slo_seconds,omitempty"`
	ObservedSeconds float64 `json:"observed_seconds,omitempty"`
	BudgetAllowed   float64 `json:"budget_allowed,omitempty"`
	BudgetSpent     float64 `json:"budget_spent,omitempty"`
	Baseline        string  `json:"baseline,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// BenchRows renders the replay as BENCH_loadgen.json rows: per class one
// latency row (gated against the class p99 SLO) and one error-budget row,
// plus an overall throughput row gated against the offered rate on
// open-loop replays.
func (r *Report) BenchRows() []BenchRow {
	var rows []BenchRow
	for i := range r.Classes {
		st := &r.Classes[i]
		c := st.Class
		lat := BenchRow{
			Name:        fmt.Sprintf("loadgen/%s/p99", c.Name),
			Class:       c.Name,
			Loop:        r.Loop,
			Method:      c.Method,
			Mode:        c.Mode,
			Requests:    st.Requests,
			OK:          st.OK,
			Cached:      st.Cached,
			Shed:        st.Shed,
			Draining:    st.Draining,
			Errors:      st.Errors,
			P50Seconds:  st.Hist.Quantile(0.50),
			P95Seconds:  st.Hist.Quantile(0.95),
			P99Seconds:  st.Hist.Quantile(0.99),
			P999Seconds: st.Hist.Quantile(0.999),
			MeanSeconds: st.Hist.Mean(),
		}
		if c.SLO.P99Seconds > 0 {
			lat.SLOSeconds = c.SLO.P99Seconds
			lat.ObservedSeconds = lat.P99Seconds
		}
		rows = append(rows, lat)

		budget := BenchRow{
			Name:     fmt.Sprintf("loadgen/%s/error-budget", c.Name),
			Class:    c.Name,
			Loop:     r.Loop,
			Requests: st.Requests,
			Errors:   st.Errors,
		}
		if c.SLO.ErrorBudget > 0 && st.Requests > 0 {
			budget.BudgetAllowed = c.SLO.ErrorBudget
			budget.BudgetSpent = float64(st.Errors) / float64(st.Requests)
		}
		rows = append(rows, budget)
	}

	requests, ok, cached, shed, draining, errors := r.Totals()
	overall := BenchRow{
		Name:     "loadgen/overall/throughput",
		Loop:     r.Loop,
		Requests: requests,
		OK:       ok,
		Cached:   cached,
		Shed:     shed,
		Draining: draining,
		Errors:   errors,
	}
	if r.WallSeconds > 0 {
		overall.ThroughputRPS = float64(requests) / r.WallSeconds
	}
	if r.Loop == LoopOpen && r.OfferedRate > 0 && overall.ThroughputRPS > 0 {
		overall.Baseline = "offered-rate"
		overall.Speedup = overall.ThroughputRPS / r.OfferedRate
	}
	return append(rows, overall)
}

// WriteBenchJSON writes rows as a BENCH_*.json file.
func WriteBenchJSON(path string, rows []BenchRow) error {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// SLOViolations evaluates every class against its SLO and returns one
// human-readable line per violation (empty = all SLOs held). Shed and
// draining responses are explained refusals and never violate on their
// own; a class violates when its successful-request p99 misses the target,
// when unexplained errors overspend the budget, or when an SLO-carrying
// class saw traffic but no successes at all.
func (r *Report) SLOViolations() []string {
	var out []string
	for i := range r.Classes {
		st := &r.Classes[i]
		c := st.Class
		if st.Requests == 0 {
			continue
		}
		if c.SLO.P99Seconds > 0 {
			if st.OK == 0 {
				out = append(out, fmt.Sprintf("class %s: no successful requests (of %d issued) to judge the p99 SLO", c.Name, st.Requests))
			} else if p99 := st.Hist.Quantile(0.99); p99 > c.SLO.P99Seconds {
				out = append(out, fmt.Sprintf("class %s: p99 %.4fs exceeds SLO %.4fs", c.Name, p99, c.SLO.P99Seconds))
			}
		}
		if spent := float64(st.Errors) / float64(st.Requests); spent > c.SLO.ErrorBudget {
			out = append(out, fmt.Sprintf("class %s: error rate %.4f over budget %.4f (%d/%d failed; first: %s)",
				c.Name, spent, c.SLO.ErrorBudget, st.Errors, st.Requests, st.FirstError))
		}
	}
	return out
}

// WriteSummary renders the human-readable replay summary.
func (r *Report) WriteSummary(w io.Writer) {
	requests, ok, cached, shed, draining, errors := r.Totals()
	achieved := 0.0
	if r.WallSeconds > 0 {
		achieved = float64(requests) / r.WallSeconds
	}
	if r.Loop == LoopOpen {
		fmt.Fprintf(w, "loadgen: loop=open offered=%.1f/s achieved=%.1f/s wall=%.2fs\n", r.OfferedRate, achieved, r.WallSeconds)
	} else {
		fmt.Fprintf(w, "loadgen: loop=closed achieved=%.1f/s wall=%.2fs\n", achieved, r.WallSeconds)
	}
	for i := range r.Classes {
		st := &r.Classes[i]
		fmt.Fprintf(w, "class %s: requests=%d ok=%d cached=%d shed=%d draining=%d errors=%d p50=%.4fs p95=%.4fs p99=%.4fs p999=%.4fs\n",
			st.Class.Name, st.Requests, st.OK, st.Cached, st.Shed, st.Draining, st.Errors,
			st.Hist.Quantile(0.50), st.Hist.Quantile(0.95), st.Hist.Quantile(0.99), st.Hist.Quantile(0.999))
		if st.FirstError != "" {
			fmt.Fprintf(w, "class %s: first error: %s\n", st.Class.Name, st.FirstError)
		}
		for _, s := range st.Slowest {
			fmt.Fprintf(w, "class %s: slow trace %s %.4fs\n", st.Class.Name, s.TraceID, s.Seconds)
		}
	}
	fmt.Fprintf(w, "total: requests=%d ok=%d cached=%d shed=%d draining=%d errors=%d\n",
		requests, ok, cached, shed, draining, errors)
}
