package loadgen

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestScheduleDeterministic(t *testing.T) {
	p := DefaultProfile()
	a := p.Schedule(7, 500, 200)
	b := p.Schedule(7, 500, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules")
	}
	var dumpA, dumpB bytes.Buffer
	if err := WriteSchedule(&dumpA, p, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteSchedule(&dumpB, p, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dumpA.Bytes(), dumpB.Bytes()) {
		t.Fatalf("same seed produced different schedule dumps")
	}
	c := p.Schedule(8, 500, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestScheduleShape(t *testing.T) {
	p := DefaultProfile()
	const n = 4000
	reqs := p.Schedule(11, n, 100)
	if len(reqs) != n {
		t.Fatalf("len = %d, want %d", len(reqs), n)
	}
	classCounts := make([]int, len(p.Classes))
	queryCounts := make([]int, p.QueryPool)
	for i, rq := range reqs {
		if rq.Seq != i {
			t.Fatalf("req %d: seq %d", i, rq.Seq)
		}
		if i > 0 && rq.At < reqs[i-1].At {
			t.Fatalf("req %d: arrival %s before predecessor %s", i, rq.At, reqs[i-1].At)
		}
		if rq.Class < 0 || rq.Class >= len(p.Classes) {
			t.Fatalf("req %d: class %d out of range", i, rq.Class)
		}
		if rq.QueryID < 0 || rq.QueryID >= p.QueryPool {
			t.Fatalf("req %d: query %d out of pool", i, rq.QueryID)
		}
		classCounts[rq.Class]++
		queryCounts[rq.QueryID]++
	}
	// Open-loop arrival spacing: n requests at 100/s span (n-1)/100 s.
	if last := reqs[n-1].At.Seconds(); last < 39 || last > 41 {
		t.Fatalf("last arrival at %.2fs, want ~%.2fs", last, float64(n-1)/100)
	}
	// Every class gets a meaningful share (weights are 0.30–0.35).
	for i, c := range classCounts {
		if c < n/10 {
			t.Fatalf("class %s starved: %d of %d requests", p.Classes[i].Name, c, n)
		}
	}
	// Zipf reuse: query 0 must dominate a uniform draw, and the pool tail
	// must still be reachable — that skew is what makes the server's
	// result cache measurement honest.
	if queryCounts[0] < 3*(n/p.QueryPool) {
		t.Fatalf("query 0 drawn %d times, want skewed reuse over uniform %d", queryCounts[0], n/p.QueryPool)
	}
	tail := 0
	for _, c := range queryCounts[p.QueryPool/2:] {
		tail += c
	}
	if tail == 0 {
		t.Fatalf("upper half of the query pool never drawn; zipf too extreme for cache-miss traffic")
	}
}

func TestScheduleClosedLoopRateZero(t *testing.T) {
	p := DefaultProfile()
	for _, rq := range p.Schedule(3, 50, 0) {
		if rq.At != 0 {
			t.Fatalf("rate 0 produced a non-zero arrival offset %s", rq.At)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	ok := DefaultProfile()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	bad := []Profile{
		{},
		{Classes: []Class{{Name: "", Weight: 1, Method: "DSTree", K: 1}}, QueryPool: 4, ZipfS: 1.2},
		{Classes: []Class{{Name: "a", Weight: 0, Method: "DSTree", K: 1}}, QueryPool: 4, ZipfS: 1.2},
		{Classes: []Class{{Name: "a", Weight: 1, Method: "", K: 1}}, QueryPool: 4, ZipfS: 1.2},
		{Classes: []Class{{Name: "a", Weight: 1, Method: "DSTree", K: 0}}, QueryPool: 4, ZipfS: 1.2},
		{Classes: []Class{{Name: "a", Weight: 1, Method: "DSTree", K: 1}, {Name: "a", Weight: 1, Method: "DSTree", K: 1}}, QueryPool: 4, ZipfS: 1.2},
		{Classes: []Class{{Name: "a", Weight: 1, Method: "DSTree", K: 1}}, QueryPool: 0, ZipfS: 1.2},
		{Classes: []Class{{Name: "a", Weight: 1, Method: "DSTree", K: 1}}, QueryPool: 4, ZipfS: 1.0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad profile %d validated", i)
		}
	}
}

func TestLoadProfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	blob := `{"classes":[{"name":"only","weight":1,"method":"SerialScan","mode":"exact","k":3,"slo":{"p99_seconds":0.5,"error_budget":0.01}}]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultProfile()
	if p.QueryPool != def.QueryPool || p.ZipfS != def.ZipfS {
		t.Fatalf("defaults not filled: pool=%d zipf=%g", p.QueryPool, p.ZipfS)
	}
	if len(p.Classes) != 1 || p.Classes[0].SLO.P99Seconds != 0.5 {
		t.Fatalf("classes not loaded: %+v", p.Classes)
	}
	if _, err := LoadProfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatalf("missing file loaded")
	}
	if err := os.WriteFile(path, []byte(`{"classes":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); err == nil {
		t.Fatalf("empty class list validated")
	}
}
