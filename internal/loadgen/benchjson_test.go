package loadgen

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"hydra/internal/dataset"
	"hydra/internal/server"
)

// TestWriteLoadgenBenchJSON replays the default mixed profile open-loop
// against an in-process hydra-serve (cache + admission gate + auto router
// enabled) and writes BENCH_loadgen.json to the path in
// HYDRA_BENCH_LOADGEN_JSON — the rows `make bench-gate` holds against the
// SLO floors in bench_thresholds.json. Skipped when the variable is unset
// so `go test ./...` stays fast; `make bench-json` runs it for real.
func TestWriteLoadgenBenchJSON(t *testing.T) {
	path := os.Getenv("HYDRA_BENCH_LOADGEN_JSON")
	if path == "" {
		t.Skip("HYDRA_BENCH_LOADGEN_JSON not set; run via `make bench-json`")
	}

	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 2000, Length: 64, Seed: 11})
	_, ts := newLiveServer(t, server.Config{
		Data:          data,
		CacheMaxBytes: 64 << 20,
		MaxInflight:   8,
	})

	p := DefaultProfile()
	pool := testPool(p.QueryPool, 64)

	// Hydrate every class's method and prime the router before measuring.
	if _, err := Run(p, p.Schedule(2, 48, 0), pool, Options{
		BaseURL: ts.URL, Loop: LoopClosed, Clients: 4, Timeout: time.Minute,
	}); err != nil {
		t.Fatalf("warm replay: %v", err)
	}

	const rate, n = 300, 900
	rep, err := Run(p, p.Schedule(1, n, rate), pool, Options{
		BaseURL: ts.URL, Loop: LoopOpen, Rate: rate, Timeout: time.Minute,
	})
	if err != nil {
		t.Fatalf("measured replay: %v", err)
	}
	var summary strings.Builder
	rep.WriteSummary(&summary)
	t.Logf("\n%s", summary.String())
	if v := rep.SLOViolations(); len(v) != 0 {
		// The gate is the enforcement point; the bench writer only reports.
		t.Logf("SLO violations (gate will decide): %v", v)
	}

	rows := rep.BenchRows()
	if err := WriteBenchJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d rows to %s", len(rows), path)
}

// TestBenchRowsShape pins the BENCH_loadgen.json row contract the gate and
// the docs depend on, without any HTTP: row names, gate fields and the
// quantile columns.
func TestBenchRowsShape(t *testing.T) {
	p := DefaultProfile()
	rep := &Report{Loop: LoopOpen, OfferedRate: 100, WallSeconds: 2, Classes: make([]ClassStats, len(p.Classes))}
	for i := range rep.Classes {
		rep.Classes[i].Class = p.Classes[i]
		rep.Classes[i].Requests = 50
		rep.Classes[i].OK = 48
		rep.Classes[i].Shed = 2
		for j := 0; j < 48; j++ {
			rep.Classes[i].Hist.Record(0.001 * float64(j+1))
		}
	}
	rows := rep.BenchRows()
	byName := map[string]BenchRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, c := range p.Classes {
		lat, ok := byName["loadgen/"+c.Name+"/p99"]
		if !ok {
			t.Fatalf("missing latency row for class %s", c.Name)
		}
		if lat.SLOSeconds != c.SLO.P99Seconds || lat.ObservedSeconds != lat.P99Seconds {
			t.Fatalf("class %s: latency gate fields wrong: %+v", c.Name, lat)
		}
		if lat.P50Seconds <= 0 || lat.P50Seconds > lat.P95Seconds || lat.P95Seconds > lat.P99Seconds || lat.P99Seconds > lat.P999Seconds {
			t.Fatalf("class %s: quantiles not monotone: %+v", c.Name, lat)
		}
		bud, ok := byName["loadgen/"+c.Name+"/error-budget"]
		if !ok {
			t.Fatalf("missing error-budget row for class %s", c.Name)
		}
		if bud.BudgetAllowed != c.SLO.ErrorBudget || bud.BudgetSpent != 0 {
			t.Fatalf("class %s: budget fields wrong: %+v", c.Name, bud)
		}
	}
	overall, ok := byName["loadgen/overall/throughput"]
	if !ok {
		t.Fatalf("missing overall throughput row")
	}
	if overall.ThroughputRPS != 75 { // 150 requests / 2s wall
		t.Fatalf("throughput %.1f, want 75", overall.ThroughputRPS)
	}
	if overall.Baseline != "offered-rate" || overall.Speedup != 0.75 {
		t.Fatalf("throughput gate fields wrong: %+v", overall)
	}

	// The file a gate run reads must round-trip.
	dir := t.TempDir()
	file := dir + "/BENCH_loadgen.json"
	if err := WriteBenchJSON(file, rows); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var back []BenchRow
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("written bench file does not parse: %v", err)
	}
	if len(back) != len(rows) {
		t.Fatalf("round-trip lost rows: %d vs %d", len(back), len(rows))
	}
}
