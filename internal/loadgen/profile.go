package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"
)

// SLO is one request class's service-level objective: the p99 latency the
// class must hold and the fraction of its requests allowed to fail for
// unexplained reasons (shed and draining responses are explained refusals
// and are never charged against the budget).
type SLO struct {
	P99Seconds  float64 `json:"p99_seconds"`
	ErrorBudget float64 `json:"error_budget"`
}

// Class is one request class of a mixed profile: a fixed method/mode/k
// shape issued with some share of the traffic, judged against its own SLO.
// Method may be "auto" to exercise the adaptive router.
type Class struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Method string  `json:"method"`
	Mode   string  `json:"mode"`
	K      int     `json:"k"`
	NProbe int     `json:"nprobe,omitempty"`
	SLO    SLO     `json:"slo"`
}

// Profile is a mixed traffic profile: weighted request classes drawing
// queries from a shared pool with zipf-skewed reuse, so repeated queries
// exercise the server's result cache the way real skewed traffic does.
type Profile struct {
	Classes []Class `json:"classes"`
	// QueryPool is the number of distinct query series; every request picks
	// one by a zipf draw, so low-numbered queries repeat often (cache hits)
	// while the tail stays cold.
	QueryPool int `json:"query_pool"`
	// ZipfS is the zipf skew exponent (must be > 1; larger = more reuse).
	ZipfS float64 `json:"zipf_s"`
}

// DefaultProfile is the standard mixed profile: pinned-exact, pinned-
// approximate and router-auto classes, covering the cached/uncached,
// exact/approximate and routed/pinned axes jointly. The SLOs are the
// committed serving floors enforced by hydra-benchgate at smoke scale.
func DefaultProfile() Profile {
	slo := SLO{P99Seconds: 0.75, ErrorBudget: 0.005}
	return Profile{
		Classes: []Class{
			{Name: "exact-pinned", Weight: 0.35, Method: "DSTree", Mode: "exact", K: 10, SLO: slo},
			{Name: "approx-pinned", Weight: 0.30, Method: "iSAX2+", Mode: "ng", K: 10, NProbe: 8, SLO: slo},
			{Name: "auto-routed", Weight: 0.35, Method: "auto", Mode: "exact", K: 5, SLO: slo},
		},
		QueryPool: 32,
		ZipfS:     1.2,
	}
}

// Validate checks the profile is runnable.
func (p Profile) Validate() error {
	if len(p.Classes) == 0 {
		return fmt.Errorf("loadgen: profile has no classes")
	}
	seen := map[string]bool{}
	for i, c := range p.Classes {
		if c.Name == "" {
			return fmt.Errorf("loadgen: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("loadgen: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight <= 0 {
			return fmt.Errorf("loadgen: class %q needs a positive weight, got %g", c.Name, c.Weight)
		}
		if c.Method == "" {
			return fmt.Errorf("loadgen: class %q has no method", c.Name)
		}
		if c.K <= 0 {
			return fmt.Errorf("loadgen: class %q needs a positive k, got %d", c.Name, c.K)
		}
	}
	if p.QueryPool < 1 {
		return fmt.Errorf("loadgen: query pool must be at least 1, got %d", p.QueryPool)
	}
	if p.ZipfS <= 1 {
		return fmt.Errorf("loadgen: zipf skew must be > 1, got %g", p.ZipfS)
	}
	return nil
}

// LoadProfile reads a Profile from a JSON file, filling QueryPool and
// ZipfS from DefaultProfile when omitted.
func LoadProfile(path string) (Profile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	if err := json.Unmarshal(buf, &p); err != nil {
		return Profile{}, fmt.Errorf("%s: %w", path, err)
	}
	def := DefaultProfile()
	if p.QueryPool == 0 {
		p.QueryPool = def.QueryPool
	}
	if p.ZipfS == 0 {
		p.ZipfS = def.ZipfS
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Request is one scheduled request: which class fires, which pool query it
// carries, and (for open-loop replays) when it is scheduled to arrive
// relative to the replay start. Latency is measured from At, not from the
// actual send, which is what makes the open loop coordinated-omission-safe:
// a stalled server cannot make the generator silently omit the arrivals it
// scheduled.
type Request struct {
	Seq     int
	At      time.Duration
	Class   int
	QueryID int
}

// Schedule derives the deterministic request schedule for a replay: the
// same (profile, seed, n, rate) always produces the byte-identical
// schedule, which is what makes replays reproducible across runs and
// machines. rate is the open-loop arrival rate in requests/second; rate 0
// leaves every At at zero (closed-loop replays ignore arrival times).
func (p Profile) Schedule(seed int64, n int, rate float64) []Request {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(p.QueryPool-1))
	var totalWeight float64
	for _, c := range p.Classes {
		totalWeight += c.Weight
	}
	reqs := make([]Request, n)
	for i := range reqs {
		var at time.Duration
		if rate > 0 {
			at = time.Duration(float64(i) / rate * float64(time.Second))
		}
		class := len(p.Classes) - 1
		x := rng.Float64() * totalWeight
		for ci, c := range p.Classes {
			if x < c.Weight {
				class = ci
				break
			}
			x -= c.Weight
		}
		reqs[i] = Request{Seq: i, At: at, Class: class, QueryID: int(zipf.Uint64())}
	}
	return reqs
}

// WriteSchedule renders a schedule as one line per request. The rendering
// is the schedule's canonical byte form: two runs with the same seed must
// produce identical output (checked by `hydra-loadgen -dump-schedule` in
// the loadgen-smoke CI stage).
func WriteSchedule(w io.Writer, p Profile, reqs []Request) error {
	for _, rq := range reqs {
		c := p.Classes[rq.Class]
		if _, err := fmt.Fprintf(w, "req seq=%d t=%.6f class=%s method=%s mode=%s k=%d nprobe=%d query=%d\n",
			rq.Seq, rq.At.Seconds(), c.Name, c.Method, c.Mode, c.K, c.NProbe, rq.QueryID); err != nil {
			return err
		}
	}
	return nil
}
