package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randBlock returns a query and a flat block of cands candidates, all of
// the given dimensionality, from a fixed seed.
func randBlock(dims, cands int, seed int64) (q, block []float32) {
	rng := rand.New(rand.NewSource(seed))
	q = make([]float32, dims)
	for i := range q {
		q[i] = rng.Float32()
	}
	block = make([]float32, dims*cands)
	for i := range block {
		block[i] = rng.Float32()
	}
	return q, block
}

// BenchmarkSquaredDists is the block-scoring micro-benchmark behind
// BENCH_kernels.json: one query scored against a block of candidates,
// no early abandoning, both kernels.
func BenchmarkSquaredDists(b *testing.B) {
	const cands = 1024
	for _, dims := range []int{64, 128, 256, 320} {
		q, block := randBlock(dims, cands, 1)
		out := make([]float64, cands)
		for _, k := range Kernels() {
			b.Run(fmt.Sprintf("dims=%d/kernel=%s", dims, k), func(b *testing.B) {
				b.SetBytes(int64(dims * cands * 4))
				for i := 0; i < b.N; i++ {
					k.SquaredDists(q, block, out)
				}
			})
		}
	}
}

// BenchmarkSquaredDistsEarlyAbandon scores a block under a tight limit
// (the pruning regime of candidate refinement).
func BenchmarkSquaredDistsEarlyAbandon(b *testing.B) {
	const cands = 1024
	for _, dims := range []int{256} {
		q, block := randBlock(dims, cands, 1)
		out := make([]float64, cands)
		// A limit near the block's 10th-smallest distance: most candidates
		// abandon, a few complete — the steady state of a k-NN scan.
		Scalar.SquaredDists(q, block, out)
		sorted := append([]float64(nil), out...)
		for i := range sorted {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		limit := sorted[10]
		for _, k := range Kernels() {
			b.Run(fmt.Sprintf("dims=%d/kernel=%s", dims, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					k.SquaredDistsEarlyAbandon(q, block, limit, out)
				}
			})
		}
	}
}

// BenchmarkSquaredDistPair is the per-pair form both kernels expose.
func BenchmarkSquaredDistPair(b *testing.B) {
	for _, dims := range []int{256} {
		q, block := randBlock(dims, 1, 1)
		for _, k := range Kernels() {
			b.Run(fmt.Sprintf("dims=%d/kernel=%s", dims, k), func(b *testing.B) {
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += k.SquaredDist(q, block)
				}
				if math.IsNaN(sink) {
					b.Fatal("NaN")
				}
			})
		}
	}
}

// BenchmarkSquaredDistsGather scores a gathered candidate list (the tree
// leaf refinement shape) with no abandoning.
func BenchmarkSquaredDistsGather(b *testing.B) {
	const cands = 256
	for _, dims := range []int{256} {
		q, block := randBlock(dims, cands, 1)
		views := make([][]float32, cands)
		for i := range views {
			views[i] = block[i*dims : (i+1)*dims]
		}
		out := make([]float64, cands)
		for _, k := range Kernels() {
			b.Run(fmt.Sprintf("dims=%d/kernel=%s", dims, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					k.SquaredDistsGather(q, views, math.Inf(1), out)
				}
			})
		}
	}
}
