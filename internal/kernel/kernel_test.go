package kernel

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseAndString(t *testing.T) {
	for _, k := range Kernels() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := Parse(""); err != nil || k != Default {
		t.Errorf("Parse(\"\") = %v, %v; want Default", k, err)
	}
	if _, err := Parse("simd9000"); err == nil {
		t.Error("Parse of unknown kernel did not fail")
	}
}

func TestUseActive(t *testing.T) {
	defer Use(Default)
	for _, k := range Kernels() {
		Use(k)
		if Active() != k {
			t.Fatalf("Active() = %v after Use(%v)", Active(), k)
		}
	}
}

func TestSquaredDistBasics(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{2, 0, 1}
	for _, k := range Kernels() {
		if got := k.SquaredDist(a, b); got != 9 {
			t.Errorf("%v.SquaredDist = %v, want 9", k, got)
		}
		if got := k.Dist(a, b); got != 3 {
			t.Errorf("%v.Dist = %v, want 3", k, got)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for _, k := range Kernels() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v.SquaredDist length mismatch did not panic", k)
				}
			}()
			k.SquaredDist([]float32{1}, []float32{1, 2})
		}()
	}
}

func TestDistance(t *testing.T) {
	if got := Distance(9); got != 3 {
		t.Errorf("Distance(9) = %v", got)
	}
	if got := Distance(-1e-12); got != 0 {
		t.Errorf("Distance(-1e-12) = %v, want 0", got)
	}
	if got := Distance(0); got != 0 {
		t.Errorf("Distance(0) = %v, want 0", got)
	}
}

// randSeries fills out with values from rng, occasionally injecting the
// special values the equivalence contract must survive.
func randSeries(rng *rand.Rand, n int, special bool) []float32 {
	s := make([]float32, n)
	for i := range s {
		switch {
		case special && rng.Intn(17) == 0:
			switch rng.Intn(4) {
			case 0:
				s[i] = float32(math.NaN())
			case 1:
				s[i] = float32(math.Inf(1))
			case 2:
				s[i] = float32(math.Inf(-1))
			default:
				s[i] = 0
			}
		default:
			s[i] = float32(rng.NormFloat64())
		}
	}
	return s
}

// assertBitIdentical compares two float64s as bit patterns (NaN == NaN).
func assertBitIdentical(t *testing.T, label string, scalar, blocked float64) {
	t.Helper()
	if math.Float64bits(scalar) != math.Float64bits(blocked) {
		t.Fatalf("%s: scalar %v (%#x) != blocked %v (%#x)",
			label, scalar, math.Float64bits(scalar), blocked, math.Float64bits(blocked))
	}
}

// TestBlockedEquivalence is the table-driven scalar ≡ blocked proof over
// random dims (including non-multiple-of-8 remainders), random block
// sizes, random and special (NaN/Inf) inputs, and random limits. Every
// entry point must produce byte-identical float64 results.
func TestBlockedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100, 128, 250, 256, 257}
	for _, n := range dims {
		for trial := 0; trial < 20; trial++ {
			special := trial%3 == 0
			q := randSeries(rng, n, special)
			cands := rng.Intn(13) + 1
			block := randSeries(rng, n*cands, special)

			var limit float64
			switch trial % 4 {
			case 0:
				limit = math.Inf(1)
			case 1:
				limit = 0
			case 2:
				limit = math.NaN()
			default:
				limit = rng.Float64() * float64(n)
			}

			// Pairwise forms.
			b := block[:n]
			assertBitIdentical(t, "SquaredDist",
				Scalar.SquaredDist(q, b), Blocked.SquaredDist(q, b))
			assertBitIdentical(t, "SquaredDistEarlyAbandon",
				Scalar.SquaredDistEarlyAbandon(q, b, limit),
				Blocked.SquaredDistEarlyAbandon(q, b, limit))

			// Flat block forms.
			outS := make([]float64, cands)
			outB := make([]float64, cands)
			Scalar.SquaredDists(q, block, outS)
			Blocked.SquaredDists(q, block, outB)
			for i := range outS {
				assertBitIdentical(t, "SquaredDists", outS[i], outB[i])
			}
			Scalar.SquaredDistsEarlyAbandon(q, block, limit, outS)
			Blocked.SquaredDistsEarlyAbandon(q, block, limit, outB)
			for i := range outS {
				assertBitIdentical(t, "SquaredDistsEarlyAbandon", outS[i], outB[i])
			}

			// Gather form over views of the same block.
			views := make([][]float32, cands)
			for i := range views {
				views[i] = block[i*n : (i+1)*n]
			}
			Scalar.SquaredDistsGather(q, views, limit, outS)
			Blocked.SquaredDistsGather(q, views, limit, outB)
			for i := range outS {
				assertBitIdentical(t, "SquaredDistsGather", outS[i], outB[i])
			}

			// Nearest-in-block agrees on index and bits.
			iS, dS := Scalar.NearestInBlock(q, block, limit)
			iB, dB := Blocked.NearestInBlock(q, block, limit)
			if iS != iB {
				t.Fatalf("NearestInBlock index: scalar %d != blocked %d (dims %d)", iS, iB, n)
			}
			assertBitIdentical(t, "NearestInBlock", dS, dB)
		}
	}
}

// TestEarlyAbandonContract pins the documented abandon semantics for both
// kernels: a result <= limit is the exact squared distance; a result >
// limit is a partial sum never exceeding the exact squared distance, and
// abandonment can only happen at 8-dimension chunk boundaries.
func TestEarlyAbandonContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(80) + 1
		a := randSeries(rng, n, false)
		b := randSeries(rng, n, false)
		exact := Scalar.SquaredDist(a, b)
		limit := rng.Float64() * exact
		for _, k := range Kernels() {
			got := k.SquaredDistEarlyAbandon(a, b, limit)
			if got <= limit && got != exact {
				t.Fatalf("%v: result %v <= limit %v but exact is %v", k, got, limit, exact)
			}
			if got > exact+1e-9 {
				t.Fatalf("%v: partial %v exceeds exact %v", k, got, exact)
			}
		}
	}
}

// TestEarlyAbandonMatchesFull pins that an infinite limit reproduces the
// full distance bit-for-bit.
func TestEarlyAbandonMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{5, 8, 64, 129} {
		a := randSeries(rng, n, false)
		b := randSeries(rng, n, false)
		for _, k := range Kernels() {
			assertBitIdentical(t, "full-vs-abandon",
				k.SquaredDist(a, b), k.SquaredDistEarlyAbandon(a, b, math.Inf(1)))
		}
	}
}

// TestNearestInBlock pins the selection semantics: nearest strictly under
// the limit, lowest index on ties, (-1, limit) when nothing qualifies.
func TestNearestInBlock(t *testing.T) {
	q := []float32{0, 0}
	block := []float32{3, 4, 1, 0, 0, 1, 5, 12}
	for _, k := range Kernels() {
		idx, d2 := k.NearestInBlock(q, block, math.Inf(1))
		if idx != 1 || d2 != 1 {
			t.Errorf("%v: NearestInBlock = (%d, %v), want (1, 1)", k, idx, d2)
		}
		idx, d2 = k.NearestInBlock(q, block, 1.0)
		if idx != -1 || d2 != 1.0 {
			t.Errorf("%v: NearestInBlock under tight limit = (%d, %v), want (-1, 1)", k, idx, d2)
		}
	}
}

// TestPackageLevelDispatch exercises the Active()-dispatching wrappers.
func TestPackageLevelDispatch(t *testing.T) {
	defer Use(Default)
	a := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := []float32{9, 8, 7, 6, 5, 4, 3, 2, 1}
	want := Scalar.SquaredDist(a, b)
	for _, k := range Kernels() {
		Use(k)
		if got := SquaredDist(a, b); got != want {
			t.Errorf("SquaredDist under %v = %v, want %v", k, got, want)
		}
		if got := Dist(a, b); got != math.Sqrt(want) {
			t.Errorf("Dist under %v = %v", k, got)
		}
		if got := SquaredDistEarlyAbandon(a, b, math.Inf(1)); got != want {
			t.Errorf("SquaredDistEarlyAbandon under %v = %v", k, got)
		}
		out := make([]float64, 1)
		if c := SquaredDists(a, b, out); c != 1 || out[0] != want {
			t.Errorf("SquaredDists under %v = %d, %v", k, c, out[0])
		}
		if c := SquaredDistsEarlyAbandon(a, b, math.Inf(1), out); c != 1 || out[0] != want {
			t.Errorf("SquaredDistsEarlyAbandon under %v = %d, %v", k, c, out[0])
		}
		SquaredDistsGather(a, [][]float32{b}, math.Inf(1), out)
		if out[0] != want {
			t.Errorf("SquaredDistsGather under %v = %v", k, out[0])
		}
		if idx, d2 := NearestInBlock(a, b, math.Inf(1)); idx != 0 || d2 != want {
			t.Errorf("NearestInBlock under %v = (%d, %v)", k, idx, d2)
		}
	}
}
