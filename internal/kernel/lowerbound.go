package kernel

import (
	"fmt"
	"math"
)

// This file adds the summarisation-space lower-bound kernels to the
// scoring API: the VA-file gap-table form and the clamp-accumulate region
// forms behind iSAX MINDIST and the DSTree synopsis bound. They follow the
// same equivalence contract as the raw-series kernels (see the package
// comment): each candidate's bound is accumulated in dimension order into
// a single float64 accumulator, blocked implementations interleave
// *candidates* (never a candidate's own additions), and NaN results are
// canonicalised at the API boundary. Lower bounds never early-abandon:
// they are the pruning filter itself, and a full bound costs a handful of
// flops per dimension.
//
// All lower-bound forms work in squared-distance space; callers compare
// against squared thresholds (one boundary squaring instead of one sqrt
// per candidate) or take a single sqrt per surviving node.

// GapTable is a per-query VA-file pruning table: for every (dimension,
// quantizer cell) pair, the squared gap between the query's coefficient
// and the nearest edge of the cell. Building it costs O(total cells) once
// per query, after which every candidate's lower bound is a pure
// table-gather accumulation over its packed code word — no quantizer
// boundary searches in the per-candidate loop.
type GapTable struct {
	// Gaps2 holds the per-dimension rows back to back: the squared gap of
	// cell c in dimension d is Gaps2[Off[d]+c].
	Gaps2 []float64
	// Off[d] is the start of dimension d's row; len(Off) == Dims.
	Off []int
	// Dims is the number of code dimensions (the stride of a code word).
	Dims int
}

// validate checks the table against a packed code array and an output
// buffer, returning the candidate count.
func (t GapTable) validate(codes []uint16, outLen int) int {
	if t.Dims <= 0 || len(t.Off) != t.Dims {
		panic(fmt.Sprintf("kernel: gap table with %d offsets for %d dims", len(t.Off), t.Dims))
	}
	if len(codes)%t.Dims != 0 {
		panic(fmt.Sprintf("kernel: code array length %d is not a multiple of %d dims", len(codes), t.Dims))
	}
	c := len(codes) / t.Dims
	if outLen < c {
		panic(fmt.Sprintf("kernel: out buffer holds %d results, %d candidates given", outLen, c))
	}
	return c
}

// VALowerBounds2 writes the squared VA-file lower bound of every candidate
// in codes (packed row-major code words, stride tab.Dims) to out, by
// gathering and summing the candidate's per-dimension squared gaps from
// the table in dimension order. It returns the candidate count.
func (k Kernel) VALowerBounds2(tab GapTable, codes []uint16, out []float64) int {
	c := tab.validate(codes, len(out))
	d := tab.Dims
	if k == Blocked {
		i := 0
		for ; i+4 <= c; i += 4 {
			base := i * d
			vaGap4(tab,
				codes[base:base+d:base+d],
				codes[base+d:base+2*d:base+2*d],
				codes[base+2*d:base+3*d:base+3*d],
				codes[base+3*d:base+4*d:base+4*d],
				out[i:i+4:i+4])
		}
		for ; i < c; i++ {
			out[i] = vaGap1(tab, codes[i*d:(i+1)*d])
		}
		canonNaNs(out[:c])
		return c
	}
	for i := 0; i < c; i++ {
		out[i] = vaGap1(tab, codes[i*d:(i+1)*d])
	}
	canonNaNs(out[:c])
	return c
}

// vaGap1 accumulates one candidate's table gathers in dimension order.
func vaGap1(tab GapTable, code []uint16) float64 {
	var acc float64
	for d, c := range code {
		acc += tab.Gaps2[tab.Off[d]+int(c)]
	}
	return acc
}

// vaGap4 is the 4-candidate gather group: four independent accumulator
// chains hide the load latency of the table gathers, and each candidate's
// own additions stay in dimension order, keeping results bit-identical to
// vaGap1.
func vaGap4(tab GapTable, c0, c1, c2, c3 []uint16, out []float64) {
	d := tab.Dims
	c0 = c0[:d]
	c1 = c1[:d]
	c2 = c2[:d]
	c3 = c3[:d]
	var a0, a1, a2, a3 float64
	for i := 0; i < d; i++ {
		row := tab.Gaps2[tab.Off[i]:]
		a0 += row[c0[i]]
		a1 += row[c1[i]]
		a2 += row[c2[i]]
		a3 += row[c3[i]]
	}
	out[0] = a0
	out[1] = a1
	out[2] = a2
	out[3] = a3
}

// boundGap returns the distance from v to the interval [lo, hi] (0 when v
// lies inside, and 0 for NaN v: every comparison is false, matching the
// scalar consumers this replaces).
func boundGap(v, lo, hi float64) float64 {
	if v < lo {
		return lo - v
	}
	if v > hi {
		return v - hi
	}
	return 0
}

// checkRegion validates one packed bounds row against q and w.
func checkRegion(qLen, wLen, boundsLen, perDim int) {
	if wLen*perDim != boundsLen || qLen == 0 {
		panic(fmt.Sprintf("kernel: region bounds length %d does not match %d weighted dims (stride %d)", boundsLen, wLen, perDim))
	}
}

// RegionLowerBound2 returns the squared region lower bound of a query
// vector against one axis-aligned region: for every dimension d it clamps
// q[d] into [bounds[2d], bounds[2d+1]] and accumulates w[d]·gap². This is
// the iSAX MINDIST shape (q = query PAA, bounds = the word's per-segment
// breakpoint regions, w = segment widths); both kernels accumulate
// identically, so the value is bit-identical to the per-query scalar loop
// it replaces.
func (k Kernel) RegionLowerBound2(q, w, bounds []float64) float64 {
	if len(q) != len(w) {
		panic(fmt.Sprintf("kernel: %d query dims vs %d weights", len(q), len(w)))
	}
	checkRegion(len(q), len(w), len(bounds), 2)
	return canonNaN(regionLB2(q, w, bounds))
}

func regionLB2(q, w, bounds []float64) float64 {
	var acc float64
	for d := range q {
		g := boundGap(q[d], bounds[2*d], bounds[2*d+1])
		acc += w[d] * g * g
	}
	return acc
}

// RegionLowerBounds2 scores q against every region in regions (one packed
// [lo,hi] bounds row per region, each of length 2·len(q)) and writes the
// squared lower bounds to out. The blocked kernel scores four regions at a
// time with independent accumulator chains.
func (k Kernel) RegionLowerBounds2(q, w []float64, regions [][]float64, out []float64) {
	if len(out) < len(regions) {
		panic(fmt.Sprintf("kernel: out buffer holds %d results, %d regions given", len(out), len(regions)))
	}
	if len(q) != len(w) {
		panic(fmt.Sprintf("kernel: %d query dims vs %d weights", len(q), len(w)))
	}
	for _, b := range regions {
		checkRegion(len(q), len(w), len(b), 2)
	}
	if k == Blocked {
		i := 0
		for ; i+4 <= len(regions); i += 4 {
			regionLB4(q, w, regions[i], regions[i+1], regions[i+2], regions[i+3], out[i:i+4:i+4])
		}
		for ; i < len(regions); i++ {
			out[i] = regionLB2(q, w, regions[i])
		}
		canonNaNs(out[:len(regions)])
		return
	}
	for i, b := range regions {
		out[i] = regionLB2(q, w, b)
	}
	canonNaNs(out[:len(regions)])
}

// regionLB4 is the 4-region clamp-accumulate group; per-region accumulation
// order matches regionLB2 exactly.
func regionLB4(q, w, b0, b1, b2, b3 []float64, out []float64) {
	n := len(q)
	w = w[:n]
	b0 = b0[:2*n]
	b1 = b1[:2*n]
	b2 = b2[:2*n]
	b3 = b3[:2*n]
	var a0, a1, a2, a3 float64
	for d := 0; d < n; d++ {
		qd, wd := q[d], w[d]
		lo, hi := 2*d, 2*d+1
		g := boundGap(qd, b0[lo], b0[hi])
		a0 += wd * g * g
		g = boundGap(qd, b1[lo], b1[hi])
		a1 += wd * g * g
		g = boundGap(qd, b2[lo], b2[hi])
		a2 += wd * g * g
		g = boundGap(qd, b3[lo], b3[hi])
		a3 += wd * g * g
	}
	out[0] = a0
	out[1] = a1
	out[2] = a2
	out[3] = a3
}

// PairRegionLowerBound2 is the DSTree synopsis shape: the query packs two
// values per segment (q[2i], q[2i+1] — mean and standard deviation), the
// region packs two [lo,hi] intervals per segment (bounds[4i..4i+3]), and
// each segment contributes w[i]·(gapA² + gapB²) — the exact accumulation
// of eapca.Synopsis.LowerBound2, so values are bit-identical to it.
func (k Kernel) PairRegionLowerBound2(q, w, bounds []float64) float64 {
	if len(q) != 2*len(w) {
		panic(fmt.Sprintf("kernel: paired query length %d != 2x%d weights", len(q), len(w)))
	}
	checkRegion(len(q), len(w), len(bounds), 4)
	return canonNaN(pairRegionLB2(q, w, bounds))
}

func pairRegionLB2(q, w, bounds []float64) float64 {
	var acc float64
	for i := range w {
		ga := boundGap(q[2*i], bounds[4*i], bounds[4*i+1])
		gb := boundGap(q[2*i+1], bounds[4*i+2], bounds[4*i+3])
		acc += w[i] * (ga*ga + gb*gb)
	}
	return acc
}

// PairRegionLowerBounds2 scores the paired query against every packed
// region row (each of length 4·len(w)), writing squared bounds to out;
// the blocked kernel runs four regions per pass.
func (k Kernel) PairRegionLowerBounds2(q, w []float64, regions [][]float64, out []float64) {
	if len(out) < len(regions) {
		panic(fmt.Sprintf("kernel: out buffer holds %d results, %d regions given", len(out), len(regions)))
	}
	if len(q) != 2*len(w) {
		panic(fmt.Sprintf("kernel: paired query length %d != 2x%d weights", len(q), len(w)))
	}
	for _, b := range regions {
		checkRegion(len(q), len(w), len(b), 4)
	}
	if k == Blocked {
		i := 0
		for ; i+4 <= len(regions); i += 4 {
			pairRegionLB4(q, w, regions[i], regions[i+1], regions[i+2], regions[i+3], out[i:i+4:i+4])
		}
		for ; i < len(regions); i++ {
			out[i] = pairRegionLB2(q, w, regions[i])
		}
		canonNaNs(out[:len(regions)])
		return
	}
	for i, b := range regions {
		out[i] = pairRegionLB2(q, w, b)
	}
	canonNaNs(out[:len(regions)])
}

// pairRegionLB4 is the 4-region paired clamp-accumulate group; per-region
// accumulation order matches pairRegionLB2 exactly.
func pairRegionLB4(q, w, b0, b1, b2, b3 []float64, out []float64) {
	n := len(w)
	q = q[:2*n]
	b0 = b0[:4*n]
	b1 = b1[:4*n]
	b2 = b2[:4*n]
	b3 = b3[:4*n]
	var a0, a1, a2, a3 float64
	for i := 0; i < n; i++ {
		qa, qb, wi := q[2*i], q[2*i+1], w[i]
		la, ha, lb, hb := 4*i, 4*i+1, 4*i+2, 4*i+3
		ga := boundGap(qa, b0[la], b0[ha])
		gb := boundGap(qb, b0[lb], b0[hb])
		a0 += wi * (ga*ga + gb*gb)
		ga = boundGap(qa, b1[la], b1[ha])
		gb = boundGap(qb, b1[lb], b1[hb])
		a1 += wi * (ga*ga + gb*gb)
		ga = boundGap(qa, b2[la], b2[ha])
		gb = boundGap(qb, b2[lb], b2[hb])
		a2 += wi * (ga*ga + gb*gb)
		ga = boundGap(qa, b3[la], b3[ha])
		gb = boundGap(qb, b3[lb], b3[hb])
		a3 += wi * (ga*ga + gb*gb)
	}
	out[0] = a0
	out[1] = a1
	out[2] = a2
	out[3] = a3
}

// SelectLowerBounds2 heapifies idx (candidate identifiers, typically
// 0..n-1) into a min-heap ordered by (lb2, id): the bounded phase-1
// selection primitive. Heapify costs O(n); each PopLowerBound2 costs
// O(log n), so visiting only the m candidates that survive pruning costs
// O(n + m·log n) instead of the O(n·log n) full sort it replaces. Ties
// order by ascending id under both kernels, making the visit order
// deterministic and kernel-independent (NaN bounds order last).
func SelectLowerBounds2(lb2 []float64, idx []int32) {
	for i := len(idx)/2 - 1; i >= 0; i-- {
		siftLowerBound2(lb2, idx, i)
	}
}

// PopLowerBound2 removes and returns the candidate with the smallest
// (lb2, id) key from a heap built by SelectLowerBounds2, shrinking idx.
func PopLowerBound2(lb2 []float64, idx []int32) (int32, []int32) {
	top := idx[0]
	last := len(idx) - 1
	idx[0] = idx[last]
	idx = idx[:last]
	if len(idx) > 1 {
		siftLowerBound2(lb2, idx, 0)
	}
	return top, idx
}

// lbLess orders candidates by (lb2, id); NaN bounds sort after everything
// (they can never be pruned, only refined last).
func lbLess(lb2 []float64, a, b int32) bool {
	la, lb := lb2[a], lb2[b]
	if la != lb {
		if la < lb {
			return true
		}
		if lb < la {
			return false
		}
		// Exactly one of the two is NaN: the non-NaN one comes first.
		return !math.IsNaN(la)
	}
	return a < b
}

func siftLowerBound2(lb2 []float64, idx []int32, i int) {
	n := len(idx)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && lbLess(lb2, idx[l], idx[small]) {
			small = l
		}
		if r < n && lbLess(lb2, idx[r], idx[small]) {
			small = r
		}
		if small == i {
			return
		}
		idx[i], idx[small] = idx[small], idx[i]
		i = small
	}
}

// ---------------------------------------------------------------------------
// Package-level convenience forms dispatching on the active kernel.

// VALowerBounds2 is Active().VALowerBounds2.
func VALowerBounds2(tab GapTable, codes []uint16, out []float64) int {
	return Active().VALowerBounds2(tab, codes, out)
}

// RegionLowerBound2 is Active().RegionLowerBound2.
func RegionLowerBound2(q, w, bounds []float64) float64 {
	return Active().RegionLowerBound2(q, w, bounds)
}

// RegionLowerBounds2 is Active().RegionLowerBounds2.
func RegionLowerBounds2(q, w []float64, regions [][]float64, out []float64) {
	Active().RegionLowerBounds2(q, w, regions, out)
}

// PairRegionLowerBound2 is Active().PairRegionLowerBound2.
func PairRegionLowerBound2(q, w, bounds []float64) float64 {
	return Active().PairRegionLowerBound2(q, w, bounds)
}

// PairRegionLowerBounds2 is Active().PairRegionLowerBounds2.
func PairRegionLowerBounds2(q, w []float64, regions [][]float64, out []float64) {
	Active().PairRegionLowerBounds2(q, w, regions, out)
}
