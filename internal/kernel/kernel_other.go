//go:build !amd64

package kernel

// useAVX2 is false off amd64; the portable blocked kernel is used.
const useAVX2 = false

// ea4 dispatches one 4-candidate group to the portable implementation.
func ea4(q, s0, s1, s2, s3 []float32, limit float64, out []float64) {
	ea4Fallback(q, s0, s1, s2, s3, limit, out)
}
