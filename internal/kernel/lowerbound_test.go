package kernel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randGapTable builds a gap table with rows of varying cell counts and a
// matching random packed code array.
func randGapTable(rng *rand.Rand, dims, cands int) (GapTable, []uint16) {
	tab := GapTable{Off: make([]int, dims), Dims: dims}
	cells := make([]int, dims)
	for d := 0; d < dims; d++ {
		cells[d] = 1 + rng.Intn(9)
		tab.Off[d] = len(tab.Gaps2)
		for c := 0; c < cells[d]; c++ {
			tab.Gaps2 = append(tab.Gaps2, rng.Float64()*3)
		}
	}
	codes := make([]uint16, dims*cands)
	for i := range codes {
		codes[i] = uint16(rng.Intn(cells[i%dims]))
	}
	return tab, codes
}

func TestVALowerBounds2Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range []int{1, 3, 8, 16} {
		for _, cands := range []int{0, 1, 3, 4, 5, 17, 64} {
			tab, codes := randGapTable(rng, dims, cands)
			want := make([]float64, cands)
			got := make([]float64, cands)
			if n := Scalar.VALowerBounds2(tab, codes, want); n != cands {
				t.Fatalf("scalar count = %d, want %d", n, cands)
			}
			if n := Blocked.VALowerBounds2(tab, codes, got); n != cands {
				t.Fatalf("blocked count = %d, want %d", n, cands)
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("dims=%d cands=%d cand %d: scalar %v blocked %v", dims, cands, i, want[i], got[i])
				}
			}
		}
	}
}

func TestVALowerBounds2Values(t *testing.T) {
	// 2 dims: row 0 = [0, 1, 4], row 1 = [9, 16].
	tab := GapTable{Gaps2: []float64{0, 1, 4, 9, 16}, Off: []int{0, 3}, Dims: 2}
	codes := []uint16{0, 0, 2, 1, 1, 0}
	out := make([]float64, 3)
	for _, k := range Kernels() {
		k.VALowerBounds2(tab, codes, out)
		want := []float64{9, 20, 10}
		for i := range want {
			if out[i] != want[i] {
				t.Errorf("%v cand %d: got %v, want %v", k, i, out[i], want[i])
			}
		}
	}
}

func TestVALowerBounds2Panics(t *testing.T) {
	tab := GapTable{Gaps2: []float64{0}, Off: []int{0}, Dims: 1}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ragged codes", func() {
		Scalar.VALowerBounds2(GapTable{Gaps2: []float64{0, 0}, Off: []int{0, 1}, Dims: 2}, []uint16{0, 0, 0}, make([]float64, 2))
	})
	mustPanic("short out", func() {
		Scalar.VALowerBounds2(tab, []uint16{0, 0}, make([]float64, 1))
	})
	mustPanic("bad offsets", func() {
		Scalar.VALowerBounds2(GapTable{Gaps2: []float64{0}, Off: nil, Dims: 1}, []uint16{0}, make([]float64, 1))
	})
}

// randRegions builds random packed [lo,hi] rows (perDim intervals of width
// stride 2) for region-bound tests, with occasional infinite edges.
func randRegions(rng *rand.Rand, segs, count, pairs int) [][]float64 {
	rows := make([][]float64, count)
	for i := range rows {
		row := make([]float64, 2*pairs*segs)
		for j := 0; j < len(row); j += 2 {
			lo := rng.NormFloat64()
			hi := lo + rng.Float64()
			if rng.Intn(8) == 0 {
				lo = math.Inf(-1)
			}
			if rng.Intn(8) == 0 {
				hi = math.Inf(1)
			}
			row[j], row[j+1] = lo, hi
		}
		rows[i] = row
	}
	return rows
}

func TestRegionLowerBounds2Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, segs := range []int{1, 4, 7} {
		for _, count := range []int{0, 1, 4, 9, 33} {
			q := make([]float64, segs)
			w := make([]float64, segs)
			for d := range q {
				q[d] = rng.NormFloat64()
				w[d] = 1 + rng.Float64()*7
			}
			regions := randRegions(rng, segs, count, 1)
			want := make([]float64, count)
			got := make([]float64, count)
			Scalar.RegionLowerBounds2(q, w, regions, want)
			Blocked.RegionLowerBounds2(q, w, regions, got)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("segs=%d count=%d region %d: scalar %v blocked %v", segs, count, i, want[i], got[i])
				}
				single := Blocked.RegionLowerBound2(q, w, regions[i])
				if math.Float64bits(single) != math.Float64bits(want[i]) {
					t.Fatalf("region %d: single %v batch %v", i, single, want[i])
				}
			}
		}
	}
}

func TestPairRegionLowerBounds2Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, segs := range []int{1, 3, 6} {
		for _, count := range []int{0, 1, 2, 4, 5, 19} {
			q := make([]float64, 2*segs)
			w := make([]float64, segs)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			for i := range w {
				w[i] = float64(1 + rng.Intn(16))
			}
			regions := randRegions(rng, segs, count, 2)
			want := make([]float64, count)
			got := make([]float64, count)
			Scalar.PairRegionLowerBounds2(q, w, regions, want)
			Blocked.PairRegionLowerBounds2(q, w, regions, got)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("segs=%d count=%d region %d: scalar %v blocked %v", segs, count, i, want[i], got[i])
				}
				single := Blocked.PairRegionLowerBound2(q, w, regions[i])
				if math.Float64bits(single) != math.Float64bits(want[i]) {
					t.Fatalf("region %d: single %v batch %v", i, single, want[i])
				}
			}
		}
	}
}

func TestRegionLowerBoundAdversarial(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	q := []float64{nan, inf, -inf, 0}
	w := []float64{1, 2, 3, 4}
	bounds := []float64{-1, 1, -1, 1, -1, 1, -1, 1}
	for _, k := range Kernels() {
		got := k.RegionLowerBound2(q, w, bounds)
		// NaN coordinate contributes 0 (every comparison false); the two
		// infinite coordinates contribute +Inf.
		if !math.IsInf(got, 1) {
			t.Errorf("%v adversarial bound = %v, want +Inf", k, got)
		}
	}
	// A zero weight against an infinite gap produces NaN; it must be the
	// canonical NaN under both kernels.
	w0 := []float64{0, 0, 0, 0}
	for _, k := range Kernels() {
		got := k.RegionLowerBound2(q, w0, bounds)
		if math.Float64bits(got) != math.Float64bits(math.NaN()) {
			t.Errorf("%v zero-weight bound bits = %x, want canonical NaN", k, math.Float64bits(got))
		}
	}
	// Inside every interval: exactly zero.
	for _, k := range Kernels() {
		if got := k.RegionLowerBound2([]float64{0, 0, 0, 0}, w, bounds); got != 0 {
			t.Errorf("%v inside bound = %v, want 0", k, got)
		}
	}
}

func TestSelectLowerBounds2Order(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 7, 100} {
		lb2 := make([]float64, n)
		for i := range lb2 {
			lb2[i] = float64(rng.Intn(5)) // heavy ties
		}
		if n > 3 {
			lb2[1] = math.NaN()
			lb2[3] = math.Inf(1)
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		SelectLowerBounds2(lb2, idx)
		got := make([]int32, 0, n)
		for len(idx) > 0 {
			var top int32
			top, idx = PopLowerBound2(lb2, idx)
			got = append(got, top)
		}
		want := make([]int32, n)
		for i := range want {
			want[i] = int32(i)
		}
		sort.SliceStable(want, func(a, b int) bool { return lbLess(lb2, want[a], want[b]) })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d pop %d: got id %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkVALowerBounds2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const dims, cands = 16, 4096
	tab, codes := randGapTable(rng, dims, cands)
	out := make([]float64, cands)
	for _, k := range Kernels() {
		b.Run(k.String(), func(b *testing.B) {
			b.SetBytes(int64(cands * dims * 2))
			for i := 0; i < b.N; i++ {
				k.VALowerBounds2(tab, codes, out)
			}
		})
	}
}

func BenchmarkRegionLowerBounds2(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const segs, count = 16, 256
	q := make([]float64, segs)
	w := make([]float64, segs)
	for i := range q {
		q[i] = rng.NormFloat64()
		w[i] = 16
	}
	regions := randRegions(rng, segs, count, 1)
	out := make([]float64, count)
	for _, k := range Kernels() {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.RegionLowerBounds2(q, w, regions, out)
			}
		})
	}
}

func BenchmarkPairRegionLowerBounds2(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const segs, count = 8, 256
	q := make([]float64, 2*segs)
	w := make([]float64, segs)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for i := range w {
		w[i] = 32
	}
	regions := randRegions(rng, segs, count, 2)
	out := make([]float64, count)
	for _, k := range Kernels() {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.PairRegionLowerBounds2(q, w, regions, out)
			}
		})
	}
}
