package kernel

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBlockedEquivalence fuzzes the scalar ≡ blocked contract: from raw
// bytes it derives a query length (deliberately including non-multiple-
// of-8 remainders), a candidate block, and a limit — reinterpreting the
// bytes as float32s, so NaN, Inf, subnormals and huge magnitudes all
// occur naturally — and requires byte-identical float64 results from
// every entry point. The seed corpus (wired into every `go test` run via
// f.Add) covers the tail widths, the special values and the abandon
// regimes explicitly.
func FuzzBlockedEquivalence(f *testing.F) {
	mk := func(dims byte, limit float64, vals ...float32) []byte {
		buf := []byte{dims}
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(limit))
		buf = append(buf, tmp[:]...)
		for _, v := range vals {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			buf = append(buf, b[:]...)
		}
		return buf
	}
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	// dims=1..n with assorted candidate counts, tails and limits.
	f.Add(mk(1, math.Inf(1), 1, 2, 3, 4, 5))
	f.Add(mk(3, 2.5, 1, 2, 3, 3, 2, 1, 0, 0, 0, 9, 9, 9))
	f.Add(mk(8, 1.0, 1, 2, 3, 4, 5, 6, 7, 8, 8, 7, 6, 5, 4, 3, 2, 1))
	f.Add(mk(9, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 9, 8, 7, 6, 5, 4, 3, 2, 1))
	f.Add(mk(17, 100, make([]float32, 17*5)...))
	f.Add(mk(5, math.NaN(), nan, inf, -inf, 0, 1, 1, 2, 3, 4, 5))
	f.Add(mk(12, 1e-300, inf, inf, nan, 0, 1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(mk(16, 50, func() []float32 {
		vals := make([]float32, 16*9)
		for i := range vals {
			vals[i] = float32(i%7) - 3
		}
		vals[20] = nan
		vals[40] = inf
		return vals
	}()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 13 {
			return
		}
		dims := int(data[0])%64 + 1
		limit := math.Float64frombits(binary.LittleEndian.Uint64(data[1:9]))
		vals := data[9:]
		n := len(vals) / 4
		if n < dims {
			return
		}
		floats := make([]float32, n)
		for i := range floats {
			floats[i] = math.Float32frombits(binary.LittleEndian.Uint32(vals[i*4:]))
		}
		q := floats[:dims]
		cands := (n - dims) / dims
		if cands > 9 {
			cands = 9
		}
		block := floats[dims : dims+cands*dims]

		check := func(label string, s, b float64) {
			if math.Float64bits(s) != math.Float64bits(b) {
				t.Fatalf("%s (dims %d, limit %v): scalar %v != blocked %v", label, dims, limit, s, b)
			}
		}

		check("SquaredDist", Scalar.SquaredDist(q, q), Blocked.SquaredDist(q, q))
		if cands > 0 {
			pair := block[:dims]
			check("SquaredDistPair", Scalar.SquaredDist(q, pair), Blocked.SquaredDist(q, pair))
			check("SquaredDistEarlyAbandon",
				Scalar.SquaredDistEarlyAbandon(q, pair, limit),
				Blocked.SquaredDistEarlyAbandon(q, pair, limit))

			outS := make([]float64, cands)
			outB := make([]float64, cands)
			Scalar.SquaredDistsEarlyAbandon(q, block, limit, outS)
			Blocked.SquaredDistsEarlyAbandon(q, block, limit, outB)
			for i := range outS {
				check("SquaredDistsEarlyAbandon", outS[i], outB[i])
			}

			views := make([][]float32, cands)
			for i := range views {
				views[i] = block[i*dims : (i+1)*dims]
			}
			Scalar.SquaredDistsGather(q, views, limit, outS)
			Blocked.SquaredDistsGather(q, views, limit, outB)
			for i := range outS {
				check("SquaredDistsGather", outS[i], outB[i])
			}

			iS, dS := Scalar.NearestInBlock(q, block, limit)
			iB, dB := Blocked.NearestInBlock(q, block, limit)
			if iS != iB {
				t.Fatalf("NearestInBlock index: scalar %d != blocked %d", iS, iB)
			}
			check("NearestInBlock", dS, dB)
		}
	})
}
