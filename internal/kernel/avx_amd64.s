// AVX2 candidate-blocked Euclidean kernel.
//
// ea4avx2 scores a query against four candidate series at once. The four
// candidates live in the four lanes of a ymm accumulator: lane l holds
// candidate l's partial squared distance, accumulated in dimension order
// exactly like the scalar kernel (the vectorisation is across candidates,
// never across a candidate's own additions), so every lane is bit-identical
// to the scalar result. After each 8-dimension chunk the partial sums are
// compared against the limit; lanes that exceed it are frozen by masking
// their further contributions to +0.0 (x + 0.0 == x for the non-negative
// partial sums involved), which reproduces the scalar kernel's
// early-abandon contract per candidate.
//
// func ea4avx2(q, s0, s1, s2, s3 *float32, chunks int64, limit float64, acc *[4]float64) int32
// Processes chunks*8 leading dimensions; returns the active-lane bitmask
// (bit l set = candidate l never exceeded the limit).

#include "textflag.h"

TEXT ·ea4avx2(SB), NOSPLIT, $0-68
	MOVQ q+0(FP), DI
	MOVQ s0+8(FP), SI
	MOVQ s1+16(FP), DX
	MOVQ s2+24(FP), CX
	MOVQ s3+32(FP), R8
	MOVQ chunks+40(FP), R9
	MOVQ acc+56(FP), R11

	// Y0 = accumulators (zero), Y1 = active-lane mask (all ones),
	// Y2 = broadcast limit.
	VXORPD       Y0, Y0, Y0
	VPCMPEQD     Y1, Y1, Y1
	VBROADCASTSD limit+48(FP), Y2

	XORQ R10, R10 // byte offset into the float32 rows
	TESTQ R9, R9
	JZ   done

chunk:
	// ---- first 4-dimension group ----
	VMOVUPS (SI)(R10*1), X3 // c0[d..d+3]
	VMOVUPS (DX)(R10*1), X4 // c1[d..d+3]
	VMOVUPS (CX)(R10*1), X5 // c2[d..d+3]
	VMOVUPS (R8)(R10*1), X6 // c3[d..d+3]

	// 4x4 float32 transpose: X3..X6 become per-dimension vectors
	// [c0_d, c1_d, c2_d, c3_d].
	VUNPCKLPS X4, X3, X7  // c0_0 c1_0 c0_1 c1_1
	VUNPCKHPS X4, X3, X8  // c0_2 c1_2 c0_3 c1_3
	VUNPCKLPS X6, X5, X9  // c2_0 c3_0 c2_1 c3_1
	VUNPCKHPS X6, X5, X10 // c2_2 c3_2 c2_3 c3_3
	VMOVLHPS  X9, X7, X3  // dim d+0 across candidates
	VMOVHLPS  X7, X9, X4  // dim d+1
	VMOVLHPS  X10, X8, X5 // dim d+2
	VMOVHLPS  X8, X10, X6 // dim d+3

	// dim d+0
	VBROADCASTSS (DI)(R10*1), X11
	VCVTPS2PD    X11, Y11 // q_d in all four lanes (float64)
	VCVTPS2PD    X3, Y3
	VSUBPD       Y3, Y11, Y12
	VMULPD       Y12, Y12, Y12
	VANDPD       Y1, Y12, Y12 // freeze abandoned lanes
	VADDPD       Y12, Y0, Y0

	// dim d+1
	VBROADCASTSS 4(DI)(R10*1), X11
	VCVTPS2PD    X11, Y11
	VCVTPS2PD    X4, Y4
	VSUBPD       Y4, Y11, Y12
	VMULPD       Y12, Y12, Y12
	VANDPD       Y1, Y12, Y12
	VADDPD       Y12, Y0, Y0

	// dim d+2
	VBROADCASTSS 8(DI)(R10*1), X11
	VCVTPS2PD    X11, Y11
	VCVTPS2PD    X5, Y5
	VSUBPD       Y5, Y11, Y12
	VMULPD       Y12, Y12, Y12
	VANDPD       Y1, Y12, Y12
	VADDPD       Y12, Y0, Y0

	// dim d+3
	VBROADCASTSS 12(DI)(R10*1), X11
	VCVTPS2PD    X11, Y11
	VCVTPS2PD    X6, Y6
	VSUBPD       Y6, Y11, Y12
	VMULPD       Y12, Y12, Y12
	VANDPD       Y1, Y12, Y12
	VADDPD       Y12, Y0, Y0

	// ---- second 4-dimension group ----
	VMOVUPS 16(SI)(R10*1), X3
	VMOVUPS 16(DX)(R10*1), X4
	VMOVUPS 16(CX)(R10*1), X5
	VMOVUPS 16(R8)(R10*1), X6

	VUNPCKLPS X4, X3, X7
	VUNPCKHPS X4, X3, X8
	VUNPCKLPS X6, X5, X9
	VUNPCKHPS X6, X5, X10
	VMOVLHPS  X9, X7, X3
	VMOVHLPS  X7, X9, X4
	VMOVLHPS  X10, X8, X5
	VMOVHLPS  X8, X10, X6

	// dim d+4
	VBROADCASTSS 16(DI)(R10*1), X11
	VCVTPS2PD    X11, Y11
	VCVTPS2PD    X3, Y3
	VSUBPD       Y3, Y11, Y12
	VMULPD       Y12, Y12, Y12
	VANDPD       Y1, Y12, Y12
	VADDPD       Y12, Y0, Y0

	// dim d+5
	VBROADCASTSS 20(DI)(R10*1), X11
	VCVTPS2PD    X11, Y11
	VCVTPS2PD    X4, Y4
	VSUBPD       Y4, Y11, Y12
	VMULPD       Y12, Y12, Y12
	VANDPD       Y1, Y12, Y12
	VADDPD       Y12, Y0, Y0

	// dim d+6
	VBROADCASTSS 24(DI)(R10*1), X11
	VCVTPS2PD    X11, Y11
	VCVTPS2PD    X5, Y5
	VSUBPD       Y5, Y11, Y12
	VMULPD       Y12, Y12, Y12
	VANDPD       Y1, Y12, Y12
	VADDPD       Y12, Y0, Y0

	// dim d+7
	VBROADCASTSS 28(DI)(R10*1), X11
	VCVTPS2PD    X11, Y11
	VCVTPS2PD    X6, Y6
	VSUBPD       Y6, Y11, Y12
	VMULPD       Y12, Y12, Y12
	VANDPD       Y1, Y12, Y12
	VADDPD       Y12, Y0, Y0

	// ---- 8-dimension chunk boundary: abandon check ----
	VCMPPD    $0x0E, Y2, Y0, Y12 // GT_OS: partial > limit, false on NaN
	VANDNPD   Y1, Y12, Y1        // active &= ^exceeded
	VMOVMSKPD Y1, AX
	TESTL     AX, AX
	JZ        done

	ADDQ $32, R10 // 8 float32 dimensions
	DECQ R9
	JNZ  chunk

done:
	VMOVUPD   Y0, (R11)
	VMOVMSKPD Y1, AX
	MOVL      AX, ret+64(FP)
	VZEROUPPER
	RET

// func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
