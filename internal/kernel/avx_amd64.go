//go:build amd64

package kernel

// ea4avx2 is the AVX2 inner loop (avx_amd64.s): it scores q against four
// candidates over the first chunks*8 dimensions with the standard
// 8-dimension early-abandon cadence, leaving per-lane partial sums in acc
// and returning the active-lane bitmask (bit l set = lane l not
// abandoned).
//
//go:noescape
func ea4avx2(q, s0, s1, s2, s3 *float32, chunks int64, limit float64, acc *[4]float64) int32

// useAVX2 reports whether the blocked kernel may use the assembly path.
var useAVX2 = cpuHasAVX2()

// cpuid executes CPUID for the given leaf/subleaf (avx_amd64.s).
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (avx_amd64.s); only valid
// when CPUID reports OSXSAVE.
func xgetbv0() (eax, edx uint32)

// cpuHasAVX2 checks CPU and OS support for the ymm state the kernel uses.
func cpuHasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// ea4 dispatches one 4-candidate group: the AVX2 fast path for the full
// 8-dimension chunks plus a Go tail, or the portable fallback.
func ea4(q, s0, s1, s2, s3 []float32, limit float64, out []float64) {
	n := len(q)
	if !useAVX2 || n < 8 {
		ea4Fallback(q, s0, s1, s2, s3, limit, out)
		return
	}
	var acc [4]float64
	mask := ea4avx2(&q[0], &s0[0], &s1[0], &s2[0], &s3[0], int64(n/8), limit, &acc)
	if i := n &^ 7; i < n {
		// Abandoned lanes keep their frozen partial sums; active lanes
		// finish the sub-8 tail unconditionally, like the scalar kernel.
		if mask&1 != 0 {
			for j := i; j < n; j++ {
				acc[0] += sq(q[j], s0[j])
			}
		}
		if mask&2 != 0 {
			for j := i; j < n; j++ {
				acc[1] += sq(q[j], s1[j])
			}
		}
		if mask&4 != 0 {
			for j := i; j < n; j++ {
				acc[2] += sq(q[j], s2[j])
			}
		}
		if mask&8 != 0 {
			for j := i; j < n; j++ {
				acc[3] += sq(q[j], s3[j])
			}
		}
	}
	out[0] = acc[0]
	out[1] = acc[1]
	out[2] = acc[2]
	out[3] = acc[3]
}
