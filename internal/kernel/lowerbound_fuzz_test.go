package kernel

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzLowerBoundEquivalence fuzzes the scalar ≡ blocked contract of the
// lower-bound kernels: raw bytes are reinterpreted as float64s (so NaN,
// ±Inf, subnormals and constants occur naturally) and carved into a query,
// a weight vector, region rows and a gap table with packed codes; every
// form must return bit-identical results under both kernels. The seed
// corpus pins the special values and the 4-wide block tails explicitly.
func FuzzLowerBoundEquivalence(f *testing.F) {
	mk := func(segs byte, vals ...float64) []byte {
		buf := []byte{segs}
		var tmp [8]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
			buf = append(buf, tmp[:]...)
		}
		return buf
	}
	nan := math.NaN()
	inf := math.Inf(1)
	f.Add(mk(1, 0, 1, -1, 1, -2, 2, 0.5, 0.5))
	f.Add(mk(2, 1, 2, 3, 4, -1, 1, -1, 1, 0, 2, 0, 2, -3, -2, 5, 6))
	f.Add(mk(3, nan, inf, -inf, 0, 1, 2, -1, 1, -1, 1, -1, 1, nan, nan, inf, inf, 0, 0))
	f.Add(mk(4, func() []float64 {
		vals := make([]float64, 4*2+4*2*5) // q+w plus five region rows
		for i := range vals {
			vals[i] = float64(i%5) - 2
		}
		vals[3] = nan
		vals[11] = -inf
		return vals
	}()...))
	f.Add(mk(5, make([]float64, 5*2+5*2*9)...)) // all-zero constants

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1+3*8 {
			return
		}
		segs := int(data[0])%8 + 1
		raw := data[1:]
		n := len(raw) / 8
		floats := make([]float64, n)
		for i := range floats {
			floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		if n < 2*segs {
			return
		}
		q := floats[:segs]
		w := floats[segs : 2*segs]
		rest := floats[2*segs:]

		check := func(label string, a, b []float64) {
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("%s (segs %d, row %d): scalar %v != blocked %v", label, segs, i, a[i], b[i])
				}
			}
		}

		// Region form: rows of 2·segs bounds.
		rows := len(rest) / (2 * segs)
		if rows > 9 {
			rows = 9
		}
		regions := make([][]float64, rows)
		for i := range regions {
			regions[i] = rest[i*2*segs : (i+1)*2*segs]
		}
		sOut := make([]float64, rows)
		bOut := make([]float64, rows)
		Scalar.RegionLowerBounds2(q, w, regions, sOut)
		Blocked.RegionLowerBounds2(q, w, regions, bOut)
		check("RegionLowerBounds2", sOut, bOut)

		// Pair-region form: the same floats viewed as a 2·segs paired query
		// (q then w) against rows of 4·segs bounds.
		qPair := floats[:2*segs]
		prows := len(rest) / (4 * segs)
		if prows > 9 {
			prows = 9
		}
		if prows > 0 {
			pregions := make([][]float64, prows)
			for i := range pregions {
				pregions[i] = rest[i*4*segs : (i+1)*4*segs]
			}
			ps := make([]float64, prows)
			pb := make([]float64, prows)
			Scalar.PairRegionLowerBounds2(qPair, w, pregions, ps)
			Blocked.PairRegionLowerBounds2(qPair, w, pregions, pb)
			check("PairRegionLowerBounds2", ps, pb)
		}

		// VA gap-table form: segs dimensions of 4 cells each, table entries
		// from the floats, codes from the raw bytes.
		if n >= 2*segs+4*segs {
			tab := GapTable{Gaps2: rest[:4*segs], Off: make([]int, segs), Dims: segs}
			for d := range tab.Off {
				tab.Off[d] = 4 * d
			}
			cands := len(raw) / segs
			if cands > 9 {
				cands = 9
			}
			codes := make([]uint16, cands*segs)
			for i := range codes {
				codes[i] = uint16(raw[i]) % 4
			}
			vs := make([]float64, cands)
			vb := make([]float64, cands)
			Scalar.VALowerBounds2(tab, codes, vs)
			Blocked.VALowerBounds2(tab, codes, vb)
			check("VALowerBounds2", vs, vb)
		}
	})
}
