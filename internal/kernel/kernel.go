// Package kernel provides the Euclidean distance kernels used by every
// index method in the benchmark, behind one small scoring API with two
// interchangeable implementations:
//
//   - Scalar: the straightforward per-pair loops the repository started
//     with, kept as the always-trusted reference.
//   - Blocked: candidate-blocked kernels that score a query against four
//     candidates at a time with bounds checks hoisted out of the inner
//     loops. Interleaving candidates gives the CPU four independent
//     floating-point accumulator chains, hiding the add latency that
//     serialises the scalar loop.
//
// # Equivalence contract
//
// Both implementations compute bit-identical results for every entry
// point, which is what makes the selector safe to flip in production and
// trivially testable: each candidate's squared distance is accumulated in
// dimension order into a single float64 accumulator (blocked kernels
// interleave *candidates*, never a candidate's own additions), and the
// early-abandon forms check the partial sum against the limit after every
// full 8-dimension chunk — never inside a chunk, never in the final
// sub-8 tail. An abandoned result is therefore the identical partial sum
// under both kernels: a value strictly greater than limit but smaller
// than the true squared distance. Callers must treat any result > limit
// as "pruned", not as a distance.
//
// NaN inputs yield NaN results under both kernels, canonicalized to the
// single quiet NaN returned by math.NaN: which NaN payload survives a
// float addition is operand-order dependent, and the compiler and the
// vector hardware make different (equally legal) choices, so the raw
// payloads cannot be part of the contract — the canonical bits can. A
// NaN partial sum never abandons (every comparison against the limit is
// false for NaN, in both kernels), so canonicalization at the API
// boundary covers every path.
//
// # Accounting semantics
//
// The kernels do no accounting themselves: one candidate scored = one
// distance calculation, whatever the block width, so call sites charge
// DistCalcs by candidate count exactly as they did with the per-pair
// loops.
//
// The active kernel is a process-wide selector (default Blocked) read
// atomically by the package-level convenience functions; tests that need
// a specific implementation call methods on a Kernel value directly.
package kernel

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Kernel selects a distance-kernel implementation.
type Kernel uint8

const (
	// Scalar is the reference per-pair implementation.
	Scalar Kernel = iota
	// Blocked is the candidate-blocked implementation (default).
	Blocked
)

// Default is the kernel used when nothing is configured.
const Default = Blocked

// String returns the flag spelling of k ("scalar" or "blocked").
func (k Kernel) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Blocked:
		return "blocked"
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// Parse maps a -kernel flag value to a Kernel. The empty string selects
// Default.
func Parse(s string) (Kernel, error) {
	switch s {
	case "":
		return Default, nil
	case "scalar":
		return Scalar, nil
	case "blocked":
		return Blocked, nil
	}
	return Default, fmt.Errorf("kernel: unknown kernel %q (want scalar or blocked)", s)
}

// Kernels lists every selectable kernel, scalar first.
func Kernels() []Kernel { return []Kernel{Scalar, Blocked} }

// active holds the process-wide kernel, read on every package-level call.
var active atomic.Uint32

func init() { active.Store(uint32(Default)) }

// Use installs k as the process-wide kernel used by the package-level
// functions. It is safe for concurrent use, but flipping it mid-workload
// mixes implementations across queries (harmless — they are bit-identical
// — but it muddies benchmarking).
func Use(k Kernel) { active.Store(uint32(k)) }

// Active returns the process-wide kernel.
func Active() Kernel { return Kernel(active.Load()) }

// checkLen panics on mismatched series lengths: mixing lengths is always a
// programming error in whole-matching search.
func checkLen(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("kernel: length mismatch %d vs %d", len(a), len(b)))
	}
}

// canonNaN collapses any NaN to the canonical math.NaN bit pattern; see
// the package comment's equivalence contract.
func canonNaN(d float64) float64 {
	if d != d {
		return math.NaN()
	}
	return d
}

// canonNaNs applies canonNaN across a result buffer.
func canonNaNs(out []float64) {
	for i, v := range out {
		if v != v {
			out[i] = math.NaN()
		}
	}
}

// Distance converts a squared distance to a Euclidean distance, clamping
// tiny negative partial sums (possible after early abandoning) to zero.
func Distance(d2 float64) float64 {
	if d2 <= 0 {
		return 0
	}
	return math.Sqrt(d2)
}

// ---------------------------------------------------------------------------
// Pairwise forms.

// SquaredDist returns the squared Euclidean distance between a and b.
func (k Kernel) SquaredDist(a, b []float32) float64 {
	checkLen(a, b)
	if k == Blocked {
		return canonNaN(blockedSquaredDist(a, b))
	}
	return canonNaN(scalarSquaredDist(a, b))
}

// Dist returns the Euclidean distance between a and b.
func (k Kernel) Dist(a, b []float32) float64 {
	return math.Sqrt(k.SquaredDist(a, b))
}

// SquaredDistEarlyAbandon computes the squared Euclidean distance between
// a and b but abandons the computation as soon as the partial sum exceeds
// limit at an 8-dimension chunk boundary, returning the partial sum
// (> limit) in that case. See the package comment for the exact contract.
func (k Kernel) SquaredDistEarlyAbandon(a, b []float32, limit float64) float64 {
	checkLen(a, b)
	if k == Blocked {
		return canonNaN(blockedSquaredDistEA(a, b, limit))
	}
	return canonNaN(scalarSquaredDistEA(a, b, limit))
}

func scalarSquaredDist(a, b []float32) float64 {
	var acc float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		acc += d * d
	}
	return acc
}

func scalarSquaredDistEA(a, b []float32, limit float64) float64 {
	var acc float64
	n := len(a)
	i := 0
	// Process in blocks of 8 between limit checks: checking every element
	// costs more than it saves on modern hardware.
	for ; i+8 <= n; i += 8 {
		for j := i; j < i+8; j++ {
			d := float64(a[j]) - float64(b[j])
			acc += d * d
		}
		if acc > limit {
			return acc
		}
	}
	for ; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		acc += d * d
	}
	return acc
}

func blockedSquaredDist(a, b []float32) float64 {
	n := len(a)
	b = b[:n] // hoist the bounds check on b out of the loops
	var acc float64
	i := 0
	for ; i+8 <= n; i += 8 {
		x := a[i : i+8 : i+8]
		y := b[i : i+8 : i+8]
		acc += sq(x[0], y[0])
		acc += sq(x[1], y[1])
		acc += sq(x[2], y[2])
		acc += sq(x[3], y[3])
		acc += sq(x[4], y[4])
		acc += sq(x[5], y[5])
		acc += sq(x[6], y[6])
		acc += sq(x[7], y[7])
	}
	for ; i < n; i++ {
		acc += sq(a[i], b[i])
	}
	return acc
}

func blockedSquaredDistEA(a, b []float32, limit float64) float64 {
	n := len(a)
	b = b[:n]
	var acc float64
	i := 0
	for ; i+8 <= n; i += 8 {
		x := a[i : i+8 : i+8]
		y := b[i : i+8 : i+8]
		acc += sq(x[0], y[0])
		acc += sq(x[1], y[1])
		acc += sq(x[2], y[2])
		acc += sq(x[3], y[3])
		acc += sq(x[4], y[4])
		acc += sq(x[5], y[5])
		acc += sq(x[6], y[6])
		acc += sq(x[7], y[7])
		if acc > limit {
			return acc
		}
	}
	for ; i < n; i++ {
		acc += sq(a[i], b[i])
	}
	return acc
}

// sq is the shared per-dimension term; using the same expression shape in
// every implementation keeps results bit-identical even on architectures
// where the compiler may fuse multiply-adds.
func sq(x, y float32) float64 {
	d := float64(x) - float64(y)
	return d * d
}

// ---------------------------------------------------------------------------
// Block forms over a flat candidate block (row-major, len(q)-strided).

// blockCandidates validates a flat block against the query length and
// returns the candidate count.
func blockCandidates(q, block []float32) int {
	n := len(q)
	if n == 0 {
		panic("kernel: empty query")
	}
	if len(block)%n != 0 {
		panic(fmt.Sprintf("kernel: block size %d is not a multiple of query length %d", len(block), n))
	}
	return len(block) / n
}

// blockCount additionally checks that out can hold every result.
func blockCount(q, block []float32, outLen int) int {
	c := blockCandidates(q, block)
	if outLen < c {
		panic(fmt.Sprintf("kernel: out buffer holds %d results, block has %d candidates", outLen, c))
	}
	return c
}

// SquaredDists scores q against every candidate in block (a flat slice of
// candidates, each len(q) values, row-major) and writes the exact squared
// distance of candidate i to out[i]. It returns the candidate count.
func (k Kernel) SquaredDists(q, block []float32, out []float64) int {
	return k.SquaredDistsEarlyAbandon(q, block, math.Inf(1), out)
}

// SquaredDistsEarlyAbandon scores like SquaredDists but may abandon any
// candidate whose partial sum exceeds limit at an 8-dimension chunk
// boundary; the abandoned entry then holds that partial sum (> limit).
// It returns the candidate count.
func (k Kernel) SquaredDistsEarlyAbandon(q, block []float32, limit float64, out []float64) int {
	c := blockCount(q, block, len(out))
	n := len(q)
	if k == Blocked {
		i := 0
		for ; i+4 <= c; i += 4 {
			base := i * n
			ea4(q,
				block[base:base+n:base+n],
				block[base+n:base+2*n:base+2*n],
				block[base+2*n:base+3*n:base+3*n],
				block[base+3*n:base+4*n:base+4*n],
				limit, out[i:i+4:i+4])
		}
		for ; i < c; i++ {
			out[i] = blockedSquaredDistEA(q, block[i*n:(i+1)*n], limit)
		}
		canonNaNs(out[:c])
		return c
	}
	for i := 0; i < c; i++ {
		out[i] = scalarSquaredDistEA(q, block[i*n:(i+1)*n], limit)
	}
	canonNaNs(out[:c])
	return c
}

// SquaredDistsGather is SquaredDistsEarlyAbandon over a gathered candidate
// list (one slice per candidate, e.g. the series of a tree leaf) instead
// of a flat block. Every candidate must have length len(q).
func (k Kernel) SquaredDistsGather(q []float32, cands [][]float32, limit float64, out []float64) {
	if len(out) < len(cands) {
		panic(fmt.Sprintf("kernel: out buffer holds %d results, %d candidates given", len(out), len(cands)))
	}
	for _, s := range cands {
		checkLen(q, s)
	}
	if k == Blocked {
		i := 0
		for ; i+4 <= len(cands); i += 4 {
			ea4(q, cands[i], cands[i+1], cands[i+2], cands[i+3], limit, out[i:i+4:i+4])
		}
		for ; i < len(cands); i++ {
			out[i] = blockedSquaredDistEA(q, cands[i], limit)
		}
		canonNaNs(out[:len(cands)])
		return
	}
	for i, s := range cands {
		out[i] = scalarSquaredDistEA(q, s, limit)
	}
	canonNaNs(out[:len(cands)])
}

// NearestInBlock returns the index and exact squared distance of the
// candidate in block strictly closer than limit that is nearest to q
// (lowest index on ties), or (-1, limit) when no candidate qualifies.
// Scoring early-abandons against the best bound seen so far.
func (k Kernel) NearestInBlock(q, block []float32, limit float64) (int, float64) {
	c := blockCandidates(q, block)
	n := len(q)
	best, bestD2 := -1, limit
	var out [4]float64
	if k == Blocked {
		i := 0
		for ; i+4 <= c; i += 4 {
			base := i * n
			ea4(q,
				block[base:base+n:base+n],
				block[base+n:base+2*n:base+2*n],
				block[base+2*n:base+3*n:base+3*n],
				block[base+3*n:base+4*n:base+4*n],
				bestD2, out[:])
			for j := 0; j < 4; j++ {
				if out[j] < bestD2 {
					best, bestD2 = i+j, out[j]
				}
			}
		}
		for ; i < c; i++ {
			if d2 := blockedSquaredDistEA(q, block[i*n:(i+1)*n], bestD2); d2 < bestD2 {
				best, bestD2 = i, d2
			}
		}
		return best, bestD2
	}
	for i := 0; i < c; i++ {
		if d2 := scalarSquaredDistEA(q, block[i*n:(i+1)*n], bestD2); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best, bestD2
}

// ea4Fallback is the portable 4-candidate group kernel: it scores q
// against four candidates at once, writing the four results (exact
// squared distances, or partial sums > limit when abandoned) to out[0:4].
// The four accumulator chains are independent, which is where the blocked
// kernel's instruction-level parallelism comes from; each candidate's own
// additions stay in dimension order so every result is bit-identical to
// the scalar kernel's. On amd64 with AVX2 the ea4 dispatcher replaces it
// with the assembly kernel in avx_amd64.s, which vectorises the same
// computation across the four candidate lanes.
func ea4Fallback(q, s0, s1, s2, s3 []float32, limit float64, out []float64) {
	n := len(q)
	s0 = s0[:n]
	s1 = s1[:n]
	s2 = s2[:n]
	s3 = s3[:n]
	var a0, a1, a2, a3 float64
	var done0, done1, done2, done3 bool
	i := 0
	for ; i+8 <= n; i += 8 {
		x := q[i : i+8 : i+8]
		if !done0 {
			y := s0[i : i+8 : i+8]
			a0 += sq(x[0], y[0])
			a0 += sq(x[1], y[1])
			a0 += sq(x[2], y[2])
			a0 += sq(x[3], y[3])
			a0 += sq(x[4], y[4])
			a0 += sq(x[5], y[5])
			a0 += sq(x[6], y[6])
			a0 += sq(x[7], y[7])
			done0 = a0 > limit
		}
		if !done1 {
			y := s1[i : i+8 : i+8]
			a1 += sq(x[0], y[0])
			a1 += sq(x[1], y[1])
			a1 += sq(x[2], y[2])
			a1 += sq(x[3], y[3])
			a1 += sq(x[4], y[4])
			a1 += sq(x[5], y[5])
			a1 += sq(x[6], y[6])
			a1 += sq(x[7], y[7])
			done1 = a1 > limit
		}
		if !done2 {
			y := s2[i : i+8 : i+8]
			a2 += sq(x[0], y[0])
			a2 += sq(x[1], y[1])
			a2 += sq(x[2], y[2])
			a2 += sq(x[3], y[3])
			a2 += sq(x[4], y[4])
			a2 += sq(x[5], y[5])
			a2 += sq(x[6], y[6])
			a2 += sq(x[7], y[7])
			done2 = a2 > limit
		}
		if !done3 {
			y := s3[i : i+8 : i+8]
			a3 += sq(x[0], y[0])
			a3 += sq(x[1], y[1])
			a3 += sq(x[2], y[2])
			a3 += sq(x[3], y[3])
			a3 += sq(x[4], y[4])
			a3 += sq(x[5], y[5])
			a3 += sq(x[6], y[6])
			a3 += sq(x[7], y[7])
			done3 = a3 > limit
		}
		if done0 && done1 && done2 && done3 {
			break
		}
	}
	if i+8 > n { // only candidates that reached the tail finish it
		for ; i < n; i++ {
			x := q[i]
			if !done0 {
				a0 += sq(x, s0[i])
			}
			if !done1 {
				a1 += sq(x, s1[i])
			}
			if !done2 {
				a2 += sq(x, s2[i])
			}
			if !done3 {
				a3 += sq(x, s3[i])
			}
		}
	}
	out[0] = a0
	out[1] = a1
	out[2] = a2
	out[3] = a3
}

// ---------------------------------------------------------------------------
// Package-level convenience forms dispatching on the active kernel.

// SquaredDist is Active().SquaredDist.
func SquaredDist(a, b []float32) float64 { return Active().SquaredDist(a, b) }

// Dist is Active().Dist.
func Dist(a, b []float32) float64 { return Active().Dist(a, b) }

// SquaredDistEarlyAbandon is Active().SquaredDistEarlyAbandon.
func SquaredDistEarlyAbandon(a, b []float32, limit float64) float64 {
	return Active().SquaredDistEarlyAbandon(a, b, limit)
}

// SquaredDists is Active().SquaredDists.
func SquaredDists(q, block []float32, out []float64) int {
	return Active().SquaredDists(q, block, out)
}

// SquaredDistsEarlyAbandon is Active().SquaredDistsEarlyAbandon.
func SquaredDistsEarlyAbandon(q, block []float32, limit float64, out []float64) int {
	return Active().SquaredDistsEarlyAbandon(q, block, limit, out)
}

// SquaredDistsGather is Active().SquaredDistsGather.
func SquaredDistsGather(q []float32, cands [][]float32, limit float64, out []float64) {
	Active().SquaredDistsGather(q, cands, limit, out)
}

// NearestInBlock is Active().NearestInBlock.
func NearestInBlock(q, block []float32, limit float64) (int, float64) {
	return Active().NearestInBlock(q, block, limit)
}
