package srs

import (
	"fmt"
	"io"

	"hydra/internal/core"
)

func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:          "SRS",
		Rank:          80,
		NG:            true,
		DeltaEpsilon:  true,
		DiskResident:  true,
		FormatVersion: persistVersion,
		ConfigString:  fmt.Sprintf("%+v", DefaultConfig()),
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			idx, err := Build(st, DefaultConfig())
			if err != nil {
				return core.BuildResult{}, err
			}
			return core.BuildResult{Method: idx, Store: st}, nil
		},
		Save: func(m core.Method, w io.Writer) error {
			idx, ok := m.(*Index)
			if !ok {
				return fmt.Errorf("srs: cannot save %T", m)
			}
			return idx.Save(w)
		},
		Load: func(ctx *core.BuildContext, r io.Reader) (core.BuildResult, error) {
			st := ctx.NewStore()
			idx, err := Load(st, r)
			if err != nil {
				return core.BuildResult{}, err
			}
			return core.BuildResult{Method: idx, Store: st}, nil
		},
	})
}
