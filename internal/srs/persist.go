package srs

import (
	"encoding/gob"
	"fmt"
	"io"

	"hydra/internal/storage"
	"hydra/internal/summaries/proj"
)

// Persistence: the index structure is the configuration plus the projected
// table. The Gaussian projection matrix is derived deterministically from
// (M, series length, Seed), so it is rebuilt on Load rather than stored;
// the projected vectors are stored to keep Load O(n·m) in I/O instead of
// O(n·m·len) in CPU.

type indexSnap struct {
	Version   int
	Cfg       Config
	Projected [][]float64
}

const persistVersion = 1

// Save serialises the SRS index structure (never the raw data) to w.
func (idx *Index) Save(w io.Writer) error {
	snap := indexSnap{
		Version:   persistVersion,
		Cfg:       idx.cfg,
		Projected: idx.projected,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("srs: encoding: %w", err)
	}
	return nil
}

// Load reads an index saved with Save and attaches it to the store holding
// the same dataset it was built over.
func Load(store *storage.SeriesStore, r io.Reader) (*Index, error) {
	var snap indexSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("srs: decoding: %w", err)
	}
	if snap.Version != persistVersion {
		return nil, fmt.Errorf("srs: unsupported snapshot version %d", snap.Version)
	}
	if err := snap.Cfg.validate(); err != nil {
		return nil, err
	}
	if len(snap.Projected) != store.Size() {
		return nil, fmt.Errorf("srs: snapshot holds %d projections, store holds %d series", len(snap.Projected), store.Size())
	}
	return &Index{
		store:     store,
		cfg:       snap.Cfg,
		projector: proj.NewGaussian(snap.Cfg.M, store.Length(), snap.Cfg.Seed),
		projected: snap.Projected,
	}, nil
}
