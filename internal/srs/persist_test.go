package srs

import (
	"bytes"
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

func testStore(t *testing.T, n, length int) *storage.SeriesStore {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: 11})
	return storage.NewSeriesStore(data, 0)
}

// TestSaveLoadRoundTrip pins that a reloaded SRS index answers exactly like
// the one it was saved from: the projected table round-trips bit-for-bit
// and the projector is re-derived from the same (M, length, Seed).
func TestSaveLoadRoundTrip(t *testing.T) {
	store := testStore(t, 400, 48)
	fresh, err := Build(store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(store.View(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Footprint() != fresh.Footprint() {
		t.Errorf("footprint %d after reload, want %d", loaded.Footprint(), fresh.Footprint())
	}
	queries := []core.Query{
		{Series: store.Peek(3), K: 5, Mode: core.ModeNG, NProbe: 16},
		{Series: store.Peek(7), K: 5, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9},
		{Series: store.Peek(9), K: 3, Mode: core.ModeExact},
	}
	for _, q := range queries {
		a, err := fresh.Search(q)
		if err != nil {
			t.Fatalf("fresh %v: %v", q.Mode, err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatalf("loaded %v: %v", q.Mode, err)
		}
		if a.DistCalcs != b.DistCalcs || a.IO != b.IO {
			t.Errorf("%v: counters differ: (%d,%+v) vs (%d,%+v)", q.Mode, a.DistCalcs, a.IO, b.DistCalcs, b.IO)
		}
		if len(a.Neighbors) != len(b.Neighbors) {
			t.Fatalf("%v: %d vs %d neighbours", q.Mode, len(a.Neighbors), len(b.Neighbors))
		}
		for i := range a.Neighbors {
			if a.Neighbors[i] != b.Neighbors[i] {
				t.Fatalf("%v rank %d: %+v vs %+v", q.Mode, i, a.Neighbors[i], b.Neighbors[i])
			}
		}
	}
}

// TestLoadRejections pins the defensive Load paths: version skew and a
// snapshot from a differently sized dataset are refused.
func TestLoadRejections(t *testing.T) {
	store := testStore(t, 100, 32)
	idx, err := Build(store, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(testStore(t, 60, 32), bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "projections") {
		t.Errorf("wrong-size store: got %v", err)
	}
	if _, err := Load(store, bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage snapshot loaded successfully")
	}
}
