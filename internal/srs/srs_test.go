package srs

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func buildTestIndex(t *testing.T, n, length int, cfg Config, seed int64) (*Index, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: seed})
	store := storage.NewSeriesStore(data, 0)
	idx, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 5, seed+100)
	return idx, data, queries
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 16, Seed: 1})
	store := storage.NewSeriesStore(data, 0)
	for i, cfg := range []Config{
		{M: 0, MaxExaminedFraction: 0.5},
		{M: 8, MaxExaminedFraction: 1.5},
		{M: 8, MaxExaminedFraction: -0.1},
	} {
		if _, err := Build(store, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestTinyFootprint(t *testing.T) {
	idx, data, _ := buildTestIndex(t, 1000, 128, DefaultConfig(), 1)
	// SRS's selling point: index far smaller than the data (m << length).
	if idx.Footprint() >= data.Bytes() {
		t.Errorf("SRS footprint %d should be below raw size %d", idx.Footprint(), data.Bytes())
	}
}

func TestDeltaEpsilonBoundHolds(t *testing.T) {
	idx, data, queries := buildTestIndex(t, 1500, 64, DefaultConfig(), 3)
	k := 5
	eps := 1.0
	gt := scan.GroundTruth(data, queries, k)
	violations := 0
	trials := 0
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := idx.Search(core.Query{Series: queries.At(qi), K: k, Mode: core.ModeDeltaEpsilon, Epsilon: eps, Delta: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		bound := (1 + eps) * gt[qi][k-1].Dist
		for _, nb := range res.Neighbors {
			trials++
			if nb.Dist > bound+1e-9 {
				violations++
			}
		}
	}
	// δ=0.9 tolerates some violations; anything beyond ~30% of results
	// signals a broken termination test rather than probabilistic slack.
	if float64(violations) > 0.3*float64(trials) {
		t.Errorf("%d/%d results violate the (1+ε) bound at δ=0.9", violations, trials)
	}
}

func TestEarlyTerminationSavesWork(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 3000, 64, Config{M: 16, MaxExaminedFraction: 1, Seed: 1}, 5)
	full, err := idx.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	early, err := idx.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeDeltaEpsilon, Epsilon: 2, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if early.LeavesVisited >= full.LeavesVisited {
		t.Errorf("δ-ε search examined %d candidates, exact examined %d", early.LeavesVisited, full.LeavesVisited)
	}
}

func TestNGModeBudget(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 800, 64, DefaultConfig(), 7)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeNG, NProbe: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesVisited > 25 {
		t.Errorf("examined %d candidates with budget 25", res.LeavesVisited)
	}
}

func TestProjectionOrderingIsInformative(t *testing.T) {
	// Examining candidates in projected order should reach high recall
	// after a small fraction of the data.
	idx, data, queries := buildTestIndex(t, 2000, 64, DefaultConfig(), 9)
	gt := scan.GroundTruth(data, queries, 10)
	var total float64
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := idx.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: 200})
		if err != nil {
			t.Fatal(err)
		}
		trueIDs := map[int]struct{}{}
		for _, nb := range gt[qi] {
			trueIDs[nb.ID] = struct{}{}
		}
		hits := 0
		for _, nb := range res.Neighbors {
			if _, ok := trueIDs[nb.ID]; ok {
				hits++
			}
		}
		total += float64(hits) / 10
	}
	if avg := total / float64(queries.Size()); avg < 0.5 {
		t.Errorf("recall after examining 10%% of data = %v", avg)
	}
}

func TestAccuracyDegradesWithLongerSeries(t *testing.T) {
	// Fig 3h: fixed m loses more information for longer series. Compare
	// recall at a fixed examination budget for length 32 vs 512.
	recallFor := func(length int) float64 {
		idx, data, queries := buildTestIndex(t, 1000, length, Config{M: 8, MaxExaminedFraction: 1, Seed: 1}, 11)
		gt := scan.GroundTruth(data, queries, 10)
		var total float64
		for qi := 0; qi < queries.Size(); qi++ {
			res, err := idx.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: 50})
			if err != nil {
				t.Fatal(err)
			}
			trueIDs := map[int]struct{}{}
			for _, nb := range gt[qi] {
				trueIDs[nb.ID] = struct{}{}
			}
			for _, nb := range res.Neighbors {
				if _, ok := trueIDs[nb.ID]; ok {
					total++
				}
			}
		}
		return total / float64(10*queries.Size())
	}
	short, long := recallFor(32), recallFor(512)
	if long > short+0.05 {
		t.Errorf("longer series should not improve SRS recall: len32=%v len512=%v", short, long)
	}
}

func TestExactModeExaminesEverything(t *testing.T) {
	idx, data, queries := buildTestIndex(t, 400, 32, DefaultConfig(), 13)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	gt := scan.GroundTruth(data, queries, 1)
	if math.Abs(res.Neighbors[0].Dist-gt[0][0].Dist) > 1e-9 {
		t.Errorf("exact mode missed the true NN: %v vs %v", res.Neighbors[0].Dist, gt[0][0].Dist)
	}
}

func TestSearchValidation(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 100, 32, DefaultConfig(), 15)
	if _, err := idx.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeExact}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := idx.Search(core.Query{Series: make(series.Series, 5), K: 1, Mode: core.ModeExact}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestName(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 50, 16, DefaultConfig(), 17)
	if idx.Name() != "SRS" || idx.Size() != 50 {
		t.Error("metadata wrong")
	}
}
