// Package srs implements SRS (Sun et al., PVLDB 2014): δ-ε-approximate
// nearest neighbour search via a tiny index of Johnson–Lindenstrauss
// projections.
//
// Every series is projected into m dimensions with a Gaussian matrix
// (m ≈ 6–16, so the index is linear in n and small — SRS's headline
// property). A query examines data points in increasing *projected*
// distance order, computing true distances as it goes, and stops early
// using the fact that for a Gaussian projection the ratio
// (projected distance)² / (true distance)² follows a χ²_m distribution:
// once the next projected distance π is so large that a point with true
// distance ≤ bsf/(1+ε) would have projected below π with probability ≥ δ,
// the current best is a δ-ε-approximate answer. A budget T caps examined
// candidates (the original's "T = c·n" knob).
package srs

import (
	"fmt"
	"math"
	"sort"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/storage"
	"hydra/internal/summaries/proj"
)

// Config controls the projection and search budget.
type Config struct {
	// M is the projected dimensionality (paper setup: 16 so all
	// representations fit in memory).
	M int
	// MaxExaminedFraction caps examined candidates as a fraction of n
	// (SRS's T parameter). 0 means examine-all allowed.
	MaxExaminedFraction float64
	// Seed drives the projection matrix.
	Seed int64
}

// DefaultConfig matches the paper's SRS setup.
func DefaultConfig() Config {
	return Config{M: 16, MaxExaminedFraction: 0.25, Seed: 1}
}

func (c Config) validate() error {
	if c.M < 1 {
		return fmt.Errorf("srs: M %d < 1", c.M)
	}
	if c.MaxExaminedFraction < 0 || c.MaxExaminedFraction > 1 {
		return fmt.Errorf("srs: examined fraction %v out of [0,1]", c.MaxExaminedFraction)
	}
	return nil
}

// Index is an SRS index over a series store.
type Index struct {
	store     *storage.SeriesStore
	cfg       Config
	projector *proj.Gaussian
	projected [][]float64
}

// Build constructs the SRS index.
func Build(store *storage.SeriesStore, cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	idx := &Index{
		store:     store,
		cfg:       cfg,
		projector: proj.NewGaussian(cfg.M, store.Length(), cfg.Seed),
	}
	idx.projected = make([][]float64, store.Size())
	for i := 0; i < store.Size(); i++ {
		idx.projected[i] = idx.projector.Project(store.Peek(i))
	}
	return idx, nil
}

// Name implements core.Method.
func (idx *Index) Name() string { return "SRS" }

// Size returns the number of indexed series.
func (idx *Index) Size() int { return len(idx.projected) }

// Footprint implements core.Method: m floats per series plus the matrix.
func (idx *Index) Footprint() int64 {
	return int64(len(idx.projected))*int64(idx.cfg.M)*8 + int64(idx.cfg.M)*int64(idx.store.Length())*8
}

// Search implements core.Method. SRS answers δ-ε-approximate queries; it
// also accepts ModeNG (treating NProbe as the examined-candidate budget
// with the termination test disabled) so the harness can sweep it, and
// ModeExact/ModeEpsilon as the δ=1 special case (which degrades to
// examining every candidate — SRS provides no deterministic guarantee
// without inspecting everything, matching its classification in Table 1).
func (idx *Index) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("srs: %w", err)
	}
	if len(q.Series) != idx.store.Length() {
		return core.Result{}, fmt.Errorf("srs: query length %d != dataset length %d", len(q.Series), idx.store.Length())
	}
	st := idx.store.View()
	qp := idx.projector.Project(q.Series)

	n := len(idx.projected)
	type cand struct {
		id int
		pd float64 // projected distance
	}
	cands := make([]cand, n)
	for i, p := range idx.projected {
		cands[i] = cand{id: i, pd: math.Sqrt(proj.SquaredDist(qp, p))}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].pd < cands[b].pd })

	budget := n
	if idx.cfg.MaxExaminedFraction > 0 {
		budget = int(idx.cfg.MaxExaminedFraction * float64(n))
		if budget < q.K {
			budget = q.K
		}
	}
	delta := 1.0
	eps := 0.0
	useStop := false
	switch q.Mode {
	case core.ModeNG:
		budget = q.NProbe
		if budget > n {
			budget = n
		}
	case core.ModeDeltaEpsilon:
		delta, eps, useStop = q.Delta, q.Epsilon, true
	case core.ModeEpsilon:
		eps = q.Epsilon
		budget = n // δ=1 forces a full examination
	case core.ModeExact:
		budget = n
	}

	kset := core.NewKNNSet(q.K)
	res := core.Result{}
	m := idx.cfg.M
	for rank, c := range cands {
		if rank >= budget && kset.Full() {
			break
		}
		raw := st.Read(c.id)
		res.LeavesVisited++
		lim := kset.Worst()
		d2 := kernel.SquaredDistEarlyAbandon(q.Series, raw, lim*lim)
		res.DistCalcs++
		kset.Offer(c.id, kernel.Distance(d2))

		if useStop && kset.Full() && rank+1 < len(cands) {
			// Early-termination test: a point with true distance
			// r = bsf/(1+ε) projects below the next projected distance π
			// with probability F_χ²m(π²/r²·m̄) where the per-dimension
			// normalisation cancels in the ratio. If that probability
			// reaches δ and no such point appeared, stop.
			r := kset.Worst() / (1 + eps)
			if r <= 0 {
				break
			}
			pi := cands[rank+1].pd
			conf := proj.ChiSquaredCDF(pi*pi/(r*r), m)
			if conf >= delta {
				break
			}
		}
	}
	res.Neighbors = kset.Sorted()
	res.IO = st.Accountant().Snapshot()
	return res, nil
}
