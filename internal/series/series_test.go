package series

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdev(t *testing.T) {
	s := Series{1, 2, 3, 4}
	if got := s.Mean(); !almostEq(got, 2.5, 1e-9) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := s.Stdev(); !almostEq(got, math.Sqrt(1.25), 1e-9) {
		t.Errorf("Stdev = %v, want sqrt(1.25)", got)
	}
}

func TestMeanStdevEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Stdev() != 0 {
		t.Errorf("empty series should have zero mean/stdev")
	}
}

func TestZNormalize(t *testing.T) {
	s := Series{10, 20, 30, 40, 50}
	s.ZNormalize()
	if !almostEq(s.Mean(), 0, 1e-6) {
		t.Errorf("normalised mean = %v, want 0", s.Mean())
	}
	if !almostEq(s.Stdev(), 1, 1e-6) {
		t.Errorf("normalised stdev = %v, want 1", s.Stdev())
	}
}

func TestZNormalizeConstant(t *testing.T) {
	s := Series{7, 7, 7, 7}
	s.ZNormalize()
	for i, v := range s {
		if v != 0 {
			t.Errorf("constant series should normalise to zeros, s[%d]=%v", i, v)
		}
	}
}

func TestZNormalizedLeavesOriginal(t *testing.T) {
	s := Series{1, 2, 3}
	_ = s.ZNormalized()
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("ZNormalized modified original: %v", s)
	}
}

func TestSquaredDist(t *testing.T) {
	a := Series{0, 0, 0}
	b := Series{1, 2, 2}
	if got := SquaredDist(a, b); !almostEq(got, 9, 1e-9) {
		t.Errorf("SquaredDist = %v, want 9", got)
	}
	if got := Dist(a, b); !almostEq(got, 3, 1e-9) {
		t.Errorf("Dist = %v, want 3", got)
	}
}

func TestSquaredDistMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	SquaredDist(Series{1}, Series{1, 2})
}

func TestEarlyAbandonMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a := make(Series, n)
		b := make(Series, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		full := SquaredDist(a, b)
		got := SquaredDistEarlyAbandon(a, b, math.Inf(1))
		if !almostEq(got, full, 1e-6*(1+full)) {
			t.Fatalf("trial %d: early-abandon(inf) = %v, full = %v", trial, got, full)
		}
		// With a tight limit, the result must exceed the limit whenever the
		// true distance does.
		limit := full / 2
		got = SquaredDistEarlyAbandon(a, b, limit)
		if full > limit && got <= limit {
			t.Fatalf("trial %d: abandoned result %v should exceed limit %v", trial, got, limit)
		}
	}
}

func TestEarlyAbandonProperty(t *testing.T) {
	// Property: for any limit, early-abandon returns the exact distance when
	// the distance is <= limit.
	f := func(vals []float32, limitSeed uint8) bool {
		if len(vals) < 2 {
			return true
		}
		half := len(vals) / 2
		a := Series(vals[:half])
		b := Series(vals[half : 2*half])
		full := SquaredDist(a, b)
		limit := full * (1 + float64(limitSeed)/255)
		got := SquaredDistEarlyAbandon(a, b, limit)
		return almostEq(got, full, 1e-6*(1+full))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDatasetAppendAt(t *testing.T) {
	d := NewDataset(3)
	id0 := d.Append(Series{1, 2, 3})
	id1 := d.Append(Series{4, 5, 6})
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d,%d want 0,1", id0, id1)
	}
	if d.Size() != 2 || d.Length() != 3 {
		t.Fatalf("Size=%d Length=%d", d.Size(), d.Length())
	}
	got := d.At(1)
	if got[0] != 4 || got[2] != 6 {
		t.Errorf("At(1) = %v", got)
	}
	if d.Bytes() != 24 {
		t.Errorf("Bytes = %d, want 24", d.Bytes())
	}
}

func TestDatasetAppendWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDataset(3).Append(Series{1})
}

func TestNewDatasetFromSlice(t *testing.T) {
	d, err := NewDatasetFromSlice(2, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
	if _, err := NewDatasetFromSlice(3, []float32{1, 2, 3, 4}); err == nil {
		t.Error("expected error on non-multiple slice")
	}
	if _, err := NewDatasetFromSlice(0, nil); err == nil {
		t.Error("expected error on zero length")
	}
}

func TestDatasetSlice(t *testing.T) {
	d := NewDataset(2)
	for i := 0; i < 5; i++ {
		d.Append(Series{float32(i), float32(i)})
	}
	sl := d.Slice(1, 3)
	if sl.Size() != 2 {
		t.Fatalf("slice size = %d, want 2", sl.Size())
	}
	if sl.At(0)[0] != 1 || sl.At(1)[0] != 2 {
		t.Errorf("slice contents wrong: %v %v", sl.At(0), sl.At(1))
	}
}

func TestRoundTripBuffer(t *testing.T) {
	d := NewDataset(4)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 17; i++ {
		s := make(Series, 4)
		for j := range s {
			s[j] = float32(rng.NormFloat64())
		}
		d.Append(s)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != d.Size() || got.Length() != d.Length() {
		t.Fatalf("round trip shape mismatch: %dx%d vs %dx%d", got.Size(), got.Length(), d.Size(), d.Length())
	}
	for i := 0; i < d.Size(); i++ {
		for j := 0; j < d.Length(); j++ {
			if got.At(i)[j] != d.At(i)[j] {
				t.Fatalf("value [%d][%d] differs", i, j)
			}
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	d := NewDataset(8)
	for i := 0; i < 9; i++ {
		s := make(Series, 8)
		for j := range s {
			s[j] = float32(i*8 + j)
		}
		d.Append(s)
	}
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 9 {
		t.Fatalf("Size = %d, want 9", got.Size())
	}
	if got.At(8)[7] != 71 {
		t.Errorf("last value = %v, want 71", got.At(8)[7])
	}
}

func TestReadFromBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, 20))
	if _, err := ReadFrom(buf); err == nil {
		t.Error("expected error on bad magic")
	}
}

func TestReadFromTruncated(t *testing.T) {
	d := NewDataset(4)
	d.Append(Series{1, 2, 3, 4})
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error on truncated input")
	}
}

func TestZNormalizeAll(t *testing.T) {
	d := NewDataset(16)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		s := make(Series, 16)
		for j := range s {
			s[j] = float32(rng.Float64()*100 + 50)
		}
		d.Append(s)
	}
	d.ZNormalizeAll()
	for i := 0; i < d.Size(); i++ {
		if !almostEq(d.At(i).Mean(), 0, 1e-5) {
			t.Errorf("series %d mean = %v", i, d.At(i).Mean())
		}
	}
}

func BenchmarkSquaredDist256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := make(Series, 256)
	c := make(Series, 256)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		c[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredDist(a, c)
	}
}

func BenchmarkEarlyAbandon256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := make(Series, 256)
	c := make(Series, 256)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		c[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredDistEarlyAbandon(a, c, 10.0)
	}
}
