// Package series provides the fundamental data series type used throughout
// the benchmark, together with normalisation, Euclidean distance kernels
// (including early-abandoning variants) and a compact binary encoding.
//
// A data series of length n is treated interchangeably as a point in an
// n-dimensional space, following the paper's Section 2: "a data series of
// length n can be represented as a single point in an n-dimensional space".
package series

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"hydra/internal/kernel"
)

// Series is an ordered sequence of real values. Values use float32, matching
// the paper's experimental setup ("data series points are represented using
// single precision values").
type Series []float32

// Clone returns a deep copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Mean returns the arithmetic mean of the series values.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return sum / float64(len(s))
}

// Stdev returns the population standard deviation of the series values.
func (s Series) Stdev() float64 {
	if len(s) == 0 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, v := range s {
		d := float64(v) - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// ZNormalize normalises s in place to zero mean and unit standard deviation.
// Series with (near-)zero variance are mapped to the all-zero series, the
// convention used by the UCR suite and the data series indexing literature.
func (s Series) ZNormalize() {
	mean := s.Mean()
	std := s.Stdev()
	if std < 1e-9 {
		for i := range s {
			s[i] = 0
		}
		return
	}
	inv := 1.0 / std
	for i := range s {
		s[i] = float32((float64(s[i]) - mean) * inv)
	}
}

// ZNormalized returns a z-normalised copy of s, leaving s untouched.
func (s Series) ZNormalized() Series {
	out := s.Clone()
	out.ZNormalize()
	return out
}

// SquaredDist returns the squared Euclidean distance between a and b.
// It panics if the lengths differ: mixing lengths is always a programming
// error in whole-matching search.
//
// Deprecated: use [hydra/internal/kernel.SquaredDist], which dispatches on
// the process-wide kernel selector and offers batched block forms.
func SquaredDist(a, b Series) float64 { return kernel.SquaredDist(a, b) }

// Dist returns the Euclidean distance between a and b.
//
// Deprecated: use [hydra/internal/kernel.Dist].
func Dist(a, b Series) float64 { return kernel.Dist(a, b) }

// SquaredDistEarlyAbandon computes the squared Euclidean distance between a
// and b but abandons the computation as soon as the partial sum exceeds
// limit, returning a value > limit in that case. Early abandoning is the
// classic optimisation used by sequential-scan and leaf refinement code
// paths (UCR suite style).
//
// Deprecated: use [hydra/internal/kernel.SquaredDistEarlyAbandon]; see the
// kernel package comment for the exact abandon contract.
func SquaredDistEarlyAbandon(a, b Series, limit float64) float64 {
	return kernel.SquaredDistEarlyAbandon(a, b, limit)
}

// Dataset is an in-memory collection of equal-length series, stored in one
// contiguous backing slice for cache friendliness and O(1) slicing.
type Dataset struct {
	length int
	values []float32
}

// NewDataset creates an empty dataset of series with the given length.
// Length must be positive.
func NewDataset(length int) *Dataset {
	if length <= 0 {
		panic("series: dataset length must be positive")
	}
	return &Dataset{length: length}
}

// NewDatasetFromSlice wraps a flat backing slice holding n series of the
// given length. The slice is used directly, not copied.
func NewDatasetFromSlice(length int, values []float32) (*Dataset, error) {
	if length <= 0 {
		return nil, fmt.Errorf("series: dataset length must be positive, got %d", length)
	}
	if len(values)%length != 0 {
		return nil, fmt.Errorf("series: backing slice size %d is not a multiple of length %d", len(values), length)
	}
	return &Dataset{length: length, values: values}, nil
}

// Length returns the length (dimensionality) of every series in the dataset.
func (d *Dataset) Length() int { return d.length }

// Size returns the number of series in the dataset.
func (d *Dataset) Size() int { return len(d.values) / d.length }

// Bytes returns the in-memory footprint of the raw values in bytes.
func (d *Dataset) Bytes() int64 { return int64(len(d.values)) * 4 }

// Append adds a series to the dataset and returns its identifier.
func (d *Dataset) Append(s Series) int {
	if len(s) != d.length {
		panic(fmt.Sprintf("series: appending series of length %d to dataset of length %d", len(s), d.length))
	}
	d.values = append(d.values, s...)
	return d.Size() - 1
}

// At returns the i-th series as a view into the backing slice. The returned
// slice must not be modified or retained past mutation of the dataset.
func (d *Dataset) At(i int) Series {
	off := i * d.length
	return Series(d.values[off : off+d.length : off+d.length])
}

// Raw exposes the flat backing slice (n*length float32 values).
func (d *Dataset) Raw() []float32 { return d.values }

// Slice returns a dataset sharing storage with d restricted to series
// [lo, hi).
func (d *Dataset) Slice(lo, hi int) *Dataset {
	return &Dataset{length: d.length, values: d.values[lo*d.length : hi*d.length]}
}

// ZNormalizeAll z-normalises every series in place.
func (d *Dataset) ZNormalizeAll() {
	for i := 0; i < d.Size(); i++ {
		d.At(i).ZNormalize()
	}
}

// Fingerprint returns the dataset's content address: a hex SHA-256 over its
// shape and every raw value. Two datasets share a fingerprint iff they are
// byte-identical, which is what lets a persisted index be reused safely.
func (d *Dataset) Fingerprint() string {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(d.length))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(d.Size()))
	h.Write(hdr[:])
	buf := make([]byte, 4*4096)
	for off := 0; off < len(d.values); off += 4096 {
		end := off + 4096
		if end > len(d.values) {
			end = len(d.values)
		}
		n := 0
		for _, v := range d.values[off:end] {
			binary.LittleEndian.PutUint32(buf[n:], math.Float32bits(v))
			n += 4
		}
		h.Write(buf[:n])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
