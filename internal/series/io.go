package series

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary file format for datasets:
//
//	magic   uint32  'H','Y','D','R' (0x52445948 little-endian)
//	version uint32  currently 1
//	length  uint32  series length
//	count   uint64  number of series
//	values  count*length float32, little-endian
//
// This mirrors the flat float binary format used by the original benchmark
// archives, plus a small self-describing header.

const (
	fileMagic   = 0x52445948
	fileVersion = 1
)

// WriteTo streams the dataset to w in the hydra binary format.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	hdr := make([]byte, 20)
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(d.length))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(d.Size()))
	if _, err := bw.Write(hdr); err != nil {
		return n, fmt.Errorf("series: writing header: %w", err)
	}
	n += int64(len(hdr))
	buf := make([]byte, 4)
	for _, v := range d.values {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		if _, err := bw.Write(buf); err != nil {
			return n, fmt.Errorf("series: writing values: %w", err)
		}
		n += 4
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("series: flushing: %w", err)
	}
	return n, nil
}

// ReadFrom reads a dataset in the hydra binary format.
func ReadFrom(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, 20)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("series: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != fileMagic {
		return nil, fmt.Errorf("series: bad magic 0x%x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		return nil, fmt.Errorf("series: unsupported version %d", v)
	}
	length := int(binary.LittleEndian.Uint32(hdr[8:]))
	count := int(binary.LittleEndian.Uint64(hdr[12:]))
	if length <= 0 {
		return nil, fmt.Errorf("series: invalid length %d", length)
	}
	values := make([]float32, length*count)
	raw := make([]byte, 4*len(values))
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("series: reading %d values: %w", len(values), err)
	}
	for i := range values {
		values[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return &Dataset{length: length, values: values}, nil
}

// SaveFile writes the dataset to a file at path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("series: creating %s: %w", path, err)
	}
	defer f.Close()
	if _, err := d.WriteTo(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a dataset from a file at path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("series: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadFrom(f)
}
