package scan

import "hydra/internal/core"

func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:         "SerialScan",
		Rank:         130,
		Exact:        true,
		NG:           true,
		DiskResident: true,
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			return core.BuildResult{Method: New(st), Store: st}, nil
		},
	})
}
