package scan

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func setup(n, length int, seed int64) (*storage.SeriesStore, *series.Dataset, *series.Dataset) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: n, Length: length, Seed: seed})
	queries := dataset.Queries(data, dataset.KindWalk, 5, seed+1)
	return storage.NewSeriesStore(data, 0), data, queries
}

func TestScanExactMatchesGroundTruth(t *testing.T) {
	store, data, queries := setup(500, 64, 1)
	s := New(store)
	gt := GroundTruth(data, queries, 10)
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := s.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Neighbors) != 10 {
			t.Fatalf("query %d: %d results", qi, len(res.Neighbors))
		}
		for i := range gt[qi] {
			if math.Abs(res.Neighbors[i].Dist-gt[qi][i].Dist) > 1e-9 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, res.Neighbors[i], gt[qi][i])
			}
		}
	}
}

func TestScanReadsWholeDatasetSequentially(t *testing.T) {
	store, _, queries := setup(1000, 32, 2)
	s := New(store)
	res, err := s.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO.BytesRead != store.TotalBytes() {
		t.Errorf("scan read %d bytes, dataset is %d", res.IO.BytesRead, store.TotalBytes())
	}
	if res.IO.RandomSeeks > 2 {
		t.Errorf("scan should be sequential, got %d seeks", res.IO.RandomSeeks)
	}
	if res.DistCalcs != 1000 {
		t.Errorf("DistCalcs = %d, want 1000", res.DistCalcs)
	}
}

func TestScanValidatesQuery(t *testing.T) {
	store, _, queries := setup(10, 32, 3)
	s := New(store)
	if _, err := s.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeExact}); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := s.Search(core.Query{Series: make(series.Series, 7), K: 1, Mode: core.ModeExact}); err == nil {
		t.Error("expected error for wrong length")
	}
}

func TestScanName(t *testing.T) {
	store, _, _ := setup(10, 8, 4)
	s := New(store)
	if s.Name() != "SerialScan" || s.Footprint() != 0 {
		t.Error("metadata wrong")
	}
}

func TestGroundTruthOrdering(t *testing.T) {
	_, data, queries := setup(200, 32, 5)
	gt := GroundTruth(data, queries, 5)
	for qi, nbrs := range gt {
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i].Dist < nbrs[i-1].Dist {
				t.Fatalf("query %d: ground truth not sorted", qi)
			}
		}
	}
}

func TestScanApproxModesStillExact(t *testing.T) {
	store, data, queries := setup(300, 32, 6)
	s := New(store)
	gt := GroundTruth(data, queries, 3)
	res, err := s.Search(core.Query{Series: queries.At(0), K: 3, Mode: core.ModeNG, NProbe: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gt[0] {
		if math.Abs(res.Neighbors[i].Dist-gt[0][i].Dist) > 1e-9 {
			t.Fatalf("rank %d differs", i)
		}
	}
}
