// Package scan implements the exact sequential-scan baseline: every query
// reads the entire collection once, keeping the k best candidates with
// early-abandoning distance computations (UCR-suite style).
//
// The paper uses serial scans only for exact search ("solutions based on
// sequential scans ... cannot support efficient approximate search, since
// all candidates are always read"); here the scan additionally serves as
// the ground-truth oracle for accuracy metrics.
package scan

import (
	"fmt"
	"time"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// scoreBlock is the number of candidates scored per kernel call. The
// k-NN limit used for early abandoning is snapshotted once per score
// block, which is what lets the kernel score candidates in parallel
// lanes; the final answers are unchanged (see Search).
const scoreBlock = 64

// Scan is the exact baseline method.
type Scan struct {
	store *storage.SeriesStore
}

// New creates a sequential scan over the given store.
func New(store *storage.SeriesStore) *Scan {
	return &Scan{store: store}
}

// Name implements core.Method.
func (s *Scan) Name() string { return "SerialScan" }

// Footprint implements core.Method: a scan keeps no index structure.
func (s *Scan) Footprint() int64 { return 0 }

// Search answers the query exactly, regardless of the requested mode (a
// serial scan has no approximate fast path; exact answers trivially satisfy
// every guarantee). It charges one sequential pass over the store and is
// safe for concurrent use: each call accounts I/O on a private store view.
func (s *Scan) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("scan: %w", err)
	}
	if len(q.Series) != s.store.Length() {
		return core.Result{}, fmt.Errorf("scan: query length %d != dataset length %d", len(q.Series), s.store.Length())
	}
	st := s.store.View()
	kset := core.NewKNNSet(q.K)
	res := core.Result{}
	n := st.Size()
	// One sequential pass: charge it as a range read in chunks so the
	// accountant sees a scan, then score the flat chunk in kernel-sized
	// blocks. The abandon limit is snapshotted at each score block's
	// start; that is answer-preserving because an abandoned result
	// (> snapshot >= the evolving k-NN worst) could never enter the
	// result set, while every admissible candidate still yields its
	// exact distance, offered in the same order as the per-candidate
	// loop this replaces.
	const chunk = 4096
	dim := len(q.Series)
	var d2s [scoreBlock]float64
	var began time.Time
	if q.Obs != nil {
		began = time.Now()
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		block := st.ReadRange(lo, hi)
		raw := block.Raw()
		for i := 0; i < block.Size(); i += scoreBlock {
			j := i + scoreBlock
			if j > block.Size() {
				j = block.Size()
			}
			limit := kset.Worst()
			cnt := kernel.SquaredDistsEarlyAbandon(q.Series, raw[i*dim:j*dim], limit*limit, d2s[:j-i])
			res.DistCalcs += int64(cnt)
			for t := 0; t < cnt; t++ {
				if d := sqrt(d2s[t]); d < kset.Worst() {
					kset.Offer(lo+i+t, d)
				}
			}
		}
	}
	if q.Obs != nil {
		// The whole scoring pass IS the refinement step for a serial scan.
		q.Obs.ObserveRefine(time.Since(began))
	}
	res.Neighbors = kset.Sorted()
	res.IO = st.Accountant().Snapshot()
	return res, nil
}

// GroundTruth computes the exact k-NN of every query without charging I/O,
// for use by the accuracy metrics.
func GroundTruth(data *series.Dataset, queries *series.Dataset, k int) [][]core.Neighbor {
	out := make([][]core.Neighbor, queries.Size())
	raw := data.Raw()
	dim := data.Length()
	var d2s [scoreBlock]float64
	for qi := 0; qi < queries.Size(); qi++ {
		q := queries.At(qi)
		kset := core.NewKNNSet(k)
		for i := 0; i < data.Size(); i += scoreBlock {
			j := i + scoreBlock
			if j > data.Size() {
				j = data.Size()
			}
			limit := kset.Worst()
			cnt := kernel.SquaredDistsEarlyAbandon(q, raw[i*dim:j*dim], limit*limit, d2s[:j-i])
			for t := 0; t < cnt; t++ {
				if d := sqrt(d2s[t]); d < kset.Worst() {
					kset.Offer(i+t, d)
				}
			}
		}
		out[qi] = kset.Sorted()
	}
	return out
}

// sqrt guards against tiny negative partial sums from early abandoning.
func sqrt(x float64) float64 { return kernel.Distance(x) }
