// Package scan implements the exact sequential-scan baseline: every query
// reads the entire collection once, keeping the k best candidates with
// early-abandoning distance computations (UCR-suite style).
//
// The paper uses serial scans only for exact search ("solutions based on
// sequential scans ... cannot support efficient approximate search, since
// all candidates are always read"); here the scan additionally serves as
// the ground-truth oracle for accuracy metrics.
package scan

import (
	"fmt"
	"math"

	"hydra/internal/core"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// Scan is the exact baseline method.
type Scan struct {
	store *storage.SeriesStore
}

// New creates a sequential scan over the given store.
func New(store *storage.SeriesStore) *Scan {
	return &Scan{store: store}
}

// Name implements core.Method.
func (s *Scan) Name() string { return "SerialScan" }

// Footprint implements core.Method: a scan keeps no index structure.
func (s *Scan) Footprint() int64 { return 0 }

// Search answers the query exactly, regardless of the requested mode (a
// serial scan has no approximate fast path; exact answers trivially satisfy
// every guarantee). It charges one sequential pass over the store and is
// safe for concurrent use: each call accounts I/O on a private store view.
func (s *Scan) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("scan: %w", err)
	}
	if len(q.Series) != s.store.Length() {
		return core.Result{}, fmt.Errorf("scan: query length %d != dataset length %d", len(q.Series), s.store.Length())
	}
	st := s.store.View()
	kset := core.NewKNNSet(q.K)
	res := core.Result{}
	n := st.Size()
	// One sequential pass: charge it as a range read in chunks so the
	// accountant sees a scan, then compute distances on the views.
	const chunk = 4096
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		block := st.ReadRange(lo, hi)
		for i := 0; i < block.Size(); i++ {
			limit := kset.Worst()
			d2 := series.SquaredDistEarlyAbandon(q.Series, block.At(i), limit*limit)
			res.DistCalcs++
			if d := sqrt(d2); d < limit {
				kset.Offer(lo+i, d)
			}
		}
	}
	res.Neighbors = kset.Sorted()
	res.IO = st.Accountant().Snapshot()
	return res, nil
}

// GroundTruth computes the exact k-NN of every query without charging I/O,
// for use by the accuracy metrics.
func GroundTruth(data *series.Dataset, queries *series.Dataset, k int) [][]core.Neighbor {
	out := make([][]core.Neighbor, queries.Size())
	for qi := 0; qi < queries.Size(); qi++ {
		q := queries.At(qi)
		kset := core.NewKNNSet(k)
		for i := 0; i < data.Size(); i++ {
			limit := kset.Worst()
			d2 := series.SquaredDistEarlyAbandon(q, data.At(i), limit*limit)
			if d := sqrt(d2); d < limit {
				kset.Offer(i, d)
			}
		}
		out[qi] = kset.Sorted()
	}
	return out
}

// sqrt guards against tiny negative partial sums from early abandoning.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
