package dstree

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
	"hydra/internal/storage"
)

func buildTestTree(t *testing.T, n, length int, cfg Config, kind dataset.Kind, seed int64) (*Tree, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: kind, Count: n, Length: length, Seed: seed})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, kind, 5, seed+100)
	return tree, data, queries
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 32, Seed: 1})
	store := storage.NewSeriesStore(data, 0)
	bad := []Config{
		{LeafCapacity: 1, InitialSegments: 4, MaxSegments: 8},
		{LeafCapacity: 10, InitialSegments: 0, MaxSegments: 8},
		{LeafCapacity: 10, InitialSegments: 40, MaxSegments: 80},
		{LeafCapacity: 10, InitialSegments: 4, MaxSegments: 2},
	}
	for i, cfg := range bad {
		if _, err := Build(store, cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestTreeGrows(t *testing.T) {
	tree, _, _ := buildTestTree(t, 1000, 64, Config{LeafCapacity: 32, InitialSegments: 4, MaxSegments: 16}, dataset.KindWalk, 1)
	nodes, leaves, splits, _ := tree.Stats()
	if tree.Size() != 1000 {
		t.Errorf("Size = %d", tree.Size())
	}
	if leaves < 1000/32 {
		t.Errorf("only %d leaves for 1000 series at capacity 32", leaves)
	}
	if nodes != 2*leaves-1 {
		t.Errorf("binary tree invariant violated: %d nodes, %d leaves", nodes, leaves)
	}
	if splits == 0 {
		t.Error("no splits recorded")
	}
	if tree.Footprint() <= 0 {
		t.Error("footprint should be positive")
	}
}

func TestVerticalSplitsHappen(t *testing.T) {
	// Walk data has long-range structure; with a tight MaxSegments budget
	// vs initial, vertical splits should fire at least once on a decent
	// dataset.
	tree, _, _ := buildTestTree(t, 2000, 64, Config{LeafCapacity: 16, InitialSegments: 2, MaxSegments: 16}, dataset.KindWalk, 3)
	_, _, _, vsplits := tree.Stats()
	if vsplits == 0 {
		t.Error("expected at least one vertical split")
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	tree, data, queries := buildTestTree(t, 800, 64, DefaultConfig(), dataset.KindWalk, 5)
	gt := scan.GroundTruth(data, queries, 10)
	for qi := 0; qi < queries.Size(); qi++ {
		res, err := tree.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Neighbors) != 10 {
			t.Fatalf("query %d: %d results", qi, len(res.Neighbors))
		}
		for i := range gt[qi] {
			if math.Abs(res.Neighbors[i].Dist-gt[qi][i].Dist) > 1e-6 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, res.Neighbors[i].Dist, gt[qi][i].Dist)
			}
		}
	}
}

func TestExactSearchPrunes(t *testing.T) {
	tree, _, queries := buildTestTree(t, 4000, 64, Config{LeafCapacity: 64, InitialSegments: 4, MaxSegments: 16}, dataset.KindWalk, 7)
	res, err := tree.Search(core.Query{Series: queries.At(0), K: 1, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO.BytesRead >= tree.store.TotalBytes() {
		t.Errorf("exact search read %d bytes of %d — no pruning", res.IO.BytesRead, tree.store.TotalBytes())
	}
}

func TestNGApproximateVisitsNProbeLeaves(t *testing.T) {
	tree, _, queries := buildTestTree(t, 2000, 64, Config{LeafCapacity: 32, InitialSegments: 4, MaxSegments: 16}, dataset.KindWalk, 9)
	res, err := tree.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeNG, NProbe: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesVisited > 3 {
		t.Errorf("visited %d leaves, nprobe=3", res.LeavesVisited)
	}
	if len(res.Neighbors) != 5 {
		t.Errorf("%d results", len(res.Neighbors))
	}
}

func TestNGAccuracyImprovesWithNProbe(t *testing.T) {
	tree, data, queries := buildTestTree(t, 2000, 64, Config{LeafCapacity: 32, InitialSegments: 4, MaxSegments: 16}, dataset.KindWalk, 11)
	gt := scan.GroundTruth(data, queries, 10)
	recallAt := func(nprobe int) float64 {
		var hits, total int
		for qi := 0; qi < queries.Size(); qi++ {
			res, err := tree.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: nprobe})
			if err != nil {
				t.Fatal(err)
			}
			trueIDs := map[int]struct{}{}
			for _, nb := range gt[qi] {
				trueIDs[nb.ID] = struct{}{}
			}
			for _, nb := range res.Neighbors {
				if _, ok := trueIDs[nb.ID]; ok {
					hits++
				}
			}
			total += 10
		}
		return float64(hits) / float64(total)
	}
	r1, r16 := recallAt(1), recallAt(16)
	if r16 < r1 {
		t.Errorf("recall fell with more probes: %v -> %v", r1, r16)
	}
	if r16 == 0 {
		t.Error("recall at nprobe=16 is zero")
	}
}

func TestEpsilonGuaranteeHolds(t *testing.T) {
	tree, data, queries := buildTestTree(t, 1000, 64, DefaultConfig(), dataset.KindWalk, 13)
	k := 5
	gt := scan.GroundTruth(data, queries, k)
	for _, eps := range []float64{0.5, 2} {
		for qi := 0; qi < queries.Size(); qi++ {
			res, err := tree.Search(core.Query{Series: queries.At(qi), K: k, Mode: core.ModeEpsilon, Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			bound := (1 + eps) * gt[qi][k-1].Dist
			for _, nb := range res.Neighbors {
				if nb.Dist > bound+1e-6 {
					t.Fatalf("eps=%v query %d: dist %v > bound %v", eps, qi, nb.Dist, bound)
				}
			}
		}
	}
}

func TestEpsilonReducesIO(t *testing.T) {
	tree, _, queries := buildTestTree(t, 4000, 64, Config{LeafCapacity: 64, InitialSegments: 4, MaxSegments: 16}, dataset.KindWalk, 15)
	var exactBytes, approxBytes int64
	for qi := 0; qi < queries.Size(); qi++ {
		re, _ := tree.Search(core.Query{Series: queries.At(qi), K: 1, Mode: core.ModeExact})
		ra, _ := tree.Search(core.Query{Series: queries.At(qi), K: 1, Mode: core.ModeEpsilon, Epsilon: 5})
		exactBytes += re.IO.BytesRead
		approxBytes += ra.IO.BytesRead
	}
	if approxBytes > exactBytes {
		t.Errorf("eps=5 read more (%d) than exact (%d)", approxBytes, exactBytes)
	}
}

func TestDeltaEpsilonRuns(t *testing.T) {
	tree, data, queries := buildTestTree(t, 1000, 64, DefaultConfig(), dataset.KindWalk, 17)
	tree.SetHistogram(core.BuildHistogram(data, 2000, 99))
	res, err := tree.Search(core.Query{Series: queries.At(0), K: 3, Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 3 {
		t.Fatalf("%d results", len(res.Neighbors))
	}
	// δ=1, ε=0 must equal exact.
	rd, _ := tree.Search(core.Query{Series: queries.At(0), K: 3, Mode: core.ModeDeltaEpsilon, Epsilon: 0, Delta: 1})
	gt := scan.GroundTruth(data, queries, 3)
	for i := range gt[0] {
		if math.Abs(rd.Neighbors[i].Dist-gt[0][i].Dist) > 1e-6 {
			t.Fatalf("delta=1 eps=0 rank %d: %v vs %v", i, rd.Neighbors[i].Dist, gt[0][i].Dist)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	tree, _, queries := buildTestTree(t, 100, 32, DefaultConfig(), dataset.KindWalk, 19)
	if _, err := tree.Search(core.Query{Series: queries.At(0), K: 0, Mode: core.ModeExact}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := tree.Search(core.Query{Series: make(series.Series, 7), K: 1, Mode: core.ModeExact}); err == nil {
		t.Error("wrong-length query accepted")
	}
}

func TestIdenticalSeriesDoNotLoop(t *testing.T) {
	// A dataset of identical series can never be split; the build must
	// terminate with an overfull, unsplittable leaf.
	data := series.NewDataset(16)
	one := make(series.Series, 16)
	for j := range one {
		one[j] = float32(j)
	}
	for i := 0; i < 50; i++ {
		data.Append(one)
	}
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, Config{LeafCapacity: 8, InitialSegments: 2, MaxSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 50 {
		t.Errorf("Size = %d", tree.Size())
	}
	res, err := tree.Search(core.Query{Series: one, K: 5, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 5 || res.Neighbors[0].Dist != 0 {
		t.Errorf("identical-data search wrong: %+v", res.Neighbors)
	}
}

func TestClusteredDataExact(t *testing.T) {
	tree, data, queries := buildTestTree(t, 600, 32, DefaultConfig(), dataset.KindClustered, 21)
	gt := scan.GroundTruth(data, queries, 5)
	res, err := tree.Search(core.Query{Series: queries.At(2), K: 5, Mode: core.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gt[2] {
		if math.Abs(res.Neighbors[i].Dist-gt[2][i].Dist) > 1e-6 {
			t.Fatalf("rank %d: %v vs %v", i, res.Neighbors[i].Dist, gt[2][i].Dist)
		}
	}
}

func TestName(t *testing.T) {
	tree, _, _ := buildTestTree(t, 50, 16, DefaultConfig(), dataset.KindWalk, 23)
	if tree.Name() != "DSTree" {
		t.Error("name wrong")
	}
}
