// Package dstree implements the DSTree (Wang et al., PVLDB 2013): a
// dynamic-segmentation tree index over EAPCA summaries, extended — per the
// benchmark paper — with ng-, ε- and δ-ε-approximate k-NN search via the
// generic engine in internal/core.
//
// Every node carries its own segmentation and a synopsis holding, per
// segment, the [min,max] range of member means and standard deviations.
// When a leaf overflows it picks the best split according to a QoS measure
// (how much the children's synopsis ranges tighten):
//
//   - a horizontal split partitions members on the mean or the standard
//     deviation of one existing segment;
//   - a vertical split first subdivides a segment (refining the
//     segmentation for the subtree) and then partitions on a sub-segment
//     mean — the distinguishing feature of the DSTree ("allows tree nodes
//     to split vertically and horizontally, unlike the other data series
//     indexes").
package dstree

import (
	"fmt"
	"math"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/series"
	"hydra/internal/storage"
	"hydra/internal/summaries/eapca"
)

// Config controls index shape.
type Config struct {
	// LeafCapacity is the maximum number of series per leaf before a split
	// (paper setup: 100K for the 25–250GB datasets; scale accordingly).
	LeafCapacity int
	// InitialSegments is the segmentation width of the root.
	InitialSegments int
	// MaxSegments caps segmentation growth from vertical splits.
	MaxSegments int
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{LeafCapacity: 128, InitialSegments: 4, MaxSegments: 16}
}

func (c Config) validate(length int) error {
	if c.LeafCapacity < 2 {
		return fmt.Errorf("dstree: leaf capacity %d < 2", c.LeafCapacity)
	}
	if c.InitialSegments < 1 || c.InitialSegments > length {
		return fmt.Errorf("dstree: initial segments %d out of [1,%d]", c.InitialSegments, length)
	}
	if c.MaxSegments < c.InitialSegments {
		return fmt.Errorf("dstree: max segments %d < initial %d", c.MaxSegments, c.InitialSegments)
	}
	return nil
}

// splitKind discriminates split rules.
type splitKind int

const (
	splitMean splitKind = iota
	splitStd
)

// splitRule routes a series to the left or right child.
type splitRule struct {
	childSeg  eapca.Segmentation // segmentation used by the children
	segIdx    int                // segment index within childSeg
	kind      splitKind
	threshold float64
	vertical  bool
}

func (r splitRule) goesLeft(stats []eapca.Stat) bool {
	v := stats[r.segIdx].Mean
	if r.kind == splitStd {
		v = stats[r.segIdx].Std
	}
	return v <= r.threshold
}

type node struct {
	seg eapca.Segmentation
	syn *eapca.Synopsis
	// Kernel-ready synopsis layout, derived by Tree.finalize once the tree
	// is complete (synopses keep widening while inserts route through):
	// bounds is syn.PackedBounds() (nil while empty — bound +Inf), weights
	// is seg.FloatWidths().
	bounds  []float64
	weights []float64
	// Leaf state.
	ids          []int
	memberStats  [][]eapca.Stat // stats of members under seg, parallel to ids
	unsplittable bool
	// Internal state.
	rule        splitRule
	left, right *node
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is a DSTree index over a series store.
type Tree struct {
	store *storage.SeriesStore
	cfg   Config
	root  *node
	size  int
	hist  *core.DistanceHistogram

	nodeCount int
	leafCount int
	splits    int
	vsplits   int
}

// Build constructs a DSTree over every series in the store.
func Build(store *storage.SeriesStore, cfg Config) (*Tree, error) {
	if err := cfg.validate(store.Length()); err != nil {
		return nil, err
	}
	t := &Tree{store: store, cfg: cfg}
	t.root = &node{
		seg: eapca.Uniform(store.Length(), cfg.InitialSegments),
		syn: eapca.NewSynopsis(cfg.InitialSegments),
	}
	t.nodeCount, t.leafCount = 1, 1
	for i := 0; i < store.Size(); i++ {
		t.insert(i)
	}
	t.finalize()
	return t, nil
}

// finalize precomputes every node's kernel-ready synopsis layout (packed
// [lo,hi] bound rows plus float segment widths). It must run only after
// the tree is complete: insertion widens the synopses of every node on the
// routing path, so packing earlier would freeze stale ranges.
func (t *Tree) finalize() {
	var walk func(n *node)
	walk = func(n *node) {
		n.bounds = n.syn.PackedBounds()
		n.weights = n.seg.FloatWidths()
		if !n.isLeaf() {
			walk(n.left)
			walk(n.right)
		}
	}
	walk(t.root)
}

// SetHistogram installs the distance-distribution histogram used by
// δ-ε-approximate search (built once per dataset by the harness).
func (t *Tree) SetHistogram(h *core.DistanceHistogram) { t.hist = h }

// Name implements core.Method.
func (t *Tree) Name() string { return "DSTree" }

// Size returns the number of indexed series.
func (t *Tree) Size() int { return t.size }

// Stats exposes structural counters (tests, reports).
func (t *Tree) Stats() (nodes, leaves, splits, verticalSplits int) {
	return t.nodeCount, t.leafCount, t.splits, t.vsplits
}

// Footprint implements core.Method: synopsis + bookkeeping per node, plus
// the member stat cache held at leaves.
func (t *Tree) Footprint() int64 {
	var total int64
	var walk func(n *node)
	walk = func(n *node) {
		total += int64(len(n.seg))*8 + int64(4*len(n.syn.MinMean))*8 + 64
		total += int64(len(n.bounds)+len(n.weights)) * 8
		if n.isLeaf() {
			total += int64(len(n.ids)) * 8
			for _, st := range n.memberStats {
				total += int64(len(st)) * 16
			}
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return total
}

func (t *Tree) insert(id int) {
	p := eapca.NewPrefix(t.store.Peek(id))
	n := t.root
	for {
		stats := eapca.ComputeFromPrefix(p, n.seg)
		n.syn.Update(stats)
		if n.isLeaf() {
			n.ids = append(n.ids, id)
			n.memberStats = append(n.memberStats, stats)
			if len(n.ids) > t.cfg.LeafCapacity && !n.unsplittable {
				t.split(n)
			}
			t.size++
			return
		}
		if n.rule.goesLeft(eapca.ComputeFromPrefix(p, n.rule.childSeg)) {
			n = n.left
		} else {
			n = n.right
		}
	}
}

// candidate is one potential split with its evaluated quality.
type candidate struct {
	rule  splitRule
	score float64
	lSyn  *eapca.Synopsis
	rSyn  *eapca.Synopsis
	lIdx  []int // indexes into the leaf's member arrays
	rIdx  []int
}

// split turns leaf n into an internal node with two children, choosing the
// best split by QoS. If no candidate separates the members (identical
// series), the leaf is marked unsplittable and allowed to exceed capacity.
func (t *Tree) split(n *node) {
	prefixes := make([]eapca.Prefix, len(n.ids))
	for i, id := range n.ids {
		prefixes[i] = eapca.NewPrefix(t.store.Peek(id))
	}

	best := candidate{score: math.Inf(1)}
	consider := func(rule splitRule) {
		statsUnder := make([][]eapca.Stat, len(prefixes))
		for i := range prefixes {
			statsUnder[i] = eapca.ComputeFromPrefix(prefixes[i], rule.childSeg)
		}
		lSyn := eapca.NewSynopsis(len(rule.childSeg))
		rSyn := eapca.NewSynopsis(len(rule.childSeg))
		var lIdx, rIdx []int
		for i, st := range statsUnder {
			if rule.goesLeft(st) {
				lSyn.Update(st)
				lIdx = append(lIdx, i)
			} else {
				rSyn.Update(st)
				rIdx = append(rIdx, i)
			}
		}
		if len(lIdx) == 0 || len(rIdx) == 0 {
			return
		}
		score := float64(len(lIdx))*lSyn.QoS(rule.childSeg) + float64(len(rIdx))*rSyn.QoS(rule.childSeg)
		if score < best.score {
			best = candidate{rule: rule, score: score, lSyn: lSyn, rSyn: rSyn, lIdx: lIdx, rIdx: rIdx}
		}
	}

	for i := range n.seg {
		// Horizontal splits on the existing segmentation.
		consider(splitRule{
			childSeg: n.seg, segIdx: i, kind: splitMean,
			threshold: (n.syn.MinMean[i] + n.syn.MaxMean[i]) / 2,
		})
		consider(splitRule{
			childSeg: n.seg, segIdx: i, kind: splitStd,
			threshold: (n.syn.MinStd[i] + n.syn.MaxStd[i]) / 2,
		})
		// Vertical split: refine segment i, then split on either half's mean.
		if len(n.seg) < t.cfg.MaxSegments && n.seg.CanSplit(i) {
			refined := n.seg.SplitSegment(i)
			for _, sub := range []int{i, i + 1} {
				lo, hi := refined.Bounds(sub)
				// Threshold from the members' value range on the sub-segment.
				minM, maxM := math.Inf(1), math.Inf(-1)
				for _, p := range prefixes {
					m := p.Range(lo, hi).Mean
					if m < minM {
						minM = m
					}
					if m > maxM {
						maxM = m
					}
				}
				consider(splitRule{
					childSeg: refined, segIdx: sub, kind: splitMean,
					threshold: (minM + maxM) / 2, vertical: true,
				})
			}
		}
	}

	if math.IsInf(best.score, 1) {
		n.unsplittable = true
		return
	}

	left := &node{seg: best.rule.childSeg, syn: best.lSyn}
	right := &node{seg: best.rule.childSeg, syn: best.rSyn}
	for _, i := range best.lIdx {
		left.ids = append(left.ids, n.ids[i])
		left.memberStats = append(left.memberStats, eapca.ComputeFromPrefix(prefixes[i], best.rule.childSeg))
	}
	for _, i := range best.rIdx {
		right.ids = append(right.ids, n.ids[i])
		right.memberStats = append(right.memberStats, eapca.ComputeFromPrefix(prefixes[i], best.rule.childSeg))
	}
	n.rule = best.rule
	n.left, n.right = left, right
	n.ids, n.memberStats = nil, nil
	t.nodeCount += 2
	t.leafCount++ // one leaf became two
	t.splits++
	if best.rule.vertical {
		t.vsplits++
	}
}

// cursor adapts a query to the generic engine. Every cursor carries its own
// store view so concurrent queries account I/O independently; all other
// per-query state (query prefix, stat cache) is equally cursor-local, which
// is what makes Tree.Search safe for concurrent use.
type cursor struct {
	t       *Tree
	store   *storage.SeriesStore // per-query accounting view
	q       series.Series
	prefix  eapca.Prefix
	cache   map[*node][]float64 // packed [mean,std] query stats per node
	scratch core.LeafScratch
	regs    [][]float64 // reused bound-row gather buffer for MinDists
}

// newCursor opens a per-query cursor over a private store view.
func (t *Tree) newCursor(q series.Series) *cursor {
	return &cursor{
		t:      t,
		store:  t.store.View(),
		q:      q,
		prefix: eapca.NewPrefix(q),
		cache:  make(map[*node][]float64),
	}
}

// packedFor returns the query's EAPCA stats under n's segmentation in the
// interleaved [mean, std] layout of the pair-region kernel, cached per
// node so re-segmentation work is paid once per visited segmentation.
func (c *cursor) packedFor(n *node) []float64 {
	if v, ok := c.cache[n]; ok {
		return v
	}
	v := eapca.PackStats(eapca.ComputeFromPrefix(c.prefix, n.seg), nil)
	c.cache[n] = v
	return v
}

// Roots implements core.TreeCursor.
func (c *cursor) Roots() []core.NodeRef { return []core.NodeRef{c.t.root} }

// MinDist implements core.TreeCursor: the pair-region kernel over the
// node's packed synopsis bounds — bit-identical to
// math.Sqrt(n.syn.LowerBound2(stats, n.seg)), which tests pin.
func (c *cursor) MinDist(ref core.NodeRef) float64 {
	n := ref.(*node)
	if n.bounds == nil {
		return math.Inf(1)
	}
	return math.Sqrt(kernel.PairRegionLowerBound2(c.packedFor(n), n.weights, n.bounds))
}

// sameSeg reports whether two segmentations are identical by value.
func sameSeg(a, b eapca.Segmentation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MinDists implements core.BatchTreeCursor. Children of one expansion
// share a segmentation by construction; when every node in the batch does
// (and none is empty), their packed bound rows are scored in one kernel
// call. Diverging segmentations fall back to the pairwise path.
func (c *cursor) MinDists(refs []core.NodeRef, out []float64) {
	if len(refs) == 0 {
		return
	}
	first := refs[0].(*node)
	batch := first.bounds != nil
	for _, ref := range refs[1:] {
		n := ref.(*node)
		if n.bounds == nil || !sameSeg(first.seg, n.seg) {
			batch = false
			break
		}
	}
	if !batch {
		for i, ref := range refs {
			out[i] = c.MinDist(ref)
		}
		return
	}
	if cap(c.regs) < len(refs) {
		c.regs = make([][]float64, len(refs))
	}
	regs := c.regs[:len(refs)]
	for i, ref := range refs {
		regs[i] = ref.(*node).bounds
	}
	kernel.PairRegionLowerBounds2(c.packedFor(first), first.weights, regs, out)
	for i := range regs {
		out[i] = math.Sqrt(out[i])
		regs[i] = nil
	}
}

// IsLeaf implements core.TreeCursor.
func (c *cursor) IsLeaf(ref core.NodeRef) bool { return ref.(*node).isLeaf() }

// Children implements core.TreeCursor.
func (c *cursor) Children(ref core.NodeRef) []core.NodeRef {
	n := ref.(*node)
	return []core.NodeRef{n.left, n.right}
}

// ScanLeaf implements core.TreeCursor: reads the leaf cluster (charged as
// one contiguous read) and refines it in one batched kernel call (see
// core.LeafScratch.Refine).
func (c *cursor) ScanLeaf(ref core.NodeRef, limit func() float64, visit func(id int, dist float64)) {
	n := ref.(*node)
	raw := c.store.ReadLeafCluster(n.ids)
	c.scratch.Refine(c.q, n.ids, raw, limit, visit)
}

// Search implements core.Method.
func (t *Tree) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("dstree: %w", err)
	}
	if len(q.Series) != t.store.Length() {
		return core.Result{}, fmt.Errorf("dstree: query length %d != dataset length %d", len(q.Series), t.store.Length())
	}
	cur := t.newCursor(q.Series)
	res := core.SearchTree(cur, q, t.hist, t.size)
	res.IO = cur.store.Accountant().Snapshot()
	return res, nil
}

// SearchRange answers an r-range query (paper Definition 2), exactly when
// q.Epsilon is 0.
func (t *Tree) SearchRange(q core.RangeQuery) (core.RangeResult, error) {
	if err := q.Validate(); err != nil {
		return core.RangeResult{}, fmt.Errorf("dstree: %w", err)
	}
	if len(q.Series) != t.store.Length() {
		return core.RangeResult{}, fmt.Errorf("dstree: query length %d != dataset length %d", len(q.Series), t.store.Length())
	}
	cur := t.newCursor(series.Series(q.Series))
	res := core.SearchTreeRange(cur, q)
	res.IO = cur.store.Accountant().Snapshot()
	return res, nil
}

// Incremental starts an incremental neighbour iteration (exact order when
// eps is 0); see core.Incremental.
func (t *Tree) Incremental(q series.Series, eps float64) (*core.Incremental, error) {
	if len(q) != t.store.Length() {
		return nil, fmt.Errorf("dstree: query length %d != dataset length %d", len(q), t.store.Length())
	}
	return core.NewIncremental(t.newCursor(q), eps), nil
}

// SearchProgressive runs an exact search that streams improving answers
// through onUpdate; see core.SearchTreeProgressive.
func (t *Tree) SearchProgressive(q core.Query, onUpdate func(core.ProgressiveUpdate) bool) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("dstree: %w", err)
	}
	if len(q.Series) != t.store.Length() {
		return core.Result{}, fmt.Errorf("dstree: query length %d != dataset length %d", len(q.Series), t.store.Length())
	}
	cur := t.newCursor(q.Series)
	res := core.SearchTreeProgressive(cur, q, onUpdate)
	res.IO = cur.store.Accountant().Snapshot()
	return res, nil
}
