package dstree

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/kernel"
	"hydra/internal/storage"
	"hydra/internal/summaries/eapca"
)

// collectNodes flattens the tree in DFS order.
func collectNodes(t *Tree) []*node {
	var out []*node
	var walk func(n *node)
	walk = func(n *node) {
		out = append(out, n)
		if !n.isLeaf() {
			walk(n.left)
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// TestKernelMinDistMatchesSynopsis pins the cursor's packed-bounds kernel
// path against the reference eapca.Synopsis.LowerBound2, bit-for-bit, for
// every node under both kernels — including adversarial NaN/Inf/constant
// queries.
func TestKernelMinDistMatchesSynopsis(t *testing.T) {
	tree, _, queries := buildTestTree(t, 400, 64, DefaultConfig(), dataset.KindWalk, 61)
	nodes := collectNodes(tree)
	if len(nodes) < 3 {
		t.Fatalf("tree too small: %d nodes", len(nodes))
	}
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	adversarial := make([]float32, 64)
	for i := range adversarial {
		adversarial[i] = 1
	}
	adversarial[0] = nan
	adversarial[1] = inf
	adversarial[2] = -inf
	qs := [][]float32{queries.At(0), queries.At(1), queries.At(2), adversarial, make([]float32, 64)}

	defer kernel.Use(kernel.Default)
	for _, k := range kernel.Kernels() {
		kernel.Use(k)
		for qi, q := range qs {
			cur := tree.newCursor(q)
			for ni, n := range nodes {
				got := cur.MinDist(n)
				stats := eapca.ComputeFromPrefix(cur.prefix, n.seg)
				want := math.Sqrt(n.syn.LowerBound2(stats, n.seg))
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("kernel %v query %d node %d: kernel MinDist %v, synopsis %v", k, qi, ni, got, want)
				}
			}
			// Batched MinDists must agree with the per-node path (the batch
			// groups sibling pairs sharing a segmentation; mix in the root
			// and deep nodes to exercise the fallback too).
			refs := make([]core.NodeRef, len(nodes))
			for i, n := range nodes {
				refs[i] = n
			}
			out := make([]float64, len(refs))
			cur.MinDists(refs, out)
			for i, n := range nodes {
				want := cur.MinDist(n)
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("kernel %v query %d node %d: batch %v, single %v", k, qi, i, out[i], want)
				}
			}
			// Sibling pairs (the engine's real batch shape).
			for _, n := range nodes {
				if n.isLeaf() {
					continue
				}
				pair := []core.NodeRef{n.left, n.right}
				pairOut := make([]float64, 2)
				cur.MinDists(pair, pairOut)
				for j, c := range pair {
					want := cur.MinDist(c)
					if math.Float64bits(pairOut[j]) != math.Float64bits(want) {
						t.Fatalf("kernel %v query %d sibling %d: batch %v, single %v", k, qi, j, pairOut[j], want)
					}
				}
			}
		}
	}
}

// TestMinDistNeverExceedsLeafMembers is the property test: a leaf's lower
// bound never exceeds the exact distance to any of its members.
func TestMinDistNeverExceedsLeafMembers(t *testing.T) {
	tree, data, queries := buildTestTree(t, 400, 64, DefaultConfig(), dataset.KindWalk, 63)
	defer kernel.Use(kernel.Default)
	for _, k := range kernel.Kernels() {
		kernel.Use(k)
		for qi := 0; qi < queries.Size(); qi++ {
			q := queries.At(qi)
			cur := tree.newCursor(q)
			for _, n := range collectNodes(tree) {
				if !n.isLeaf() {
					continue
				}
				lb := cur.MinDist(n)
				for _, id := range n.ids {
					exact := kernel.Dist(q, data.At(id))
					if lb > exact+1e-6 {
						t.Fatalf("kernel %v query %d: leaf bound %v > exact %v (id %d)", k, qi, lb, exact, id)
					}
				}
			}
		}
	}
}

func BenchmarkNodeBound(b *testing.B) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 2048, Length: 64, Seed: 65})
	store := storage.NewSeriesStore(data, 0)
	tree, err := Build(store, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	queries := dataset.Queries(data, dataset.KindWalk, 1, 66)
	q := queries.At(0)
	nodes := collectNodes(tree)

	// Legacy shape: per-node stats + four-array synopsis walk per query.
	b.Run("legacy-synopsis", func(b *testing.B) {
		prefix := eapca.NewPrefix(q)
		for i := 0; i < b.N; i++ {
			cache := make(map[*node][]eapca.Stat)
			for _, n := range nodes {
				st, ok := cache[n]
				if !ok {
					st = eapca.ComputeFromPrefix(prefix, n.seg)
					cache[n] = st
				}
				_ = math.Sqrt(n.syn.LowerBound2(st, n.seg))
			}
		}
	})
	refs := make([]core.NodeRef, len(nodes))
	for i, n := range nodes {
		refs[i] = n
	}
	for _, k := range kernel.Kernels() {
		b.Run("packed-kernel/"+k.String(), func(b *testing.B) {
			defer kernel.Use(kernel.Default)
			kernel.Use(k)
			out := make([]float64, len(refs))
			for i := 0; i < b.N; i++ {
				cur := tree.newCursor(q)
				cur.MinDists(refs, out)
			}
		})
	}
}
