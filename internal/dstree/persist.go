package dstree

import (
	"encoding/gob"
	"fmt"
	"io"

	"hydra/internal/storage"
	"hydra/internal/summaries/eapca"
)

// Persistence: the index structure (segmentations, synopses, split rules
// and leaf id lists) round-trips through encoding/gob, so an index built
// once can be reopened against the same dataset — the paper's
// build-once / query-many workflow. The raw data itself stays in the
// series store and is not duplicated into the index file.

type synSnap struct {
	MinMean, MaxMean []float64
	MinStd, MaxStd   []float64
	Count            int
}

type ruleSnap struct {
	ChildSeg  []int
	SegIdx    int
	Std       bool
	Threshold float64
	Vertical  bool
}

type nodeSnap struct {
	Seg          []int
	Syn          synSnap
	IDs          []int
	MemberStats  [][]eapca.Stat
	Unsplittable bool
	Rule         *ruleSnap
	Left, Right  *nodeSnap
}

type treeSnap struct {
	Version   int
	Cfg       Config
	Size      int
	NodeCount int
	LeafCount int
	Splits    int
	VSplits   int
	Root      *nodeSnap
}

const persistVersion = 1

func snapshotNode(n *node) *nodeSnap {
	s := &nodeSnap{
		Seg: append([]int(nil), n.seg...),
		Syn: synSnap{
			MinMean: n.syn.MinMean, MaxMean: n.syn.MaxMean,
			MinStd: n.syn.MinStd, MaxStd: n.syn.MaxStd, Count: n.syn.Count,
		},
		IDs:          n.ids,
		MemberStats:  n.memberStats,
		Unsplittable: n.unsplittable,
	}
	if !n.isLeaf() {
		s.Rule = &ruleSnap{
			ChildSeg:  append([]int(nil), n.rule.childSeg...),
			SegIdx:    n.rule.segIdx,
			Std:       n.rule.kind == splitStd,
			Threshold: n.rule.threshold,
			Vertical:  n.rule.vertical,
		}
		s.Left = snapshotNode(n.left)
		s.Right = snapshotNode(n.right)
	}
	return s
}

func restoreNode(s *nodeSnap) *node {
	n := &node{
		seg: eapca.Segmentation(s.Seg),
		syn: &eapca.Synopsis{
			MinMean: s.Syn.MinMean, MaxMean: s.Syn.MaxMean,
			MinStd: s.Syn.MinStd, MaxStd: s.Syn.MaxStd, Count: s.Syn.Count,
		},
		ids:          s.IDs,
		memberStats:  s.MemberStats,
		unsplittable: s.Unsplittable,
	}
	if s.Rule != nil {
		kind := splitMean
		if s.Rule.Std {
			kind = splitStd
		}
		n.rule = splitRule{
			childSeg:  eapca.Segmentation(s.Rule.ChildSeg),
			segIdx:    s.Rule.SegIdx,
			kind:      kind,
			threshold: s.Rule.Threshold,
			vertical:  s.Rule.Vertical,
		}
		n.left = restoreNode(s.Left)
		n.right = restoreNode(s.Right)
	}
	return n
}

// Save serialises the index structure to w.
func (t *Tree) Save(w io.Writer) error {
	snap := treeSnap{
		Version:   persistVersion,
		Cfg:       t.cfg,
		Size:      t.size,
		NodeCount: t.nodeCount,
		LeafCount: t.leafCount,
		Splits:    t.splits,
		VSplits:   t.vsplits,
		Root:      snapshotNode(t.root),
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("dstree: encoding: %w", err)
	}
	return nil
}

// Load reads an index saved with Save and attaches it to the store holding
// the same dataset the index was built over.
func Load(store *storage.SeriesStore, r io.Reader) (*Tree, error) {
	var snap treeSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dstree: decoding: %w", err)
	}
	if snap.Version != persistVersion {
		return nil, fmt.Errorf("dstree: unsupported snapshot version %d", snap.Version)
	}
	if snap.Size != store.Size() {
		return nil, fmt.Errorf("dstree: snapshot indexed %d series, store holds %d", snap.Size, store.Size())
	}
	t := &Tree{
		store:     store,
		cfg:       snap.Cfg,
		size:      snap.Size,
		nodeCount: snap.NodeCount,
		leafCount: snap.LeafCount,
		splits:    snap.Splits,
		vsplits:   snap.VSplits,
		root:      restoreNode(snap.Root),
	}
	t.finalize()
	return t, nil
}
