package dstree

import (
	"bytes"
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tree, data, queries := buildTestTree(t, 800, 64, Config{LeafCapacity: 32, InitialSegments: 4, MaxSegments: 16}, dataset.KindWalk, 61)
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	store2 := storage.NewSeriesStore(data, 0)
	loaded, err := Load(store2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Structure preserved.
	n1, l1, s1, v1 := tree.Stats()
	n2, l2, s2, v2 := loaded.Stats()
	if n1 != n2 || l1 != l2 || s1 != s2 || v1 != v2 {
		t.Fatalf("structure differs: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", n1, l1, s1, v1, n2, l2, s2, v2)
	}
	// Identical exact answers on every query.
	for qi := 0; qi < queries.Size(); qi++ {
		q := core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeExact}
		a, err := tree.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Neighbors {
			if a.Neighbors[i].ID != b.Neighbors[i].ID ||
				math.Abs(a.Neighbors[i].Dist-b.Neighbors[i].Dist) > 1e-9 {
				t.Fatalf("query %d rank %d differs after reload", qi, i)
			}
		}
	}
}

func TestLoadRejectsWrongStore(t *testing.T) {
	tree, _, _ := buildTestTree(t, 100, 32, DefaultConfig(), dataset.KindWalk, 63)
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 50, Length: 32, Seed: 1})
	if _, err := Load(storage.NewSeriesStore(other, 0), &buf); err == nil {
		t.Error("loading against a differently-sized store should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 10, Length: 16, Seed: 1})
	if _, err := Load(storage.NewSeriesStore(data, 0), bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage input should fail")
	}
}
