package dstree

import (
	"fmt"
	"io"

	"hydra/internal/core"
)

// The DSTree self-describes to the harness: capability flags per the
// paper's Table 1, a build recipe, and the snapshot hooks from persist.go.
func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:          "DSTree",
		Rank:          10,
		Exact:         true,
		NG:            true,
		Epsilon:       true,
		DeltaEpsilon:  true,
		DiskResident:  true,
		FormatVersion: persistVersion,
		ConfigString:  fmt.Sprintf("%+v", DefaultConfig()),
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			st := ctx.NewStore()
			cfg := DefaultConfig()
			cfg.LeafCapacity = ctx.LeafCapacity
			t, err := Build(st, cfg)
			if err != nil {
				return core.BuildResult{}, err
			}
			t.SetHistogram(ctx.Histogram())
			return core.BuildResult{Method: t, Store: st}, nil
		},
		Save: func(m core.Method, w io.Writer) error {
			t, ok := m.(*Tree)
			if !ok {
				return fmt.Errorf("dstree: cannot save %T", m)
			}
			return t.Save(w)
		},
		Load: func(ctx *core.BuildContext, r io.Reader) (core.BuildResult, error) {
			st := ctx.NewStore()
			t, err := Load(st, r)
			if err != nil {
				return core.BuildResult{}, err
			}
			t.SetHistogram(ctx.Histogram())
			return core.BuildResult{Method: t, Store: st}, nil
		},
	})
}
