package dstree

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/scan"
	"hydra/internal/series"
)

func TestSearchRangeMatchesBruteForce(t *testing.T) {
	tree, data, queries := buildTestTree(t, 600, 64, DefaultConfig(), dataset.KindWalk, 31)
	q := queries.At(0)
	gt := scan.GroundTruth(data, queries, 20)
	r := gt[0][10].Dist
	res, err := tree.SearchRange(core.RangeQuery{Series: q, Radius: r})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force within r.
	want := 0
	for i := 0; i < data.Size(); i++ {
		if series.Dist(q, data.At(i)) <= r {
			want++
		}
	}
	if len(res.Neighbors) != want {
		t.Fatalf("range returned %d, brute force %d", len(res.Neighbors), want)
	}
	for _, nb := range res.Neighbors {
		if nb.Dist > r+1e-9 {
			t.Fatalf("result outside radius: %v > %v", nb.Dist, r)
		}
	}
}

func TestSearchRangeValidation(t *testing.T) {
	tree, _, queries := buildTestTree(t, 100, 32, DefaultConfig(), dataset.KindWalk, 33)
	if _, err := tree.SearchRange(core.RangeQuery{Series: queries.At(0), Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := tree.SearchRange(core.RangeQuery{Series: make([]float32, 5), Radius: 1}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestIncrementalMatchesExactOrder(t *testing.T) {
	tree, data, queries := buildTestTree(t, 500, 64, DefaultConfig(), dataset.KindWalk, 35)
	q := queries.At(1)
	gt := scan.GroundTruth(data, queries, 15)
	inc, err := tree.Incremental(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		nb, ok := inc.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if math.Abs(nb.Dist-gt[1][i].Dist) > 1e-6 {
			t.Fatalf("rank %d: %v want %v", i, nb.Dist, gt[1][i].Dist)
		}
	}
}

func TestIncrementalWrongLength(t *testing.T) {
	tree, _, _ := buildTestTree(t, 100, 32, DefaultConfig(), dataset.KindWalk, 37)
	if _, err := tree.Incremental(make(series.Series, 5), 0); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestProgressiveConvergesToExact(t *testing.T) {
	tree, data, queries := buildTestTree(t, 800, 64, DefaultConfig(), dataset.KindWalk, 39)
	q := queries.At(0)
	gt := scan.GroundTruth(data, queries, 5)
	var sawFinal bool
	res, err := tree.SearchProgressive(core.Query{Series: q, K: 5, Mode: core.ModeExact}, func(u core.ProgressiveUpdate) bool {
		if u.Final {
			sawFinal = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawFinal {
		t.Error("no final update")
	}
	for i := range gt[0] {
		if math.Abs(res.Neighbors[i].Dist-gt[0][i].Dist) > 1e-6 {
			t.Fatalf("rank %d differs", i)
		}
	}
}
