// Package storage provides the disk substrate for the benchmark: a
// page-oriented series store with explicit access accounting and a simple
// analytical cost model.
//
// The paper evaluates methods on disk-resident data and reports two
// implementation-independent measures — the number of random disk accesses
// (# of disk seeks) and the percentage of data accessed — alongside wall
// clock time on a RAID array. We do not have that hardware; instead, every
// raw-data access made by an index flows through a SeriesStore which records
// whether the access was sequential (the next page after the previous
// access) or random (a seek). The harness combines the counters with a
// CostModel (seek latency + scan bandwidth) to synthesise comparable on-disk
// timings, and reports the raw counters directly for the Fig. 6 panels.
package storage

import (
	"fmt"
	"sync"

	"hydra/internal/series"
)

// Accountant tallies the access pattern of a store. All methods are safe
// for concurrent use, although the benchmark drives queries serially.
type Accountant struct {
	mu        sync.Mutex
	seeks     int64 // random accesses (non-contiguous jumps)
	seqReads  int64 // contiguous page reads
	bytesRead int64
	lastPage  int64 // last page touched, -1 initially
}

// NewAccountant returns a fresh accountant with no recorded accesses.
func NewAccountant() *Accountant {
	return &Accountant{lastPage: -1}
}

// Record notes a read of n bytes starting at the given page.
func (a *Accountant) Record(page int64, pages int, bytes int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastPage < 0 || page != a.lastPage+1 {
		a.seeks++
	} else {
		a.seqReads++
	}
	if pages > 1 {
		a.seqReads += int64(pages - 1)
	}
	a.lastPage = page + int64(pages) - 1
	a.bytesRead += bytes
}

// RecordCluster notes a read of a self-contained cluster (e.g. an index
// leaf stored contiguously in the index's own file): one seek plus pages-1
// sequential page reads. The next access is treated as a seek.
func (a *Accountant) RecordCluster(pages int, bytes int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seeks++
	if pages > 1 {
		a.seqReads += int64(pages - 1)
	}
	a.bytesRead += bytes
	a.lastPage = -1
}

// Reset clears all counters (used between queries).
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seeks = 0
	a.seqReads = 0
	a.bytesRead = 0
	a.lastPage = -1
}

// Snapshot returns the current counter values.
func (a *Accountant) Snapshot() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{RandomSeeks: a.seeks, SequentialPages: a.seqReads, BytesRead: a.bytesRead}
}

// Stats is an immutable snapshot of access counters.
type Stats struct {
	RandomSeeks     int64
	SequentialPages int64
	BytesRead       int64
}

// Add returns the element-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		RandomSeeks:     s.RandomSeeks + o.RandomSeeks,
		SequentialPages: s.SequentialPages + o.SequentialPages,
		BytesRead:       s.BytesRead + o.BytesRead,
	}
}

// Sub returns s minus o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		RandomSeeks:     s.RandomSeeks - o.RandomSeeks,
		SequentialPages: s.SequentialPages - o.SequentialPages,
		BytesRead:       s.BytesRead - o.BytesRead,
	}
}

// CostModel converts access counters into synthetic elapsed I/O time. The
// defaults approximate the paper's testbed: 10K RPM SAS drives in RAID0
// (~6 ms average seek, ~1290 MB/s sequential throughput).
type CostModel struct {
	SeekSeconds      float64 // latency charged per random seek
	BytesPerSecond   float64 // sequential scan bandwidth
	PageBytes        int64   // page size the store was built with
	CPUSecondsPerCmp float64 // optional CPU charge per raw distance computation
}

// DefaultCostModel mirrors the paper's hardware.
func DefaultCostModel() CostModel {
	return CostModel{
		SeekSeconds:    0.006,
		BytesPerSecond: 1290e6,
		PageBytes:      DefaultPageBytes,
	}
}

// Seconds returns the modelled I/O time for the given stats.
func (c CostModel) Seconds(s Stats) float64 {
	t := float64(s.RandomSeeks) * c.SeekSeconds
	if c.BytesPerSecond > 0 {
		t += float64(s.BytesRead) / c.BytesPerSecond
	}
	return t
}

// QuerySeconds returns the modelled time for a query that performed the
// given raw-data accesses and true-distance computations: the I/O time of
// Seconds plus CPUSecondsPerCmp per distance computation. The default
// CPUSecondsPerCmp of 0 leaves every number identical to the pure-I/O
// model; setting it charges the CPU side of refinement, which matters for
// methods that trade I/O for comparisons.
func (c CostModel) QuerySeconds(s Stats, distCalcs int64) float64 {
	return c.Seconds(s) + float64(distCalcs)*c.CPUSecondsPerCmp
}

// DefaultPageBytes is the default page size (16 KiB, a common DB page size).
const DefaultPageBytes = 16 * 1024

// SeriesStore serves raw series reads and charges them to an Accountant.
// It abstracts "where the raw data lives": in this benchmark the values are
// memory-backed, but every access is costed as if the store were a paged
// file, which is what makes the disk experiments implementation-independent.
type SeriesStore struct {
	data          *series.Dataset
	acct          *Accountant
	pageBytes     int64
	seriesPerPage int
	seriesBytes   int64
}

// NewSeriesStore wraps a dataset in a paged store with the given page size.
// A page size of 0 selects DefaultPageBytes.
func NewSeriesStore(data *series.Dataset, pageBytes int64) *SeriesStore {
	if pageBytes <= 0 {
		pageBytes = DefaultPageBytes
	}
	sb := int64(data.Length()) * 4
	spp := int(pageBytes / sb)
	if spp < 1 {
		spp = 1
	}
	return &SeriesStore{
		data:          data,
		acct:          NewAccountant(),
		pageBytes:     pageBytes,
		seriesPerPage: spp,
		seriesBytes:   sb,
	}
}

// Accountant exposes the store's accountant.
func (s *SeriesStore) Accountant() *Accountant { return s.acct }

// View returns a store that shares s's data and page geometry but charges
// accesses to its own fresh Accountant. Methods open one view per query so
// that concurrent searches account their I/O independently: the per-query
// seek/sequential classification then depends only on the query's own access
// pattern, never on how queries interleave.
func (s *SeriesStore) View() *SeriesStore {
	return &SeriesStore{
		data:          s.data,
		acct:          NewAccountant(),
		pageBytes:     s.pageBytes,
		seriesPerPage: s.seriesPerPage,
		seriesBytes:   s.seriesBytes,
	}
}

// Size returns the number of series in the store.
func (s *SeriesStore) Size() int { return s.data.Size() }

// Length returns the series length.
func (s *SeriesStore) Length() int { return s.data.Length() }

// TotalBytes returns the raw data volume held by the store.
func (s *SeriesStore) TotalBytes() int64 { return s.data.Bytes() }

// pageOf returns the page index holding series i.
func (s *SeriesStore) pageOf(i int) int64 { return int64(i / s.seriesPerPage) }

// Read returns series i, charging one page access.
func (s *SeriesStore) Read(i int) series.Series {
	if i < 0 || i >= s.data.Size() {
		panic(fmt.Sprintf("storage: series %d out of range [0,%d)", i, s.data.Size()))
	}
	s.acct.Record(s.pageOf(i), 1, s.seriesBytes)
	return s.data.At(i)
}

// ReadRange returns series [lo,hi) as a contiguous view, charging a single
// multi-page sequential access (the pattern of reading a clustered leaf).
func (s *SeriesStore) ReadRange(lo, hi int) *series.Dataset {
	if lo < 0 || hi > s.data.Size() || lo > hi {
		panic(fmt.Sprintf("storage: range [%d,%d) out of bounds (size %d)", lo, hi, s.data.Size()))
	}
	if lo == hi {
		return s.data.Slice(lo, hi)
	}
	first := s.pageOf(lo)
	last := s.pageOf(hi - 1)
	s.acct.Record(first, int(last-first+1), int64(hi-lo)*s.seriesBytes)
	return s.data.Slice(lo, hi)
}

// ReadBatch returns the series with the given ids, charging one access per
// id (the pattern of refining a candidate list against raw data). Ids are
// charged in the order given; callers that sort ids first get sequential
// credit, mirroring real skip-sequential scans.
func (s *SeriesStore) ReadBatch(ids []int) []series.Series {
	out := make([]series.Series, len(ids))
	for k, id := range ids {
		out[k] = s.Read(id)
	}
	return out
}

// ReadLeafCluster returns the series with the given ids, charging them as
// one contiguous cluster read (one seek plus sequential pages), the access
// pattern of a tree index whose leaves store their series contiguously in
// the index's own file regardless of the ids' positions in the base data.
func (s *SeriesStore) ReadLeafCluster(ids []int) []series.Series {
	out := make([]series.Series, len(ids))
	for k, id := range ids {
		if id < 0 || id >= s.data.Size() {
			panic(fmt.Sprintf("storage: series %d out of range [0,%d)", id, s.data.Size()))
		}
		out[k] = s.data.At(id)
	}
	bytes := int64(len(ids)) * s.seriesBytes
	pages := int((bytes + s.pageBytes - 1) / s.pageBytes)
	if pages < 1 {
		pages = 1
	}
	if len(ids) > 0 {
		s.acct.RecordCluster(pages, bytes)
	}
	return out
}

// Peek returns series i without charging any access. Index-construction
// code uses Peek: the paper charges building separately from querying.
func (s *SeriesStore) Peek(i int) series.Series { return s.data.At(i) }

// Dataset exposes the underlying dataset (uncharged). Intended for
// index-building passes and ground-truth computation.
func (s *SeriesStore) Dataset() *series.Dataset { return s.data }
