package storage

import (
	"testing"

	"hydra/internal/series"
)

func testDataset(n, length int) *series.Dataset {
	d := series.NewDataset(length)
	for i := 0; i < n; i++ {
		s := make(series.Series, length)
		for j := range s {
			s[j] = float32(i*length + j)
		}
		d.Append(s)
	}
	return d
}

func TestAccountantSequentialVsRandom(t *testing.T) {
	a := NewAccountant()
	a.Record(0, 1, 100)  // first touch: seek
	a.Record(1, 1, 100)  // contiguous: sequential
	a.Record(2, 1, 100)  // contiguous: sequential
	a.Record(10, 1, 100) // jump: seek
	st := a.Snapshot()
	if st.RandomSeeks != 2 {
		t.Errorf("RandomSeeks = %d, want 2", st.RandomSeeks)
	}
	if st.SequentialPages != 2 {
		t.Errorf("SequentialPages = %d, want 2", st.SequentialPages)
	}
	if st.BytesRead != 400 {
		t.Errorf("BytesRead = %d, want 400", st.BytesRead)
	}
}

func TestAccountantMultiPage(t *testing.T) {
	a := NewAccountant()
	a.Record(5, 4, 1000) // one seek + 3 sequential pages
	st := a.Snapshot()
	if st.RandomSeeks != 1 || st.SequentialPages != 3 {
		t.Errorf("got %+v, want 1 seek 3 seq", st)
	}
	a.Record(9, 1, 10) // page 9 follows page 8: sequential
	if st = a.Snapshot(); st.RandomSeeks != 1 {
		t.Errorf("follow-on read should be sequential, got %+v", st)
	}
}

func TestAccountantReset(t *testing.T) {
	a := NewAccountant()
	a.Record(3, 1, 10)
	a.Reset()
	st := a.Snapshot()
	if st.RandomSeeks != 0 || st.BytesRead != 0 {
		t.Errorf("reset failed: %+v", st)
	}
	a.Record(4, 1, 10) // after reset, first access is a seek again
	if a.Snapshot().RandomSeeks != 1 {
		t.Error("first access after reset should count as seek")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{1, 2, 3}
	b := Stats{10, 20, 30}
	sum := a.Add(b)
	if sum != (Stats{11, 22, 33}) {
		t.Errorf("Add = %+v", sum)
	}
	if d := b.Sub(a); d != (Stats{9, 18, 27}) {
		t.Errorf("Sub = %+v", d)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{SeekSeconds: 0.01, BytesPerSecond: 1000}
	s := Stats{RandomSeeks: 2, BytesRead: 500}
	if got := m.Seconds(s); got != 0.02+0.5 {
		t.Errorf("Seconds = %v, want 0.52", got)
	}
	// Zero bandwidth must not divide by zero.
	m2 := CostModel{SeekSeconds: 0.01}
	if got := m2.Seconds(s); got != 0.02 {
		t.Errorf("Seconds (no bandwidth) = %v", got)
	}
}

func TestSeriesStoreRead(t *testing.T) {
	d := testDataset(100, 16)    // 64 bytes per series
	st := NewSeriesStore(d, 256) // 4 series per page
	got := st.Read(5)
	if got[0] != 5*16 {
		t.Errorf("Read(5)[0] = %v, want %v", got[0], 5*16)
	}
	stats := st.Accountant().Snapshot()
	if stats.RandomSeeks != 1 {
		t.Errorf("one read should be one seek, got %+v", stats)
	}
	if stats.BytesRead != 64 {
		t.Errorf("BytesRead = %d, want 64", stats.BytesRead)
	}
	// Reading the next series on the same page is NOT page-contiguous in our
	// model (same page again => page != last+1 => seek). Reading a series on
	// the following page is sequential.
	st.Accountant().Reset()
	st.Read(0) // page 0: seek
	st.Read(4) // page 1: sequential
	st.Read(8) // page 2: sequential
	stats = st.Accountant().Snapshot()
	if stats.RandomSeeks != 1 || stats.SequentialPages != 2 {
		t.Errorf("page-sequential reads miscounted: %+v", stats)
	}
}

func TestSeriesStoreReadRange(t *testing.T) {
	d := testDataset(100, 16)
	st := NewSeriesStore(d, 256) // 4 series/page
	sl := st.ReadRange(4, 12)    // pages 1..2
	if sl.Size() != 8 {
		t.Fatalf("range size = %d, want 8", sl.Size())
	}
	stats := st.Accountant().Snapshot()
	if stats.RandomSeeks != 1 || stats.SequentialPages != 1 {
		t.Errorf("range read: %+v, want 1 seek + 1 seq page", stats)
	}
	if stats.BytesRead != 8*64 {
		t.Errorf("BytesRead = %d, want %d", stats.BytesRead, 8*64)
	}
	// Empty range reads nothing.
	st.Accountant().Reset()
	if got := st.ReadRange(3, 3); got.Size() != 0 {
		t.Error("empty range should have size 0")
	}
	if st.Accountant().Snapshot().BytesRead != 0 {
		t.Error("empty range should not be charged")
	}
}

func TestSeriesStorePeekUncharged(t *testing.T) {
	d := testDataset(10, 16)
	st := NewSeriesStore(d, 0)
	_ = st.Peek(3)
	if st.Accountant().Snapshot().BytesRead != 0 {
		t.Error("Peek must not charge")
	}
}

func TestSeriesStoreReadBatch(t *testing.T) {
	d := testDataset(50, 16)
	st := NewSeriesStore(d, 64) // 1 series per page
	got := st.ReadBatch([]int{3, 4, 20})
	if len(got) != 3 || got[2][0] != 20*16 {
		t.Fatalf("batch contents wrong")
	}
	stats := st.Accountant().Snapshot()
	// 3 -> seek, 4 -> sequential, 20 -> seek
	if stats.RandomSeeks != 2 || stats.SequentialPages != 1 {
		t.Errorf("batch stats: %+v", stats)
	}
}

func TestSeriesStoreOutOfRangePanics(t *testing.T) {
	d := testDataset(5, 8)
	st := NewSeriesStore(d, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	st.Read(5)
}

func TestSeriesStoreSmallPage(t *testing.T) {
	// Page smaller than a series: seriesPerPage clamps to 1.
	d := testDataset(4, 100) // 400 bytes per series
	st := NewSeriesStore(d, 64)
	st.Read(0)
	st.Read(1)
	stats := st.Accountant().Snapshot()
	if stats.RandomSeeks != 1 || stats.SequentialPages != 1 {
		t.Errorf("clamped store stats: %+v", stats)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := DefaultCostModel()
	if m.SeekSeconds <= 0 || m.BytesPerSecond <= 0 || m.PageBytes <= 0 {
		t.Errorf("default cost model has non-positive fields: %+v", m)
	}
}

func TestReadLeafCluster(t *testing.T) {
	d := testDataset(100, 16) // 64 bytes/series
	st := NewSeriesStore(d, 256)
	got := st.ReadLeafCluster([]int{5, 80, 2, 40})
	if len(got) != 4 || got[1][0] != 80*16 {
		t.Fatalf("cluster contents wrong")
	}
	stats := st.Accountant().Snapshot()
	// 4*64 = 256 bytes = 1 page: 1 seek, 0 sequential.
	if stats.RandomSeeks != 1 || stats.SequentialPages != 0 {
		t.Errorf("cluster stats: %+v", stats)
	}
	if stats.BytesRead != 256 {
		t.Errorf("BytesRead = %d", stats.BytesRead)
	}
	// A larger cluster spans pages: 1 seek + extra sequential pages.
	st.Accountant().Reset()
	ids := make([]int, 20) // 20*64 = 1280 bytes = 5 pages
	for i := range ids {
		ids[i] = i * 3
	}
	st.ReadLeafCluster(ids)
	stats = st.Accountant().Snapshot()
	if stats.RandomSeeks != 1 || stats.SequentialPages != 4 {
		t.Errorf("multi-page cluster stats: %+v", stats)
	}
	// Empty cluster charges nothing.
	st.Accountant().Reset()
	st.ReadLeafCluster(nil)
	if st.Accountant().Snapshot().RandomSeeks != 0 {
		t.Error("empty cluster should not charge")
	}
}
