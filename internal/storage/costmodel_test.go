package storage

import "testing"

func TestQuerySecondsCPUCharge(t *testing.T) {
	s := Stats{RandomSeeks: 10, BytesRead: 1290e6}
	m := DefaultCostModel()
	// Zero CPUSecondsPerCmp (the default) must leave the model unchanged
	// regardless of how many comparisons ran.
	if got, want := m.QuerySeconds(s, 1_000_000), m.Seconds(s); got != want {
		t.Errorf("zero charge: QuerySeconds %v != Seconds %v", got, want)
	}
	m.CPUSecondsPerCmp = 2e-6
	want := m.Seconds(s) + 2e-6*5000
	if got := m.QuerySeconds(s, 5000); got != want {
		t.Errorf("QuerySeconds = %v, want %v", got, want)
	}
	if got := m.QuerySeconds(s, 0); got != m.Seconds(s) {
		t.Errorf("no comparisons should add no charge: %v", got)
	}
}
