package catalog

import (
	"encoding/gob"
	"io"
	"strings"
	"sync"
	"testing"

	"hydra/internal/core"
)

// registerWarmupSpecs adds the registry entries Warmup resolves by name:
// one persistable method (counting builds) and one pure in-memory method.
// Registration is global, hence once per test binary.
var registerWarmupSpecs = sync.OnceValue(func() *int {
	builds := new(int)
	spec := fakeSpec(builds)
	spec.Name = "warm-fake"
	core.RegisterMethod(core.MethodSpec{
		Name:          spec.Name,
		FormatVersion: spec.FormatVersion,
		Build:         spec.Build,
		Save: func(m core.Method, w io.Writer) error {
			return gob.NewEncoder(w).Encode(m.(*fakeMethod).size)
		},
		Load: spec.Load,
	})
	core.RegisterMethod(core.MethodSpec{
		Name: "warm-plain",
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			return core.BuildResult{Method: &fakeMethod{size: ctx.Data.Size()}}, nil
		},
	})
	return builds
})

func TestWarmupColdThenWarm(t *testing.T) {
	builds := registerWarmupSpecs()
	*builds = 0
	data := testDataset(40, 8, 1)
	cat, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"warm-fake", "warm-plain", "no-such-method"}

	entries := Warmup(cat, names, ctxFor(data), 3)
	if len(entries) != len(names) {
		t.Fatalf("got %d entries, want %d", len(entries), len(names))
	}
	for i, e := range entries {
		if e.Name != names[i] {
			t.Errorf("entry %d is %q, want %q (order must follow names)", i, e.Name, names[i])
		}
	}
	if e := entries[0]; e.Err != nil || e.Result.Hit || e.Result.Method == nil {
		t.Errorf("cold persistable entry: %+v", e)
	}
	if e := entries[1]; e.Err != nil || e.Result.Hit || e.Result.Method == nil {
		t.Errorf("non-persistable entry should pass through as a build: %+v", e)
	}
	if e := entries[2]; e.Err == nil || !strings.Contains(e.Err.Error(), "unknown method") {
		t.Errorf("unknown method should error, got %+v", e)
	}
	if *builds != 1 {
		t.Fatalf("persistable method built %d times, want 1", *builds)
	}

	// Second warmup over the same catalog: the persistable method loads,
	// the in-memory one rebuilds (nothing to persist).
	entries = Warmup(cat, names[:2], ctxFor(data), 1)
	if e := entries[0]; e.Err != nil || !e.Result.Hit {
		t.Errorf("warm persistable entry should hit: %+v", e)
	}
	if e := entries[1]; e.Err != nil || e.Result.Hit {
		t.Errorf("in-memory entry cannot hit: %+v", e)
	}
	if *builds != 1 {
		t.Fatalf("warm boot rebuilt the persistable method (%d builds)", *builds)
	}
	if m, ok := entries[0].Result.Method.(*fakeMethod); !ok || !m.loaded {
		t.Errorf("warm method was not served from the snapshot: %+v", entries[0].Result.Method)
	}
}

func TestWarmupWithoutCatalogBuildsEverything(t *testing.T) {
	builds := registerWarmupSpecs()
	*builds = 0
	data := testDataset(40, 8, 1)
	entries := Warmup(nil, []string{"warm-fake", "warm-plain", "no-such-method"}, ctxFor(data), 2)
	if e := entries[0]; e.Err != nil || e.Result.Hit || e.Result.Method == nil || e.Result.BuildSeconds < 0 {
		t.Errorf("nil-catalog persistable entry: %+v", e)
	}
	if e := entries[1]; e.Err != nil || e.Result.Method == nil {
		t.Errorf("nil-catalog in-memory entry: %+v", e)
	}
	if e := entries[2]; e.Err == nil {
		t.Errorf("unknown method should error, got %+v", e)
	}
	if *builds != 1 {
		t.Fatalf("persistable method built %d times, want 1", *builds)
	}
	// Nothing persisted: a second nil-catalog warmup builds again.
	Warmup(nil, []string{"warm-fake"}, ctxFor(data), 1)
	if *builds != 2 {
		t.Fatalf("nil catalog cannot serve warm loads (%d builds, want 2)", *builds)
	}
}
