// Package catalog is the persistent index store that turns the harness's
// rebuild-every-run loop into the paper's build-once / query-many workflow:
// expensive offline index construction is decoupled from cheap online
// serving. Entries are content-addressed by (dataset fingerprint, method
// name, build-config hash), so a cache hit is guaranteed to be an index
// built over byte-identical data with identical parameters; anything else
// is a miss or a rejection, never a silently wrong answer.
//
// On disk, an entry is a single file: a length-prefixed JSON header
// (catalog version, method, fingerprint, config key, snapshot format
// version) followed by the method's own snapshot payload. Writes go to a
// temp file in the same directory and are renamed into place, so readers
// never observe a partially written entry and concurrent builders of the
// same key converge on one winner.
package catalog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hydra/internal/core"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// ErrMiss reports that no entry exists for the requested key.
var ErrMiss = errors.New("catalog: miss")

// ErrNotPersistable reports that the method has no persistence hooks, so
// the catalog cannot serve it.
var ErrNotPersistable = errors.New("catalog: method is not persistable")

// catalogVersion is the on-disk entry envelope version.
const catalogVersion = 1

// headerLimit bounds the header length field so a corrupt file cannot make
// the reader allocate gigabytes.
const headerLimit = 1 << 20

// entrySuffix is the filename extension of catalog entries; Prune only
// ever touches files carrying it.
const entrySuffix = ".hydraidx"

// Fingerprint returns the content address of a dataset (series.Dataset's
// SHA-256 over shape and raw values). Two datasets share a fingerprint iff
// they are byte-identical, which is what makes reusing an index across
// runs safe.
func Fingerprint(d *series.Dataset) string { return d.Fingerprint() }

// Catalog is a directory of persisted indexes.
type Catalog struct {
	dir string
}

// Open creates (if needed) and returns the catalog rooted at dir.
func Open(dir string) (*Catalog, error) {
	if dir == "" {
		return nil, fmt.Errorf("catalog: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: creating %s: %w", dir, err)
	}
	return &Catalog{dir: dir}, nil
}

// Dir returns the catalog's root directory.
func (c *Catalog) Dir() string { return c.dir }

// header is the entry envelope preceding the method snapshot payload.
type header struct {
	Version       int    `json:"version"`
	Method        string `json:"method"`
	Fingerprint   string `json:"fingerprint"`
	ConfigKey     string `json:"config_key"`
	FormatVersion int    `json:"format_version"`
}

// configKey canonically describes one build: the method's context-derived
// parameters, its own build configuration (the spec's ConfigString —
// typically a rendering of the package's DefaultConfig, so tuning defaults
// invalidates cached indexes) and its snapshot format version.
func configKey(spec core.MethodSpec, ctx *core.BuildContext) string {
	return fmt.Sprintf("%s;cfg=%s;fmt=%d", ctx.ConfigKey(), spec.ConfigString, spec.FormatVersion)
}

// entryKey is the resolved cache key for one (spec, ctx) pair: the dataset
// fingerprint is O(dataset), so it is computed once per catalog operation
// and threaded through.
type entryKey struct {
	fingerprint string
	configKey   string
	path        string
}

func (c *Catalog) keyFor(spec core.MethodSpec, ctx *core.BuildContext) entryKey {
	fp := ctx.DataFingerprint() // memoized: shared contexts hash once
	ck := configKey(spec, ctx)
	cfg := fmt.Sprintf("%x", sha256.Sum256([]byte(ck)))
	return entryKey{
		fingerprint: fp,
		configKey:   ck,
		path:        filepath.Join(c.dir, fmt.Sprintf("%s-%s-%s%s", sanitize(spec.Name), fp[:12], cfg[:12], entrySuffix)),
	}
}

// EntryPath returns the file an index for (spec, ctx) lives at. The name
// embeds short prefixes of both hashes; the header carries them in full.
func (c *Catalog) EntryPath(spec core.MethodSpec, ctx *core.BuildContext) string {
	return c.keyFor(spec, ctx).path
}

// sanitize maps a method name onto a filesystem-safe slug.
func sanitize(name string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// OpenResult is the outcome of OpenIndex / OpenOrBuild.
type OpenResult struct {
	Method core.Method
	Store  *storage.SeriesStore // nil for purely in-memory methods
	// Hit is true when the index was served from the catalog.
	Hit bool
	// Path is the entry's location on disk.
	Path string
	// LoadSeconds / BuildSeconds time whichever path ran (the other is 0).
	LoadSeconds  float64
	BuildSeconds float64
	// LoadErr records why a present entry was rejected before OpenOrBuild
	// fell back to rebuilding (nil on a clean hit or plain miss).
	LoadErr error
	// SaveErr records a failure to persist a freshly built index (full or
	// unwritable index-dir). The build itself succeeded and is returned;
	// the next run simply misses again.
	SaveErr error
}

// HydrateSeconds returns the time the hydration path that actually ran
// took: the load time on a hit, the build time otherwise.
func (r OpenResult) HydrateSeconds() float64 {
	if r.Hit {
		return r.LoadSeconds
	}
	return r.BuildSeconds
}

// OpenIndex strictly loads the cached index for (spec, ctx). It returns
// ErrMiss when no entry exists, ErrNotPersistable for methods without
// snapshot hooks, and a descriptive error for corrupt, version-skewed or
// wrong-dataset entries. It never builds.
func (c *Catalog) OpenIndex(spec core.MethodSpec, ctx *core.BuildContext) (OpenResult, error) {
	if !spec.Persistable() {
		return OpenResult{}, ErrNotPersistable
	}
	return c.openIndex(spec, ctx, c.keyFor(spec, ctx))
}

func (c *Catalog) openIndex(spec core.MethodSpec, ctx *core.BuildContext, key entryKey) (OpenResult, error) {
	path := key.path
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return OpenResult{Path: path}, ErrMiss
	}
	if err != nil {
		return OpenResult{Path: path}, fmt.Errorf("catalog: opening %s: %w", path, err)
	}
	defer f.Close()
	start := time.Now()
	hdr, err := readHeader(f)
	if err != nil {
		return OpenResult{Path: path}, fmt.Errorf("catalog: %s: %w", path, err)
	}
	if hdr.Version != catalogVersion {
		return OpenResult{Path: path}, fmt.Errorf("catalog: %s: entry version %d, want %d", path, hdr.Version, catalogVersion)
	}
	if hdr.Method != spec.Name {
		return OpenResult{Path: path}, fmt.Errorf("catalog: %s: entry holds method %q, want %q", path, hdr.Method, spec.Name)
	}
	if hdr.Fingerprint != key.fingerprint {
		return OpenResult{Path: path}, fmt.Errorf("catalog: %s: dataset fingerprint mismatch (entry %.12s…, data %.12s…)", path, hdr.Fingerprint, key.fingerprint)
	}
	if hdr.ConfigKey != key.configKey {
		return OpenResult{Path: path}, fmt.Errorf("catalog: %s: build config mismatch (entry %q, want %q)", path, hdr.ConfigKey, key.configKey)
	}
	if hdr.FormatVersion != spec.FormatVersion {
		return OpenResult{Path: path}, fmt.Errorf("catalog: %s: snapshot format %d, want %d", path, hdr.FormatVersion, spec.FormatVersion)
	}
	res, err := spec.Load(ctx, f)
	if err != nil {
		return OpenResult{Path: path}, fmt.Errorf("catalog: %s: loading snapshot: %w", path, err)
	}
	// Touch the entry so Prune's oldest-first eviction approximates
	// least-recently-used: entries a warm start keeps serving stay young.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return OpenResult{
		Method:      res.Method,
		Store:       res.Store,
		Hit:         true,
		Path:        path,
		LoadSeconds: time.Since(start).Seconds(),
	}, nil
}

// OpenOrBuild serves the index for (spec, ctx) from the catalog when a
// valid entry exists, and otherwise builds it and persists the result
// (atomically) for the next run. Methods without persistence hooks are
// built directly — the catalog is then a pass-through. A present-but-
// invalid entry (corruption, version skew, foreign dataset) is rebuilt and
// overwritten; the rejection reason is reported in LoadErr.
func (c *Catalog) OpenOrBuild(spec core.MethodSpec, ctx *core.BuildContext) (OpenResult, error) {
	var loadErr error
	var key entryKey
	if spec.Persistable() {
		key = c.keyFor(spec, ctx)
		res, err := c.openIndex(spec, ctx, key)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrMiss) {
			loadErr = err
		}
	}
	start := time.Now()
	built, err := spec.Build(ctx)
	if err != nil {
		return OpenResult{}, err
	}
	out := OpenResult{
		Method:       built.Method,
		Store:        built.Store,
		BuildSeconds: time.Since(start).Seconds(),
		LoadErr:      loadErr,
	}
	if !spec.Persistable() {
		return out, nil
	}
	// A save failure (full disk, unwritable dir) must not discard a
	// successful build: serve the in-memory index and report the problem
	// in SaveErr — the cache is an optimisation, never a failure mode.
	if err := c.writeEntry(key, spec, built.Method); err != nil {
		out.SaveErr = err
		return out, nil
	}
	out.Path = key.path
	return out, nil
}

// writeEntry persists one index snapshot via temp-file + rename.
func (c *Catalog) writeEntry(key entryKey, spec core.MethodSpec, m core.Method) error {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("catalog: creating temp entry: %w", err)
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name()) // no-op after a successful rename
	}()
	hdr := header{
		Version:       catalogVersion,
		Method:        spec.Name,
		Fingerprint:   key.fingerprint,
		ConfigKey:     key.configKey,
		FormatVersion: spec.FormatVersion,
	}
	if err := writeHeader(tmp, hdr); err != nil {
		return fmt.Errorf("catalog: writing header: %w", err)
	}
	if err := spec.Save(m, tmp); err != nil {
		return fmt.Errorf("catalog: saving %s snapshot: %w", spec.Name, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("catalog: syncing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: closing entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), key.path); err != nil {
		return fmt.Errorf("catalog: publishing entry: %w", err)
	}
	return nil
}

// writeHeader emits the length-prefixed JSON envelope. A fixed-size length
// prefix (not a streaming decoder) keeps the payload boundary exact: the
// method snapshot starts at byte 4+len(header JSON), always.
func writeHeader(w io.Writer, hdr header) error {
	blob, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(blob)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

func readHeader(r io.Reader) (header, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return header{}, fmt.Errorf("reading header length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > headerLimit {
		return header{}, fmt.Errorf("implausible header length %d", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(r, blob); err != nil {
		return header{}, fmt.Errorf("reading header: %w", err)
	}
	var hdr header
	if err := json.Unmarshal(blob, &hdr); err != nil {
		return header{}, fmt.Errorf("decoding header: %w", err)
	}
	return hdr, nil
}
