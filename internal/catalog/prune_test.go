package catalog

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeFakeEntry drops a fake catalog entry of the given size and age.
func writeFakeEntry(t *testing.T, dir, name string, size int, age time.Duration) string {
	t.Helper()
	path := filepath.Join(dir, name+entrySuffix)
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	mtime := time.Now().Add(-age)
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPruneOldestFirst(t *testing.T) {
	dir := t.TempDir()
	oldest := writeFakeEntry(t, dir, "a-oldest", 1000, 3*time.Hour)
	middle := writeFakeEntry(t, dir, "b-middle", 1000, 2*time.Hour)
	newest := writeFakeEntry(t, dir, "c-newest", 1000, time.Hour)
	// A non-entry file must never be considered, let alone removed.
	bystander := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(bystander, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Prune(dir, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 1 || rep.FreedBytes != 1000 {
		t.Errorf("removed %d entries (%d bytes), want 1 (1000)", rep.Removed, rep.FreedBytes)
	}
	if rep.Kept != 2 || rep.KeptBytes != 2000 {
		t.Errorf("kept %d entries (%d bytes), want 2 (2000)", rep.Kept, rep.KeptBytes)
	}
	if _, err := os.Stat(oldest); !os.IsNotExist(err) {
		t.Error("oldest entry survived a prune that had to evict")
	}
	for _, path := range []string{middle, newest, bystander} {
		if _, err := os.Stat(path); err != nil {
			t.Errorf("%s should have survived: %v", filepath.Base(path), err)
		}
	}

	// Already under budget: nothing to do.
	rep, err = Prune(dir, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 0 || rep.Kept != 2 {
		t.Errorf("under-budget prune removed %d / kept %d", rep.Removed, rep.Kept)
	}

	// maxBytes <= 0 clears every entry.
	rep, err = Prune(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 2 || rep.Kept != 0 {
		t.Errorf("clearing prune removed %d / kept %d", rep.Removed, rep.Kept)
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Errorf("bystander file deleted by clearing prune: %v", err)
	}
}

// TestPruneTouchKeepsServedEntriesYoung pins the LRU interaction: loading
// an entry through OpenIndex refreshes its mtime, so a subsequent prune
// evicts an idle entry in preference to the one just served.
func TestPruneTouchKeepsServedEntriesYoung(t *testing.T) {
	dir := t.TempDir()
	cat, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	builds := 0
	spec := fakeSpec(&builds)
	ctx := ctxFor(testDataset(60, 8, 5))
	if _, err := cat.OpenOrBuild(spec, ctx); err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("expected one build, got %d", builds)
	}
	served := cat.EntryPath(spec, ctx)
	// Make the served entry look ancient, then serve it: the touch must
	// bring it back to "now".
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(served, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.OpenIndex(spec, ctx); err != nil {
		t.Fatal(err)
	}
	idle := writeFakeEntry(t, dir, "idle", 10, 12*time.Hour)

	fi, err := os.Stat(served)
	if err != nil {
		t.Fatal(err)
	}
	entrySize := fi.Size()
	rep, err := cat.Prune(entrySize)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 1 {
		t.Fatalf("prune removed %d entries, want 1 (report %+v)", rep.Removed, rep)
	}
	if _, err := os.Stat(idle); !os.IsNotExist(err) {
		t.Error("idle entry survived; the freshly served entry must have been evicted instead")
	}
	if _, err := os.Stat(served); err != nil {
		t.Errorf("freshly served entry evicted despite the touch: %v", err)
	}
}
