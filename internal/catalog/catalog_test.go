package catalog

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/series"
)

func testDataset(n, length int, seed int64) *series.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := series.NewDataset(length)
	for i := 0; i < n; i++ {
		s := make(series.Series, length)
		for j := range s {
			s[j] = float32(rng.NormFloat64())
		}
		d.Append(s)
	}
	return d
}

// fakeMethod is a minimal persistable core.Method whose payload is its
// dataset size, letting tests observe exactly what was saved and loaded.
type fakeMethod struct {
	size   int
	loaded bool
}

func (f *fakeMethod) Name() string                             { return "Fake" }
func (f *fakeMethod) Footprint() int64                         { return int64(f.size) }
func (f *fakeMethod) Search(q core.Query) (core.Result, error) { return core.Result{}, nil }

// fakeSpec returns a persistable spec counting Build invocations.
func fakeSpec(builds *int) core.MethodSpec {
	return core.MethodSpec{
		Name:          "Fake",
		FormatVersion: 1,
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			*builds++
			return core.BuildResult{Method: &fakeMethod{size: ctx.Data.Size()}}, nil
		},
		Save: func(m core.Method, w io.Writer) error {
			return gob.NewEncoder(w).Encode(m.(*fakeMethod).size)
		},
		Load: func(ctx *core.BuildContext, r io.Reader) (core.BuildResult, error) {
			var size int
			if err := gob.NewDecoder(r).Decode(&size); err != nil {
				return core.BuildResult{}, err
			}
			if size != ctx.Data.Size() {
				return core.BuildResult{}, fmt.Errorf("fake: snapshot size %d != dataset %d", size, ctx.Data.Size())
			}
			return core.BuildResult{Method: &fakeMethod{size: size, loaded: true}}, nil
		},
	}
}

func ctxFor(d *series.Dataset) *core.BuildContext {
	return &core.BuildContext{Data: d, LeafCapacity: 16, HistogramPairs: 100, HistogramSeed: 7}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := testDataset(50, 8, 1)
	b := testDataset(50, 8, 1)
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("identical datasets fingerprint differently")
	}
	c := testDataset(50, 8, 2)
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("different datasets share a fingerprint")
	}
	// One-bit change must change the fingerprint.
	d := testDataset(50, 8, 1)
	d.At(49)[7] += 1
	if Fingerprint(a) == Fingerprint(d) {
		t.Error("value change not reflected in fingerprint")
	}
}

func TestOpenOrBuildMissThenHit(t *testing.T) {
	dir := t.TempDir()
	cat, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := testDataset(60, 8, 3)
	builds := 0
	spec := fakeSpec(&builds)

	cold, err := cat.OpenOrBuild(spec, ctxFor(d))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hit || builds != 1 {
		t.Fatalf("cold run: hit=%v builds=%d", cold.Hit, builds)
	}
	if _, err := os.Stat(cold.Path); err != nil {
		t.Fatalf("entry not persisted: %v", err)
	}

	warm, err := cat.OpenOrBuild(spec, ctxFor(d))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit {
		t.Fatal("second run missed")
	}
	if builds != 1 {
		t.Fatalf("second run rebuilt (builds=%d)", builds)
	}
	if !warm.Method.(*fakeMethod).loaded {
		t.Error("warm method did not come through Load")
	}

	// A different dataset is a different key: no false sharing.
	other := testDataset(60, 8, 4)
	res, err := cat.OpenOrBuild(spec, ctxFor(other))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Error("foreign dataset hit the cache")
	}
	if builds != 2 {
		t.Errorf("builds=%d, want 2", builds)
	}
}

func TestConfigStringInvalidatesEntries(t *testing.T) {
	cat, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := testDataset(40, 8, 30)
	builds := 0
	spec := fakeSpec(&builds)
	spec.ConfigString = "M=16"
	if _, err := cat.OpenOrBuild(spec, ctxFor(d)); err != nil {
		t.Fatal(err)
	}
	// Same method, same dataset, retuned build parameters: the old entry
	// must not be served.
	retuned := fakeSpec(&builds)
	retuned.ConfigString = "M=32"
	res, err := cat.OpenOrBuild(retuned, ctxFor(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || builds != 2 {
		t.Errorf("retuned config served a stale entry: hit=%v builds=%d", res.Hit, builds)
	}
	// The original configuration still hits its own entry.
	if again, err := cat.OpenOrBuild(spec, ctxFor(d)); err != nil || !again.Hit {
		t.Errorf("original config lost its entry: hit=%v err=%v", again.Hit, err)
	}
}

func TestSaveFailureStillServesBuiltIndex(t *testing.T) {
	cat, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := testDataset(40, 8, 31)
	builds := 0
	spec := fakeSpec(&builds)
	spec.Save = func(m core.Method, w io.Writer) error {
		return fmt.Errorf("disk full")
	}
	res, err := cat.OpenOrBuild(spec, ctxFor(d))
	if err != nil {
		t.Fatalf("save failure must not fail the build: %v", err)
	}
	if res.Method == nil || res.Hit {
		t.Fatalf("built index not served: %+v", res)
	}
	if res.SaveErr == nil || !strings.Contains(res.SaveErr.Error(), "disk full") {
		t.Errorf("SaveErr = %v", res.SaveErr)
	}
	if builds != 1 {
		t.Errorf("builds = %d", builds)
	}
	// Nothing was published, so the next run misses (and no temp files
	// linger from the failed write).
	if _, err := cat.OpenIndex(fakeSpec(&builds), ctxFor(d)); !errors.Is(err, ErrMiss) {
		t.Errorf("failed save published an entry: %v", err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(cat.Dir(), ".tmp-*")); len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}

func TestOpenIndexMissAndNotPersistable(t *testing.T) {
	cat, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := testDataset(20, 4, 5)
	builds := 0
	if _, err := cat.OpenIndex(fakeSpec(&builds), ctxFor(d)); !errors.Is(err, ErrMiss) {
		t.Errorf("expected ErrMiss, got %v", err)
	}
	bare := core.MethodSpec{Name: "Bare", Build: fakeSpec(&builds).Build}
	if _, err := cat.OpenIndex(bare, ctxFor(d)); !errors.Is(err, ErrNotPersistable) {
		t.Errorf("expected ErrNotPersistable, got %v", err)
	}
	// OpenOrBuild on a non-persistable spec builds and does not persist.
	res, err := cat.OpenOrBuild(bare, ctxFor(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.Path != "" {
		t.Errorf("non-persistable spec produced a cache entry: %+v", res)
	}
}

func TestOpenIndexRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	cat, _ := Open(dir)
	d := testDataset(40, 8, 6)
	builds := 0
	spec := fakeSpec(&builds)
	cold, err := cat.OpenOrBuild(spec, ctxFor(d))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the payload: load must fail, OpenOrBuild must recover.
	blob, err := os.ReadFile(cold.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cold.Path, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.OpenIndex(spec, ctxFor(d)); err == nil {
		t.Fatal("OpenIndex accepted a truncated entry")
	}
	res, err := cat.OpenOrBuild(spec, ctxFor(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.LoadErr == nil || builds != 2 {
		t.Errorf("corrupt entry not rebuilt: hit=%v loadErr=%v builds=%d", res.Hit, res.LoadErr, builds)
	}
	// The rebuilt entry must serve cleanly again.
	if again, err := cat.OpenOrBuild(spec, ctxFor(d)); err != nil || !again.Hit {
		t.Errorf("rebuilt entry not served: hit=%v err=%v", again.Hit, err)
	}
}

func TestOpenIndexRejectsVersionSkew(t *testing.T) {
	dir := t.TempDir()
	cat, _ := Open(dir)
	d := testDataset(40, 8, 7)
	builds := 0
	spec := fakeSpec(&builds)
	if _, err := cat.OpenOrBuild(spec, ctxFor(d)); err != nil {
		t.Fatal(err)
	}
	// A spec with a bumped snapshot format must not accept the old entry —
	// and because the format version participates in the key, it simply
	// misses rather than loading a stale snapshot.
	bumped := fakeSpec(&builds)
	bumped.FormatVersion = 2
	if _, err := cat.OpenIndex(bumped, ctxFor(d)); !errors.Is(err, ErrMiss) {
		t.Errorf("bumped format: expected miss, got %v", err)
	}
	// Forge the skew: copy the v1 entry onto the v2 key so the header check
	// itself is exercised.
	v1 := cat.EntryPath(spec, ctxFor(d))
	v2 := cat.EntryPath(bumped, ctxFor(d))
	blob, err := os.ReadFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = cat.OpenIndex(bumped, ctxFor(d))
	if err == nil || errors.Is(err, ErrMiss) {
		t.Errorf("forged version skew not rejected: %v", err)
	}
}

func TestOpenIndexRejectsWrongFingerprint(t *testing.T) {
	dir := t.TempDir()
	cat, _ := Open(dir)
	a := testDataset(40, 8, 8)
	b := testDataset(40, 8, 9)
	builds := 0
	spec := fakeSpec(&builds)
	cold, err := cat.OpenOrBuild(spec, ctxFor(a))
	if err != nil {
		t.Fatal(err)
	}
	// Plant dataset a's entry under dataset b's key: the header fingerprint
	// must catch the mismatch even though the filename matches.
	blob, err := os.ReadFile(cold.Path)
	if err != nil {
		t.Fatal(err)
	}
	forged := cat.EntryPath(spec, ctxFor(b))
	if err := os.WriteFile(forged, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = cat.OpenIndex(spec, ctxFor(b))
	if err == nil || errors.Is(err, ErrMiss) {
		t.Fatalf("wrong-dataset entry not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("rejection reason should name the fingerprint: %v", err)
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	cat, _ := Open(dir)
	d := testDataset(30, 8, 10)
	builds := 0
	if _, err := cat.OpenOrBuild(fakeSpec(&builds), ctxFor(d)); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("temp files left behind: %v", entries)
	}
}

func TestHeaderRoundTripAndLimits(t *testing.T) {
	var buf bytes.Buffer
	in := header{Version: 1, Method: "X", Fingerprint: "f", ConfigKey: "c", FormatVersion: 2}
	if err := writeHeader(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("header round trip: %+v != %+v", out, in)
	}
	// An implausible length must be rejected, not allocated.
	if _, err := readHeader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0})); err == nil {
		t.Error("absurd header length accepted")
	}
}
