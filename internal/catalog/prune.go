package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// PruneReport summarises one Prune pass.
type PruneReport struct {
	// Removed counts deleted entries; FreedBytes their total size.
	Removed    int
	FreedBytes int64
	// Kept counts surviving entries; KeptBytes their total size.
	Kept      int
	KeptBytes int64
}

// Prune opens the catalog at dir and evicts entries oldest-first until the
// directory's entries fit within maxBytes. See Catalog.Prune.
func Prune(dir string, maxBytes int64) (PruneReport, error) {
	c, err := Open(dir)
	if err != nil {
		return PruneReport{}, err
	}
	return c.Prune(maxBytes)
}

// Prune evicts catalog entries, least-recently-used first, until the
// total size of the remaining entries is at most maxBytes. Entry age is
// the file modification time: OpenIndex touches entries it serves, so a
// hot warm-start set survives while abandoned per-shard or per-config
// entries from old datasets go first. maxBytes <= 0 removes every entry.
// Only entry files (*.hydraidx) are considered; anything else in the
// directory is left alone. A missing file mid-prune (a concurrent prune or
// rebuild) is skipped, not an error.
func (c *Catalog) Prune(maxBytes int64) (PruneReport, error) {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*"+entrySuffix))
	if err != nil {
		return PruneReport{}, fmt.Errorf("catalog: listing %s: %w", c.dir, err)
	}
	type entry struct {
		path  string
		size  int64
		mtime int64
	}
	entries := make([]entry, 0, len(matches))
	var total int64
	for _, path := range matches {
		fi, err := os.Stat(path)
		if err != nil || fi.IsDir() {
			continue
		}
		entries = append(entries, entry{path: path, size: fi.Size(), mtime: fi.ModTime().UnixNano()})
		total += fi.Size()
	}
	// Oldest first; ties break on name so a prune is deterministic.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mtime != entries[j].mtime {
			return entries[i].mtime < entries[j].mtime
		}
		return strings.Compare(entries[i].path, entries[j].path) < 0
	})
	rep := PruneReport{}
	for _, e := range entries {
		if maxBytes > 0 && total <= maxBytes {
			rep.Kept++
			rep.KeptBytes += e.size
			continue
		}
		if err := os.Remove(e.path); err != nil {
			if os.IsNotExist(err) {
				total -= e.size
				continue
			}
			return rep, fmt.Errorf("catalog: pruning %s: %w", e.path, err)
		}
		rep.Removed++
		rep.FreedBytes += e.size
		total -= e.size
	}
	return rep, nil
}
