package catalog

import (
	"fmt"
	"time"

	"hydra/internal/core"
)

// WarmupEntry is the outcome of hydrating one method during Warmup. Exactly
// one of Result/Err is meaningful: Err is set when the method is unknown or
// both loading and rebuilding failed, otherwise Result carries the index
// and whether it came from the catalog (Hit) or a fresh build.
type WarmupEntry struct {
	Name   string
	Result OpenResult
	Err    error
}

// Warmup hydrates the named methods, fanning the work across up to workers
// goroutines (0 or 1 runs serially). With a catalog, each method goes
// through OpenOrBuild: a valid entry is loaded, anything else is built and
// — when persistable — saved for the next boot. c may be nil, in which
// case every method is built in memory and nothing persists (a cold-only
// warmup). Entries come back in names order, one per requested method,
// with per-method errors recorded rather than aborting the batch: a
// long-running server should come up serving the methods that work and
// report the ones that do not.
//
// The BuildContext is shared across workers (its helpers are safe for
// concurrent use), so the dataset fingerprint and the δ-ε histogram are
// computed once per warmup, not once per method.
func Warmup(c *Catalog, names []string, ctx *core.BuildContext, workers int) []WarmupEntry {
	out := make([]WarmupEntry, len(names))
	hydrate := func(i int) {
		name := names[i]
		spec, ok := core.LookupMethod(name)
		if !ok {
			out[i] = WarmupEntry{Name: name, Err: fmt.Errorf("catalog: unknown method %q", name)}
			return
		}
		if c == nil {
			start := time.Now()
			built, err := spec.Build(ctx)
			if err != nil {
				out[i] = WarmupEntry{Name: name, Err: err}
				return
			}
			out[i] = WarmupEntry{Name: name, Result: OpenResult{
				Method:       built.Method,
				Store:        built.Store,
				BuildSeconds: time.Since(start).Seconds(),
			}}
			return
		}
		res, err := c.OpenOrBuild(spec, ctx)
		out[i] = WarmupEntry{Name: name, Result: res, Err: err}
	}
	core.FanOut(len(names), workers, hydrate)
	return out
}
