package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the core data structures.

func TestKNNSetQuickTopK(t *testing.T) {
	// Property: for arbitrary distance multisets, the set holds the k
	// smallest values (as a multiset of distances).
	f := func(raw []float32, kSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := 1 + int(kSeed)%10
		s := NewKNNSet(k)
		dists := make([]float64, len(raw))
		for i, v := range raw {
			d := math.Abs(float64(v))
			dists[i] = d
			s.Offer(i, d)
		}
		sort.Float64s(dists)
		got := s.Sorted()
		want := k
		if len(raw) < k {
			want = len(raw)
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist-dists[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKNNSetQuickWorstIsMax(t *testing.T) {
	// Property: Worst() always equals the max of the held distances when
	// full, +Inf otherwise.
	f := func(raw []float32) bool {
		k := 5
		s := NewKNNSet(k)
		for i, v := range raw {
			s.Offer(i, math.Abs(float64(v)))
			if s.Full() {
				maxHeld := 0.0
				for _, nb := range s.Sorted() {
					if nb.Dist > maxHeld {
						maxHeld = nb.Dist
					}
				}
				if math.Abs(s.Worst()-maxHeld) > 1e-12 {
					return false
				}
			} else if !math.IsInf(s.Worst(), 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuickQuantileMonotone(t *testing.T) {
	// Property: quantiles are monotone in p and bounded by the sample
	// extremes.
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		dists := make([]float64, len(raw))
		for i, v := range raw {
			dists[i] = math.Abs(float64(v))
		}
		h := NewHistogramFromDistances(dists)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q := h.Quantile(p)
			if q < prev-1e-12 {
				return false
			}
			prev = q
		}
		sort.Float64s(dists)
		return h.Quantile(0) == dists[0] && h.Quantile(1) == dists[len(dists)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuickCDFInverse(t *testing.T) {
	// Property: CDF(Quantile(p)) >= p (up to sample granularity).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(500)
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = rng.Float64() * 100
		}
		h := NewHistogramFromDistances(dists)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			if got := h.CDF(h.Quantile(p)); got < p-2.0/float64(n) {
				t.Fatalf("trial %d: CDF(Quantile(%v)) = %v", trial, p, got)
			}
		}
	}
}

func TestRDeltaQuickMonotone(t *testing.T) {
	// Property: r_δ is non-increasing in both δ and n.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(200)
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = rng.Float64() * 50
		}
		h := NewHistogramFromDistances(dists)
		prev := math.Inf(1)
		for _, d := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
			r := h.RDelta(d, 1000)
			if r > prev+1e-12 {
				t.Fatalf("trial %d: RDelta not monotone in delta", trial)
			}
			prev = r
		}
		prevN := math.Inf(1)
		for _, size := range []int{10, 100, 1000, 100000} {
			r := h.RDelta(0.9, size)
			if r > prevN+1e-12 {
				t.Fatalf("trial %d: RDelta not monotone in n", trial)
			}
			prevN = r
		}
	}
}
