package core

import (
	"container/heap"
)

// TreeCursor is the per-query view of a hierarchical index that the generic
// engine drives. A tree method (DSTree, iSAX2+) implements Begin(query) to
// precompute its query-side summarisation once, then hands back a cursor.
//
// All distances exchanged with the engine are actual Euclidean distances
// (not squared): the ε-relaxation divides by (1+ε) in distance space.
type TreeCursor interface {
	// Roots returns the root node(s) of the index.
	Roots() []NodeRef
	// MinDist returns the lower-bounding distance from the query to node n.
	MinDist(n NodeRef) float64
	// IsLeaf reports whether n is a leaf.
	IsLeaf(n NodeRef) bool
	// Children returns the children of internal node n.
	Children(n NodeRef) []NodeRef
	// ScanLeaf computes the true distance from the query to every series in
	// leaf n, invoking visit for each. limit supplies the current pruning
	// threshold so implementations can early-abandon; they may report a
	// distance larger than the true one when it exceeds limit().
	ScanLeaf(n NodeRef, limit func() float64, visit func(id int, dist float64))
}

// NodeRef identifies a node; implementations use their own node pointers.
// Values must be usable as map keys (the engine deduplicates leaf visits).
type NodeRef interface{}

// nodeItem is a priority-queue entry ordered by lower-bound distance.
type nodeItem struct {
	node NodeRef
	lb   float64
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].lb < q[j].lb }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// SearchTree runs the paper's search algorithms over any hierarchical index
// exposed as a TreeCursor.
//
//   - ModeExact implements Algorithm 1 (optimal exact NN search via a
//     priority queue of lower bounds, seeded by an ng-approximate descent).
//   - ModeNG visits up to q.NProbe leaves in best-first order and stops.
//   - ModeEpsilon implements Algorithm 2 with δ=1: pruning compares lower
//     bounds against bsf/(1+ε).
//   - ModeDeltaEpsilon additionally stops early once
//     bsf <= (1+ε)·r_δ(Q), with r_δ estimated by hist (which may be nil,
//     in which case the stop never triggers, matching δ=1).
//
// The engine generalises Algorithm 2 to k >= 1 by using the k-th best
// distance as bsf, exactly as the paper's implementations do.
func SearchTree(cur TreeCursor, q Query, hist *DistanceHistogram, datasetSize int) Result {
	kset := NewKNNSet(q.K)
	res := Result{}
	epsFactor := q.epsilonFactor()

	rDelta := 0.0 // bsf <= 0 never holds: the stop is disabled by default
	if q.Mode == ModeDeltaEpsilon && q.Delta < 1 && hist != nil {
		rDelta = hist.RDelta(q.Delta, datasetSize)
	}
	stopDist := (1 + q.Epsilon) * rDelta // early-stop threshold on bsf

	pq := &nodeQueue{}
	heap.Init(pq)
	visited := make(map[NodeRef]struct{})

	scan := func(n NodeRef) {
		if _, ok := visited[n]; ok {
			return
		}
		visited[n] = struct{}{}
		cur.ScanLeaf(n, kset.Worst, func(id int, dist float64) {
			res.DistCalcs++
			kset.Offer(id, dist)
		})
		res.LeavesVisited++
	}

	// ng-approximate seeding descent (Algorithm 1 line 6): follow the most
	// promising child from the best root down to one leaf.
	roots := cur.Roots()
	if len(roots) > 0 {
		best := roots[0]
		bestLB := cur.MinDist(best)
		for _, r := range roots[1:] {
			if lb := cur.MinDist(r); lb < bestLB {
				best, bestLB = r, lb
			}
		}
		n := best
		for !cur.IsLeaf(n) {
			children := cur.Children(n)
			if len(children) == 0 {
				break
			}
			c := children[0]
			cLB := cur.MinDist(c)
			for _, cc := range children[1:] {
				if lb := cur.MinDist(cc); lb < cLB {
					c, cLB = cc, lb
				}
			}
			n = c
		}
		if cur.IsLeaf(n) {
			scan(n)
		}
	}
	if q.Mode == ModeNG && res.LeavesVisited >= q.NProbe {
		res.Neighbors = kset.Sorted()
		return res
	}
	if q.Mode == ModeDeltaEpsilon && kset.Full() && kset.Worst() <= stopDist {
		res.Neighbors = kset.Sorted()
		return res
	}

	for _, r := range roots {
		heap.Push(pq, nodeItem{node: r, lb: cur.MinDist(r)})
	}

	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		res.NodesPopped++
		if it.lb > kset.Worst()/epsFactor {
			break // all remaining nodes have larger lower bounds
		}
		if cur.IsLeaf(it.node) {
			scan(it.node)
			if q.Mode == ModeNG && res.LeavesVisited >= q.NProbe {
				break
			}
			if q.Mode == ModeDeltaEpsilon && kset.Full() && kset.Worst() <= stopDist {
				break
			}
			continue
		}
		for _, c := range cur.Children(it.node) {
			lb := cur.MinDist(c)
			if lb < kset.Worst()/epsFactor {
				heap.Push(pq, nodeItem{node: c, lb: lb})
			}
		}
	}
	res.Neighbors = kset.Sorted()
	return res
}
