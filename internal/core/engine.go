package core

import (
	"container/heap"
	"time"
)

// TreeCursor is the per-query view of a hierarchical index that the generic
// engine drives. A tree method (DSTree, iSAX2+) implements Begin(query) to
// precompute its query-side summarisation once, then hands back a cursor.
//
// All distances exchanged with the engine are actual Euclidean distances
// (not squared): the ε-relaxation divides by (1+ε) in distance space.
type TreeCursor interface {
	// Roots returns the root node(s) of the index.
	Roots() []NodeRef
	// MinDist returns the lower-bounding distance from the query to node n.
	MinDist(n NodeRef) float64
	// IsLeaf reports whether n is a leaf.
	IsLeaf(n NodeRef) bool
	// Children returns the children of internal node n.
	Children(n NodeRef) []NodeRef
	// ScanLeaf computes the true distance from the query to every series in
	// leaf n, invoking visit for each. limit supplies the current pruning
	// threshold so implementations can early-abandon; they may report a
	// distance larger than the true one when it exceeds limit().
	ScanLeaf(n NodeRef, limit func() float64, visit func(id int, dist float64))
}

// NodeRef identifies a node; implementations use their own node pointers.
// Values must be usable as map keys (the engine deduplicates leaf visits).
type NodeRef interface{}

// BatchTreeCursor is an optional TreeCursor extension for cursors that can
// lower-bound several nodes in one kernel call (precomputed region bounds
// scored through internal/kernel). When a cursor implements it, the engine
// scores all children of a popped node — and all roots — through MinDists
// instead of per-node MinDist calls.
type BatchTreeCursor interface {
	TreeCursor
	// MinDists writes MinDist(nodes[i]) to out[i] for every node
	// (len(out) >= len(nodes)). Values must be bit-identical to per-node
	// MinDist calls: the engine treats the two paths as interchangeable.
	MinDists(nodes []NodeRef, out []float64)
}

// lbScratch reuses one bound buffer across the expansions of a traversal.
type lbScratch struct {
	lbs []float64
}

// minDists scores nodes through the cursor's batch path when available,
// falling back to per-node MinDist. The returned slice is valid until the
// next call.
func (s *lbScratch) minDists(cur TreeCursor, nodes []NodeRef) []float64 {
	if cap(s.lbs) < len(nodes) {
		s.lbs = make([]float64, len(nodes))
	}
	out := s.lbs[:len(nodes)]
	if bc, ok := cur.(BatchTreeCursor); ok {
		bc.MinDists(nodes, out)
		return out
	}
	for i, n := range nodes {
		out[i] = cur.MinDist(n)
	}
	return out
}

// nodeItem is a priority-queue entry ordered by lower-bound distance.
type nodeItem struct {
	node NodeRef
	lb   float64
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].lb < q[j].lb }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// SearchTree runs the paper's search algorithms over any hierarchical index
// exposed as a TreeCursor.
//
//   - ModeExact implements Algorithm 1 (optimal exact NN search via a
//     priority queue of lower bounds, seeded by an ng-approximate descent).
//   - ModeNG visits up to q.NProbe leaves in best-first order and stops.
//   - ModeEpsilon implements Algorithm 2 with δ=1: pruning compares lower
//     bounds against bsf/(1+ε).
//   - ModeDeltaEpsilon additionally stops early once
//     bsf <= (1+ε)·r_δ(Q), with r_δ estimated by hist (which may be nil,
//     in which case the stop never triggers, matching δ=1).
//
// The engine generalises Algorithm 2 to k >= 1 by using the k-th best
// distance as bsf, exactly as the paper's implementations do.
func SearchTree(cur TreeCursor, q Query, hist *DistanceHistogram, datasetSize int) Result {
	kset := NewKNNSet(q.K)
	res := Result{}
	epsFactor := q.epsilonFactor()

	rDelta := 0.0 // bsf <= 0 never holds: the stop is disabled by default
	if q.Mode == ModeDeltaEpsilon && q.Delta < 1 && hist != nil {
		rDelta = hist.RDelta(q.Delta, datasetSize)
	}
	stopDist := (1 + q.Epsilon) * rDelta // early-stop threshold on bsf

	pq := &nodeQueue{}
	heap.Init(pq)
	visited := make(map[NodeRef]struct{})

	scan := func(n NodeRef) {
		if _, ok := visited[n]; ok {
			return
		}
		visited[n] = struct{}{}
		var began time.Time
		if q.Obs != nil {
			began = time.Now()
		}
		cur.ScanLeaf(n, kset.Worst, func(id int, dist float64) {
			res.DistCalcs++
			kset.Offer(id, dist)
		})
		if q.Obs != nil {
			q.Obs.ObserveRefine(time.Since(began))
		}
		res.LeavesVisited++
	}

	// ng-approximate seeding descent (Algorithm 1 line 6): follow the most
	// promising child from the best root down to one leaf. Sibling bounds
	// are scored in one batched call per level.
	var sc lbScratch
	roots := cur.Roots()
	if len(roots) > 0 {
		lbs := sc.minDists(cur, roots)
		best, bestLB := roots[0], lbs[0]
		for i, r := range roots[1:] {
			if lb := lbs[i+1]; lb < bestLB {
				best, bestLB = r, lb
			}
		}
		n := best
		for !cur.IsLeaf(n) {
			children := cur.Children(n)
			if len(children) == 0 {
				break
			}
			lbs = sc.minDists(cur, children)
			c, cLB := children[0], lbs[0]
			for i, cc := range children[1:] {
				if lb := lbs[i+1]; lb < cLB {
					c, cLB = cc, lb
				}
			}
			n = c
		}
		if cur.IsLeaf(n) {
			scan(n)
		}
	}
	if q.Mode == ModeNG && res.LeavesVisited >= q.NProbe {
		res.Neighbors = kset.Sorted()
		return res
	}
	if q.Mode == ModeDeltaEpsilon && kset.Full() && kset.Worst() <= stopDist {
		res.Neighbors = kset.Sorted()
		return res
	}

	rootLBs := sc.minDists(cur, roots)
	for i, r := range roots {
		heap.Push(pq, nodeItem{node: r, lb: rootLBs[i]})
	}

	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		res.NodesPopped++
		if it.lb > kset.Worst()/epsFactor {
			break // all remaining nodes have larger lower bounds
		}
		if cur.IsLeaf(it.node) {
			scan(it.node)
			if q.Mode == ModeNG && res.LeavesVisited >= q.NProbe {
				break
			}
			if q.Mode == ModeDeltaEpsilon && kset.Full() && kset.Worst() <= stopDist {
				break
			}
			continue
		}
		children := cur.Children(it.node)
		lbs := sc.minDists(cur, children)
		for i, c := range children {
			if lb := lbs[i]; lb < kset.Worst()/epsFactor {
				heap.Push(pq, nodeItem{node: c, lb: lb})
			}
		}
	}
	res.Neighbors = kset.Sorted()
	return res
}
