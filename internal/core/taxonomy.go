package core

import "fmt"

// Guarantee is the leaf of the paper's taxonomy (Figure 1) that a query
// configuration falls into.
type Guarantee int

const (
	// GuaranteeNG: no deterministic or probabilistic error bound.
	GuaranteeNG Guarantee = iota
	// GuaranteeDeltaEpsilon: ε error bound holding with probability δ < 1.
	GuaranteeDeltaEpsilon
	// GuaranteeEpsilon: deterministic ε error bound (δ = 1, ε > 0).
	GuaranteeEpsilon
	// GuaranteeExact: correct and complete answers (δ = 1, ε = 0).
	GuaranteeExact
)

// String names the guarantee class.
func (g Guarantee) String() string {
	switch g {
	case GuaranteeNG:
		return "ng-approximate"
	case GuaranteeDeltaEpsilon:
		return "delta-epsilon-approximate"
	case GuaranteeEpsilon:
		return "epsilon-approximate"
	case GuaranteeExact:
		return "exact"
	default:
		return fmt.Sprintf("Guarantee(%d)", int(g))
	}
}

// Classify maps a (δ, ε) configuration onto the taxonomy: δ = 1 collapses
// δ-ε-approximate to ε-approximate, and ε = 0 collapses further to exact
// (paper Section 2: "when δ = 1, a δ-ε-approximate method becomes
// ε-approximate, and when ε = 0, an ε-approximate method becomes exact").
func Classify(delta, epsilon float64) Guarantee {
	if delta < 1 {
		return GuaranteeDeltaEpsilon
	}
	if epsilon > 0 {
		return GuaranteeEpsilon
	}
	return GuaranteeExact
}

// ClassifyQuery maps a Query onto the taxonomy.
func ClassifyQuery(q Query) Guarantee {
	switch q.Mode {
	case ModeExact:
		return GuaranteeExact
	case ModeNG:
		return GuaranteeNG
	case ModeEpsilon:
		return Classify(1, q.Epsilon)
	case ModeDeltaEpsilon:
		return Classify(q.Delta, q.Epsilon)
	default:
		return GuaranteeNG
	}
}

// Capability records what a method supports — one row of the paper's
// Table 1, with "•" marking the paper's (and our) modifications to the
// original methods.
type Capability struct {
	Name           string
	Exact          bool
	NG             bool
	Epsilon        bool
	DeltaEpsilon   bool
	DiskResident   bool
	Representation string
	Modified       bool // approximate guarantees added by the paper/this repo
}

// Capabilities returns the method capability matrix (paper Table 1).
func Capabilities() []Capability {
	return []Capability{
		{Name: "HNSW", NG: true, Representation: "raw (graph)"},
		{Name: "NSG", NG: true, Representation: "raw (graph)"},
		{Name: "IMI", NG: true, Representation: "OPQ", DiskResident: true},
		{Name: "QALSH", DeltaEpsilon: true, Representation: "signatures"},
		{Name: "SRS", DeltaEpsilon: true, Representation: "signatures"},
		{Name: "VA+file", Exact: true, NG: true, Epsilon: true, DeltaEpsilon: true, Representation: "DFT", DiskResident: true, Modified: true},
		{Name: "Flann", NG: true, Representation: "raw (trees)"},
		{Name: "DSTree", Exact: true, NG: true, Epsilon: true, DeltaEpsilon: true, Representation: "EAPCA", DiskResident: true, Modified: true},
		{Name: "HD-index", NG: true, Representation: "Hilbert keys", DiskResident: true},
		{Name: "iSAX2+", Exact: true, NG: true, Epsilon: true, DeltaEpsilon: true, Representation: "iSAX", DiskResident: true, Modified: true},
	}
}

// SupportsMode reports whether the capability row allows the given mode.
func (c Capability) SupportsMode(m Mode) bool {
	switch m {
	case ModeExact:
		return c.Exact
	case ModeNG:
		return c.NG
	case ModeEpsilon:
		return c.Epsilon
	case ModeDeltaEpsilon:
		return c.DeltaEpsilon
	default:
		return false
	}
}
