package core

import (
	"hydra/internal/kernel"
	"hydra/internal/series"
)

// LeafScratch holds the reusable buffers a TreeCursor needs to refine a
// gathered leaf cluster through the blocked distance kernel. Cursors
// embed one by value; the zero value is ready to use.
type LeafScratch struct {
	cands [][]float32
	d2s   []float64
}

// Refine scores every series of a leaf cluster against q with the active
// kernel and reports each through visit, exactly once and in id order,
// preserving the one-DistCalc-per-candidate accounting of the
// per-candidate loop it replaces.
//
// The early-abandon limit is snapshotted once at leaf entry rather than
// refreshed per candidate. That is answer-preserving: an abandoned
// candidate's reported distance exceeds the snapshot, which is at least
// the evolving k-NN worst, so the engine's result set rejects it exactly
// as it would have rejected the per-candidate abandoned value; every
// candidate that could enter the result set still yields its exact
// distance.
func (s *LeafScratch) Refine(q series.Series, ids []int, raw []series.Series, limit func() float64, visit func(id int, dist float64)) {
	n := len(raw)
	if cap(s.cands) < n {
		s.cands = make([][]float32, n)
		s.d2s = make([]float64, n)
	}
	cands := s.cands[:n]
	d2s := s.d2s[:n]
	for i, r := range raw {
		cands[i] = r
	}
	lim := limit()
	kernel.SquaredDistsGather(q, cands, lim*lim, d2s)
	for i, d2 := range d2s {
		visit(ids[i], kernel.Distance(d2))
	}
}
