package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hydra/internal/kernel"
	"hydra/internal/series"
)

// DistanceHistogram approximates F(·), the overall distance distribution of
// a dataset: the CDF of the distance between a random query point and a
// random data point. The δ-ε-approximate extension (paper Algorithm 2,
// following Ciaccia & Patella's PAC-NN) uses it to estimate r_δ(Q): the
// largest radius around the query that is empty with probability δ.
//
// The paper approximates r_δ "with density histograms on a 100K data series
// sample"; here the histogram is built from sampled pairwise distances and
// r_δ is derived analytically: for n independent points, the ball of radius
// r is empty with probability (1−F(r))^n >= δ, so
//
//	r_δ = F⁻¹(1 − δ^{1/n}).
type DistanceHistogram struct {
	sorted []float64 // ascending sample distances
}

// BuildHistogram samples `pairs` random (a, b) pairs from the dataset and
// records their distances. Sampling is deterministic under seed.
func BuildHistogram(data *series.Dataset, pairs int, seed int64) *DistanceHistogram {
	if data.Size() < 2 {
		panic("core: histogram needs at least 2 series")
	}
	if pairs <= 0 {
		panic(fmt.Sprintf("core: invalid histogram sample size %d", pairs))
	}
	rng := rand.New(rand.NewSource(seed))
	dists := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		a := rng.Intn(data.Size())
		b := rng.Intn(data.Size())
		for b == a {
			b = rng.Intn(data.Size())
		}
		dists = append(dists, kernel.Dist(data.At(a), data.At(b)))
	}
	sort.Float64s(dists)
	return &DistanceHistogram{sorted: dists}
}

// NewHistogramFromDistances builds a histogram directly from precomputed
// distances (used by tests and by methods that already have samples).
func NewHistogramFromDistances(dists []float64) *DistanceHistogram {
	if len(dists) == 0 {
		panic("core: empty distance sample")
	}
	sorted := append([]float64(nil), dists...)
	sort.Float64s(sorted)
	return &DistanceHistogram{sorted: sorted}
}

// Quantile returns the empirical p-quantile of the sampled distances,
// clamping p to [0,1].
func (h *DistanceHistogram) Quantile(p float64) float64 {
	if p <= 0 {
		return h.sorted[0]
	}
	if p >= 1 {
		return h.sorted[len(h.sorted)-1]
	}
	pos := p * float64(len(h.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(h.sorted) {
		return h.sorted[len(h.sorted)-1]
	}
	return h.sorted[lo]*(1-frac) + h.sorted[lo+1]*frac
}

// CDF returns the empirical F(r): the fraction of sampled distances <= r.
func (h *DistanceHistogram) CDF(r float64) float64 {
	idx := sort.SearchFloat64s(h.sorted, math.Nextafter(r, math.Inf(1)))
	return float64(idx) / float64(len(h.sorted))
}

// RDelta estimates r_δ for a dataset of n series: the radius such that a
// ball of that radius around a random query is empty with probability δ.
// δ=0 returns +Inf (the stopping condition always fires immediately) and
// δ>=1 returns 0 (never fires), matching the semantics of Algorithm 2.
func (h *DistanceHistogram) RDelta(delta float64, n int) float64 {
	if delta <= 0 {
		return math.Inf(1)
	}
	if delta >= 1 {
		return 0
	}
	if n < 1 {
		n = 1
	}
	p := 1 - math.Pow(delta, 1/float64(n))
	return h.Quantile(p)
}
