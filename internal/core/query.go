// Package core defines the query model shared by every similarity search
// method in the benchmark, the generic hierarchical-index search engine
// implementing the paper's Algorithms 1 and 2, the distance-distribution
// histogram used to estimate r_δ(Q), and the taxonomy of guarantees
// (paper Figure 1 and Table 1).
//
// Method.Search is required to be safe for concurrent use (see the Method
// doc comment): the engine in this package keeps all search state — node
// queue, visit set, k-NN heap, counters — local to each SearchTree call,
// and index packages keep their query-side summarisations in per-call
// cursors, which is what lets eval.ParallelRun fan one workload across
// worker goroutines without changing any result.
package core

import (
	"fmt"
	"math"
	"time"

	"hydra/internal/series"
	"hydra/internal/storage"
)

// Mode selects the query-answering regime (paper Section 2 definitions).
type Mode int

const (
	// ModeExact returns the true k nearest neighbours (δ=1, ε=0).
	ModeExact Mode = iota
	// ModeNG is ng-approximate search: no guarantees; tree methods visit up
	// to NProbe leaves, other methods use their native heuristics.
	ModeNG
	// ModeEpsilon is ε-approximate search: every returned distance is at
	// most (1+ε) times the true k-th NN distance (δ=1).
	ModeEpsilon
	// ModeDeltaEpsilon is δ-ε-approximate search: the ε bound holds with
	// probability at least δ.
	ModeDeltaEpsilon
)

// String names the mode as used in reports.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeNG:
		return "ng"
	case ModeEpsilon:
		return "epsilon"
	case ModeDeltaEpsilon:
		return "delta-epsilon"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SearchObserver receives timing attributions from inside a search, letting
// the serve path decompose a request's latency into per-shard and
// kernel-refinement time without the methods knowing anything about tracing.
// Implementations must be safe for concurrent use: sharded searches call
// from fan-out worker goroutines.
type SearchObserver interface {
	// ObserveShard reports that shard spent d of wall-clock time answering
	// its slice of the query.
	ObserveShard(shard int, d time.Duration)
	// ObserveRefine reports d spent in kernel-facing refinement (raw-series
	// distance computation), summed across however many batches ran.
	ObserveRefine(d time.Duration)
}

// Query is a k-NN whole-matching similarity query.
type Query struct {
	Series  series.Series
	K       int
	Mode    Mode
	Epsilon float64 // relative error bound ε >= 0 (ModeEpsilon / ModeDeltaEpsilon)
	Delta   float64 // probability δ in [0,1] (ModeDeltaEpsilon)
	NProbe  int     // leaves/lists/candidates to probe (ModeNG); method-specific unit

	// Obs, when non-nil, receives per-shard and refinement timing from the
	// layers that can measure it. It is ignored by Validate and by cache
	// keys; a nil Obs costs searches a single pointer test.
	Obs SearchObserver
}

// Validate checks parameter sanity for the selected mode.
func (q Query) Validate() error {
	if len(q.Series) == 0 {
		return fmt.Errorf("core: empty query series")
	}
	if q.K <= 0 {
		return fmt.Errorf("core: k must be positive, got %d", q.K)
	}
	switch q.Mode {
	case ModeExact:
	case ModeNG:
		if q.NProbe <= 0 {
			return fmt.Errorf("core: ng-approximate query needs NProbe >= 1, got %d", q.NProbe)
		}
	case ModeEpsilon:
		if q.Epsilon < 0 {
			return fmt.Errorf("core: epsilon must be >= 0, got %v", q.Epsilon)
		}
	case ModeDeltaEpsilon:
		if q.Epsilon < 0 {
			return fmt.Errorf("core: epsilon must be >= 0, got %v", q.Epsilon)
		}
		if q.Delta < 0 || q.Delta > 1 {
			return fmt.Errorf("core: delta must be in [0,1], got %v", q.Delta)
		}
	default:
		return fmt.Errorf("core: unknown mode %d", int(q.Mode))
	}
	return nil
}

// epsilonFactor returns the pruning relaxation 1+ε for the mode (1 when the
// mode does not use ε).
func (q Query) epsilonFactor() float64 {
	switch q.Mode {
	case ModeEpsilon, ModeDeltaEpsilon:
		return 1 + q.Epsilon
	default:
		return 1
	}
}

// Neighbor is one answer of a k-NN query.
type Neighbor struct {
	ID   int     // identifier of the data series within its dataset
	Dist float64 // Euclidean distance to the query
}

// Result carries the answers plus per-query work counters.
type Result struct {
	Neighbors []Neighbor
	// DistCalcs counts true (raw-data) distance computations.
	DistCalcs int64
	// LeavesVisited counts leaf nodes (or candidate lists) scanned.
	LeavesVisited int
	// NodesPopped counts priority-queue pops in tree searches.
	NodesPopped int
	// IO is the raw-data access activity charged during the query.
	IO storage.Stats
}

// Method is the uniform interface the harness drives. Every technique in
// the benchmark implements it.
//
// Concurrency contract: Search must be safe for concurrent use by multiple
// goroutines once the index is built. Implementations keep all per-query
// mutable state (query summarisations, candidate heaps, visit sets, work
// counters) in per-call values or cursors, and charge raw-data I/O to a
// per-query storage.SeriesStore.View so accounting never races. Building
// and mutating an index (Build, SetHistogram, inserts) is NOT covered by
// the contract and must not overlap with searches; the one index that
// refines itself at query time (ADS+, iSAX's adaptive mode) serialises its
// searches internally to stay within the contract.
type Method interface {
	// Name returns the method's display name (e.g. "DSTree").
	Name() string
	// Search answers a k-NN query according to its mode. It must be safe
	// for concurrent use (see the interface comment).
	Search(q Query) (Result, error)
	// Footprint estimates the in-memory size of the index structure in
	// bytes (excluding the raw data when the method keeps it on disk).
	Footprint() int64
}

// KNNSet maintains the k best candidates seen so far as a bounded max-heap
// keyed on distance; the root is the current worst member, i.e. the pruning
// threshold once the set is full.
type KNNSet struct {
	k     int
	heap  []Neighbor // max-heap on Dist
	seen  map[int]struct{}
	dedup bool
}

// NewKNNSet creates a result set of capacity k that ignores duplicate IDs.
func NewKNNSet(k int) *KNNSet {
	if k <= 0 {
		panic(fmt.Sprintf("core: knn set capacity %d", k))
	}
	return &KNNSet{k: k, heap: make([]Neighbor, 0, k), seen: make(map[int]struct{}, k), dedup: true}
}

// Full reports whether k candidates are held.
func (s *KNNSet) Full() bool { return len(s.heap) == s.k }

// Len returns the number of candidates currently held.
func (s *KNNSet) Len() int { return len(s.heap) }

// Worst returns the current pruning threshold: the k-th best distance when
// full, +Inf otherwise.
func (s *KNNSet) Worst() float64 {
	if !s.Full() {
		return math.Inf(1)
	}
	return s.heap[0].Dist
}

// Offer inserts the candidate if it improves the set; returns true if the
// set changed. Duplicate IDs are ignored.
func (s *KNNSet) Offer(id int, dist float64) bool {
	if s.dedup {
		if _, ok := s.seen[id]; ok {
			return false
		}
	}
	if !s.Full() {
		s.heap = append(s.heap, Neighbor{ID: id, Dist: dist})
		s.up(len(s.heap) - 1)
		s.seen[id] = struct{}{}
		return true
	}
	if dist >= s.heap[0].Dist {
		return false
	}
	delete(s.seen, s.heap[0].ID)
	s.heap[0] = Neighbor{ID: id, Dist: dist}
	s.down(0)
	s.seen[id] = struct{}{}
	return true
}

func (s *KNNSet) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].Dist >= s.heap[i].Dist {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *KNNSet) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s.heap[l].Dist > s.heap[big].Dist {
			big = l
		}
		if r < n && s.heap[r].Dist > s.heap[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}

// Sorted returns the candidates ordered by increasing distance.
func (s *KNNSet) Sorted() []Neighbor {
	out := make([]Neighbor, len(s.heap))
	copy(out, s.heap)
	// Simple insertion sort: k is small (<= a few hundred).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist < out[j-1].Dist; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
