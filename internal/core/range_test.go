package core

import (
	"math"
	"math/rand"
	"testing"

	"hydra/internal/series"
)

func TestRangeQueryValidate(t *testing.T) {
	good := RangeQuery{Series: []float32{1, 2}, Radius: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	for i, q := range []RangeQuery{
		{Radius: 1},
		{Series: []float32{1}, Radius: -1},
		{Series: []float32{1}, Radius: 1, Epsilon: -1},
	} {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
}

func bruteRange(data *series.Dataset, q series.Series, r float64) []Neighbor {
	var out []Neighbor
	for i := 0; i < data.Size(); i++ {
		if d := series.Dist(q, data.At(i)); d <= r {
			out = append(out, Neighbor{ID: i, Dist: d})
		}
	}
	sortNeighbors(out)
	return out
}

func TestSearchTreeRangeExact(t *testing.T) {
	for _, loose := range []float64{1.0, 0.5} {
		tree, q := mockSetup(t, 500, 8, 8, loose, 71)
		// Pick a radius that captures a handful of series.
		all := bruteRange(tree.data, q, math.Inf(1))
		r := all[10].Dist
		want := bruteRange(tree.data, q, r)
		got := SearchTreeRange(tree, RangeQuery{Series: q, Radius: r})
		if len(got.Neighbors) != len(want) {
			t.Fatalf("loose=%v: %d results, want %d", loose, len(got.Neighbors), len(want))
		}
		for i := range want {
			if got.Neighbors[i].ID != want[i].ID {
				t.Fatalf("loose=%v rank %d: id %d want %d", loose, i, got.Neighbors[i].ID, want[i].ID)
			}
		}
	}
}

func TestSearchTreeRangeEpsilonSuperset(t *testing.T) {
	tree, q := mockSetup(t, 400, 8, 8, 0.7, 73)
	all := bruteRange(tree.data, q, math.Inf(1))
	r := all[5].Dist
	exact := bruteRange(tree.data, q, r)
	got := SearchTreeRange(tree, RangeQuery{Series: q, Radius: r, Epsilon: 0.5})
	// Every exact result present; every returned result within (1+ε)r.
	ids := map[int]struct{}{}
	for _, nb := range got.Neighbors {
		ids[nb.ID] = struct{}{}
		if nb.Dist > 1.5*r+1e-9 {
			t.Fatalf("result %v outside relaxed radius %v", nb.Dist, 1.5*r)
		}
	}
	for _, nb := range exact {
		if _, ok := ids[nb.ID]; !ok {
			t.Fatalf("exact member %d missing from relaxed result", nb.ID)
		}
	}
}

func TestSearchTreeRangeEmpty(t *testing.T) {
	tree, q := mockSetup(t, 100, 8, 8, 1.0, 79)
	got := SearchTreeRange(tree, RangeQuery{Series: q, Radius: 1e-9})
	if len(got.Neighbors) != 0 {
		t.Errorf("tiny radius returned %d results", len(got.Neighbors))
	}
	if got.LeavesVisited > 2 {
		t.Errorf("tiny radius visited %d leaves", got.LeavesVisited)
	}
}

func TestSearchTreeRangePrunes(t *testing.T) {
	tree, q := mockSetup(t, 2048, 8, 8, 1.0, 83)
	all := bruteRange(tree.data, q, math.Inf(1))
	got := SearchTreeRange(tree, RangeQuery{Series: q, Radius: all[3].Dist})
	if got.LeavesVisited >= 2048/8/2 {
		t.Errorf("range search visited %d leaves — no pruning", got.LeavesVisited)
	}
}

func TestIncrementalExactOrder(t *testing.T) {
	tree, q := mockSetup(t, 300, 8, 8, 0.6, 89)
	want := bruteKNN(tree.data, q, 300)
	inc := NewIncremental(tree, 0)
	for i := 0; i < 20; i++ {
		nb, ok := inc.Next()
		if !ok {
			t.Fatalf("iterator exhausted at %d", i)
		}
		if math.Abs(nb.Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: dist %v want %v", i, nb.Dist, want[i].Dist)
		}
	}
	calcs, leaves := inc.Stats()
	if calcs == 0 || leaves == 0 {
		t.Error("work counters empty")
	}
}

func TestIncrementalExhaustsExactly(t *testing.T) {
	tree, _ := mockSetup(t, 64, 8, 8, 1.0, 97)
	inc := NewIncremental(tree, 0)
	seen := map[int]struct{}{}
	count := 0
	for {
		nb, ok := inc.Next()
		if !ok {
			break
		}
		if _, dup := seen[nb.ID]; dup {
			t.Fatalf("duplicate id %d", nb.ID)
		}
		seen[nb.ID] = struct{}{}
		count++
	}
	if count != 64 {
		t.Errorf("iterator yielded %d of 64", count)
	}
}

func TestIncrementalLazyWork(t *testing.T) {
	// Pulling 1 neighbour must cost far less than pulling all of them.
	tree, _ := mockSetup(t, 2048, 8, 8, 1.0, 101)
	inc := NewIncremental(tree, 0)
	inc.Next()
	calls1, _ := inc.Stats()
	for {
		if _, ok := inc.Next(); !ok {
			break
		}
	}
	callsAll, _ := inc.Stats()
	if calls1 >= callsAll/2 {
		t.Errorf("first pull cost %d of %d total distance calcs — not lazy", calls1, callsAll)
	}
}

func TestIncrementalEpsilonRelaxed(t *testing.T) {
	tree, q := mockSetup(t, 500, 8, 8, 0.8, 103)
	want := bruteKNN(tree.data, q, 1)
	inc := NewIncremental(tree, 1.0)
	nb, ok := inc.Next()
	if !ok {
		t.Fatal("no neighbour")
	}
	if nb.Dist > 2*want[0].Dist+1e-9 {
		t.Errorf("relaxed first neighbour %v exceeds (1+eps)*true %v", nb.Dist, 2*want[0].Dist)
	}
}

func TestProgressiveReachesExact(t *testing.T) {
	tree, q := mockSetup(t, 600, 8, 8, 0.7, 107)
	want := bruteKNN(tree.data, q, 5)
	var updates []ProgressiveUpdate
	res := SearchTreeProgressive(tree, Query{Series: q, K: 5, Mode: ModeExact}, func(u ProgressiveUpdate) bool {
		updates = append(updates, u)
		return true
	})
	if len(updates) == 0 {
		t.Fatal("no progressive updates")
	}
	last := updates[len(updates)-1]
	if !last.Final {
		t.Error("last update not marked final")
	}
	for i := range want {
		if math.Abs(res.Neighbors[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("final result rank %d: %v want %v", i, res.Neighbors[i].Dist, want[i].Dist)
		}
	}
	// Intermediate answers never get worse.
	for i := 1; i < len(updates); i++ {
		prev := updates[i-1].Neighbors[len(updates[i-1].Neighbors)-1].Dist
		cur := updates[i].Neighbors[len(updates[i].Neighbors)-1].Dist
		if cur > prev+1e-9 {
			t.Fatalf("update %d regressed: %v -> %v", i, prev, cur)
		}
	}
}

func TestProgressiveEarlyStop(t *testing.T) {
	tree, q := mockSetup(t, 2048, 8, 8, 0.9, 109)
	count := 0
	res := SearchTreeProgressive(tree, Query{Series: q, K: 3, Mode: ModeExact}, func(u ProgressiveUpdate) bool {
		count++
		return false // stop after the first update
	})
	if count != 1 {
		t.Errorf("%d updates after early stop", count)
	}
	if len(res.Neighbors) != 3 {
		t.Errorf("early-stopped search returned %d results", len(res.Neighbors))
	}
}

func TestIncrementalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(300)
		tree, q := mockSetup(t, n, 8, 4+rng.Intn(12), 0.3+rng.Float64()*0.7, int64(200+trial))
		want := bruteKNN(tree.data, q, n)
		inc := NewIncremental(tree, 0)
		for i := 0; i < 10 && i < n; i++ {
			nb, ok := inc.Next()
			if !ok {
				t.Fatalf("trial %d: exhausted early", trial)
			}
			if math.Abs(nb.Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v want %v", trial, i, nb.Dist, want[i].Dist)
			}
		}
	}
}
