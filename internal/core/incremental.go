package core

import (
	"container/heap"
	"math"
)

// This file implements the two research directions the paper's discussion
// calls out as follow-up work to the δ-ε extensions:
//
//   - incremental approximate k-NN: "returning the neighbors one by one as
//     they are found", instead of all at once — implemented by Incremental,
//     a pull-based iterator built on the classic Hjaltason–Samet ranked
//     traversal (the same optimal ordering Algorithm 1 relies on);
//   - progressive query answering: "return intermediate results with
//     increasing accuracy until the exact answers are found" — implemented
//     by SearchTreeProgressive, which invokes a callback every time the
//     best-so-far answer improves, tagging the final invocation as exact.

// Incremental iterates the neighbours of a query in increasing distance
// order, lazily: each Next() does only the work needed to certify the next
// neighbour. With eps > 0 certification is relaxed to the (1+ε) bound.
type Incremental struct {
	cur     TreeCursor
	eps     float64
	pq      *nodeQueue // unexplored nodes by lower bound
	cand    *resultHeap
	sc      lbScratch
	distOps int64
	leaves  int
}

// resultHeap is a min-heap of confirmed-but-unreported candidates.
type resultHeap []Neighbor

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Dist < h[j].Dist }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewIncremental starts an incremental traversal. eps = 0 yields the exact
// neighbour order; eps > 0 allows each reported neighbour to be up to
// (1+ε) farther than the true next one, in exchange for less work.
func NewIncremental(cur TreeCursor, eps float64) *Incremental {
	inc := &Incremental{cur: cur, eps: eps, pq: &nodeQueue{}, cand: &resultHeap{}}
	heap.Init(inc.pq)
	heap.Init(inc.cand)
	roots := cur.Roots()
	lbs := inc.sc.minDists(cur, roots)
	for i, r := range roots {
		heap.Push(inc.pq, nodeItem{node: r, lb: lbs[i]})
	}
	return inc
}

// Next returns the next neighbour in (approximately) increasing distance
// order. ok is false when the index is exhausted.
func (inc *Incremental) Next() (nb Neighbor, ok bool) {
	relax := 1 + inc.eps
	for {
		// A candidate is certified once no unexplored node could contain
		// anything closer (relaxed by 1+ε).
		if inc.cand.Len() > 0 {
			head := (*inc.cand)[0]
			if inc.pq.Len() == 0 || (*inc.pq)[0].lb >= head.Dist/relax {
				return heap.Pop(inc.cand).(Neighbor), true
			}
		}
		if inc.pq.Len() == 0 {
			return Neighbor{}, false
		}
		it := heap.Pop(inc.pq).(nodeItem)
		if inc.cur.IsLeaf(it.node) {
			inc.leaves++
			inc.cur.ScanLeaf(it.node, func() float64 { return math.Inf(1) }, func(id int, dist float64) {
				inc.distOps++
				heap.Push(inc.cand, Neighbor{ID: id, Dist: dist})
			})
			continue
		}
		children := inc.cur.Children(it.node)
		lbs := inc.sc.minDists(inc.cur, children)
		for i, c := range children {
			heap.Push(inc.pq, nodeItem{node: c, lb: lbs[i]})
		}
	}
}

// Stats reports the work done so far.
func (inc *Incremental) Stats() (distCalcs int64, leavesVisited int) {
	return inc.distOps, inc.leaves
}

// ProgressiveUpdate is one intermediate answer of a progressive search.
type ProgressiveUpdate struct {
	Neighbors []Neighbor // current best k, sorted
	// LeavesVisited at the time of the update.
	LeavesVisited int
	// Final marks the last update: the result is exact.
	Final bool
}

// SearchTreeProgressive runs an exact k-NN search that reports every
// improvement of the best-so-far answer through onUpdate, ending with a
// Final update carrying the exact result. Returning false from onUpdate
// stops the search early (the last delivered answer is then ng-approximate).
func SearchTreeProgressive(cur TreeCursor, q Query, onUpdate func(ProgressiveUpdate) bool) Result {
	kset := NewKNNSet(q.K)
	res := Result{}
	pq := &nodeQueue{}
	heap.Init(pq)
	var sc lbScratch
	roots := cur.Roots()
	rootLBs := sc.minDists(cur, roots)
	for i, r := range roots {
		heap.Push(pq, nodeItem{node: r, lb: rootLBs[i]})
	}
	stopped := false
	for pq.Len() > 0 && !stopped {
		it := heap.Pop(pq).(nodeItem)
		res.NodesPopped++
		if it.lb > kset.Worst() {
			break
		}
		if cur.IsLeaf(it.node) {
			improved := false
			cur.ScanLeaf(it.node, kset.Worst, func(id int, dist float64) {
				res.DistCalcs++
				if kset.Offer(id, dist) {
					improved = true
				}
			})
			res.LeavesVisited++
			if improved && kset.Full() {
				if !onUpdate(ProgressiveUpdate{Neighbors: kset.Sorted(), LeavesVisited: res.LeavesVisited}) {
					stopped = true
				}
			}
			continue
		}
		children := cur.Children(it.node)
		lbs := sc.minDists(cur, children)
		for i, c := range children {
			if lb := lbs[i]; lb < kset.Worst() {
				heap.Push(pq, nodeItem{node: c, lb: lb})
			}
		}
	}
	res.Neighbors = kset.Sorted()
	if !stopped {
		onUpdate(ProgressiveUpdate{Neighbors: res.Neighbors, LeavesVisited: res.LeavesVisited, Final: true})
	}
	return res
}
