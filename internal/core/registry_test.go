package core

import (
	"io"
	"testing"

	"hydra/internal/series"
)

// The core test binary imports no index packages, so the global registry
// holds only what these tests put in it.

func dummySpec(name string, rank int) MethodSpec {
	return MethodSpec{
		Name: name,
		Rank: rank,
		Build: func(ctx *BuildContext) (BuildResult, error) {
			return BuildResult{}, nil
		},
	}
}

func TestRegistryOrderAndLookup(t *testing.T) {
	RegisterMethod(dummySpec("zz-b", 2))
	RegisterMethod(dummySpec("zz-a", 1))
	disk := dummySpec("zz-c", 3)
	disk.DiskResident = true
	RegisterMethod(disk)

	names := MethodNames()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	if !(idx["zz-a"] < idx["zz-b"] && idx["zz-b"] < idx["zz-c"]) {
		t.Errorf("rank order not respected: %v", names)
	}
	if _, ok := LookupMethod("zz-a"); !ok {
		t.Error("registered method not found")
	}
	if _, ok := LookupMethod("never-registered"); ok {
		t.Error("lookup invented a method")
	}
	var diskNames []string
	for _, n := range DiskMethodNames() {
		if n == "zz-c" {
			diskNames = append(diskNames, n)
		}
		if n == "zz-a" || n == "zz-b" {
			t.Errorf("%s is not disk-resident", n)
		}
	}
	if len(diskNames) != 1 {
		t.Error("disk-resident method missing from DiskMethodNames")
	}
}

func TestRegisterMethodValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { RegisterMethod(MethodSpec{}) })
	mustPanic("nil build", func() { RegisterMethod(MethodSpec{Name: "zz-nobuild"}) })
	mustPanic("save without load", func() {
		s := dummySpec("zz-halfpersist", 1)
		s.Save = func(m Method, w io.Writer) error { return nil }
		RegisterMethod(s)
	})
	RegisterMethod(dummySpec("zz-dup", 1))
	mustPanic("duplicate", func() { RegisterMethod(dummySpec("zz-dup", 1)) })
}

func TestBuildContextHelpers(t *testing.T) {
	d := series.NewDataset(8)
	for i := 0; i < 40; i++ {
		s := make(series.Series, 8)
		for j := range s {
			s[j] = float32(i + j)
		}
		d.Append(s)
	}
	ctx := &BuildContext{Data: d, LeafCapacity: 16, HistogramPairs: 64, HistogramSeed: 5}
	if got := ctx.NewStore().Size(); got != 40 {
		t.Errorf("store size %d", got)
	}
	h1 := ctx.Histogram()
	if h1 != ctx.Histogram() {
		t.Error("histogram not memoized")
	}
	// A fresh context with the same parameters produces an identical
	// distribution — the property that makes loaded indexes equivalent.
	ctx2 := &BuildContext{Data: d, LeafCapacity: 16, HistogramPairs: 64, HistogramSeed: 5}
	if h1.Quantile(0.5) != ctx2.Histogram().Quantile(0.5) {
		t.Error("histogram not deterministic across contexts")
	}
	if ctx.ConfigKey() != ctx2.ConfigKey() {
		t.Error("equal contexts disagree on ConfigKey")
	}
	ctx2.LeafCapacity = 17
	if ctx.ConfigKey() == ctx2.ConfigKey() {
		t.Error("ConfigKey ignores LeafCapacity")
	}
}

func TestSpecPersistable(t *testing.T) {
	s := dummySpec("zz-p", 1)
	if s.Persistable() {
		t.Error("spec without hooks claims persistable")
	}
	s.Save = func(m Method, w io.Writer) error { return nil }
	s.Load = func(ctx *BuildContext, r io.Reader) (BuildResult, error) { return BuildResult{}, nil }
	if !s.Persistable() {
		t.Error("spec with hooks not persistable")
	}
}

func TestSpecCapabilities(t *testing.T) {
	s := dummySpec("zz-caps", 1)
	if got := s.Capabilities(); len(got) != 0 {
		t.Errorf("flagless spec has capabilities %v", got)
	}
	s.Exact, s.NG, s.Epsilon, s.DeltaEpsilon, s.DiskResident = true, true, true, true, true
	want := []string{"exact", "ng", "epsilon", "delta-epsilon", "disk-resident"}
	got := s.Capabilities()
	if len(got) != len(want) {
		t.Fatalf("capabilities = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("capabilities = %v, want %v (stable order)", got, want)
		}
	}
}

func TestPersistableMethodNames(t *testing.T) {
	p := dummySpec("zz-persist", 4)
	p.Save = func(m Method, w io.Writer) error { return nil }
	p.Load = func(ctx *BuildContext, r io.Reader) (BuildResult, error) { return BuildResult{}, nil }
	RegisterMethod(p)
	RegisterMethod(dummySpec("zz-memonly", 5))
	names := PersistableMethodNames()
	var sawPersist, sawMem bool
	for _, n := range names {
		if n == "zz-persist" {
			sawPersist = true
		}
		if n == "zz-memonly" {
			sawMem = true
		}
	}
	if !sawPersist {
		t.Error("persistable spec missing from PersistableMethodNames")
	}
	if sawMem {
		t.Error("hookless spec listed as persistable")
	}
}
