package core

import (
	"container/heap"
	"fmt"

	"hydra/internal/storage"
)

// RangeQuery is an r-range whole-matching query (paper Definition 2): it
// retrieves every series within distance Radius of the query. The
// ε-approximate relaxation (Definition 5) permits results up to
// (1+ε)·Radius; pruning uses Radius directly, so with ε > 0 the engine
// still returns every true result plus possibly some within the relaxed
// bound.
type RangeQuery struct {
	Series  []float32
	Radius  float64
	Epsilon float64 // ε >= 0; 0 = exact range search
}

// Validate checks parameter sanity.
func (q RangeQuery) Validate() error {
	if len(q.Series) == 0 {
		return fmt.Errorf("core: empty range query series")
	}
	if q.Radius < 0 {
		return fmt.Errorf("core: negative radius %v", q.Radius)
	}
	if q.Epsilon < 0 {
		return fmt.Errorf("core: negative epsilon %v", q.Epsilon)
	}
	return nil
}

// RangeResult carries range-query answers and work counters.
type RangeResult struct {
	Neighbors     []Neighbor // all matches, sorted by distance
	DistCalcs     int64
	LeavesVisited int
	IO            storage.Stats
}

// SearchTreeRange answers a range query over any hierarchical index: a
// node is visited iff its lower bound is at most the radius (Definition 2
// semantics); within leaves, every series with distance <= (1+ε)·Radius is
// reported. With ε = 0 the result is exact and complete.
func SearchTreeRange(cur TreeCursor, q RangeQuery) RangeResult {
	res := RangeResult{}
	accept := (1 + q.Epsilon) * q.Radius
	pq := &nodeQueue{}
	heap.Init(pq)
	var sc lbScratch
	roots := cur.Roots()
	rootLBs := sc.minDists(cur, roots)
	for i, r := range roots {
		heap.Push(pq, nodeItem{node: r, lb: rootLBs[i]})
	}
	limit := func() float64 { return accept }
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.lb > q.Radius {
			break
		}
		if cur.IsLeaf(it.node) {
			cur.ScanLeaf(it.node, limit, func(id int, dist float64) {
				res.DistCalcs++
				if dist <= accept {
					res.Neighbors = append(res.Neighbors, Neighbor{ID: id, Dist: dist})
				}
			})
			res.LeavesVisited++
			continue
		}
		children := cur.Children(it.node)
		lbs := sc.minDists(cur, children)
		for i, c := range children {
			if lb := lbs[i]; lb <= q.Radius {
				heap.Push(pq, nodeItem{node: c, lb: lb})
			}
		}
	}
	sortNeighbors(res.Neighbors)
	return res
}

// sortNeighbors orders by increasing distance (insertion sort: result sets
// are small relative to the collection).
func sortNeighbors(nbrs []Neighbor) {
	for i := 1; i < len(nbrs); i++ {
		for j := i; j > 0 && nbrs[j].Dist < nbrs[j-1].Dist; j-- {
			nbrs[j], nbrs[j-1] = nbrs[j-1], nbrs[j]
		}
	}
}
