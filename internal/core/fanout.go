package core

import "sync"

// FanOut runs fn(i) for every i in [0, n), fanning the calls across at
// most workers goroutines. workers <= 1 runs everything serially on the
// calling goroutine, so measured serial paths stay goroutine-free. fn is
// invoked exactly once per index and must be safe for concurrent calls
// with distinct arguments; FanOut returns once every call has finished.
func FanOut(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
