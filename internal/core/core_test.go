package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hydra/internal/series"
)

func TestQueryValidate(t *testing.T) {
	q := series.Series{1, 2, 3}
	cases := []struct {
		name string
		in   Query
		ok   bool
	}{
		{"exact ok", Query{Series: q, K: 1, Mode: ModeExact}, true},
		{"empty series", Query{K: 1, Mode: ModeExact}, false},
		{"zero k", Query{Series: q, Mode: ModeExact}, false},
		{"ng needs nprobe", Query{Series: q, K: 1, Mode: ModeNG}, false},
		{"ng ok", Query{Series: q, K: 1, Mode: ModeNG, NProbe: 2}, true},
		{"negative eps", Query{Series: q, K: 1, Mode: ModeEpsilon, Epsilon: -1}, false},
		{"eps ok", Query{Series: q, K: 1, Mode: ModeEpsilon, Epsilon: 2}, true},
		{"delta out of range", Query{Series: q, K: 1, Mode: ModeDeltaEpsilon, Delta: 1.5}, false},
		{"delta ok", Query{Series: q, K: 1, Mode: ModeDeltaEpsilon, Delta: 0.9}, true},
		{"bad mode", Query{Series: q, K: 1, Mode: Mode(42)}, false},
	}
	for _, c := range cases {
		err := c.in.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeExact.String() != "exact" || ModeNG.String() != "ng" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestKNNSetBasics(t *testing.T) {
	s := NewKNNSet(3)
	if s.Full() {
		t.Error("fresh set should not be full")
	}
	if !math.IsInf(s.Worst(), 1) {
		t.Error("Worst of non-full set should be +Inf")
	}
	s.Offer(1, 5)
	s.Offer(2, 3)
	s.Offer(3, 7)
	if !s.Full() || s.Worst() != 7 {
		t.Errorf("Full=%v Worst=%v", s.Full(), s.Worst())
	}
	// Improvement replaces the worst.
	if !s.Offer(4, 1) {
		t.Error("improving offer rejected")
	}
	if s.Worst() != 5 {
		t.Errorf("Worst = %v, want 5", s.Worst())
	}
	// Non-improving offer rejected.
	if s.Offer(5, 100) {
		t.Error("non-improving offer accepted")
	}
	got := s.Sorted()
	want := []Neighbor{{4, 1}, {2, 3}, {1, 5}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestKNNSetDedup(t *testing.T) {
	s := NewKNNSet(2)
	s.Offer(7, 1)
	if s.Offer(7, 0.5) {
		t.Error("duplicate id accepted")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestKNNSetMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		n := k + rng.Intn(200)
		dists := make([]float64, n)
		s := NewKNNSet(k)
		for i := 0; i < n; i++ {
			dists[i] = rng.Float64() * 100
			s.Offer(i, dists[i])
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		got := s.Sorted()
		if len(got) != k {
			t.Fatalf("trial %d: got %d results", trial, len(got))
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Dist-sorted[i]) > 1e-12 {
				t.Fatalf("trial %d: rank %d dist %v want %v", trial, i, got[i].Dist, sorted[i])
			}
		}
	}
}

func TestClassify(t *testing.T) {
	if Classify(0.5, 1) != GuaranteeDeltaEpsilon {
		t.Error("delta<1 should be delta-epsilon")
	}
	if Classify(1, 1) != GuaranteeEpsilon {
		t.Error("delta=1 eps>0 should be epsilon")
	}
	if Classify(1, 0) != GuaranteeExact {
		t.Error("delta=1 eps=0 should be exact")
	}
}

func TestClassifyQuery(t *testing.T) {
	q := series.Series{1}
	cases := []struct {
		in   Query
		want Guarantee
	}{
		{Query{Series: q, K: 1, Mode: ModeExact}, GuaranteeExact},
		{Query{Series: q, K: 1, Mode: ModeNG, NProbe: 1}, GuaranteeNG},
		{Query{Series: q, K: 1, Mode: ModeEpsilon, Epsilon: 1}, GuaranteeEpsilon},
		{Query{Series: q, K: 1, Mode: ModeEpsilon, Epsilon: 0}, GuaranteeExact},
		{Query{Series: q, K: 1, Mode: ModeDeltaEpsilon, Epsilon: 1, Delta: 0.5}, GuaranteeDeltaEpsilon},
		{Query{Series: q, K: 1, Mode: ModeDeltaEpsilon, Epsilon: 1, Delta: 1}, GuaranteeEpsilon},
		{Query{Series: q, K: 1, Mode: ModeDeltaEpsilon, Epsilon: 0, Delta: 1}, GuaranteeExact},
	}
	for i, c := range cases {
		if got := ClassifyQuery(c.in); got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}

func TestCapabilitiesMatchTable1(t *testing.T) {
	caps := Capabilities()
	byName := map[string]Capability{}
	for _, c := range caps {
		byName[c.Name] = c
	}
	// The three data series methods support everything and live on disk.
	for _, name := range []string{"DSTree", "iSAX2+", "VA+file"} {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("%s missing from capability matrix", name)
		}
		if !(c.Exact && c.NG && c.Epsilon && c.DeltaEpsilon && c.DiskResident && c.Modified) {
			t.Errorf("%s capabilities wrong: %+v", name, c)
		}
	}
	// LSH methods: delta-epsilon only.
	for _, name := range []string{"SRS", "QALSH"} {
		c := byName[name]
		if c.Exact || c.NG || c.Epsilon || !c.DeltaEpsilon {
			t.Errorf("%s capabilities wrong: %+v", name, c)
		}
	}
	// Graph methods: ng only, in-memory.
	for _, name := range []string{"HNSW", "NSG"} {
		c := byName[name]
		if !c.NG || c.Exact || c.DiskResident {
			t.Errorf("%s capabilities wrong: %+v", name, c)
		}
	}
	if !byName["IMI"].DiskResident {
		t.Error("IMI should support disk-resident data")
	}
}

func TestSupportsMode(t *testing.T) {
	c := Capability{Exact: true, NG: true}
	if !c.SupportsMode(ModeExact) || !c.SupportsMode(ModeNG) {
		t.Error("supported modes rejected")
	}
	if c.SupportsMode(ModeEpsilon) || c.SupportsMode(Mode(9)) {
		t.Error("unsupported modes accepted")
	}
}

func TestHistogramQuantileAndCDF(t *testing.T) {
	h := NewHistogramFromDistances([]float64{1, 2, 3, 4, 5})
	if h.Quantile(0) != 1 || h.Quantile(1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := h.CDF(3); got != 0.6 {
		t.Errorf("CDF(3) = %v, want 0.6", got)
	}
	if got := h.CDF(0.5); got != 0 {
		t.Errorf("CDF(0.5) = %v, want 0", got)
	}
	if got := h.CDF(10); got != 1 {
		t.Errorf("CDF(10) = %v, want 1", got)
	}
}

func TestRDeltaSemantics(t *testing.T) {
	h := NewHistogramFromDistances([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if !math.IsInf(h.RDelta(0, 100), 1) {
		t.Error("delta=0 should give +Inf radius")
	}
	if h.RDelta(1, 100) != 0 {
		t.Error("delta=1 should give 0 radius")
	}
	// Monotone: higher delta => smaller radius (harder emptiness demand).
	r1 := h.RDelta(0.5, 100)
	r2 := h.RDelta(0.99, 100)
	if r2 > r1 {
		t.Errorf("RDelta not monotone: δ=0.5 -> %v, δ=0.99 -> %v", r1, r2)
	}
	// Larger dataset => smaller radius (more points make emptiness harder).
	ra := h.RDelta(0.9, 10)
	rb := h.RDelta(0.9, 10000)
	if rb > ra {
		t.Errorf("RDelta should shrink with n: n=10 -> %v, n=10000 -> %v", ra, rb)
	}
}

func TestBuildHistogramFromDataset(t *testing.T) {
	d := series.NewDataset(4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		s := make(series.Series, 4)
		for j := range s {
			s[j] = float32(rng.NormFloat64())
		}
		d.Append(s)
	}
	h := BuildHistogram(d, 500, 1)
	if len(h.sorted) != 500 {
		t.Fatalf("sample count %d", len(h.sorted))
	}
	for _, v := range h.sorted {
		if v <= 0 {
			t.Fatal("distances must be positive for distinct random series")
		}
	}
	// Deterministic under seed.
	h2 := BuildHistogram(d, 500, 1)
	if h.Quantile(0.5) != h2.Quantile(0.5) {
		t.Error("histogram not deterministic")
	}
}

func TestGuaranteeString(t *testing.T) {
	if GuaranteeExact.String() != "exact" || GuaranteeNG.String() != "ng-approximate" {
		t.Error("guarantee names wrong")
	}
}
