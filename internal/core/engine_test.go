package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hydra/internal/series"
)

// mockTree is a balanced binary tree over a dataset, partitioned by id
// ranges, with per-node lower bounds computed from the true minimum
// distance in the node scaled down by a looseness factor — a valid lower
// bound by construction, letting the engine tests verify exactness and
// ε/δ semantics against brute force.
type mockTree struct {
	data   *series.Dataset
	q      series.Series
	loose  float64 // lb = loose * trueMin, loose in (0,1]
	root   *mockNode
	scans  int
	charge func(int)
}

type mockNode struct {
	lo, hi   int // series id range [lo,hi)
	children []*mockNode
}

func buildMockTree(data *series.Dataset, leafSize int) *mockNode {
	var build func(lo, hi int) *mockNode
	build = func(lo, hi int) *mockNode {
		n := &mockNode{lo: lo, hi: hi}
		if hi-lo <= leafSize {
			return n
		}
		mid := (lo + hi) / 2
		n.children = []*mockNode{build(lo, mid), build(mid, hi)}
		return n
	}
	return build(0, data.Size())
}

func (t *mockTree) Roots() []NodeRef { return []NodeRef{t.root} }

func (t *mockTree) MinDist(n NodeRef) float64 {
	node := n.(*mockNode)
	best := math.Inf(1)
	for i := node.lo; i < node.hi; i++ {
		if d := series.Dist(t.q, t.data.At(i)); d < best {
			best = d
		}
	}
	return best * t.loose
}

func (t *mockTree) IsLeaf(n NodeRef) bool { return len(n.(*mockNode).children) == 0 }

func (t *mockTree) Children(n NodeRef) []NodeRef {
	node := n.(*mockNode)
	out := make([]NodeRef, len(node.children))
	for i, c := range node.children {
		out[i] = c
	}
	return out
}

func (t *mockTree) ScanLeaf(n NodeRef, limit func() float64, visit func(id int, dist float64)) {
	node := n.(*mockNode)
	t.scans++
	for i := node.lo; i < node.hi; i++ {
		visit(i, series.Dist(t.q, t.data.At(i)))
	}
}

func mockSetup(t *testing.T, n, length, leafSize int, loose float64, seed int64) (*mockTree, series.Series) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := series.NewDataset(length)
	for i := 0; i < n; i++ {
		s := make(series.Series, length)
		for j := range s {
			s[j] = float32(rng.NormFloat64())
		}
		data.Append(s)
	}
	q := make(series.Series, length)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	tree := &mockTree{data: data, q: q, loose: loose}
	tree.root = buildMockTree(data, leafSize)
	return tree, q
}

func bruteKNN(data *series.Dataset, q series.Series, k int) []Neighbor {
	out := make([]Neighbor, 0, data.Size())
	for i := 0; i < data.Size(); i++ {
		out = append(out, Neighbor{ID: i, Dist: series.Dist(q, data.At(i))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out[:k]
}

func TestSearchTreeExactMatchesBruteForce(t *testing.T) {
	for _, loose := range []float64{1.0, 0.7, 0.3} {
		tree, q := mockSetup(t, 300, 16, 8, loose, 5)
		for _, k := range []int{1, 5, 20} {
			res := SearchTree(tree, Query{Series: q, K: k, Mode: ModeExact}, nil, 300)
			want := bruteKNN(tree.data, q, k)
			if len(res.Neighbors) != k {
				t.Fatalf("loose=%v k=%d: %d results", loose, k, len(res.Neighbors))
			}
			for i := range want {
				if math.Abs(res.Neighbors[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("loose=%v k=%d rank %d: %v vs %v", loose, k, i, res.Neighbors[i], want[i])
				}
			}
		}
	}
}

func TestSearchTreeExactPrunes(t *testing.T) {
	// With tight lower bounds (loose=1), the exact search must scan far
	// fewer leaves than the total.
	tree, q := mockSetup(t, 1024, 8, 8, 1.0, 7)
	res := SearchTree(tree, Query{Series: q, K: 1, Mode: ModeExact}, nil, 1024)
	totalLeaves := 1024 / 8
	if res.LeavesVisited >= totalLeaves/2 {
		t.Errorf("exact search visited %d of %d leaves — no pruning", res.LeavesVisited, totalLeaves)
	}
	if res.DistCalcs == 0 || res.NodesPopped == 0 {
		t.Error("work counters not recorded")
	}
}

func TestSearchTreeNGVisitsAtMostNProbe(t *testing.T) {
	tree, q := mockSetup(t, 512, 8, 8, 0.5, 11)
	for _, nprobe := range []int{1, 3, 10} {
		tree.scans = 0
		res := SearchTree(tree, Query{Series: q, K: 5, Mode: ModeNG, NProbe: nprobe}, nil, 512)
		if res.LeavesVisited > nprobe {
			t.Errorf("nprobe=%d: visited %d leaves", nprobe, res.LeavesVisited)
		}
		if len(res.Neighbors) == 0 {
			t.Errorf("nprobe=%d: no results", nprobe)
		}
	}
}

func TestSearchTreeNGAccuracyImprovesWithNProbe(t *testing.T) {
	tree, q := mockSetup(t, 800, 8, 4, 0.4, 13)
	want := bruteKNN(tree.data, q, 10)
	recall := func(nprobe int) float64 {
		res := SearchTree(tree, Query{Series: q, K: 10, Mode: ModeNG, NProbe: nprobe}, nil, 800)
		trueIDs := map[int]struct{}{}
		for _, w := range want {
			trueIDs[w.ID] = struct{}{}
		}
		hits := 0
		for _, nb := range res.Neighbors {
			if _, ok := trueIDs[nb.ID]; ok {
				hits++
			}
		}
		return float64(hits) / 10
	}
	r1, rAll := recall(1), recall(200)
	if rAll < r1 {
		t.Errorf("recall decreased with more probes: %v -> %v", r1, rAll)
	}
	if rAll < 0.999 {
		t.Errorf("visiting every leaf should find everything, recall=%v", rAll)
	}
}

func TestSearchTreeEpsilonGuarantee(t *testing.T) {
	// ε-approximate results must satisfy dist <= (1+ε) * true kth distance.
	for _, eps := range []float64{0.5, 1, 3} {
		for trial := int64(0); trial < 5; trial++ {
			tree, q := mockSetup(t, 400, 8, 8, 0.6, 100+trial)
			k := 5
			res := SearchTree(tree, Query{Series: q, K: k, Mode: ModeEpsilon, Epsilon: eps}, nil, 400)
			want := bruteKNN(tree.data, q, k)
			bound := (1 + eps) * want[k-1].Dist
			for _, nb := range res.Neighbors {
				if nb.Dist > bound+1e-9 {
					t.Fatalf("eps=%v: result dist %v exceeds bound %v", eps, nb.Dist, bound)
				}
			}
		}
	}
}

func TestSearchTreeEpsilonZeroIsExact(t *testing.T) {
	tree, q := mockSetup(t, 300, 8, 8, 0.5, 23)
	resE := SearchTree(tree, Query{Series: q, K: 3, Mode: ModeEpsilon, Epsilon: 0}, nil, 300)
	want := bruteKNN(tree.data, q, 3)
	for i := range want {
		if math.Abs(resE.Neighbors[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("epsilon=0 rank %d: %v vs %v", i, resE.Neighbors[i].Dist, want[i].Dist)
		}
	}
}

func TestSearchTreeEpsilonReducesWork(t *testing.T) {
	tree, q := mockSetup(t, 2048, 8, 8, 0.9, 31)
	exact := SearchTree(tree, Query{Series: q, K: 1, Mode: ModeExact}, nil, 2048)
	approx := SearchTree(tree, Query{Series: q, K: 1, Mode: ModeEpsilon, Epsilon: 5}, nil, 2048)
	if approx.LeavesVisited > exact.LeavesVisited {
		t.Errorf("eps=5 visited %d leaves vs exact %d", approx.LeavesVisited, exact.LeavesVisited)
	}
}

func TestSearchTreeDeltaOneEqualsEpsilon(t *testing.T) {
	tree, q := mockSetup(t, 300, 8, 8, 0.5, 37)
	h := NewHistogramFromDistances([]float64{1, 2, 3})
	rd := SearchTree(tree, Query{Series: q, K: 3, Mode: ModeDeltaEpsilon, Epsilon: 1, Delta: 1}, h, 300)
	re := SearchTree(tree, Query{Series: q, K: 3, Mode: ModeEpsilon, Epsilon: 1}, nil, 300)
	for i := range re.Neighbors {
		if rd.Neighbors[i] != re.Neighbors[i] {
			t.Fatalf("delta=1 differs from epsilon mode at rank %d", i)
		}
	}
}

func TestSearchTreeDeltaEarlyStop(t *testing.T) {
	// A histogram of huge distances makes r_δ enormous, so the early stop
	// triggers after the first leaf — mimicking an easy query.
	tree, q := mockSetup(t, 2048, 8, 8, 1.0, 41)
	big := NewHistogramFromDistances([]float64{1e9, 1e9 + 1})
	res := SearchTree(tree, Query{Series: q, K: 1, Mode: ModeDeltaEpsilon, Epsilon: 0, Delta: 0.5}, big, 2048)
	if res.LeavesVisited > 1 {
		t.Errorf("huge r_delta should stop after first leaf, visited %d", res.LeavesVisited)
	}
	// A histogram of tiny distances makes r_δ ~ 0: search equals exact.
	tiny := NewHistogramFromDistances([]float64{1e-12, 2e-12})
	resTiny := SearchTree(tree, Query{Series: q, K: 1, Mode: ModeDeltaEpsilon, Epsilon: 0, Delta: 0.99}, tiny, 2048)
	want := bruteKNN(tree.data, q, 1)
	if math.Abs(resTiny.Neighbors[0].Dist-want[0].Dist) > 1e-9 {
		t.Errorf("tiny r_delta should behave exactly: %v vs %v", resTiny.Neighbors[0].Dist, want[0].Dist)
	}
}

func TestSearchTreeNilHistogramSafe(t *testing.T) {
	tree, q := mockSetup(t, 100, 8, 8, 0.5, 43)
	res := SearchTree(tree, Query{Series: q, K: 2, Mode: ModeDeltaEpsilon, Epsilon: 0.5, Delta: 0.5}, nil, 100)
	if len(res.Neighbors) != 2 {
		t.Fatalf("nil histogram search failed: %d results", len(res.Neighbors))
	}
}

func TestSearchTreeSingleLeafTree(t *testing.T) {
	tree, q := mockSetup(t, 10, 8, 16, 1.0, 47) // whole dataset in one leaf
	res := SearchTree(tree, Query{Series: q, K: 3, Mode: ModeExact}, nil, 10)
	want := bruteKNN(tree.data, q, 3)
	for i := range want {
		if res.Neighbors[i].ID != want[i].ID {
			t.Fatalf("rank %d: id %d want %d", i, res.Neighbors[i].ID, want[i].ID)
		}
	}
	if res.LeavesVisited != 1 {
		t.Errorf("visited %d leaves in a 1-leaf tree", res.LeavesVisited)
	}
}
