package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hydra/internal/series"
	"hydra/internal/storage"
)

// BuildContext carries everything a method needs to construct — or reopen —
// an index over one dataset. The harness derives one per build; specs pull
// out only what they use. Helpers are safe for concurrent use, so one
// context can be shared by a parallel multi-method build.
type BuildContext struct {
	// Data is the dataset being indexed.
	Data *series.Dataset
	// PageBytes is the page size for private paged stores (0 selects
	// storage.DefaultPageBytes).
	PageBytes int64
	// LeafCapacity is the harness's leaf-size budget for tree methods;
	// each spec interprets it in its own terms (ADS+, for example, builds
	// coarse leaves at 8x and refines down to it adaptively).
	LeafCapacity int
	// HistogramPairs and HistogramSeed parameterise the distance-
	// distribution histogram used by δ-ε-approximate search.
	HistogramPairs int
	HistogramSeed  int64

	histOnce sync.Once
	hist     *DistanceHistogram
	fpOnce   sync.Once
	fp       string
	subMu    sync.Mutex
	subs     map[[2]int]*BuildContext
}

// Sub returns a context over the series range [lo, hi) of this context's
// dataset, inheriting every build parameter. Sub-contexts are memoized per
// range, so a multi-method sharded build sharing one parent context also
// shares each shard's context — and therefore computes each shard's
// fingerprint and δ-ε histogram once, not once per method. The whole-range
// sub-context is the parent itself, which keeps a 1-shard build bit- and
// cache-key-identical to an unsharded one.
func (c *BuildContext) Sub(lo, hi int) *BuildContext {
	if lo == 0 && hi == c.Data.Size() {
		return c
	}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if c.subs == nil {
		c.subs = map[[2]int]*BuildContext{}
	}
	key := [2]int{lo, hi}
	if s := c.subs[key]; s != nil {
		return s
	}
	s := &BuildContext{
		Data:           c.Data.Slice(lo, hi),
		PageBytes:      c.PageBytes,
		LeafCapacity:   c.LeafCapacity,
		HistogramPairs: c.HistogramPairs,
		HistogramSeed:  c.HistogramSeed,
	}
	c.subs[key] = s
	return s
}

// NewStore returns a fresh private paged store over the context's dataset,
// so each method's I/O accounting stays independent.
func (c *BuildContext) NewStore() *storage.SeriesStore {
	return storage.NewSeriesStore(c.Data, c.PageBytes)
}

// Histogram lazily builds (once) and returns the dataset's distance
// histogram. Deterministic given (Data, HistogramPairs, HistogramSeed), so
// a rebuilt and a reloaded index see identical r_δ estimates.
func (c *BuildContext) Histogram() *DistanceHistogram {
	c.histOnce.Do(func() {
		c.hist = BuildHistogram(c.Data, c.HistogramPairs, c.HistogramSeed)
	})
	return c.hist
}

// DataFingerprint returns (and memoizes) the dataset's content address.
// Hashing is O(dataset bytes), so multi-method builds sharing one context
// pay for it once.
func (c *BuildContext) DataFingerprint() string {
	c.fpOnce.Do(func() {
		c.fp = c.Data.Fingerprint()
	})
	return c.fp
}

// ConfigKey canonically encodes every context parameter that shapes the
// built index. It participates in the catalog cache key: two contexts with
// equal ConfigKeys (over the same dataset) yield interchangeable indexes.
func (c *BuildContext) ConfigKey() string {
	return fmt.Sprintf("leaf=%d;pairs=%d;hseed=%d;page=%d",
		c.LeafCapacity, c.HistogramPairs, c.HistogramSeed, c.PageBytes)
}

// BuildResult is a constructed (or loaded) method plus the private store it
// charges raw-data I/O to (nil for purely in-memory methods).
type BuildResult struct {
	Method Method
	Store  *storage.SeriesStore
}

// MethodSpec is one method's self-description: its name, the query sweeps
// the harness may apply, how to build it, and — when the index structure
// round-trips through a snapshot — how to save and reopen it. Index
// packages register their specs in init(); the eval harness and the index
// catalog are driven entirely off the registry, so adding a method to the
// benchmark means registering a spec, nothing else.
type MethodSpec struct {
	// Name is the display name ("DSTree") and the registry key.
	Name string
	// Rank orders registry listings (MethodNames, experiment tables).
	Rank int
	// Capability flags consumed by the harness when deciding which query
	// sweeps (ng / δ-ε) apply and which methods join the on-disk figures.
	Exact        bool
	NG           bool
	Epsilon      bool
	DeltaEpsilon bool
	DiskResident bool
	// Build constructs the index from scratch.
	Build func(ctx *BuildContext) (BuildResult, error)
	// Save and Load are the optional persistence hooks: Save serialises
	// the index structure (never the raw data), Load reattaches a saved
	// structure to the context's dataset. Either both are set or neither.
	Save func(m Method, w io.Writer) error
	Load func(ctx *BuildContext, r io.Reader) (BuildResult, error)
	// FormatVersion names the snapshot format and participates in the
	// catalog cache key, so bumping it invalidates stale cache entries.
	FormatVersion int
	// ConfigString canonically describes the method-specific build
	// parameters Build applies beyond the BuildContext (typically a
	// rendering of the package's DefaultConfig). It participates in the
	// catalog cache key, so tuning a method's defaults invalidates its
	// cached indexes without a FormatVersion bump.
	ConfigString string
}

// Persistable reports whether the spec carries persistence hooks.
func (s MethodSpec) Persistable() bool { return s.Save != nil && s.Load != nil }

// Capabilities renders the spec's capability flags as the stable strings
// used by reports and the serving API: a subset of "exact", "ng",
// "epsilon", "delta-epsilon" and "disk-resident", in that order.
func (s MethodSpec) Capabilities() []string {
	var out []string
	if s.Exact {
		out = append(out, "exact")
	}
	if s.NG {
		out = append(out, "ng")
	}
	if s.Epsilon {
		out = append(out, "epsilon")
	}
	if s.DeltaEpsilon {
		out = append(out, "delta-epsilon")
	}
	if s.DiskResident {
		out = append(out, "disk-resident")
	}
	return out
}

var (
	regMu    sync.RWMutex
	registry = map[string]MethodSpec{}
)

// RegisterMethod adds a spec to the registry. It panics on an invalid or
// duplicate spec: registration happens in init() where a panic is an
// immediate, attributable programming error.
func RegisterMethod(spec MethodSpec) {
	if spec.Name == "" {
		panic("core: registering method with empty name")
	}
	if spec.Build == nil {
		panic(fmt.Sprintf("core: method %q has no Build func", spec.Name))
	}
	if (spec.Save == nil) != (spec.Load == nil) {
		panic(fmt.Sprintf("core: method %q must set both Save and Load or neither", spec.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[spec.Name]; dup {
		panic(fmt.Sprintf("core: method %q registered twice", spec.Name))
	}
	registry[spec.Name] = spec
}

// LookupMethod returns the spec registered under name.
func LookupMethod(name string) (MethodSpec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// RegisteredMethods returns every registered spec ordered by Rank (ties by
// name), the order experiment tables list methods in.
func RegisteredMethods() []MethodSpec {
	regMu.RLock()
	out := make([]MethodSpec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// MethodNames returns the registered names in registry order.
func MethodNames() []string {
	specs := RegisteredMethods()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// DiskMethodNames returns the registered disk-resident method names in
// registry order.
func DiskMethodNames() []string {
	var out []string
	for _, s := range RegisteredMethods() {
		if s.DiskResident {
			out = append(out, s.Name)
		}
	}
	return out
}

// PersistableMethodNames returns the registered methods that carry
// persistence hooks, in registry order — the set a warm start can hydrate
// from an index catalog instead of rebuilding.
func PersistableMethodNames() []string {
	var out []string
	for _, s := range RegisteredMethods() {
		if s.Persistable() {
			out = append(out, s.Name)
		}
	}
	return out
}
