// Package dataset generates the synthetic datasets and query workloads used
// by the benchmark.
//
// The paper evaluates on synthetic random-walk data ("Rand") plus four real
// collections (Sift1B, Deep1B image descriptors; Seismic earthquake
// recordings; SALD MRI series). The real data is not redistributable, so
// this package provides synthetic analogues that reproduce the structural
// property each real dataset contributes to the evaluation:
//
//   - Walk: a summing process with Gaussian(0,1) steps — exactly the
//     paper's Rand generator.
//   - Clustered: a Gaussian-mixture in R^n, mimicking learned image
//     descriptors (Sift/Deep): strong cluster structure, no neighbouring-
//     value correlation, hard for series trees, friendly to graphs/PQ.
//   - Seismic: AR(1) background noise with injected transient bursts,
//     mimicking earthquake recordings: heavy-tailed, locally correlated.
//   - Smooth: sums of a few low-frequency sinusoids plus light noise,
//     mimicking MRI series (SALD): highly compressible, so indexes prune
//     extremely well (the paper observes ~1% data access at MAP 1).
//
// Query workloads follow the paper: queries are generated from the same
// process as the data (Walk) or by adding progressively larger amounts of
// noise to series drawn from the dataset, producing a spectrum of easy to
// hard queries (Zoumpatianos et al., "Generating data series query
// workloads").
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"hydra/internal/series"
)

// Kind enumerates the generator families.
type Kind int

const (
	// KindWalk is the paper's Rand random-walk generator.
	KindWalk Kind = iota
	// KindClustered is the Sift/Deep-analogue Gaussian mixture.
	KindClustered
	// KindSeismic is the earthquake-recording analogue.
	KindSeismic
	// KindSmooth is the MRI (SALD) analogue.
	KindSmooth
)

// String returns the generator name used in reports.
func (k Kind) String() string {
	switch k {
	case KindWalk:
		return "Walk"
	case KindClustered:
		return "Clustered"
	case KindSeismic:
		return "Seismic"
	case KindSmooth:
		return "Smooth"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes a dataset to generate.
type Config struct {
	Kind     Kind
	Count    int   // number of series
	Length   int   // series length (dimensionality)
	Seed     int64 // RNG seed; same seed => identical dataset
	Clusters int   // cluster count for KindClustered (default 64)
	ZNorm    bool  // z-normalise every series after generation
}

// Generate produces a dataset according to cfg.
func Generate(cfg Config) *series.Dataset {
	if cfg.Count <= 0 || cfg.Length <= 0 {
		panic(fmt.Sprintf("dataset: invalid config count=%d length=%d", cfg.Count, cfg.Length))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := series.NewDataset(cfg.Length)
	switch cfg.Kind {
	case KindWalk:
		for i := 0; i < cfg.Count; i++ {
			d.Append(randomWalk(rng, cfg.Length))
		}
	case KindClustered:
		k := cfg.Clusters
		if k <= 0 {
			k = 64
		}
		centers := make([]series.Series, k)
		for c := range centers {
			centers[c] = gaussianVector(rng, cfg.Length, 4.0)
		}
		for i := 0; i < cfg.Count; i++ {
			c := centers[rng.Intn(k)]
			s := make(series.Series, cfg.Length)
			for j := range s {
				s[j] = c[j] + float32(rng.NormFloat64()*0.7)
			}
			d.Append(s)
		}
	case KindSeismic:
		for i := 0; i < cfg.Count; i++ {
			d.Append(seismicSeries(rng, cfg.Length))
		}
	case KindSmooth:
		for i := 0; i < cfg.Count; i++ {
			d.Append(smoothSeries(rng, cfg.Length))
		}
	default:
		panic(fmt.Sprintf("dataset: unknown kind %d", int(cfg.Kind)))
	}
	if cfg.ZNorm {
		d.ZNormalizeAll()
	}
	return d
}

// randomWalk builds one random-walk series: cumulative sum of N(0,1) steps.
func randomWalk(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	var acc float64
	for i := 0; i < n; i++ {
		acc += rng.NormFloat64()
		s[i] = float32(acc)
	}
	return s
}

// gaussianVector builds an isotropic Gaussian vector with the given scale.
func gaussianVector(rng *rand.Rand, n int, scale float64) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64() * scale)
	}
	return s
}

// seismicSeries builds AR(1) background noise with 1–3 injected transient
// bursts of damped oscillation (synthetic "events").
func seismicSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	const phi = 0.95
	var prev float64
	for i := 0; i < n; i++ {
		prev = phi*prev + rng.NormFloat64()*0.2
		s[i] = float32(prev)
	}
	events := 1 + rng.Intn(3)
	for e := 0; e < events; e++ {
		start := rng.Intn(n)
		amp := 2 + rng.Float64()*6
		freq := 0.2 + rng.Float64()*0.6
		decay := 0.02 + rng.Float64()*0.08
		for i := start; i < n; i++ {
			t := float64(i - start)
			s[i] += float32(amp * math.Exp(-decay*t) * math.Sin(freq*t))
		}
	}
	return s
}

// smoothSeries builds a sum of 2–4 low-frequency sinusoids plus light noise.
func smoothSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	waves := 2 + rng.Intn(3)
	type wave struct{ amp, freq, phase float64 }
	ws := make([]wave, waves)
	for w := range ws {
		ws[w] = wave{
			amp:   0.5 + rng.Float64()*2,
			freq:  (0.5 + rng.Float64()*3) * 2 * math.Pi / float64(n),
			phase: rng.Float64() * 2 * math.Pi,
		}
	}
	for i := 0; i < n; i++ {
		var v float64
		for _, w := range ws {
			v += w.amp * math.Sin(w.freq*float64(i)+w.phase)
		}
		s[i] = float32(v + rng.NormFloat64()*0.05)
	}
	return s
}

// Queries generates a workload of count queries for the given dataset.
//
// For Walk datasets the queries come from the same random-walk process with
// a different seed (the paper's synthetic workload). For every other kind,
// queries are dataset series perturbed with progressively larger amounts of
// Gaussian noise: query i gets noise standard deviation spanning
// [minNoise, maxNoise] across the workload, producing queries of graded
// difficulty as in the paper.
func Queries(data *series.Dataset, kind Kind, count int, seed int64) *series.Dataset {
	rng := rand.New(rand.NewSource(seed))
	q := series.NewDataset(data.Length())
	if kind == KindWalk {
		for i := 0; i < count; i++ {
			q.Append(randomWalk(rng, data.Length()))
		}
		return q
	}
	const minNoise, maxNoise = 0.01, 1.0
	for i := 0; i < count; i++ {
		frac := 0.0
		if count > 1 {
			frac = float64(i) / float64(count-1)
		}
		noise := minNoise + frac*(maxNoise-minNoise)
		base := data.At(rng.Intn(data.Size()))
		s := make(series.Series, data.Length())
		for j := range s {
			s[j] = base[j] + float32(rng.NormFloat64()*noise)
		}
		q.Append(s)
	}
	return q
}
