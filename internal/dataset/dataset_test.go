package dataset

import (
	"math"
	"testing"

	"hydra/internal/series"
)

func TestGenerateShapes(t *testing.T) {
	for _, kind := range []Kind{KindWalk, KindClustered, KindSeismic, KindSmooth} {
		d := Generate(Config{Kind: kind, Count: 20, Length: 64, Seed: 1})
		if d.Size() != 20 || d.Length() != 64 {
			t.Errorf("%v: shape %dx%d, want 20x64", kind, d.Size(), d.Length())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Kind: KindWalk, Count: 5, Length: 32, Seed: 99})
	b := Generate(Config{Kind: KindWalk, Count: 5, Length: 32, Seed: 99})
	for i := 0; i < a.Size(); i++ {
		for j := 0; j < a.Length(); j++ {
			if a.At(i)[j] != b.At(i)[j] {
				t.Fatalf("same seed diverges at [%d][%d]", i, j)
			}
		}
	}
	c := Generate(Config{Kind: KindWalk, Count: 5, Length: 32, Seed: 100})
	same := true
	for j := 0; j < a.Length(); j++ {
		if a.At(0)[j] != c.At(0)[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical first series")
	}
}

func TestWalkIsASummingProcess(t *testing.T) {
	// Successive differences of a random walk should be N(0,1): their mean
	// near 0, variance near 1.
	d := Generate(Config{Kind: KindWalk, Count: 50, Length: 256, Seed: 7})
	var sum, sumSq float64
	var n int
	for i := 0; i < d.Size(); i++ {
		s := d.At(i)
		for j := 1; j < len(s); j++ {
			step := float64(s[j] - s[j-1])
			sum += step
			sumSq += step * step
			n++
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("step mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("step variance = %v, want ~1", variance)
	}
}

func TestClusteredHasClusterStructure(t *testing.T) {
	// With few clusters and tight spread, intra-cluster distances should be
	// far smaller than typical inter-cluster distances. Verify via the
	// nearest-neighbour distance distribution: for clustered data the mean
	// 1-NN distance is much below the mean pairwise distance.
	d := Generate(Config{Kind: KindClustered, Count: 200, Length: 32, Seed: 3, Clusters: 8})
	var nnSum, pairSum float64
	var pairN int
	for i := 0; i < d.Size(); i++ {
		best := math.Inf(1)
		for j := 0; j < d.Size(); j++ {
			if i == j {
				continue
			}
			dist := series.Dist(d.At(i), d.At(j))
			if dist < best {
				best = dist
			}
			if j > i {
				pairSum += dist
				pairN++
			}
		}
		nnSum += best
	}
	nnMean := nnSum / float64(d.Size())
	pairMean := pairSum / float64(pairN)
	if nnMean > pairMean/2 {
		t.Errorf("clustered data lacks structure: nnMean=%v pairMean=%v", nnMean, pairMean)
	}
}

func TestSmoothIsCompressible(t *testing.T) {
	// A smooth series should be well approximated by a coarse piecewise
	// mean: reconstruction error per point must be small relative to the
	// series variance.
	d := Generate(Config{Kind: KindSmooth, Count: 20, Length: 128, Seed: 5})
	segs := 16
	segLen := 128 / segs
	var errSum, varSum float64
	for i := 0; i < d.Size(); i++ {
		s := d.At(i)
		mean := s.Mean()
		for seg := 0; seg < segs; seg++ {
			var m float64
			for j := seg * segLen; j < (seg+1)*segLen; j++ {
				m += float64(s[j])
			}
			m /= float64(segLen)
			for j := seg * segLen; j < (seg+1)*segLen; j++ {
				e := float64(s[j]) - m
				errSum += e * e
				v := float64(s[j]) - mean
				varSum += v * v
			}
		}
	}
	if errSum > 0.25*varSum {
		t.Errorf("smooth data not compressible: PAA error %.1f%% of variance", 100*errSum/varSum)
	}
}

func TestSeismicHasBursts(t *testing.T) {
	// Seismic series should have maximum absolute amplitude well above the
	// background noise level (bursty), unlike plain AR(1).
	d := Generate(Config{Kind: KindSeismic, Count: 30, Length: 256, Seed: 11})
	bursty := 0
	for i := 0; i < d.Size(); i++ {
		s := d.At(i)
		var maxAbs float64
		for _, v := range s {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > 3*s.Stdev() {
			bursty++
		}
	}
	if bursty < d.Size()/3 {
		t.Errorf("only %d/%d seismic series look bursty", bursty, d.Size())
	}
}

func TestZNormOption(t *testing.T) {
	d := Generate(Config{Kind: KindWalk, Count: 10, Length: 64, Seed: 2, ZNorm: true})
	for i := 0; i < d.Size(); i++ {
		if m := d.At(i).Mean(); math.Abs(m) > 1e-4 {
			t.Errorf("series %d mean = %v after znorm", i, m)
		}
	}
}

func TestQueriesWalk(t *testing.T) {
	d := Generate(Config{Kind: KindWalk, Count: 10, Length: 64, Seed: 1})
	q := Queries(d, KindWalk, 7, 2)
	if q.Size() != 7 || q.Length() != 64 {
		t.Fatalf("queries shape %dx%d", q.Size(), q.Length())
	}
}

func TestQueriesNoiseGraded(t *testing.T) {
	d := Generate(Config{Kind: KindClustered, Count: 100, Length: 32, Seed: 1, Clusters: 4})
	q := Queries(d, KindClustered, 20, 9)
	if q.Size() != 20 {
		t.Fatalf("query count = %d", q.Size())
	}
	// Early queries (low noise) should be closer to their nearest dataset
	// series than late queries (high noise), on average.
	nn := func(s series.Series) float64 {
		best := math.Inf(1)
		for i := 0; i < d.Size(); i++ {
			if dist := series.Dist(s, d.At(i)); dist < best {
				best = dist
			}
		}
		return best
	}
	var early, late float64
	for i := 0; i < 5; i++ {
		early += nn(q.At(i))
		late += nn(q.At(q.Size() - 1 - i))
	}
	if early >= late {
		t.Errorf("noise grading not monotone: early=%v late=%v", early, late)
	}
}

func TestKindString(t *testing.T) {
	if KindWalk.String() != "Walk" || KindClustered.String() != "Clustered" {
		t.Error("Kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestGenerateInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid config")
		}
	}()
	Generate(Config{Kind: KindWalk, Count: 0, Length: 10})
}

func TestSlidingWindows(t *testing.T) {
	long := series.NewDataset(10)
	s := make(series.Series, 10)
	for i := range s {
		s[i] = float32(i)
	}
	long.Append(s)
	windows, refs, err := SlidingWindows(long, 4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Offsets 0,2,4,6 -> 4 windows.
	if windows.Size() != 4 || len(refs) != 4 {
		t.Fatalf("%d windows, %d refs", windows.Size(), len(refs))
	}
	if windows.At(1)[0] != 2 {
		t.Errorf("second window starts with %v, want 2", windows.At(1)[0])
	}
	if refs[2] != (WindowRef{Source: 0, Offset: 4}) {
		t.Errorf("ref[2] = %+v", refs[2])
	}
}

func TestSlidingWindowsZNorm(t *testing.T) {
	long := Generate(Config{Kind: KindSeismic, Count: 3, Length: 128, Seed: 1})
	windows, _, err := SlidingWindows(long, 32, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < windows.Size(); i++ {
		if m := windows.At(i).Mean(); math.Abs(m) > 1e-4 {
			t.Fatalf("window %d mean %v after znorm", i, m)
		}
	}
}

func TestSlidingWindowsValidation(t *testing.T) {
	long := Generate(Config{Kind: KindWalk, Count: 1, Length: 16, Seed: 1})
	if _, _, err := SlidingWindows(long, 0, 1, false); err == nil {
		t.Error("window 0 accepted")
	}
	if _, _, err := SlidingWindows(long, 32, 1, false); err == nil {
		t.Error("window > length accepted")
	}
	if _, _, err := SlidingWindows(long, 8, 0, false); err == nil {
		t.Error("stride 0 accepted")
	}
}

func TestSlidingWindowsEnableSMviaWM(t *testing.T) {
	// End-to-end: SM query answered through the WM conversion. The best
	// window of the long series should be locatable via the refs.
	long := Generate(Config{Kind: KindSmooth, Count: 5, Length: 256, Seed: 9})
	windows, refs, err := SlidingWindows(long, 64, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	// The query is an exact window: the converted dataset must contain it
	// at distance 0.
	q := long.At(3)[40 : 40+64]
	best, bestD := -1, math.Inf(1)
	for i := 0; i < windows.Size(); i++ {
		if d := series.Dist(series.Series(q), windows.At(i)); d < bestD {
			best, bestD = i, d
		}
	}
	if bestD > 1e-6 {
		t.Fatalf("exact window not found: best distance %v", bestD)
	}
	if refs[best].Source != 3 || refs[best].Offset != 40 {
		t.Errorf("provenance wrong: %+v", refs[best])
	}
}
