package dataset

import (
	"fmt"

	"hydra/internal/series"
)

// Subsequence-matching support. The paper (Section 2) distinguishes whole
// matching (WM) from subsequence matching (SM) and notes that "a SM query
// can be converted to WM" by materialising the sliding windows of the long
// series as a whole-matching collection (the ULISSE line of work). These
// helpers perform that conversion, so any index in this repository can
// answer SM queries over long recordings.

// WindowRef locates a window in its source series.
type WindowRef struct {
	// Source is the index of the long series the window came from.
	Source int
	// Offset is the window's start position within the source.
	Offset int
}

// SlidingWindows converts a collection of long series into a WM dataset of
// all length-`window` subsequences taken every `stride` points, plus the
// provenance of each window. Set znorm to z-normalise every window (the
// standard practice for similarity search over subsequences).
func SlidingWindows(long *series.Dataset, window, stride int, znorm bool) (*series.Dataset, []WindowRef, error) {
	if window <= 0 || window > long.Length() {
		return nil, nil, fmt.Errorf("dataset: window %d out of [1,%d]", window, long.Length())
	}
	if stride <= 0 {
		return nil, nil, fmt.Errorf("dataset: stride %d must be positive", stride)
	}
	out := series.NewDataset(window)
	var refs []WindowRef
	for i := 0; i < long.Size(); i++ {
		src := long.At(i)
		for off := 0; off+window <= len(src); off += stride {
			w := src[off : off+window].Clone()
			if znorm {
				w.ZNormalize()
			}
			out.Append(w)
			refs = append(refs, WindowRef{Source: i, Offset: off})
		}
	}
	if out.Size() == 0 {
		return nil, nil, fmt.Errorf("dataset: no windows produced (window %d, stride %d)", window, stride)
	}
	return out, refs, nil
}
