package router

import (
	"bufio"
	"os"
	"strconv"
	"strings"

	"hydra/internal/eval"
)

// DataScenario returns the scenario factory for a server holding a
// concrete dataset: identical to ServeScenario except that the Fig. 9
// in-memory/on-disk axis is seeded from the dataset's size against the
// machine's available RAM instead of assumed. Summaries, index nodes and
// per-request scratch roughly double the resident footprint of the raw
// series, so the seed flips to the disk-resident column (preferring
// methods whose capability flags include DiskResident behaviour — DSTree
// and iSAX2+ over graph methods) once twice the dataset's bytes exceed
// the available memory. Unknown inputs (zero or negative bytes) keep the
// in-memory assumption, matching the previous seed policy.
func DataScenario(datasetBytes, availableRAM int64) func(Request) eval.Scenario {
	inMemory := true
	if datasetBytes > 0 && availableRAM > 0 {
		inMemory = 2*datasetBytes <= availableRAM
	}
	return func(req Request) eval.Scenario {
		s := ServeScenario(req)
		s.InMemory = inMemory
		return s
	}
}

// AvailableRAM reports the kernel's estimate of memory available for new
// allocations without swapping — MemAvailable from /proc/meminfo — in
// bytes. It returns 0 when the estimate is unavailable (non-Linux
// platforms, restricted mounts); DataScenario treats 0 as "assume
// in-memory", so a failed probe degrades to the previous behaviour
// rather than to a disk-resident bias.
func AvailableRAM() int64 {
	f, err := os.Open("/proc/meminfo")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
