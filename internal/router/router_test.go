package router

import (
	"strings"
	"testing"

	"hydra/internal/core"
)

// fixedCandidates builds a Candidates func serving one fixed list.
func fixedCandidates(names ...string) func(core.Mode) []string {
	return func(core.Mode) []string { return names }
}

func TestPickSeedsFromMatrixUntilSeedIsSampled(t *testing.T) {
	r := New(Config{MinSamples: 2, Candidates: fixedCandidates("DSTree", "iSAX2+", "HNSW")})

	// Cold router: the Fig. 9 matrix seeds every mode.
	dec, err := r.Pick(Request{Mode: core.ModeExact, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Method != "DSTree" || dec.Source != "seed" {
		t.Fatalf("cold exact pick = %+v, want DSTree via seed", dec)
	}
	dec, _ = r.Pick(Request{Mode: core.ModeNG, K: 10})
	if dec.Method != "HNSW" || dec.Source != "seed" {
		t.Fatalf("cold ng pick = %+v, want HNSW via seed", dec)
	}
	dec, _ = r.Pick(Request{Mode: core.ModeDeltaEpsilon, K: 10, Epsilon: 1, Delta: 0.99})
	if dec.Method != "DSTree" || dec.Source != "seed" {
		t.Fatalf("cold delta-epsilon pick = %+v, want DSTree via seed", dec)
	}

	// A rival having samples does not overrule an unsampled seed: the
	// matrix pick must get measured before live data can replace it.
	r.Observe("iSAX2+", 0.001)
	r.Observe("iSAX2+", 0.001)
	dec, _ = r.Pick(Request{Mode: core.ModeExact, K: 10})
	if dec.Method != "DSTree" || dec.Source != "seed" {
		t.Fatalf("pick with unsampled seed = %+v, want seed DSTree", dec)
	}

	// Once the seed has MinSamples, the lowest observed p50 wins.
	r.Observe("DSTree", 0.010)
	r.Observe("DSTree", 0.012)
	dec, _ = r.Pick(Request{Mode: core.ModeExact, K: 10})
	if dec.Method != "iSAX2+" || dec.Source != "observed" {
		t.Fatalf("sampled pick = %+v, want observed iSAX2+", dec)
	}
	if !strings.Contains(dec.Rationale, "p50") {
		t.Errorf("observed rationale should name the p50: %q", dec.Rationale)
	}

	// The seed keeps serving when it is the fastest sampled method.
	r2 := New(Config{MinSamples: 2, Candidates: fixedCandidates("DSTree", "iSAX2+")})
	r2.Observe("DSTree", 0.001)
	r2.Observe("DSTree", 0.001)
	r2.Observe("iSAX2+", 0.010)
	r2.Observe("iSAX2+", 0.010)
	dec, _ = r2.Pick(Request{Mode: core.ModeExact, K: 10})
	if dec.Method != "DSTree" || dec.Source != "observed" {
		t.Fatalf("fast seed pick = %+v, want observed DSTree", dec)
	}
}

func TestPickWindowForgetsOldLatencies(t *testing.T) {
	r := New(Config{MinSamples: 2, WindowSize: 4, Candidates: fixedCandidates("DSTree", "iSAX2+")})
	// DSTree starts slow, iSAX2+ fast.
	for i := 0; i < 4; i++ {
		r.Observe("DSTree", 0.100)
		r.Observe("iSAX2+", 0.010)
	}
	if dec, _ := r.Pick(Request{Mode: core.ModeExact}); dec.Method != "iSAX2+" {
		t.Fatalf("pick = %+v, want iSAX2+ while DSTree is slow", dec)
	}
	// DSTree speeds up (e.g. page cache warmed); the 4-sample window must
	// forget the slow past instead of averaging it in forever.
	for i := 0; i < 4; i++ {
		r.Observe("DSTree", 0.001)
	}
	if dec, _ := r.Pick(Request{Mode: core.ModeExact}); dec.Method != "DSTree" {
		t.Fatalf("pick = %+v, want DSTree after its window refreshed", dec)
	}
	if n := r.Samples("DSTree"); n != 4 {
		t.Fatalf("window holds %d samples, want 4", n)
	}
}

func TestPickErrorsWithoutCandidates(t *testing.T) {
	r := New(Config{Candidates: fixedCandidates()})
	if _, err := r.Pick(Request{Mode: core.ModeExact}); err == nil {
		t.Fatal("expected an error with no capable candidates")
	}
}

func TestRegistryCandidatesFollowCapabilities(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeExact, core.ModeNG, core.ModeEpsilon, core.ModeDeltaEpsilon} {
		names := RegistryCandidates(mode)
		if len(names) == 0 {
			t.Fatalf("no registered method supports mode %s", mode)
		}
		for _, name := range names {
			spec, ok := core.LookupMethod(name)
			if !ok || !Supports(spec, mode) {
				t.Errorf("candidate %q does not support mode %s", name, mode)
			}
		}
	}
	// HNSW is ng-only: it must appear for ng and never for exact.
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	if !has(RegistryCandidates(core.ModeNG), "HNSW") {
		t.Error("HNSW missing from ng candidates")
	}
	if has(RegistryCandidates(core.ModeExact), "HNSW") {
		t.Error("HNSW must not be an exact candidate")
	}
}

func TestServeScenarioTracksMode(t *testing.T) {
	if s := ServeScenario(Request{Mode: core.ModeDeltaEpsilon}); !s.NeedGuarantees {
		t.Error("delta-epsilon requests need guarantees")
	}
	if s := ServeScenario(Request{Mode: core.ModeNG}); s.NeedGuarantees || s.HighAccuracy {
		t.Error("ng requests need neither guarantees nor MAP 1")
	}
	s := ServeScenario(Request{Mode: core.ModeExact})
	if !s.HighAccuracy || !s.InMemory || s.CountIndexing || !s.LargeWorkload {
		t.Errorf("exact serve scenario = %+v", s)
	}
}
