package router

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Gate is the admission controller on the serve boundary: at most
// maxInflight requests execute concurrently, at most maxQueue more wait
// for a slot, and everything beyond that is shed immediately — the caller
// turns a shed into the documented 429 "overloaded" error, which is the
// difference between a server that degrades by refusing excess work and
// one that collapses by accepting it.
//
// A nil *Gate is valid and admits everything (admission control disabled).
type Gate struct {
	slots     chan struct{}
	maxQueue  int64
	queued    atomic.Int64
	shed      atomic.Int64
	waitNanos atomic.Int64
	workerCap int
}

// GateStats is a point-in-time snapshot of the gate.
type GateStats struct {
	Inflight  int
	Queued    int64
	Shed      int64
	MaxQueue  int64
	WorkerCap int
	// WaitSeconds is cumulative time requests spent queued for a slot.
	// Admissions through the uncontended fast path contribute zero, so the
	// counter only grows while the gate is actually saturated.
	WaitSeconds float64
}

// NewGate returns a gate admitting maxInflight concurrent requests, or nil
// (admission disabled) when maxInflight is not positive. maxQueue <= 0
// defaults to 2*maxInflight. workerCap clamps each request's query
// fan-out; <= 0 derives max(1, GOMAXPROCS/maxInflight), which keeps the
// worst-case thread demand of a full gate near the core count.
func NewGate(maxInflight, maxQueue, workerCap int) *Gate {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = 2 * maxInflight
	}
	if workerCap <= 0 {
		workerCap = runtime.GOMAXPROCS(0) / maxInflight
		if workerCap < 1 {
			workerCap = 1
		}
	}
	return &Gate{
		slots:     make(chan struct{}, maxInflight),
		maxQueue:  int64(maxQueue),
		workerCap: workerCap,
	}
}

// Acquire claims an execution slot, waiting in the queue when all slots
// are busy. It returns false — without blocking — when the queue is also
// full; the request must then be shed.
func (g *Gate) Acquire() bool {
	if g == nil {
		return true
	}
	select {
	case g.slots <- struct{}{}:
		return true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Add(1)
		return false
	}
	began := time.Now()
	g.slots <- struct{}{}
	g.waitNanos.Add(int64(time.Since(began)))
	g.queued.Add(-1)
	return true
}

// Release returns a slot claimed by a successful Acquire.
func (g *Gate) Release() {
	if g != nil {
		<-g.slots
	}
}

// ClampWorkers bounds one request's resolved query fan-out to the
// per-request cap, so a single caller cannot monopolise every core while
// other admitted requests starve.
func (g *Gate) ClampWorkers(workers int) int {
	if g == nil || workers <= g.workerCap {
		return workers
	}
	return g.workerCap
}

// Stats snapshots the gate counters (zero for a nil gate).
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	return GateStats{
		Inflight:    len(g.slots),
		Queued:      g.queued.Load(),
		Shed:        g.shed.Load(),
		MaxQueue:    g.maxQueue,
		WorkerCap:   g.workerCap,
		WaitSeconds: float64(g.waitNanos.Load()) / 1e9,
	}
}
