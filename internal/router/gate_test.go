package router

import (
	"testing"
	"time"
)

func TestGateAdmitsQueuesAndSheds(t *testing.T) {
	g := NewGate(1, 1, 0)
	if !g.Acquire() {
		t.Fatal("first request should get the slot")
	}
	// Second request queues (blocking); park it in a goroutine.
	admitted := make(chan bool, 1)
	go func() { admitted <- g.Acquire() }()
	waitFor(t, func() bool { return g.Stats().Queued == 1 })

	// Slot busy, queue full: the third request is shed without blocking.
	done := make(chan bool, 1)
	go func() { done <- g.Acquire() }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("third request should have been shed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shed Acquire blocked")
	}
	if got := g.Stats().Shed; got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}

	// Releasing the slot admits the queued request.
	g.Release()
	select {
	case ok := <-admitted:
		if !ok {
			t.Fatal("queued request should have been admitted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted")
	}
	g.Release()
	st := g.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

func TestGateWorkerClamp(t *testing.T) {
	g := NewGate(2, 0, 3)
	if got := g.ClampWorkers(8); got != 3 {
		t.Fatalf("ClampWorkers(8) = %d, want 3", got)
	}
	if got := g.ClampWorkers(2); got != 2 {
		t.Fatalf("ClampWorkers(2) = %d, want 2 (under the cap)", got)
	}
	// Derived cap is at least 1 even when inflight exceeds the cores.
	if NewGate(4096, 0, 0).ClampWorkers(64) != 1 {
		t.Fatal("derived worker cap should floor at 1")
	}
	// Default queue is 2x inflight.
	if st := NewGate(3, 0, 0).Stats(); st.MaxQueue != 6 {
		t.Fatalf("default MaxQueue = %d, want 6", st.MaxQueue)
	}
}

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	if g = NewGate(0, 0, 0); g != nil {
		t.Fatal("NewGate(0) should disable admission control")
	}
	if !g.Acquire() {
		t.Fatal("nil gate must admit")
	}
	g.Release() // must not panic
	if got := g.ClampWorkers(64); got != 64 {
		t.Fatalf("nil gate clamped workers to %d", got)
	}
	if st := g.Stats(); st != (GateStats{}) {
		t.Fatalf("nil gate stats = %+v, want zero", st)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
