package router

import (
	"container/list"
	"sync"
)

// Cache is a byte-bounded, LRU-evicting query-result cache. Keys are the
// caller's full request identity (dataset fingerprint, method-or-auto,
// mode, k, ε/δ, probe budget, query-vector hash); values are opaque to the
// cache — the server stores its fully built response so a hit replays the
// original answer byte-identically with zero index work, zero modelled
// I/O and zero distance computations re-spent.
//
// A nil *Cache is valid and always misses, which is how a server with
// caching disabled runs the same handler code path.
type Cache struct {
	mu        sync.Mutex
	max       int64
	used      int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheItem struct {
	key   string
	value any
	bytes int64
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	UsedBytes int64
	MaxBytes  int64
}

// NewCache returns a cache bounded to maxBytes, or nil (caching disabled)
// when maxBytes is not positive.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the value stored under key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheItem).value, true
}

// Put stores value under key, charging it `bytes` against the budget, and
// evicts least-recently-used entries until the cache fits again. Values
// larger than the whole budget are not admitted (they would evict
// everything and then miss anyway).
func (c *Cache) Put(key string, value any, bytes int64) {
	if c == nil || bytes <= 0 || bytes > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		item := el.Value.(*cacheItem)
		c.used += bytes - item.bytes
		item.value, item.bytes = value, bytes
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, value: value, bytes: bytes})
		c.used += bytes
	}
	for c.used > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		item := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, item.key)
		c.used -= item.bytes
		c.evictions++
	}
}

// Stats snapshots the counters (zero for a nil cache).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.items),
		UsedBytes: c.used,
		MaxBytes:  c.max,
	}
}
