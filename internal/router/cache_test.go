package router

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissAndLRUEviction(t *testing.T) {
	c := NewCache(100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("a", "A", 40)
	c.Put("b", "B", 40)
	if v, ok := c.Get("a"); !ok || v != "A" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "a" was just touched, so inserting "c" must evict "b" (the LRU).
	c.Put("c", "C", 40)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a should have survived")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.UsedBytes != 80 || st.MaxBytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	// Hits: a (before eviction), a (after). Misses: initial a, b.
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
}

func TestCachePutUpdatesInPlace(t *testing.T) {
	c := NewCache(100)
	c.Put("a", "old", 30)
	c.Put("a", "new", 50)
	if v, _ := c.Get("a"); v != "new" {
		t.Fatalf("Get(a) = %v, want new", v)
	}
	if st := c.Stats(); st.Entries != 1 || st.UsedBytes != 50 {
		t.Fatalf("stats after update = %+v", st)
	}
}

func TestCacheRefusesOversizedAndNonPositiveEntries(t *testing.T) {
	c := NewCache(100)
	c.Put("big", "x", 101) // would evict everything and still not fit
	c.Put("zero", "x", 0)
	c.Put("neg", "x", -5)
	if st := c.Stats(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("oversized/empty entries were admitted: %+v", st)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c = NewCache(0); c != nil {
		t.Fatal("NewCache(0) should disable caching")
	}
	c.Put("a", "A", 10)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache must always miss")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	c := NewCache(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, g, 512)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.UsedBytes > st.MaxBytes {
		t.Fatalf("cache over budget: %+v", st)
	}
	if st.Entries == 0 || st.Hits == 0 {
		t.Fatalf("concurrent workload left no trace: %+v", st)
	}
}
