// Package router implements the serve-path performance layer in front of
// the method registry: an adaptive method router (the "method":"auto"
// request mode), a byte-bounded LRU query-result cache, and an admission
// gate that sheds load at the serve boundary instead of collapsing under
// it.
//
// The router exploits the paper's central finding — no single method wins
// across workloads (Fig. 9) — at serve time. Its seed policy is the Fig. 9
// decision matrix (eval.Recommend, constrained to the methods whose
// capability flags can answer the request's mode), refined online from the
// per-query latencies the server observes: once the seed method and a
// rival both have enough samples, the lowest observed p50 wins. Routing
// never changes answers for exact queries (every exact-capable method
// returns the true k-NN) and is always answer-honest for approximate
// modes: the response names the method that actually ran.
package router

import (
	"fmt"
	"sort"
	"sync"

	"hydra/internal/core"
	"hydra/internal/eval"
)

// Request is the routing-relevant shape of one query request.
type Request struct {
	Mode    core.Mode
	K       int
	Epsilon float64
	Delta   float64
}

// Decision is one routing outcome: the method to run and why.
type Decision struct {
	Method string
	// Source is "observed" when the pick came from live latency samples,
	// "seed" when it came from the Fig. 9 matrix.
	Source    string
	Rationale string
}

// Config parameterises a Router. The zero value selects serving defaults.
type Config struct {
	// MinSamples is how many per-query latency observations a method needs
	// before its observed p50 is trusted over the seed matrix (default 3).
	MinSamples int
	// WindowSize is the per-method sliding window the p50 is computed over
	// (default 64) — a window, not a lifetime mean, so the router tracks
	// behaviour shifts (cache warmup, competing load) instead of averaging
	// them away.
	WindowSize int
	// Scenario maps a request onto the Fig. 9 scenario used to seed cold
	// methods; nil selects ServeScenario.
	Scenario func(Request) eval.Scenario
	// Candidates lists the method names able to answer a mode; nil scans
	// the core registry's capability flags. Tests override it.
	Candidates func(core.Mode) []string
}

// Router picks a serving method per request. Safe for concurrent use.
type Router struct {
	mu         sync.Mutex
	minSamples int
	windowSize int
	windows    map[string]*window
	scenario   func(Request) eval.Scenario
	candidates func(core.Mode) []string
}

// New builds a Router from cfg.
func New(cfg Config) *Router {
	r := &Router{
		minSamples: cfg.MinSamples,
		windowSize: cfg.WindowSize,
		windows:    map[string]*window{},
		scenario:   cfg.Scenario,
		candidates: cfg.Candidates,
	}
	if r.minSamples <= 0 {
		r.minSamples = 3
	}
	if r.windowSize <= 0 {
		r.windowSize = 64
	}
	if r.scenario == nil {
		r.scenario = ServeScenario
	}
	if r.candidates == nil {
		r.candidates = RegistryCandidates
	}
	return r
}

// ServeScenario is the Fig. 9 scenario a long-running hydra-serve process
// is in: the dataset is held in RAM, indexes are prebuilt (warm-started
// through the catalog) so construction time is sunk, and the process
// lifetime amortises any build over a large workload. Guarantees and the
// accuracy requirement follow from the request's mode.
func ServeScenario(req Request) eval.Scenario {
	return eval.Scenario{
		InMemory:       true,
		NeedGuarantees: req.Mode == core.ModeEpsilon || req.Mode == core.ModeDeltaEpsilon,
		CountIndexing:  false,
		LargeWorkload:  true,
		HighAccuracy:   req.Mode == core.ModeExact,
	}
}

// Supports reports whether a method spec's capability flags can answer
// queries in the given mode.
func Supports(spec core.MethodSpec, mode core.Mode) bool {
	switch mode {
	case core.ModeExact:
		return spec.Exact
	case core.ModeNG:
		return spec.NG
	case core.ModeEpsilon:
		return spec.Epsilon
	case core.ModeDeltaEpsilon:
		return spec.DeltaEpsilon
	default:
		return false
	}
}

// RegistryCandidates lists the registered methods able to answer the mode,
// in registry (rank) order.
func RegistryCandidates(mode core.Mode) []string {
	var out []string
	for _, spec := range core.RegisteredMethods() {
		if Supports(spec, mode) {
			out = append(out, spec.Name)
		}
	}
	return out
}

// Pick routes one request. The seed method keeps winning until it has
// MinSamples observations of its own — so the matrix pick always gets
// measured before live data can overrule it — after which the candidate
// with the lowest observed per-query p50 serves. Candidates that never
// receive traffic simply never enter the comparison; the router does not
// spend user requests exploring them.
func (r *Router) Pick(req Request) (Decision, error) {
	cands := r.candidates(req.Mode)
	if len(cands) == 0 {
		return Decision{}, fmt.Errorf("router: no registered method supports mode %s", req.Mode)
	}
	seed, why := eval.RecommendCapable(r.scenario(req), cands)

	r.mu.Lock()
	defer r.mu.Unlock()
	if w := r.windows[seed]; w == nil || w.count() < r.minSamples {
		return Decision{Method: seed, Source: "seed", Rationale: why}, nil
	}
	best, bestP50 := "", 0.0
	for _, name := range cands {
		w := r.windows[name]
		if w == nil || w.count() < r.minSamples {
			continue
		}
		if p50 := w.p50(); best == "" || p50 < bestP50 {
			best, bestP50 = name, p50
		}
	}
	return Decision{
		Method:    best,
		Source:    "observed",
		Rationale: fmt.Sprintf("lowest observed per-query p50 (%.3gs) among sampled capable methods", bestP50),
	}, nil
}

// Observe records one request's per-query latency for a method. Every
// served request should be observed — fixed-method traffic teaches the
// router too — but cache hits must NOT be: they measure the cache, not the
// method, and would poison the p50 the router compares.
func (r *Router) Observe(method string, perQuerySeconds float64) {
	if perQuerySeconds < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.windows[method]
	if w == nil {
		w = &window{samples: make([]float64, 0, r.windowSize), cap: r.windowSize}
		r.windows[method] = w
	}
	w.add(perQuerySeconds)
}

// Samples reports how many latency observations a method currently holds
// in its window (introspection and tests).
func (r *Router) Samples(method string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w := r.windows[method]; w != nil {
		return w.count()
	}
	return 0
}

// window is a fixed-capacity ring of latency samples.
type window struct {
	samples []float64
	next    int
	cap     int
}

func (w *window) add(v float64) {
	if len(w.samples) < w.cap {
		w.samples = append(w.samples, v)
		return
	}
	w.samples[w.next] = v
	w.next = (w.next + 1) % w.cap
}

func (w *window) count() int { return len(w.samples) }

func (w *window) p50() float64 {
	sorted := append([]float64(nil), w.samples...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}
