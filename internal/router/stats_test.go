package router

import (
	"runtime"
	"testing"

	"hydra/internal/core"
)

func TestDataScenarioSeedsInMemoryFromStats(t *testing.T) {
	req := Request{Mode: core.ModeNG}
	cases := []struct {
		name         string
		bytes, ram   int64
		wantInMemory bool
	}{
		{"fits-with-headroom", 1 << 20, 1 << 30, true},
		{"exactly-half", 1 << 29, 1 << 30, true},
		{"over-half", 1<<29 + 1, 1 << 30, false},
		{"larger-than-ram", 1 << 31, 1 << 30, false},
		{"unknown-ram", 1 << 31, 0, true},
		{"unknown-bytes", 0, 1 << 30, true},
	}
	for _, tc := range cases {
		sc := DataScenario(tc.bytes, tc.ram)(req)
		if sc.InMemory != tc.wantInMemory {
			t.Errorf("%s: InMemory = %v, want %v", tc.name, sc.InMemory, tc.wantInMemory)
		}
		// Every other axis must still match the serve scenario.
		want := ServeScenario(req)
		want.InMemory = tc.wantInMemory
		if sc != want {
			t.Errorf("%s: scenario %+v, want %+v", tc.name, sc, want)
		}
	}
}

func TestDataScenarioRoutesDiskResident(t *testing.T) {
	// A dataset larger than RAM must seed the on-disk Fig. 9 column: for
	// an ng request the in-memory serve seed is HNSW, the on-disk seed is
	// a disk-capable tree method.
	r := New(Config{
		Scenario:   DataScenario(1<<40, 1<<30),
		Candidates: func(core.Mode) []string { return []string{"HNSW", "DSTree", "iSAX2+"} },
	})
	d, err := r.Pick(Request{Mode: core.ModeNG})
	if err != nil {
		t.Fatal(err)
	}
	if d.Method == "HNSW" {
		t.Fatalf("disk-resident scenario still routed to %s: %s", d.Method, d.Rationale)
	}
	if d.Source != "seed" {
		t.Fatalf("cold router should pick from the seed matrix, got %q", d.Source)
	}
}

func TestAvailableRAM(t *testing.T) {
	got := AvailableRAM()
	if runtime.GOOS == "linux" {
		if got <= 0 {
			t.Fatalf("AvailableRAM() = %d on linux; expected a positive MemAvailable", got)
		}
	} else if got < 0 {
		t.Fatalf("AvailableRAM() = %d; must be non-negative", got)
	}
}
