package eval

import "fmt"

// Recommendation implements the paper's Figure 9 decision matrix: the best
// technique for answering a query workload, given whether the data fits in
// memory, whether guarantees are required, and whether index-construction
// time must be amortised.

// Scenario describes a deployment situation.
type Scenario struct {
	// InMemory is true when the dataset fits in RAM.
	InMemory bool
	// NeedGuarantees is true when δ-ε (or ε) accuracy bounds are required.
	NeedGuarantees bool
	// CountIndexing is true when index-building time matters (no
	// pre-existing index).
	CountIndexing bool
	// LargeWorkload is true when many queries will amortise the build
	// (the paper's 10K-query setting, vs the 100-query setting).
	LargeWorkload bool
	// HighAccuracy is true when MAP close to 1 is required.
	HighAccuracy bool
}

// Recommend returns the method name the paper's evaluation points to for
// the scenario, plus the rationale.
func Recommend(s Scenario) (method, rationale string) {
	// With guarantees, only the extended data series methods are in play;
	// DSTree wins everywhere with the small-workload exception for iSAX2+.
	if s.NeedGuarantees {
		if s.CountIndexing && !s.LargeWorkload {
			return "iSAX2+", "guarantees with a small workload: iSAX2+'s cheap index amortises fastest (Fig. 3/4 combined-cost panels)"
		}
		return "DSTree", "guarantees: DSTree offers the best throughput/accuracy trade-off in and out of memory (Figs. 3, 4, 6)"
	}
	// No guarantees (ng-approximate).
	if s.InMemory {
		if !s.CountIndexing {
			if s.HighAccuracy {
				return "DSTree", "in-memory ng with MAP→1 required: graph methods plateau below exact accuracy; DSTree reaches MAP 1 (Fig. 3)"
			}
			return "HNSW", "in-memory ng query-only: HNSW has the best throughput at fixed accuracy (Fig. 3, paper §5)"
		}
		if s.LargeWorkload {
			return "DSTree", "in-memory ng with indexing counted and a large workload: DSTree amortises best (Fig. 3 idx+10K panels)"
		}
		return "iSAX2+", "in-memory ng with indexing counted and a small workload: iSAX2+'s build speed wins (Fig. 3 idx+100 panels)"
	}
	if s.CountIndexing && !s.LargeWorkload {
		return "iSAX2+", "on-disk ng with a small workload: iSAX2+ remains competitive when the build dominates (Fig. 4)"
	}
	return "DSTree", "on-disk: DSTree and iSAX2+ dominate; DSTree is the overall winner (Fig. 4, Fig. 9)"
}

// matrixFallback is the Fig. 9 matrix's overall ranking, used when the
// scenario's pick cannot answer the request (e.g. HNSW recommended but the
// query needs exact answers, which HNSW does not support): DSTree is the
// paper's overall winner, iSAX2+ the build-cheap runner-up, VA+file the
// filter-based alternative, HNSW the ng-only throughput leader.
var matrixFallback = []string{"DSTree", "iSAX2+", "VA+file", "HNSW"}

// RecommendCapable is the capability-aware form of Recommend used as the
// serve-time router's seed policy: it returns the Fig. 9 matrix pick when
// that method is in the allowed set, and otherwise falls back through the
// matrix's overall ranking, then to the first allowed method. allowed is
// typically the registered methods whose capability flags satisfy the
// request's mode; an empty set returns "".
func RecommendCapable(s Scenario, allowed []string) (method, rationale string) {
	if len(allowed) == 0 {
		return "", "no capability-compatible method"
	}
	set := make(map[string]bool, len(allowed))
	for _, name := range allowed {
		set[name] = true
	}
	pick, why := Recommend(s)
	if set[pick] {
		return pick, why
	}
	for _, fb := range matrixFallback {
		if set[fb] {
			return fb, fmt.Sprintf("Fig. 9 fallback: matrix pick %s lacks a required capability; %s is the next overall winner", pick, fb)
		}
	}
	return allowed[0], fmt.Sprintf("fallback: matrix pick %s lacks a required capability; %s is the first capability-compatible method", pick, allowed[0])
}
