package eval

import (
	"strings"
	"testing"
)

// expectRecommend mirrors the Fig. 9 decision matrix branch by branch so
// the exhaustive sweep below states each expectation independently of the
// implementation's control flow.
func expectRecommend(s Scenario) string {
	if s.NeedGuarantees {
		if s.CountIndexing && !s.LargeWorkload {
			return "iSAX2+"
		}
		return "DSTree"
	}
	if s.InMemory {
		if !s.CountIndexing {
			if s.HighAccuracy {
				return "DSTree"
			}
			return "HNSW"
		}
		if s.LargeWorkload {
			return "DSTree"
		}
		return "iSAX2+"
	}
	if s.CountIndexing && !s.LargeWorkload {
		return "iSAX2+"
	}
	return "DSTree"
}

// TestRecommendAllScenarioCombinations sweeps every combination of the five
// Scenario booleans (2^5 = 32), so every branch of the decision matrix —
// and every don't-care field — is pinned down.
func TestRecommendAllScenarioCombinations(t *testing.T) {
	for bits := 0; bits < 32; bits++ {
		s := Scenario{
			InMemory:       bits&1 != 0,
			NeedGuarantees: bits&2 != 0,
			CountIndexing:  bits&4 != 0,
			LargeWorkload:  bits&8 != 0,
			HighAccuracy:   bits&16 != 0,
		}
		method, rationale := Recommend(s)
		if want := expectRecommend(s); method != want {
			t.Errorf("Recommend(%+v) = %q, want %q", s, method, want)
		}
		if rationale == "" {
			t.Errorf("Recommend(%+v): empty rationale", s)
		}
	}
}

func TestRecommendCapable(t *testing.T) {
	exactScenario := Scenario{InMemory: true, HighAccuracy: true} // matrix: DSTree
	ngScenario := Scenario{InMemory: true}                        // matrix: HNSW

	t.Run("matrix pick allowed", func(t *testing.T) {
		method, _ := RecommendCapable(ngScenario, []string{"HNSW", "DSTree"})
		if method != "HNSW" {
			t.Fatalf("method = %q, want HNSW", method)
		}
	})
	t.Run("falls back through the matrix ranking", func(t *testing.T) {
		// HNSW recommended but not capable (e.g. exact mode): DSTree is
		// the next overall winner present.
		method, rationale := RecommendCapable(ngScenario, []string{"VA+file", "DSTree"})
		if method != "DSTree" {
			t.Fatalf("method = %q, want DSTree", method)
		}
		if !strings.Contains(rationale, "HNSW") {
			t.Fatalf("rationale should name the incapable matrix pick: %q", rationale)
		}
		method, _ = RecommendCapable(ngScenario, []string{"VA+file"})
		if method != "VA+file" {
			t.Fatalf("method = %q, want VA+file", method)
		}
	})
	t.Run("first allowed when nothing ranked matches", func(t *testing.T) {
		method, _ := RecommendCapable(exactScenario, []string{"SerialScan"})
		if method != "SerialScan" {
			t.Fatalf("method = %q, want SerialScan", method)
		}
	})
	t.Run("empty allowed set", func(t *testing.T) {
		method, _ := RecommendCapable(exactScenario, nil)
		if method != "" {
			t.Fatalf("method = %q, want empty", method)
		}
	})
	t.Run("exhaustive scenarios never escape the allowed set", func(t *testing.T) {
		allowed := []string{"DSTree", "VA+file"}
		for bits := 0; bits < 32; bits++ {
			s := Scenario{
				InMemory:       bits&1 != 0,
				NeedGuarantees: bits&2 != 0,
				CountIndexing:  bits&4 != 0,
				LargeWorkload:  bits&8 != 0,
				HighAccuracy:   bits&16 != 0,
			}
			method, _ := RecommendCapable(s, allowed)
			if method != "DSTree" && method != "VA+file" {
				t.Fatalf("RecommendCapable(%+v) escaped the allowed set: %q", s, method)
			}
		}
	})
}
