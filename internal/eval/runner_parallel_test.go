package eval

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

func equivalenceWorkload(t testing.TB) (Workload, SuiteConfig) {
	cfg := SuiteConfig{N: 600, Length: 32, Queries: 24, K: 5, Seed: 7, HistogramPairs: 600, Workers: 1}
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	return w, cfg
}

// TestParallelRunMatchesSerial pins the tentpole guarantee: fanning a
// workload across workers yields exactly the serial outcome — identical
// per-query Results (neighbours, counters, I/O), identical metrics, and
// identical summed IO/DistCalcs — for methods spanning the scan, tree, VA
// and graph families.
func TestParallelRunMatchesSerial(t *testing.T) {
	w, cfg := equivalenceWorkload(t)
	cases := []struct {
		method   string
		template core.Query
	}{
		{"SerialScan", core.Query{Mode: core.ModeExact}},
		{"DSTree", core.Query{Mode: core.ModeExact}},
		{"VA+file", core.Query{Mode: core.ModeExact}},
		{"iSAX2+", core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 1}},
		{"HNSW", core.Query{Mode: core.ModeNG, NProbe: 16}},
	}
	for _, tc := range cases {
		t.Run(tc.method, func(t *testing.T) {
			b, err := BuildMethod(tc.method, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := Run(b.Method, w, tc.template, storage.DefaultCostModel())
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := ParallelRun(b.Method, w, tc.template, storage.DefaultCostModel(), RunOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Results, parallel.Results) {
				t.Fatalf("per-query results diverge between serial and parallel runs")
			}
			if !reflect.DeepEqual(serial.Metrics, parallel.Metrics) {
				t.Fatalf("metrics diverge: serial %+v parallel %+v", serial.Metrics, parallel.Metrics)
			}
			if serial.IO != parallel.IO {
				t.Fatalf("summed IO diverges: serial %+v parallel %+v", serial.IO, parallel.IO)
			}
			if serial.DistCalcs != parallel.DistCalcs {
				t.Fatalf("summed DistCalcs diverge: serial %d parallel %d", serial.DistCalcs, parallel.DistCalcs)
			}
		})
	}
}

// TestParallelRunADSPlus exercises the one method whose queries mutate the
// index (adaptive splitting): searches serialise internally, so a parallel
// run must stay race-free and still answer every query.
func TestParallelRunADSPlus(t *testing.T) {
	w, cfg := equivalenceWorkload(t)
	b, err := BuildMethod("ADS+", w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParallelRun(b.Method, w, core.Query{Mode: core.ModeExact}, storage.CostModel{}, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != w.Queries.Size() {
		t.Fatalf("got %d results, want %d", len(out.Results), w.Queries.Size())
	}
	if out.Metrics.AvgRecall < 0.999 {
		t.Fatalf("exact adaptive search recall %v, want 1", out.Metrics.AvgRecall)
	}
}

// TestParallelRunDefaultWorkers checks the 0 => GOMAXPROCS default and that
// worker counts above the workload size are harmless.
func TestParallelRunDefaultWorkers(t *testing.T) {
	w, cfg := equivalenceWorkload(t)
	b, err := BuildMethod("SerialScan", w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 64} {
		out, err := ParallelRun(b.Method, w, core.Query{Mode: core.ModeExact}, storage.CostModel{}, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Results) != w.Queries.Size() {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out.Results), w.Queries.Size())
		}
	}
}

// overlapMethod is a core.Method stub that records how many searches are
// in flight simultaneously, proving the executor genuinely overlaps queries
// (wall-clock speedups need multiple cores, which CI may not have; overlap
// it must show regardless).
type overlapMethod struct {
	inflight atomic.Int64
	peak     atomic.Int64
}

func (m *overlapMethod) Name() string     { return "overlap-probe" }
func (m *overlapMethod) Footprint() int64 { return 0 }

func (m *overlapMethod) Search(q core.Query) (core.Result, error) {
	cur := m.inflight.Add(1)
	defer m.inflight.Add(-1)
	for {
		p := m.peak.Load()
		if cur <= p || m.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	time.Sleep(5 * time.Millisecond) // give other workers time to enter
	return core.Result{}, nil
}

func TestParallelRunOverlapsQueries(t *testing.T) {
	w, _ := equivalenceWorkload(t)
	m := &overlapMethod{}
	if _, err := ParallelRun(m, w, core.Query{Mode: core.ModeExact}, storage.CostModel{}, RunOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if peak := m.peak.Load(); peak < 2 {
		t.Fatalf("peak concurrent searches %d, want >= 2", peak)
	}
	m = &overlapMethod{}
	if _, err := Run(m, w, core.Query{Mode: core.ModeExact}, storage.CostModel{}); err != nil {
		t.Fatal(err)
	}
	if peak := m.peak.Load(); peak != 1 {
		t.Fatalf("serial run peak concurrency %d, want 1", peak)
	}
}

// TestParallelRunError: a failing query surfaces as an error (not a hang or
// partial outcome), whatever worker observes it first.
func TestParallelRunError(t *testing.T) {
	w, cfg := equivalenceWorkload(t)
	b, err := BuildMethod("SerialScan", w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.Queries = dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 8, Length: w.Data.Length() * 2, Seed: 11})
	_, err = ParallelRun(b.Method, bad, core.Query{Mode: core.ModeExact}, storage.CostModel{}, RunOptions{Workers: 4})
	if err == nil {
		t.Fatal("expected an error for mismatched query length")
	}
	if !strings.Contains(err.Error(), "query") {
		t.Fatalf("error %q does not identify the failing query", err)
	}
}

func TestTrimmedExtrapolateEdgeCases(t *testing.T) {
	if got := TrimmedExtrapolate(nil, 100); got != 0 {
		t.Fatalf("empty input: got %v, want 0", got)
	}
	if got := TrimmedExtrapolate([]float64{}, 100); got != 0 {
		t.Fatalf("empty slice: got %v, want 0", got)
	}
	// n = 1: nothing to trim, the single measurement scales directly.
	if got, want := TrimmedExtrapolate([]float64{0.5}, 10), 5.0; got != want {
		t.Fatalf("n=1: got %v, want %v", got, want)
	}
	// n = 2: still nothing to trim, scale the mean.
	if got, want := TrimmedExtrapolate([]float64{1, 3}, 10), 20.0; got != want {
		t.Fatalf("n=2: got %v, want %v", got, want)
	}
	// n = 3: one measurement trimmed from each end leaves the median.
	if got, want := TrimmedExtrapolate([]float64{100, 2, 0.001}, 10), 20.0; got != want {
		t.Fatalf("n=3: got %v, want %v", got, want)
	}
}

func TestSortRowsByRaggedAndPartialCells(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("x", "10")
	tb.AddRow("y") // ragged: no column 1
	tb.AddRow("z", "2")
	tb.SortRowsBy(1) // must not panic
	if tb.Rows[0][0] != "y" || tb.Rows[1][1] != "2" || tb.Rows[2][1] != "10" {
		t.Fatalf("ragged sort order wrong: %v", tb.Rows)
	}

	tb = &Table{Columns: []string{"v"}}
	tb.AddRow("12abc") // partial parse must NOT count as numeric
	tb.AddRow("3")
	tb.SortRowsBy(0)
	if tb.Rows[0][0] != "12abc" {
		t.Fatalf("partial-parse cell sorted numerically: %v", tb.Rows)
	}

	tb = &Table{Columns: []string{"v"}}
	tb.AddRow("10")
	tb.AddRow("9")
	tb.AddRow("0.5")
	tb.SortRowsBy(0)
	if tb.Rows[0][0] != "0.5" || tb.Rows[1][0] != "9" || tb.Rows[2][0] != "10" {
		t.Fatalf("numeric sort wrong: %v", tb.Rows)
	}
}
