package eval

import (
	"fmt"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/kernel"
	"hydra/internal/storage"
)

// TestKernelEquivalenceEndToEnd is the whole-system proof of the kernel
// equivalence contract: full workload runs answer byte-identically under
// the scalar and blocked kernels — same neighbour ids, same distance
// strings, same DistCalcs, same I/O counters — for the disk-based
// methods, sharded and unsharded, across query modes. Each index is
// built once and queried under both kernels, which is exactly the flip a
// production operator would make.
func TestKernelEquivalenceEndToEnd(t *testing.T) {
	defer kernel.Use(kernel.Default)
	w := NewWorkload(dataset.KindWalk, 600, 64, 8, 5, 99)
	model := storage.DefaultCostModel()
	methods := []string{"SerialScan", "VA+file", "iSAX2+", "DSTree"}
	modes := []struct {
		label    string
		template core.Query
	}{
		{"exact", core.Query{Mode: core.ModeExact}},
		{"eps=0.5", core.Query{Mode: core.ModeEpsilon, Epsilon: 0.5}},
		{"deps=1", core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 1}},
		{"ng=4", core.Query{Mode: core.ModeNG, NProbe: 4}},
	}

	for _, shards := range []int{1, 3} {
		cfg := DefaultSuite()
		cfg.N = w.Data.Size()
		cfg.Shards = shards
		for _, name := range methods {
			built, err := BuildMethod(name, w, cfg)
			if err != nil {
				t.Fatalf("shards=%d: build %s: %v", shards, name, err)
			}
			for _, mode := range modes {
				var ref []string
				var refIO storage.Stats
				var refCalcs int64
				for ki, k := range kernel.Kernels() {
					kernel.Use(k)
					out, err := ParallelRun(built.Method, w, mode.template, model, RunOptions{Workers: 1})
					if err != nil {
						t.Fatalf("shards=%d %s %s under %v: %v", shards, name, mode.label, k, err)
					}
					lines := make([]string, len(out.Results))
					for qi, res := range out.Results {
						lines[qi] = AnswerLine(qi, res.Neighbors)
					}
					if ki == 0 {
						ref, refIO, refCalcs = lines, out.IO, out.DistCalcs
						continue
					}
					for qi := range lines {
						if lines[qi] != ref[qi] {
							t.Errorf("shards=%d %s %s: query %d answers differ between kernels:\n  %v: %s\n  %v: %s",
								shards, name, mode.label, qi, kernel.Kernels()[0], ref[qi], k, lines[qi])
						}
					}
					if out.DistCalcs != refCalcs {
						t.Errorf("shards=%d %s %s: DistCalcs %d under %v != %d under %v",
							shards, name, mode.label, out.DistCalcs, k, refCalcs, kernel.Kernels()[0])
					}
					if got, want := fmt.Sprintf("%+v", out.IO), fmt.Sprintf("%+v", refIO); got != want {
						t.Errorf("shards=%d %s %s: IO differs between kernels:\n  %s\n  %s",
							shards, name, mode.label, want, got)
					}
				}
			}
		}
	}
}
