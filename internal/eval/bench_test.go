package eval

import (
	"fmt"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

// BenchmarkWorkloadThroughput compares serial and parallel execution of a
// 100-query in-memory workload. The serial scan is the paper's baseline and
// the most CPU-bound method, so it shows the executor's scaling cleanly:
// workers=4 should deliver well over 1.5x the workload throughput of
// workers=1 on any multi-core machine.
func BenchmarkWorkloadThroughput(b *testing.B) {
	cfg := SuiteConfig{N: 2000, Length: 128, Queries: 100, K: 10, Seed: 42, HistogramPairs: 1000, Workers: 1}
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	for _, method := range []string{"SerialScan", "DSTree", "VA+file"} {
		built, err := BuildMethod(method, w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", method, workers), func(b *testing.B) {
				var qps float64
				for i := 0; i < b.N; i++ {
					out, err := ParallelRun(built.Method, w, core.Query{Mode: core.ModeExact}, storage.CostModel{}, RunOptions{Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					qps = float64(w.Queries.Size()) / out.WallSeconds
				}
				b.ReportMetric(qps, "queries/s")
			})
		}
	}
}
