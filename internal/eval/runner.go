package eval

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/core"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// Workload is a named set of queries against a dataset, with optional
// ground truth. Truth may be nil for serving-style runs that only need
// answers and cost counters: the runner then skips accuracy measurement
// and RunOutcome.Metrics stays zero.
type Workload struct {
	Data    *series.Dataset
	Queries *series.Dataset
	Truth   [][]core.Neighbor // per query, k exact neighbours (nil skips accuracy)
	K       int
}

// RunOutcome is the measured outcome of running a workload on one method
// under one query configuration.
type RunOutcome struct {
	Metrics     WorkloadMetrics
	WallSeconds float64       // measured CPU/wall time of the searches
	IO          storage.Stats // summed raw-data access counters
	DistCalcs   int64
	// ModelSeconds is WallSeconds plus the cost model's I/O time (and its
	// optional per-distance-computation CPU charge); it is the number used
	// for the on-disk experiments.
	ModelSeconds float64
	// PerQueryModelSeconds holds the modelled cost of each query, used by
	// the paper's trimmed extrapolation to large workloads.
	PerQueryModelSeconds []float64
	Results              []core.Result
}

// TrimmedExtrapolate projects the cost of `target` queries from measured
// per-query times following the paper's procedure: "we discard the 5 best
// and 5 worst queries of the original 100 (in terms of total execution
// time), and multiply the average of the 90 remaining queries" — scaled
// here to the actual workload size (trim 5% from each end, at least one
// query each when the workload allows).
func TrimmedExtrapolate(perQuerySeconds []float64, target int) float64 {
	n := len(perQuerySeconds)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), perQuerySeconds...)
	sort.Float64s(sorted)
	trim := n / 20
	if trim == 0 && n > 2 {
		trim = 1
	}
	kept := sorted[trim : n-trim]
	var sum float64
	for _, v := range kept {
		sum += v
	}
	return sum / float64(len(kept)) * float64(target)
}

// QueriesPerMinute converts a per-workload time into the paper's
// throughput measure.
func QueriesPerMinute(seconds float64, queries int) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(queries) / (seconds / 60)
}

// RunOptions configures workload execution.
type RunOptions struct {
	// Workers is the number of goroutines fanning queries out. 0 (or any
	// non-positive value) selects runtime.GOMAXPROCS(0); 1 runs serially.
	Workers int
}

// Run executes every query of the workload against the method using the
// template query (its Series field is replaced per query) and measures
// accuracy and cost. model may be zero-valued for in-memory runs. Queries
// run serially; it is the workers=1 special case of ParallelRun.
func Run(m core.Method, w Workload, template core.Query, model storage.CostModel) (RunOutcome, error) {
	return ParallelRun(m, w, template, model, RunOptions{Workers: 1})
}

// ParallelRun executes the workload like Run but fans the queries across a
// pool of opts.Workers goroutines. It relies on the core.Method concurrency
// contract (Search safe for concurrent use); because every per-query Result
// — neighbours, counters, I/O — is computed independently of how queries
// interleave, the outcome is identical to a serial Run up to wall-clock
// fields: Results keep workload order and IO/DistCalcs are exact sums, not
// racy shared-counter reads. The one exception is ADS+, whose queries
// refine the index as they run: its per-query counters (and, in approximate
// modes, neighbours) depend on the order its serialised searches acquire
// the tree, which worker scheduling makes nondeterministic.
// PerQueryModelSeconds stays per-query, but its
// wall-clock component includes any time a query spends descheduled while
// other workers hold the CPU — on an oversubscribed machine parallel
// per-query times (and the trimmed extrapolations built on them) read
// higher than serial ones. Paper-faithful timings therefore come from
// workers=1; parallel runs are for throughput.
func ParallelRun(m core.Method, w Workload, template core.Query, model storage.CostModel, opts RunOptions) (RunOutcome, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := w.Queries.Size()
	if workers > n && n > 0 {
		workers = n
	}

	results := make([]core.Result, n)
	perQuery := make([]float64, n)
	runQuery := func(qi int) error {
		q := template
		q.Series = w.Queries.At(qi)
		q.K = w.K
		qStart := time.Now()
		res, err := m.Search(q)
		if err != nil {
			return fmt.Errorf("eval: %s query %d: %w", m.Name(), qi, err)
		}
		perQuery[qi] = time.Since(qStart).Seconds() + model.QuerySeconds(res.IO, res.DistCalcs)
		results[qi] = res
		return nil
	}

	start := time.Now()
	if workers <= 1 {
		for qi := 0; qi < n; qi++ {
			if err := runQuery(qi); err != nil {
				return RunOutcome{}, err
			}
		}
	} else {
		var (
			next    atomic.Int64
			stop    atomic.Bool
			errOnce sync.Once
			runErr  error
			wg      sync.WaitGroup
		)
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					qi := int(next.Add(1)) - 1
					if qi >= n {
						return
					}
					if err := runQuery(qi); err != nil {
						errOnce.Do(func() { runErr = err })
						stop.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
		if runErr != nil {
			return RunOutcome{}, runErr
		}
	}

	out := RunOutcome{Results: results, PerQueryModelSeconds: perQuery}
	for _, res := range results {
		out.IO = out.IO.Add(res.IO)
		out.DistCalcs += res.DistCalcs
	}
	out.WallSeconds = time.Since(start).Seconds()
	out.ModelSeconds = out.WallSeconds + model.QuerySeconds(out.IO, out.DistCalcs)
	if w.Truth != nil {
		metrics, err := Measure(w.Data, w.Queries, out.Results, w.Truth)
		if err != nil {
			return RunOutcome{}, err
		}
		out.Metrics = metrics
	}
	return out, nil
}

// AnswerLine renders one query's answers in the canonical per-query line
// format shared by hydra-query's output and hydra-serve's text response
// ("query %3d:" followed by one " (id, dist)" pair per neighbour). Both
// frontends emitting the same bytes for the same answers is what lets the
// serve smoke test diff CLI output against server output directly.
func AnswerLine(qi int, neighbors []core.Neighbor) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query %3d:", qi)
	for _, nb := range neighbors {
		fmt.Fprintf(&sb, " (%d, %.4f)", nb.ID, nb.Dist)
	}
	return sb.String()
}

// Table is a printable experiment result: a title, column names and rows.
// Rows hold strings so callers control formatting.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(out io.Writer) {
	fmt.Fprintf(out, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		fmt.Fprintln(out, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// SortRowsBy sorts rows by the given column index, numerically when both
// cells parse fully as floats, lexicographically otherwise. Rows too short
// to have the column sort as if the cell were empty (a partial-parse cell
// like "12abc" is NOT numeric).
func (t *Table) SortRowsBy(col int) {
	cell := func(row []string) string {
		if col < 0 || col >= len(row) {
			return ""
		}
		return row[col]
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := cell(t.Rows[i]), cell(t.Rows[j])
		fa, errA := strconv.ParseFloat(a, 64)
		fb, errB := strconv.ParseFloat(b, 64)
		if errA == nil && errB == nil {
			return fa < fb
		}
		return a < b
	})
}

// F formats a float compactly for table cells.
func F(v float64) string {
	v = sanitize(v)
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.3g", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// I formats an integer cell.
func I(v int64) string { return fmt.Sprintf("%d", v) }
