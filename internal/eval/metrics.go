// Package eval provides the unified evaluation harness: the accuracy
// measures of the paper's Section 4.1 (Avg Recall, MAP, MRE), the workload
// runner with modelled on-disk timing, and the experiment drivers that
// regenerate every figure of the evaluation.
package eval

import (
	"fmt"
	"math"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/series"
)

// Recall returns the fraction of true k-NN ids present in the result
// (paper: "# true neighbors returned / k").
func Recall(result []core.Neighbor, truth []core.Neighbor) float64 {
	if len(truth) == 0 {
		return 0
	}
	trueIDs := make(map[int]struct{}, len(truth))
	for _, nb := range truth {
		trueIDs[nb.ID] = struct{}{}
	}
	hits := 0
	for _, nb := range result {
		if _, ok := trueIDs[nb.ID]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// AveragePrecision computes AP as defined in the paper:
// AP = (1/k) Σ_r P(r)·rel(r), where P(r) is the precision among the first r
// returned elements and rel(r) = 1 iff the r-th returned element is a true
// neighbour. Order-sensitive, unlike recall.
func AveragePrecision(result []core.Neighbor, truth []core.Neighbor) float64 {
	if len(truth) == 0 {
		return 0
	}
	trueIDs := make(map[int]struct{}, len(truth))
	for _, nb := range truth {
		trueIDs[nb.ID] = struct{}{}
	}
	hits := 0
	var sum float64
	for r, nb := range result {
		if _, ok := trueIDs[nb.ID]; ok {
			hits++
			sum += float64(hits) / float64(r+1)
		}
	}
	return sum / float64(len(truth))
}

// RelativeError computes RE: the mean, over ranks r = 1..k, of
// (d(q, returned_r) − d(q, exact_r)) / d(q, exact_r), using true distances
// recomputed from the raw data (so methods that report compressed distances,
// like IMI, are measured on what they actually returned). Queries whose
// exact distance is zero at some rank are skipped at that rank, following
// the paper's convention of excluding d = 0 matches.
//
// Per the paper's footnote, ε upper-bounds this quantity for ε-approximate
// results.
func RelativeError(q series.Series, data *series.Dataset, result []core.Neighbor, truth []core.Neighbor) float64 {
	n := len(result)
	if n > len(truth) {
		n = len(truth)
	}
	var sum float64
	counted := 0
	for r := 0; r < n; r++ {
		exact := truth[r].Dist
		if exact <= 0 {
			continue
		}
		got := kernel.Dist(q, data.At(result[r].ID))
		sum += (got - exact) / exact
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// QueryMetrics bundles the per-query accuracy values.
type QueryMetrics struct {
	Recall float64
	AP     float64
	RE     float64
}

// WorkloadMetrics aggregates a workload (paper: Avg Recall, MAP, MRE).
type WorkloadMetrics struct {
	AvgRecall float64
	MAP       float64
	MRE       float64
}

// Aggregate averages per-query metrics into workload metrics.
func Aggregate(per []QueryMetrics) WorkloadMetrics {
	if len(per) == 0 {
		return WorkloadMetrics{}
	}
	var w WorkloadMetrics
	for _, m := range per {
		w.AvgRecall += m.Recall
		w.MAP += m.AP
		w.MRE += m.RE
	}
	n := float64(len(per))
	w.AvgRecall /= n
	w.MAP /= n
	w.MRE /= n
	return w
}

// Measure computes the accuracy of results against ground truth for a full
// workload. queries and data provide the raw values needed to recompute
// true distances.
func Measure(data *series.Dataset, queries *series.Dataset, results []core.Result, truth [][]core.Neighbor) (WorkloadMetrics, error) {
	if len(results) != queries.Size() || len(truth) != queries.Size() {
		return WorkloadMetrics{}, fmt.Errorf("eval: %d results / %d truths for %d queries", len(results), len(truth), queries.Size())
	}
	per := make([]QueryMetrics, len(results))
	for i := range results {
		per[i] = QueryMetrics{
			Recall: Recall(results[i].Neighbors, truth[i]),
			AP:     AveragePrecision(results[i].Neighbors, truth[i]),
			RE:     RelativeError(queries.At(i), data, results[i].Neighbors, truth[i]),
		}
	}
	return Aggregate(per), nil
}

// sanitize guards against NaN leaking into reports.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
