package eval

import (
	"encoding/json"
	"math"
	"os"
	"sort"
	"testing"

	"hydra/internal/dataset"
	"hydra/internal/kernel"
	"hydra/internal/quant"
	"hydra/internal/summaries/dft"
	"hydra/internal/summaries/eapca"
	"hydra/internal/summaries/paa"
	"hydra/internal/summaries/sax"
)

// LowerBoundBenchEntry is one row of BENCH_lowerbounds.json. Two row
// shapes share the file, mirroring the hydra-benchgate union: rows with
// Baseline set compare the restructured lower-bound path against the
// seed's per-candidate shape (Speedup = baseline ns / this row's ns);
// rows with Kernel set compare the blocked kernel against scalar on the
// same shape (SpeedupVsScalar). Baseline-less, kernel-less rows are the
// reference measurements and gate nothing.
type LowerBoundBenchEntry struct {
	Name            string  `json:"name"`
	Kernel          string  `json:"kernel,omitempty"`
	Baseline        string  `json:"baseline,omitempty"`
	NsPerOp         float64 `json:"ns_per_op"`
	Dims            int     `json:"dims"`
	Count           int     `json:"count"`
	Speedup         float64 `json:"speedup,omitempty"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar,omitempty"`
}

// TestWriteLowerBoundBenchJSON measures the phase-1 and node-bound
// lower-bound shapes — legacy per-candidate loops versus the gap-table /
// packed-region kernel paths — and writes BENCH_lowerbounds.json to the
// path in HYDRA_BENCH_LOWERBOUNDS_JSON. Skipped when the variable is
// unset so `go test ./...` stays fast; `make bench-json` runs it for real.
func TestWriteLowerBoundBenchJSON(t *testing.T) {
	path := os.Getenv("HYDRA_BENCH_LOWERBOUNDS_JSON")
	if path == "" {
		t.Skip("HYDRA_BENCH_LOWERBOUNDS_JSON not set; run via `make bench-json`")
	}
	defer kernel.Use(kernel.Default)

	var entries []LowerBoundBenchEntry
	ns := func(run func(b *testing.B)) float64 {
		r := testing.Benchmark(run)
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	// compare measures a legacy shape against its kernel replacement (the
	// replacement under the blocked kernel, the shipped default) and
	// appends both rows; the replacement row carries the gated speedup.
	compare := func(name, baseline string, dims, count int, legacy, replacement func(b *testing.B)) {
		kernel.Use(kernel.Blocked)
		legacyNs := ns(legacy)
		newNs := ns(replacement)
		entries = append(entries,
			LowerBoundBenchEntry{Name: name + "/" + baseline, NsPerOp: legacyNs, Dims: dims, Count: count},
			LowerBoundBenchEntry{Name: name, Baseline: baseline, NsPerOp: newNs, Dims: dims, Count: count, Speedup: legacyNs / newNs})
		t.Logf("%s: legacy %.0f ns/op, kernel %.0f ns/op (%.2fx)", name, legacyNs, newNs, legacyNs/newNs)
	}
	// kernels measures one kernel shape under both kernels and appends a
	// row per kernel with the blocked row carrying SpeedupVsScalar.
	kernels := func(name string, dims, count int, run func(b *testing.B)) {
		var scalarNs float64
		for _, k := range kernel.Kernels() {
			kernel.Use(k)
			got := ns(run)
			e := LowerBoundBenchEntry{Name: name, Kernel: k.String(), NsPerOp: got, Dims: dims, Count: count, SpeedupVsScalar: 1}
			if k == kernel.Scalar {
				scalarNs = got
			} else if got > 0 {
				e.SpeedupVsScalar = scalarNs / got
			}
			entries = append(entries, e)
			t.Logf("%s kernel=%s: %.0f ns/op (%.2fx)", name, k, got, e.SpeedupVsScalar)
		}
	}

	// --- VA+file phase 1: per-candidate LowerGap scan + full sort versus
	// gap-table gather + bounded heap selection. Same quantizers, same
	// codes, same candidate count as a mid-size file.
	const (
		vaCands  = 4096
		vaCoeffs = 16
		vaCells  = 64
	)
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: vaCands, Length: 256, Seed: 71})
	coeffs := make([][]float64, vaCands)
	for i := range coeffs {
		coeffs[i] = dft.Coefficients(data.At(i), vaCoeffs)
	}
	quants := make([]*quant.Scalar, vaCoeffs)
	samples := make([]float64, vaCands)
	for d := 0; d < vaCoeffs; d++ {
		for i := range coeffs {
			samples[i] = coeffs[i][d]
		}
		quants[d] = quant.TrainScalar(samples, vaCells, 10)
	}
	codes := make([]uint16, vaCands*vaCoeffs)
	for i, c := range coeffs {
		for d, v := range c {
			codes[i*vaCoeffs+d] = uint16(quants[d].Encode(v))
		}
	}
	qc := dft.Coefficients(dataset.Queries(data, dataset.KindWalk, 1, 72).At(0), vaCoeffs)
	const visited = 64 // candidates a typical exact query refines before pruning
	compare("lb/va-phase1", "sorted-scan", vaCoeffs, vaCands,
		func(b *testing.B) {
			lbs := make([]float64, vaCands)
			ids := make([]int, vaCands)
			for i := 0; i < b.N; i++ {
				for j := 0; j < vaCands; j++ {
					var acc float64
					for d := 0; d < vaCoeffs; d++ {
						g := quants[d].LowerGap(qc[d], int(codes[j*vaCoeffs+d]))
						acc += g * g
					}
					lbs[j] = math.Sqrt(acc)
					ids[j] = j
				}
				sort.Slice(ids, func(a, c int) bool { return lbs[ids[a]] < lbs[ids[c]] })
			}
		},
		func(b *testing.B) {
			tab := kernel.GapTable{Gaps2: make([]float64, vaCoeffs*vaCells), Off: make([]int, vaCoeffs), Dims: vaCoeffs}
			for d := range tab.Off {
				tab.Off[d] = d * vaCells
			}
			lb2 := make([]float64, vaCands)
			idx := make([]int32, vaCands)
			for i := 0; i < b.N; i++ {
				for d := 0; d < vaCoeffs; d++ {
					quants[d].LowerGaps2(qc[d], tab.Gaps2[tab.Off[d]:tab.Off[d]+vaCells])
				}
				kernel.VALowerBounds2(tab, codes, lb2)
				idx = idx[:vaCands]
				for j := range idx {
					idx[j] = int32(j)
				}
				kernel.SelectLowerBounds2(lb2, idx)
				heap := idx
				for j := 0; j < visited && len(heap) > 0; j++ {
					_, heap = kernel.PopLowerBound2(lb2, heap)
				}
			}
		})

	// --- iSAX node bound: MinDistPAA breakpoint walks versus the
	// precomputed-region kernel over a node population the size of a
	// deep tree.
	const (
		saxNodes = 512
		saxSegs  = 16
		saxBits  = 8
		saxLen   = 256
	)
	words := make([]sax.Word, saxNodes)
	regions := make([][]float64, saxNodes)
	for i := range words {
		words[i] = sax.FromSeries(data.At(i), saxSegs, saxBits)
		regions[i] = words[i].Regions()
	}
	qp := paa.Transform(data.At(saxNodes), saxSegs)
	widths := sax.SegmentWidths(saxLen, saxSegs)
	compare("lb/isax-node-bound", "mindist-paa", saxSegs, saxNodes,
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, w := range words {
					_ = sax.MinDistPAA(qp, w, saxLen)
				}
			}
		},
		func(b *testing.B) {
			out := make([]float64, saxNodes)
			for i := 0; i < b.N; i++ {
				kernel.RegionLowerBounds2(qp, widths, regions, out)
				for j := range out {
					out[j] = math.Sqrt(out[j])
				}
			}
		})

	// --- DSTree node bound: per-synopsis four-array walks versus the
	// packed-bounds pair-region kernel.
	const (
		dtNodes = 512
		dtSegs  = 16
	)
	seg := eapca.Uniform(256, dtSegs)
	syns := make([]*eapca.Synopsis, dtNodes)
	packed := make([][]float64, dtNodes)
	for i := range syns {
		syns[i] = eapca.NewSynopsis(dtSegs)
		for j := 0; j < 8; j++ {
			syns[i].Update(eapca.Compute(data.At((i*8+j)%vaCands), seg))
		}
		packed[i] = syns[i].PackedBounds()
	}
	qPrefix := eapca.NewPrefix(data.At(dtNodes))
	fw := seg.FloatWidths()
	compare("lb/dstree-node-bound", "synopsis-walk", dtSegs, dtNodes,
		func(b *testing.B) {
			// The seed cursor resolved query stats through a per-node map
			// cache before each synopsis walk; keep that per-query shape.
			for i := 0; i < b.N; i++ {
				cache := make(map[*eapca.Synopsis][]eapca.Stat)
				for _, z := range syns {
					st, ok := cache[z]
					if !ok {
						st = eapca.ComputeFromPrefix(qPrefix, seg)
						cache[z] = st
					}
					_ = math.Sqrt(z.LowerBound2(st, seg))
				}
			}
		},
		func(b *testing.B) {
			out := make([]float64, dtNodes)
			var qbuf []float64
			for i := 0; i < b.N; i++ {
				qbuf = eapca.PackStats(eapca.ComputeFromPrefix(qPrefix, seg), qbuf[:0])
				kernel.PairRegionLowerBounds2(qbuf, fw, packed, out)
				for j := range out {
					out[j] = math.Sqrt(out[j])
				}
			}
		})

	// --- scalar vs blocked on the raw kernel shapes (the dims/counts
	// above, isolated from table fill and selection).
	gapTab := kernel.GapTable{Gaps2: make([]float64, vaCoeffs*vaCells), Off: make([]int, vaCoeffs), Dims: vaCoeffs}
	for d := range gapTab.Off {
		gapTab.Off[d] = d * vaCells
		quants[d].LowerGaps2(qc[d], gapTab.Gaps2[d*vaCells:(d+1)*vaCells])
	}
	vaOut := make([]float64, vaCands)
	kernels("lb/kernel/va-gather", vaCoeffs, vaCands, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernel.VALowerBounds2(gapTab, codes, vaOut)
		}
	})
	regOut := make([]float64, saxNodes)
	kernels("lb/kernel/region", saxSegs, saxNodes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernel.RegionLowerBounds2(qp, widths, regions, regOut)
		}
	})
	qPacked := eapca.PackStats(eapca.ComputeFromPrefix(qPrefix, seg), nil)
	prOut := make([]float64, dtNodes)
	kernels("lb/kernel/pair-region", dtSegs, dtNodes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernel.PairRegionLowerBounds2(qPacked, fw, packed, prOut)
		}
	})

	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d entries to %s", len(entries), path)
}
