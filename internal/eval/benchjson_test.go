package eval

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/kernel"
	"hydra/internal/storage"
)

// BenchEntry is one row of BENCH_kernels.json: a benchmark measured under
// one kernel, with the blocked rows carrying their speedup over the
// scalar measurement of the same benchmark.
type BenchEntry struct {
	Name       string  `json:"name"`
	Kernel     string  `json:"kernel"`
	NsPerOp    float64 `json:"ns_per_op"`
	Dims       int     `json:"dims"`
	BlockWidth int     `json:"block_width"`
	// SpeedupVsScalar is scalar ns/op divided by this row's ns/op; 1.0 on
	// the scalar rows by construction.
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
}

// TestWriteBenchJSON measures the kernel micro-benchmarks and two whole-
// method workloads under both kernels and writes BENCH_kernels.json to
// the path in HYDRA_BENCH_JSON. It is skipped when the variable is unset
// so `go test ./...` stays fast; `make bench-json` runs it for real.
func TestWriteBenchJSON(t *testing.T) {
	path := os.Getenv("HYDRA_BENCH_JSON")
	if path == "" {
		t.Skip("HYDRA_BENCH_JSON not set; run via `make bench-json`")
	}
	defer kernel.Use(kernel.Default)

	var entries []BenchEntry
	measure := func(name string, dims, blockWidth int, run func(k kernel.Kernel, b *testing.B)) {
		var scalarNs float64
		for _, k := range kernel.Kernels() {
			kernel.Use(k)
			r := testing.Benchmark(func(b *testing.B) { run(k, b) })
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			e := BenchEntry{Name: name, Kernel: k.String(), NsPerOp: ns, Dims: dims, BlockWidth: blockWidth, SpeedupVsScalar: 1}
			if k == kernel.Scalar {
				scalarNs = ns
			} else if ns > 0 {
				e.SpeedupVsScalar = scalarNs / ns
			}
			entries = append(entries, e)
			t.Logf("%s kernel=%s: %.0f ns/op (%.2fx)", name, k, ns, e.SpeedupVsScalar)
		}
	}

	// Micro: one query against a block of candidates, the shape behind
	// scan chunk scoring and leaf refinement.
	const cands = 1024
	for _, dims := range []int{64, 128, 256} {
		rng := rand.New(rand.NewSource(1))
		q := make([]float32, dims)
		for i := range q {
			q[i] = rng.Float32()
		}
		block := make([]float32, dims*cands)
		for i := range block {
			block[i] = rng.Float32()
		}
		out := make([]float64, cands)
		measure(fmt.Sprintf("SquaredDists/cands=%d", cands), dims, cands, func(k kernel.Kernel, b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.SquaredDists(q, block, out)
			}
		})
		if dims == 256 {
			// Tight-limit regime: most candidates abandon, as in a k-NN
			// refinement pass late in the scan.
			k := kernel.Scalar
			k.SquaredDists(q, block, out)
			sorted := append([]float64(nil), out...)
			for i := range sorted {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			limit := sorted[10]
			measure(fmt.Sprintf("SquaredDistsEarlyAbandon/cands=%d", cands), dims, cands, func(k kernel.Kernel, b *testing.B) {
				for i := 0; i < b.N; i++ {
					k.SquaredDistsEarlyAbandon(q, block, limit, out)
				}
			})
			views := make([][]float32, cands)
			for i := range views {
				views[i] = block[i*dims : (i+1)*dims]
			}
			measure(fmt.Sprintf("SquaredDistsGather/cands=%d", cands), dims, cands, func(k kernel.Kernel, b *testing.B) {
				for i := 0; i < b.N; i++ {
					k.SquaredDistsGather(q, views, math.Inf(1), out)
				}
			})
		}
	}

	// Whole-method: exact workloads through the real refinement paths, so
	// the JSON records how much of the micro win survives index traversal,
	// I/O accounting and heap maintenance.
	cfg := SuiteConfig{N: 2000, Length: 256, Queries: 20, K: 10, Seed: 42, HistogramPairs: 500}
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	for _, method := range []string{"SerialScan", "DSTree"} {
		built, err := BuildMethod(method, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		measure("method/"+method+"/exact", cfg.Length, 0, func(k kernel.Kernel, b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelRun(built.Method, w, core.Query{Mode: core.ModeExact}, storage.CostModel{}, RunOptions{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d entries to %s", len(entries), path)
}
