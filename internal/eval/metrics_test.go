package eval

import (
	"math"
	"testing"

	"hydra/internal/core"
	"hydra/internal/series"
)

func nb(ids ...int) []core.Neighbor {
	out := make([]core.Neighbor, len(ids))
	for i, id := range ids {
		out[i] = core.Neighbor{ID: id, Dist: float64(i + 1)}
	}
	return out
}

func TestRecall(t *testing.T) {
	truth := nb(1, 2, 3, 4)
	if got := Recall(nb(1, 2, 3, 4), truth); got != 1 {
		t.Errorf("perfect recall = %v", got)
	}
	if got := Recall(nb(1, 2, 9, 8), truth); got != 0.5 {
		t.Errorf("half recall = %v", got)
	}
	if got := Recall(nb(9, 8, 7, 6), truth); got != 0 {
		t.Errorf("zero recall = %v", got)
	}
	if got := Recall(nil, nil); got != 0 {
		t.Errorf("empty truth = %v", got)
	}
}

func TestAveragePrecisionOrderSensitive(t *testing.T) {
	truth := nb(1, 2)
	// Correct items first: AP = (1/2)(1/1 + 2/2) = 1.
	if got := AveragePrecision(nb(1, 2), truth); math.Abs(got-1) > 1e-12 {
		t.Errorf("AP perfect = %v", got)
	}
	// Correct items late: [9, 1]: hit at rank 2 -> P=0.5; AP = 0.5*0.5 = 0.25.
	if got := AveragePrecision(nb(9, 1), truth); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("AP late = %v", got)
	}
	// Same set, different order => different AP (the reason the paper adds
	// MAP next to recall).
	a := AveragePrecision([]core.Neighbor{{ID: 1}, {ID: 9}, {ID: 2}}, truth)
	b := AveragePrecision([]core.Neighbor{{ID: 9}, {ID: 1}, {ID: 2}}, truth)
	if a <= b {
		t.Errorf("earlier hits should give higher AP: %v vs %v", a, b)
	}
}

func TestRelativeError(t *testing.T) {
	data := series.NewDataset(2)
	data.Append(series.Series{0, 0}) // id 0
	data.Append(series.Series{3, 4}) // id 1, dist 5 from origin query
	data.Append(series.Series{6, 8}) // id 2, dist 10
	q := series.Series{0, 0}
	truth := []core.Neighbor{{ID: 0, Dist: 0.0001}, {ID: 1, Dist: 5}}
	// Result returns id 1 then id 2: rank 1 skipped only if exact <= 0.
	result := []core.Neighbor{{ID: 1}, {ID: 2}}
	// rank0: exact 0.0001, got 5 -> huge; use truth with nonzero dists.
	truth = []core.Neighbor{{ID: 1, Dist: 5}, {ID: 1, Dist: 5}}
	re := RelativeError(q, data, result, truth)
	// rank0: (5-5)/5 = 0; rank1: (10-5)/5 = 1 -> mean 0.5.
	if math.Abs(re-0.5) > 1e-12 {
		t.Errorf("RE = %v, want 0.5", re)
	}
	// Perfect result: RE 0.
	if got := RelativeError(q, data, []core.Neighbor{{ID: 1}}, []core.Neighbor{{ID: 1, Dist: 5}}); got != 0 {
		t.Errorf("perfect RE = %v", got)
	}
	// Zero exact distances are skipped.
	if got := RelativeError(q, data, []core.Neighbor{{ID: 1}}, []core.Neighbor{{ID: 0, Dist: 0}}); got != 0 {
		t.Errorf("zero-dist RE = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	per := []QueryMetrics{{Recall: 1, AP: 0.5, RE: 0.2}, {Recall: 0, AP: 0.5, RE: 0.4}}
	w := Aggregate(per)
	if w.AvgRecall != 0.5 || w.MAP != 0.5 || math.Abs(w.MRE-0.3) > 1e-12 {
		t.Errorf("aggregate = %+v", w)
	}
	if z := Aggregate(nil); z.AvgRecall != 0 {
		t.Error("empty aggregate should be zero")
	}
}

func TestMeasureMismatchErrors(t *testing.T) {
	data := series.NewDataset(2)
	data.Append(series.Series{1, 2})
	qs := series.NewDataset(2)
	qs.Append(series.Series{1, 2})
	if _, err := Measure(data, qs, nil, nil); err == nil {
		t.Error("expected mismatch error")
	}
}

func TestSanitize(t *testing.T) {
	if sanitize(math.NaN()) != 0 || sanitize(math.Inf(1)) != 0 {
		t.Error("sanitize should zero NaN/Inf")
	}
	if sanitize(1.5) != 1.5 {
		t.Error("sanitize should pass numbers through")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "t", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	if s == "" || len(tbl.Rows) != 2 {
		t.Error("table rendering broken")
	}
	tbl.SortRowsBy(0)
	if tbl.Rows[0][0] != "1" {
		t.Errorf("numeric sort wrong: %v", tbl.Rows)
	}
}

func TestFFormatting(t *testing.T) {
	if F(0) != "0" {
		t.Errorf("F(0) = %s", F(0))
	}
	if F(1234567) != "1.23e+06" {
		t.Errorf("F(large) = %s", F(1234567))
	}
	if F(0.1234) != "0.1234" {
		t.Errorf("F(small) = %s", F(0.1234))
	}
	if F(math.NaN()) != "0" {
		t.Errorf("F(NaN) = %s", F(math.NaN()))
	}
}

func TestQueriesPerMinute(t *testing.T) {
	if got := QueriesPerMinute(60, 100); got != 100 {
		t.Errorf("qpm = %v", got)
	}
	if got := QueriesPerMinute(0, 100); got != 0 {
		t.Errorf("qpm at zero time = %v", got)
	}
}

func TestTrimmedExtrapolate(t *testing.T) {
	// 20 per-query times with two outliers; 5% trim drops one from each
	// end, so the outliers vanish.
	times := make([]float64, 20)
	for i := range times {
		times[i] = 1.0
	}
	times[3] = 100 // slow outlier
	times[7] = 0.0001
	got := TrimmedExtrapolate(times, 10000)
	if math.Abs(got-10000) > 1 {
		t.Errorf("extrapolation = %v, want ~10000", got)
	}
	if TrimmedExtrapolate(nil, 100) != 0 {
		t.Error("empty input should give 0")
	}
	// Small workloads (n <= 2) keep everything.
	if got := TrimmedExtrapolate([]float64{2, 4}, 10); math.Abs(got-30) > 1e-9 {
		t.Errorf("untrimmed small workload = %v, want 30", got)
	}
}

func TestRecommendMatrix(t *testing.T) {
	cases := []struct {
		s    Scenario
		want string
	}{
		// Guarantees: DSTree, except small workloads with indexing counted.
		{Scenario{NeedGuarantees: true}, "DSTree"},
		{Scenario{NeedGuarantees: true, CountIndexing: true, LargeWorkload: false}, "iSAX2+"},
		{Scenario{NeedGuarantees: true, CountIndexing: true, LargeWorkload: true}, "DSTree"},
		// In-memory ng query-only: HNSW, unless MAP 1 is required.
		{Scenario{InMemory: true}, "HNSW"},
		{Scenario{InMemory: true, HighAccuracy: true}, "DSTree"},
		// In-memory ng with indexing counted.
		{Scenario{InMemory: true, CountIndexing: true, LargeWorkload: true}, "DSTree"},
		{Scenario{InMemory: true, CountIndexing: true}, "iSAX2+"},
		// On-disk.
		{Scenario{}, "DSTree"},
		{Scenario{CountIndexing: true}, "iSAX2+"},
		{Scenario{CountIndexing: true, LargeWorkload: true}, "DSTree"},
	}
	for i, c := range cases {
		got, rationale := Recommend(c.s)
		if got != c.want {
			t.Errorf("case %d (%+v): %s, want %s", i, c.s, got, c.want)
		}
		if rationale == "" {
			t.Errorf("case %d: empty rationale", i)
		}
	}
}
