package eval

import (
	"fmt"
	"io"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/kernel"
	"hydra/internal/scan"
	"hydra/internal/storage"
)

// SuiteConfig scales every experiment. The defaults regenerate all figures
// in minutes on a laptop; raising N/Length/Queries approaches the paper's
// original scale.
type SuiteConfig struct {
	N       int   // series per dataset
	Length  int   // series length for the "short" series experiments
	Queries int   // queries per workload
	K       int   // neighbours per query
	Seed    int64 // master seed
	// HistogramPairs is the sample size for the r_δ histogram (paper: 100K
	// sample).
	HistogramPairs int
	// Workers is the query-execution fan-out passed to ParallelRun. 0 (the
	// zero value) and 1 both reproduce the paper's serial measurement, so
	// existing SuiteConfig literals stay serial; negative means all cores.
	// Parallel runs change wall-clock-derived numbers (throughput, and —
	// because a descheduled query still accrues wall time — per-query
	// modelled seconds under CPU oversubscription) but never accuracy
	// metrics, neighbours or I/O counters — except for ADS+, whose
	// query-order-dependent index refinement makes those columns vary with
	// scheduling; keep Workers serial when reproducing ADS+ rows.
	Workers int
	// BuildWorkers is the index-construction fan-out used by the multi-
	// method figures (Fig2/Fig3/Fig4). 0 (the zero value) and 1 build
	// serially, preserving the paper's build-time measurements on an
	// otherwise idle machine; negative means all cores. Parallel builds
	// change wall-clock build times under CPU oversubscription but never
	// the built indexes themselves. With Shards > 1 the budget moves
	// inside each method — its shards build concurrently while methods
	// build in turn — so total build concurrency never exceeds it.
	BuildWorkers int
	// Shards splits every dataset into N contiguous shards: each method
	// builds one index per shard (concurrently under BuildWorkers) and
	// queries scatter-gather across them, merging per-shard top-k
	// candidates into the global answer. 0 (the zero value) and 1 keep the
	// classic single-store build. Exact answers and accuracy metrics are
	// unchanged by sharding; I/O counters reflect the partitioned layout
	// (e.g. one seek per shard for a full scan instead of one in total).
	Shards int
	// IndexDir, when non-empty, routes persistable methods through the
	// on-disk index catalog at that path: builds are saved once and later
	// runs load them (build-once / query-many). Empty keeps the classic
	// rebuild-every-run behaviour. With Shards > 1 the catalog holds one
	// entry per (shard, method), keyed by each shard slice's own content
	// fingerprint.
	IndexDir string
	// BuildLog, when non-nil, receives one line per catalog-routed build
	// reporting cache hit/miss and load-vs-build seconds.
	BuildLog io.Writer
	// Kernel selects the distance-kernel implementation ("scalar" or
	// "blocked") installed process-wide before an experiment runs. Empty
	// keeps kernel.Default. Both kernels return bit-identical distances,
	// so answers and accuracy metrics never depend on this knob — only
	// wall-clock-derived numbers do.
	Kernel string
}

// applyKernel installs the configured kernel, defaulting when unset. Every
// exported experiment entry point calls it so the knob works uniformly.
func (c SuiteConfig) applyKernel() error {
	k, err := kernel.Parse(c.Kernel)
	if err != nil {
		return err
	}
	kernel.Use(k)
	return nil
}

// runOptions maps the suite's Workers knob onto RunOptions: the zero value
// stays serial (unlike RunOptions, where 0 means all cores).
func (c SuiteConfig) runOptions() RunOptions {
	w := c.Workers
	if w == 0 {
		w = 1
	}
	return RunOptions{Workers: w}
}

// DefaultSuite returns the laptop-scale configuration.
func DefaultSuite() SuiteConfig {
	return SuiteConfig{N: 4000, Length: 128, Queries: 20, K: 10, Seed: 42, HistogramPairs: 4000, Workers: 1}
}

// NewWorkload generates a dataset + queries + ground truth for a kind.
func NewWorkload(kind dataset.Kind, n, length, queries, k int, seed int64) Workload {
	data := dataset.Generate(dataset.Config{Kind: kind, Count: n, Length: length, Seed: seed})
	qs := dataset.Queries(data, kind, queries, seed+1000)
	return Workload{Data: data, Queries: qs, Truth: scan.GroundTruth(data, qs, k), K: k}
}

// queryPlans returns the (label, query-template) sweep for a method: tree
// and VA methods sweep ε for δ-ε plots and nprobe for ng plots; graph/IMI/
// FLANN/HD-index sweep their candidate budgets; LSH methods sweep ε.
func queryPlans(name string, ng bool) []struct {
	Label string
	Query core.Query
} {
	type plan = struct {
		Label string
		Query core.Query
	}
	if ng {
		probes := []int{1, 2, 4, 8, 16, 64}
		if name == "HNSW" || name == "NSG" || name == "FLANN" || name == "HD-index" {
			probes = []int{8, 32, 128, 512}
		}
		out := make([]plan, 0, len(probes))
		for _, p := range probes {
			out = append(out, plan{Label: fmt.Sprintf("nprobe=%d", p), Query: core.Query{Mode: core.ModeNG, NProbe: p}})
		}
		return out
	}
	epsilons := []float64{5, 2, 1, 0.5, 0}
	out := make([]plan, 0, len(epsilons))
	for _, e := range epsilons {
		out = append(out, plan{
			Label: fmt.Sprintf("eps=%.1f", e),
			Query: core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: e, Delta: 1},
		})
	}
	return out
}

// supportsNG / supportsDelta report which sweeps apply (paper Table 1),
// derived from each method's registered capability flags.
func supportsNG(name string) bool {
	spec, ok := core.LookupMethod(name)
	return ok && spec.NG
}

func supportsDelta(name string) bool {
	spec, ok := core.LookupMethod(name)
	return ok && spec.DeltaEpsilon
}

// Table1 renders the method capability matrix.
func Table1() *Table {
	t := &Table{
		Title:   "Table 1: similarity search methods (matching accuracy / representation / disk)",
		Columns: []string{"Method", "Exact", "ng", "eps", "delta-eps", "Representation", "Disk", "Modified"},
	}
	tick := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for _, c := range core.Capabilities() {
		t.AddRow(c.Name, tick(c.Exact), tick(c.NG), tick(c.Epsilon), tick(c.DeltaEpsilon), c.Representation, tick(c.DiskResident), tick(c.Modified))
	}
	return t
}

// Fig2 measures indexing scalability: build time and footprint vs dataset
// size, for every method (paper Fig. 2a/2b). Each size's workload is
// generated once and shared by every method, and the per-size builds fan
// out across cfg.BuildWorkers.
func Fig2(cfg SuiteConfig, sizes []int, methods []string) ([]*Table, error) {
	if err := cfg.applyKernel(); err != nil {
		return nil, err
	}
	timeT := &Table{Title: "Fig 2a: indexing time (seconds) vs dataset size", Columns: append([]string{"Method"}, sizeLabels(sizes)...)}
	footT := &Table{Title: "Fig 2b: index footprint (bytes) vs dataset size", Columns: append([]string{"Method"}, sizeLabels(sizes)...)}
	timeRows := make([][]string, len(methods))
	footRows := make([][]string, len(methods))
	for i, name := range methods {
		timeRows[i] = []string{name}
		footRows[i] = []string{name}
	}
	for _, n := range sizes {
		w := NewWorkload(dataset.KindWalk, n, cfg.Length, 1, 1, cfg.Seed)
		if cfg.buildWorkersCount() > 1 {
			builts, err := BuildMethods(methods, w, cfg)
			if err != nil {
				return nil, err
			}
			for i, b := range builts {
				timeRows[i] = append(timeRows[i], F(b.BuildSeconds))
				footRows[i] = append(footRows[i], I(b.Footprint))
				builts[i] = Built{}
			}
		} else {
			// Serial: one index live at a time, as before the registry.
			ctx := NewBuildContext(w, cfg)
			for i, name := range methods {
				b, err := buildWithContext(name, ctx, cfg)
				if err != nil {
					return nil, fmt.Errorf("eval: building %s: %w", name, err)
				}
				timeRows[i] = append(timeRows[i], F(b.BuildSeconds))
				footRows[i] = append(footRows[i], I(b.Footprint))
			}
		}
	}
	for i := range methods {
		timeT.AddRow(timeRows[i]...)
		footT.AddRow(footRows[i]...)
	}
	return []*Table{timeT, footT}, nil
}

func sizeLabels(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("n=%d", s)
	}
	return out
}

// efficiencyAccuracy runs the throughput-vs-MAP sweep of Fig. 3/4 for one
// workload. If model is non-zero the modelled I/O time is included in the
// timing (the on-disk setting); methods lacking a store simply add zero.
func efficiencyAccuracy(title string, w Workload, cfg SuiteConfig, methods []string, ng bool, model storage.CostModel) (*Table, error) {
	t := &Table{
		Title:   title,
		Columns: []string{"Method", "Config", "MAP", "AvgRecall", "MRE", "Qrs/min", "Idx+100q(min)", "Idx+10Kq(min)", "%data", "RandIO"},
	}
	applicable := make([]string, 0, len(methods))
	for _, name := range methods {
		if ng && !supportsNG(name) {
			continue
		}
		if !ng && !supportsDelta(name) {
			continue
		}
		applicable = append(applicable, name)
	}
	// Parallel build workers trade peak memory (all indexes live at once)
	// for wall clock; the default serial path keeps the old one-index-at-
	// a-time footprint, building lazily against one shared context.
	parallel := cfg.buildWorkersCount() > 1
	var builts []Built
	var err error
	if parallel {
		if builts, err = BuildMethods(applicable, w, cfg); err != nil {
			return nil, err
		}
	}
	ctx := NewBuildContext(w, cfg)
	for mi, name := range applicable {
		var b Built
		if parallel {
			b = builts[mi]
			builts[mi] = Built{} // release after this sweep
		} else {
			if b, err = buildWithContext(name, ctx, cfg); err != nil {
				return nil, err
			}
		}
		for _, plan := range queryPlans(name, ng) {
			out, err := ParallelRun(b.Method, w, plan.Query, model, cfg.runOptions())
			if err != nil {
				return nil, err
			}
			qpm := QueriesPerMinute(out.ModelSeconds, w.Queries.Size())
			// Combined costs use the paper's trimmed extrapolation from the
			// measured workload to 100 / 10K queries.
			idx100 := (b.BuildSeconds + TrimmedExtrapolate(out.PerQueryModelSeconds, 100)) / 60
			idx10k := (b.BuildSeconds + TrimmedExtrapolate(out.PerQueryModelSeconds, 10000)) / 60
			pctData := 0.0
			if b.DataBytes > 0 {
				pctData = 100 * float64(out.IO.BytesRead) / float64(b.DataBytes) / float64(w.Queries.Size())
			}
			t.AddRow(name, plan.Label, F(out.Metrics.MAP), F(out.Metrics.AvgRecall), F(out.Metrics.MRE),
				F(qpm), F(idx100), F(idx10k), F(pctData), I(out.IO.RandomSeeks/int64(w.Queries.Size())))
		}
	}
	return t, nil
}

// Fig3 reproduces the in-memory efficiency/accuracy panels: short Walk
// series, long Walk series, and the two vector-dataset analogues, for both
// ng-approximate and δ-ε-approximate query answering.
func Fig3(cfg SuiteConfig) ([]*Table, error) {
	if err := cfg.applyKernel(); err != nil {
		return nil, err
	}
	inMem := storage.CostModel{} // in-memory: wall time only
	methodsAll := []string{"DSTree", "iSAX2+", "VA+file", "HNSW", "IMI", "FLANN", "SRS", "QALSH"}
	var tables []*Table

	short := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	tt, err := efficiencyAccuracy("Fig 3a-f: Walk short series, in-memory (ng sweep)", short, cfg, methodsAll, true, inMem)
	if err != nil {
		return nil, err
	}
	tables = append(tables, tt)
	tt, err = efficiencyAccuracy("Fig 3a-f: Walk short series, in-memory (delta-eps sweep)", short, cfg, methodsAll, false, inMem)
	if err != nil {
		return nil, err
	}
	tables = append(tables, tt)

	long := NewWorkload(dataset.KindWalk, cfg.N/4, cfg.Length*8, cfg.Queries, cfg.K, cfg.Seed+1)
	longMethods := []string{"DSTree", "iSAX2+", "VA+file", "SRS"}
	tt, err = efficiencyAccuracy("Fig 3g-l: Walk long series, in-memory (ng sweep)", long, cfg, longMethods, true, inMem)
	if err != nil {
		return nil, err
	}
	tables = append(tables, tt)
	tt, err = efficiencyAccuracy("Fig 3g-l: Walk long series, in-memory (delta-eps sweep)", long, cfg, longMethods, false, inMem)
	if err != nil {
		return nil, err
	}
	tables = append(tables, tt)

	sift := NewWorkload(dataset.KindClustered, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+2)
	tt, err = efficiencyAccuracy("Fig 3m-r: Sift-analogue (clustered vectors), in-memory (ng sweep)", sift, cfg, methodsAll, true, inMem)
	if err != nil {
		return nil, err
	}
	tables = append(tables, tt)
	tt, err = efficiencyAccuracy("Fig 3m-r: Sift-analogue, in-memory (delta-eps sweep)", sift, cfg, methodsAll, false, inMem)
	if err != nil {
		return nil, err
	}
	tables = append(tables, tt)

	deep := NewWorkload(dataset.KindClustered, cfg.N, 96, cfg.Queries, cfg.K, cfg.Seed+3)
	tt, err = efficiencyAccuracy("Fig 3s-x: Deep-analogue (96-dim clustered), in-memory (ng sweep)", deep, cfg, methodsAll, true, inMem)
	if err != nil {
		return nil, err
	}
	tables = append(tables, tt)
	tt, err = efficiencyAccuracy("Fig 3s-x: Deep-analogue, in-memory (delta-eps sweep)", deep, cfg, methodsAll, false, inMem)
	if err != nil {
		return nil, err
	}
	tables = append(tables, tt)
	return tables, nil
}

// Fig4 reproduces the on-disk panels: disk-capable methods with the I/O
// cost model included in timings, on the large Walk and vector analogues.
func Fig4(cfg SuiteConfig) ([]*Table, error) {
	if err := cfg.applyKernel(); err != nil {
		return nil, err
	}
	model := storage.DefaultCostModel()
	methods := []string{"DSTree", "iSAX2+", "VA+file", "IMI", "SRS"}
	var tables []*Table
	for _, spec := range []struct {
		name string
		kind dataset.Kind
		len  int
	}{
		{"Walk (Rand250GB-analogue)", dataset.KindWalk, cfg.Length},
		{"Sift-analogue", dataset.KindClustered, cfg.Length},
		{"Deep-analogue", dataset.KindClustered, 96},
	} {
		w := NewWorkload(spec.kind, cfg.N*2, spec.len, cfg.Queries, cfg.K, cfg.Seed+10)
		tt, err := efficiencyAccuracy("Fig 4: "+spec.name+" on-disk (ng sweep)", w, cfg, methods, true, model)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tt)
		tt, err = efficiencyAccuracy("Fig 4: "+spec.name+" on-disk (delta-eps sweep)", w, cfg, methods, false, model)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tt)
	}
	return tables, nil
}

// Fig5 compares the three accuracy measures on the Sift-analogue
// (paper Fig. 5a/5b): for each method/configuration it reports MAP,
// Avg Recall and MRE side by side.
func Fig5(cfg SuiteConfig) (*Table, error) {
	if err := cfg.applyKernel(); err != nil {
		return nil, err
	}
	w := NewWorkload(dataset.KindClustered, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+20)
	t := &Table{
		Title:   "Fig 5: accuracy measure comparison on Sift-analogue (Recall vs MAP vs MRE)",
		Columns: []string{"Method", "Config", "MAP", "AvgRecall", "MRE", "Recall==MAP?"},
	}
	for _, name := range []string{"DSTree", "iSAX2+", "VA+file", "HNSW", "IMI", "SRS", "QALSH", "FLANN"} {
		b, err := BuildMethod(name, w, cfg)
		if err != nil {
			return nil, err
		}
		plans := queryPlans(name, supportsNG(name))
		// One mid-sweep configuration per method keeps the table readable.
		plan := plans[len(plans)/2]
		out, err := ParallelRun(b.Method, w, plan.Query, storage.CostModel{}, cfg.runOptions())
		if err != nil {
			return nil, err
		}
		same := "yes"
		if diff := out.Metrics.AvgRecall - out.Metrics.MAP; diff > 0.02 || diff < -0.02 {
			same = "no"
		}
		t.AddRow(name, plan.Label, F(out.Metrics.MAP), F(out.Metrics.AvgRecall), F(out.Metrics.MRE), same)
	}
	return t, nil
}

// Fig6 compares the two best methods (DSTree, iSAX2+) across all five
// dataset analogues under an ε sweep, reporting throughput, % of data
// accessed and random I/O per query (paper Fig. 6 panels).
func Fig6(cfg SuiteConfig) ([]*Table, error) {
	if err := cfg.applyKernel(); err != nil {
		return nil, err
	}
	model := storage.DefaultCostModel()
	var tables []*Table
	specs := []struct {
		name string
		kind dataset.Kind
		len  int
	}{
		{"Rand-analogue", dataset.KindWalk, cfg.Length},
		{"Sift-analogue", dataset.KindClustered, cfg.Length},
		{"Deep-analogue", dataset.KindClustered, 96},
		{"Sald-analogue", dataset.KindSmooth, cfg.Length},
		{"Seismic-analogue", dataset.KindSeismic, cfg.Length * 2},
	}
	for _, spec := range specs {
		w := NewWorkload(spec.kind, cfg.N, spec.len, cfg.Queries, cfg.K, cfg.Seed+30)
		t := &Table{
			Title:   "Fig 6: best methods on " + spec.name + " (eps sweep, on-disk model)",
			Columns: []string{"Method", "eps", "MAP", "Qrs/min", "%data", "RandIO/query"},
		}
		for _, name := range []string{"DSTree", "iSAX2+"} {
			b, err := BuildMethod(name, w, cfg)
			if err != nil {
				return nil, err
			}
			for _, eps := range []float64{5, 2, 1, 0.5, 0} {
				out, err := ParallelRun(b.Method, w, core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: eps, Delta: 1}, model, cfg.runOptions())
				if err != nil {
					return nil, err
				}
				pct := 0.0
				if b.DataBytes > 0 {
					pct = 100 * float64(out.IO.BytesRead) / float64(b.DataBytes) / float64(w.Queries.Size())
				}
				t.AddRow(name, F(eps), F(out.Metrics.MAP), F(QueriesPerMinute(out.ModelSeconds, w.Queries.Size())),
					F(pct), I(out.IO.RandomSeeks/int64(w.Queries.Size())))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig7 measures total workload time vs k (paper Fig. 7): the first
// neighbour dominates the cost; additional neighbours are nearly free.
func Fig7(cfg SuiteConfig) (*Table, error) {
	if err := cfg.applyKernel(); err != nil {
		return nil, err
	}
	model := storage.DefaultCostModel()
	t := &Table{
		Title:   "Fig 7: total time vs k (eps-approximate, eps=1)",
		Columns: []string{"Dataset", "Method", "k", "Total(min)", "MAP"},
	}
	for _, spec := range []struct {
		name string
		kind dataset.Kind
	}{
		{"Walk", dataset.KindWalk},
		{"Sift-analogue", dataset.KindClustered},
	} {
		for _, name := range []string{"DSTree", "iSAX2+"} {
			for _, k := range []int{1, 10, 100} {
				w := NewWorkload(spec.kind, cfg.N, cfg.Length, cfg.Queries, k, cfg.Seed+40)
				b, err := BuildMethod(name, w, cfg)
				if err != nil {
					return nil, err
				}
				out, err := ParallelRun(b.Method, w, core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 1}, model, cfg.runOptions())
				if err != nil {
					return nil, err
				}
				t.AddRow(spec.name, name, I(int64(k)), F(out.ModelSeconds/60), F(out.Metrics.MAP))
			}
		}
	}
	return t, nil
}

// Fig8 sweeps ε (δ=1) and δ (ε=0) for the extended tree methods
// (paper Fig. 8a–e).
func Fig8(cfg SuiteConfig) ([]*Table, error) {
	if err := cfg.applyKernel(); err != nil {
		return nil, err
	}
	model := storage.DefaultCostModel()
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+50)
	epsT := &Table{
		Title:   "Fig 8a-c: throughput / MAP / MRE vs eps (delta=1)",
		Columns: []string{"Method", "eps", "Qrs/min", "MAP", "MRE"},
	}
	deltaT := &Table{
		Title:   "Fig 8d-e: throughput / MAP vs delta (eps=0)",
		Columns: []string{"Method", "delta", "Qrs/min", "MAP"},
	}
	for _, name := range []string{"DSTree", "iSAX2+"} {
		b, err := BuildMethod(name, w, cfg)
		if err != nil {
			return nil, err
		}
		for _, eps := range []float64{0, 1, 2, 3, 4, 5, 6} {
			out, err := ParallelRun(b.Method, w, core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: eps, Delta: 1}, model, cfg.runOptions())
			if err != nil {
				return nil, err
			}
			epsT.AddRow(name, F(eps), F(QueriesPerMinute(out.ModelSeconds, w.Queries.Size())), F(out.Metrics.MAP), F(out.Metrics.MRE))
		}
		for _, delta := range []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.99, 1} {
			out, err := ParallelRun(b.Method, w, core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: 0, Delta: delta}, model, cfg.runOptions())
			if err != nil {
				return nil, err
			}
			deltaT.AddRow(name, F(delta), F(QueriesPerMinute(out.ModelSeconds, w.Queries.Size())), F(out.Metrics.MAP))
		}
	}
	return []*Table{epsT, deltaT}, nil
}
