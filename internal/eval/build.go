package eval

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hydra/internal/catalog"
	"hydra/internal/core"
	// Importing the harness pulls in every index package's MethodSpec
	// registration; the builders below are driven entirely off the
	// registry, never off a per-method switch.
	_ "hydra/internal/methods"
	"hydra/internal/shard"
	"hydra/internal/storage"
)

// MethodNames lists every method the suite can build, in registry order.
var MethodNames = core.MethodNames()

// DiskMethodNames lists the methods that support disk-resident data
// (Table 1, last column), in registry order.
var DiskMethodNames = core.DiskMethodNames()

// Built is a constructed method with its build cost.
type Built struct {
	Method       core.Method
	Store        *storage.SeriesStore // nil for in-memory and sharded methods
	BuildSeconds float64
	Footprint    int64
	// DataBytes is the raw data volume behind the method's store(s) — the
	// single store's size, or the sum across shard stores — used by the
	// %data-accessed columns. 0 for purely in-memory methods.
	DataBytes int64
	// FromCache is true when the index was loaded from cfg.IndexDir's
	// catalog instead of being built (for sharded builds: every shard
	// loaded); BuildSeconds then holds the load time (the serving cost in
	// the build-once/query-many workflow) and LoadSeconds repeats it for
	// explicit reporting.
	FromCache   bool
	LoadSeconds float64
	// Shards is the shard count the method was built under (0 when
	// unsharded); ShardHits counts the shards served from the catalog.
	Shards    int
	ShardHits int
}

// NewBuildContext derives the build context the suite hands to method
// specs: the leaf budget scales with the dataset (≈48 series per leaf,
// floor 16), matching the shape every figure was tuned with.
func NewBuildContext(w Workload, cfg SuiteConfig) *core.BuildContext {
	leafCap := w.Data.Size() / 48
	if leafCap < 16 {
		leafCap = 16
	}
	return &core.BuildContext{
		Data:           w.Data,
		LeafCapacity:   leafCap,
		HistogramPairs: cfg.HistogramPairs,
		HistogramSeed:  cfg.Seed + 7,
	}
}

// BuildMethod constructs one method by name over the workload's dataset.
// Tree/scan/VA methods get a private paged store so their I/O accounting is
// independent; methods supporting δ-ε search receive a histogram built from
// the dataset. With cfg.IndexDir set, persistable methods are served
// through the on-disk catalog (open-or-build); everything else builds
// fresh, exactly as before.
func BuildMethod(name string, w Workload, cfg SuiteConfig) (Built, error) {
	return buildWithContext(name, NewBuildContext(w, cfg), cfg)
}

// buildWithContext builds one method against a caller-supplied context, so
// a multi-method build can share one context (and its memoized histogram).
func buildWithContext(name string, ctx *core.BuildContext, cfg SuiteConfig) (Built, error) {
	spec, ok := core.LookupMethod(name)
	if !ok {
		return Built{}, fmt.Errorf("eval: unknown method %q", name)
	}
	if cfg.shardCount() > 1 {
		return buildSharded(spec, ctx, cfg)
	}
	if cfg.IndexDir != "" && spec.Persistable() {
		return buildViaCatalog(spec, ctx, cfg)
	}
	start := time.Now()
	r, err := spec.Build(ctx)
	if err != nil {
		return Built{}, err
	}
	return Built{
		Method:       r.Method,
		Store:        r.Store,
		BuildSeconds: time.Since(start).Seconds(),
		Footprint:    r.Method.Footprint(),
		DataBytes:    storeBytes(r.Store),
	}, nil
}

// storeBytes reports the raw data volume behind a store (0 when nil).
func storeBytes(st *storage.SeriesStore) int64 {
	if st == nil {
		return 0
	}
	return st.TotalBytes()
}

// shardCount maps SuiteConfig.Shards onto an effective shard count: 0 (the
// zero value) and 1 build unsharded.
func (c SuiteConfig) shardCount() int {
	if c.Shards < 2 {
		return 1
	}
	return c.Shards
}

// buildSharded partitions the context's dataset under cfg.Shards and
// builds one index per shard through shard.Build, routing persistable
// methods through the catalog (one entry per shard) when cfg.IndexDir is
// set. Shards build concurrently under cfg.BuildWorkers; per-shard catalog
// hit/miss lines go to cfg.BuildLog.
func buildSharded(spec core.MethodSpec, ctx *core.BuildContext, cfg SuiteConfig) (Built, error) {
	plan, err := shard.PlanFor(ctx, cfg.shardCount())
	if err != nil {
		return Built{}, err
	}
	var cat *catalog.Catalog
	if cfg.IndexDir != "" && spec.Persistable() {
		if cat, err = catalog.Open(cfg.IndexDir); err != nil {
			return Built{}, err
		}
	}
	start := time.Now()
	m, builds, err := shard.Build(spec, ctx, plan, shard.BuildOptions{
		Catalog: cat,
		Workers: cfg.buildWorkersCount(),
	})
	if err != nil {
		return Built{}, err
	}
	wall := time.Since(start).Seconds()
	hits := 0
	for _, sb := range builds {
		if sb.Hit {
			hits++
		}
	}
	if cat != nil && cfg.BuildLog != nil {
		buildLogMu.Lock()
		for _, sb := range builds {
			label := plan.Label(sb.Shard)
			switch {
			case sb.Hit:
				fmt.Fprintf(cfg.BuildLog, "catalog hit: %s shard %s (load %.3fs) %s\n", spec.Name, label, sb.Seconds, sb.Path)
			case sb.LoadErr != nil:
				fmt.Fprintf(cfg.BuildLog, "catalog rejected entry, rebuilt: %s shard %s (build %.3fs): %v\n", spec.Name, label, sb.Seconds, sb.LoadErr)
			default:
				fmt.Fprintf(cfg.BuildLog, "catalog miss: %s shard %s (build %.3fs, saved) %s\n", spec.Name, label, sb.Seconds, sb.Path)
			}
			if sb.SaveErr != nil {
				fmt.Fprintf(cfg.BuildLog, "catalog save failed (index served from memory): %s shard %s: %v\n", spec.Name, label, sb.SaveErr)
			}
		}
		buildLogMu.Unlock()
	}
	b := Built{
		Method:       m,
		BuildSeconds: wall,
		Footprint:    m.Footprint(),
		DataBytes:    m.TotalBytes(),
		Shards:       plan.Count(),
		ShardHits:    hits,
	}
	if cat != nil && hits == plan.Count() {
		b.FromCache = true
		b.LoadSeconds = wall
	}
	return b, nil
}

// buildLogMu serialises SuiteConfig.BuildLog writes across build workers.
var buildLogMu sync.Mutex

// buildViaCatalog routes one build through the persistent index catalog.
func buildViaCatalog(spec core.MethodSpec, ctx *core.BuildContext, cfg SuiteConfig) (Built, error) {
	cat, err := catalog.Open(cfg.IndexDir)
	if err != nil {
		return Built{}, err
	}
	res, err := cat.OpenOrBuild(spec, ctx)
	if err != nil {
		return Built{}, err
	}
	if cfg.BuildLog != nil {
		// BuildMethods may run catalog builds from several goroutines;
		// keep each build's log lines whole and the writer un-raced.
		buildLogMu.Lock()
		defer buildLogMu.Unlock()
		switch {
		case res.Hit:
			fmt.Fprintf(cfg.BuildLog, "catalog hit: %s (load %.3fs) %s\n", spec.Name, res.LoadSeconds, res.Path)
		case res.LoadErr != nil:
			fmt.Fprintf(cfg.BuildLog, "catalog rejected entry, rebuilt: %s (build %.3fs): %v\n", spec.Name, res.BuildSeconds, res.LoadErr)
		default:
			fmt.Fprintf(cfg.BuildLog, "catalog miss: %s (build %.3fs, saved) %s\n", spec.Name, res.BuildSeconds, res.Path)
		}
		if res.SaveErr != nil {
			fmt.Fprintf(cfg.BuildLog, "catalog save failed (index served from memory): %s: %v\n", spec.Name, res.SaveErr)
		}
	}
	b := Built{
		Method:      res.Method,
		Store:       res.Store,
		Footprint:   res.Method.Footprint(),
		DataBytes:   storeBytes(res.Store),
		FromCache:   res.Hit,
		LoadSeconds: res.LoadSeconds,
	}
	if res.Hit {
		b.BuildSeconds = res.LoadSeconds
	} else {
		b.BuildSeconds = res.BuildSeconds
	}
	return b, nil
}

// BuildMethods constructs the named methods over one workload, fanning the
// builds across cfg.buildWorkersCount() goroutines. The i-th result
// corresponds to names[i]. Errors are collected per method and joined, so
// one broken method reports itself without masking the others.
func BuildMethods(names []string, w Workload, cfg SuiteConfig) ([]Built, error) {
	out := make([]Built, len(names))
	errs := make([]error, len(names))
	// One shared context: every method still gets its own private store,
	// but the (deterministic) distance histogram is computed once for the
	// workload instead of once per δ-ε method. BuildContext helpers are
	// safe for concurrent use.
	ctx := NewBuildContext(w, cfg)
	workers := cfg.buildWorkersCount()
	// Sharded builds spend the worker budget *inside* each method (its
	// shards build concurrently in buildSharded); fanning methods out on
	// top would square the concurrency to BuildWorkers² goroutines.
	if cfg.shardCount() > 1 {
		workers = 1
	}
	core.FanOut(len(names), workers, func(i int) {
		b, err := buildWithContext(names[i], ctx, cfg)
		if err != nil {
			errs[i] = fmt.Errorf("eval: building %s: %w", names[i], err)
			return
		}
		out[i] = b
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// buildWorkersCount maps SuiteConfig.BuildWorkers onto a worker count:
// 0 (the zero value) and 1 build serially, preserving paper-faithful
// build-time measurements; negative means all cores.
func (c SuiteConfig) buildWorkersCount() int {
	w := c.BuildWorkers
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w == 0 {
		return 1
	}
	return w
}
