package eval

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hydra/internal/catalog"
	"hydra/internal/core"
	// Importing the harness pulls in every index package's MethodSpec
	// registration; the builders below are driven entirely off the
	// registry, never off a per-method switch.
	_ "hydra/internal/methods"
	"hydra/internal/storage"
)

// MethodNames lists every method the suite can build, in registry order.
var MethodNames = core.MethodNames()

// DiskMethodNames lists the methods that support disk-resident data
// (Table 1, last column), in registry order.
var DiskMethodNames = core.DiskMethodNames()

// Built is a constructed method with its build cost.
type Built struct {
	Method       core.Method
	Store        *storage.SeriesStore // nil for purely in-memory methods
	BuildSeconds float64
	Footprint    int64
	// FromCache is true when the index was loaded from cfg.IndexDir's
	// catalog instead of being built; BuildSeconds then holds the load
	// time (the serving cost in the build-once/query-many workflow) and
	// LoadSeconds repeats it for explicit reporting.
	FromCache   bool
	LoadSeconds float64
}

// NewBuildContext derives the build context the suite hands to method
// specs: the leaf budget scales with the dataset (≈48 series per leaf,
// floor 16), matching the shape every figure was tuned with.
func NewBuildContext(w Workload, cfg SuiteConfig) *core.BuildContext {
	leafCap := w.Data.Size() / 48
	if leafCap < 16 {
		leafCap = 16
	}
	return &core.BuildContext{
		Data:           w.Data,
		LeafCapacity:   leafCap,
		HistogramPairs: cfg.HistogramPairs,
		HistogramSeed:  cfg.Seed + 7,
	}
}

// BuildMethod constructs one method by name over the workload's dataset.
// Tree/scan/VA methods get a private paged store so their I/O accounting is
// independent; methods supporting δ-ε search receive a histogram built from
// the dataset. With cfg.IndexDir set, persistable methods are served
// through the on-disk catalog (open-or-build); everything else builds
// fresh, exactly as before.
func BuildMethod(name string, w Workload, cfg SuiteConfig) (Built, error) {
	return buildWithContext(name, NewBuildContext(w, cfg), cfg)
}

// buildWithContext builds one method against a caller-supplied context, so
// a multi-method build can share one context (and its memoized histogram).
func buildWithContext(name string, ctx *core.BuildContext, cfg SuiteConfig) (Built, error) {
	spec, ok := core.LookupMethod(name)
	if !ok {
		return Built{}, fmt.Errorf("eval: unknown method %q", name)
	}
	if cfg.IndexDir != "" && spec.Persistable() {
		return buildViaCatalog(spec, ctx, cfg)
	}
	start := time.Now()
	r, err := spec.Build(ctx)
	if err != nil {
		return Built{}, err
	}
	return Built{
		Method:       r.Method,
		Store:        r.Store,
		BuildSeconds: time.Since(start).Seconds(),
		Footprint:    r.Method.Footprint(),
	}, nil
}

// buildLogMu serialises SuiteConfig.BuildLog writes across build workers.
var buildLogMu sync.Mutex

// buildViaCatalog routes one build through the persistent index catalog.
func buildViaCatalog(spec core.MethodSpec, ctx *core.BuildContext, cfg SuiteConfig) (Built, error) {
	cat, err := catalog.Open(cfg.IndexDir)
	if err != nil {
		return Built{}, err
	}
	res, err := cat.OpenOrBuild(spec, ctx)
	if err != nil {
		return Built{}, err
	}
	if cfg.BuildLog != nil {
		// BuildMethods may run catalog builds from several goroutines;
		// keep each build's log lines whole and the writer un-raced.
		buildLogMu.Lock()
		defer buildLogMu.Unlock()
		switch {
		case res.Hit:
			fmt.Fprintf(cfg.BuildLog, "catalog hit: %s (load %.3fs) %s\n", spec.Name, res.LoadSeconds, res.Path)
		case res.LoadErr != nil:
			fmt.Fprintf(cfg.BuildLog, "catalog rejected entry, rebuilt: %s (build %.3fs): %v\n", spec.Name, res.BuildSeconds, res.LoadErr)
		default:
			fmt.Fprintf(cfg.BuildLog, "catalog miss: %s (build %.3fs, saved) %s\n", spec.Name, res.BuildSeconds, res.Path)
		}
		if res.SaveErr != nil {
			fmt.Fprintf(cfg.BuildLog, "catalog save failed (index served from memory): %s: %v\n", spec.Name, res.SaveErr)
		}
	}
	b := Built{
		Method:      res.Method,
		Store:       res.Store,
		Footprint:   res.Method.Footprint(),
		FromCache:   res.Hit,
		LoadSeconds: res.LoadSeconds,
	}
	if res.Hit {
		b.BuildSeconds = res.LoadSeconds
	} else {
		b.BuildSeconds = res.BuildSeconds
	}
	return b, nil
}

// BuildMethods constructs the named methods over one workload, fanning the
// builds across cfg.buildWorkersCount() goroutines. The i-th result
// corresponds to names[i]. Errors are collected per method and joined, so
// one broken method reports itself without masking the others.
func BuildMethods(names []string, w Workload, cfg SuiteConfig) ([]Built, error) {
	out := make([]Built, len(names))
	errs := make([]error, len(names))
	// One shared context: every method still gets its own private store,
	// but the (deterministic) distance histogram is computed once for the
	// workload instead of once per δ-ε method. BuildContext helpers are
	// safe for concurrent use.
	ctx := NewBuildContext(w, cfg)
	workers := cfg.buildWorkersCount()
	if workers > len(names) {
		workers = len(names)
	}
	if workers <= 1 {
		for i, name := range names {
			b, err := buildWithContext(name, ctx, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("eval: building %s: %w", name, err)
				continue
			}
			out[i] = b
		}
		if err := errors.Join(errs...); err != nil {
			return nil, err
		}
		return out, nil
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				b, err := buildWithContext(names[i], ctx, cfg)
				if err != nil {
					errs[i] = fmt.Errorf("eval: building %s: %w", names[i], err)
					continue
				}
				out[i] = b
			}
		}()
	}
	for i := range names {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// buildWorkersCount maps SuiteConfig.BuildWorkers onto a worker count:
// 0 (the zero value) and 1 build serially, preserving paper-faithful
// build-time measurements; negative means all cores.
func (c SuiteConfig) buildWorkersCount() int {
	w := c.BuildWorkers
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w == 0 {
		return 1
	}
	return w
}
