package eval

import (
	"bytes"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

// TestPersistedSearchEquivalence pins the build-once/query-many contract
// for every persistable method in the registry (DSTree, iSAX2+, ADS+,
// VA+file, HNSW, NSG): an index saved right after construction and
// reloaded against the same dataset answers a serial workload with
// byte-identical neighbours, metrics, I/O counters and distance-
// computation counts. ADS+ is included deliberately: both copies start
// from the same snapshot and refine identically under serial, same-order
// queries.
func TestPersistedSearchEquivalence(t *testing.T) {
	cfg := tinySuite()
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed+99)
	persistable := 0
	for _, spec := range core.RegisteredMethods() {
		if !spec.Persistable() {
			continue
		}
		persistable++
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if spec.ConfigString == "" {
				t.Errorf("%s: persistable spec must declare ConfigString so default-config changes invalidate cached indexes", spec.Name)
			}
			fresh, err := spec.Build(NewBuildContext(w, cfg))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := spec.Save(fresh.Method, &buf); err != nil {
				t.Fatalf("save: %v", err)
			}
			loaded, err := spec.Load(NewBuildContext(w, cfg), bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if fresh.Method.Footprint() != loaded.Method.Footprint() {
				t.Errorf("footprint %d after reload, want %d", loaded.Method.Footprint(), fresh.Method.Footprint())
			}
			queries := []core.Query{
				{Mode: core.ModeNG, NProbe: 8},
			}
			if spec.DeltaEpsilon {
				queries = append(queries, core.Query{Mode: core.ModeDeltaEpsilon, Epsilon: 1, Delta: 0.9})
			}
			if spec.Exact {
				queries = append(queries, core.Query{Mode: core.ModeExact})
			}
			for _, template := range queries {
				a, err := Run(fresh.Method, w, template, storage.DefaultCostModel())
				if err != nil {
					t.Fatalf("%v fresh: %v", template.Mode, err)
				}
				b, err := Run(loaded.Method, w, template, storage.DefaultCostModel())
				if err != nil {
					t.Fatalf("%v loaded: %v", template.Mode, err)
				}
				if a.DistCalcs != b.DistCalcs {
					t.Errorf("%v: dist calcs %d vs %d", template.Mode, a.DistCalcs, b.DistCalcs)
				}
				if a.IO != b.IO {
					t.Errorf("%v: IO %+v vs %+v", template.Mode, a.IO, b.IO)
				}
				if a.Metrics != b.Metrics {
					t.Errorf("%v: metrics %+v vs %+v", template.Mode, a.Metrics, b.Metrics)
				}
				for qi := range a.Results {
					ra, rb := a.Results[qi], b.Results[qi]
					if len(ra.Neighbors) != len(rb.Neighbors) {
						t.Fatalf("%v query %d: %d vs %d neighbours", template.Mode, qi, len(ra.Neighbors), len(rb.Neighbors))
					}
					for i := range ra.Neighbors {
						if ra.Neighbors[i] != rb.Neighbors[i] {
							t.Fatalf("%v query %d rank %d: %+v vs %+v", template.Mode, qi, i, ra.Neighbors[i], rb.Neighbors[i])
						}
					}
				}
			}
		})
	}
	if persistable < 4 {
		t.Fatalf("only %d persistable methods registered; DSTree, iSAX2+, VA+file and HNSW (at least) should persist", persistable)
	}
}
