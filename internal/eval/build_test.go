package eval

import (
	"bytes"
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

func TestMethodNamesDerivedFromRegistry(t *testing.T) {
	want := []string{"DSTree", "iSAX2+", "ADS+", "VA+file", "HNSW", "NSG", "IMI", "SRS", "QALSH", "FLANN", "HD-index", "MTree", "SerialScan"}
	if len(MethodNames) != len(want) {
		t.Fatalf("MethodNames = %v, want %v", MethodNames, want)
	}
	for i := range want {
		if MethodNames[i] != want[i] {
			t.Fatalf("MethodNames[%d] = %q, want %q", i, MethodNames[i], want[i])
		}
	}
	wantDisk := []string{"DSTree", "iSAX2+", "VA+file", "IMI", "SRS", "HD-index", "SerialScan"}
	if len(DiskMethodNames) != len(wantDisk) {
		t.Fatalf("DiskMethodNames = %v, want %v", DiskMethodNames, wantDisk)
	}
	for i := range wantDisk {
		if DiskMethodNames[i] != wantDisk[i] {
			t.Fatalf("DiskMethodNames[%d] = %q, want %q", i, DiskMethodNames[i], wantDisk[i])
		}
	}
}

// TestBuildMethodsMatchesSerial pins that the parallel builder produces the
// same indexes as one-at-a-time BuildMethod: same methods, same footprints,
// same exact-search answers.
func TestBuildMethodsMatchesSerial(t *testing.T) {
	cfg := tinySuite()
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	names := []string{"DSTree", "iSAX2+", "VA+file", "SerialScan"}

	parCfg := cfg
	parCfg.BuildWorkers = 4
	par, err := BuildMethods(names, w, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(names) {
		t.Fatalf("%d results for %d names", len(par), len(names))
	}
	for i, name := range names {
		ser, err := BuildMethod(name, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Method.Name() != ser.Method.Name() {
			t.Errorf("slot %d: %q, want %q", i, par[i].Method.Name(), ser.Method.Name())
		}
		if par[i].Footprint != ser.Footprint {
			t.Errorf("%s: footprint %d (parallel) vs %d (serial)", name, par[i].Footprint, ser.Footprint)
		}
		a, err := Run(par[i].Method, w, core.Query{Mode: core.ModeExact}, storage.CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(ser.Method, w, core.Query{Mode: core.ModeExact}, storage.CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics != b.Metrics || a.IO != b.IO {
			t.Errorf("%s: parallel-built index answers differently", name)
		}
	}
}

func TestBuildMethodsPropagatesPerMethodErrors(t *testing.T) {
	// Serial and parallel paths must report identically: every failing
	// method named, not just the first.
	for _, workers := range []int{0, 3} {
		cfg := tinySuite()
		cfg.BuildWorkers = workers
		w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
		_, err := BuildMethods([]string{"DSTree", "no-such-method", "also-missing"}, w, cfg)
		if err == nil {
			t.Fatalf("workers=%d: unknown methods accepted", workers)
		}
		msg := err.Error()
		for _, frag := range []string{"no-such-method", "also-missing"} {
			if !strings.Contains(msg, frag) {
				t.Errorf("workers=%d: error %q does not name %q", workers, msg, frag)
			}
		}
	}
}

// TestBuildMethodCatalogRoundTrip pins the eval↔catalog wiring: with
// IndexDir set, the first build persists and the second run loads, logging
// the hit, and the loaded index answers identically.
func TestBuildMethodCatalogRoundTrip(t *testing.T) {
	cfg := tinySuite()
	cfg.IndexDir = t.TempDir()
	var log bytes.Buffer
	cfg.BuildLog = &log
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)

	cold, err := BuildMethod("DSTree", w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FromCache {
		t.Fatal("first build claims a cache hit")
	}
	if !strings.Contains(log.String(), "catalog miss: DSTree") {
		t.Errorf("miss not logged: %q", log.String())
	}

	log.Reset()
	warm, err := BuildMethod("DSTree", w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.FromCache {
		t.Fatal("second build did not hit the catalog")
	}
	if !strings.Contains(log.String(), "catalog hit: DSTree") {
		t.Errorf("hit not logged: %q", log.String())
	}
	a, err := Run(cold.Method, w, core.Query{Mode: core.ModeExact}, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(warm.Method, w, core.Query{Mode: core.ModeExact}, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics || a.IO != b.IO || a.DistCalcs != b.DistCalcs {
		t.Error("catalog-loaded index answers differently from the built one")
	}

	// Non-persistable methods pass through the catalog untouched.
	if scan, err := BuildMethod("SerialScan", w, cfg); err != nil || scan.FromCache {
		t.Errorf("SerialScan through catalog: cache=%v err=%v", scan.FromCache, err)
	}
}

// TestCPUChargePerDistanceComputation covers the CostModel.CPUSecondsPerCmp
// satellite: a zero charge reproduces the pure-I/O model exactly, a
// non-zero charge adds precisely DistCalcs * rate to the modelled time.
func TestCPUChargePerDistanceComputation(t *testing.T) {
	cfg := tinySuite()
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	b, err := BuildMethod("SerialScan", w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := storage.DefaultCostModel()
	out, err := Run(b.Method, w, core.Query{Mode: core.ModeExact}, base)
	if err != nil {
		t.Fatal(err)
	}
	if out.DistCalcs == 0 {
		t.Fatal("scan performed no distance computations")
	}
	charged := base
	charged.CPUSecondsPerCmp = 1e-3
	out2, err := Run(b.Method, w, core.Query{Mode: core.ModeExact}, charged)
	if err != nil {
		t.Fatal(err)
	}
	// Identical work (exact scan is deterministic), so the model gap is
	// exactly the CPU charge.
	if out2.DistCalcs != out.DistCalcs || out2.IO != out.IO {
		t.Fatalf("work changed between runs: %d/%d calcs", out.DistCalcs, out2.DistCalcs)
	}
	wantGap := float64(out.DistCalcs) * charged.CPUSecondsPerCmp
	gap := (out2.ModelSeconds - out2.WallSeconds) - (out.ModelSeconds - out.WallSeconds)
	if diff := gap - wantGap; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("CPU charge gap %v, want %v", gap, wantGap)
	}
	// Per-query times carry the charge too.
	var perGap float64
	for qi := range out.PerQueryModelSeconds {
		perGap += out2.PerQueryModelSeconds[qi] - out.PerQueryModelSeconds[qi]
	}
	if perGap < wantGap/2 {
		t.Errorf("per-query times do not reflect the CPU charge (sum gap %v, want ≈%v)", perGap, wantGap)
	}
}
