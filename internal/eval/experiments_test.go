package eval

import (
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/storage"
)

// tinySuite keeps experiment smoke tests fast.
func tinySuite() SuiteConfig {
	return SuiteConfig{N: 400, Length: 32, Queries: 4, K: 5, Seed: 7, HistogramPairs: 500}
}

func TestNewWorkloadShapes(t *testing.T) {
	w := NewWorkload(dataset.KindWalk, 100, 16, 3, 5, 1)
	if w.Data.Size() != 100 || w.Queries.Size() != 3 || len(w.Truth) != 3 {
		t.Fatalf("workload shape wrong")
	}
	for _, tr := range w.Truth {
		if len(tr) != 5 {
			t.Fatalf("truth has %d neighbours", len(tr))
		}
	}
}

func TestBuildMethodAllNames(t *testing.T) {
	cfg := tinySuite()
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	for _, name := range MethodNames {
		b, err := BuildMethod(name, w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Method.Name() == "" {
			t.Errorf("%s has empty name", name)
		}
		if b.BuildSeconds < 0 {
			t.Errorf("%s negative build time", name)
		}
	}
	if _, err := BuildMethod("nope", w, cfg); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunProducesMetrics(t *testing.T) {
	cfg := tinySuite()
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	b, err := BuildMethod("DSTree", w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(b.Method, w, core.Query{Mode: core.ModeExact}, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.MAP < 0.999 {
		t.Errorf("exact search MAP = %v", out.Metrics.MAP)
	}
	if out.ModelSeconds < out.WallSeconds {
		t.Error("model time should include wall time")
	}
	if len(out.Results) != cfg.Queries {
		t.Errorf("%d results", len(out.Results))
	}
}

func TestTable1Rendering(t *testing.T) {
	tbl := Table1()
	s := tbl.String()
	for _, name := range []string{"DSTree", "iSAX2+", "VA+file", "HNSW", "SRS"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestFig2Smoke(t *testing.T) {
	cfg := tinySuite()
	tables, err := Fig2(cfg, []int{100, 200}, []string{"DSTree", "iSAX2+", "VA+file"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	if len(tables[0].Rows) != 3 {
		t.Errorf("fig2a has %d rows", len(tables[0].Rows))
	}
}

func TestFig5Smoke(t *testing.T) {
	cfg := tinySuite()
	tbl, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Errorf("fig5 has %d rows", len(tbl.Rows))
	}
}

func TestFig8Smoke(t *testing.T) {
	cfg := tinySuite()
	tables, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	// ε=0 rows must have MAP = 1 (exact search).
	for _, row := range tables[0].Rows {
		if row[1] == "0" && row[3] != "1.00" {
			t.Errorf("eps=0 row has MAP %s", row[3])
		}
	}
}

func TestEfficiencyAccuracySweepShape(t *testing.T) {
	cfg := tinySuite()
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	tbl, err := efficiencyAccuracy("t", w, cfg, []string{"DSTree"}, false, storage.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 { // five ε values
		t.Fatalf("%d rows in eps sweep", len(tbl.Rows))
	}
	// MAP must be non-increasing as ε grows (rows are eps=5..0, so MAP
	// non-decreasing down the table), and the last row (ε=0) exact.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[2] != "1.00" {
		t.Errorf("eps=0 MAP = %s", last[2])
	}
}

func TestSupportsFlags(t *testing.T) {
	if !supportsNG("HNSW") || !supportsDelta("SRS") {
		t.Error("support flags wrong")
	}
	if supportsDelta("HNSW") {
		t.Error("HNSW should not claim delta support")
	}
}

func TestFig3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 smoke is seconds-long")
	}
	cfg := tinySuite()
	tables, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 8 {
		t.Fatalf("fig3 produced %d tables, want 8", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("empty table %q", tbl.Title)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 smoke is seconds-long")
	}
	cfg := tinySuite()
	tables, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("fig4 produced %d tables, want 6", len(tables))
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 smoke is seconds-long")
	}
	cfg := tinySuite()
	tables, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 { // five dataset analogues
		t.Fatalf("fig6 produced %d tables", len(tables))
	}
	// Each table: 2 methods x 5 epsilon values.
	for _, tbl := range tables {
		if len(tbl.Rows) != 10 {
			t.Errorf("%q has %d rows, want 10", tbl.Title, len(tbl.Rows))
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 smoke is seconds-long")
	}
	cfg := tinySuite()
	tbl, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 { // 2 datasets x 2 methods x 3 k values
		t.Fatalf("fig7 has %d rows", len(tbl.Rows))
	}
}

func TestBuildMethodMTree(t *testing.T) {
	cfg := tinySuite()
	w := NewWorkload(dataset.KindWalk, cfg.N, cfg.Length, cfg.Queries, cfg.K, cfg.Seed)
	b, err := BuildMethod("MTree", w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(b.Method, w, core.Query{Mode: core.ModeExact}, storage.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.MAP < 0.999 {
		t.Errorf("MTree exact MAP = %v", out.Metrics.MAP)
	}
}
