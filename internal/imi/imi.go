// Package imi implements the Inverted Multi-Index (Babenko & Lempitsky)
// with OPQ-style rotation and product-quantization re-ranking, the
// quantization-based state of the art in the benchmark.
//
// The vector space is split into two halves, each clustered into K
// centroids; the index is the K×K grid of cells, each holding the inverted
// list of vectors assigned to it. Queries traverse cells in increasing
// (d(q₁,c₁)+d(q₂,c₂)) order via the multi-sequence algorithm, visiting
// NProbe inverted lists, and rank the collected candidates by compressed
// (PQ/ADC) distances only — IMI never reads raw data at query time, which
// is exactly why the paper observes its MAP dropping below its recall
// (Fig. 5a) and its accuracy collapsing when training is too small.
package imi

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"hydra/internal/core"
	"hydra/internal/quant"
	"hydra/internal/series"
)

// Config controls index construction.
type Config struct {
	// K is the number of centroids per half-space (cells = K²).
	K int
	// M is the number of PQ sub-quantizers for the re-rank codes.
	M int
	// Ks is the number of centroids per PQ sub-quantizer.
	Ks int
	// TrainSamples caps the training set (0 = all). The paper shows IMI
	// accuracy depends strongly on this.
	TrainSamples int
	// Rotate applies an OPQ-style random orthonormal rotation first.
	Rotate bool
	// KMeansIters bounds Lloyd iterations.
	KMeansIters int
	// Seed drives all randomised steps.
	Seed int64
}

// DefaultConfig returns laptop-scale defaults.
func DefaultConfig() Config {
	return Config{K: 32, M: 16, Ks: 64, TrainSamples: 4096, Rotate: true, KMeansIters: 15, Seed: 1}
}

func (c Config) validate(length int) error {
	if c.K < 2 {
		return fmt.Errorf("imi: K %d < 2", c.K)
	}
	if c.M < 1 || c.M > length {
		return fmt.Errorf("imi: M %d out of [1,%d]", c.M, length)
	}
	if c.Ks < 2 {
		return fmt.Errorf("imi: Ks %d < 2", c.Ks)
	}
	if length < 2 {
		return fmt.Errorf("imi: series length %d < 2", length)
	}
	return nil
}

// Index is an inverted multi-index.
type Index struct {
	cfg    Config
	length int
	half   int
	rot    *quant.Rotation
	cb1    [][]float64 // K centroids of the first half
	cb2    [][]float64
	lists  map[int][]int // cell (c1*K + c2) -> ids
	pq     *quant.Product
	codes  [][]uint16 // PQ code per series
	size   int
}

// Build constructs the index over the dataset.
func Build(data *series.Dataset, cfg Config) (*Index, error) {
	if err := cfg.validate(data.Length()); err != nil {
		return nil, err
	}
	idx := &Index{cfg: cfg, length: data.Length(), half: data.Length() / 2, size: data.Size()}
	if cfg.Rotate {
		idx.rot = quant.NewRandomRotation(data.Length(), cfg.Seed)
	}

	n := data.Size()
	train := n
	if cfg.TrainSamples > 0 && cfg.TrainSamples < n {
		train = cfg.TrainSamples
	}

	// Rotated copies. Training uses the first `train` vectors (datasets are
	// generated in random order, so a prefix is an unbiased sample).
	rotated := make([][]float64, n)
	for i := 0; i < n; i++ {
		rotated[i] = idx.rotate(data.At(i))
	}
	firstHalf := make([][]float64, train)
	secondHalf := make([][]float64, train)
	for i := 0; i < train; i++ {
		firstHalf[i] = rotated[i][:idx.half]
		secondHalf[i] = rotated[i][idx.half:]
	}
	idx.cb1, _ = quant.KMeans(firstHalf, cfg.K, cfg.KMeansIters, cfg.Seed+1)
	idx.cb2, _ = quant.KMeans(secondHalf, cfg.K, cfg.KMeansIters, cfg.Seed+2)

	// Assign every vector to its cell.
	idx.lists = make(map[int][]int)
	for i := 0; i < n; i++ {
		c1 := nearest(idx.cb1, rotated[i][:idx.half])
		c2 := nearest(idx.cb2, rotated[i][idx.half:])
		cell := c1*len(idx.cb2) + c2
		idx.lists[cell] = append(idx.lists[cell], i)
	}

	// PQ re-rank codes on the rotated vectors.
	idx.pq = quant.TrainProduct(rotated[:train], cfg.M, cfg.Ks, cfg.KMeansIters, cfg.Seed+3)
	idx.codes = make([][]uint16, n)
	for i := 0; i < n; i++ {
		idx.codes[i] = idx.pq.Encode(rotated[i])
	}
	return idx, nil
}

func (idx *Index) rotate(s series.Series) []float64 {
	v := make([]float64, len(s))
	for i, x := range s {
		v[i] = float64(x)
	}
	if idx.rot != nil {
		return idx.rot.Apply(v)
	}
	return v
}

func nearest(centroids [][]float64, v []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		var d float64
		for i := range v {
			x := v[i] - cent[i]
			d += x * x
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Name implements core.Method.
func (idx *Index) Name() string { return "IMI" }

// Size returns the number of indexed series.
func (idx *Index) Size() int { return idx.size }

// Footprint implements core.Method: codebooks, inverted lists and PQ codes
// (IMI holds only summaries in memory).
func (idx *Index) Footprint() int64 {
	var total int64
	total += int64(len(idx.cb1)+len(idx.cb2)) * int64(idx.half) * 8
	for _, l := range idx.lists {
		total += int64(len(l)) * 8
	}
	for _, c := range idx.codes {
		total += int64(len(c)) * 2
	}
	return total
}

// cellItem drives the multi-sequence traversal.
type cellItem struct {
	i, j int
	d    float64
}

// cellQueue implements container/heap's heap.Interface: a min-heap on
// lower-bound distance over the multi-index cells still worth probing.
type cellQueue []cellItem

func (q cellQueue) Len() int            { return len(q) }
func (q cellQueue) Less(a, b int) bool  { return q[a].d < q[b].d }
func (q cellQueue) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *cellQueue) Push(x interface{}) { *q = append(*q, x.(cellItem)) }
func (q *cellQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Search implements core.Method. IMI supports ng-approximate queries only;
// NProbe is the number of inverted lists visited (paper terminology).
// Returned distances are the compressed (ADC) estimates: IMI does not read
// raw data.
func (idx *Index) Search(q core.Query) (core.Result, error) {
	if err := q.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("imi: %w", err)
	}
	if q.Mode != core.ModeNG {
		return core.Result{}, fmt.Errorf("imi: %s search not supported (ng-approximate only)", q.Mode)
	}
	if len(q.Series) != idx.length {
		return core.Result{}, fmt.Errorf("imi: query length %d != dataset length %d", len(q.Series), idx.length)
	}
	rq := idx.rotate(q.Series)
	q1, q2 := rq[:idx.half], rq[idx.half:]

	// Distances to every centroid of each half, sorted ascending.
	type cd struct {
		c int
		d float64
	}
	d1 := make([]cd, len(idx.cb1))
	for c, cent := range idx.cb1 {
		d1[c] = cd{c, sq(q1, cent)}
	}
	d2 := make([]cd, len(idx.cb2))
	for c, cent := range idx.cb2 {
		d2[c] = cd{c, sq(q2, cent)}
	}
	sort.Slice(d1, func(a, b int) bool { return d1[a].d < d1[b].d })
	sort.Slice(d2, func(a, b int) bool { return d2[a].d < d2[b].d })

	// Multi-sequence algorithm over the sorted grids.
	pq := &cellQueue{}
	heap.Init(pq)
	heap.Push(pq, cellItem{0, 0, d1[0].d + d2[0].d})
	pushed := map[[2]int]struct{}{{0, 0}: {}}
	res := core.Result{}
	var candidates []int
	for pq.Len() > 0 && res.LeavesVisited < q.NProbe {
		it := heap.Pop(pq).(cellItem)
		cell := d1[it.i].c*len(idx.cb2) + d2[it.j].c
		if ids, ok := idx.lists[cell]; ok {
			candidates = append(candidates, ids...)
		}
		res.LeavesVisited++ // a visited inverted list, empty or not
		if it.i+1 < len(d1) {
			key := [2]int{it.i + 1, it.j}
			if _, ok := pushed[key]; !ok {
				pushed[key] = struct{}{}
				heap.Push(pq, cellItem{it.i + 1, it.j, d1[it.i+1].d + d2[it.j].d})
			}
		}
		if it.j+1 < len(d2) {
			key := [2]int{it.i, it.j + 1}
			if _, ok := pushed[key]; !ok {
				pushed[key] = struct{}{}
				heap.Push(pq, cellItem{it.i, it.j + 1, d1[it.i].d + d2[it.j+1].d})
			}
		}
	}

	// Rank candidates by compressed ADC distance only.
	table := idx.pq.DistanceTable(rq)
	kset := core.NewKNNSet(q.K)
	for _, id := range candidates {
		adc := quant.ADC(table, idx.codes[id])
		res.DistCalcs++
		kset.Offer(id, math.Sqrt(adc))
	}
	res.Neighbors = kset.Sorted()
	return res, nil
}

func sq(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}
