package imi

import (
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/quant"
	"hydra/internal/scan"
	"hydra/internal/series"
)

func buildTestIndex(t *testing.T, n, length int, cfg Config, kind dataset.Kind, seed int64) (*Index, *series.Dataset, *series.Dataset) {
	t.Helper()
	data := dataset.Generate(dataset.Config{Kind: kind, Count: n, Length: length, Seed: seed})
	idx, err := Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(data, kind, 5, seed+100)
	return idx, data, queries
}

func recallOf(res core.Result, truth []core.Neighbor) float64 {
	trueIDs := map[int]struct{}{}
	for _, nb := range truth {
		trueIDs[nb.ID] = struct{}{}
	}
	hits := 0
	for _, nb := range res.Neighbors {
		if _, ok := trueIDs[nb.ID]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

func TestBuildValidatesConfig(t *testing.T) {
	data := dataset.Generate(dataset.Config{Kind: dataset.KindWalk, Count: 20, Length: 16, Seed: 1})
	for i, cfg := range []Config{
		{K: 1, M: 2, Ks: 8},
		{K: 4, M: 0, Ks: 8},
		{K: 4, M: 2, Ks: 1},
		{K: 4, M: 99, Ks: 8},
	} {
		if _, err := Build(data, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestCellsPartitionDataset(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 500, 32, DefaultConfig(), dataset.KindClustered, 1)
	total := 0
	for _, l := range idx.lists {
		total += len(l)
	}
	if total != 500 {
		t.Errorf("inverted lists hold %d ids, want 500", total)
	}
}

func TestRecallImprovesWithNProbe(t *testing.T) {
	idx, data, queries := buildTestIndex(t, 2000, 32, DefaultConfig(), dataset.KindClustered, 3)
	gt := scan.GroundTruth(data, queries, 10)
	at := func(nprobe int) float64 {
		var total float64
		for qi := 0; qi < queries.Size(); qi++ {
			res, err := idx.Search(core.Query{Series: queries.At(qi), K: 10, Mode: core.ModeNG, NProbe: nprobe})
			if err != nil {
				t.Fatal(err)
			}
			total += recallOf(res, gt[qi])
		}
		return total / float64(queries.Size())
	}
	lo, hi := at(1), at(256)
	if hi < lo {
		t.Errorf("recall fell with nprobe: %v -> %v", lo, hi)
	}
	if hi < 0.5 {
		t.Errorf("recall at nprobe=256 is %v", hi)
	}
}

func TestVisitsAtMostNProbeLists(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 800, 32, DefaultConfig(), dataset.KindWalk, 5)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeNG, NProbe: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesVisited > 7 {
		t.Errorf("visited %d lists", res.LeavesVisited)
	}
}

func TestDistancesAreCompressedEstimates(t *testing.T) {
	// IMI returns ADC distances, not true distances: they must often differ
	// from the exact ones (this is the Fig. 5a mechanism).
	idx, data, queries := buildTestIndex(t, 500, 32, DefaultConfig(), dataset.KindWalk, 7)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 10, Mode: core.ModeNG, NProbe: 64})
	if err != nil {
		t.Fatal(err)
	}
	differing := 0
	for _, nb := range res.Neighbors {
		trueD := series.Dist(queries.At(0), data.At(nb.ID))
		if diff := nb.Dist - trueD; diff > 1e-9 || diff < -1e-9 {
			differing++
		}
	}
	if differing == 0 {
		t.Error("every returned distance equals the true distance — not a compressed ranking")
	}
}

func TestRejectsNonNGModes(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 200, 16, DefaultConfig(), dataset.KindWalk, 9)
	for _, mode := range []core.Mode{core.ModeExact, core.ModeEpsilon, core.ModeDeltaEpsilon} {
		if _, err := idx.Search(core.Query{Series: queries.At(0), K: 1, Mode: mode, Epsilon: 1, Delta: 0.5}); err == nil {
			t.Errorf("mode %v should be rejected", mode)
		}
	}
}

func TestTrainingSizeAffectsQuantizationError(t *testing.T) {
	// The paper's discussion: small training sets hurt IMI. The mechanism
	// is codebook fit — measure the mean PQ self-reconstruction error
	// (ADC of a vector against its own code) under tiny vs full training.
	cfgSmall := DefaultConfig()
	cfgSmall.TrainSamples = 20
	cfgFull := DefaultConfig()
	cfgFull.TrainSamples = 0
	idxSmall, data, _ := buildTestIndex(t, 3000, 32, cfgSmall, dataset.KindClustered, 11)
	idxFull, err := Build(data, cfgFull)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := func(idx *Index) float64 {
		var total float64
		for i := 0; i < data.Size(); i++ {
			v := idx.rotate(data.At(i))
			total += quant.ADC(idx.pq.DistanceTable(v), idx.codes[i])
		}
		return total / float64(data.Size())
	}
	small, full := meanErr(idxSmall), meanErr(idxFull)
	if full > small*1.05 {
		t.Errorf("full training should quantize better: full=%v small=%v", full, small)
	}
}

func TestRotationOff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rotate = false
	idx, _, queries := buildTestIndex(t, 400, 32, cfg, dataset.KindWalk, 13)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 5, Mode: core.ModeNG, NProbe: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) == 0 {
		t.Error("no results without rotation")
	}
}

func TestNameFootprintSize(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 300, 32, DefaultConfig(), dataset.KindWalk, 15)
	if idx.Name() != "IMI" || idx.Size() != 300 {
		t.Error("metadata wrong")
	}
	if idx.Footprint() <= 0 {
		t.Error("footprint should be positive")
	}
}

func TestOddLengthSeries(t *testing.T) {
	idx, _, queries := buildTestIndex(t, 300, 31, DefaultConfig(), dataset.KindWalk, 17)
	res, err := idx.Search(core.Query{Series: queries.At(0), K: 3, Mode: core.ModeNG, NProbe: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 3 {
		t.Errorf("%d results on odd-length series", len(res.Neighbors))
	}
}
