package imi

import "hydra/internal/core"

func init() {
	core.RegisterMethod(core.MethodSpec{
		Name:         "IMI",
		Rank:         70,
		NG:           true,
		DiskResident: true,
		Build: func(ctx *core.BuildContext) (core.BuildResult, error) {
			idx, err := Build(ctx.Data, DefaultConfig())
			if err != nil {
				return core.BuildResult{}, err
			}
			return core.BuildResult{Method: idx}, nil
		},
	})
}
