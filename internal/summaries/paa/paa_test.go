package paa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/series"
)

func randSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestTransformBasic(t *testing.T) {
	s := series.Series{1, 1, 3, 3, 5, 5, 7, 7}
	p := Transform(s, 4)
	want := []float64{1, 3, 5, 7}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-9 {
			t.Errorf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestTransformUneven(t *testing.T) {
	// 7 elements into 3 segments: bounds 0-2,2-4,4-7.
	s := series.Series{1, 1, 2, 2, 3, 3, 3}
	p := Transform(s, 3)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-9 {
			t.Errorf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestTransformFullResolution(t *testing.T) {
	s := series.Series{4, 2, 9}
	p := Transform(s, 3)
	for i := range s {
		if math.Abs(p[i]-float64(s[i])) > 1e-9 {
			t.Errorf("l=n should be identity, p[%d]=%v", i, p[i])
		}
	}
}

func TestTransformInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Transform(series.Series{1, 2}, 3)
}

func TestSegmentBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{5, 8, 17, 256} {
		for _, l := range []int{1, 3, 4, 5} {
			if l > n {
				continue
			}
			prev := 0
			for seg := 0; seg < l; seg++ {
				lo, hi := SegmentBounds(n, l, seg)
				if lo != prev {
					t.Fatalf("n=%d l=%d seg=%d: gap/overlap lo=%d prev=%d", n, l, seg, lo, prev)
				}
				if hi <= lo {
					t.Fatalf("n=%d l=%d seg=%d: empty segment", n, l, seg)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d l=%d: segments cover %d", n, l, prev)
			}
		}
	}
}

func TestLowerBoundProperty(t *testing.T) {
	// Core invariant: PAA lower bound never exceeds the true distance.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(250)
		l := 1 + rng.Intn(min(16, n))
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		lb := LowerBoundDist(Transform(a, l), Transform(b, l), n)
		d := series.Dist(a, b)
		if lb > d+1e-6 {
			t.Fatalf("trial %d (n=%d l=%d): lower bound %v exceeds distance %v", trial, n, l, lb, d)
		}
	}
}

func TestLowerBoundQuick(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 8 {
			return true
		}
		half := len(raw) / 2
		a := series.Series(raw[:half])
		b := series.Series(raw[half : 2*half])
		l := max(1, half/4)
		lb := LowerBoundDist(Transform(a, l), Transform(b, l), half)
		return lb <= series.Dist(a, b)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundTightAtFullResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSeries(rng, 32)
	b := randSeries(rng, 32)
	lb := LowerBoundDist(Transform(a, 32), Transform(b, 32), 32)
	d := series.Dist(a, b)
	if math.Abs(lb-d) > 1e-5 {
		t.Errorf("full-resolution lower bound %v should equal distance %v", lb, d)
	}
}

func TestLowerBoundMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LowerBoundDist([]float64{1}, []float64{1, 2}, 8)
}

func TestReconstruct(t *testing.T) {
	p := []float64{2, 4}
	s := Reconstruct(p, 6)
	want := series.Series{2, 2, 2, 4, 4, 4}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("s[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestReconstructionErrorDecreasesWithSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := randSeries(rng, 128)
	errAt := func(l int) float64 {
		return series.Dist(s, Reconstruct(Transform(s, l), len(s)))
	}
	if !(errAt(4) >= errAt(16) && errAt(16) >= errAt(64)) {
		t.Errorf("PAA error not monotone: %v %v %v", errAt(4), errAt(16), errAt(64))
	}
}
