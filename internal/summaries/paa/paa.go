// Package paa implements Piecewise Aggregate Approximation (Keogh et al.),
// the segmentation front-end of SAX: a series of length n is divided into l
// equal segments, each represented by its mean value.
//
// The PAA lower-bounding distance guarantees
// LowerBoundDist(paa(a), paa(b)) <= Dist(a, b), the property every
// filter-and-refine index relies on for correctness.
package paa

import (
	"fmt"
	"math"

	"hydra/internal/series"
)

// Transform computes the l-segment PAA representation of s. When l does not
// divide len(s), segment boundaries are distributed as evenly as possible
// (some segments one element longer), so any l in [1, len(s)] is valid.
func Transform(s series.Series, l int) []float64 {
	if l <= 0 || l > len(s) {
		panic(fmt.Sprintf("paa: segment count %d out of range [1,%d]", l, len(s)))
	}
	out := make([]float64, l)
	n := len(s)
	for seg := 0; seg < l; seg++ {
		lo := seg * n / l
		hi := (seg + 1) * n / l
		var sum float64
		for i := lo; i < hi; i++ {
			sum += float64(s[i])
		}
		out[seg] = sum / float64(hi-lo)
	}
	return out
}

// SegmentBounds returns the [lo,hi) element range of segment seg for a
// series of length n split into l segments, matching Transform.
func SegmentBounds(n, l, seg int) (lo, hi int) {
	return seg * n / l, (seg + 1) * n / l
}

// LowerBoundDist returns a lower bound on the Euclidean distance between
// the original series given their PAA representations, for series of
// length n: sqrt(sum_i w_i * (a_i-b_i)^2) where w_i is the segment width.
func LowerBoundDist(a, b []float64, n int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("paa: length mismatch %d vs %d", len(a), len(b)))
	}
	l := len(a)
	var acc float64
	for seg := 0; seg < l; seg++ {
		lo, hi := SegmentBounds(n, l, seg)
		d := a[seg] - b[seg]
		acc += float64(hi-lo) * d * d
	}
	return math.Sqrt(acc)
}

// Reconstruct expands a PAA representation back to a length-n series
// (each segment filled with its mean). Useful for visual checks and for
// measuring the information loss of a given l.
func Reconstruct(p []float64, n int) series.Series {
	l := len(p)
	out := make(series.Series, n)
	for seg := 0; seg < l; seg++ {
		lo, hi := SegmentBounds(n, l, seg)
		for i := lo; i < hi; i++ {
			out[i] = float32(p[seg])
		}
	}
	return out
}
