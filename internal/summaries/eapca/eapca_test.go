package eapca

import (
	"math"
	"math/rand"
	"testing"

	"hydra/internal/series"
)

func randSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64() * 2)
	}
	return s
}

func TestPrefixRange(t *testing.T) {
	s := series.Series{1, 2, 3, 4, 5, 6}
	p := NewPrefix(s)
	st := p.Range(1, 4) // values 2,3,4
	if math.Abs(st.Mean-3) > 1e-9 {
		t.Errorf("Mean = %v, want 3", st.Mean)
	}
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(st.Std-want) > 1e-9 {
		t.Errorf("Std = %v, want %v", st.Std, want)
	}
}

func TestPrefixRangeInvalidPanics(t *testing.T) {
	p := NewPrefix(series.Series{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.Range(1, 1)
}

func TestUniformSegmentation(t *testing.T) {
	g := Uniform(10, 3)
	if err := g.Validate(10); err != nil {
		t.Fatal(err)
	}
	if g[len(g)-1] != 10 {
		t.Errorf("last bound = %d", g[len(g)-1])
	}
	total := 0
	for _, w := range g.Widths() {
		total += w
	}
	if total != 10 {
		t.Errorf("widths sum to %d", total)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	if err := (Segmentation{}).Validate(4); err == nil {
		t.Error("empty segmentation should fail")
	}
	if err := (Segmentation{2, 2, 4}).Validate(4); err == nil {
		t.Error("non-increasing segmentation should fail")
	}
	if err := (Segmentation{2, 3}).Validate(4); err == nil {
		t.Error("short segmentation should fail")
	}
}

func TestSplitSegment(t *testing.T) {
	g := Segmentation{4, 8}
	g2 := g.SplitSegment(0)
	if err := g2.Validate(8); err != nil {
		t.Fatal(err)
	}
	if len(g2) != 3 || g2[0] != 2 || g2[1] != 4 {
		t.Errorf("split result: %v", g2)
	}
	g3 := g.SplitSegment(1)
	if g3[1] != 6 {
		t.Errorf("split of second segment: %v", g3)
	}
	if !g.CanSplit(0) {
		t.Error("width-4 segment should be splittable")
	}
	if (Segmentation{1, 2}).CanSplit(0) {
		t.Error("width-1 segment must not be splittable")
	}
}

func TestComputeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSeries(rng, 32)
	g := Uniform(32, 4)
	stats := Compute(s, g)
	for i := range stats {
		lo, hi := g.Bounds(i)
		sub := s[lo:hi]
		if math.Abs(stats[i].Mean-sub.Mean()) > 1e-6 {
			t.Errorf("segment %d mean %v vs %v", i, stats[i].Mean, sub.Mean())
		}
		if math.Abs(stats[i].Std-sub.Stdev()) > 1e-6 {
			t.Errorf("segment %d std %v vs %v", i, stats[i].Std, sub.Stdev())
		}
	}
}

func TestPairBoundsSandwichTrueDistance(t *testing.T) {
	// Core invariant: LB² <= dist² <= UB² for random series and random
	// segmentations.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 8 + rng.Intn(120)
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		l := 1 + rng.Intn(min(8, n))
		g := Uniform(n, l)
		sa := Compute(a, g)
		sb := Compute(b, g)
		d2 := series.SquaredDist(a, b)
		lb := LowerBound2(sa, sb, g)
		ub := UpperBound2(sa, sb, g)
		if lb > d2+1e-6*(1+d2) {
			t.Fatalf("trial %d: LB² %v > dist² %v", trial, lb, d2)
		}
		if ub < d2-1e-6*(1+d2) {
			t.Fatalf("trial %d: UB² %v < dist² %v", trial, ub, d2)
		}
	}
}

func TestSynopsisLowerBoundCoversMembers(t *testing.T) {
	// For every member series, synopsis LB(query) <= dist(query, member).
	rng := rand.New(rand.NewSource(19))
	n := 64
	g := Uniform(n, 5)
	members := make([]series.Series, 40)
	z := NewSynopsis(len(g))
	for i := range members {
		members[i] = randSeries(rng, n)
		z.Update(Compute(members[i], g))
	}
	for trial := 0; trial < 30; trial++ {
		q := randSeries(rng, n)
		qs := Compute(q, g)
		lb2 := z.LowerBound2(qs, g)
		ub2 := z.UpperBound2(qs, g)
		for mi, m := range members {
			d2 := series.SquaredDist(q, m)
			if lb2 > d2+1e-6*(1+d2) {
				t.Fatalf("trial %d member %d: node LB² %v > dist² %v", trial, mi, lb2, d2)
			}
			if ub2 < d2-1e-6*(1+d2) {
				t.Fatalf("trial %d member %d: node UB² %v < dist² %v", trial, mi, ub2, d2)
			}
		}
	}
}

func TestSynopsisEmpty(t *testing.T) {
	z := NewSynopsis(2)
	g := Segmentation{4, 8}
	qs := []Stat{{}, {}}
	if !math.IsInf(z.LowerBound2(qs, g), 1) {
		t.Error("empty synopsis LB should be +Inf")
	}
	if z.UpperBound2(qs, g) != 0 {
		t.Error("empty synopsis UB should be 0")
	}
}

func TestSynopsisUpdateMismatchPanics(t *testing.T) {
	z := NewSynopsis(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	z.Update([]Stat{{}})
}

func TestQoSShrinksWithTighterNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 32
	g := Uniform(n, 4)
	wide := NewSynopsis(4)
	tight := NewSynopsis(4)
	base := randSeries(rng, n)
	for i := 0; i < 20; i++ {
		wide.Update(Compute(randSeries(rng, n), g))
		// Tight node: small perturbations of one series.
		s := base.Clone()
		for j := range s {
			s[j] += float32(rng.NormFloat64() * 0.01)
		}
		tight.Update(Compute(s, g))
	}
	if tight.QoS(g) >= wide.QoS(g) {
		t.Errorf("tight QoS %v should be below wide QoS %v", tight.QoS(g), wide.QoS(g))
	}
}

func TestRefinedSegmentationTightensLowerBound(t *testing.T) {
	// Splitting a segment can only give equal or tighter pairwise LB (more
	// information). Verify empirically over random pairs.
	rng := rand.New(rand.NewSource(31))
	n := 64
	coarse := Uniform(n, 4)
	fine := coarse.SplitSegment(0).SplitSegment(2)
	for trial := 0; trial < 100; trial++ {
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		lbCoarse := LowerBound2(Compute(a, coarse), Compute(b, coarse), coarse)
		lbFine := LowerBound2(Compute(a, fine), Compute(b, fine), fine)
		if lbFine+1e-9 < lbCoarse-1e-6*(1+lbCoarse) {
			t.Fatalf("trial %d: refined LB %v looser than coarse %v", trial, lbFine, lbCoarse)
		}
	}
}
