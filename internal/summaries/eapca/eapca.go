// Package eapca implements the Extended Adaptive Piecewise Constant
// Approximation (Wang et al., "A Data-adaptive and Dynamic Segmentation
// Index for Whole Matching on Time Series", the DSTree paper).
//
// EAPCA represents each segment of a series with both its mean and its
// standard deviation. For two series x, y restricted to a segment of width
// w, expanding the squared Euclidean distance and applying Cauchy–Schwarz
// to the centred cross term gives
//
//	w·((μx−μy)² + (σx−σy)²)  ≤  Σ (x_j − y_j)²  ≤  w·((μx−μy)² + (σx+σy)²)
//
// which yields per-segment lower and upper bounding distances. A DSTree
// node keeps, per segment, the [min,max] range of the means and standard
// deviations of the series it contains (the node synopsis); the same
// algebra then bounds the distance between a query and *every* series in
// the node, which is what the index search uses for pruning.
package eapca

import (
	"fmt"
	"math"

	"hydra/internal/series"
)

// Stat is the EAPCA representation of one segment: mean and standard
// deviation of the series values inside the segment.
type Stat struct {
	Mean float64
	Std  float64
}

// Prefix supports O(1) mean/stdev queries over any sub-range of a series,
// via cumulative sums. DSTree needs this to re-segment series cheaply when
// a node splits vertically.
type Prefix struct {
	sum   []float64 // sum[i] = Σ s[0..i)
	sumSq []float64
}

// NewPrefix builds prefix sums for s.
func NewPrefix(s series.Series) Prefix {
	n := len(s)
	p := Prefix{sum: make([]float64, n+1), sumSq: make([]float64, n+1)}
	for i, v := range s {
		f := float64(v)
		p.sum[i+1] = p.sum[i] + f
		p.sumSq[i+1] = p.sumSq[i] + f*f
	}
	return p
}

// Range returns the Stat of elements [lo, hi).
func (p Prefix) Range(lo, hi int) Stat {
	if lo < 0 || hi > len(p.sum)-1 || lo >= hi {
		panic(fmt.Sprintf("eapca: invalid range [%d,%d)", lo, hi))
	}
	w := float64(hi - lo)
	mean := (p.sum[hi] - p.sum[lo]) / w
	msq := (p.sumSq[hi] - p.sumSq[lo]) / w
	variance := msq - mean*mean
	if variance < 0 {
		variance = 0 // numeric noise
	}
	return Stat{Mean: mean, Std: math.Sqrt(variance)}
}

// Segmentation is a sorted list of segment end indices; a series of length
// n with segmentation [e0, e1, ..., n] has segments [0,e0), [e0,e1), ….
// The final entry must equal the series length.
type Segmentation []int

// Uniform returns an l-segment segmentation of a length-n series with
// near-equal widths.
func Uniform(n, l int) Segmentation {
	if l <= 0 || l > n {
		panic(fmt.Sprintf("eapca: segment count %d out of range [1,%d]", l, n))
	}
	seg := make(Segmentation, l)
	for i := 0; i < l; i++ {
		seg[i] = (i + 1) * n / l
	}
	return seg
}

// Validate checks structural invariants: strictly increasing, ending at n.
func (g Segmentation) Validate(n int) error {
	if len(g) == 0 {
		return fmt.Errorf("eapca: empty segmentation")
	}
	prev := 0
	for i, e := range g {
		if e <= prev {
			return fmt.Errorf("eapca: segment %d end %d not after %d", i, e, prev)
		}
		prev = e
	}
	if prev != n {
		return fmt.Errorf("eapca: segmentation ends at %d, series length %d", prev, n)
	}
	return nil
}

// Bounds returns the [lo,hi) range of segment i.
func (g Segmentation) Bounds(i int) (lo, hi int) {
	if i > 0 {
		lo = g[i-1]
	}
	return lo, g[i]
}

// Widths returns the width of every segment.
func (g Segmentation) Widths() []int {
	out := make([]int, len(g))
	prev := 0
	for i, e := range g {
		out[i] = e - prev
		prev = e
	}
	return out
}

// SplitSegment returns a new segmentation with segment i split at the
// midpoint (vertical split in DSTree terms). Segments of width 1 cannot be
// split; callers must check CanSplit first.
func (g Segmentation) SplitSegment(i int) Segmentation {
	lo, hi := g.Bounds(i)
	if hi-lo < 2 {
		panic(fmt.Sprintf("eapca: cannot split width-%d segment", hi-lo))
	}
	mid := (lo + hi) / 2
	out := make(Segmentation, 0, len(g)+1)
	out = append(out, g[:i]...)
	out = append(out, mid)
	out = append(out, g[i:]...)
	return out
}

// CanSplit reports whether segment i has width >= 2.
func (g Segmentation) CanSplit(i int) bool {
	lo, hi := g.Bounds(i)
	return hi-lo >= 2
}

// Compute returns the EAPCA stats of s under segmentation g.
func Compute(s series.Series, g Segmentation) []Stat {
	p := NewPrefix(s)
	return ComputeFromPrefix(p, g)
}

// ComputeFromPrefix evaluates the stats from precomputed prefix sums.
func ComputeFromPrefix(p Prefix, g Segmentation) []Stat {
	out := make([]Stat, len(g))
	prev := 0
	for i, e := range g {
		out[i] = p.Range(prev, e)
		prev = e
	}
	return out
}

// LowerBound2 returns the squared EAPCA lower bound between two series
// given their per-segment stats under the shared segmentation g.
func LowerBound2(a, b []Stat, g Segmentation) float64 {
	var acc float64
	prev := 0
	for i, e := range g {
		w := float64(e - prev)
		dm := a[i].Mean - b[i].Mean
		ds := a[i].Std - b[i].Std
		acc += w * (dm*dm + ds*ds)
		prev = e
	}
	return acc
}

// UpperBound2 returns the squared EAPCA upper bound between two series.
func UpperBound2(a, b []Stat, g Segmentation) float64 {
	var acc float64
	prev := 0
	for i, e := range g {
		w := float64(e - prev)
		dm := a[i].Mean - b[i].Mean
		ss := a[i].Std + b[i].Std
		acc += w * (dm*dm + ss*ss)
		prev = e
	}
	return acc
}

// Synopsis is a DSTree node summary: per-segment ranges covering the means
// and standard deviations of every series routed into the node.
type Synopsis struct {
	MinMean, MaxMean []float64
	MinStd, MaxStd   []float64
	Count            int
}

// NewSynopsis returns an empty synopsis for l segments.
func NewSynopsis(l int) *Synopsis {
	z := &Synopsis{
		MinMean: make([]float64, l),
		MaxMean: make([]float64, l),
		MinStd:  make([]float64, l),
		MaxStd:  make([]float64, l),
	}
	for i := 0; i < l; i++ {
		z.MinMean[i] = math.Inf(1)
		z.MaxMean[i] = math.Inf(-1)
		z.MinStd[i] = math.Inf(1)
		z.MaxStd[i] = math.Inf(-1)
	}
	return z
}

// Update widens the synopsis to include the given series stats.
func (z *Synopsis) Update(stats []Stat) {
	if len(stats) != len(z.MinMean) {
		panic(fmt.Sprintf("eapca: stats length %d != synopsis length %d", len(stats), len(z.MinMean)))
	}
	for i, st := range stats {
		if st.Mean < z.MinMean[i] {
			z.MinMean[i] = st.Mean
		}
		if st.Mean > z.MaxMean[i] {
			z.MaxMean[i] = st.Mean
		}
		if st.Std < z.MinStd[i] {
			z.MinStd[i] = st.Std
		}
		if st.Std > z.MaxStd[i] {
			z.MaxStd[i] = st.Std
		}
	}
	z.Count++
}

// FloatWidths returns Widths() as float64 — the weight vector of the
// pair-region MINDIST kernel (kernel.PairRegionLowerBound2).
func (g Segmentation) FloatWidths() []float64 {
	out := make([]float64, len(g))
	prev := 0
	for i, e := range g {
		out[i] = float64(e - prev)
		prev = e
	}
	return out
}

// PackedBounds returns the synopsis as one packed kernel region row —
// [MinMean, MaxMean, MinStd, MaxStd] per segment, length 4·l — or nil for
// an empty synopsis, whose lower bound is +Inf. Precomputing this at
// build/load time removes the four-array walk from the traversal hot loop;
// kernel.PairRegionLowerBound2(PackStats(qs, nil), g.FloatWidths(),
// z.PackedBounds()) equals z.LowerBound2(qs, g) bit-for-bit.
func (z *Synopsis) PackedBounds() []float64 {
	if z.Count == 0 {
		return nil
	}
	out := make([]float64, 4*len(z.MinMean))
	for i := range z.MinMean {
		out[4*i] = z.MinMean[i]
		out[4*i+1] = z.MaxMean[i]
		out[4*i+2] = z.MinStd[i]
		out[4*i+3] = z.MaxStd[i]
	}
	return out
}

// PackStats appends stats to out as interleaved [mean, std] pairs — the
// paired-query layout of the pair-region kernel.
func PackStats(stats []Stat, out []float64) []float64 {
	for _, st := range stats {
		out = append(out, st.Mean, st.Std)
	}
	return out
}

// gap returns the distance from v to the interval [lo, hi] (0 if inside).
func gap(v, lo, hi float64) float64 {
	if v < lo {
		return lo - v
	}
	if v > hi {
		return v - hi
	}
	return 0
}

// LowerBound2 returns a squared lower bound on the distance between the
// query (with stats qs) and any series contained in the synopsis.
func (z *Synopsis) LowerBound2(qs []Stat, g Segmentation) float64 {
	if z.Count == 0 {
		return math.Inf(1)
	}
	var acc float64
	prev := 0
	for i, e := range g {
		w := float64(e - prev)
		gm := gap(qs[i].Mean, z.MinMean[i], z.MaxMean[i])
		gs := gap(qs[i].Std, z.MinStd[i], z.MaxStd[i])
		acc += w * (gm*gm + gs*gs)
		prev = e
	}
	return acc
}

// UpperBound2 returns a squared upper bound on the distance between the
// query and every series in the synopsis (i.e. an upper bound on the
// farthest member).
func (z *Synopsis) UpperBound2(qs []Stat, g Segmentation) float64 {
	if z.Count == 0 {
		return 0
	}
	var acc float64
	prev := 0
	for i, e := range g {
		w := float64(e - prev)
		gm := math.Max(math.Abs(qs[i].Mean-z.MinMean[i]), math.Abs(qs[i].Mean-z.MaxMean[i]))
		ss := qs[i].Std + z.MaxStd[i]
		acc += w * (gm*gm + ss*ss)
		prev = e
	}
	return acc
}

// QoS measures the looseness of the synopsis: the volume of the per-segment
// ranges, weighted by segment width. DSTree's split policy picks the split
// that minimises the expected QoS of the children — smaller is tighter.
func (z *Synopsis) QoS(g Segmentation) float64 {
	var acc float64
	prev := 0
	for i, e := range g {
		w := float64(e - prev)
		dm := z.MaxMean[i] - z.MinMean[i]
		ds := z.MaxStd[i] - z.MinStd[i]
		acc += w * (dm*dm + ds*ds)
		prev = e
	}
	return acc
}
